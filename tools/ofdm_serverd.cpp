// ofdm_serverd: the campaign/waveform service daemon (DESIGN.md §15).
//
//   ofdm_serverd [--host H] [--port P] [--port-file FILE]
//                [--state-dir DIR] [--executors N] [--threads N]
//                [--max-queue N] [--quota N] [--idle-timeout S]
//                [--send-timeout S] [--deadline S] [--cache-mb N]
//                [--max-connections N]
//                [--quiet]
//
// Serves the newline-delimited JSON protocol on H:P (default
// 127.0.0.1, ephemeral port; --port-file publishes the bound port for
// scripts). With --state-dir every accepted campaign deck is persisted
// and its checkpoint advances at round boundaries, so a crash —
// kill -9 included — loses at most the in-flight round: on restart the
// daemon rescans the directory, re-queues the jobs and finishes them
// with byte-identical curves.
//
// SIGTERM/SIGINT request a graceful drain: stop accepting, cancel
// running campaigns at the next trial boundary (their checkpoints stay
// consistent), keep queued jobs on disk for the next process, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_stop_signal(int sig) { g_signal = sig; }

void install_stop_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--port-file FILE]\n"
      "          [--state-dir DIR] [--executors N] [--threads N]\n"
      "          [--max-queue N] [--quota N] [--idle-timeout S]\n"
      "          [--send-timeout S] [--deadline S] [--cache-mb N]\n"
      "          [--max-connections N]\n"
      "          [--quiet]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ofdm::net::ServerConfig cfg;
  std::string port_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      cfg.host = v;
    } else if (arg == "--port" && (v = next())) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--port-file" && (v = next())) {
      port_file = v;
    } else if (arg == "--state-dir" && (v = next())) {
      cfg.jobs.state_dir = v;
    } else if (arg == "--executors" && (v = next())) {
      cfg.jobs.executors = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--threads" && (v = next())) {
      cfg.jobs.pool_threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-queue" && (v = next())) {
      cfg.jobs.max_queued = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--quota" && (v = next())) {
      cfg.client_quota = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--idle-timeout" && (v = next())) {
      cfg.idle_timeout_s = std::atof(v);
    } else if (arg == "--send-timeout" && (v = next())) {
      cfg.send_timeout_s = std::atof(v);
    } else if (arg == "--deadline" && (v = next())) {
      cfg.jobs.default_deadline_s = std::atof(v);
    } else if (arg == "--cache-mb" && (v = next())) {
      cfg.jobs.cache_bytes = static_cast<std::size_t>(std::atoi(v)) << 20;
    } else if (arg == "--max-connections" && (v = next())) {
      cfg.max_connections = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  install_stop_handlers();

  ofdm::net::Server server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ofdm_serverd: %s\n", e.what());
    return 1;
  }

  if (!port_file.empty()) {
    // Written AFTER recovery + listen succeed: scripts that wait for
    // this file know the daemon is actually serving.
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ofdm_serverd: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
    std::rename(tmp.c_str(), port_file.c_str());
  }
  if (!quiet) {
    std::printf("ofdm_serverd: listening on %s:%u", cfg.host.c_str(),
                static_cast<unsigned>(server.port()));
    if (server.recovered_jobs() > 0) {
      std::printf(", recovered %zu job(s)", server.recovered_jobs());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  bool drain = true;
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (server.shutdown_requested()) drain = server.shutdown_drain();

  if (!quiet) {
    std::printf("ofdm_serverd: %s, %s\n",
                g_signal != 0 ? "signal received" : "shutdown requested",
                drain ? "draining (jobs checkpointed for restart)"
                      : "stopping");
    std::fflush(stdout);
  }
  server.stop(drain);
  return 0;
}
