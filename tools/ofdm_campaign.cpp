// ofdm_campaign: run a Monte-Carlo link-level campaign from a scenario
// deck.
//
//   ofdm_campaign <deck-file> [--threads N] [--out PREFIX]
//                 [--checkpoint FILE] [--resume]
//                 [--halt-after-rounds N] [--quiet]
//
// Reads the deck, expands the standard x channel x SNR grid, sweeps it
// under the work-stealing scheduler, and writes <PREFIX>.json and
// <PREFIX>.csv BER/EVM curves (deterministic bytes for a given deck —
// any thread count, any checkpoint/resume cut). With --checkpoint the
// campaign state persists at every round boundary; --resume picks an
// interrupted sweep up exactly where it stopped. --halt-after-rounds
// simulates a mid-run kill for the CI resume check (exit code 3).
// --list-channels prints the named channel-model presets a deck's
// channel= key accepts (beyond awgn/multipath/twisted_pair) and exits.
// --list-rx prints the receiver instance the RX Mother Model
// reconfigures into for each of the ten family standards and exits.
//
// SIGINT/SIGTERM request a graceful stop: in-flight rounds drain, a
// final atomic checkpoint is written, curves for the completed state
// are exported, and the process exits with the documented halt code 3
// (same contract as --halt-after-rounds) instead of dying mid-write.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/profiles.hpp"
#include "core/standard.hpp"
#include "rf/channels/registry.hpp"
#include "rx/mother/descriptor.hpp"
#include "sim/aggregator.hpp"
#include "sim/campaign.hpp"

namespace {

// The handler only performs an atomic store (async-signal-safe); the
// campaign polls the token between trials and at round boundaries.
ofdm::sim::CancelToken g_stop;

extern "C" void handle_stop_signal(int) { g_stop.cancel(); }

void install_stop_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <deck-file> [--threads N] [--out PREFIX]\n"
      "          [--checkpoint FILE] [--resume] [--halt-after-rounds N]\n"
      "          [--quiet]\n"
      "       %s --list-channels\n"
      "       %s --list-rx\n",
      argv0, argv0, argv0);
  return 2;
}

int list_channels() {
  std::printf("%-14s %-10s %7s %10s %6s  %s\n", "preset", "family",
              "paths", "spread_us", "fD_Hz", "description");
  for (const auto& p : ofdm::rf::channels::presets()) {
    std::printf("%-14s %-10s %7zu %10.2f %6.2f  %s%s\n", p.name.c_str(),
                p.family.c_str(), p.paths, p.delay_spread_us,
                p.doppler_hz, p.description.c_str(),
                p.time_varying ? "" : " [static]");
  }
  return 0;
}

int list_rx() {
  std::printf("%-12s %-14s %-15s %-19s %-15s %-11s %4s\n", "standard",
              "sync", "equalizer", "demapper", "inner", "outer", "soft");
  for (const ofdm::core::Standard s : ofdm::core::kStandardFamily) {
    const auto params = ofdm::core::profile_for(s);
    const auto d = ofdm::rx::describe_receiver(params);
    std::printf("%-12s %-14s %-15s %-19s %-15s %-11s %4s\n",
                ofdm::core::standard_name(s).c_str(), d.sync.c_str(),
                d.equalizer.c_str(), d.demapper.c_str(),
                d.inner_code.c_str(), d.outer_code.c_str(),
                d.soft_capable ? "yes" : "no");
    std::printf("%-12s   %s\n", "", d.chain.c_str());
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string deck_path;
  std::string out_prefix = "campaign";
  ofdm::sim::RunOptions opts;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      opts.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_prefix = next();
    } else if (arg == "--checkpoint") {
      opts.checkpoint_path = next();
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--halt-after-rounds") {
      opts.halt_after_rounds = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-channels") {
      return list_channels();
    } else if (arg == "--list-rx") {
      return list_rx();
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (deck_path.empty()) {
      deck_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (deck_path.empty()) return usage(argv[0]);
  if (opts.resume && opts.checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --checkpoint FILE\n");
    return 2;
  }

  try {
    std::ifstream in(deck_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read deck %s\n",
                   deck_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    ofdm::sim::Campaign campaign(ofdm::sim::parse_deck(text.str()));
    const auto& deck = campaign.deck();
    if (!quiet) {
      std::printf("campaign '%s': %zu standard(s) x %zu channel(s) x "
                  "%zu SNR point(s) = %zu grid points, seed %llu, "
                  "threads %zu%s\n",
                  deck.name.c_str(), deck.standards.size(),
                  deck.channels.size(), deck.snr_db.size(),
                  campaign.grid().size(),
                  static_cast<unsigned long long>(deck.seed),
                  opts.threads, opts.resume ? " [resume]" : "");
    }

    install_stop_handlers();
    opts.cancel = &g_stop;
    const auto result = campaign.run(opts);

    const std::string json_path = out_prefix + ".json";
    const std::string csv_path = out_prefix + ".csv";
    if (!write_file(json_path,
                    ofdm::sim::curves_json(deck, result)) ||
        !write_file(csv_path, ofdm::sim::curves_csv(deck, result))) {
      std::fprintf(stderr, "error: cannot write curves to %s.{json,csv}\n",
                   out_prefix.c_str());
      return 1;
    }

    if (!quiet) {
      std::fputs(ofdm::sim::timing_table(result).c_str(), stdout);
      std::printf("wrote %s and %s\n", json_path.c_str(),
                  csv_path.c_str());
    }
    if (result.halted) {
      if (!quiet) {
        if (result.cancelled) {
          if (opts.checkpoint_path.empty()) {
            std::printf("interrupted by signal after %zu round(s)\n",
                        result.rounds_completed);
          } else {
            std::printf("interrupted by signal after %zu round(s); "
                        "final checkpoint written, resume with "
                        "--checkpoint %s --resume\n",
                        result.rounds_completed,
                        opts.checkpoint_path.c_str());
          }
        } else {
          std::printf("halted after %zu round(s); resume with "
                      "--checkpoint %s --resume\n",
                      result.rounds_completed,
                      opts.checkpoint_path.c_str());
        }
      }
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
