// ofdm_client: command-line client for ofdm_serverd.
//
//   ofdm_client <command> --port P [--host H] [command options]
//
//   ping                                   liveness round trip
//   stats                                  dump daemon counters
//   waveform --standard TOK [--bursts N] [--seed S] [--payload-bits N]
//            [--out FILE]                  stream IQ; FILE gets raw
//                                          interleaved LE float32
//   submit --deck FILE [--deadline S] [--wait] [--out PREFIX]
//                                          submit a campaign deck; with
//                                          --wait poll until terminal
//                                          and fetch curves
//   status --id ID                         one status line
//   result --id ID [--out PREFIX]          fetch curves (PREFIX.json /
//                                          PREFIX.csv, else stdout)
//   cancel --id ID                         cooperative cancel
//   shutdown [--no-drain]                  ask the daemon to exit
//
// Exit codes: 0 success, 1 job/daemon failure, 2 usage or connection
// error. Replies are printed as single JSON lines (scripts parse them
// directly).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/protocol.hpp"

namespace {

using ofdm::net::Json;
using ofdm::net::LineClient;
using ofdm::net::NetError;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <ping|stats|waveform|submit|status|result|cancel|"
               "shutdown>\n"
               "          --port P [--host H] [command options]\n"
               "run with a command and no options for details in the tool "
               "header\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

int fail_reply(const Json& reply) {
  std::printf("%s\n", reply.dump().c_str());
  return 1;
}

/// Fetch both curve formats for a done job and write PREFIX.json/.csv.
int fetch_result(LineClient& client, const std::string& id,
                 const std::string& out_prefix) {
  Json req = Json::object();
  req.set("op", "result").set("id", id).set("format", "json");
  Json reply = client.request(req);
  if (!reply.bool_or("ok", false)) return fail_reply(reply);
  if (out_prefix.empty()) {
    std::printf("%s\n", reply.str_or("curves", "").c_str());
    return 0;
  }
  if (!write_file(out_prefix + ".json", reply.str_or("curves", ""))) {
    std::fprintf(stderr, "cannot write %s.json\n", out_prefix.c_str());
    return 1;
  }
  req = Json::object();
  req.set("op", "result").set("id", id).set("format", "csv");
  reply = client.request(req);
  if (!reply.bool_or("ok", false)) return fail_reply(reply);
  if (!write_file(out_prefix + ".csv", reply.str_or("curves", ""))) {
    std::fprintf(stderr, "cannot write %s.csv\n", out_prefix.c_str());
    return 1;
  }
  std::printf("{\"id\":\"%s\",\"wrote\":[\"%s.json\",\"%s.csv\"]}\n",
              id.c_str(), out_prefix.c_str(), out_prefix.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];

  std::string host = "127.0.0.1";
  int port = 0;
  std::string standard, deck_file, id, out_path;
  double deadline_s = 0.0;
  double wait_timeout_s = 600.0;
  std::size_t bursts = 1, payload_bits = 0;
  std::uint64_t seed = 1;
  bool wait = false, no_drain = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      host = v;
    } else if (arg == "--port" && (v = next())) {
      port = std::atoi(v);
    } else if (arg == "--standard" && (v = next())) {
      standard = v;
    } else if (arg == "--deck" && (v = next())) {
      deck_file = v;
    } else if (arg == "--id" && (v = next())) {
      id = v;
    } else if (arg == "--out" && (v = next())) {
      out_path = v;
    } else if (arg == "--deadline" && (v = next())) {
      deadline_s = std::atof(v);
    } else if (arg == "--wait-timeout" && (v = next())) {
      wait_timeout_s = std::atof(v);
    } else if (arg == "--bursts" && (v = next())) {
      bursts = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--payload-bits" && (v = next())) {
      payload_bits = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--seed" && (v = next())) {
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--no-drain") {
      no_drain = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "%s: --port is required\n", argv[0]);
    return 2;
  }

  LineClient client;
  try {
    client.connect(host, static_cast<std::uint16_t>(port));

    if (cmd == "ping" || cmd == "stats") {
      Json req = Json::object();
      req.set("op", cmd);
      const Json reply = client.request(req);
      std::printf("%s\n", reply.dump().c_str());
      return reply.bool_or("ok", false) ? 0 : 1;
    }

    if (cmd == "waveform") {
      if (standard.empty()) return usage(argv[0]);
      Json req = Json::object();
      req.set("op", "waveform").set("standard", standard);
      if (bursts != 1) req.set("bursts", bursts);
      if (payload_bits != 0) req.set("payload_bits", payload_bits);
      req.set("seed", seed);
      ofdm::cvec samples;
      const Json reply = client.waveform(req, samples);
      if (!reply.bool_or("ok", false)) return fail_reply(reply);
      if (!out_path.empty()) {
        std::vector<std::uint8_t> raw;
        raw.reserve(samples.size() * 8);
        for (const auto& s : samples) {
          const float re = static_cast<float>(s.real());
          const float im = static_cast<float>(s.imag());
          const auto* pr = reinterpret_cast<const std::uint8_t*>(&re);
          const auto* pi = reinterpret_cast<const std::uint8_t*>(&im);
          raw.insert(raw.end(), pr, pr + 4);
          raw.insert(raw.end(), pi, pi + 4);
        }
        std::ofstream out(out_path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(raw.data()),
                  static_cast<std::streamsize>(raw.size()));
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
          return 1;
        }
      }
      std::printf("%s\n", reply.dump().c_str());
      return 0;
    }

    if (cmd == "submit") {
      std::string deck;
      if (deck_file.empty() || !read_file(deck_file, deck)) {
        std::fprintf(stderr, "%s: cannot read deck '%s'\n", argv[0],
                     deck_file.c_str());
        return 2;
      }
      Json req = Json::object();
      req.set("op", "submit").set("deck", deck);
      if (deadline_s > 0.0) req.set("deadline_s", deadline_s);
      Json reply = client.request(req);
      if (!reply.bool_or("ok", false)) return fail_reply(reply);
      const std::string job_id = reply.str_or("id", "");
      if (!wait) {
        std::printf("%s\n", reply.dump().c_str());
        return 0;
      }
      const auto start = std::chrono::steady_clock::now();
      for (;;) {
        Json sreq = Json::object();
        sreq.set("op", "status").set("id", job_id);
        reply = client.request(sreq);
        if (!reply.bool_or("ok", false)) return fail_reply(reply);
        const std::string state = reply.str_or("state", "");
        if (state == "done") break;
        if (state == "failed" || state == "cancelled" || state == "expired") {
          return fail_reply(reply);
        }
        if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() > wait_timeout_s) {
          std::fprintf(stderr, "%s: job %s still %s after %.0fs\n", argv[0],
                       job_id.c_str(), state.c_str(), wait_timeout_s);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      return fetch_result(client, job_id, out_path);
    }

    if (cmd == "status" || cmd == "cancel") {
      if (id.empty()) return usage(argv[0]);
      Json req = Json::object();
      req.set("op", cmd).set("id", id);
      const Json reply = client.request(req);
      std::printf("%s\n", reply.dump().c_str());
      return reply.bool_or("ok", false) ? 0 : 1;
    }

    if (cmd == "result") {
      if (id.empty()) return usage(argv[0]);
      return fetch_result(client, id, out_path);
    }

    if (cmd == "shutdown") {
      Json req = Json::object();
      req.set("op", "shutdown").set("drain", !no_drain);
      const Json reply = client.request(req);
      std::printf("%s\n", reply.dump().c_str());
      return reply.bool_or("ok", false) ? 0 : 1;
    }

    return usage(argv[0]);
  } catch (const NetError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
