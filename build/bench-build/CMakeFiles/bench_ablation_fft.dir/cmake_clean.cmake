file(REMOVE_RECURSE
  "../bench/bench_ablation_fft"
  "../bench/bench_ablation_fft.pdb"
  "CMakeFiles/bench_ablation_fft.dir/bench_ablation_fft.cpp.o"
  "CMakeFiles/bench_ablation_fft.dir/bench_ablation_fft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
