# Empty dependencies file for bench_ablation_fft.
# This may be replaced when dependencies are built.
