# Empty compiler generated dependencies file for bench_ablation_rtl.
# This may be replaced when dependencies are built.
