file(REMOVE_RECURSE
  "../bench/bench_ablation_rtl"
  "../bench/bench_ablation_rtl.pdb"
  "CMakeFiles/bench_ablation_rtl.dir/bench_ablation_rtl.cpp.o"
  "CMakeFiles/bench_ablation_rtl.dir/bench_ablation_rtl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
