file(REMOVE_RECURSE
  "../bench/bench_ablation_window"
  "../bench/bench_ablation_window.pdb"
  "CMakeFiles/bench_ablation_window.dir/bench_ablation_window.cpp.o"
  "CMakeFiles/bench_ablation_window.dir/bench_ablation_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
