# Empty compiler generated dependencies file for bench_ablation_soft.
# This may be replaced when dependencies are built.
