file(REMOVE_RECURSE
  "../bench/bench_ablation_soft"
  "../bench/bench_ablation_soft.pdb"
  "CMakeFiles/bench_ablation_soft.dir/bench_ablation_soft.cpp.o"
  "CMakeFiles/bench_ablation_soft.dir/bench_ablation_soft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_soft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
