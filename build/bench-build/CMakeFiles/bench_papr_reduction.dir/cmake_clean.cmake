file(REMOVE_RECURSE
  "../bench/bench_papr_reduction"
  "../bench/bench_papr_reduction.pdb"
  "CMakeFiles/bench_papr_reduction.dir/bench_papr_reduction.cpp.o"
  "CMakeFiles/bench_papr_reduction.dir/bench_papr_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_papr_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
