# Empty compiler generated dependencies file for bench_papr_reduction.
# This may be replaced when dependencies are built.
