file(REMOVE_RECURSE
  "../bench/bench_e1_reconfiguration"
  "../bench/bench_e1_reconfiguration.pdb"
  "CMakeFiles/bench_e1_reconfiguration.dir/bench_e1_reconfiguration.cpp.o"
  "CMakeFiles/bench_e1_reconfiguration.dir/bench_e1_reconfiguration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
