# Empty dependencies file for bench_e1_reconfiguration.
# This may be replaced when dependencies are built.
