# Empty dependencies file for bench_e3_derivation.
# This may be replaced when dependencies are built.
