file(REMOVE_RECURSE
  "../bench/bench_e3_derivation"
  "../bench/bench_e3_derivation.pdb"
  "CMakeFiles/bench_e3_derivation.dir/bench_e3_derivation.cpp.o"
  "CMakeFiles/bench_e3_derivation.dir/bench_e3_derivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
