
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_simtime.cpp" "bench-build/CMakeFiles/bench_e2_simtime.dir/bench_e2_simtime.cpp.o" "gcc" "bench-build/CMakeFiles/bench_e2_simtime.dir/bench_e2_simtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ofdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/ofdm_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ofdm_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ofdm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ofdm_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ofdm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
