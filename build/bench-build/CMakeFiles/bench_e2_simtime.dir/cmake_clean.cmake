file(REMOVE_RECURSE
  "../bench/bench_e2_simtime"
  "../bench/bench_e2_simtime.pdb"
  "CMakeFiles/bench_e2_simtime.dir/bench_e2_simtime.cpp.o"
  "CMakeFiles/bench_e2_simtime.dir/bench_e2_simtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
