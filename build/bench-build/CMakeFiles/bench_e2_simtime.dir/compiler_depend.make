# Empty compiler generated dependencies file for bench_e2_simtime.
# This may be replaced when dependencies are built.
