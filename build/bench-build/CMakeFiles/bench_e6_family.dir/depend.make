# Empty dependencies file for bench_e6_family.
# This may be replaced when dependencies are built.
