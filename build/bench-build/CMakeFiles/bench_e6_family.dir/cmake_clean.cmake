file(REMOVE_RECURSE
  "../bench/bench_e6_family"
  "../bench/bench_e6_family.pdb"
  "CMakeFiles/bench_e6_family.dir/bench_e6_family.cpp.o"
  "CMakeFiles/bench_e6_family.dir/bench_e6_family.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
