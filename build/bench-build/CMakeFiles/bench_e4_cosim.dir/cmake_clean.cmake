file(REMOVE_RECURSE
  "../bench/bench_e4_cosim"
  "../bench/bench_e4_cosim.pdb"
  "CMakeFiles/bench_e4_cosim.dir/bench_e4_cosim.cpp.o"
  "CMakeFiles/bench_e4_cosim.dir/bench_e4_cosim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
