file(REMOVE_RECURSE
  "../bench/bench_e5_throughput"
  "../bench/bench_e5_throughput.pdb"
  "CMakeFiles/bench_e5_throughput.dir/bench_e5_throughput.cpp.o"
  "CMakeFiles/bench_e5_throughput.dir/bench_e5_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
