file(REMOVE_RECURSE
  "libofdm_metrics.a"
)
