# Empty compiler generated dependencies file for ofdm_metrics.
# This may be replaced when dependencies are built.
