file(REMOVE_RECURSE
  "CMakeFiles/ofdm_metrics.dir/ber.cpp.o"
  "CMakeFiles/ofdm_metrics.dir/ber.cpp.o.d"
  "CMakeFiles/ofdm_metrics.dir/evm.cpp.o"
  "CMakeFiles/ofdm_metrics.dir/evm.cpp.o.d"
  "CMakeFiles/ofdm_metrics.dir/mask.cpp.o"
  "CMakeFiles/ofdm_metrics.dir/mask.cpp.o.d"
  "CMakeFiles/ofdm_metrics.dir/papr.cpp.o"
  "CMakeFiles/ofdm_metrics.dir/papr.cpp.o.d"
  "libofdm_metrics.a"
  "libofdm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
