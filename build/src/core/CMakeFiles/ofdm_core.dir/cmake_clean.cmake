file(REMOVE_RECURSE
  "CMakeFiles/ofdm_core.dir/modulator.cpp.o"
  "CMakeFiles/ofdm_core.dir/modulator.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/params.cpp.o"
  "CMakeFiles/ofdm_core.dir/params.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/params_io.cpp.o"
  "CMakeFiles/ofdm_core.dir/params_io.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/pilots.cpp.o"
  "CMakeFiles/ofdm_core.dir/pilots.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/preamble.cpp.o"
  "CMakeFiles/ofdm_core.dir/preamble.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/dab.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/dab.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/drm.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/drm.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/dsl.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/dsl.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/dvbt.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/dvbt.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/homeplug.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/homeplug.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/wlan.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/wlan.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/profiles/wman.cpp.o"
  "CMakeFiles/ofdm_core.dir/profiles/wman.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/standard.cpp.o"
  "CMakeFiles/ofdm_core.dir/standard.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/tone_map.cpp.o"
  "CMakeFiles/ofdm_core.dir/tone_map.cpp.o.d"
  "CMakeFiles/ofdm_core.dir/transmitter.cpp.o"
  "CMakeFiles/ofdm_core.dir/transmitter.cpp.o.d"
  "libofdm_core.a"
  "libofdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
