file(REMOVE_RECURSE
  "libofdm_core.a"
)
