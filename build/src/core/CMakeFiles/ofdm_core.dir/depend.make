# Empty dependencies file for ofdm_core.
# This may be replaced when dependencies are built.
