
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/modulator.cpp" "src/core/CMakeFiles/ofdm_core.dir/modulator.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/modulator.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/ofdm_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/params.cpp.o.d"
  "/root/repo/src/core/params_io.cpp" "src/core/CMakeFiles/ofdm_core.dir/params_io.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/params_io.cpp.o.d"
  "/root/repo/src/core/pilots.cpp" "src/core/CMakeFiles/ofdm_core.dir/pilots.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/pilots.cpp.o.d"
  "/root/repo/src/core/preamble.cpp" "src/core/CMakeFiles/ofdm_core.dir/preamble.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/preamble.cpp.o.d"
  "/root/repo/src/core/profiles/dab.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/dab.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/dab.cpp.o.d"
  "/root/repo/src/core/profiles/drm.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/drm.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/drm.cpp.o.d"
  "/root/repo/src/core/profiles/dsl.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/dsl.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/dsl.cpp.o.d"
  "/root/repo/src/core/profiles/dvbt.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/dvbt.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/dvbt.cpp.o.d"
  "/root/repo/src/core/profiles/homeplug.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/homeplug.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/homeplug.cpp.o.d"
  "/root/repo/src/core/profiles/wlan.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/wlan.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/wlan.cpp.o.d"
  "/root/repo/src/core/profiles/wman.cpp" "src/core/CMakeFiles/ofdm_core.dir/profiles/wman.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/profiles/wman.cpp.o.d"
  "/root/repo/src/core/standard.cpp" "src/core/CMakeFiles/ofdm_core.dir/standard.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/standard.cpp.o.d"
  "/root/repo/src/core/tone_map.cpp" "src/core/CMakeFiles/ofdm_core.dir/tone_map.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/tone_map.cpp.o.d"
  "/root/repo/src/core/transmitter.cpp" "src/core/CMakeFiles/ofdm_core.dir/transmitter.cpp.o" "gcc" "src/core/CMakeFiles/ofdm_core.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ofdm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ofdm_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ofdm_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
