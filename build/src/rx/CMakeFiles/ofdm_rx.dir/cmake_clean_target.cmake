file(REMOVE_RECURSE
  "libofdm_rx.a"
)
