file(REMOVE_RECURSE
  "CMakeFiles/ofdm_rx.dir/receiver.cpp.o"
  "CMakeFiles/ofdm_rx.dir/receiver.cpp.o.d"
  "CMakeFiles/ofdm_rx.dir/sync.cpp.o"
  "CMakeFiles/ofdm_rx.dir/sync.cpp.o.d"
  "CMakeFiles/ofdm_rx.dir/wlan_rx.cpp.o"
  "CMakeFiles/ofdm_rx.dir/wlan_rx.cpp.o.d"
  "libofdm_rx.a"
  "libofdm_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
