# Empty compiler generated dependencies file for ofdm_rx.
# This may be replaced when dependencies are built.
