file(REMOVE_RECURSE
  "libofdm_rf.a"
)
