file(REMOVE_RECURSE
  "CMakeFiles/ofdm_rf.dir/chain.cpp.o"
  "CMakeFiles/ofdm_rf.dir/chain.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/channel.cpp.o"
  "CMakeFiles/ofdm_rf.dir/channel.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/fading.cpp.o"
  "CMakeFiles/ofdm_rf.dir/fading.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/frontend.cpp.o"
  "CMakeFiles/ofdm_rf.dir/frontend.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/impairments.cpp.o"
  "CMakeFiles/ofdm_rf.dir/impairments.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/netlist.cpp.o"
  "CMakeFiles/ofdm_rf.dir/netlist.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/pa.cpp.o"
  "CMakeFiles/ofdm_rf.dir/pa.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/papr_reduction.cpp.o"
  "CMakeFiles/ofdm_rf.dir/papr_reduction.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/sinks.cpp.o"
  "CMakeFiles/ofdm_rf.dir/sinks.cpp.o.d"
  "CMakeFiles/ofdm_rf.dir/submodel.cpp.o"
  "CMakeFiles/ofdm_rf.dir/submodel.cpp.o.d"
  "libofdm_rf.a"
  "libofdm_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
