# Empty compiler generated dependencies file for ofdm_rf.
# This may be replaced when dependencies are built.
