
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/chain.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/chain.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/chain.cpp.o.d"
  "/root/repo/src/rf/channel.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/channel.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/channel.cpp.o.d"
  "/root/repo/src/rf/fading.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/fading.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/fading.cpp.o.d"
  "/root/repo/src/rf/frontend.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/frontend.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/frontend.cpp.o.d"
  "/root/repo/src/rf/impairments.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/impairments.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/impairments.cpp.o.d"
  "/root/repo/src/rf/netlist.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/netlist.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/netlist.cpp.o.d"
  "/root/repo/src/rf/pa.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/pa.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/pa.cpp.o.d"
  "/root/repo/src/rf/papr_reduction.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/papr_reduction.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/papr_reduction.cpp.o.d"
  "/root/repo/src/rf/sinks.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/sinks.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/sinks.cpp.o.d"
  "/root/repo/src/rf/submodel.cpp" "src/rf/CMakeFiles/ofdm_rf.dir/submodel.cpp.o" "gcc" "src/rf/CMakeFiles/ofdm_rf.dir/submodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ofdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ofdm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ofdm_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ofdm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
