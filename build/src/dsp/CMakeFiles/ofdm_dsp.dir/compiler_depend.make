# Empty compiler generated dependencies file for ofdm_dsp.
# This may be replaced when dependencies are built.
