file(REMOVE_RECURSE
  "CMakeFiles/ofdm_dsp.dir/fft.cpp.o"
  "CMakeFiles/ofdm_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/ofdm_dsp.dir/fir.cpp.o"
  "CMakeFiles/ofdm_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/ofdm_dsp.dir/resample.cpp.o"
  "CMakeFiles/ofdm_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/ofdm_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/ofdm_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/ofdm_dsp.dir/window.cpp.o"
  "CMakeFiles/ofdm_dsp.dir/window.cpp.o.d"
  "libofdm_dsp.a"
  "libofdm_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
