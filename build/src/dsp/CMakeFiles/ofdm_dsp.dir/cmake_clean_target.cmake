file(REMOVE_RECURSE
  "libofdm_dsp.a"
)
