file(REMOVE_RECURSE
  "libofdm_rtl.a"
)
