# Empty dependencies file for ofdm_rtl.
# This may be replaced when dependencies are built.
