
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/components.cpp" "src/rtl/CMakeFiles/ofdm_rtl.dir/components.cpp.o" "gcc" "src/rtl/CMakeFiles/ofdm_rtl.dir/components.cpp.o.d"
  "/root/repo/src/rtl/kernel.cpp" "src/rtl/CMakeFiles/ofdm_rtl.dir/kernel.cpp.o" "gcc" "src/rtl/CMakeFiles/ofdm_rtl.dir/kernel.cpp.o.d"
  "/root/repo/src/rtl/vhdl_gen.cpp" "src/rtl/CMakeFiles/ofdm_rtl.dir/vhdl_gen.cpp.o" "gcc" "src/rtl/CMakeFiles/ofdm_rtl.dir/vhdl_gen.cpp.o.d"
  "/root/repo/src/rtl/wlan_tx.cpp" "src/rtl/CMakeFiles/ofdm_rtl.dir/wlan_tx.cpp.o" "gcc" "src/rtl/CMakeFiles/ofdm_rtl.dir/wlan_tx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ofdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ofdm_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ofdm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ofdm_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
