file(REMOVE_RECURSE
  "CMakeFiles/ofdm_rtl.dir/components.cpp.o"
  "CMakeFiles/ofdm_rtl.dir/components.cpp.o.d"
  "CMakeFiles/ofdm_rtl.dir/kernel.cpp.o"
  "CMakeFiles/ofdm_rtl.dir/kernel.cpp.o.d"
  "CMakeFiles/ofdm_rtl.dir/vhdl_gen.cpp.o"
  "CMakeFiles/ofdm_rtl.dir/vhdl_gen.cpp.o.d"
  "CMakeFiles/ofdm_rtl.dir/wlan_tx.cpp.o"
  "CMakeFiles/ofdm_rtl.dir/wlan_tx.cpp.o.d"
  "libofdm_rtl.a"
  "libofdm_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
