file(REMOVE_RECURSE
  "libofdm_mapping.a"
)
