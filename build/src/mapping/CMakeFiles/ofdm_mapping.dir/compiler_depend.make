# Empty compiler generated dependencies file for ofdm_mapping.
# This may be replaced when dependencies are built.
