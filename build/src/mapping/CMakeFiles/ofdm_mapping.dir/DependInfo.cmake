
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/bitloading.cpp" "src/mapping/CMakeFiles/ofdm_mapping.dir/bitloading.cpp.o" "gcc" "src/mapping/CMakeFiles/ofdm_mapping.dir/bitloading.cpp.o.d"
  "/root/repo/src/mapping/constellation.cpp" "src/mapping/CMakeFiles/ofdm_mapping.dir/constellation.cpp.o" "gcc" "src/mapping/CMakeFiles/ofdm_mapping.dir/constellation.cpp.o.d"
  "/root/repo/src/mapping/differential.cpp" "src/mapping/CMakeFiles/ofdm_mapping.dir/differential.cpp.o" "gcc" "src/mapping/CMakeFiles/ofdm_mapping.dir/differential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
