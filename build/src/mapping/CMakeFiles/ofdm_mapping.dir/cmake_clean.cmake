file(REMOVE_RECURSE
  "CMakeFiles/ofdm_mapping.dir/bitloading.cpp.o"
  "CMakeFiles/ofdm_mapping.dir/bitloading.cpp.o.d"
  "CMakeFiles/ofdm_mapping.dir/constellation.cpp.o"
  "CMakeFiles/ofdm_mapping.dir/constellation.cpp.o.d"
  "CMakeFiles/ofdm_mapping.dir/differential.cpp.o"
  "CMakeFiles/ofdm_mapping.dir/differential.cpp.o.d"
  "libofdm_mapping.a"
  "libofdm_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
