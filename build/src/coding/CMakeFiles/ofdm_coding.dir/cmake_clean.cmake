file(REMOVE_RECURSE
  "CMakeFiles/ofdm_coding.dir/convolutional.cpp.o"
  "CMakeFiles/ofdm_coding.dir/convolutional.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/crc.cpp.o"
  "CMakeFiles/ofdm_coding.dir/crc.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/interleaver.cpp.o"
  "CMakeFiles/ofdm_coding.dir/interleaver.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/lfsr.cpp.o"
  "CMakeFiles/ofdm_coding.dir/lfsr.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/mpeg_ts.cpp.o"
  "CMakeFiles/ofdm_coding.dir/mpeg_ts.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/reed_solomon.cpp.o"
  "CMakeFiles/ofdm_coding.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/ofdm_coding.dir/viterbi.cpp.o"
  "CMakeFiles/ofdm_coding.dir/viterbi.cpp.o.d"
  "libofdm_coding.a"
  "libofdm_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
