
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/convolutional.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/convolutional.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/convolutional.cpp.o.d"
  "/root/repo/src/coding/crc.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/crc.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/crc.cpp.o.d"
  "/root/repo/src/coding/interleaver.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/interleaver.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/interleaver.cpp.o.d"
  "/root/repo/src/coding/lfsr.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/lfsr.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/lfsr.cpp.o.d"
  "/root/repo/src/coding/mpeg_ts.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/mpeg_ts.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/mpeg_ts.cpp.o.d"
  "/root/repo/src/coding/reed_solomon.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/reed_solomon.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/coding/viterbi.cpp" "src/coding/CMakeFiles/ofdm_coding.dir/viterbi.cpp.o" "gcc" "src/coding/CMakeFiles/ofdm_coding.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
