file(REMOVE_RECURSE
  "libofdm_coding.a"
)
