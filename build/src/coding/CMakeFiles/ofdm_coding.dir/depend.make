# Empty dependencies file for ofdm_coding.
# This may be replaced when dependencies are built.
