# Empty compiler generated dependencies file for ofdm_coding.
# This may be replaced when dependencies are built.
