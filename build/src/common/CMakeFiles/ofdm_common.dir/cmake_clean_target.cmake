file(REMOVE_RECURSE
  "libofdm_common.a"
)
