# Empty dependencies file for ofdm_common.
# This may be replaced when dependencies are built.
