file(REMOVE_RECURSE
  "CMakeFiles/ofdm_common.dir/bits.cpp.o"
  "CMakeFiles/ofdm_common.dir/bits.cpp.o.d"
  "CMakeFiles/ofdm_common.dir/error.cpp.o"
  "CMakeFiles/ofdm_common.dir/error.cpp.o.d"
  "CMakeFiles/ofdm_common.dir/math_util.cpp.o"
  "CMakeFiles/ofdm_common.dir/math_util.cpp.o.d"
  "CMakeFiles/ofdm_common.dir/rng.cpp.o"
  "CMakeFiles/ofdm_common.dir/rng.cpp.o.d"
  "libofdm_common.a"
  "libofdm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
