file(REMOVE_RECURSE
  "CMakeFiles/test_loopback.dir/test_loopback.cpp.o"
  "CMakeFiles/test_loopback.dir/test_loopback.cpp.o.d"
  "test_loopback"
  "test_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
