# Empty compiler generated dependencies file for test_loopback.
# This may be replaced when dependencies are built.
