# Empty compiler generated dependencies file for test_bitloading.
# This may be replaced when dependencies are built.
