file(REMOVE_RECURSE
  "CMakeFiles/test_bitloading.dir/test_bitloading.cpp.o"
  "CMakeFiles/test_bitloading.dir/test_bitloading.cpp.o.d"
  "test_bitloading"
  "test_bitloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
