file(REMOVE_RECURSE
  "CMakeFiles/test_convolutional.dir/test_convolutional.cpp.o"
  "CMakeFiles/test_convolutional.dir/test_convolutional.cpp.o.d"
  "test_convolutional"
  "test_convolutional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convolutional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
