# Empty compiler generated dependencies file for test_convolutional.
# This may be replaced when dependencies are built.
