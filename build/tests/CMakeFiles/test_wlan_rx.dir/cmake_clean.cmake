file(REMOVE_RECURSE
  "CMakeFiles/test_wlan_rx.dir/test_wlan_rx.cpp.o"
  "CMakeFiles/test_wlan_rx.dir/test_wlan_rx.cpp.o.d"
  "test_wlan_rx"
  "test_wlan_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlan_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
