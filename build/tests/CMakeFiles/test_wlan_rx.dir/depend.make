# Empty dependencies file for test_wlan_rx.
# This may be replaced when dependencies are built.
