file(REMOVE_RECURSE
  "CMakeFiles/test_params_io.dir/test_params_io.cpp.o"
  "CMakeFiles/test_params_io.dir/test_params_io.cpp.o.d"
  "test_params_io"
  "test_params_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_params_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
