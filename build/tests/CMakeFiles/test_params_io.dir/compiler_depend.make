# Empty compiler generated dependencies file for test_params_io.
# This may be replaced when dependencies are built.
