file(REMOVE_RECURSE
  "CMakeFiles/test_profiles.dir/test_profiles.cpp.o"
  "CMakeFiles/test_profiles.dir/test_profiles.cpp.o.d"
  "test_profiles"
  "test_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
