file(REMOVE_RECURSE
  "CMakeFiles/test_mpeg_ts.dir/test_mpeg_ts.cpp.o"
  "CMakeFiles/test_mpeg_ts.dir/test_mpeg_ts.cpp.o.d"
  "test_mpeg_ts"
  "test_mpeg_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpeg_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
