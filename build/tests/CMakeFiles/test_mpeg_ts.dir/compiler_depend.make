# Empty compiler generated dependencies file for test_mpeg_ts.
# This may be replaced when dependencies are built.
