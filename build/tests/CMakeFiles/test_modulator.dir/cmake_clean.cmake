file(REMOVE_RECURSE
  "CMakeFiles/test_modulator.dir/test_modulator.cpp.o"
  "CMakeFiles/test_modulator.dir/test_modulator.cpp.o.d"
  "test_modulator"
  "test_modulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
