# Empty dependencies file for test_modulator.
# This may be replaced when dependencies are built.
