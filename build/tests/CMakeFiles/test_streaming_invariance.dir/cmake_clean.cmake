file(REMOVE_RECURSE
  "CMakeFiles/test_streaming_invariance.dir/test_streaming_invariance.cpp.o"
  "CMakeFiles/test_streaming_invariance.dir/test_streaming_invariance.cpp.o.d"
  "test_streaming_invariance"
  "test_streaming_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
