# Empty compiler generated dependencies file for test_streaming_invariance.
# This may be replaced when dependencies are built.
