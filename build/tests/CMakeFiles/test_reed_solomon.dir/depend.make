# Empty dependencies file for test_reed_solomon.
# This may be replaced when dependencies are built.
