file(REMOVE_RECURSE
  "CMakeFiles/test_reed_solomon.dir/test_reed_solomon.cpp.o"
  "CMakeFiles/test_reed_solomon.dir/test_reed_solomon.cpp.o.d"
  "test_reed_solomon"
  "test_reed_solomon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reed_solomon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
