# Empty dependencies file for test_property_random_configs.
# This may be replaced when dependencies are built.
