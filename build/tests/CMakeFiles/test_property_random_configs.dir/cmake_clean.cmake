file(REMOVE_RECURSE
  "CMakeFiles/test_property_random_configs.dir/test_property_random_configs.cpp.o"
  "CMakeFiles/test_property_random_configs.dir/test_property_random_configs.cpp.o.d"
  "test_property_random_configs"
  "test_property_random_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
