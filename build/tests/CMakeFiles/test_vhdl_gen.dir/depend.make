# Empty dependencies file for test_vhdl_gen.
# This may be replaced when dependencies are built.
