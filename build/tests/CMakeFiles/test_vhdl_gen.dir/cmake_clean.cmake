file(REMOVE_RECURSE
  "CMakeFiles/test_vhdl_gen.dir/test_vhdl_gen.cpp.o"
  "CMakeFiles/test_vhdl_gen.dir/test_vhdl_gen.cpp.o.d"
  "test_vhdl_gen"
  "test_vhdl_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vhdl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
