
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_vhdl_gen.cpp" "tests/CMakeFiles/test_vhdl_gen.dir/test_vhdl_gen.cpp.o" "gcc" "tests/CMakeFiles/test_vhdl_gen.dir/test_vhdl_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/ofdm_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ofdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ofdm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ofdm_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ofdm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ofdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
