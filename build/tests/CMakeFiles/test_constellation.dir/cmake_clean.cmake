file(REMOVE_RECURSE
  "CMakeFiles/test_constellation.dir/test_constellation.cpp.o"
  "CMakeFiles/test_constellation.dir/test_constellation.cpp.o.d"
  "test_constellation"
  "test_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
