# Empty compiler generated dependencies file for test_constellation.
# This may be replaced when dependencies are built.
