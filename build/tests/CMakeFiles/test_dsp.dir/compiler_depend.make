# Empty compiler generated dependencies file for test_dsp.
# This may be replaced when dependencies are built.
