file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/test_dsp.cpp.o"
  "CMakeFiles/test_dsp.dir/test_dsp.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
