file(REMOVE_RECURSE
  "CMakeFiles/test_transmitter.dir/test_transmitter.cpp.o"
  "CMakeFiles/test_transmitter.dir/test_transmitter.cpp.o.d"
  "test_transmitter"
  "test_transmitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transmitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
