# Empty compiler generated dependencies file for test_transmitter.
# This may be replaced when dependencies are built.
