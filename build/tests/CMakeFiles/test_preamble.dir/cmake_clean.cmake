file(REMOVE_RECURSE
  "CMakeFiles/test_preamble.dir/test_preamble.cpp.o"
  "CMakeFiles/test_preamble.dir/test_preamble.cpp.o.d"
  "test_preamble"
  "test_preamble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
