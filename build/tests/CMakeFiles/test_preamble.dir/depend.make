# Empty dependencies file for test_preamble.
# This may be replaced when dependencies are built.
