file(REMOVE_RECURSE
  "CMakeFiles/test_cosim.dir/test_cosim.cpp.o"
  "CMakeFiles/test_cosim.dir/test_cosim.cpp.o.d"
  "test_cosim"
  "test_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
