# Empty dependencies file for test_cosim.
# This may be replaced when dependencies are built.
