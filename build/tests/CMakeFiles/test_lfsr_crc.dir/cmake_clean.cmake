file(REMOVE_RECURSE
  "CMakeFiles/test_lfsr_crc.dir/test_lfsr_crc.cpp.o"
  "CMakeFiles/test_lfsr_crc.dir/test_lfsr_crc.cpp.o.d"
  "test_lfsr_crc"
  "test_lfsr_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfsr_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
