# Empty dependencies file for test_lfsr_crc.
# This may be replaced when dependencies are built.
