file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_fading.dir/test_netlist_fading.cpp.o"
  "CMakeFiles/test_netlist_fading.dir/test_netlist_fading.cpp.o.d"
  "test_netlist_fading"
  "test_netlist_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
