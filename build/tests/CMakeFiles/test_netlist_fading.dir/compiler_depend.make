# Empty compiler generated dependencies file for test_netlist_fading.
# This may be replaced when dependencies are built.
