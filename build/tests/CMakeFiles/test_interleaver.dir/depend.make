# Empty dependencies file for test_interleaver.
# This may be replaced when dependencies are built.
