file(REMOVE_RECURSE
  "CMakeFiles/test_interleaver.dir/test_interleaver.cpp.o"
  "CMakeFiles/test_interleaver.dir/test_interleaver.cpp.o.d"
  "test_interleaver"
  "test_interleaver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interleaver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
