# Empty dependencies file for dab_mobile.
# This may be replaced when dependencies are built.
