file(REMOVE_RECURSE
  "CMakeFiles/dab_mobile.dir/dab_mobile.cpp.o"
  "CMakeFiles/dab_mobile.dir/dab_mobile.cpp.o.d"
  "dab_mobile"
  "dab_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dab_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
