# Empty dependencies file for wlan_over_rf.
# This may be replaced when dependencies are built.
