file(REMOVE_RECURSE
  "CMakeFiles/wlan_over_rf.dir/wlan_over_rf.cpp.o"
  "CMakeFiles/wlan_over_rf.dir/wlan_over_rf.cpp.o.d"
  "wlan_over_rf"
  "wlan_over_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_over_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
