# Empty compiler generated dependencies file for standard_survey.
# This may be replaced when dependencies are built.
