file(REMOVE_RECURSE
  "CMakeFiles/standard_survey.dir/standard_survey.cpp.o"
  "CMakeFiles/standard_survey.dir/standard_survey.cpp.o.d"
  "standard_survey"
  "standard_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
