file(REMOVE_RECURSE
  "CMakeFiles/adsl_dmt.dir/adsl_dmt.cpp.o"
  "CMakeFiles/adsl_dmt.dir/adsl_dmt.cpp.o.d"
  "adsl_dmt"
  "adsl_dmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsl_dmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
