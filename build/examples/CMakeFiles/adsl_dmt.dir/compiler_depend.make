# Empty compiler generated dependencies file for adsl_dmt.
# This may be replaced when dependencies are built.
