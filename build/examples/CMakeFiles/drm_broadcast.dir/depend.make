# Empty dependencies file for drm_broadcast.
# This may be replaced when dependencies are built.
