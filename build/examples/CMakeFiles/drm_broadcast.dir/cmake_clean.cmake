file(REMOVE_RECURSE
  "CMakeFiles/drm_broadcast.dir/drm_broadcast.cpp.o"
  "CMakeFiles/drm_broadcast.dir/drm_broadcast.cpp.o.d"
  "drm_broadcast"
  "drm_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drm_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
