// Campaign-engine throughput: one small 802.11a AWGN BER sweep run by
// sim::Campaign at 1 worker vs N workers.
//
// Early stopping is disabled (stop.rel_ci tiny) so every configuration
// executes the identical trial count — what changes between configs is
// only the work-stealing schedule, which also double-checks the
// thread-invariance contract on every bench run. The JSON goes to
// BENCH_sim.json at the repo root and is gated by
// bench/regress.py --sim (machine-relative, like --graph).
//
// Usage:
//   bench_sim [--trials N] [--out FILE] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "sim/aggregator.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace ofdm;

sim::ScenarioDeck bench_deck(std::size_t trials) {
  std::ostringstream deck;
  deck << "name=bench_sim\n"
          "standard=wlan_80211a@24\n"
          "snr_db=2:4:14\n"  // 4 points
          "payload_bits=512\n"
          "trials.min=" << trials << "\n"
          "trials.max=" << trials << "\n"
          "trials.batch=8\n"
          "stop.rel_ci=1e-12\n"  // never CI-stop: fixed workload
          "seed=17\n";
  return sim::parse_deck(deck.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 96;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_sim [--trials N] [--out FILE]"
                   " [--quiet]\n";
      return 2;
    }
  }

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t many = hw > 1 ? hw : 4;
  struct Config {
    const char* suffix;  ///< appended to "threads<N>" in the JSON name
    std::size_t threads;
    bool use_batch;
  };
  // threads1 runs first so the other configs' speedup fields are
  // relative to the single-threaded batch-API baseline.
  const Config configs[] = {
      {"", 1, true},
      {"_nobatch", 1, false},  // A/B lever: per-trial allocating path
      {"", many, true},
  };

  std::ostringstream json;
  json << "{\n \"trials_per_point\": " << trials << ",\n \"configs\": [\n";
  double single_tps = 0.0;
  std::string reference_json;
  bool first = true;
  for (const Config& cfg : configs) {
    sim::Campaign campaign(bench_deck(trials));
    sim::RunOptions opts;
    opts.threads = cfg.threads;
    opts.use_batch_api = cfg.use_batch;
    campaign.run(opts);  // warm-up (allocator, code paths)
    // Best-of-3: single-shot wall times on a shared host swing by more
    // than the effects this bench resolves (scheduling, batch API).
    auto result = campaign.run(opts);
    for (int rep = 1; rep < 3; ++rep) {
      auto again = campaign.run(opts);
      if (again.elapsed_seconds < result.elapsed_seconds) {
        result = std::move(again);
      }
    }

    std::size_t total_trials = 0;
    for (const auto& p : result.points) total_trials += p.state.trials;
    const double tps =
        static_cast<double>(total_trials) / result.elapsed_seconds;
    if (single_tps == 0.0) single_tps = tps;
    const double speedup = single_tps > 0.0 ? tps / single_tps : 0.0;

    // Free cross-check: the curve bytes must not depend on the thread
    // count or on the batch-vs-per-trial API choice.
    const std::string curves =
        sim::curves_json(campaign.deck(), result);
    if (reference_json.empty()) {
      reference_json = curves;
    } else if (curves != reference_json) {
      std::cerr << "error: curves differ between configurations — "
                   "determinism contract broken\n";
      return 1;
    }

    if (!quiet) {
      std::printf("threads=%-3zu batch=%d %7zu trials  %8.1f trials/s  "
                  "speedup %5.2fx  (%.3fs, %zu rounds)\n",
                  cfg.threads, cfg.use_batch ? 1 : 0, total_trials, tps,
                  speedup, result.elapsed_seconds,
                  result.rounds_completed);
    }
    if (!first) json << ",\n";
    json << "  {\"name\": \"threads" << cfg.threads << cfg.suffix
         << "\", \"threads\": " << cfg.threads
         << ", \"batch\": " << (cfg.use_batch ? "true" : "false")
         << ", \"trials\": " << total_trials
         << ", \"trials_per_second\": " << tps
         << ", \"speedup\": " << speedup << "}";
    first = false;
  }
  json << "\n ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
