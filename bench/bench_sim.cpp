// Campaign-engine throughput: one small 802.11a AWGN BER sweep run by
// sim::Campaign at 1 worker vs N workers.
//
// Early stopping is disabled (stop.rel_ci tiny) so every configuration
// executes the identical trial count — what changes between configs is
// only the work-stealing schedule, which also double-checks the
// thread-invariance contract on every bench run. The JSON goes to
// BENCH_sim.json at the repo root and is gated by
// bench/regress.py --sim (machine-relative, like --graph).
//
// Usage:
//   bench_sim [--trials N] [--out FILE] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "sim/aggregator.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace ofdm;

sim::ScenarioDeck bench_deck(std::size_t trials) {
  std::ostringstream deck;
  deck << "name=bench_sim\n"
          "standard=wlan_80211a@24\n"
          "snr_db=2:4:14\n"  // 4 points
          "payload_bits=512\n"
          "trials.min=" << trials << "\n"
          "trials.max=" << trials << "\n"
          "trials.batch=8\n"
          "stop.rel_ci=1e-12\n"  // never CI-stop: fixed workload
          "seed=17\n";
  return sim::parse_deck(deck.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 96;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_sim [--trials N] [--out FILE]"
                   " [--quiet]\n";
      return 2;
    }
  }

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t many = hw > 1 ? hw : 4;
  const std::size_t thread_counts[] = {1, many};

  std::ostringstream json;
  json << "{\n \"trials_per_point\": " << trials << ",\n \"configs\": [\n";
  double single_tps = 0.0;
  std::string reference_json;
  bool first = true;
  for (std::size_t threads : thread_counts) {
    sim::Campaign campaign(bench_deck(trials));
    sim::RunOptions opts;
    opts.threads = threads;
    campaign.run(opts);  // warm-up (allocator, code paths)
    const auto result = campaign.run(opts);

    std::size_t total_trials = 0;
    for (const auto& p : result.points) total_trials += p.state.trials;
    const double tps =
        static_cast<double>(total_trials) / result.elapsed_seconds;
    if (threads == 1) single_tps = tps;
    const double speedup = single_tps > 0.0 ? tps / single_tps : 0.0;

    // Free cross-check: the curve bytes must not depend on the thread
    // count.
    const std::string curves =
        sim::curves_json(campaign.deck(), result);
    if (reference_json.empty()) {
      reference_json = curves;
    } else if (curves != reference_json) {
      std::cerr << "error: curves differ between thread counts — "
                   "determinism contract broken\n";
      return 1;
    }

    if (!quiet) {
      std::printf("threads=%-3zu %7zu trials  %8.1f trials/s  "
                  "speedup %5.2fx  (%.3fs, %zu rounds)\n",
                  threads, total_trials, tps, speedup,
                  result.elapsed_seconds, result.rounds_completed);
    }
    if (!first) json << ",\n";
    json << "  {\"name\": \"threads" << threads
         << "\", \"threads\": " << threads
         << ", \"trials\": " << total_trials
         << ", \"trials_per_second\": " << tps
         << ", \"speedup\": " << speedup << "}";
    first = false;
  }
  json << "\n ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
