// Extension bench — PAPR reduction ahead of the PA.
//
// Regenerates the CCDF-of-PAPR figure (per family member) and shows
// what clipping-and-filtering buys in the E4 setting: at a fixed PA
// back-off, the clipped signal keeps more EVM/mask margin, or
// equivalently the same quality is reached at lower back-off.
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "metrics/papr.hpp"
#include "rf/chain.hpp"
#include "rf/pa.hpp"
#include "rf/papr_reduction.hpp"
#include "rf/sinks.hpp"
#include "rx/receiver.hpp"

namespace {

using namespace ofdm;

void papr_ccdf_per_standard() {
  std::printf("(1) CCDF of per-symbol PAPR (probability PAPR > x dB)\n\n");
  const rvec thresholds = {5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0};
  std::printf("%-20s", "standard");
  for (double t : thresholds) std::printf(" >%4.0fdB", t);
  std::printf("\n");

  Rng rng(21);
  for (core::Standard s : core::kStandardFamily) {
    core::OfdmParams params = core::profile_for(s);
    if (params.frame.symbols_per_frame > 24) {
      params.frame.symbols_per_frame = 24;
    }
    core::Transmitter tx(params);
    cvec samples;
    for (int frame = 0; frame < 6; ++frame) {
      const auto burst = tx.modulate(rng.bits(
          std::min<std::size_t>(tx.recommended_payload_bits(), 4000)));
      const auto body = std::span<const cplx>(burst.samples)
                            .subspan(burst.null_samples);
      samples.insert(samples.end(), body.begin(), body.end());
    }
    const auto ccdf =
        metrics::papr_ccdf(samples, params.symbol_len(), thresholds);
    std::printf("%-20s", core::standard_name(s).c_str());
    for (double p : ccdf.probability) std::printf(" %7.3f", p);
    std::printf("\n");
  }
  std::printf("\n");
}

void clip_filter_gain() {
  std::printf("(2) clipping-and-filtering ahead of the PA "
              "(802.11a, 36 Mbit/s, Rapp s=2)\n\n");
  const auto params = core::profile_wlan_80211a(core::WlanRate::k36);
  core::Transmitter tx(params);
  Rng rng(22);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rx::Receiver ref_rx(params);
  const auto clean =
      ref_rx.extract_data_tones(burst.samples, burst.data_symbols);

  std::printf("%-10s %-12s %-10s %-10s %-14s\n", "CAF", "backoff_dB",
              "PAPR_dB", "EVM_dB", "mask_margin_dB");
  for (bool caf : {false, true}) {
    for (double backoff : {8.0, 6.0, 4.0}) {
      rf::Chain chain;
      if (caf) {
        // 802.11a occupies +-8.3 MHz of the 20 MHz band: cutoff 0.42.
        chain.add<rf::ClipAndFilter>(5.0, 0.42, 2);
      }
      auto& papr_meter = chain.add<rf::PowerMeter>();
      chain.add<rf::Gain>(-backoff);
      chain.add<rf::RappPa>(2.0, 1.0);
      chain.add<rf::Gain>(backoff);
      dsp::WelchConfig cfg;
      cfg.segment = 256;
      cfg.sample_rate = 20e6;
      auto& analyzer = chain.add<rf::SpectrumAnalyzer>(cfg);

      cvec rx_samples;
      for (int rep = 0; rep < 6; ++rep) {
        cvec out = chain.process(burst.samples);
        if (rep == 0) rx_samples = std::move(out);
      }

      rx::Receiver rx(params);
      rx.set_equalizer(rx.estimate_equalizer(rx_samples));
      const auto tones =
          rx.extract_data_tones(rx_samples, burst.data_symbols);
      cvec all_rx;
      cvec all_ref;
      for (std::size_t sym = 0; sym < tones.size(); ++sym) {
        all_rx.insert(all_rx.end(), tones[sym].begin(),
                      tones[sym].end());
        all_ref.insert(all_ref.end(), clean[sym].begin(),
                       clean[sym].end());
      }
      const auto evm = metrics::evm(all_rx, all_ref);
      const auto mask = metrics::check_mask(
          analyzer.psd(), metrics::wlan_mask(), 8.5e6, 9e6);

      std::printf("%-10s %-12.0f %-10.2f %-10.1f %-14.1f\n",
                  caf ? "on" : "off", backoff, papr_meter.papr_db(),
                  evm.rms_db(), mask.worst_margin_db);
      papr_meter.reset();
    }
  }
  std::printf("\nClipping trades a fixed EVM cost for PAPR; at "
              "aggressive back-off the\nclipped chain keeps more mask "
              "margin because the PA sees fewer peaks.\n");
}

}  // namespace

int main() {
  std::printf("=== Extension: PAPR and its reduction (feeds experiment "
              "E4) ===\n\n");
  papr_ccdf_per_standard();
  clip_filter_gain();
  return 0;
}
