// Ablation — hard vs soft decision decoding in the reference receiver.
//
// The coded BER waterfall of experiment E4, run twice: once with the
// hard-decision Viterbi and once with max-log LLR demapping feeding the
// soft Viterbi. The textbook expectation — and the reproduced shape —
// is a ~2 dB SNR advantage for soft decisions on AWGN.
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "rf/channel.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  std::printf("=== Ablation: hard vs soft Viterbi decoding (AWGN, "
              "802.11a 12 Mbit/s) ===\n\n");
  std::printf("%-9s %-14s %-14s\n", "SNR_dB", "BER_hard", "BER_soft");

  const auto params = core::profile_wlan_80211a(core::WlanRate::k12);
  core::Transmitter tx(params);
  Rng rng(77);

  for (double snr_db = 0.0; snr_db <= 8.0; snr_db += 1.0) {
    metrics::BerCounter hard;
    metrics::BerCounter soft;
    for (int frame = 0; frame < 20; ++frame) {
      const bitvec payload = rng.bits(tx.recommended_payload_bits());
      const auto burst = tx.modulate(payload);

      rf::AwgnChannel ch(
          rf::snr_to_noise_power(1.0, snr_db),
          static_cast<std::uint64_t>(frame) * 131 + 7);
      const cvec rx_samples = ch.process(burst.samples);

      rx::Receiver rx_hard(params);
      rx_hard.set_equalizer(rx_hard.estimate_equalizer(rx_samples));
      hard.add(payload,
               rx_hard.demodulate(rx_samples, payload.size()).payload);

      rx::Receiver rx_soft(params);
      rx_soft.set_equalizer(rx_soft.estimate_equalizer(rx_samples));
      rx_soft.enable_soft_decoding(true);
      soft.add(payload,
               rx_soft.demodulate(rx_samples, payload.size()).payload);
    }
    std::printf("%-9.0f %-14.3e %-14.3e\n", snr_db,
                hard.result().rate(), soft.result().rate());
  }

  std::printf("\nThe soft curve reaches any target BER ~2 dB earlier "
              "than the hard\ncurve — the classic soft-decision gain, "
              "reproduced end-to-end through\nthe OFDM air interface.\n");
  return 0;
}
