// Ablation — why the Mother Model carries a dual-path FFT.
//
// DESIGN.md calls out the FFT design choice: radix-2 for the
// power-of-two family members, Bluestein for DRM's 1152/704/448-point
// symbols, and an O(N^2) reference DFT for verification only. This
// bench quantifies the gap between the three, justifying both the
// existence of the Bluestein path (a reference DFT would be unusably
// slow) and its restriction to non-power-of-two sizes (radix-2 is
// several times faster where it applies).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/math_util.hpp"
#include "dsp/fft.hpp"

namespace {

using namespace ofdm;

cvec random_signal(std::size_t n) {
  Rng rng(n);
  cvec x(n);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  return x;
}

void BM_FftPlanned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dsp::Fft fft(n);
  const cvec x = random_signal(n);
  cvec out(n);
  for (auto _ : state) {
    fft.forward(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(fft.is_radix2() ? "radix-2" : "bluestein");
}
// Power-of-two member sizes vs the DRM sizes right next to them.
BENCHMARK(BM_FftPlanned)
    ->Arg(64)      // 802.11a/g
    ->Arg(256)     // 802.16a / HomePlug
    ->Arg(448)     // DRM mode D  (Bluestein)
    ->Arg(512)     // ADSL
    ->Arg(704)     // DRM mode C  (Bluestein)
    ->Arg(1024)    // DRM mode B / ADSL2+
    ->Arg(1152)    // DRM mode A  (Bluestein)
    ->Arg(2048)    // DAB I / DVB-T 2k
    ->Arg(8192);   // VDSL / DVB-T 8k

void BM_ReferenceDft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cvec x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::reference_dft(x).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel("reference-N^2");
}
BENCHMARK(BM_ReferenceDft)->Arg(64)->Arg(448)->Arg(1152);

void BM_PlanConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dsp::Fft fft(n);
    benchmark::DoNotOptimize(&fft);
  }
  state.SetLabel(is_pow2(n) ? "radix-2" : "bluestein");
}
BENCHMARK(BM_PlanConstruction)->Arg(1024)->Arg(1152);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: FFT execution paths (DESIGN.md S2) ===\n\n");
  std::printf("radix-2 serves the nine power-of-two members; Bluestein "
              "exists only\nbecause DRM's robustness modes need "
              "448/704/1152-point transforms.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
