// Experiment E2 — the paper's simulation-time claim (§1, §3):
//   "The IP blocks on the market are typically described at RT-level
//    which causes an impractical increase to the simulation times."
//   "Since the digital block was modeled at behavioral level, it was
//    fast to simulate i.e. it had only negligible influence on the
//    total simulation time of the whole transmitter."
//
// Measured three ways on identical 802.11a bursts:
//   (a) behavioural Mother Model   — ns per produced baseband sample
//   (b) cycle-level RTL datapath   — ns per produced baseband sample
//   (c) full RF co-simulation      — share of wall-clock spent in the
//       behavioural source vs the analog chain.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/frontend.hpp"
#include "rf/pa.hpp"
#include "rf/submodel.hpp"
#include "rtl/wlan_tx.hpp"

namespace {

using namespace ofdm;

core::OfdmParams behavioural_params(std::size_t n_symbols) {
  core::OfdmParams p = core::profile_wlan_80211a(core::WlanRate::k6);
  p.frame.preamble = core::PreambleKind::kNone;  // match the RTL datapath
  p.window_ramp = 0;
  p.frame.symbols_per_frame = n_symbols;
  return p;
}

void BM_BehaviouralTx(benchmark::State& state) {
  const auto n_symbols = static_cast<std::size_t>(state.range(0));
  core::Transmitter tx(behavioural_params(n_symbols));
  Rng rng(1);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  std::size_t samples = 0;
  for (auto _ : state) {
    auto burst = tx.modulate(payload);
    benchmark::DoNotOptimize(burst.samples.data());
    samples += burst.samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.counters["ns_per_sample"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate |
                                        benchmark::Counter::kInvert);
}
BENCHMARK(BM_BehaviouralTx)->Arg(4)->Arg(16)->Arg(64);

void BM_RtlTx(benchmark::State& state) {
  const auto n_symbols = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const bitvec payload = rng.bits(n_symbols * 24 - 6);
  std::size_t samples = 0;
  for (auto _ : state) {
    auto run = rtl::run_wlan_tx(mapping::Scheme::kBpsk, n_symbols,
                                payload);
    benchmark::DoNotOptimize(run.samples.data());
    samples += run.samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.counters["ns_per_sample"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate |
                                        benchmark::Counter::kInvert);
}
BENCHMARK(BM_RtlTx)->Arg(4)->Arg(16);

// The analog chain alone (tone source) isolates the non-source cost of
// a co-simulation step.
void BM_RfChainOnly(benchmark::State& state) {
  rf::ToneSource src(1e6, 20e6);
  rf::Chain chain;
  chain.add<rf::Gain>(-8.0);
  chain.add<rf::RappPa>(2.0, 1.0);
  chain.add<rf::AwgnChannel>(0.01, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.process(src.pull(4096)).data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_RfChainOnly);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E2: behavioural vs RT-level simulation time (paper "
              "§1/§3) ===\n\n");

  // --- headline table: identical bursts, two abstraction levels --------
  {
    const std::size_t n_symbols = 16;
    Rng rng(1);
    const bitvec payload = rng.bits(n_symbols * 24 - 6);

    core::Transmitter tx(behavioural_params(n_symbols));
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t beh_samples = 0;
    const int beh_reps = 200;
    for (int i = 0; i < beh_reps; ++i) {
      beh_samples += tx.modulate(payload).samples.size();
    }
    const double beh_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    const auto t1 = std::chrono::steady_clock::now();
    const auto rtl_run =
        rtl::run_wlan_tx(mapping::Scheme::kBpsk, n_symbols, payload);
    const double rtl_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t1)
                             .count();

    const double beh_ns =
        1e9 * beh_s / static_cast<double>(beh_samples);
    const double rtl_ns =
        1e9 * rtl_s / static_cast<double>(rtl_run.samples.size());

    std::printf("%-28s %-16s %-16s\n", "model", "ns/sample",
                "kernel activity");
    std::printf("%-28s %-16.1f %-16s\n", "behavioural Mother Model",
                beh_ns, "-");
    char activity[64];
    std::snprintf(activity, sizeof activity, "%.1fk events",
                  static_cast<double>(rtl_run.stats.timed_events) / 1e3);
    std::printf("%-28s %-16.1f %-16s\n", "RT-level datapath", rtl_ns,
                activity);
    std::printf("\nRT-level / behavioural slowdown: %.0fx\n\n",
                rtl_ns / beh_ns);
  }

  // --- co-simulation share: source vs analog chain ----------------------
  {
    rf::Submodel src(core::profile_wlan_80211a(core::WlanRate::k36), 80);
    rf::Chain chain;
    chain.add<rf::Gain>(-8.0);
    chain.add<rf::RappPa>(2.0, 1.0);
    chain.add<rf::MultipathChannel>(
        rf::exponential_pdp_taps(2.0, 8, 99));
    chain.add<rf::AwgnChannel>(0.01, 7);
    const rf::RunStats stats = rf::run(src, chain, 1 << 20, 4096);

    std::printf("Full RF co-simulation, 2^20 samples:\n");
    std::printf("  total wall-clock:        %.3f s\n",
                stats.elapsed_seconds);
    std::printf("  digital source share:    %.1f %%\n",
                100.0 * stats.source_seconds / stats.elapsed_seconds);
    std::printf("  analog chain share:      %.1f %%\n",
                100.0 * (1.0 - stats.source_seconds /
                                   stats.elapsed_seconds));
    // Counterfactual: replace the behavioural source with the RT-level
    // one at the slowdown measured above (conservatively 30x).
    const double rtl_source = 30.0 * stats.source_seconds;
    const double chain_time =
        stats.elapsed_seconds - stats.source_seconds;
    std::printf("  (RT-level source would take %.1f %% of a %.2fx "
                "longer run)\n",
                100.0 * rtl_source / (rtl_source + chain_time),
                (rtl_source + chain_time) / stats.elapsed_seconds);
    std::printf("\nPaper's claim: the behavioural digital block has "
                "'only negligible\ninfluence on the total simulation "
                "time'. An RT-level source at the\nmeasured slowdown "
                "would dominate the co-simulation entirely.\n\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
