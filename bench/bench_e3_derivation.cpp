// Experiment E3 — the paper's design-time argument (§4):
//   "Although the design time of the reconfigurable Mother Model is
//    longer than the design time of an individual standard specific
//    model, the individual standards can be derived more quickly from
//    the Mother Model ... In the case of two or more different
//    standards this approach is time saving."
//
// Design time is not directly measurable in a reproduction, so we use
// the observable proxies the repository itself provides:
//   * derivation effort  = configuration fields changed vs the baseline
//     profile (each field is one design decision);
//   * model surface      = total configuration fields;
//   * changeover latency = wall-clock cost of Transmitter::configure.
// The break-even table then applies the paper's cost model
//   mother-model route:  C_mother + k * c_derive
//   separate route:      k * C_single
// with effort expressed in "design decisions" (parameter count).
#include <chrono>
#include <cstdio>

#include "core/profiles.hpp"
#include "core/transmitter.hpp"

int main() {
  using namespace ofdm;

  std::printf("=== E3: derivation effort & break-even (paper §4) ===\n\n");

  const core::OfdmParams base = core::profile_wlan_80211a();
  const std::size_t surface = core::parameter_count(base);

  std::printf("Model surface: %zu configuration fields (the Mother "
              "Model's full\nreconfiguration state).\n\n",
              surface);
  std::printf("%-20s %-18s %-18s %-14s\n", "standard",
              "fields_changed", "fields_reused_%", "reconfig_us");

  double total_changed = 0.0;
  core::Transmitter tx(base);
  for (core::Standard s : core::kStandardFamily) {
    const core::OfdmParams target = core::profile_for(s);
    const std::size_t changed = core::parameter_distance(base, target);
    total_changed += static_cast<double>(changed);

    const auto t0 = std::chrono::steady_clock::now();
    tx.configure(target);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    std::printf("%-20s %-18zu %-18.0f %-14.1f\n",
                core::standard_name(s).c_str(), changed,
                100.0 * static_cast<double>(surface - changed) /
                    static_cast<double>(surface),
                us);
  }
  const double avg_changed = total_changed / 10.0;

  // Break-even, following the paper's cost model:
  //   mother route:   C_mother + k * c_derive
  //   separate route: k * C_single
  // Designing a standard-specific model from scratch costs one design
  // decision per field (machinery included); *deriving* one changes
  // avg_changed fields, but setting a value on existing machinery is
  // cheaper than designing it — the weight w below. w = 1 charges a full
  // decision per changed field (very conservative); w ~ 0.3 reflects
  // "look the number up in the standard and type it in".
  const double c_single = static_cast<double>(surface);
  const double c_mother = 1.6 * c_single;  // the paper's "longer" design

  std::printf("\nCost model (units: design decisions): single model %.0f, "
              "Mother Model\n(one-off) %.0f, derivation %.1f changed "
              "fields x weight w.\n",
              c_single, c_mother, avg_changed);

  for (const double w : {1.0, 0.3}) {
    const double c_derive = w * avg_changed;
    std::printf("\n-- weight w = %.1f --\n", w);
    std::printf("%-12s %-20s %-20s %s\n", "k standards", "mother route",
                "separate route", "winner");
    std::size_t crossover = 0;
    for (std::size_t k = 1; k <= 10; ++k) {
      const double mother = c_mother + static_cast<double>(k) * c_derive;
      const double separate = static_cast<double>(k) * c_single;
      if (crossover == 0 && mother < separate) crossover = k;
      std::printf("%-12zu %-20.1f %-20.1f %s\n", k, mother, separate,
                  mother < separate ? "mother model" : "separate");
    }
    std::printf("break-even at k = %zu standards\n", crossover);
  }

  std::printf(
      "\nPaper's claim: 'in the case of two or more different standards "
      "this\napproach is time saving.' The realistic weight reproduces "
      "the k = 2\ncrossover; even charging a full design decision per "
      "changed field\nonly pushes it to k = 4.\n");
  return 0;
}
