// Ablation — raised-cosine symbol windowing (DESIGN.md S5).
//
// The Mother Model's window_ramp parameter tapers symbol edges with a
// raised-cosine overlap. This sweep shows what the knob buys: spectral
// shoulders (and thus 802.11a mask margin) improve with ramp length
// while EVM stays untouched, because the taper never reaches into the
// FFT window (proved bit-exactly in test_modulator.cpp).
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/spectrum.hpp"
#include "metrics/ber.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  std::printf("=== Ablation: OFDM symbol windowing (DESIGN.md S5) "
              "===\n\n");
  std::printf("802.11a 36 Mbit/s burst; window_ramp swept. Shoulder "
              "level measured as\npeak PSD in the 8.5..9.9 MHz offset "
              "band relative to the in-band peak.\n\n");
  std::printf("%-8s %-16s %-16s %-12s %s\n", "ramp", "shoulder_dBr",
              "mask_margin_dB", "EVM_dB", "loopback");

  Rng rng(12);
  for (std::size_t ramp : {std::size_t{0}, std::size_t{1},
                           std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    core::OfdmParams params =
        core::profile_wlan_80211a(core::WlanRate::k36);
    params.window_ramp = ramp;
    params.frame.symbols_per_frame = 40;  // long burst: stable PSD
    core::Transmitter tx(params);

    const bitvec payload = rng.bits(tx.recommended_payload_bits());
    const auto burst = tx.modulate(payload);

    dsp::WelchConfig cfg;
    cfg.segment = 512;
    cfg.sample_rate = params.sample_rate;
    const auto psd = dsp::welch_psd(burst.samples, cfg);
    const double ref = psd.peak_in_band(-8e6, 8e6);
    const double shoulder =
        to_db(psd.peak_in_band(8.5e6, 9.9e6) / ref);
    const auto mask =
        metrics::check_mask(psd, metrics::wlan_mask(), 8.5e6, 9e6);

    // EVM against the unwindowed reference tones + loopback.
    rx::Receiver rx(params);
    const auto tones =
        rx.extract_data_tones(burst.samples, burst.data_symbols);
    // Blind EVM: tones are exactly on constellation points when the
    // window leaves the FFT region untouched.
    const auto constellation =
        mapping::Constellation::make(params.scheme);
    cvec all;
    for (const auto& sym : tones) {
      all.insert(all.end(), sym.begin(), sym.end());
    }
    const auto evm = metrics::evm_blind(all, constellation);

    const auto result = rx.demodulate(burst.samples, payload.size());
    const auto ber = metrics::ber(payload, result.payload);

    std::printf("%-8zu %-16.1f %-16.1f %-12.1f %s\n", ramp, shoulder,
                mask.worst_margin_db, evm.rms_db(),
                ber.errors == 0 ? "clean" : "ERRORS");
  }

  std::printf("\nWindowing is pure spectral hygiene: shoulders drop "
              "with ramp length\nwhile constellation quality and "
              "decodability are untouched.\n");
  return 0;
}
