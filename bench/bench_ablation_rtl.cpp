// Ablation — what makes RT-level co-simulation slow (DESIGN.md S8).
//
// Decomposes the cost of the event-driven RTL baseline: timed clock
// events, delta cycles, process activations and signal updates per
// produced baseband sample, plus a raw kernel micro-benchmark. This is
// the quantitative backing for the paper's "impractical increase in
// simulation times" premise: the slowdown is structural (events per
// sample), not an artifact of one slow component.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "rtl/kernel.hpp"
#include "rtl/wlan_tx.hpp"

namespace {

using namespace ofdm;

// Raw kernel overhead: one clock, one trivial process.
void BM_KernelClockTick(benchmark::State& state) {
  for (auto _ : state) {
    rtl::Simulator sim;
    rtl::Clock clk(sim, 5);
    int edges = 0;
    rtl::Process* p = sim.make_process("count", [&]() { ++edges; });
    clk.signal().sensitize(p);
    sim.run(10000);  // 1000 toggles
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_KernelClockTick);

// Signal update path: N signals written per delta.
void BM_KernelSignalUpdates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rtl::Simulator sim;
    std::vector<std::unique_ptr<rtl::Signal<int>>> sigs;
    for (std::size_t i = 0; i < n; ++i) {
      sigs.push_back(std::make_unique<rtl::Signal<int>>(sim, 0));
    }
    int round = 0;
    rtl::Process* writer = sim.make_process("writer", [&]() {
      for (auto& s : sigs) s->write(round);
      ++round;
    });
    for (int t = 1; t <= 100; ++t) {
      sim.schedule_at(static_cast<rtl::SimTime>(t), writer);
    }
    sim.run();
    benchmark::DoNotOptimize(round);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(100 * n));
}
BENCHMARK(BM_KernelSignalUpdates)->Arg(1)->Arg(16)->Arg(64);

void BM_RtlWlanSymbol(benchmark::State& state) {
  Rng rng(3);
  const std::size_t n_symbols = 8;
  const bitvec payload = rng.bits(n_symbols * 24 - 6);
  for (auto _ : state) {
    auto run = rtl::run_wlan_tx(mapping::Scheme::kBpsk, n_symbols,
                                payload);
    benchmark::DoNotOptimize(run.samples.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_symbols * 80));
}
BENCHMARK(BM_RtlWlanSymbol);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: event-kernel cost structure (DESIGN.md S8) "
              "===\n\n");

  // Activity accounting for one RTL burst.
  {
    Rng rng(3);
    const std::size_t n_symbols = 8;
    const bitvec payload = rng.bits(n_symbols * 24 - 6);
    const auto run =
        rtl::run_wlan_tx(mapping::Scheme::kBpsk, n_symbols, payload);
    const double samples = static_cast<double>(run.samples.size());

    std::printf("RTL 802.11a burst, %zu symbols (%zu samples):\n",
                n_symbols, run.samples.size());
    std::printf("  timed events:          %8llu  (%.1f per sample)\n",
                static_cast<unsigned long long>(run.stats.timed_events),
                static_cast<double>(run.stats.timed_events) / samples);
    std::printf("  delta cycles:          %8llu  (%.1f per sample)\n",
                static_cast<unsigned long long>(run.stats.delta_cycles),
                static_cast<double>(run.stats.delta_cycles) / samples);
    std::printf("  process activations:   %8llu  (%.1f per sample)\n",
                static_cast<unsigned long long>(
                    run.stats.process_activations),
                static_cast<double>(run.stats.process_activations) /
                    samples);
    std::printf("  signal updates:        %8llu  (%.1f per sample)\n",
                static_cast<unsigned long long>(run.stats.signal_updates),
                static_cast<double>(run.stats.signal_updates) / samples);
    std::printf(
        "\nEvery produced sample costs ~5 clock cycles of pipeline "
        "work, and\nevery cycle costs timed-event + delta + activation "
        "overhead — the\nstructural reason RT-level models are unusable "
        "as RF-simulator\nsignal sources.\n\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
