#!/usr/bin/env python3
"""E5 throughput regression runner with per-block attribution.

Default mode runs the per-standard generation benchmark
(bench_e5_throughput) with Google Benchmark's JSON reporter and writes
the result to BENCH_e5.json at the repo root. If a previous
BENCH_e5.json exists, each benchmark is compared against it first and
regressions beyond --tolerance are reported (exit code 1), so CI can
gate on generation throughput. The kernel micro-benchmarks
(kernel_*/scalar vs kernel_*/<tier>) additionally gate the SIMD
dispatch layer: on a host whose best tier is not scalar, at least two
kernels must hold a >= 1.5x machine-relative speedup. The FFT engine
sweep (kernel_fft<N>/radix2 vs kernel_fft<N>/splitradix, both at the
host's best tier) gates the split-radix engine the same way: at least
one size must hold a >= 1.8x machine-relative speedup over the legacy
radix-2 engine.

--blocks switches to the observability-layer attribution mode: it runs
bench_report_blocks (a probed Submodel -> impairment-chain sweep over
all ten standards) and compares each block's throughput against the
BENCH_blocks.json baseline, so a regression is pinned to the exact
block (e.g. "multipath in DVB-T") instead of a whole benchmark. The
report's "kernels" section carries the same scalar-vs-SIMD speedup
gate.

--graph runs bench_graph (end-to-end RF-graph throughput, sequential
driver vs the pipeline-parallel executor at 2/4/8 stages) and compares
each configuration's throughput against the BENCH_graph.json baseline.
The gate is machine-relative on purpose: absolute pipeline speedup
depends on the host's core count, so what CI enforces is that neither
the sequential driver nor any executor configuration got slower
relative to the checked-in numbers from the same environment.

--sim runs bench_sim (the Monte-Carlo campaign engine sweeping a fixed
802.11a AWGN workload at 1 worker vs all cores, with and without the
batch trial API) and compares each configuration's trials-per-second
against the BENCH_sim.json baseline. Like --graph, the gate is
machine-relative.

--rx runs bench_rx (the RX Mother Model's per-standard stage
throughput: synchronize, estimate_equalizer, the SIMD soft-demap
kernel and soft-decision Viterbi, each timed in isolation) and
compares each stage's ops-per-second against the BENCH_rx.json
baseline. Machine-relative, like --sim.

--server runs bench_server (an in-process ofdm_serverd core on
loopback, driven through net::LineClient: ping round trips, waveform
streaming, an end-to-end campaign through the job queue, and cached
resubmissions) and compares each configuration's ops-per-second
against the BENCH_server.json baseline. Loopback socket timing is the
noisiest of the modes, so its default gate is the widest (0.50).

Every gated failure is reported as one line per regressed key with the
old and new values, e.g.
    regression: BENCH_sim.json: threads1: 117.0 -> 71.2 trials/s (0.61x)

Usage:
    python3 bench/regress.py [--build-dir build] [--tolerance 0.15]
                             [--min-time 1] [--check-only]
    python3 bench/regress.py --blocks [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --graph [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --sim [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --rx [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --server [--tolerance 0.50] [--check-only]
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_e5.json"
BLOCKS_FILE = REPO_ROOT / "BENCH_blocks.json"
GRAPH_FILE = REPO_ROOT / "BENCH_graph.json"
SIM_FILE = REPO_ROOT / "BENCH_sim.json"
RX_FILE = REPO_ROOT / "BENCH_rx.json"
SERVER_FILE = REPO_ROOT / "BENCH_server.json"

# Blocks below this share of the baseline's wall time never gate: their
# single-run timings are scheduler noise, and a regression that small
# cannot explain an end-to-end slowdown anyway.
MIN_WALL_FRACTION = 0.05

# The dispatch-layer acceptance gate: this many kernels must hold this
# machine-relative speedup over the scalar tier (skipped when the host's
# best tier IS scalar).
KERNEL_MIN_SPEEDUP = 1.5
KERNEL_MIN_COUNT = 2

# The FFT-engine acceptance gate: at least one kernel_fft<N>
# radix2/splitradix pair must show the split-radix engine at this
# machine-relative speedup over the legacy radix-2 engine.
FFT_ENGINE_MIN_SPEEDUP = 1.8
FFT_ENGINE_MIN_COUNT = 1


def run_exe(build_dir: pathlib.Path, name: str, argv: list) -> dict:
    exe = build_dir / "bench" / name
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / f"{name}_tmp.json"
    subprocess.run([str(exe)] + argv + ["--out", str(out), "--quiet"],
                   check=True, cwd=REPO_ROOT)
    with open(out) as f:
        return json.load(f)


def run_bench(build_dir: pathlib.Path, min_time: float) -> dict:
    exe = build_dir / "bench" / "bench_e5_throughput"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_e5_tmp.json"
    # --benchmark_out writes clean JSON to the file; the human-readable
    # banner and summary table stay on stdout.
    subprocess.run(
        [str(exe),
         f"--benchmark_out={out}",
         "--benchmark_out_format=json",
         f"--benchmark_min_time={min_time}"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


# ---------------------------------------------------------------------------
# Row extraction: every mode reduces its report to a flat list of
#   {key, value, label, wall_fraction}
# rows, and one generic comparator gates all four baselines.

def rows_e5(report: dict) -> list:
    rows = []
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        ips = b.get("items_per_second", 0.0)
        rows.append({"key": b["name"], "value": ips / 1e6,
                     "label": b.get("label", "")})
    return rows


def rows_blocks(report: dict) -> list:
    rows = []
    for standard, rep in report.get("standards", {}).items():
        for blk in rep.get("blocks", []):
            rows.append({"key": f"{standard}/{blk['name']}",
                         "value": blk.get("throughput_msps", 0.0),
                         "label": "",
                         "wall_fraction": blk.get("wall_fraction", 1.0)})
    return rows


def rows_configs(value_field: str):
    def extract(report: dict) -> list:
        return [{"key": c["name"], "value": c.get(value_field, 0.0),
                 "label": f"threads={c.get('threads', 0)}"}
                for c in report.get("configs", [])]
    return extract


def compare_rows(old: dict, new: dict, tolerance: float, extract,
                 unit: str, baseline_file: pathlib.Path,
                 min_wall_fraction: float = 0.0) -> bool:
    """Print per-key ratios; one stderr line per gated regression.

    Returns True when nothing gated regressed. A key only gates when its
    *baseline* row carried at least `min_wall_fraction` of the run's
    wall time (1.0 when the mode does not track wall shares).
    """
    old_rows = {r["key"]: r for r in extract(old)}
    regressions = []
    print(f"\n{'key':<42s} {'label':<18s} {'old ' + unit:>12s} "
          f"{'new ' + unit:>12s} {'ratio':>7s}")
    for row in extract(new):
        key, new_v = row["key"], row["value"]
        prev = old_rows.get(key)
        if prev is None or not new_v:
            print(f"{key:<42s} {row['label']:<18s} {'-':>12s} "
                  f"{new_v:12.2f} {'new':>7s}")
            continue
        old_v = prev["value"]
        ratio = new_v / old_v if old_v else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            if prev.get("wall_fraction", 1.0) >= min_wall_fraction:
                flag = "  <-- REGRESSION"
                regressions.append((key, old_v, new_v, ratio))
            else:
                flag = (f"  (noise: <{min_wall_fraction:.0%} wall share, "
                        f"not gated)")
        print(f"{key:<42s} {row['label']:<18s} {old_v:12.2f} "
              f"{new_v:12.2f} {ratio:6.2f}x{flag}")
    for key, old_v, new_v, ratio in regressions:
        print(f"regression: {baseline_file.name}: {key}: "
              f"{old_v:.2f} -> {new_v:.2f} {unit} ({ratio:.2f}x, "
              f"allowed >= {1.0 - tolerance:.2f}x)", file=sys.stderr)
    return not regressions


# ---------------------------------------------------------------------------
# Kernel speedup gates (dispatch-layer acceptance).

def kernel_pairs_e5(report: dict) -> tuple:
    """(tier, {kernel: speedup}) from kernel_<name>/<variant> benches.

    The radix2/splitradix variants belong to the FFT-engine gate, not
    the tier gate, and are skipped here."""
    scalar, simd, tier = {}, {}, "scalar"
    for b in report.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith("kernel_") or "/" not in name:
            continue
        kernel, variant = name.split("/", 1)
        if variant in ("radix2", "splitradix"):
            continue
        ips = b.get("items_per_second", 0.0)
        if variant == "scalar":
            scalar[kernel] = ips
        else:
            simd[kernel] = ips
            tier = b.get("label", variant) or variant
    speedups = {k: simd[k] / scalar[k]
                for k in simd if scalar.get(k)}
    return tier, speedups


def fft_engine_pairs_e5(report: dict) -> dict:
    """{kernel_fft<N>: splitradix/radix2 speedup} from the engine A/B
    sweep (empty when the sweep did not run)."""
    radix2, splitradix = {}, {}
    for b in report.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith("kernel_fft") or "/" not in name:
            continue
        kernel, variant = name.split("/", 1)
        ips = b.get("items_per_second", 0.0)
        if variant == "radix2":
            radix2[kernel] = ips
        elif variant == "splitradix":
            splitradix[kernel] = ips
    return {k: splitradix[k] / radix2[k]
            for k in splitradix if radix2.get(k)}


def check_fft_engine_speedups(speedups: dict,
                              baseline_file: pathlib.Path) -> bool:
    """At least FFT_ENGINE_MIN_COUNT size(s) at FFT_ENGINE_MIN_SPEEDUP x
    split-radix over radix-2 (skipped when the sweep did not run)."""
    if not speedups:
        print("\nfft engine gate: skipped (no engine sweep in report)")
        return True
    fast = [k for k, s in speedups.items()
            if s >= FFT_ENGINE_MIN_SPEEDUP]
    print("\nfft engine gate (splitradix vs radix2): " +
          ", ".join(f"{k} {speedups[k]:.2f}x" for k in sorted(speedups)))
    if len(fast) < FFT_ENGINE_MIN_COUNT:
        print(f"fft engine gate: {baseline_file.name}: only {len(fast)} "
              f"size(s) at >= {FFT_ENGINE_MIN_SPEEDUP:.1f}x over radix-2 "
              f"(need {FFT_ENGINE_MIN_COUNT}); speedups: " +
              ", ".join(f"{k}={s:.2f}x"
                        for k, s in sorted(speedups.items())),
              file=sys.stderr)
        return False
    return True


def kernel_pairs_blocks(report: dict) -> tuple:
    kernels = report.get("kernels", {})
    tier = kernels.get("tier", "scalar")
    speedups = {e["name"]: e.get("speedup", 0.0)
                for e in kernels.get("entries", [])}
    return tier, speedups


def check_kernel_speedups(tier: str, speedups: dict,
                          baseline_file: pathlib.Path) -> bool:
    """At least KERNEL_MIN_COUNT kernels at KERNEL_MIN_SPEEDUP x, unless
    the host has no SIMD tier at all (or the benches did not run)."""
    if tier == "scalar" or not speedups:
        print(f"\nkernel gate: skipped (dispatch tier is scalar)")
        return True
    fast = sorted((k for k, s in speedups.items()
                   if s >= KERNEL_MIN_SPEEDUP),
                  key=lambda k: -speedups[k])
    print(f"\nkernel gate ({tier} vs scalar): " +
          ", ".join(f"{k} {speedups[k]:.2f}x"
                    for k in sorted(speedups)))
    if len(fast) < KERNEL_MIN_COUNT:
        print(f"kernel gate: {baseline_file.name}: only {len(fast)} "
              f"kernel(s) at >= {KERNEL_MIN_SPEEDUP:.1f}x over scalar "
              f"(need {KERNEL_MIN_COUNT}); speedups: " +
              ", ".join(f"{k}={s:.2f}x"
                        for k, s in sorted(speedups.items())),
              file=sys.stderr)
        return False
    return True


def load_baseline(path: pathlib.Path) -> dict:
    """Read a baseline JSON file, exiting with a one-line error (no
    traceback) when it is unreadable or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read baseline {path.name}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: baseline {path.name} is not valid JSON "
                 f"(line {e.lineno}: {e.msg}) -- delete it or rerun "
                 f"without --check-only to regenerate")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
gating:
  Default mode gates on whole-benchmark throughput vs BENCH_e5.json and
  on the scalar-vs-SIMD kernel speedups. --blocks gates per block per
  standard vs BENCH_blocks.json: a block regresses the run (exit 1)
  only when it slows beyond --tolerance AND carried >= 5% of the
  baseline's wall time; slimmer blocks are printed as "(noise ...)" but
  never gate, since their single-run timings are scheduler noise.
  Baselines rewrite on every run unless --check-only is given;
  --check-only requires the baseline to exist.""")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown before a benchmark "
                         "counts as a regression (default: 0.15)")
    ap.add_argument("--min-time", type=float, default=1.0,
                    help="--benchmark_min_time per benchmark in seconds")
    ap.add_argument("--check-only", action="store_true",
                    help="compare against the baseline without updating it")
    ap.add_argument("--blocks", action="store_true",
                    help="per-block attribution mode: run "
                         "bench_report_blocks and compare each block's "
                         "throughput against BENCH_blocks.json")
    ap.add_argument("--graph", action="store_true",
                    help="graph-executor mode: run bench_graph "
                         "(sequential vs 2/4/8 pipeline stages) and "
                         "compare each configuration's throughput "
                         "against BENCH_graph.json")
    ap.add_argument("--sim", action="store_true",
                    help="campaign-engine mode: run bench_sim (fixed "
                         "802.11a AWGN sweep, 1 worker vs all cores) and "
                         "compare each configuration's trials/s against "
                         "BENCH_sim.json")
    ap.add_argument("--rx", action="store_true",
                    help="receiver mode: run bench_rx (per-standard RX "
                         "Mother Model stage throughput: sync, equalize, "
                         "demap_soft, soft Viterbi) and compare each "
                         "stage's ops/s against BENCH_rx.json")
    ap.add_argument("--server", action="store_true",
                    help="service-daemon mode: run bench_server "
                         "(loopback ping/waveform/campaign/cache rates "
                         "through net::LineClient) and compare each "
                         "configuration's ops/s against "
                         "BENCH_server.json")
    ap.add_argument("--samples", type=int, default=1 << 20,
                    help="samples per standard in --blocks mode / total "
                         "samples in --graph mode (default: 1048576)")
    ap.add_argument("--trials", type=int, default=96,
                    help="Monte-Carlo trials per grid point in --sim "
                         "mode (default: 96)")
    ap.add_argument("--rx-trials", type=int, default=16,
                    help="invocations per timed stage in --rx mode "
                         "(default: 16)")
    args = ap.parse_args()

    if sum([args.blocks, args.graph, args.sim, args.rx,
            args.server]) > 1:
        ap.error("--blocks, --graph, --sim, --rx, and --server are "
                 "mutually exclusive")

    build_dir = REPO_ROOT / args.build_dir
    min_wall_fraction = 0.0
    kernel_pairs = None
    fft_pairs = None
    if args.server:
        report = run_exe(build_dir, "bench_server", [])
        baseline_file = SERVER_FILE
        extract = rows_configs("ops_per_second")
        unit = "ops/s"
        # Loopback socket round trips are noisier than any in-process
        # mode; the gate here is a smoke alarm, not a micro-benchmark.
        tolerance = max(args.tolerance, 0.50)
    elif args.rx:
        report = run_exe(build_dir, "bench_rx",
                         ["--trials", str(args.rx_trials)])
        baseline_file = RX_FILE
        extract = rows_configs("ops_per_second")
        unit = "ops/s"
        # Single-run stage wall times, same variance budget as --sim.
        tolerance = max(args.tolerance, 0.35)
    elif args.sim:
        report = run_exe(build_dir, "bench_sim",
                         ["--trials", str(args.trials)])
        baseline_file = SIM_FILE
        extract = rows_configs("trials_per_second")
        unit = "trials/s"
        # Single-run wall times under thread scheduling: widen the
        # default gate the same way --blocks and --graph do.
        tolerance = max(args.tolerance, 0.35)
    elif args.graph:
        report = run_exe(build_dir, "bench_graph",
                         ["--samples", str(args.samples)])
        baseline_file = GRAPH_FILE
        extract = rows_configs("msps")
        unit = "Msps"
        tolerance = max(args.tolerance, 0.35)
    elif args.blocks:
        report = run_exe(build_dir, "bench_report_blocks",
                         ["--samples", str(args.samples)])
        baseline_file = BLOCKS_FILE
        extract = rows_blocks
        unit = "Msps"
        min_wall_fraction = MIN_WALL_FRACTION
        kernel_pairs = kernel_pairs_blocks(report)
        # Single-run per-block timings are noisier than Google
        # Benchmark's min-time loop; widen the default gate.
        tolerance = max(args.tolerance, 0.35)
    else:
        report = run_bench(build_dir, args.min_time)
        baseline_file = RESULT_FILE
        extract = rows_e5
        unit = "MS/s"
        kernel_pairs = kernel_pairs_e5(report)
        fft_pairs = fft_engine_pairs_e5(report)
        tolerance = args.tolerance

    ok = True
    if baseline_file.exists():
        baseline = load_baseline(baseline_file)
        ok = compare_rows(baseline, report, tolerance, extract, unit,
                          baseline_file, min_wall_fraction)
    elif args.check_only:
        sys.exit(f"error: --check-only needs a baseline, but "
                 f"{baseline_file.relative_to(REPO_ROOT)} does not exist "
                 f"-- run once without --check-only to create it")
    if kernel_pairs is not None:
        tier, speedups = kernel_pairs
        if not check_kernel_speedups(tier, speedups, baseline_file):
            ok = False
    if fft_pairs is not None:
        if not check_fft_engine_speedups(fft_pairs, baseline_file):
            ok = False
    if not args.check_only:
        with open(baseline_file, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"\nwrote {baseline_file.relative_to(REPO_ROOT)}")
    if not ok:
        print("throughput regression detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
