#!/usr/bin/env python3
"""E5 throughput regression runner with per-block attribution.

Default mode runs the per-standard generation benchmark
(bench_e5_throughput) with Google Benchmark's JSON reporter and writes
the result to BENCH_e5.json at the repo root. If a previous
BENCH_e5.json exists, each benchmark is compared against it first and
regressions beyond --tolerance are reported (exit code 1), so CI can
gate on generation throughput.

--blocks switches to the observability-layer attribution mode: it runs
bench_report_blocks (a probed Submodel -> impairment-chain sweep over
all ten standards) and compares each block's throughput against the
BENCH_blocks.json baseline, so a regression is pinned to the exact
block (e.g. "multipath in DVB-T") instead of a whole benchmark.

--graph runs bench_graph (end-to-end RF-graph throughput, sequential
driver vs the pipeline-parallel executor at 2/4/8 stages) and compares
each configuration's throughput against the BENCH_graph.json baseline.
The gate is machine-relative on purpose: absolute pipeline speedup
depends on the host's core count, so what CI enforces is that neither
the sequential driver nor any executor configuration got slower
relative to the checked-in numbers from the same environment.

--sim runs bench_sim (the Monte-Carlo campaign engine sweeping a fixed
802.11a AWGN workload at 1 worker vs all cores) and compares each
configuration's trials-per-second against the BENCH_sim.json baseline.
Like --graph, the gate is machine-relative: it enforces that neither
the single-threaded link simulation nor the work-stealing scheduler
got slower relative to the checked-in numbers from the same host.

Usage:
    python3 bench/regress.py [--build-dir build] [--tolerance 0.15]
                             [--min-time 1] [--check-only]
    python3 bench/regress.py --blocks [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --graph [--tolerance 0.35] [--check-only]
    python3 bench/regress.py --sim [--tolerance 0.35] [--check-only]
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_e5.json"
BLOCKS_FILE = REPO_ROOT / "BENCH_blocks.json"
GRAPH_FILE = REPO_ROOT / "BENCH_graph.json"
SIM_FILE = REPO_ROOT / "BENCH_sim.json"


def run_bench(build_dir: pathlib.Path, min_time: float) -> dict:
    exe = build_dir / "bench" / "bench_e5_throughput"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_e5_tmp.json"
    # --benchmark_out writes clean JSON to the file; the human-readable
    # banner and summary table stay on stdout.
    subprocess.run(
        [str(exe),
         f"--benchmark_out={out}",
         "--benchmark_out_format=json",
         f"--benchmark_min_time={min_time}"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


def index(report: dict) -> dict:
    return {b["name"]: b for b in report.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}


def compare(old: dict, new: dict, tolerance: float) -> bool:
    """Print per-benchmark ratios; return True if no regression."""
    ok = True
    old_by_name = index(old)
    print(f"\n{'benchmark':<20s} {'label':<20s} {'old MS/s':>10s} "
          f"{'new MS/s':>10s} {'ratio':>7s}")
    for name, bench in index(new).items():
        new_ips = bench.get("items_per_second")
        label = bench.get("label", "")
        prev = old_by_name.get(name)
        if prev is None or not new_ips:
            print(f"{name:<20s} {label:<20s} {'-':>10s} "
                  f"{new_ips / 1e6 if new_ips else 0:10.2f} {'new':>7s}")
            continue
        old_ips = prev.get("items_per_second", 0.0)
        ratio = new_ips / old_ips if old_ips else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  <-- REGRESSION"
            ok = False
        print(f"{name:<20s} {label:<20s} {old_ips / 1e6:10.2f} "
              f"{new_ips / 1e6:10.2f} {ratio:6.2f}x{flag}")
    return ok


def run_blocks(build_dir: pathlib.Path, samples: int) -> dict:
    exe = build_dir / "bench" / "bench_report_blocks"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_blocks_tmp.json"
    subprocess.run(
        [str(exe), "--samples", str(samples), "--out", str(out), "--quiet"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


def compare_blocks(old: dict, new: dict, tolerance: float) -> bool:
    """Per-block throughput ratios across all standards; True if clean.

    Only blocks that carried a meaningful share of the baseline run's
    wall time gate the result: a block at <5% wall share finishes in
    well under a millisecond here, its timing is scheduler noise, and a
    regression that small cannot explain an end-to-end slowdown anyway.
    """
    min_wall_fraction = 0.05
    ok = True
    old_standards = old.get("standards", {})
    print(f"\n{'standard':<22s} {'block':<22s} {'old Msps':>10s} "
          f"{'new Msps':>10s} {'ratio':>7s}")
    for standard, report in new.get("standards", {}).items():
        old_rows = {r["name"]: r
                    for r in old_standards.get(standard, {}).get("blocks", [])}
        for row in report.get("blocks", []):
            new_msps = row.get("throughput_msps", 0.0)
            prev = old_rows.get(row["name"])
            if prev is None or not new_msps:
                print(f"{standard:<22s} {row['name']:<22s} {'-':>10s} "
                      f"{new_msps:10.2f} {'new':>7s}")
                continue
            old_msps = prev.get("throughput_msps", 0.0)
            ratio = new_msps / old_msps if old_msps else float("inf")
            flag = ""
            if ratio < 1.0 - tolerance:
                if prev.get("wall_fraction", 0.0) >= min_wall_fraction:
                    flag = "  <-- REGRESSION"
                    ok = False
                else:
                    flag = "  (noise: <5% wall share, not gated)"
            print(f"{standard:<22s} {row['name']:<22s} {old_msps:10.2f} "
                  f"{new_msps:10.2f} {ratio:6.2f}x{flag}")
    return ok


def run_graph(build_dir: pathlib.Path, samples: int) -> dict:
    exe = build_dir / "bench" / "bench_graph"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_graph_tmp.json"
    subprocess.run(
        [str(exe), "--samples", str(samples), "--out", str(out), "--quiet"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


def compare_graph(old: dict, new: dict, tolerance: float) -> bool:
    """Per-configuration throughput ratios vs the baseline; True if
    clean. Ratios are machine-relative -- the baseline must come from
    the same environment for the gate to mean anything."""
    ok = True
    old_by_name = {c["name"]: c for c in old.get("configs", [])}
    print(f"\n{'config':<14s} {'threads':>7s} {'old Msps':>10s} "
          f"{'new Msps':>10s} {'ratio':>7s}")
    for cfg in new.get("configs", []):
        new_msps = cfg.get("msps", 0.0)
        prev = old_by_name.get(cfg["name"])
        if prev is None or not new_msps:
            print(f"{cfg['name']:<14s} {cfg.get('threads', 0):>7d} "
                  f"{'-':>10s} {new_msps:10.2f} {'new':>7s}")
            continue
        old_msps = prev.get("msps", 0.0)
        ratio = new_msps / old_msps if old_msps else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  <-- REGRESSION"
            ok = False
        print(f"{cfg['name']:<14s} {cfg.get('threads', 0):>7d} "
              f"{old_msps:10.2f} {new_msps:10.2f} {ratio:6.2f}x{flag}")
    return ok


def run_sim(build_dir: pathlib.Path, trials: int) -> dict:
    exe = build_dir / "bench" / "bench_sim"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_sim_tmp.json"
    subprocess.run(
        [str(exe), "--trials", str(trials), "--out", str(out), "--quiet"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


def compare_sim(old: dict, new: dict, tolerance: float) -> bool:
    """Per-configuration trials/s ratios vs the baseline; True if
    clean. Machine-relative, like --graph."""
    ok = True
    old_by_name = {c["name"]: c for c in old.get("configs", [])}
    print(f"\n{'config':<14s} {'threads':>7s} {'old tr/s':>10s} "
          f"{'new tr/s':>10s} {'ratio':>7s}")
    for cfg in new.get("configs", []):
        new_tps = cfg.get("trials_per_second", 0.0)
        prev = old_by_name.get(cfg["name"])
        if prev is None or not new_tps:
            print(f"{cfg['name']:<14s} {cfg.get('threads', 0):>7d} "
                  f"{'-':>10s} {new_tps:10.1f} {'new':>7s}")
            continue
        old_tps = prev.get("trials_per_second", 0.0)
        ratio = new_tps / old_tps if old_tps else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  <-- REGRESSION"
            ok = False
        print(f"{cfg['name']:<14s} {cfg.get('threads', 0):>7d} "
              f"{old_tps:10.1f} {new_tps:10.1f} {ratio:6.2f}x{flag}")
    return ok


def load_baseline(path: pathlib.Path) -> dict:
    """Read a baseline JSON file, exiting with a one-line error (no
    traceback) when it is unreadable or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read baseline {path.name}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: baseline {path.name} is not valid JSON "
                 f"(line {e.lineno}: {e.msg}) -- delete it or rerun "
                 f"without --check-only to regenerate")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
gating:
  Default mode gates on whole-benchmark throughput vs BENCH_e5.json.
  --blocks gates per block per standard vs BENCH_blocks.json: a block
  regresses the run (exit 1) only when it slows beyond --tolerance AND
  carried >= 5% of the baseline's wall time; slimmer blocks are printed
  as "(noise ...)" but never gate, since their single-run timings are
  scheduler noise. Baselines rewrite on every run unless --check-only
  is given; --check-only requires the baseline to exist.""")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown before a benchmark "
                         "counts as a regression (default: 0.15)")
    ap.add_argument("--min-time", type=float, default=1.0,
                    help="--benchmark_min_time per benchmark in seconds")
    ap.add_argument("--check-only", action="store_true",
                    help="compare against the baseline without updating it")
    ap.add_argument("--blocks", action="store_true",
                    help="per-block attribution mode: run "
                         "bench_report_blocks and compare each block's "
                         "throughput against BENCH_blocks.json")
    ap.add_argument("--graph", action="store_true",
                    help="graph-executor mode: run bench_graph "
                         "(sequential vs 2/4/8 pipeline stages) and "
                         "compare each configuration's throughput "
                         "against BENCH_graph.json")
    ap.add_argument("--sim", action="store_true",
                    help="campaign-engine mode: run bench_sim (fixed "
                         "802.11a AWGN sweep, 1 worker vs all cores) and "
                         "compare each configuration's trials/s against "
                         "BENCH_sim.json")
    ap.add_argument("--samples", type=int, default=1 << 20,
                    help="samples per standard in --blocks mode / total "
                         "samples in --graph mode (default: 1048576)")
    ap.add_argument("--trials", type=int, default=96,
                    help="Monte-Carlo trials per grid point in --sim "
                         "mode (default: 96)")
    args = ap.parse_args()

    if sum([args.blocks, args.graph, args.sim]) > 1:
        ap.error("--blocks, --graph, and --sim are mutually exclusive")

    if args.sim:
        report = run_sim(REPO_ROOT / args.build_dir, args.trials)
        baseline_file = SIM_FILE
        compare_fn = compare_sim
        # Single-run wall times under thread scheduling: widen the
        # default gate the same way --blocks and --graph do.
        tolerance = max(args.tolerance, 0.35)
    elif args.graph:
        report = run_graph(REPO_ROOT / args.build_dir, args.samples)
        baseline_file = GRAPH_FILE
        compare_fn = compare_graph
        # Single-run end-to-end timings under thread scheduling: widen
        # the default gate the same way --blocks does.
        tolerance = max(args.tolerance, 0.35)
    elif args.blocks:
        report = run_blocks(REPO_ROOT / args.build_dir, args.samples)
        baseline_file = BLOCKS_FILE
        compare_fn = compare_blocks
        # Single-run per-block timings are noisier than Google
        # Benchmark's min-time loop; widen the default gate.
        tolerance = max(args.tolerance, 0.35)
    else:
        report = run_bench(REPO_ROOT / args.build_dir, args.min_time)
        baseline_file = RESULT_FILE
        compare_fn = compare
        tolerance = args.tolerance

    ok = True
    if baseline_file.exists():
        baseline = load_baseline(baseline_file)
        ok = compare_fn(baseline, report, tolerance)
    elif args.check_only:
        sys.exit(f"error: --check-only needs a baseline, but "
                 f"{baseline_file.relative_to(REPO_ROOT)} does not exist "
                 f"-- run once without --check-only to create it")
    if not args.check_only:
        with open(baseline_file, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"\nwrote {baseline_file.relative_to(REPO_ROOT)}")
    if not ok:
        print("throughput regression detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
