#!/usr/bin/env python3
"""E5 throughput regression runner.

Runs the per-standard generation benchmark (bench_e5_throughput) with
Google Benchmark's JSON reporter and writes the result to BENCH_e5.json
at the repo root. If a previous BENCH_e5.json exists, each benchmark is
compared against it first and regressions beyond --tolerance are
reported (exit code 1), so CI can gate on generation throughput.

Usage:
    python3 bench/regress.py [--build-dir build] [--tolerance 0.15]
                             [--min-time 1] [--check-only]
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_e5.json"


def run_bench(build_dir: pathlib.Path, min_time: float) -> dict:
    exe = build_dir / "bench" / "bench_e5_throughput"
    if not exe.exists():
        sys.exit(f"error: {exe} not found -- build the repo first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    out = build_dir / "bench_e5_tmp.json"
    # --benchmark_out writes clean JSON to the file; the human-readable
    # banner and summary table stay on stdout.
    subprocess.run(
        [str(exe),
         f"--benchmark_out={out}",
         "--benchmark_out_format=json",
         f"--benchmark_min_time={min_time}"],
        check=True,
        cwd=REPO_ROOT,
    )
    with open(out) as f:
        return json.load(f)


def index(report: dict) -> dict:
    return {b["name"]: b for b in report.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}


def compare(old: dict, new: dict, tolerance: float) -> bool:
    """Print per-benchmark ratios; return True if no regression."""
    ok = True
    old_by_name = index(old)
    print(f"\n{'benchmark':<20s} {'label':<20s} {'old MS/s':>10s} "
          f"{'new MS/s':>10s} {'ratio':>7s}")
    for name, bench in index(new).items():
        new_ips = bench.get("items_per_second")
        label = bench.get("label", "")
        prev = old_by_name.get(name)
        if prev is None or not new_ips:
            print(f"{name:<20s} {label:<20s} {'-':>10s} "
                  f"{new_ips / 1e6 if new_ips else 0:10.2f} {'new':>7s}")
            continue
        old_ips = prev.get("items_per_second", 0.0)
        ratio = new_ips / old_ips if old_ips else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  <-- REGRESSION"
            ok = False
        print(f"{name:<20s} {label:<20s} {old_ips / 1e6:10.2f} "
              f"{new_ips / 1e6:10.2f} {ratio:6.2f}x{flag}")
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown before a benchmark "
                         "counts as a regression (default: 0.15)")
    ap.add_argument("--min-time", type=float, default=1.0,
                    help="--benchmark_min_time per benchmark in seconds")
    ap.add_argument("--check-only", action="store_true",
                    help="compare against BENCH_e5.json without updating it")
    args = ap.parse_args()

    report = run_bench(REPO_ROOT / args.build_dir, args.min_time)

    ok = True
    if RESULT_FILE.exists():
        with open(RESULT_FILE) as f:
            baseline = json.load(f)
        ok = compare(baseline, report, args.tolerance)
    if not args.check_only:
        with open(RESULT_FILE, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"\nwrote {RESULT_FILE.relative_to(REPO_ROOT)}")
    if not ok:
        print("throughput regression detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
