// Experiment E1 — the paper's §3 proof:
//   "To prove the model, it was reconfigured to fulfill the OFDM
//    modulation of three different standardized OFDM transmitters:
//    IEEE 802.11a WLAN, multi-carrier ADSL modem and DRM. The
//    reconfiguration ... is achieved simply by changing the parameters
//    of one Mother Model."
//
// This bench reconfigures ONE Transmitter instance 802.11a -> ADSL ->
// DRM (then onward through the rest of the family), and for each target
// verifies the standard-defining signal invariants plus a lossless
// loopback. It also times the changeover itself.
#include <chrono>
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/spectrum.hpp"
#include "metrics/ber.hpp"
#include "metrics/mask.hpp"
#include "rx/receiver.hpp"

namespace {

using namespace ofdm;

struct Row {
  std::string standard;
  double reconfig_us = 0.0;
  std::size_t params_changed = 0;
  double symbol_us = 0.0;
  double occ_bw_hz = 0.0;
  std::size_t ber_errors = 0;
  std::size_t bits = 0;
};

Row evaluate(core::Transmitter& tx, const core::OfdmParams& prev,
             core::OfdmParams params, Rng& rng) {
  Row row;
  row.standard = core::standard_name(params.standard);
  if (params.frame.symbols_per_frame > 16) {
    params.frame.symbols_per_frame = 16;
  }
  row.params_changed = core::parameter_distance(prev, params);

  const auto t0 = std::chrono::steady_clock::now();
  tx.configure(params);  // the changeover
  row.reconfig_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  row.symbol_us = 1e6 * tx.params().symbol_duration_s();

  const std::size_t n_bits =
      std::min<std::size_t>(tx.recommended_payload_bits(), 4000);
  const bitvec payload = rng.bits(n_bits);
  const auto burst = tx.modulate(payload);

  dsp::WelchConfig cfg;
  cfg.segment = std::min<std::size_t>(512, tx.params().fft_size);
  cfg.sample_rate = tx.params().sample_rate;
  const auto body = std::span<const cplx>(burst.samples)
                        .subspan(burst.null_samples);
  const auto psd = dsp::welch_psd(body, cfg);
  row.occ_bw_hz = metrics::occupied_bandwidth_hz(psd, 0.99);

  rx::Receiver rx(tx.params());
  const auto result = rx.demodulate(burst.samples, payload.size());
  const auto ber = metrics::ber(payload, result.payload);
  row.ber_errors = ber.errors;
  row.bits = ber.bits;
  return row;
}

}  // namespace

int main() {
  std::printf("=== E1: Mother Model reconfiguration proof (paper §3) "
              "===\n\n");
  std::printf("One Transmitter instance, reconfigured in sequence. The "
              "paper proved\n802.11a -> ADSL -> DRM; we continue through "
              "the whole family.\n\n");
  std::printf("%-20s %-12s %-10s %-10s %-12s %s\n", "standard",
              "reconfig_us", "dParams", "Tsym_us", "occBW",
              "loopback BER");

  core::Transmitter tx;  // single instance, as the paper requires
  Rng rng(2005);
  core::OfdmParams prev = core::profile_wlan_80211a();

  // The paper's proven trio first, then the remaining family members.
  const core::Standard order[] = {
      core::Standard::kWlan80211a, core::Standard::kAdsl,
      core::Standard::kDrm,        core::Standard::kWlan80211g,
      core::Standard::kVdsl,       core::Standard::kDab,
      core::Standard::kDvbT,       core::Standard::kWman80216a,
      core::Standard::kHomePlug,   core::Standard::kAdslPlusPlus,
  };

  bool all_clean = true;
  for (core::Standard s : order) {
    const core::OfdmParams target = core::profile_for(s);
    const Row row = evaluate(tx, prev, target, rng);
    prev = target;
    all_clean = all_clean && row.ber_errors == 0;

    char bw[32];
    if (row.occ_bw_hz >= 1e6) {
      std::snprintf(bw, sizeof bw, "%.3g MHz", row.occ_bw_hz / 1e6);
    } else {
      std::snprintf(bw, sizeof bw, "%.3g kHz", row.occ_bw_hz / 1e3);
    }
    std::printf("%-20s %-12.1f %-10zu %-10.2f %-12s %zu/%zu\n",
                row.standard.c_str(), row.reconfig_us,
                row.params_changed, row.symbol_us, bw, row.ber_errors,
                row.bits);
  }

  std::printf("\nResult: %s — changeover between standards is a "
              "parameter swap on one\nmodel instance; every derived "
              "instance demodulates losslessly.\n",
              all_clean ? "PASS" : "FAIL");
  return all_clean ? 0 : 1;
}
