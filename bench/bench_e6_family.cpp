// Experiment E6 — the Abstract's headline:
//   "A common reconfigurable Mother Model for ten different
//    standardized digital OFDM transmitters has been developed."
//
// The family coverage matrix: every standard must (a) produce a valid
// parameter set, (b) instantiate on the shared Mother Model, (c)
// generate a burst with the right geometry, and (d) demodulate
// losslessly through the reference receiver. One failed cell falsifies
// the claim.
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  std::printf("=== E6: ten-standard family coverage matrix (paper "
              "abstract) ===\n\n");
  std::printf("%-20s %-10s %-12s %-10s %-10s %-10s %s\n", "standard",
              "validate", "instantiate", "generate", "geometry",
              "loopback", "verdict");

  core::Transmitter tx;
  Rng rng(66);
  std::size_t passed = 0;

  for (core::Standard s : core::kStandardFamily) {
    bool ok_validate = false;
    bool ok_instantiate = false;
    bool ok_generate = false;
    bool ok_geometry = false;
    bool ok_loopback = false;

    try {
      core::OfdmParams params = core::profile_for(s);
      if (params.frame.symbols_per_frame > 12) {
        params.frame.symbols_per_frame = 12;
      }
      core::validate(params);
      ok_validate = true;

      tx.configure(params);
      ok_instantiate = true;

      const std::size_t n_bits =
          std::min<std::size_t>(tx.recommended_payload_bits(), 3000);
      const bitvec payload = rng.bits(n_bits);
      const auto burst = tx.modulate(payload);
      ok_generate = !burst.samples.empty();

      const std::size_t expected =
          params.frame.null_samples + burst.preamble_samples +
          burst.data_symbols * params.symbol_len() + params.window_ramp;
      const auto body = std::span<const cplx>(burst.samples)
                            .subspan(burst.null_samples);
      ok_geometry = burst.samples.size() == expected &&
                    std::abs(mean_power(body) - 1.0) < 0.25;

      rx::Receiver rx(params);
      const auto result = rx.demodulate(burst.samples, payload.size());
      ok_loopback =
          metrics::ber(payload, result.payload).errors == 0 &&
          result.rs_blocks_failed == 0;
    } catch (const std::exception& e) {
      std::printf("  exception for %s: %s\n",
                  core::standard_name(s).c_str(), e.what());
    }

    const bool all = ok_validate && ok_instantiate && ok_generate &&
                     ok_geometry && ok_loopback;
    passed += all;
    auto mark = [](bool b) { return b ? "yes" : "NO"; };
    std::printf("%-20s %-10s %-12s %-10s %-10s %-10s %s\n",
                core::standard_name(s).c_str(), mark(ok_validate),
                mark(ok_instantiate), mark(ok_generate),
                mark(ok_geometry), mark(ok_loopback),
                all ? "PASS" : "FAIL");
  }

  std::printf("\nFamily coverage: %zu / 10 standards fully supported by "
              "the single\nMother Model.\n",
              passed);
  return passed == 10 ? 0 : 1;
}
