// RX Mother Model stage throughput per standard: synchronize (timing
// acquisition), estimate_equalizer (training-based channel estimation),
// demap_soft (the SIMD max-log LLR kernel over a block of data cells)
// and soft-decision Viterbi decoding, each timed in isolation on the
// standard's own burst/constellation/code.
//
// Stages a standard's receiver does not engage are skipped: DMT
// standards have no fixed constellation (no demap_soft row), uncoded
// profiles have no Viterbi row, and standards without a training
// section have no equalize row. Every row reports ops/s where one op is
// one invocation over the prepared burst-sized input. The JSON goes to
// BENCH_rx.json at the repo root and is gated by bench/regress.py --rx
// (machine-relative, like --sim).
//
// Usage:
//   bench_rx [--trials N] [--out FILE] [--quiet]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "coding/convolutional.hpp"
#include "coding/viterbi.hpp"
#include "common/rng.hpp"
#include "core/transmitter.hpp"
#include "mapping/constellation.hpp"
#include "rx/mother/descriptor.hpp"
#include "rx/mother/mother_rx.hpp"
#include "sim/deck.hpp"

namespace {

using namespace ofdm;

// Deck tokens for the whole family (one representative variant each).
const char* kTokens[] = {
    "wlan_80211a@12", "wlan_80211g@24", "adsl", "drm@B", "vdsl",
    "dab",            "dvbt",           "wman_80216a",   "homeplug",
    "adsl2+",
};

// Defeats dead-code elimination of the timed bodies.
volatile double g_sink = 0.0;

struct Row {
  std::string name;
  std::size_t trials;
  double ops_per_second;
};

// Best-of-3 timed loop: one warm-up call, then three reps of `trials`
// invocations; the fastest rep wins (single-shot wall times on a shared
// host swing by more than the effects this bench resolves).
template <typename Fn>
double ops_per_second(std::size_t trials, Fn&& fn) {
  fn();
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trials; ++i) fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    const double ops = s > 0.0 ? static_cast<double>(trials) / s : 0.0;
    if (ops > best) best = ops;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 32;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_rx [--trials N] [--out FILE]"
                   " [--quiet]\n";
      return 2;
    }
  }
  if (trials == 0) trials = 1;

  std::vector<Row> rows;
  for (const char* token : kTokens) {
    const auto spec = sim::parse_standard_token(token);
    const auto& params = spec.params;
    const auto desc = rx::describe_receiver(params);

    core::Transmitter tx(params);
    rx::MotherReceiver rx(params);
    Rng rng = Rng::substream(99, 0, 0);
    const bitvec payload = rng.bits(tx.recommended_payload_bits());
    core::Transmitter::Burst burst;
    tx.modulate_into(payload, burst);

    auto add = [&](const char* stage, double ops) {
      rows.push_back({std::string(token) + "/" + stage, trials, ops});
      if (!quiet) {
        std::printf("%-28s %8zu trials  %10.1f ops/s\n",
                    rows.back().name.c_str(), trials, ops);
      }
    };

    add("sync", ops_per_second(trials, [&] {
          const auto rep =
              rx.synchronize(burst.samples, params.sample_rate);
          g_sink = g_sink + rep.metric +
                   static_cast<double>(rep.offset);
        }));

    if (desc.equalizer != "none") {
      add("equalize", ops_per_second(trials, [&] {
            const cvec eq = rx.estimate_equalizer(burst.samples);
            g_sink = g_sink + (eq.empty() ? 0.0 : eq[0].real());
          }));
    }

    if (params.mapping == core::MappingKind::kFixed) {
      // A burst-sized block of noiseless cells through the SIMD
      // max-log LLR kernel (uniform noise floor, like the receiver's
      // equalizer-flat path).
      const auto cons = mapping::Constellation::make(params.scheme);
      const std::size_t n_cells = 4096;
      const bitvec cell_bits = rng.bits(n_cells * cons.bits());
      cvec cells;
      cons.map_into(cell_bits, cells);
      rvec llr;
      add("demap_soft", ops_per_second(trials, [&] {
            cons.demap_soft_into(cells, 1.0, llr);
            g_sink = g_sink + llr[0];
          }));
    }

    if (params.fec.conv_enabled) {
      // The inner code's soft decoder on a terminated random word
      // (unpunctured: the depuncture stage is not what this row
      // measures).
      const coding::ConvEncoder enc(params.fec.conv);
      const coding::ViterbiDecoder vit(params.fec.conv);
      const bitvec info = rng.bits(1024);
      const bitvec coded = enc.encode_terminated(info);
      rvec llr(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        llr[i] = coded[i] ? -1.0 : 1.0;
      }
      add("viterbi", ops_per_second(trials, [&] {
            const bitvec out = vit.decode_soft_terminated(llr);
            g_sink = g_sink + static_cast<double>(out.size());
          }));
    }
  }

  std::ostringstream json;
  json << "{\n \"trials\": " << trials << ",\n \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "  {\"name\": \"" << rows[i].name
         << "\", \"threads\": 1, \"trials\": " << rows[i].trials
         << ", \"ops_per_second\": " << rows[i].ops_per_second << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << " ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
