// Per-block throughput attribution over the whole standard family.
//
// For each of the ten standards this drives a Submodel source through a
// representative RF impairment chain with probes attached, then emits
// the obs::Report for the run: per-block throughput (Msps), share of
// wall time, peak magnitude and clip counts. bench/regress.py --blocks
// consumes the JSON to attribute an E5-level throughput regression to a
// specific block instead of a whole benchmark.
//
// Usage:
//   bench_report_blocks [--samples N] [--chunk N] [--out FILE] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/profiles.hpp"
#include "obs/probe.hpp"
#include "obs/report.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/fading.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace {

using namespace ofdm;

/// The reference impairment line-up used for attribution: one of each
/// block family that shows up in the paper's RF system experiments.
void build_chain(rf::Chain& chain) {
  chain.add<rf::Gain>(-3.0);
  chain.add<rf::IqImbalance>(0.3, 1.5);
  chain.add<rf::PhaseNoise>(40.0, 20e6, 12345);
  chain.add<rf::RappPa>(2.0, 1.0);
  chain.add<rf::MultipathChannel>(rf::exponential_pdp_taps(2.0, 8, 77));
  chain.add<rf::AwgnChannel>(1e-3, 99);
  chain.add<rf::PowerMeter>();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 1u << 20;
  std::size_t chunk = 4096;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") {
      total = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--chunk") {
      chunk = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_report_blocks [--samples N] [--chunk N]"
                   " [--out FILE] [--quiet]\n";
      return 2;
    }
  }

  std::ostringstream json;
  json << "{\n \"samples_per_standard\": " << total << ",\n"
       << " \"standards\": {\n";
  bool first = true;
  for (const core::Standard standard : core::kStandardFamily) {
    rf::Submodel source(core::profile_for(standard));
    rf::Chain chain;
    build_chain(chain);

    obs::ProbeSet probes;
    chain.attach_probes(probes);
    source.set_probe(&probes.add(source.name()));

    // Warm-up pass so buffer growth does not pollute the timings, then
    // the measured run.
    rf::run(source, chain, 4 * chunk, chunk);
    probes.reset();
    const rf::RunStats stats = rf::run(source, chain, total, chunk);

    const obs::Report report =
        obs::Report::from(probes, stats.elapsed_seconds);
    if (!quiet) {
      std::cout << "=== " << core::standard_name(standard) << " ===\n"
                << report.table() << "\n";
    }
    if (!first) json << ",\n";
    json << "  \"" << json_escape(core::standard_name(standard))
         << "\": " << report.to_json();
    first = false;
  }
  json << "\n }\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
