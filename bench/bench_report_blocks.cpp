// Per-block throughput attribution over the whole standard family.
//
// For each of the ten standards this drives a Submodel source through a
// representative RF impairment chain with probes attached, then emits
// the obs::Report for the run: per-block throughput (Msps), share of
// wall time, peak magnitude and clip counts. bench/regress.py --blocks
// consumes the JSON to attribute an E5-level throughput regression to a
// specific block instead of a whole benchmark.
//
// Usage:
//   bench_report_blocks [--samples N] [--chunk N] [--out FILE] [--quiet]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/simd/dispatch.hpp"
#include "obs/probe.hpp"
#include "obs/report.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/channels/registry.hpp"
#include "rf/fading.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace {

using namespace ofdm;

/// The reference impairment line-up used for attribution: one of each
/// block family that shows up in the paper's RF system experiments.
void build_chain(rf::Chain& chain) {
  chain.add<rf::Gain>(-3.0);
  chain.add<rf::IqImbalance>(0.3, 1.5);
  chain.add<rf::PhaseNoise>(40.0, 20e6, 12345);
  chain.add<rf::RappPa>(2.0, 1.0);
  chain.add<rf::MultipathChannel>(rf::exponential_pdp_taps(2.0, 8, 77));
  chain.add<rf::AwgnChannel>(1e-3, 99);
  chain.add<rf::PowerMeter>();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Msamples/s of `body` (which must process `chunk` samples per call),
/// timed for ~0.2 s after one warm-up call.
template <typename Body>
double measure_msps(std::size_t chunk, Body&& body) {
  body();  // warm-up: buffer growth, plan setup
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  std::size_t samples = 0;
  while (elapsed < 0.2) {
    body();
    samples += chunk;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  }
  return static_cast<double>(samples) / elapsed / 1e6;
}

/// Scalar-vs-best-tier speedups for the vectorized kernels, as the
/// "kernels" JSON section regress.py gates on. Runs each kernel under
/// simd::force_tier(scalar) then under the host's best tier.
std::string kernel_section(bool quiet) {
  const simd::Tier best = simd::best_supported_tier();
  const std::string tier = simd::tier_name(best);
  constexpr std::size_t kChunk = 4096;

  struct Entry {
    const char* name;
    double scalar_msps = 0.0;
    double simd_msps = 0.0;
  };
  Entry entries[] = {
      {"fft512"}, {"fir64"}, {"tdl9"}, {"cvec_mul"}, {"noise"}};

  for (int pass = 0; pass < 2; ++pass) {
    simd::force_tier(pass == 0 ? simd::Tier::kScalar : best);
    double* slot[5];
    for (int e = 0; e < 5; ++e) {
      slot[e] =
          pass == 0 ? &entries[e].scalar_msps : &entries[e].simd_msps;
    }
    {
      dsp::Fft fft(512);
      Rng rng(7);
      cvec buf(512);
      rng.complex_gaussian_fill(buf);
      *slot[0] = measure_msps(2 * buf.size(), [&] {
        fft.forward(buf, buf);
        fft.inverse(buf, buf);
      });
    }
    {
      dsp::FirFilter fir(dsp::design_lowpass(0.2, 64));
      Rng rng(8);
      cvec in(kChunk), out(kChunk);
      rng.complex_gaussian_fill(in);
      *slot[1] = measure_msps(kChunk, [&] { fir.process(in, out); });
    }
    {
      constexpr std::size_t kTaps = 9;
      Rng rng(11);
      cvec taps(kTaps), x(kChunk + kTaps - 1), out(kChunk);
      rng.complex_gaussian_fill(taps);
      rng.complex_gaussian_fill(x);
      *slot[2] = measure_msps(kChunk, [&] {
        simd::kernels().fir_cc(x.data(), taps.data(), kTaps, out.data(),
                               out.size());
      });
    }
    {
      Rng rng(9);
      cvec a(kChunk), b(kChunk), out(kChunk);
      rng.complex_gaussian_fill(a);
      rng.complex_gaussian_fill(b);
      *slot[3] = measure_msps(kChunk, [&] {
        simd::kernels().cvec_mul(a.data(), b.data(), out.data(),
                                 out.size());
      });
    }
    {
      Rng rng(10);
      cvec buf(kChunk);
      *slot[4] = measure_msps(kChunk,
                              [&] { rng.complex_gaussian_fill(buf, 0.5); });
    }
  }
  simd::force_tier(best);

  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(3);
  json << " \"kernels\": {\n  \"tier\": \"" << tier
       << "\",\n  \"entries\": [\n";
  if (!quiet) {
    std::printf("=== kernels: scalar vs %s ===\n%-12s %12s %12s %9s\n",
                tier.c_str(), "kernel", "scalar_Msps", "simd_Msps",
                "speedup");
  }
  bool first = true;
  for (const Entry& e : entries) {
    const double speedup =
        e.scalar_msps > 0.0 ? e.simd_msps / e.scalar_msps : 0.0;
    if (!quiet) {
      std::printf("%-12s %12.2f %12.2f %8.2fx\n", e.name, e.scalar_msps,
                  e.simd_msps, speedup);
    }
    if (!first) json << ",\n";
    json << "   {\"name\": \"" << e.name
         << "\", \"scalar_msps\": " << e.scalar_msps
         << ", \"simd_msps\": " << e.simd_msps
         << ", \"speedup\": " << speedup << "}";
    first = false;
  }
  json << "\n  ]\n }";
  if (!quiet) std::printf("\n");
  return json.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 1u << 20;
  std::size_t chunk = 4096;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") {
      total = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--chunk") {
      chunk = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_report_blocks [--samples N] [--chunk N]"
                   " [--out FILE] [--quiet]\n";
      return 2;
    }
  }

  std::ostringstream json;
  json << "{\n \"samples_per_standard\": " << total << ",\n"
       << kernel_section(quiet) << ",\n"
       << " \"standards\": {\n";
  bool first = true;
  for (const core::Standard standard : core::kStandardFamily) {
    rf::Submodel source(core::profile_for(standard));
    rf::Chain chain;
    build_chain(chain);

    obs::ProbeSet probes;
    chain.attach_probes(probes);
    source.set_probe(&probes.add(source.name()));

    // Warm-up pass so buffer growth does not pollute the timings, then
    // the measured run.
    rf::run(source, chain, 4 * chunk, chunk);
    probes.reset();
    const rf::RunStats stats = rf::run(source, chain, total, chunk);

    const obs::Report report =
        obs::Report::from(probes, stats.elapsed_seconds);
    if (!quiet) {
      std::cout << "=== " << core::standard_name(standard) << " ===\n"
                << report.table() << "\n";
    }
    if (!first) json << ",\n";
    json << "  \"" << json_escape(core::standard_name(standard))
         << "\": " << report.to_json();
    first = false;
  }

  // Channel-model library attribution: one representative of each
  // family (Watterson two-path, static TDL, flat Rician, oscillator
  // drift) behind an 802.11a Submodel at the standard's 20 MS/s. Block
  // names are distinct, so regress.py gates rows like
  // "channels/watterson" against the baseline.
  {
    rf::Submodel source(core::profile_for(core::Standard::kWlan80211a));
    rf::Chain chain;
    rf::channels::MakeOptions ch_opts;
    ch_opts.sample_rate = 20e6;
    ch_opts.seed = 505;
    chain.add_ptr(rf::channels::make_preset("ccir_poor", ch_opts));
    chain.add_ptr(rf::channels::make_preset("itu_veh_a", ch_opts));
    chain.add_ptr(rf::channels::make_preset("rician_k10", ch_opts));
    chain.add_ptr(rf::channels::make_preset("cfo_drift", ch_opts));
    chain.add<rf::PowerMeter>();

    obs::ProbeSet probes;
    chain.attach_probes(probes);
    source.set_probe(&probes.add(source.name()));

    rf::run(source, chain, 4 * chunk, chunk);
    probes.reset();
    const rf::RunStats stats = rf::run(source, chain, total, chunk);

    const obs::Report report =
        obs::Report::from(probes, stats.elapsed_seconds);
    if (!quiet) {
      std::cout << "=== channels ===\n" << report.table() << "\n";
    }
    json << ",\n  \"channels\": " << report.to_json();
  }
  json << "\n }\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
