// Service-daemon throughput: an in-process net::Server on loopback,
// measured through net::LineClient exactly the way a real client sees
// it (plain main): request/reply rate, waveform streaming rate, cached
// campaign submissions, and end-to-end campaign trial throughput
// through the job queue. Emits the JSON consumed by
// bench/regress.py --server and gated against BENCH_server.json
// (machine-relative, like --sim/--graph).
//
// Usage:
//   bench_server [--pings N] [--out FILE] [--quiet]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace ofdm;
using Clock = std::chrono::steady_clock;

constexpr const char* kDeck =
    "name=bench_server\n"
    "standard=wlan_80211a@24\n"
    "snr_db=2:4:14\n"
    "payload_bits=512\n"
    "trials.min=96\ntrials.max=96\ntrials.batch=8\n"
    "stop.rel_ci=1e-12\n"
    "seed=17\n";

net::Json op(const char* name) {
  net::Json v = net::Json::object();
  v.set("op", name);
  return v;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pings = 2000;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pings") {
      pings = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_server [--pings N] [--out FILE]"
                   " [--quiet]\n";
      return 2;
    }
  }

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t workers = hw > 1 ? hw : 4;

  net::ServerConfig cfg;
  cfg.idle_timeout_s = 0.0;
  cfg.jobs.executors = 1;  // one campaign at a time: fixed workload
  cfg.jobs.pool_threads = workers;
  net::Server server(cfg);
  server.start();

  net::LineClient client;
  client.connect("127.0.0.1", server.port());

  struct Row {
    std::string name;
    std::size_t threads;
    double ops;
  };
  std::vector<Row> rows;

  // --- request/reply round trips ------------------------------------
  for (std::size_t i = 0; i < pings / 10; ++i) {  // warm-up
    (void)client.request(op("ping"));
  }
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < pings; ++i) {
    if (!client.request(op("ping")).bool_or("ok", false)) {
      std::cerr << "error: ping failed\n";
      return 1;
    }
  }
  rows.push_back({"ping", 1, static_cast<double>(pings) / seconds_since(t0)});

  // --- waveform streaming (samples/s over the wire) -----------------
  net::Json wreq = op("waveform");
  wreq.set("standard", "wlan_80211a@24").set("bursts", 16).set("seed", 3);
  cvec warm;
  (void)client.waveform(wreq, warm);  // warm-up
  std::size_t samples = 0;
  t0 = Clock::now();
  for (int rep = 0; rep < 8; ++rep) {
    cvec got;
    const net::Json reply = client.waveform(wreq, got);
    if (!reply.bool_or("ok", false)) {
      std::cerr << "error: waveform failed: " << reply.dump() << "\n";
      return 1;
    }
    samples += got.size();
  }
  rows.push_back({"waveform_stream", 1,
                  static_cast<double>(samples) / seconds_since(t0)});

  // --- end-to-end campaign through the job queue --------------------
  net::Json sreq = op("submit");
  sreq.set("deck", kDeck);
  t0 = Clock::now();
  net::Json reply = client.request(sreq);
  if (!reply.bool_or("ok", false)) {
    std::cerr << "error: submit failed: " << reply.dump() << "\n";
    return 1;
  }
  const std::string id = reply.str_or("id", "");
  for (;;) {
    net::Json st = op("status");
    st.set("id", id);
    reply = client.request(st);
    const std::string state = reply.str_or("state", "?");
    if (state == "done") break;
    if (state != "queued" && state != "running") {
      std::cerr << "error: job ended " << state << "\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double campaign_s = seconds_since(t0);
  const double trials =
      static_cast<double>(server.stats().trials_executed.load());
  rows.push_back({"campaign_e2e", workers, trials / campaign_s});

  // --- cached resubmission (the result-cache fast path) -------------
  const std::size_t cached_iters = 300;
  t0 = Clock::now();
  for (std::size_t i = 0; i < cached_iters; ++i) {
    reply = client.request(sreq);
    if (!reply.bool_or("ok", false) || reply.str_or("state", "") != "done") {
      std::cerr << "error: cached submit failed: " << reply.dump() << "\n";
      return 1;
    }
    net::Json rreq = op("result");
    rreq.set("id", reply.str_or("id", ""));
    if (!client.request(rreq).bool_or("ok", false)) {
      std::cerr << "error: cached result failed\n";
      return 1;
    }
  }
  rows.push_back({"submit_cached", 1,
                  static_cast<double>(cached_iters) / seconds_since(t0)});
  if (server.stats().trials_executed.load() !=
      static_cast<std::uint64_t>(trials)) {
    std::cerr << "error: cached submissions executed trials\n";
    return 1;
  }

  client.close();
  server.stop(false);

  std::ostringstream json;
  json << "{\n \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!quiet) {
      std::printf("%-16s %10.1f ops/s\n", rows[i].name.c_str(), rows[i].ops);
    }
    json << "  {\"name\": \"" << rows[i].name
         << "\", \"threads\": " << rows[i].threads
         << ", \"ops_per_second\": " << rows[i].ops << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << " ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
