// Experiment E5 — signal-source usability (§3):
//   "it works as a digital signal source for the RF designer"
//
// A usable source must generate samples comfortably faster than the RF
// simulator consumes them. This bench measures generation throughput
// (Msamples/s of baseband output) for every family member, plus the
// real-time margin against each standard's own sample rate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/simd/dispatch.hpp"

namespace {

using namespace ofdm;

core::OfdmParams bench_params(core::Standard s) {
  core::OfdmParams p = core::profile_for(s);
  if (p.frame.symbols_per_frame > 16) p.frame.symbols_per_frame = 16;
  return p;
}

void BM_Generate(benchmark::State& state) {
  const auto standard = static_cast<core::Standard>(state.range(0));
  const core::OfdmParams params = bench_params(standard);
  core::Transmitter tx(params);
  Rng rng(5);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 20000));

  std::size_t samples = 0;
  for (auto _ : state) {
    auto burst = tx.modulate(payload);
    benchmark::DoNotOptimize(burst.samples.data());
    samples += burst.samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.SetLabel(core::standard_name(standard));
}

// --- Kernel micro-benches: scalar tier vs the host's best SIMD tier.
//
// Each pair runs the same hot kernel through simd::force_tier, so
// regress.py can gate the dispatch layer's machine-relative speedup
// (kernel_*/scalar vs kernel_*/<tier>). items_per_second counts
// baseband samples through the kernel, same unit as BM_Generate.

constexpr std::size_t kKernelChunk = 4096;

void set_tier(benchmark::State& state, simd::Tier tier) {
  const simd::Tier got = simd::force_tier(tier);
  state.SetLabel(simd::tier_name(got));
}

void BM_KernelFft512(benchmark::State& state, simd::Tier tier) {
  set_tier(state, tier);
  dsp::Fft fft(512);
  Rng rng(7);
  cvec buf(512);
  rng.complex_gaussian_fill(buf);
  for (auto _ : state) {
    fft.forward(buf, buf);
    fft.inverse(buf, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * buf.size() * 2));
}

// --- FFT engine A/B sweep: legacy radix-2 vs split-radix at the
// host's best tier, across the family's power-of-two symbol sizes plus
// two Bluestein (DRM) sizes whose inner convolution uses the same
// engine. Pairs are named kernel_fft<N>/<engine>; regress.py gates the
// split-radix engine on >= 1.8x over radix-2 for at least one size.

void BM_KernelFftEngine(benchmark::State& state, std::size_t n,
                        dsp::FftEngine engine) {
  set_tier(state, simd::best_supported_tier());
  const dsp::FftEngine saved = dsp::fft_engine();
  dsp::fft_force_engine(engine);
  dsp::Fft fft(n);  // tables pinned at construction
  dsp::fft_force_engine(saved);
  Rng rng(7);
  cvec buf(n);
  rng.complex_gaussian_fill(buf);
  for (auto _ : state) {
    fft.forward(buf, buf);
    fft.inverse(buf, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * buf.size() * 2));
  state.SetLabel(dsp::fft_engine_name(engine));
}

// --- Plan-acquisition attribution: cold (tables rebuilt from nothing)
// vs cached (shared out of the process-wide plan cache). The gap is
// what every Modulator / receiver / LinkRunner worker construction
// saves after the first plan of a size. items = plans built.

void BM_FftPlanBuild(benchmark::State& state, std::size_t n, bool cold) {
  const dsp::Fft primer(n);  // cached variant: guarantee a warm entry
  for (auto _ : state) {
    if (cold) dsp::fft_plan_cache_clear();
    const dsp::Fft fft(n);
    benchmark::DoNotOptimize(&fft);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(cold ? "cold" : "cached");
}

void BM_KernelFir64(benchmark::State& state, simd::Tier tier) {
  set_tier(state, tier);
  dsp::FirFilter fir(dsp::design_lowpass(0.2, 64));
  Rng rng(8);
  cvec in(kKernelChunk), out(kKernelChunk);
  rng.complex_gaussian_fill(in);
  for (auto _ : state) {
    fir.process(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * in.size()));
}

void BM_KernelTdl9(benchmark::State& state, simd::Tier tier) {
  // Complex-tap tapped delay line (fir_cc): the multipath-channel
  // kernel, distinct from the real-tap FIR.
  set_tier(state, tier);
  constexpr std::size_t kTaps = 9;
  Rng rng(11);
  cvec taps(kTaps), x(kKernelChunk + kTaps - 1), out(kKernelChunk);
  rng.complex_gaussian_fill(taps);
  rng.complex_gaussian_fill(x);
  for (auto _ : state) {
    simd::kernels().fir_cc(x.data(), taps.data(), kTaps, out.data(),
                           out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * out.size()));
}

void BM_KernelCvecMul(benchmark::State& state, simd::Tier tier) {
  set_tier(state, tier);
  Rng rng(9);
  cvec a(kKernelChunk), b(kKernelChunk), out(kKernelChunk);
  rng.complex_gaussian_fill(a);
  rng.complex_gaussian_fill(b);
  for (auto _ : state) {
    simd::kernels().cvec_mul(a.data(), b.data(), out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * out.size()));
}

void BM_KernelNoise(benchmark::State& state, simd::Tier tier) {
  set_tier(state, tier);
  Rng rng(10);
  cvec buf(kKernelChunk);
  for (auto _ : state) {
    rng.complex_gaussian_fill(buf, 0.5);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * buf.size()));
}

void register_kernel_benches() {
  using Fn = void (*)(benchmark::State&, simd::Tier);
  struct Entry {
    const char* name;
    Fn fn;
  };
  const Entry kernels[] = {
      {"kernel_fft512", BM_KernelFft512},
      {"kernel_fir64", BM_KernelFir64},
      {"kernel_tdl9", BM_KernelTdl9},
      {"kernel_cvec_mul", BM_KernelCvecMul},
      {"kernel_noise", BM_KernelNoise},
  };
  const simd::Tier best = simd::best_supported_tier();
  for (const Entry& k : kernels) {
    benchmark::RegisterBenchmark((std::string(k.name) + "/scalar").c_str(),
                                 k.fn, simd::Tier::kScalar)
        ->Unit(benchmark::kMicrosecond);
    if (best != simd::Tier::kScalar) {
      benchmark::RegisterBenchmark(
          (std::string(k.name) + "/" + simd::tier_name(best)).c_str(),
          k.fn, best)
          ->Unit(benchmark::kMicrosecond);
    }
  }

  // FFT size sweep: every pow2 symbol size class plus the two largest
  // DRM Bluestein sizes, one radix2/splitradix pair each.
  const std::size_t fft_sizes[] = {64, 256, 512, 2048, 8192, 448, 1152};
  for (const std::size_t n : fft_sizes) {
    for (const auto engine :
         {dsp::FftEngine::kRadix2, dsp::FftEngine::kSplitRadix}) {
      benchmark::RegisterBenchmark(
          ("kernel_fft" + std::to_string(n) + "/" +
           dsp::fft_engine_name(engine))
              .c_str(),
          BM_KernelFftEngine, n, engine)
          ->Unit(benchmark::kMicrosecond);
    }
  }

  // Plan-acquisition cost, cold vs cached (one pow2, one Bluestein).
  for (const std::size_t n : {std::size_t{512}, std::size_t{1152}}) {
    for (const bool cold : {true, false}) {
      benchmark::RegisterBenchmark(
          ("fft_plan" + std::to_string(n) + (cold ? "/cold" : "/cached"))
              .c_str(),
          BM_FftPlanBuild, n, cold)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: Mother Model generation throughput per standard "
              "(paper §3) ===\n\n");
  std::printf("items_per_second = baseband samples generated per second; "
              "compare\nagainst each standard's own sample rate for the "
              "real-time margin.\n\n");

  for (core::Standard s : core::kStandardFamily) {
    benchmark::RegisterBenchmark("BM_Generate", BM_Generate)
        ->Arg(static_cast<int>(s))
        ->Unit(benchmark::kMillisecond);
  }
  register_kernel_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  simd::force_tier(simd::best_supported_tier());

  // Real-time margin summary (single-shot measurement).
  std::printf("\n%-20s %-14s %-14s %s\n", "standard", "gen_MS/s",
              "fs_MS/s", "x realtime");
  for (core::Standard s : core::kStandardFamily) {
    const core::OfdmParams params = bench_params(s);
    core::Transmitter tx(params);
    Rng rng(6);
    const bitvec payload = rng.bits(
        std::min<std::size_t>(tx.recommended_payload_bits(), 20000));
    std::size_t samples = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.2) {
      samples += tx.modulate(payload).samples.size();
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }
    const double rate = static_cast<double>(samples) / elapsed;
    std::printf("%-20s %-14.1f %-14.3f %.1f\n",
                core::standard_name(s).c_str(), rate / 1e6,
                params.sample_rate / 1e6, rate / params.sample_rate);
  }
  return 0;
}
