// Experiment E5 — signal-source usability (§3):
//   "it works as a digital signal source for the RF designer"
//
// A usable source must generate samples comfortably faster than the RF
// simulator consumes them. This bench measures generation throughput
// (Msamples/s of baseband output) for every family member, plus the
// real-time margin against each standard's own sample rate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"

namespace {

using namespace ofdm;

core::OfdmParams bench_params(core::Standard s) {
  core::OfdmParams p = core::profile_for(s);
  if (p.frame.symbols_per_frame > 16) p.frame.symbols_per_frame = 16;
  return p;
}

void BM_Generate(benchmark::State& state) {
  const auto standard = static_cast<core::Standard>(state.range(0));
  const core::OfdmParams params = bench_params(standard);
  core::Transmitter tx(params);
  Rng rng(5);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 20000));

  std::size_t samples = 0;
  for (auto _ : state) {
    auto burst = tx.modulate(payload);
    benchmark::DoNotOptimize(burst.samples.data());
    samples += burst.samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.SetLabel(core::standard_name(standard));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: Mother Model generation throughput per standard "
              "(paper §3) ===\n\n");
  std::printf("items_per_second = baseband samples generated per second; "
              "compare\nagainst each standard's own sample rate for the "
              "real-time margin.\n\n");

  for (core::Standard s : core::kStandardFamily) {
    benchmark::RegisterBenchmark("BM_Generate", BM_Generate)
        ->Arg(static_cast<int>(s))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Real-time margin summary (single-shot measurement).
  std::printf("\n%-20s %-14s %-14s %s\n", "standard", "gen_MS/s",
              "fs_MS/s", "x realtime");
  for (core::Standard s : core::kStandardFamily) {
    const core::OfdmParams params = bench_params(s);
    core::Transmitter tx(params);
    Rng rng(6);
    const bitvec payload = rng.bits(
        std::min<std::size_t>(tx.recommended_payload_bits(), 20000));
    std::size_t samples = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.2) {
      samples += tx.modulate(payload).samples.size();
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }
    const double rate = static_cast<double>(samples) / elapsed;
    std::printf("%-20s %-14.1f %-14.3f %.1f\n",
                core::standard_name(s).c_str(), rate / 1e6,
                params.sample_rate / 1e6, rate / params.sample_rate);
  }
  return 0;
}
