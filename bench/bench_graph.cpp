// End-to-end RF-graph throughput: sequential driver vs the
// pipeline-parallel executor at 2/4/8 stages.
//
// One representative graph (Submodel source into the reference
// impairment chain) is driven for a fixed sample budget under each
// executor configuration; every configuration gets a fresh graph and a
// warm-up pass so buffer growth and cold caches stay out of the
// numbers. The JSON goes to BENCH_graph.json at the repo root and is
// gated by bench/regress.py --graph.
//
// Note the speedup column is relative to the sequential run on the
// *same* machine: on a single hardware thread the pipeline cannot beat
// sequential (the stages time-slice one core and pay the queue
// hand-off), which is why regress.py compares against a checked-in
// baseline from the same environment rather than an absolute ratio.
//
// Usage:
//   bench_graph [--samples N] [--chunk N] [--out FILE] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/profiles.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace {

using namespace ofdm;

/// Same line-up as bench_report_blocks: one of each impairment family,
/// so per-stage cost is roughly balanced across the pipeline split.
void build_chain(rf::Chain& chain) {
  chain.add<rf::Gain>(-3.0);
  chain.add<rf::IqImbalance>(0.3, 1.5);
  chain.add<rf::PhaseNoise>(40.0, 20e6, 12345);
  chain.add<rf::RappPa>(2.0, 1.0);
  chain.add<rf::MultipathChannel>(rf::exponential_pdp_taps(2.0, 8, 77));
  chain.add<rf::AwgnChannel>(1e-3, 99);
  chain.add<rf::PowerMeter>();
}

struct Config {
  const char* name;
  rf::RunOptions opts;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 1u << 21;
  std::size_t chunk = 4096;
  std::string out_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") {
      total = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--chunk") {
      chunk = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: bench_graph [--samples N] [--chunk N]"
                   " [--out FILE] [--quiet]\n";
      return 2;
    }
  }

  const Config configs[] = {
      {"sequential", {.threads = 1, .queue_depth = 4}},
      {"stages2", {.threads = 2, .queue_depth = 4}},
      {"stages4", {.threads = 4, .queue_depth = 4}},
      {"stages8", {.threads = 8, .queue_depth = 4}},
  };

  std::ostringstream json;
  json << "{\n \"samples\": " << total << ",\n \"chunk\": " << chunk
       << ",\n \"configs\": [\n";
  double sequential_msps = 0.0;
  bool first = true;
  for (const Config& cfg : configs) {
    rf::Submodel source(
        core::profile_for(core::Standard::kWlan80211a));
    rf::Chain chain;
    build_chain(chain);

    rf::run(source, chain, 4 * chunk, chunk, cfg.opts);  // warm-up
    const rf::RunStats stats =
        rf::run(source, chain, total, chunk, cfg.opts);

    const double msps =
        static_cast<double>(stats.samples_in) / stats.elapsed_seconds / 1e6;
    if (cfg.opts.threads == 1) sequential_msps = msps;
    const double speedup =
        sequential_msps > 0.0 ? msps / sequential_msps : 0.0;
    if (!quiet) {
      std::printf("%-12s threads=%zu  %8.2f Msps  speedup %5.2fx  "
                  "(elapsed %.3fs, block %.3fs",
                  cfg.name, cfg.opts.threads, msps, speedup,
                  stats.elapsed_seconds, stats.block_seconds);
      for (const obs::StageStats& st : stats.stages) {
        std::printf(", %s busy %.0fms stall %.0fms", st.name.c_str(),
                    st.busy_seconds * 1e3, st.stall_seconds * 1e3);
      }
      std::printf(")\n");
    }
    if (!first) json << ",\n";
    json << "  {\"name\": \"" << cfg.name
         << "\", \"threads\": " << cfg.opts.threads
         << ", \"stages\": " << stats.stages.size()
         << ", \"msps\": " << msps << ", \"speedup\": " << speedup << "}";
    first = false;
  }
  json << "\n ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    f << json.str();
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  } else if (quiet) {
    std::cout << json.str();
  }
  return 0;
}
