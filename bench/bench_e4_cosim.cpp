// Experiment E4 — the paper's co-modeling use case (§2):
//   "With these executable baseband blocks the RF designer can assure
//    the functionality of the design at RF system level ... the
//    operation of the digital transceiver can be verified with proper
//    modeling of the RF parts and the transmission channel in one
//    simulator."
//
// The regenerated artefact is the RF designer's two sweeps:
//   (1) EVM and spectral-mask margin vs PA input back-off (Rapp PA);
//   (2) coded BER vs SNR through PA + multipath + AWGN, behavioural TX
//       and RX in the same simulator as the analog chain.
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rx/receiver.hpp"

namespace {

using namespace ofdm;

void pa_backoff_sweep() {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k36);
  core::Transmitter tx(params);
  Rng rng(17);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rx::Receiver ref_rx(params);
  const auto clean =
      ref_rx.extract_data_tones(burst.samples, burst.data_symbols);

  std::printf("(1) 802.11a 36 Mbit/s through a Rapp PA (s=2): EVM and "
              "mask margin vs back-off\n\n");
  std::printf("%-12s %-10s %-12s %-16s %s\n", "backoff_dB", "EVM_%",
              "EVM_dB", "mask_margin_dB", "16QAM_limit(-19dB)");
  for (double backoff = 14.0; backoff >= 0.0; backoff -= 2.0) {
    rf::Chain chain;
    chain.add<rf::Gain>(-backoff);
    chain.add<rf::RappPa>(2.0, 1.0);
    chain.add<rf::Gain>(backoff);
    dsp::WelchConfig cfg;
    cfg.segment = 256;
    cfg.sample_rate = 20e6;
    auto& analyzer = chain.add<rf::SpectrumAnalyzer>(cfg);

    cvec rx_samples;
    for (int rep = 0; rep < 6; ++rep) {
      cvec out = chain.process(burst.samples);
      if (rep == 0) rx_samples = std::move(out);
    }

    rx::Receiver rx(params);
    rx.set_equalizer(rx.estimate_equalizer(rx_samples));
    const auto tones =
        rx.extract_data_tones(rx_samples, burst.data_symbols);
    cvec all_rx;
    cvec all_ref;
    for (std::size_t s = 0; s < tones.size(); ++s) {
      all_rx.insert(all_rx.end(), tones[s].begin(), tones[s].end());
      all_ref.insert(all_ref.end(), clean[s].begin(), clean[s].end());
    }
    const auto evm = metrics::evm(all_rx, all_ref);
    const auto mask = metrics::check_mask(
        analyzer.psd(), metrics::wlan_mask(), 8.5e6, 9e6);

    std::printf("%-12.0f %-10.2f %-12.1f %-16.1f %s\n", backoff,
                evm.rms_percent(), evm.rms_db(), mask.worst_margin_db,
                evm.rms_db() <= -19.0 && mask.pass ? "pass" : "FAIL");
  }
  std::printf("\n");
}

void ber_vs_snr_sweep() {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k12);
  core::Transmitter tx(params);
  Rng rng(18);

  std::printf("(2) 802.11a 12 Mbit/s coded BER vs SNR, PA(8 dB backoff) "
              "+ 3-tap multipath + AWGN\n\n");
  std::printf("%-9s %-14s %-12s %s\n", "SNR_dB", "bit_errors",
              "bits", "BER");

  const cvec channel_taps = {cplx{0.95, 0.05}, cplx{0.2, -0.1},
                             cplx{0.08, 0.05}};
  for (double snr_db = 2.0; snr_db <= 16.0; snr_db += 2.0) {
    metrics::BerCounter counter;
    for (int frame = 0; frame < 12; ++frame) {
      const bitvec payload = rng.bits(tx.recommended_payload_bits());
      const auto burst = tx.modulate(payload);

      rf::Chain chain;
      chain.add<rf::Gain>(-8.0);
      chain.add<rf::RappPa>(2.0, 1.0);
      chain.add<rf::MultipathChannel>(channel_taps);
      chain.add<rf::AwgnChannel>(
          rf::snr_to_noise_power(from_db(-8.0), snr_db),
          static_cast<std::uint64_t>(frame) * 977 + 13);
      const cvec rx_samples = chain.process(burst.samples);

      rx::Receiver rx(params);
      rx.set_equalizer(rx.estimate_equalizer(rx_samples));
      const auto result = rx.demodulate(rx_samples, payload.size());
      counter.add(payload, result.payload);
    }
    const auto r = counter.result();
    std::printf("%-9.0f %-14zu %-12zu %.2e\n", snr_db, r.errors, r.bits,
                r.rate());
  }
  std::printf("\nThe waterfall shape — error floor at low SNR, clean "
              "above ~12 dB —\nis the RF-level verification artefact the "
              "paper's flow produces.\n");
}

}  // namespace

int main() {
  std::printf("=== E4: analog-digital co-simulation (paper §2) ===\n\n");
  pa_backoff_sweep();
  ber_vs_snr_sweep();
  return 0;
}
