// DRM robustness-mode survey: reconfigure one Mother Model instance
// through all four DRM modes (A-D) — the member of the family whose
// non-power-of-two symbol lengths exercise the Bluestein FFT path — and
// report the air-interface numbers a broadcast planner cares about.
//
//   $ ./drm_broadcast
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/spectrum.hpp"
#include "metrics/ber.hpp"
#include "metrics/mask.hpp"
#include "metrics/papr.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  std::printf("DRM (ETSI ES 201 980) robustness modes, 48 kHz master "
              "rate\n\n");
  std::printf("%-6s %-7s %-6s %-9s %-9s %-10s %-8s %-9s %s\n", "mode",
              "N_FFT", "CP", "Tu_ms", "Ts_ms", "carriers", "PAPR_dB",
              "occBW_Hz", "loopback");

  core::Transmitter tx;  // ONE instance, reconfigured per mode
  Rng rng(11);

  for (const auto mode : {core::DrmMode::kA, core::DrmMode::kB,
                          core::DrmMode::kC, core::DrmMode::kD}) {
    core::OfdmParams params = core::profile_drm(mode);
    params.frame.symbols_per_frame = 10;  // keep the demo quick
    tx.configure(params);

    const bitvec payload = rng.bits(tx.recommended_payload_bits());
    const auto burst = tx.modulate(payload);

    // Occupied bandwidth from the burst's own spectrum.
    dsp::WelchConfig cfg;
    cfg.segment = 512;
    cfg.sample_rate = params.sample_rate;
    const auto psd = dsp::welch_psd(burst.samples, cfg);
    const double obw = metrics::occupied_bandwidth_hz(psd, 0.99);

    // Loopback check through the reference receiver.
    rx::Receiver rx(params);
    const auto result = rx.demodulate(burst.samples, payload.size());
    const auto ber = metrics::ber(payload, result.payload);

    const char mode_name = 'A' + static_cast<char>(mode);
    std::printf("%-6c %-7zu %-6zu %-9.2f %-9.2f %-10zu %-8.2f %-9.0f %s\n",
                mode_name, params.fft_size, params.cp_len,
                1e3 * static_cast<double>(params.fft_size) /
                    params.sample_rate,
                1e3 * params.symbol_duration_s(),
                core::make_tone_layout(params).data_bins.size(),
                metrics::papr_db(burst.samples), obw,
                ber.errors == 0 ? "clean" : "ERRORS");
  }

  std::printf(
      "\nModes trade symbol length against guard fraction: A for "
      "ground-wave\nLF/MF, D for the most hostile ionospheric NVIS "
      "channels. All four are\nthe same Mother Model under different "
      "parameters — including FFT sizes\n1152/704/448 that no power-of-two "
      "FFT can serve.\n");
  return 0;
}
