// Family survey: reconfigure ONE Mother Model instance through all ten
// standards and print the family parameter table — the demonstration
// behind the paper's abstract ("a common reconfigurable Mother Model for
// ten different standardized digital OFDM transmitters").
//
//   $ ./standard_survey
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "metrics/papr.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  std::printf("The OFDM Standard Family: one Mother Model, ten "
              "parameterizations\n\n");
  std::printf("%-18s %-7s %-6s %-7s %-9s %-11s %-8s %-9s %s\n",
              "standard", "N_FFT", "CP", "tones", "df", "fs",
              "PAPR_dB", "dParams", "loopback");

  core::Transmitter tx;  // the ONE instance
  Rng rng(42);
  const core::OfdmParams reference = core::profile_wlan_80211a();

  for (core::Standard s : core::kStandardFamily) {
    core::OfdmParams params = core::profile_for(s);
    // Keep the demo below a second per standard.
    if (params.frame.symbols_per_frame > 12) {
      params.frame.symbols_per_frame = 12;
    }
    tx.configure(params);  // <-- the reconfiguration step

    const std::size_t n_bits =
        std::min<std::size_t>(tx.recommended_payload_bits(), 2000);
    const bitvec payload = rng.bits(n_bits);
    const auto burst = tx.modulate(payload);

    rx::Receiver rx(params);
    const auto result = rx.demodulate(burst.samples, payload.size());
    const auto ber = metrics::ber(payload, result.payload);

    const auto layout = core::make_tone_layout(params);
    char df[24];
    if (params.subcarrier_spacing_hz() >= 1e3) {
      std::snprintf(df, sizeof df, "%.4gkHz",
                    params.subcarrier_spacing_hz() / 1e3);
    } else {
      std::snprintf(df, sizeof df, "%.4gHz",
                    params.subcarrier_spacing_hz());
    }
    char fs[24];
    if (params.sample_rate >= 1e6) {
      std::snprintf(fs, sizeof fs, "%.4gMS/s", params.sample_rate / 1e6);
    } else {
      std::snprintf(fs, sizeof fs, "%.4gkS/s", params.sample_rate / 1e3);
    }

    std::printf("%-18s %-7zu %-6zu %-7zu %-9s %-11s %-8.2f %-9zu %s\n",
                core::standard_name(s).c_str(), params.fft_size,
                params.cp_len, layout.used_tones(), df, fs,
                metrics::papr_db(burst.samples),
                core::parameter_distance(reference, params),
                ber.errors == 0 ? "clean" : "ERRORS");
  }

  std::printf("\n'dParams' counts the configuration fields that differ "
              "from the 802.11a\nbaseline (of %zu total) — the cost of "
              "deriving each standard from the\nMother Model instead of "
              "designing it from scratch.\n",
              core::parameter_count(reference));
  return 0;
}
