// The paper's RF-designer workflow: the 802.11a Mother Model instance is
// wrapped as a Submodel signal source, fed through an analog TX chain
// (back-off -> Rapp PA), and judged at RF level: EVM, spectral regrowth
// against the 802.11a transmit mask, and ACPR — all inside one simulator.
//
// The second half shows the fault-containment workflow on the same
// graph: numerical-health guards watching every block, and a mid-run
// checkpoint that a freshly built graph resumes bit-identically.
//
//   $ ./wlan_over_rf
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "obs/stream_hash.hpp"
#include "rf/chain.hpp"
#include "rf/guard.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  const auto params = core::profile_wlan_80211a(core::WlanRate::k54);
  std::printf("Source: %s, 54 Mbit/s mode\n\n",
              core::summarize(params).c_str());

  // A clean reference burst and its constellation-domain tones.
  core::Transmitter tx(params);
  Rng rng(7);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rx::Receiver ref_rx(params);
  const auto clean_tones =
      ref_rx.extract_data_tones(burst.samples, burst.data_symbols);

  std::printf("%-12s %-10s %-12s %-12s %s\n", "backoff_dB", "EVM_%",
              "EVM_dB", "mask_margin", "verdict");
  for (double backoff = 12.0; backoff >= 0.0; backoff -= 2.0) {
    // TX chain: set the PA operating point, amplify, renormalize.
    rf::Chain chain;
    chain.add<rf::Gain>(-backoff);
    chain.add<rf::RappPa>(2.0, 1.0);
    chain.add<rf::Gain>(backoff);
    auto& analyzer = chain.add<rf::SpectrumAnalyzer>([] {
      dsp::WelchConfig cfg;
      cfg.segment = 256;
      cfg.sample_rate = 20e6;
      return cfg;
    }());

    // Run several frames through the chain for a stable spectrum.
    cvec rx_samples;
    for (int frame = 0; frame < 8; ++frame) {
      const cvec out = chain.process(burst.samples);
      if (frame == 0) rx_samples = out;
    }

    // Modulation quality: equalize from the burst's own preamble, then
    // compare data tones against the clean reference.
    rx::Receiver rx(params);
    rx.set_equalizer(rx.estimate_equalizer(rx_samples));
    const auto tones =
        rx.extract_data_tones(rx_samples, burst.data_symbols);
    cvec all_rx;
    cvec all_ref;
    for (std::size_t s = 0; s < tones.size(); ++s) {
      all_rx.insert(all_rx.end(), tones[s].begin(), tones[s].end());
      all_ref.insert(all_ref.end(), clean_tones[s].begin(),
                     clean_tones[s].end());
    }
    const auto evm = metrics::evm(all_rx, all_ref);

    // Spectral regrowth against the standard transmit mask.
    const auto report = metrics::check_mask(
        analyzer.psd(), metrics::wlan_mask(), 8.5e6,
        /*margin_from_hz=*/9e6);

    // 802.11a 17.3.9.6.3 requires EVM <= -25 dB for 64-QAM 3/4.
    const bool evm_ok = evm.rms_db() <= -25.0;
    std::printf("%-12.0f %-10.2f %-12.1f %-12.1f %s\n", backoff,
                evm.rms_percent(), evm.rms_db(), report.worst_margin_db,
                evm_ok && report.pass ? "pass" : "FAIL");
  }

  std::printf(
      "\nThe RF designer reads the operating point straight off this "
      "table:\nthe smallest back-off whose row still passes both the EVM "
      "limit\n(-25 dB for 54 Mbit/s) and the spectral mask.\n");

  // ---- Guarded + checkpointed run -------------------------------------
  // The same 802.11a source streamed through a guarded TX chain. The
  // guards sweep every chunk for NaN/Inf (Throw would pin a fault to
  // the block and sample that produced it); halfway through, the whole
  // graph is checkpointed and a freshly built copy resumes from the
  // bytes — bit-identically, which the stream digests prove.
  auto build = [&params] {
    struct Graph {
      rf::Submodel source;
      rf::Chain chain;
      explicit Graph(const core::OfdmParams& p)
          : source(p, /*gap_samples=*/64, /*payload_seed=*/7) {
        chain.add<rf::Gain>(-8.0);
        chain.add<rf::RappPa>(2.0, 1.0);
        chain.add<rf::Gain>(8.0);
      }
    };
    return Graph(params);
  };

  auto graph = build();
  rf::GuardSet guards({.policy = rf::GuardPolicy::kThrow});
  graph.chain.attach_guards(guards);

  constexpr std::size_t kChunk = 4096;
  constexpr std::size_t kChunks = 16;
  obs::StreamHash digest;
  cvec in;
  cvec out;
  for (std::size_t c = 0; c < kChunks / 2; ++c) {
    graph.source.pull(kChunk, in);
    graph.chain.process(in, out);
    digest.update(out);
  }

  // Checkpoint source + chain as named frames.
  StateWriter snap;
  snap.begin_node(graph.source.name());
  graph.source.save_state(snap);
  snap.end_node();
  snap.begin_node(graph.chain.name());
  graph.chain.save_state(snap);
  snap.end_node();

  // Original run finishes...
  obs::StreamHash full = digest;
  for (std::size_t c = kChunks / 2; c < kChunks; ++c) {
    graph.source.pull(kChunk, in);
    graph.chain.process(in, out);
    full.update(out);
  }

  // ...and so does a fresh graph restored from the snapshot bytes.
  auto resumed = build();
  StateReader r(snap.bytes());
  r.enter_node(resumed.source.name());
  resumed.source.load_state(r);
  r.exit_node();
  r.enter_node(resumed.chain.name());
  resumed.chain.load_state(r);
  r.exit_node();
  obs::StreamHash replay = digest;
  for (std::size_t c = kChunks / 2; c < kChunks; ++c) {
    resumed.source.pull(kChunk, in);
    resumed.chain.process(in, out);
    replay.update(out);
  }

  std::printf(
      "\nGuarded run: %zu blocks watched, %llu samples swept, "
      "%llu faults.\nCheckpoint at chunk %zu/%zu: %zu snapshot bytes; "
      "resumed digest %s\n(uninterrupted %016llx, resumed %016llx).\n",
      guards.size(),
      static_cast<unsigned long long>(guards.at(0).samples_seen()),
      static_cast<unsigned long long>(guards.total_faults()), kChunks / 2,
      kChunks, snap.bytes().size(),
      full.digest() == replay.digest() ? "MATCHES" : "DIVERGED",
      static_cast<unsigned long long>(full.digest()),
      static_cast<unsigned long long>(replay.digest()));

  // ---- Pipeline-parallel run ------------------------------------------
  // The same graph again, now under the pipeline-parallel executor
  // (RunOptions{threads, queue_depth}): source and blocks partitioned
  // across worker stages connected by bounded SPSC chunk queues. The
  // output stream is bit-identical to the sequential driver — the last
  // block's probe digest proves it — and the per-stage busy/stall split
  // shows where the pipeline's time actually went.
  auto digest_of = [&build, kChunk, kChunks](const rf::RunOptions& opts,
                                             rf::RunStats& stats) {
    auto g = build();
    obs::ProbeSet probes({.measure_signal = false, .hash_output = true});
    g.chain.attach_probes(probes);
    stats = rf::run(g.source, g.chain, kChunks * kChunk, kChunk, opts);
    return probes.at(probes.size() - 1).output_hash();
  };
  rf::RunStats seq_stats;
  rf::RunStats par_stats;
  const std::uint64_t seq_digest = digest_of({}, seq_stats);
  const std::uint64_t par_digest =
      digest_of({.threads = 4, .queue_depth = 4}, par_stats);

  std::printf(
      "\nPipeline-parallel executor (threads=4, queue_depth=4): "
      "%zu stages,\nelapsed %.3fs (sequential %.3fs), block time %.3fs; "
      "digest %s.\n",
      par_stats.stages.size(), par_stats.elapsed_seconds,
      seq_stats.elapsed_seconds, par_stats.block_seconds,
      par_digest == seq_digest ? "MATCHES sequential" : "DIVERGED");
  for (const obs::StageStats& st : par_stats.stages) {
    std::printf("  %-8s %zu item(s), %llu chunks, busy %6.1fms, "
                "stall %6.1fms\n",
                st.name.c_str(), st.blocks,
                static_cast<unsigned long long>(st.chunks),
                st.busy_seconds * 1e3, st.stall_seconds * 1e3);
  }

  const bool ok =
      full.digest() == replay.digest() && par_digest == seq_digest;
  return ok ? 0 : 1;
}
