// The paper's RF-designer workflow: the 802.11a Mother Model instance is
// wrapped as a Submodel signal source, fed through an analog TX chain
// (back-off -> Rapp PA), and judged at RF level: EVM, spectral regrowth
// against the 802.11a transmit mask, and ACPR — all inside one simulator.
//
//   $ ./wlan_over_rf
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "rf/chain.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  const auto params = core::profile_wlan_80211a(core::WlanRate::k54);
  std::printf("Source: %s, 54 Mbit/s mode\n\n",
              core::summarize(params).c_str());

  // A clean reference burst and its constellation-domain tones.
  core::Transmitter tx(params);
  Rng rng(7);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rx::Receiver ref_rx(params);
  const auto clean_tones =
      ref_rx.extract_data_tones(burst.samples, burst.data_symbols);

  std::printf("%-12s %-10s %-12s %-12s %s\n", "backoff_dB", "EVM_%",
              "EVM_dB", "mask_margin", "verdict");
  for (double backoff = 12.0; backoff >= 0.0; backoff -= 2.0) {
    // TX chain: set the PA operating point, amplify, renormalize.
    rf::Chain chain;
    chain.add<rf::Gain>(-backoff);
    chain.add<rf::RappPa>(2.0, 1.0);
    chain.add<rf::Gain>(backoff);
    auto& analyzer = chain.add<rf::SpectrumAnalyzer>([] {
      dsp::WelchConfig cfg;
      cfg.segment = 256;
      cfg.sample_rate = 20e6;
      return cfg;
    }());

    // Run several frames through the chain for a stable spectrum.
    cvec rx_samples;
    for (int frame = 0; frame < 8; ++frame) {
      const cvec out = chain.process(burst.samples);
      if (frame == 0) rx_samples = out;
    }

    // Modulation quality: equalize from the burst's own preamble, then
    // compare data tones against the clean reference.
    rx::Receiver rx(params);
    rx.set_equalizer(rx.estimate_equalizer(rx_samples));
    const auto tones =
        rx.extract_data_tones(rx_samples, burst.data_symbols);
    cvec all_rx;
    cvec all_ref;
    for (std::size_t s = 0; s < tones.size(); ++s) {
      all_rx.insert(all_rx.end(), tones[s].begin(), tones[s].end());
      all_ref.insert(all_ref.end(), clean_tones[s].begin(),
                     clean_tones[s].end());
    }
    const auto evm = metrics::evm(all_rx, all_ref);

    // Spectral regrowth against the standard transmit mask.
    const auto report = metrics::check_mask(
        analyzer.psd(), metrics::wlan_mask(), 8.5e6,
        /*margin_from_hz=*/9e6);

    // 802.11a 17.3.9.6.3 requires EVM <= -25 dB for 64-QAM 3/4.
    const bool evm_ok = evm.rms_db() <= -25.0;
    std::printf("%-12.0f %-10.2f %-12.1f %-12.1f %s\n", backoff,
                evm.rms_percent(), evm.rms_db(), report.worst_margin_db,
                evm_ok && report.pass ? "pass" : "FAIL");
  }

  std::printf(
      "\nThe RF designer reads the operating point straight off this "
      "table:\nthe smallest back-off whose row still passes both the EVM "
      "limit\n(-25 dB for 54 Mbit/s) and the spectral mask.\n");
  return 0;
}
