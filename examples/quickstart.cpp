// Quickstart: configure the Mother Model as an IEEE 802.11a transmitter,
// modulate one frame, and verify it with the reference receiver.
//
//   $ ./quickstart
//
// This is the five-minute tour of the library's core loop:
//   profile -> Transmitter::configure -> modulate -> Receiver::demodulate.
#include <cstdio>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "metrics/papr.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  // 1. Pick a family member. Every standard is just a parameter set.
  const core::OfdmParams params =
      core::profile_wlan_80211a(core::WlanRate::k36);
  std::printf("Configured: %s\n", core::summarize(params).c_str());

  // 2. Instantiate the Mother Model and a matching reference receiver.
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  // 3. Modulate one frame of random payload bits.
  Rng rng(2025);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  std::printf("Payload bits:      %zu\n", burst.payload_bits);
  std::printf("Coded bits:        %zu\n", burst.coded_bits);
  std::printf("OFDM symbols:      %zu\n", burst.data_symbols);
  std::printf("Preamble samples:  %zu\n", burst.preamble_samples);
  std::printf("Burst samples:     %zu (%.1f us at %.0f MS/s)\n",
              burst.samples.size(),
              1e6 * static_cast<double>(burst.samples.size()) /
                  params.sample_rate,
              params.sample_rate / 1e6);
  std::printf("Average power:     %.3f\n", mean_power(burst.samples));
  std::printf("PAPR:              %.2f dB\n",
              metrics::papr_db(burst.samples));

  // 4. Close the loop: the receiver must recover the payload exactly.
  const auto result = rx.demodulate(burst.samples, payload.size());
  const auto ber = metrics::ber(payload, result.payload);
  std::printf("Loopback BER:      %zu / %zu bits\n", ber.errors, ber.bits);

  if (ber.errors != 0) {
    std::printf("FAILED: loopback must be lossless\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
