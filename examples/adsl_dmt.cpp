// ADSL DMT over a twisted-pair-like loop: measure per-tone SNR through
// the channel, run the bit-loading algorithm, reconfigure the Mother
// Model with the resulting bit table, and verify the link end-to-end.
//
//   $ ./adsl_dmt
//
// This is the wireline face of the Mother Model: the same transmitter
// object that does 802.11a runs a Hermitian (real-output) DMT waveform
// with a per-tone constellation chosen from channel measurements.
#include <cstdio>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "mapping/bitloading.hpp"
#include "metrics/ber.hpp"
#include "rf/channel.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  core::OfdmParams params = core::profile_adsl();
  params.frame.symbols_per_frame = 16;
  std::printf("Loop:   crude twisted pair (lowpass + 20 dB flat loss)\n");
  std::printf("PHY:    %s\n\n", core::summarize(params).c_str());

  // --- 1. Channel measurement ------------------------------------------
  // Sound the loop with the flat default configuration and estimate the
  // per-tone channel gain |H(f_k)| from the channel taps directly (the
  // DMT equivalent of the modem's MEDLEY phase).
  rf::MultipathChannel loop(rf::twisted_pair_taps(0.18, 20.0, 33));
  const core::ToneLayout layout = core::make_tone_layout(params);

  dsp::Fft fft(params.fft_size);
  cvec taps_padded(params.fft_size, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < loop.taps().size(); ++i) {
    taps_padded[i] = loop.taps()[i];
  }
  const cvec h = fft.forward(taps_padded);

  const double noise_floor_db = -52.0;  // receiver noise relative to TX
  rvec snr_db;
  snr_db.reserve(layout.data_bins.size());
  for (std::size_t bin : layout.data_bins) {
    snr_db.push_back(to_db(std::norm(h[bin])) - noise_floor_db);
  }

  // --- 2. Bit loading ----------------------------------------------------
  const double gamma_db = 9.8 + 3.0;  // SNR gap + margin, no coding gain
  const mapping::BitTable table =
      mapping::compute_bit_allocation(snr_db, gamma_db, 15, 2);
  params.bit_table = table;

  std::size_t used_tones = 0;
  for (std::uint8_t b : table) used_tones += b > 0;
  const std::size_t bits_per_symbol = mapping::table_bits(table);
  const double rate_mbps = static_cast<double>(bits_per_symbol) /
                           params.symbol_duration_s() / 1e6;
  std::printf("Bit loading: %zu of %zu tones active, %zu bits/symbol "
              "-> %.2f Mbit/s\n",
              used_tones, table.size(), bits_per_symbol, rate_mbps);

  // Histogram of per-tone loads.
  std::size_t histogram[16] = {};
  for (std::uint8_t b : table) ++histogram[b];
  std::printf("load histogram (bits: count): ");
  for (int b = 2; b <= 15; ++b) {
    if (histogram[b]) std::printf("%d:%zu ", b, histogram[b]);
  }
  std::printf("\n\n");

  // --- 3. Transmit through the loop and verify ---------------------------
  core::Transmitter tx(params);
  Rng rng(33);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rf::MultipathChannel loop2(rf::twisted_pair_taps(0.18, 20.0, 33));
  cvec rx_samples = loop2.process(burst.samples);

  // One-tap frequency-domain equalizer from the known channel response
  // (a trained modem would estimate this from the sounding phase).
  cvec eq(params.fft_size, cplx{1.0, 0.0});
  for (std::size_t bin = 0; bin < params.fft_size; ++bin) {
    if (std::abs(h[bin]) > 1e-9) eq[bin] = 1.0 / h[bin];
  }
  rx::Receiver rx(params);
  rx.set_equalizer(eq);

  const auto result = rx.demodulate(rx_samples, payload.size());
  const auto ber = metrics::ber(payload, result.payload);
  std::printf("payload: %zu bits over %zu DMT symbols\n", payload.size(),
              burst.data_symbols);
  std::printf("loopback through loop + FEQ: %zu bit errors (BER %.2e)\n",
              ber.errors, ber.rate());

  if (ber.errors != 0) {
    std::printf("FAILED: noiseless equalized DMT link must be clean\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
