// DAB under mobile reception: the differential member of the family
// through a time-varying Rayleigh channel.
//
//   $ ./dab_mobile
//
// DAB chose pi/4-DQPSK precisely because a moving receiver cannot track
// a coherent channel reference; differential demodulation only needs
// the channel to hold still for one symbol. This example sweeps vehicle
// speed (Doppler) and shows the graceful degradation — plus the cliff
// once the channel decorrelates within a symbol.
#include <cstdio>

#include <cmath>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "rf/channel.hpp"
#include "rf/fading.hpp"
#include "rx/receiver.hpp"

int main() {
  using namespace ofdm;

  core::OfdmParams params = core::profile_dab(core::DabMode::kII);
  params.frame.symbols_per_frame = 24;
  core::Transmitter tx(params);

  const double fc = params.nominal_rf_hz;  // VHF band III
  const double fs = params.sample_rate;
  std::printf("PHY:     %s\n", core::summarize(params).c_str());
  std::printf("Carrier: %.2f MHz (VHF band III)\n\n", fc / 1e6);

  std::printf("%-12s %-12s %-14s %-12s %s\n", "speed_km/h",
              "doppler_Hz", "Ts_x_doppler", "BER", "audio verdict");

  Rng rng(99);
  for (double kmh : {0.0, 30.0, 120.0, 300.0, 900.0, 2500.0}) {
    const double doppler = fc * (kmh / 3.6) / 3e8;
    metrics::BerCounter counter;
    for (int frame = 0; frame < 4; ++frame) {
      const bitvec payload = rng.bits(tx.recommended_payload_bits());
      const auto burst = tx.modulate(payload);

      cvec rx_samples;
      if (doppler > 0.0) {
        rf::FadingChannel ch({{0, 0.8}, {40, 0.2}}, doppler, fs,
                             static_cast<std::uint64_t>(kmh) * 31 +
                                 static_cast<std::uint64_t>(frame));
        rx_samples = ch.process(burst.samples);
      } else {
        rx_samples.assign(burst.samples.begin(), burst.samples.end());
      }
      // Mild receiver noise on top.
      rf::AwgnChannel noise(rf::snr_to_noise_power(1.0, 30.0),
                            static_cast<std::uint64_t>(frame) * 7 + 1);
      rx_samples = noise.process(rx_samples);

      rx::Receiver rx(params);
      const auto result = rx.demodulate(rx_samples, payload.size());
      counter.add(payload, result.payload);
    }
    const auto r = counter.result();
    const double ts_fd = params.symbol_duration_s() * doppler;
    const char* verdict = r.rate() < 1e-4   ? "clean"
                          : r.rate() < 1e-2 ? "degraded"
                                            : "muted";
    std::printf("%-12.0f %-12.1f %-14.4f %-12.2e %s\n", kmh, doppler,
                ts_fd, r.rate(), verdict);
  }

  std::printf(
      "\nDifferential DQPSK needs no channel estimate: reception holds "
      "as long\nas Ts x Doppler << 1 (the channel is static across "
      "adjacent symbols).\nThe highway speeds DAB was designed for sit "
      "comfortably on the clean\nside; the cliff appears only at "
      "physically implausible speeds.\n");
  return 0;
}
