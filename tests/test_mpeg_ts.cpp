// MPEG transport-stream framing tests, including an end-to-end DVB-T
// chain: TS packetize -> energy dispersal -> Mother Model -> receiver
// -> de-dispersal -> extraction.
#include <gtest/gtest.h>

#include "coding/mpeg_ts.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rx/receiver.hpp"

namespace ofdm::coding {
namespace {

TEST(TsPacketizer, ProducesWholeSyncedPackets) {
  TsPacketizer pkt(0x0123);
  Rng rng(1);
  const bytevec payload = rng.bytes(500);
  const bytevec ts = pkt.packetize(payload);
  EXPECT_EQ(ts.size() % kTsPacketSize, 0u);
  EXPECT_EQ(ts.size() / kTsPacketSize, 3u);  // ceil(500/184)
  EXPECT_TRUE(TsPacketizer::sync_ok(ts));
}

TEST(TsPacketizer, ExtractInvertsPacketize) {
  TsPacketizer pkt;
  Rng rng(2);
  const bytevec payload = rng.bytes(184 * 4);  // exact fit, no padding
  const bytevec ts = pkt.packetize(payload);
  EXPECT_EQ(TsPacketizer::extract(ts), payload);
}

TEST(TsPacketizer, ContinuityCounterWraps) {
  TsPacketizer pkt(0x10);
  Rng rng(3);
  const bytevec ts = pkt.packetize(rng.bytes(184 * 20));
  for (std::size_t p = 0; p < 20; ++p) {
    EXPECT_EQ(ts[p * kTsPacketSize + 3] & 0x0F,
              static_cast<int>(p % 16));
  }
}

TEST(TsPacketizer, PidInHeader) {
  TsPacketizer pkt(0x1ABC);
  const bytevec ts = pkt.packetize(bytevec(10, 0xEE));
  EXPECT_EQ(((ts[1] & 0x1F) << 8) | ts[2], 0x1ABC);
  EXPECT_THROW(TsPacketizer(0x2000), Error);  // PID is 13 bits
}

TEST(EnergyDispersal, IsAnInvolution) {
  TsPacketizer pkt;
  Rng rng(4);
  const bytevec ts = pkt.packetize(rng.bytes(184 * 16));
  const bytevec dispersed = ts_energy_dispersal(ts);
  EXPECT_NE(dispersed, ts);
  EXPECT_EQ(ts_energy_dispersal(dispersed), ts);
}

TEST(EnergyDispersal, SyncInversionPattern) {
  TsPacketizer pkt;
  Rng rng(5);
  const bytevec ts = pkt.packetize(rng.bytes(184 * 16));
  const bytevec dispersed = ts_energy_dispersal(ts);
  EXPECT_TRUE(dispersed_sync_ok(dispersed));
  EXPECT_EQ(dispersed[0], kTsInvertedSync);
  EXPECT_EQ(dispersed[kTsPacketSize], kTsSyncByte);
  EXPECT_EQ(dispersed[8 * kTsPacketSize], kTsInvertedSync);
}

TEST(EnergyDispersal, ActuallyRandomizesConstantPayload) {
  TsPacketizer pkt;
  const bytevec ts = pkt.packetize(bytevec(184 * 8, 0x00));
  const bytevec dispersed = ts_energy_dispersal(ts);
  // Count distinct byte values in the dispersed payload: a PRBS over
  // ~1.5 kB must produce a rich distribution.
  std::set<std::uint8_t> seen(dispersed.begin(), dispersed.end());
  EXPECT_GT(seen.size(), 100u);
}

TEST(DvbChain, TransportStreamSurvivesTheFullPhy) {
  // The complete DVB-T payload path: TS framing + dispersal feeding the
  // Mother Model (whose own scrambler/RS/conv chain wraps it), decoded
  // back to an intact transport stream.
  TsPacketizer pkt(0x100);
  Rng rng(6);
  const bytevec payload = rng.bytes(184 * 8);
  const bytevec dispersed = ts_energy_dispersal(pkt.packetize(payload));
  const bitvec phy_bits = bytes_to_bits_msb(dispersed);

  core::OfdmParams params = core::profile_dvbt(
      core::DvbtMode::k2k, mapping::Scheme::kQam16);
  core::Transmitter tx(params);
  rx::Receiver rx(params);
  const auto burst = tx.modulate(phy_bits);
  const auto result = rx.demodulate(burst.samples, phy_bits.size());
  ASSERT_EQ(result.payload, phy_bits);

  const bytevec rx_ts = bits_to_bytes_msb(result.payload);
  EXPECT_TRUE(dispersed_sync_ok(rx_ts));
  EXPECT_EQ(TsPacketizer::extract(ts_energy_dispersal(rx_ts)), payload);
}

}  // namespace
}  // namespace ofdm::coding
