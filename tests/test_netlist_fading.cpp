// Tests for the Netlist graph simulator and the time-varying channels
// (Rayleigh fading, impulsive noise).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "rf/fading.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

TEST(Netlist, LinearGraphMatchesChain) {
  // Source -> gain -> meter, built both ways.
  Netlist net;
  const auto src = net.add_source<ToneSource>(1e3, 1e6, 0.5);
  const auto gain = net.add_block<Gain>(6.0);
  const auto meter = net.add_block<PowerMeter>();
  net.connect(src, gain);
  net.connect(gain, meter);
  net.run(10000, 1024);
  const double net_power = net.node<PowerMeter>(meter).average_power();

  ToneSource tone(1e3, 1e6, 0.5);
  Chain chain;
  chain.add<Gain>(6.0);
  auto& chain_meter = chain.add<PowerMeter>();
  run(tone, chain, 10000, 1024);
  EXPECT_NEAR(net_power, chain_meter.average_power(), 1e-9);
}

TEST(Netlist, FanOutBroadcastsTheSameStream) {
  Netlist net;
  const auto src = net.add_source<ToneSource>(2e3, 1e6, 1.0);
  const auto cap_a = net.add_block<Capture>(1000);
  const auto cap_b = net.add_block<Capture>(1000);
  net.connect(src, cap_a);
  net.connect(src, cap_b);
  net.run(1000, 256);
  const cvec& a = net.node<Capture>(cap_a).samples();
  const cvec& b = net.node<Capture>(cap_b).samples();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(max_abs_error(a, b), 1e-15);
}

TEST(Netlist, FanInSumsLikeACombiner) {
  // Two tones at the same frequency and amplitude, in phase -> the
  // combined power is 4x a single tone's.
  Netlist net;
  const auto a = net.add_source<ToneSource>(5e3, 1e6, 1.0);
  const auto b = net.add_source<ToneSource>(5e3, 1e6, 1.0);
  const auto meter = net.add_block<PowerMeter>();
  net.connect(a, meter);
  net.connect(b, meter);
  net.run(20000, 4096);
  EXPECT_NEAR(net.node<PowerMeter>(meter).average_power(), 4.0, 1e-6);
}

TEST(Netlist, InterfererScenario) {
  // The classic RF-designer question the paper's co-modeling serves:
  // wanted 802.11a signal + adjacent interferer into one front end.
  // Everything at the WLAN baseband rate (20 MS/s): the wanted signal
  // occupies +-8.3 MHz, the CW interferer sits at +9.5 MHz in the
  // guard region below Nyquist.
  Netlist net;
  const auto wanted =
      net.add_source_ptr(std::make_unique<Submodel>(
          core::profile_wlan_80211a(), 100));
  const auto interferer =
      net.add_source<ToneSource>(9.5e6, 20e6, 0.3);
  const auto pa = net.add_block<RappPa>(2.0, 2.0);
  dsp::WelchConfig cfg;
  cfg.segment = 512;
  cfg.sample_rate = 20e6;
  const auto analyzer = net.add_block<SpectrumAnalyzer>(cfg);
  net.connect(wanted, pa);
  net.connect(interferer, pa);
  net.connect(pa, analyzer);
  net.run(1 << 15, 4096);

  const auto psd = net.node<SpectrumAnalyzer>(analyzer).psd();
  // Both the wanted signal (around DC) and the interferer must be
  // visible; the quiet gap between them stays well below both.
  const double gap = psd.band_power(8.6e6, 9.2e6);
  EXPECT_GT(psd.band_power(-8e6, 8e6), 20.0 * gap);
  EXPECT_GT(psd.band_power(9.3e6, 9.7e6), 2.0 * gap);
}

TEST(Netlist, RejectsCycles) {
  Netlist net;
  const auto a = net.add_block<Gain>(0.0);
  const auto b = net.add_block<Gain>(0.0);
  net.connect(a, b);
  net.connect(b, a);
  EXPECT_THROW(net.run(100), Error);
}

TEST(Netlist, RejectsDanglingBlock) {
  Netlist net;
  net.add_source<ToneSource>(1e3, 1e6);
  net.add_block<Gain>(0.0);  // never wired
  EXPECT_THROW(net.run(100), Error);
}

TEST(Netlist, RejectsDrivingASource) {
  Netlist net;
  const auto s1 = net.add_source<ToneSource>(1e3, 1e6);
  const auto s2 = net.add_source<ToneSource>(2e3, 1e6);
  EXPECT_THROW(net.connect(s1, s2), Error);
}

// --- fading -------------------------------------------------------------

TEST(Fading, UnitAveragePowerAndRayleighEnvelope) {
  // Fast fading so the time average converges over the test window
  // (slow Doppler keeps near-DC sinusoids from averaging out).
  FadingChannel ch({{0, 1.0}}, /*doppler=*/500.0, /*fs=*/1e6, 77);
  const cvec ones(200000, cplx{1.0, 0.0});
  const cvec out = ch.process(ones);
  // Average power ~ tap power.
  EXPECT_NEAR(mean_power(out), 1.0, 0.2);
  // The envelope must actually fade: deep fades well below average.
  double min_p = 1e9;
  double max_p = 0.0;
  for (const cplx& v : out) {
    min_p = std::min(min_p, std::norm(v));
    max_p = std::max(max_p, std::norm(v));
  }
  EXPECT_LT(min_p, 0.05);
  EXPECT_GT(max_p, 2.0);
}

TEST(Fading, DopplerControlsDecorrelationRate) {
  // Autocorrelation at a fixed lag decays faster for larger Doppler.
  auto correlation_at_lag = [](double doppler, std::size_t lag) {
    FadingChannel ch({{0, 1.0}}, doppler, 1e6, 42);
    const cvec ones(50000, cplx{1.0, 0.0});
    const cvec g = ch.process(ones);
    cplx corr{0.0, 0.0};
    double power = 0.0;
    for (std::size_t i = 0; i + lag < g.size(); ++i) {
      corr += g[i] * std::conj(g[i + lag]);
      power += std::norm(g[i]);
    }
    return std::abs(corr) / power;
  };
  const double slow = correlation_at_lag(10.0, 2000);
  const double fast = correlation_at_lag(500.0, 2000);
  EXPECT_GT(slow, 0.9);
  EXPECT_LT(fast, 0.7);
}

TEST(Fading, MultiTapSpreadsDelay) {
  FadingChannel ch({{0, 0.7}, {5, 0.3}}, 50.0, 1e6, 7);
  cvec impulse(20, cplx{0.0, 0.0});
  impulse[0] = {1.0, 0.0};
  const cvec out = ch.process(impulse);
  EXPECT_GT(std::abs(out[0]), 0.0);
  EXPECT_GT(std::abs(out[5]), 0.0);
  EXPECT_NEAR(std::abs(out[3]), 0.0, 1e-12);  // nothing between taps
}

TEST(Fading, ResetReproducesTheProcess) {
  FadingChannel ch({{0, 1.0}}, 100.0, 1e6, 11);
  const cvec ones(1000, cplx{1.0, 0.0});
  const cvec a = ch.process(ones);
  ch.reset();
  const cvec b = ch.process(ones);
  EXPECT_LT(max_abs_error(a, b), 1e-12);
}

// --- impulse noise --------------------------------------------------------

TEST(ImpulseNoise, QuietBetweenBursts) {
  ImpulseNoise noise(1e-4, 20.0, 100.0, 3);
  const cvec silence(100000, cplx{0.0, 0.0});
  const cvec out = noise.process(silence);
  std::size_t hit = 0;
  for (const cplx& v : out) hit += std::abs(v) > 0.0;
  // Duty cycle ~ rate * mean_len = 0.002.
  EXPECT_GT(hit, 20u);
  EXPECT_LT(hit, 3000u);
  EXPECT_GT(noise.bursts_seen(), 2u);
}

TEST(ImpulseNoise, BurstPowerIsCalibrated) {
  ImpulseNoise noise(1.0, 1e9, 4.0, 4);  // permanently bursting
  const cvec silence(50000, cplx{0.0, 0.0});
  const cvec out = noise.process(silence);
  EXPECT_NEAR(mean_power(out), 4.0, 0.2);
}

TEST(ImpulseNoise, ZeroRateIsTransparent) {
  ImpulseNoise noise(0.0, 10.0, 100.0, 5);
  Rng rng(6);
  cvec x(1000);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  EXPECT_LT(max_abs_error(noise.process(x), x), 1e-15);
}

}  // namespace
}  // namespace ofdm::rf

// --- PAPR reduction -------------------------------------------------------
// (Lives here with the other rf extensions.)
#include "metrics/papr.hpp"
#include "rf/papr_reduction.hpp"

namespace ofdm::rf {
namespace {

TEST(ClipAndFilter, ReducesPaprTowardTarget) {
  Rng rng(31);
  cvec x(20000);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);  // OFDM-like envelope
  const double before = metrics::papr_db(x);
  ClipAndFilter caf(5.0, 0.4, 2);
  const cvec y = caf.process(x);
  const double after = metrics::papr_db(y);
  EXPECT_GT(before, 9.0);
  EXPECT_LT(after, 7.0);  // filtering regrows peaks slightly above 5 dB
  EXPECT_LT(after, before - 2.0);
}

TEST(ClipAndFilter, OutputStaysTimeAligned) {
  // Cross-correlation between input and output peaks at lag zero: the
  // filter group delay is compensated internally.
  Rng rng(32);
  cvec x(4096);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  ClipAndFilter caf(6.0, 0.4, 1);
  const cvec y = caf.process(x);
  ASSERT_EQ(y.size(), x.size());
  double best = -1.0;
  long best_lag = -999;
  for (long lag = -40; lag <= 40; ++lag) {
    cplx corr{0.0, 0.0};
    for (std::size_t i = 100; i + 100 < x.size(); ++i) {
      const long j = static_cast<long>(i) + lag;
      corr += y[static_cast<std::size_t>(j)] * std::conj(x[i]);
    }
    if (std::abs(corr) > best) {
      best = std::abs(corr);
      best_lag = lag;
    }
  }
  EXPECT_EQ(best_lag, 0);
}

TEST(ClipAndFilter, BelowLevelSignalPassesAlmostUntouched) {
  // A constant-envelope tone below the clip level only sees the
  // (unity-DC-gain) lowpass.
  ToneSource tone(0.01e6, 1e6, 1.0);
  const cvec x = tone.pull(4096);
  ClipAndFilter caf(6.0, 0.3, 1);
  const cvec y = caf.process(x);
  double err = 0.0;
  for (std::size_t i = 200; i + 200 < x.size(); ++i) {
    err += std::norm(y[i] - x[i]);
  }
  EXPECT_LT(err / static_cast<double>(x.size() - 400), 0.01);
}

TEST(ClipAndFilter, RejectsEvenTapCount) {
  EXPECT_THROW(ClipAndFilter(5.0, 0.4, 1, 64), Error);
}

}  // namespace
}  // namespace ofdm::rf
