// Parameter-deck serialization tests: every family member round-trips
// through the text format exactly, edited decks parse, malformed decks
// are rejected with diagnostics, and a fixed-seed fuzz sweep drives
// parse -> serialize -> parse over the whole random configuration space.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/params_io.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "random_params.hpp"
#include "rx/receiver.hpp"

namespace ofdm::core {
namespace {

class FamilyDecks : public ::testing::TestWithParam<Standard> {};

TEST_P(FamilyDecks, TextRoundTripIsExact) {
  const OfdmParams original = profile_for(GetParam());
  const OfdmParams back = from_text(to_text(original));
  // Bitwise-equivalent configuration: zero parameter distance and
  // identical derived quantities.
  EXPECT_EQ(parameter_distance(original, back), 0u);
  EXPECT_EQ(back.tone_map, original.tone_map);
  EXPECT_EQ(back.bit_table, original.bit_table);
  EXPECT_EQ(back.variant, original.variant);
  EXPECT_EQ(back.pilots.base_values.size(),
            original.pilots.base_values.size());
  EXPECT_EQ(coded_bits_per_symbol(back), coded_bits_per_symbol(original));
}

TEST_P(FamilyDecks, DeserializedDeckDrivesTheSameWaveform) {
  const OfdmParams original = profile_for(GetParam());
  const OfdmParams back = from_text(to_text(original));
  Transmitter tx_a(original);
  Transmitter tx_b(back);
  Rng rng(5);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx_a.recommended_payload_bits(), 1000));
  const auto burst_a = tx_a.modulate(payload);
  const auto burst_b = tx_b.modulate(payload);
  ASSERT_EQ(burst_a.samples.size(), burst_b.samples.size());
  for (std::size_t i = 0; i < burst_a.samples.size(); ++i) {
    ASSERT_EQ(burst_a.samples[i], burst_b.samples[i]) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Family, FamilyDecks,
                         ::testing::ValuesIn(kStandardFamily));

TEST(ParamsIo, CommentsAndBlankLinesAreIgnored) {
  std::string deck = to_text(profile_wlan_80211a());
  deck = "# a leading comment\n\n" + deck + "\n  # trailing comment\n";
  EXPECT_NO_THROW(from_text(deck));
}

TEST(ParamsIo, EditedDeckChangesTheModel) {
  // The APLAC-user workflow: edit one line of the deck, reload.
  std::string deck = to_text(profile_wlan_80211a());
  const std::size_t pos = deck.find("cp_len=16");
  ASSERT_NE(pos, std::string::npos);
  deck.replace(pos, 9, "cp_len=32");
  const OfdmParams edited = from_text(deck);
  EXPECT_EQ(edited.cp_len, 32u);
  EXPECT_NO_THROW(Transmitter{edited});
}

TEST(ParamsIo, MissingKeyIsRejected) {
  std::string deck = to_text(profile_wlan_80211a());
  const std::size_t pos = deck.find("fft_size=");
  deck.erase(pos, deck.find('\n', pos) - pos + 1);
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, UnknownKeyIsRejected) {
  const std::string deck =
      to_text(profile_wlan_80211a()) + "mystery_knob=42\n";
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, InvalidConfigurationIsRejectedAtParse) {
  std::string deck = to_text(profile_wlan_80211a());
  // Shrink the FFT without shrinking the tone map: validate() must
  // catch the inconsistency during from_text().
  const std::size_t pos = deck.find("fft_size=64");
  deck.replace(pos, 11, "fft_size=32");
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, DeckIsHumanReadable) {
  const std::string deck = to_text(profile_drm(DrmMode::kB));
  EXPECT_NE(deck.find("# OFDM Mother Model parameter deck: DRM"),
            std::string::npos);
  EXPECT_NE(deck.find("fft_size=1024"), std::string::npos);
  EXPECT_NE(deck.find("sample_rate=48000"), std::string::npos);
}

// --- Fixed-seed fuzz: the whole random configuration space must
// round-trip parse -> serialize -> parse with the second serialization a
// fixed point (byte-identical deck).

class DeckFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DeckFuzz, RandomConfigRoundTripsToAFixedPoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  const OfdmParams original = ofdm::test::random_params(rng);
  const std::string deck = to_text(original);
  OfdmParams back;
  ASSERT_NO_THROW(back = from_text(deck)) << deck;
  EXPECT_EQ(parameter_distance(original, back), 0u) << deck;
  EXPECT_EQ(back.tone_map, original.tone_map);
  EXPECT_EQ(back.bit_table, original.bit_table);
  // Serialize the reparsed set: byte-identical (canonical form).
  EXPECT_EQ(to_text(back), deck);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeckFuzz, ::testing::Range(0, 30));

// --- Malformed decks must be rejected with ConfigError diagnostics, not
// accepted, crash, or hang.

class MalformedDeck : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedDeck, MutatedLineIsRejected) {
  std::string deck = to_text(profile_wlan_80211a());
  deck += GetParam();
  deck += "\n";
  EXPECT_THROW(from_text(deck), ConfigError) << "appended: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Lines, MalformedDeck,
    ::testing::Values("fft_size=banana",       // non-numeric value
                      "fft_size=",             // truncated value
                      "fft_size",              // missing '='
                      "fft_size=-64",          // negative size
                      "fft_size=0",            // degenerate size
                      "cp_len=999999999999999999999999",  // overflow
                      "sample_rate=nan",       // non-finite rate
                      "=42",                   // empty key
                      "mystery_knob=1"));      // unknown key

TEST(ParamsIo, GarbageBytesAreRejected) {
  EXPECT_THROW(from_text("\x01\x02\xff not a deck"), ConfigError);
  EXPECT_THROW(from_text("fft_size=64"), ConfigError);  // lone key
}

TEST(ParamsIo, EmptyAndCommentOnlyDecksAreRejected) {
  EXPECT_THROW(from_text(""), ConfigError);
  EXPECT_THROW(from_text("# nothing but comments\n\n"), ConfigError);
}

}  // namespace
}  // namespace ofdm::core
