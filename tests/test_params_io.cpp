// Parameter-deck serialization tests: every family member round-trips
// through the text format exactly, edited decks parse, malformed decks
// are rejected with diagnostics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/params_io.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rx/receiver.hpp"

namespace ofdm::core {
namespace {

class FamilyDecks : public ::testing::TestWithParam<Standard> {};

TEST_P(FamilyDecks, TextRoundTripIsExact) {
  const OfdmParams original = profile_for(GetParam());
  const OfdmParams back = from_text(to_text(original));
  // Bitwise-equivalent configuration: zero parameter distance and
  // identical derived quantities.
  EXPECT_EQ(parameter_distance(original, back), 0u);
  EXPECT_EQ(back.tone_map, original.tone_map);
  EXPECT_EQ(back.bit_table, original.bit_table);
  EXPECT_EQ(back.variant, original.variant);
  EXPECT_EQ(back.pilots.base_values.size(),
            original.pilots.base_values.size());
  EXPECT_EQ(coded_bits_per_symbol(back), coded_bits_per_symbol(original));
}

TEST_P(FamilyDecks, DeserializedDeckDrivesTheSameWaveform) {
  const OfdmParams original = profile_for(GetParam());
  const OfdmParams back = from_text(to_text(original));
  Transmitter tx_a(original);
  Transmitter tx_b(back);
  Rng rng(5);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx_a.recommended_payload_bits(), 1000));
  const auto burst_a = tx_a.modulate(payload);
  const auto burst_b = tx_b.modulate(payload);
  ASSERT_EQ(burst_a.samples.size(), burst_b.samples.size());
  for (std::size_t i = 0; i < burst_a.samples.size(); ++i) {
    ASSERT_EQ(burst_a.samples[i], burst_b.samples[i]) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Family, FamilyDecks,
                         ::testing::ValuesIn(kStandardFamily));

TEST(ParamsIo, CommentsAndBlankLinesAreIgnored) {
  std::string deck = to_text(profile_wlan_80211a());
  deck = "# a leading comment\n\n" + deck + "\n  # trailing comment\n";
  EXPECT_NO_THROW(from_text(deck));
}

TEST(ParamsIo, EditedDeckChangesTheModel) {
  // The APLAC-user workflow: edit one line of the deck, reload.
  std::string deck = to_text(profile_wlan_80211a());
  const std::size_t pos = deck.find("cp_len=16");
  ASSERT_NE(pos, std::string::npos);
  deck.replace(pos, 9, "cp_len=32");
  const OfdmParams edited = from_text(deck);
  EXPECT_EQ(edited.cp_len, 32u);
  EXPECT_NO_THROW(Transmitter{edited});
}

TEST(ParamsIo, MissingKeyIsRejected) {
  std::string deck = to_text(profile_wlan_80211a());
  const std::size_t pos = deck.find("fft_size=");
  deck.erase(pos, deck.find('\n', pos) - pos + 1);
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, UnknownKeyIsRejected) {
  const std::string deck =
      to_text(profile_wlan_80211a()) + "mystery_knob=42\n";
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, InvalidConfigurationIsRejectedAtParse) {
  std::string deck = to_text(profile_wlan_80211a());
  // Shrink the FFT without shrinking the tone map: validate() must
  // catch the inconsistency during from_text().
  const std::size_t pos = deck.find("fft_size=64");
  deck.replace(pos, 11, "fft_size=32");
  EXPECT_THROW(from_text(deck), ConfigError);
}

TEST(ParamsIo, DeckIsHumanReadable) {
  const std::string deck = to_text(profile_drm(DrmMode::kB));
  EXPECT_NE(deck.find("# OFDM Mother Model parameter deck: DRM"),
            std::string::npos);
  EXPECT_NE(deck.find("fft_size=1024"), std::string::npos);
  EXPECT_NE(deck.find("sample_rate=48000"), std::string::npos);
}

}  // namespace
}  // namespace ofdm::core
