// Preamble tests: the 802.11a training structure (periodicities,
// durations, power) and the generic phase-reference generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "core/preamble.hpp"
#include "core/profiles.hpp"

namespace ofdm::core {
namespace {

TEST(WlanPreamble, TotalLengthIs320Samples) {
  // 8 us STF + 8 us LTF at 20 MS/s.
  EXPECT_EQ(wlan_preamble(profile_wlan_80211a()).size(), 320u);
}

TEST(WlanPreamble, StfHas16SamplePeriodicity) {
  const cvec pre = wlan_preamble(profile_wlan_80211a());
  for (std::size_t i = 0; i + 16 < 160; ++i) {
    EXPECT_NEAR(std::abs(pre[i] - pre[i + 16]), 0.0, 1e-9)
        << "sample " << i;
  }
}

TEST(WlanPreamble, LtfRepeatsWithPeriod64) {
  const cvec pre = wlan_preamble(profile_wlan_80211a());
  // T1 starts at 192, T2 at 256.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(pre[192 + i] - pre[256 + i]), 0.0, 1e-9);
  }
  // GI2 (160..192) is the tail of the long symbol.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(pre[160 + i] - pre[224 + i]), 0.0, 1e-9);
  }
}

TEST(WlanPreamble, StfAndLtfHaveEqualAveragePower) {
  const cvec pre = wlan_preamble(profile_wlan_80211a());
  const double p_stf =
      mean_power(std::span<const cplx>(pre).subspan(0, 160));
  const double p_ltf =
      mean_power(std::span<const cplx>(pre).subspan(160, 160));
  EXPECT_NEAR(p_stf / p_ltf, 1.0, 0.05);
  EXPECT_NEAR(p_stf, 1.0, 0.15);  // matches the unit-power data section
}

TEST(WlanPreamble, Uses12And52Subcarriers) {
  std::size_t stf_used = 0;
  for (const cplx& v : wlan_stf_bins()) stf_used += std::abs(v) > 0.0;
  EXPECT_EQ(stf_used, 12u);
  std::size_t ltf_used = 0;
  for (const cplx& v : wlan_ltf_bins()) ltf_used += std::abs(v) > 0.0;
  EXPECT_EQ(ltf_used, 52u);
}

TEST(WlanPreamble, LtfValuesAreUnitBpsk) {
  for (const cplx& v : wlan_ltf_bins()) {
    if (std::abs(v) > 0.0) {
      EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
      EXPECT_EQ(v.imag(), 0.0);
    }
  }
}

TEST(WlanPreamble, RejectsNonWlanGeometry) {
  OfdmParams p = profile_wlan_80211a();
  p.fft_size = 128;
  EXPECT_THROW(wlan_preamble(p), Error);
}

TEST(PhaseReference, DeterministicPerSeed) {
  OfdmParams p = profile_dab();
  const cvec a = phase_reference_values(p, 100);
  const cvec b = phase_reference_values(p, 100);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  p.frame.phase_ref_seed ^= 0xFF;
  const cvec c = phase_reference_values(p, 100);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < c.size(); ++i) diff += a[i] != c[i];
  EXPECT_GT(diff, 20u);
}

TEST(PhaseReference, ValuesAreUnitQpsk) {
  const cvec v = phase_reference_values(profile_dab(), 64);
  for (const cplx& x : v) {
    EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(x.real()), 1.0 / std::sqrt(2.0), 1e-12);
  }
}

}  // namespace
}  // namespace ofdm::core
