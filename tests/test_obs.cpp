// Observability-layer tests: stream hash properties, probe counters on
// deterministic chains, tracer span capture + Chrome JSON export, and
// the report's wall-time attribution.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/profiles.hpp"
#include "obs/probe.hpp"
#include "obs/report.hpp"
#include "obs/stream_hash.hpp"
#include "obs/trace.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm {
namespace {

TEST(StreamHash, IsDeterministicAndOrderSensitive) {
  const cvec a = {{1.0, 2.0}, {3.0, -4.0}, {0.0, 0.5}};
  const cvec b = {{3.0, -4.0}, {1.0, 2.0}, {0.0, 0.5}};  // permuted
  EXPECT_EQ(obs::hash_samples(a), obs::hash_samples(a));
  EXPECT_NE(obs::hash_samples(a), obs::hash_samples(b));
}

TEST(StreamHash, ChunkingDoesNotChangeTheDigest) {
  cvec data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.1 * static_cast<double>(i)),
               std::cos(0.2 * static_cast<double>(i))};
  }
  obs::StreamHash whole;
  whole.update(data);
  obs::StreamHash chunked;
  const std::span<const cplx> s(data);
  chunked.update(s.subspan(0, 17));
  chunked.update(s.subspan(17, 600));
  chunked.update(s.subspan(617));
  EXPECT_EQ(whole.digest(), chunked.digest());
  EXPECT_EQ(whole.count(), 2 * data.size());
}

TEST(StreamHash, DistinguishesSignZeroAndLength) {
  obs::StreamHash pos, neg, empty, one_zero;
  pos.update(0.0);
  neg.update(-0.0);
  one_zero.update(cplx{0.0, 0.0});
  EXPECT_NE(pos.digest(), neg.digest());
  EXPECT_NE(empty.digest(), pos.digest());
  EXPECT_NE(one_zero.digest(), pos.digest());
  pos.reset();
  EXPECT_EQ(pos.digest(), empty.digest());
}

TEST(Probe, CountersTrackADeterministicChain) {
  rf::ToneSource source(1e6, 20e6, 0.7);
  rf::Chain chain;
  chain.add<rf::Gain>(6.0);
  chain.add<rf::Gain>(-6.0);  // duplicate name -> #2 suffix
  chain.add<rf::SoftClipPa>(0.5);

  obs::ProbeSet probes;
  chain.attach_probes(probes);
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_EQ(probes.at(0).name(), "gain");
  EXPECT_EQ(probes.at(1).name(), "gain#2");
  EXPECT_EQ(probes.at(2).name(), "pa-clip");

  const rf::RunStats stats = rf::run(source, chain, 3 * 4096, 4096);
  EXPECT_EQ(stats.samples_in, 3u * 4096u);
  for (std::size_t b = 0; b < probes.size(); ++b) {
    EXPECT_EQ(probes.at(b).invocations(), 3u) << b;
    EXPECT_EQ(probes.at(b).samples_in(), 3u * 4096u) << b;
    EXPECT_EQ(probes.at(b).samples_out(), 3u * 4096u) << b;
  }
  // Tone amplitude 0.7 through +6 dB ~= 1.4: the first gain clips (with
  // the default threshold of 1.0), the second one restores ~0.7.
  EXPECT_GT(probes.at(0).clip_events(), 0u);
  EXPECT_NEAR(probes.at(0).peak_magnitude(), 1.4, 0.01);
  EXPECT_EQ(probes.at(1).clip_events(), 0u);
  // The soft clipper pins |s| at 0.5.
  EXPECT_LE(probes.at(2).peak_magnitude(), 0.5 + 1e-9);

  chain.detach_probes();
  rf::run(source, chain, 4096);  // no further counting
  EXPECT_EQ(probes.at(0).invocations(), 3u);
}

TEST(Probe, SourceProbeCountsPulledSamples) {
  rf::ToneSource source(1e6, 20e6, 0.5);
  obs::ProbeSet probes;
  source.set_probe(&probes.add(source.name()));
  rf::Chain chain;
  chain.add<rf::Gain>(0.0);
  rf::run(source, chain, 2 * 1024, 1024);
  ASSERT_NE(probes.find("tone"), nullptr);
  EXPECT_EQ(probes.find("tone")->samples_out(), 2048u);
  EXPECT_EQ(probes.find("tone")->samples_in(), 0u);
  source.set_probe(nullptr);
}

TEST(Probe, NetlistAttachCoversSourcesAndBlocks) {
  rf::Netlist net;
  const auto a = net.add_source<rf::ToneSource>(1e6, 20e6, 0.5);
  const auto b = net.add_source<rf::ToneSource>(2e6, 20e6, 0.25);
  const auto sum = net.add_block<rf::Gain>(0.0);
  const auto meter = net.add_block<rf::PowerMeter>();
  net.connect(a, sum);
  net.connect(b, sum);
  net.connect(sum, meter);

  obs::ProbeSet probes;
  net.attach_probes(probes);
  ASSERT_EQ(probes.size(), 4u);
  net.run(4 * 1024, 1024);
  // Summing fan-in: the gain node sees one merged stream.
  EXPECT_EQ(probes.at(2).samples_in(), 4u * 1024u);
  EXPECT_EQ(probes.at(2).samples_out(), 4u * 1024u);
  EXPECT_EQ(probes.at(3).samples_in(), probes.at(2).samples_out());
  net.detach_probes();
}

TEST(Tracer, CapturesSpansAndExportsChromeJson) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(1 << 12);

  rf::ToneSource source(1e6, 20e6, 0.5);
  rf::Chain chain;
  chain.add<rf::Gain>(-3.0);
  chain.add<rf::AwgnChannel>(1e-4);
  rf::run(source, chain, 4 * 1024, 1024);
  tracer.disable();

  const auto events = tracer.snapshot();
  // 4 chunks x (1 source + 2 blocks) spans.
  ASSERT_GE(events.size(), 12u);
  std::size_t tone = 0, gain = 0, awgn = 0;
  for (const auto& e : events) {
    ASSERT_NE(e.name, nullptr);
    const std::string name(e.name);
    tone += name == "tone";
    gain += name == "gain";
    awgn += name == "awgn";
  }
  EXPECT_EQ(tone, 4u);
  EXPECT_EQ(gain, 4u);
  EXPECT_EQ(awgn, 4u);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gain\""), std::string::npos);
  tracer.clear();
}

TEST(Tracer, RingOverwritesOldestSpans) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(8);
  for (int i = 0; i < 20; ++i) tracer.record("span", 100 + i, 1);
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  // Oldest surviving span is number 12 (0-based), in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, 112 + i);
  }
  tracer.clear();
}

TEST(Tracer, TransmitterAndPipelineEmitSpans) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(1 << 12);
  core::OfdmParams params = core::profile_for(core::Standard::kDab);
  params.threads = 2;
  core::Transmitter tx(params);
  Rng rng(3);
  tx.modulate(rng.bits(1000));
  tracer.disable();
  std::size_t modulate = 0, worker = 0;
  for (const auto& e : tracer.snapshot()) {
    const std::string name(e.name ? e.name : "");
    modulate += name == "Transmitter::modulate";
    worker += name == "SymbolPipeline::work";
  }
  EXPECT_EQ(modulate, 1u);
  EXPECT_GE(worker, 1u);  // calling thread always participates
  tracer.clear();
}

TEST(Report, AttributesWallTimeToNamedBlocks) {
  rf::Submodel source(core::profile_for(core::Standard::kWlan80211a), 16,
                      11);
  rf::Chain chain;
  chain.add<rf::Gain>(-3.0);
  chain.add<rf::IqImbalance>(0.4, 2.0);
  chain.add<rf::RappPa>(2.0, 1.0);
  chain.add<rf::MultipathChannel>(rf::exponential_pdp_taps(2.0, 8, 5));
  chain.add<rf::AwgnChannel>(1e-4);

  obs::ProbeSet probes;
  chain.attach_probes(probes);
  source.set_probe(&probes.add(source.name()));
  const rf::RunStats stats = rf::run(source, chain, 64 * 1024, 4096);

  const obs::Report report =
      obs::Report::from(probes, stats.elapsed_seconds);
  ASSERT_EQ(report.rows.size(), 6u);
  // The run loop is a thin shell around observed calls: nearly all wall
  // time lands on named blocks (probe scan time is attributed as
  // observer cost, so only the driver loop itself is unaccounted).
  EXPECT_GE(report.attributed_fraction(), 0.95)
      << report.table();
  EXPECT_LE(report.attributed_fraction(), 1.05);

  const std::string table = report.table();
  EXPECT_NE(table.find("pa-rapp"), std::string::npos);
  EXPECT_NE(table.find("attributed"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"attributed_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"multipath"), std::string::npos);
  source.set_probe(nullptr);
}

TEST(Report, HashColumnsCarryGoldenDigests) {
  rf::ToneSource source(1e6, 20e6, 0.5);
  rf::Chain chain;
  chain.add<rf::Gain>(0.0);
  obs::ProbeSet probes({.hash_output = true});
  chain.attach_probes(probes);
  const rf::RunStats stats = rf::run(source, chain, 2048, 1024);
  const obs::Report report =
      obs::Report::from(probes, stats.elapsed_seconds);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_NE(report.rows[0].output_hash, 0u);
  EXPECT_EQ(report.rows[0].output_hash, probes.at(0).output_hash());
}

}  // namespace
}  // namespace ofdm
