// Modulator tests: frequency-domain assembly, the cyclic-prefix property,
// Hermitian (real-output) configurations, unit-power scaling and
// raised-cosine windowing with overlap-add.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/modulator.hpp"
#include "dsp/window.hpp"
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {
namespace {

OfdmParams small_params() {
  OfdmParams p;
  p.fft_size = 32;
  p.cp_len = 8;
  p.sample_rate = 1e6;
  p.tone_map = null_tone_map(32);
  fill_data_range(p.tone_map, -8, 8);
  return p;
}

cvec random_tones(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec v(n);
  for (cplx& x : v) {
    x = {rng.bit() ? 1.0 : -1.0, rng.bit() ? 1.0 : -1.0};
    x /= std::sqrt(2.0);
  }
  return v;
}

TEST(Modulator, AssemblePlacesTonesAtLayoutBins) {
  const OfdmParams p = small_params();
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  const cvec data = random_tones(layout.data_bins.size(), 1);
  const cvec freq = mod.assemble(data, {});
  for (std::size_t i = 0; i < layout.data_bins.size(); ++i) {
    EXPECT_EQ(freq[layout.data_bins[i]], data[i]);
  }
  // Null bins stay zero.
  EXPECT_EQ(std::abs(freq[0]), 0.0);          // DC
  EXPECT_EQ(std::abs(freq[16]), 0.0);         // far guard
}

TEST(Modulator, CyclicPrefixIsACopyOfTheTail) {
  const OfdmParams p = small_params();
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  cvec out;
  mod.emit(mod.assemble(random_tones(layout.data_bins.size(), 2), {}),
           out);
  ASSERT_EQ(out.size(), p.symbol_len());
  for (std::size_t i = 0; i < p.cp_len; ++i) {
    EXPECT_NEAR(std::abs(out[i] - out[i + p.fft_size]), 0.0, 1e-12);
  }
}

TEST(Modulator, UnitAveragePowerAcrossConfigurations) {
  Rng rng(3);
  for (Standard s : {Standard::kWlan80211a, Standard::kDab,
                     Standard::kDvbT, Standard::kDrm}) {
    OfdmParams p = profile_for(s);
    const ToneLayout layout = make_tone_layout(p);
    Modulator mod(p, layout);
    cvec out;
    for (int sym = 0; sym < 4; ++sym) {
      mod.emit(mod.assemble(random_tones(layout.data_bins.size(),
                                         10 + sym),
                            cvec(layout.pilot_bins.size(), cplx{1, 0})),
               out);
    }
    // CP repeats body samples, so average power stays ~1 regardless.
    EXPECT_NEAR(mean_power(out), 1.0, 0.15) << standard_name(s);
  }
}

TEST(Modulator, HermitianOutputIsReal) {
  OfdmParams p = small_params();
  p.hermitian = true;
  p.tone_map = null_tone_map(32);
  for (long k = 1; k <= 10; ++k) set_tone(p.tone_map, k, ToneType::kData);
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  cvec out;
  mod.emit(mod.assemble(random_tones(10, 4), {}), out);
  for (const cplx& v : out) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
  // And it is not the zero signal.
  EXPECT_GT(mean_power(out), 0.5);
}

TEST(Modulator, WindowRampOverlapKeepsFftWindowClean) {
  // The FFT window (after the CP) of every symbol must be identical with
  // and without windowing — the ramp only touches CP and suffix samples.
  OfdmParams p = small_params();
  const ToneLayout layout = make_tone_layout(p);
  const cvec tones_a = random_tones(layout.data_bins.size(), 5);
  const cvec tones_b = random_tones(layout.data_bins.size(), 6);

  cvec plain;
  {
    Modulator mod(p, layout);
    mod.emit(mod.assemble(tones_a, {}), plain);
    mod.emit(mod.assemble(tones_b, {}), plain);
    mod.flush(plain);
  }
  p.window_ramp = 4;
  cvec windowed;
  {
    Modulator mod(p, layout);
    mod.emit(mod.assemble(tones_a, {}), windowed);
    mod.emit(mod.assemble(tones_b, {}), windowed);
    mod.flush(windowed);
  }
  ASSERT_GE(windowed.size(), 2 * p.symbol_len());
  for (std::size_t sym = 0; sym < 2; ++sym) {
    const std::size_t start = sym * p.symbol_len() + p.cp_len;
    for (std::size_t i = 0; i < p.fft_size; ++i) {
      EXPECT_NEAR(std::abs(windowed[start + i] - plain[start + i]), 0.0,
                  1e-12)
          << "symbol " << sym << " sample " << i;
    }
  }
}

TEST(Modulator, WindowedSymbolEdgesAreTapered) {
  OfdmParams p = small_params();
  p.window_ramp = 4;
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  cvec out;
  mod.emit(mod.assemble(random_tones(layout.data_bins.size(), 7), {}),
           out);
  // First sample of the burst carries the smallest ramp weight.
  const rvec ramp = dsp::raised_cosine_ramp(4);
  EXPECT_LT(std::abs(out[0]),
            std::abs(out[p.fft_size]) + 1e-9);  // tapered vs full body
  EXPECT_LT(ramp[0], 0.2);
}

TEST(Modulator, EmitSilenceAppliesPendingTail) {
  OfdmParams p = small_params();
  p.window_ramp = 4;
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  cvec out;
  mod.emit(mod.assemble(random_tones(layout.data_bins.size(), 8), {}),
           out);
  const std::size_t sym_end = out.size();
  mod.emit_silence(16, out);
  ASSERT_EQ(out.size(), sym_end + 16);
  // The first ramp samples of the silence carry the windowed tail.
  double tail_power = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    tail_power += std::norm(out[sym_end + i]);
  }
  EXPECT_GT(tail_power, 0.0);
  // Beyond the ramp it is exactly silent.
  for (std::size_t i = 4; i < 16; ++i) {
    EXPECT_EQ(std::abs(out[sym_end + i]), 0.0);
  }
}

TEST(Modulator, RejectsWrongValueCounts) {
  const OfdmParams p = small_params();
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  EXPECT_THROW(mod.assemble(cvec(3), {}), DimensionError);
}

}  // namespace
}  // namespace ofdm::core
