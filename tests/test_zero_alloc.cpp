// Steady-state allocation audit for the streaming RF datapath.
//
// The simulation loop (rf::run and Netlist::run) is supposed to be
// allocation-free once every reusable buffer has reached its final
// capacity: process-into APIs, ping-pong chain buffers, per-plan FFT
// scratch. This test replaces global operator new with a counting hook,
// warms the chain up, then asserts that further chunks perform zero
// heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "rf/chain.hpp"
#include "rf/guard.hpp"
#include "rf/channel.hpp"
#include "rf/fading.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/papr_reduction.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofdm::rf {
namespace {

/// Allocations performed by `fn` (counting scoped to the call).
template <typename Fn>
std::size_t count_allocs(Fn&& fn) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(ZeroAlloc, SteadyStateChainRunDoesNotAllocate) {
  ToneSource source(1e6, 20e6, 0.7);
  Chain chain;
  chain.add<Gain>(-6.0);
  chain.add<IqImbalance>(0.4, 2.0);
  chain.add<DcOffset>(cplx{0.01, -0.02});
  chain.add<PhaseNoise>(50.0, 20e6);
  chain.add<RappPa>(2.0, 1.0);
  chain.add<MultipathChannel>(exponential_pdp_taps(2.0, 8, 99));
  chain.add<AwgnChannel>(1e-3);
  chain.add<PowerMeter>();

  // Warm-up: every reusable buffer reaches its final capacity.
  run(source, chain, 4 * 4096);

  cvec in;
  cvec out;
  source.pull(4096, in);  // warm the local buffers too
  chain.process(in, out);
  const std::size_t allocs = count_allocs([&] {
    for (int chunk = 0; chunk < 8; ++chunk) {
      source.pull(4096, in);
      chain.process(in, out);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.size(), 4096u);
}

TEST(ZeroAlloc, ProbedAndTracedSteadyStateDoesNotAllocate) {
  // The observability layer must be allocation-free in steady state even
  // when fully on: counters, output hashing, and span recording into the
  // preallocated trace ring. Only the warm-up may allocate (buffers plus
  // each block's cached trace label).
  ToneSource source(1e6, 20e6, 0.7);
  Chain chain;
  chain.add<Gain>(-3.0);
  chain.add<RappPa>(2.0, 1.0);
  chain.add<AwgnChannel>(1e-3);
  chain.add<PowerMeter>();

  obs::ProbeSet probes({.measure_signal = true, .hash_output = true});
  chain.attach_probes(probes);
  source.set_probe(&probes.add(source.name()));
  obs::Tracer::instance().enable(1u << 12);

  run(source, chain, 4 * 4096);  // warm-up

  cvec in;
  cvec out;
  source.pull_observed(4096, in);
  chain.process(in, out);
  const std::size_t allocs = count_allocs([&] {
    for (int chunk = 0; chunk < 8; ++chunk) {
      source.pull_observed(4096, in);
      chain.process(in, out);
    }
  });
  obs::Tracer::instance().disable();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.size(), 4096u);
  // The probes really were live while we measured.
  EXPECT_GE(probes.at(0).invocations(), 9u);
  EXPECT_GT(obs::Tracer::instance().recorded(), 0u);
}

TEST(ZeroAlloc, GuardedSteadyStateDoesNotAllocate) {
  // Numerical-health guards ride the same observed call path as probes;
  // with a clean signal the per-chunk cost is one finiteness pass and no
  // heap traffic — even under the mutating Zero policy.
  ToneSource source(1e6, 20e6, 0.7);
  Chain chain;
  chain.add<Gain>(-3.0);
  chain.add<RappPa>(2.0, 1.0);
  chain.add<AwgnChannel>(1e-3);
  chain.add<PowerMeter>();

  GuardSet guards({.policy = GuardPolicy::kZero});
  chain.attach_guards(guards);
  source.set_guard(&guards.add(source.name()));

  run(source, chain, 4 * 4096);  // warm-up

  cvec in;
  cvec out;
  source.pull_observed(4096, in);
  chain.process(in, out);
  const std::size_t allocs = count_allocs([&] {
    for (int chunk = 0; chunk < 8; ++chunk) {
      source.pull_observed(4096, in);
      chain.process(in, out);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.size(), 4096u);
  // The guards really were live while we measured...
  EXPECT_GE(guards.at(0).samples_seen(), 9u * 4096u);
  // ...and a healthy graph needed no repairs.
  EXPECT_EQ(guards.total_faults(), 0u);
  EXPECT_EQ(guards.total_repairs(), 0u);
}

TEST(ZeroAlloc, RateChangersReuseTheirBuffers) {
  ToneSource source(1e6, 20e6, 0.5);
  Chain chain;
  chain.add<Dac>(10, 4);            // 4x interpolation
  chain.add<FrequencyShift>(2e6, 80e6);
  chain.add<DecimatorBlock>(4);     // back to the input rate

  run(source, chain, 4 * 2048, 2048);

  cvec in;
  cvec out;
  source.pull(2048, in);  // warm the local buffers too
  chain.process(in, out);
  const std::size_t allocs = count_allocs([&] {
    for (int chunk = 0; chunk < 6; ++chunk) {
      source.pull(2048, in);
      chain.process(in, out);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.size(), 2048u);
}

TEST(ZeroAlloc, NetlistSteadyStateDoesNotAllocate) {
  Netlist net;
  const auto src_a = net.add_source<ToneSource>(1e6, 20e6, 0.5);
  const auto src_b = net.add_source<ToneSource>(3e6, 20e6, 0.25);
  const auto sum = net.add_block<Gain>(0.0);
  const auto pa = net.add_block<SoftClipPa>(0.9);
  const auto meter = net.add_block<PowerMeter>();
  net.connect(src_a, sum);
  net.connect(src_b, sum);   // summing fan-in
  net.connect(sum, pa);
  net.connect(pa, meter);

  net.run(4 * 4096);  // warm-up (buffers live inside run(), so the
                      // second run starts cold again -- measure the
                      // tail of one longer run instead)

  // Netlist::run owns its buffers per call; steady state means the tail
  // of a long run allocates nothing beyond the first few chunks. Proxy:
  // a fresh run of N chunks and a fresh run of 2N chunks must allocate
  // the same amount.
  net.reset();
  const std::size_t short_run = count_allocs([&] { net.run(4 * 4096); });
  net.reset();
  const std::size_t long_run = count_allocs([&] { net.run(16 * 4096); });
  EXPECT_EQ(short_run, long_run);
}

TEST(ZeroAlloc, PipelineExecutorSteadyStateDoesNotAllocate) {
  // The pipeline-parallel executor front-loads all queue/slot-pool/
  // stage allocations before the workers start; in steady state chunks
  // circulate through recycled slots and pass-through forwarding is a
  // buffer swap. Proxy as for the netlist: a fresh parallel run of N
  // chunks and one of 4N chunks must allocate the same amount.
  ToneSource source(1e6, 20e6, 0.7);
  Chain chain;
  chain.add<Gain>(-6.0);
  chain.add<PhaseNoise>(50.0, 20e6);
  chain.add<RappPa>(2.0, 1.0);
  chain.add<PowerMeter>();

  const RunOptions opts{.threads = 3, .queue_depth = 4};
  run(source, chain, 4 * 4096, 4096, opts);  // warm-up
  const std::size_t short_run = count_allocs(
      [&] { run(source, chain, 4 * 4096, 4096, opts); });
  const std::size_t long_run = count_allocs(
      [&] { run(source, chain, 16 * 4096, 4096, opts); });
  EXPECT_EQ(short_run, long_run);
}

TEST(ZeroAlloc, EmptyChainPassesThroughWithOneAssign) {
  Chain chain;
  cvec in(1024, cplx{0.5, -0.5});
  cvec out;
  chain.process(in, out);  // warm-up: out reaches capacity
  const std::size_t allocs = count_allocs([&] {
    for (int i = 0; i < 4; ++i) chain.process(in, out);
  });
  EXPECT_EQ(allocs, 0u);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i]);
}

}  // namespace
}  // namespace ofdm::rf
