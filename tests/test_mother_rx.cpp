// RX Mother Model tests: one parameter-driven receiver family covering
// all ten standards. Coded and uncoded (pre-FEC) loopbacks per
// standard, the +fec reference-FEC overlay, timing acquisition, the
// soft-vs-hard decoding ordering on AWGN, per-standard receiver
// descriptors, and exact equivalence of the rx::Receiver compatibility
// wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rx/mother/descriptor.hpp"
#include "rx/mother/mother_rx.hpp"
#include "rx/receiver.hpp"

namespace ofdm {
namespace {

using core::OfdmParams;
using core::Standard;

std::string safe_name(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class MotherRxFamily : public ::testing::TestWithParam<Standard> {};

TEST_P(MotherRxFamily, CodedLoopbackIsLossless) {
  const OfdmParams params = core::profile_for(GetParam());
  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  ASSERT_EQ(rx.options().mode, rx::RxMode::kCoded);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  const std::size_t n_bits =
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096);
  const bitvec payload = rng.bits(n_bits);

  const auto burst = tx.modulate(payload);
  const auto result = rx.demodulate(burst.samples, payload.size());
  EXPECT_EQ(result.payload, payload)
      << "standard: " << core::standard_name(GetParam());
  EXPECT_EQ(result.rs_blocks_failed, 0u);
}

TEST_P(MotherRxFamily, UncodedTapReturnsExactCodedStream) {
  const OfdmParams params = core::profile_for(GetParam());
  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  rx.set_mode(rx::RxMode::kUncoded);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 202);
  const std::size_t n_bits =
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096);
  const bitvec payload = rng.bits(n_bits);

  const auto burst = tx.modulate(payload);
  const auto result = rx.demodulate(burst.samples, payload.size());

  // The uncoded tap stops before FEC: no decoded payload, and the raw
  // hard-demapped stream must reproduce the transmitter's coded stream
  // (symbol filler padding included) bit for bit on a clean channel.
  EXPECT_TRUE(result.payload.empty());
  const bitvec coded_ref = tx.encode_payload(payload);
  EXPECT_EQ(result.raw_bits, coded_ref)
      << "standard: " << core::standard_name(GetParam());
}

TEST_P(MotherRxFamily, DescriptorNamesEveryStage) {
  const OfdmParams params = core::profile_for(GetParam());
  const auto d = rx::describe_receiver(params);
  EXPECT_FALSE(d.sync.empty());
  EXPECT_FALSE(d.equalizer.empty());
  EXPECT_FALSE(d.demapper.empty());
  EXPECT_FALSE(d.inner_code.empty());
  EXPECT_FALSE(d.outer_code.empty());
  EXPECT_NE(d.chain.find("fft("), std::string::npos);
  EXPECT_NE(d.chain.find("demap["), std::string::npos);

  // The soft path exists exactly where a fixed constellation feeds an
  // inner convolutional code.
  const bool expect_soft =
      params.fec.conv_enabled &&
      params.mapping == core::MappingKind::kFixed;
  EXPECT_EQ(d.soft_capable, expect_soft)
      << "standard: " << core::standard_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStandards, MotherRxFamily,
    ::testing::ValuesIn(core::kStandardFamily),
    [](const ::testing::TestParamInfo<Standard>& info) {
      return safe_name(core::standard_name(info.param));
    });

// ---------------------------------------------------------------------
// +fec reference-FEC overlay: uncoded profiles gain the family's
// reference codes and still close the loop.

TEST(ReferenceFecOverlay, AdslGainsRsAndRoundTrips) {
  const OfdmParams params =
      core::with_reference_fec(core::profile_for(Standard::kAdsl));
  ASSERT_TRUE(params.fec.rs_enabled);
  EXPECT_EQ(params.fec.rs_n, 255u);
  EXPECT_EQ(params.fec.rs_k, 239u);
  EXPECT_FALSE(params.fec.conv_enabled);

  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  Rng rng(303);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096));
  const auto result = rx.demodulate(tx.modulate(payload).samples,
                                    payload.size());
  EXPECT_EQ(result.payload, payload);
  EXPECT_EQ(result.rs_blocks_failed, 0u);
}

TEST(ReferenceFecOverlay, DrmGainsConvolutionalAndRoundTrips) {
  const OfdmParams params = core::with_reference_fec(
      core::profile_drm(core::DrmMode::kB));
  ASSERT_TRUE(params.fec.conv_enabled);
  EXPECT_FALSE(params.fec.rs_enabled);

  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  Rng rng(304);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 4000));
  const auto result = rx.demodulate(tx.modulate(payload).samples,
                                    payload.size());
  EXPECT_EQ(result.payload, payload);
}

TEST(ReferenceFecOverlay, AlreadyCodedProfilesAreUnchanged) {
  const OfdmParams before = core::profile_for(Standard::kDvbT);
  const OfdmParams after = core::with_reference_fec(before);
  EXPECT_EQ(after.fec.rs_enabled, before.fec.rs_enabled);
  EXPECT_EQ(after.fec.conv_enabled, before.fec.conv_enabled);
  EXPECT_EQ(after.fec.rs_n, before.fec.rs_n);
  EXPECT_EQ(after.fec.rs_k, before.fec.rs_k);
}

// ---------------------------------------------------------------------
// Timing acquisition.

TEST(MotherRxSync, WlanStfPlateauRecoversBurstStart) {
  const OfdmParams params = core::profile_for(Standard::kWlan80211a);
  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  Rng rng(404);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  // Burst embedded after 137 samples of silence.
  const std::size_t lead = 137;
  cvec stream(lead, cplx{0.0, 0.0});
  stream.insert(stream.end(), burst.samples.begin(),
                burst.samples.end());

  const auto rep = rx.synchronize(stream, params.sample_rate);
  EXPECT_TRUE(rep.used_preamble);
  EXPECT_GE(rep.metric, 0.7);
  // Plateau-edge detection is exact to within a few samples on a clean
  // channel; the LTF-trained equalizer absorbs that residual, so the
  // recovered offset must decode losslessly.
  ASSERT_NEAR(static_cast<double>(rep.offset),
              static_cast<double>(lead), 8.0);
  const auto aligned =
      std::span<const cplx>(stream).subspan(rep.offset);
  rx.set_equalizer(rx.estimate_equalizer(aligned));
  const auto result = rx.demodulate(aligned, payload.size());
  EXPECT_EQ(result.payload, payload);
}

TEST(MotherRxSync, CpCorrelationLocksOnCleanBurst) {
  const OfdmParams params = core::profile_for(Standard::kWman80216a);
  core::Transmitter tx(params);
  rx::MotherReceiver rx(params);
  Rng rng(405);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096));
  const auto burst = tx.modulate(payload);

  const auto rep = rx.synchronize(burst.samples, params.sample_rate);
  EXPECT_FALSE(rep.used_preamble);
  EXPECT_GT(rep.metric, 0.5);
  // A clean, unshifted burst must lock on a symbol boundary at (or
  // within the windowing ramp of) the burst start.
  EXPECT_LE(rep.offset, params.cp_len);
}

// ---------------------------------------------------------------------
// Soft-decision ordering: over AWGN, max-log LLR + soft Viterbi must
// not decode worse than the hard path on an error-bearing run.

TEST(MotherRxSoft, SoftDecodingNoWorseThanHardOnAwgn) {
  const OfdmParams params =
      core::profile_wlan_80211a(core::WlanRate::k12);
  core::Transmitter tx(params);
  rx::MotherReceiver hard_rx(params);
  rx::MotherReceiver soft_rx(params);
  soft_rx.set_demap(mapping::DemapMode::kSoft);
  ASSERT_TRUE(soft_rx.soft_path_active());
  ASSERT_FALSE(hard_rx.soft_path_active());

  std::size_t hard_errors = 0;
  std::size_t soft_errors = 0;
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    Rng rng = Rng::substream(606, 0, trial);
    const bitvec payload = rng.bits(512);
    const auto burst = tx.modulate(payload);

    double sig_power = 0.0;
    for (const cplx& x : burst.samples) sig_power += std::norm(x);
    sig_power /= static_cast<double>(burst.samples.size());
    const double noise_power = rf::snr_to_noise_power(sig_power, 0.5);

    rf::Chain chain;
    chain.add<rf::AwgnChannel>(noise_power, rng.next_u64());
    cvec noisy;
    chain.process(burst.samples, noisy);

    soft_rx.set_noise_from_sample_variance(noise_power);
    const auto hard = hard_rx.demodulate(noisy, payload.size());
    const auto soft = soft_rx.demodulate(noisy, payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      hard_errors += payload[i] != hard.payload[i];
      soft_errors += payload[i] != soft.payload[i];
    }
  }
  // The run must actually exercise the decoders...
  EXPECT_GT(hard_errors, 0u);
  // ...and soft decisions must not lose to hard ones in aggregate.
  EXPECT_LE(soft_errors, hard_errors);
}

// ---------------------------------------------------------------------
// rx::Receiver stays a faithful wrapper of the mother model.

class WrapperEquivalence : public ::testing::TestWithParam<Standard> {};

TEST_P(WrapperEquivalence, WrapperMatchesMotherReceiver) {
  const OfdmParams params = core::profile_for(GetParam());
  core::Transmitter tx(params);
  rx::Receiver wrapper(params);
  rx::MotherReceiver mother(params);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 707);
  const bitvec payload = rng.bits(
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096));
  const auto burst = tx.modulate(payload);

  const auto a = wrapper.demodulate(burst.samples, payload.size());
  const auto b = mother.demodulate(burst.samples, payload.size());
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.symbols, b.symbols);
  EXPECT_EQ(a.rs_blocks_failed, b.rs_blocks_failed);
  EXPECT_EQ(wrapper.payload_offset(), mother.payload_offset());
}

INSTANTIATE_TEST_SUITE_P(
    SomeStandards, WrapperEquivalence,
    ::testing::Values(Standard::kWlan80211a, Standard::kDrm,
                      Standard::kAdsl, Standard::kDvbT,
                      Standard::kHomePlug),
    [](const ::testing::TestParamInfo<Standard>& info) {
      return safe_name(core::standard_name(info.param));
    });

// ---------------------------------------------------------------------
// Mode token plumbing.

TEST(RxModeNames, RoundTrip) {
  EXPECT_EQ(rx::rx_mode_name(rx::RxMode::kCoded), "coded");
  EXPECT_EQ(rx::rx_mode_name(rx::RxMode::kUncoded), "uncoded");
  EXPECT_EQ(rx::rx_mode_from_name("coded"), rx::RxMode::kCoded);
  EXPECT_EQ(rx::rx_mode_from_name("uncoded"), rx::RxMode::kUncoded);
  EXPECT_FALSE(rx::rx_mode_from_name("sideways").has_value());
  EXPECT_EQ(mapping::demap_mode_name(mapping::DemapMode::kHard), "hard");
  EXPECT_EQ(mapping::demap_mode_name(mapping::DemapMode::kSoft), "soft");
}

}  // namespace
}  // namespace ofdm
