// Interleaver tests: bijectivity, exact inverses, the 802.11a interleaver
// against the standard's defining property, and the Forney interleaver's
// delay structure.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "coding/interleaver.hpp"
#include "common/rng.hpp"

namespace ofdm::coding {
namespace {

TEST(PermutationInterleaver, RejectsNonPermutation) {
  EXPECT_THROW(PermutationInterleaver({0, 0, 1}), Error);
  EXPECT_THROW(PermutationInterleaver({0, 1, 5}), Error);
}

TEST(PermutationInterleaver, InterleaveDeinterleaveInverse) {
  Rng rng(71);
  const auto inter = make_random_interleaver(97, 0xABCD);
  const bitvec data = rng.bits(97);
  EXPECT_EQ(inter.deinterleave(std::span<const std::uint8_t>(
                inter.interleave(std::span<const std::uint8_t>(data)))),
            data);
}

TEST(BlockInterleaver, RowColumnSemantics) {
  // 2x3: write rows [0 1 2; 3 4 5], read columns -> 0 3 1 4 2 5.
  const auto inter = make_block_interleaver(2, 3);
  const std::vector<int> in = {0, 1, 2, 3, 4, 5};
  const std::vector<int> out = inter.interleave(std::span<const int>(in));
  EXPECT_EQ(out, (std::vector<int>{0, 3, 1, 4, 2, 5}));
}

TEST(BlockInterleaver, SeparatesAdjacentSymbols) {
  const auto inter = make_block_interleaver(8, 16);
  const auto& map = inter.mapping();
  // Adjacent input bits land at least `rows` apart in the output.
  for (std::size_t i = 0; i + 1 < map.size(); ++i) {
    if (i % 16 == 15) continue;  // row wrap
    const auto d = static_cast<long>(map[i + 1]) -
                   static_cast<long>(map[i]);
    EXPECT_EQ(d, 8);
  }
}

TEST(WlanInterleaver, IsBijective) {
  for (std::size_t n_bpsc : {1u, 2u, 4u, 6u}) {
    const std::size_t n_cbps = 48 * n_bpsc;
    const auto inter = make_wlan_interleaver(n_cbps, n_bpsc);
    std::vector<std::uint8_t> seen(n_cbps, 0);
    for (std::size_t m : inter.mapping()) {
      EXPECT_EQ(seen[m], 0);
      seen[m] = 1;
    }
  }
}

TEST(WlanInterleaver, AdjacentCodedBitsOnNonadjacentCarriers) {
  // The standard's stated goal: adjacent coded bits map onto
  // non-adjacent subcarriers (first permutation spreads by N_CBPS/16).
  const std::size_t n_bpsc = 4;
  const std::size_t n_cbps = 192;
  const auto inter = make_wlan_interleaver(n_cbps, n_bpsc);
  const auto& map = inter.mapping();
  for (std::size_t k = 0; k + 1 < n_cbps; ++k) {
    const long carrier_a = static_cast<long>(map[k] / n_bpsc);
    const long carrier_b = static_cast<long>(map[k + 1] / n_bpsc);
    EXPECT_NE(carrier_a, carrier_b) << "coded bits " << k << "," << k + 1;
  }
}

TEST(WlanInterleaver, MatchesStandardFormulaSpotChecks) {
  // Directly evaluate the two-permutation formula from 17.3.5.6 for
  // N_CBPS=48, N_BPSC=1 (BPSK): s=1 so j==i.
  const auto inter = make_wlan_interleaver(48, 1);
  const auto& map = inter.mapping();
  for (std::size_t k = 0; k < 48; ++k) {
    const std::size_t i = (48 / 16) * (k % 16) + k / 16;
    EXPECT_EQ(map[k], i);
  }
}

TEST(RandomInterleaver, SeedDeterminesPermutation) {
  const auto a = make_random_interleaver(64, 7);
  const auto b = make_random_interleaver(64, 7);
  const auto c = make_random_interleaver(64, 8);
  EXPECT_EQ(a.mapping(), b.mapping());
  EXPECT_NE(a.mapping(), c.mapping());
}

TEST(RandomInterleaver, ActuallyPermutes) {
  const auto inter = make_random_interleaver(256, 99);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    moved += inter.mapping()[i] != i;
  }
  EXPECT_GT(moved, 200u);
}

TEST(ConvolutionalInterleaver, RoundTripAfterEndToEndDelay) {
  const std::size_t branches = 12;
  const std::size_t depth = 17;  // the DVB outer interleaver geometry
  ConvolutionalInterleaver inter(branches, depth, false);
  ConvolutionalInterleaver deinter(branches, depth, true);

  Rng rng(72);
  const std::size_t delay = inter.end_to_end_delay();
  const bytevec data = rng.bytes(delay + 500);
  const bytevec restored = deinter.process(inter.process(data));
  ASSERT_EQ(restored.size(), data.size());
  // After the pipe fills, output reproduces input shifted by the delay.
  for (std::size_t i = delay; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i], data[i - delay]) << "position " << i;
  }
}

TEST(ConvolutionalInterleaver, SpreadsBursts) {
  const std::size_t branches = 12;
  const std::size_t depth = 17;
  ConvolutionalInterleaver inter(branches, depth, false);
  // A marker burst of 12 consecutive non-zero symbols...
  bytevec data(3000, 0);
  for (std::size_t i = 1200; i < 1212; ++i) data[i] = 0xFF;
  const bytevec out = inter.process(data);
  // ...must not appear as >1 consecutive non-zero output symbols.
  std::size_t max_run = 0;
  std::size_t run = 0;
  for (std::uint8_t v : out) {
    run = (v != 0) ? run + 1 : 0;
    max_run = std::max(max_run, run);
  }
  EXPECT_EQ(max_run, 1u);
}

TEST(ConvolutionalInterleaver, ChunkingInvariance) {
  ConvolutionalInterleaver a(8, 5, false);
  ConvolutionalInterleaver b(8, 5, false);
  Rng rng(73);
  const bytevec data = rng.bytes(400);
  const bytevec whole = a.process(data);
  bytevec pieced;
  for (std::size_t off = 0; off < data.size(); off += 23) {
    const std::size_t n = std::min<std::size_t>(23, data.size() - off);
    const bytevec part =
        b.process(std::span<const std::uint8_t>(data).subspan(off, n));
    pieced.insert(pieced.end(), part.begin(), part.end());
  }
  EXPECT_EQ(whole, pieced);
}

}  // namespace
}  // namespace ofdm::coding
