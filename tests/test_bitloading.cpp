// DMT bit-loading tests: allocation behaviour and per-tone map/demap
// round trips across all supported loads.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapping/bitloading.hpp"

namespace ofdm::mapping {
namespace {

TEST(BitAllocation, FollowsShannonGap) {
  // SNR 30 dB with a 9.8 dB gap: b = floor(log2(1 + 10^((30-9.8)/10)))
  //   = floor(log2(1 + 104.7)) = floor(6.72) = 6.
  const rvec snr = {30.0};
  const BitTable t = compute_bit_allocation(snr, 9.8);
  EXPECT_EQ(t[0], 6);
}

TEST(BitAllocation, MonotoneInSnr) {
  rvec snr(40);
  for (std::size_t i = 0; i < snr.size(); ++i) {
    snr[i] = static_cast<double>(i) * 1.5;  // 0 .. 58.5 dB
  }
  const BitTable t = compute_bit_allocation(snr, 6.0);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i], t[i - 1]);
  }
}

TEST(BitAllocation, RespectsCapsAndMinimum) {
  const rvec snr = {-10.0, 3.0, 8.0, 90.0};
  const BitTable t = compute_bit_allocation(snr, 0.0, 15, 2);
  EXPECT_EQ(t[0], 0);   // below minimum -> unused
  EXPECT_EQ(t[1], 0);   // would be 1 bit < min 2 -> unused
  EXPECT_GE(t[2], 2);
  EXPECT_EQ(t[3], 15);  // capped
}

TEST(BitAllocation, TotalBitsAccounting) {
  const BitTable t = {0, 2, 4, 15, 0, 7};
  EXPECT_EQ(table_bits(t), 28u);
}

TEST(DmtMapper, MapDemapRoundTripMixedTable) {
  BitTable table;
  for (std::uint8_t b = 0; b <= 15; ++b) table.push_back(b);
  DmtMapper mapper(table);
  EXPECT_EQ(mapper.bits_per_symbol(), 120u);

  Rng rng(101);
  const bitvec bits = rng.bits(mapper.bits_per_symbol());
  const cvec tones = mapper.map_symbol(bits);
  ASSERT_EQ(tones.size(), table.size());
  EXPECT_EQ(mapper.demap_symbol(tones), bits);
}

class PerToneLoad : public ::testing::TestWithParam<int> {};

TEST_P(PerToneLoad, SingleToneRoundTripAllowsNoise) {
  const auto load = static_cast<std::uint8_t>(GetParam());
  DmtMapper mapper(BitTable{load});
  Rng rng(102 + GetParam());
  // Decision distance shrinks with the constellation size; stay safely
  // inside half the minimum axis spacing.
  const double axis_levels =
      std::pow(2.0, std::ceil(static_cast<double>(load) / 2.0));
  const double margin = 0.4 / (axis_levels * 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    const bitvec bits = rng.bits(load);
    cvec tones = mapper.map_symbol(bits);
    tones[0] += cplx{rng.uniform(-margin, margin),
                     rng.uniform(-margin, margin)};
    EXPECT_EQ(mapper.demap_symbol(tones), bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads1To15, PerToneLoad,
                         ::testing::Range(1, 16));

TEST(DmtMapper, UnusedTonesStayZero) {
  DmtMapper mapper(BitTable{0, 4, 0, 2, 0});
  Rng rng(103);
  const cvec tones = mapper.map_symbol(rng.bits(6));
  EXPECT_EQ(std::abs(tones[0]), 0.0);
  EXPECT_EQ(std::abs(tones[2]), 0.0);
  EXPECT_EQ(std::abs(tones[4]), 0.0);
  EXPECT_GT(std::abs(tones[1]), 0.0);
}

TEST(DmtMapper, UnitAveragePowerPerLoadedTone) {
  // Average over many random symbols: each loaded tone ~ unit power.
  DmtMapper mapper(BitTable{8, 8, 8, 8});
  Rng rng(104);
  double p = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const cvec tones = mapper.map_symbol(rng.bits(32));
    for (const cplx& t : tones) p += std::norm(t);
  }
  EXPECT_NEAR(p / (4.0 * n), 1.0, 0.05);
}

TEST(DmtMapper, RejectsOversizedLoads) {
  EXPECT_THROW(DmtMapper(BitTable{16}), Error);
  DmtMapper ok(BitTable{4});
  EXPECT_THROW(ok.map_symbol(bitvec(3, 0)), DimensionError);
}

}  // namespace
}  // namespace ofdm::mapping
