// Guard-policy coverage across the whole standard family: a FlakyBlock
// poisons the stream mid-chain and every policy must contain the fault
// the way its contract says — Throw pins the faulting block and sample,
// Zero repairs and counts, Report observes without touching, Clamp
// limits, and the containment story is identical for sequential and
// threaded transmitters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "core/profiles.hpp"
#include "obs/stream_hash.hpp"
#include "rf/chain.hpp"
#include "rf/fault.hpp"
#include "rf/guard.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

constexpr std::size_t kChunk = 751;  // cuts through frames and gaps
constexpr std::size_t kChunks = 8;
constexpr std::size_t kEvery = 2;  // flaky block fires every 2nd chunk

/// Submodel -> gain -> flaky[gain] -> dc-offset. The flaky wrapper sits
/// mid-chain so a fault has both an upstream (must stay clean) and a
/// downstream (sees the fault or not, depending on policy).
struct FaultyGraph {
  Submodel source;
  Chain chain;
  FlakyBlock* flaky;

  FaultyGraph(core::Standard standard, FlakyBlock::Fault fault,
              std::size_t threads = 1)
      : source(
            [&] {
              core::OfdmParams p = core::profile_for(standard);
              p.threads = threads;
              return p;
            }(),
            23, 0x51ED) {
    chain.add<Gain>(-1.0);
    flaky = &dynamic_cast<FlakyBlock&>(chain.add_ptr(
        std::make_unique<FlakyBlock>(std::make_unique<Gain>(0.0), kEvery,
                                     fault)));
    chain.add<DcOffset>(cplx{0.01, 0.0});
  }

  std::uint64_t run_hashed() {
    obs::StreamHash hash;
    cvec in;
    cvec out;
    for (std::size_t c = 0; c < kChunks; ++c) {
      source.pull(kChunk, in);
      chain.process(in, out);
      hash.update(out);
    }
    return hash.digest();
  }
};

class GuardPolicies : public ::testing::TestWithParam<core::Standard> {};

TEST_P(GuardPolicies, ThrowNamesFaultingBlockAndSampleOffset) {
  FaultyGraph g(GetParam(), FlakyBlock::Fault::kNaN);
  GuardSet guards({.policy = GuardPolicy::kThrow});
  g.chain.attach_guards(guards);
  try {
    g.run_hashed();
    FAIL() << "a NaN was injected but no guard threw";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.block(), "flaky[gain]");
    EXPECT_EQ(e.graph_position(), 1u);  // attach order: gain, flaky, dc
    ASSERT_EQ(g.flaky->faults_injected(), 1u);
    EXPECT_EQ(e.sample_offset(), g.flaky->last_fault_offset());
    // The offset lands inside the chunk that fired, in absolute stream
    // coordinates.
    EXPECT_GE(e.sample_offset(), (kEvery - 1) * kChunk);
    EXPECT_LT(e.sample_offset(), kEvery * kChunk);
  }
}

TEST_P(GuardPolicies, ZeroPolicyRepairsCountsAndContains) {
  FaultyGraph g(GetParam(), FlakyBlock::Fault::kNaN);
  GuardSet guards({.policy = GuardPolicy::kZero});
  g.chain.attach_guards(guards);
  g.run_hashed();  // must complete: faults are repaired in place

  EXPECT_EQ(g.flaky->faults_injected(), kChunks / kEvery);
  const NumericGuard* at_fault = guards.find("flaky[gain]");
  ASSERT_NE(at_fault, nullptr);
  EXPECT_EQ(at_fault->nan_samples(), kChunks / kEvery);
  EXPECT_EQ(at_fault->repairs(), kChunks / kEvery);
  // Containment: the repair happened at the faulting block's boundary,
  // so its neighbours never saw a bad sample.
  EXPECT_EQ(guards.at(0).faults(), 0u);  // upstream gain
  EXPECT_EQ(guards.at(2).faults(), 0u);  // downstream dc-offset
  EXPECT_EQ(guards.total_faults(), at_fault->faults());
}

TEST_P(GuardPolicies, SequentialAndThreadedRunsRepairIdentically) {
  std::uint64_t digest[2] = {};
  std::uint64_t repairs[2] = {};
  const std::size_t threads[2] = {1, 4};
  for (int pass = 0; pass < 2; ++pass) {
    FaultyGraph g(GetParam(), FlakyBlock::Fault::kNaN, threads[pass]);
    GuardSet guards({.policy = GuardPolicy::kZero});
    g.chain.attach_guards(guards);
    digest[pass] = g.run_hashed();
    repairs[pass] = guards.total_repairs();
  }
  EXPECT_EQ(digest[0], digest[1])
      << core::standard_name(GetParam())
      << ": guarded stream depends on the transmitter thread count";
  EXPECT_EQ(repairs[0], repairs[1]);
  EXPECT_GT(repairs[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(Family, GuardPolicies,
                         ::testing::ValuesIn(core::kStandardFamily));

TEST(GuardPolicy, ReportCountsButDoesNotTouchTheStream) {
  FaultyGraph g(core::Standard::kWlan80211a, FlakyBlock::Fault::kInf);
  GuardSet guards({.policy = GuardPolicy::kReport});
  g.chain.attach_guards(guards);
  g.run_hashed();

  const NumericGuard* at_fault = guards.find("flaky[gain]");
  ASSERT_NE(at_fault, nullptr);
  EXPECT_EQ(at_fault->inf_samples(), kChunks / kEvery);
  EXPECT_EQ(at_fault->repairs(), 0u);
  // Report does not contain: the downstream block ingests the Inf and
  // its own guard sees the poisoned result (Inf * finite or Inf + c).
  EXPECT_GT(guards.at(2).faults(), 0u);
}

TEST(GuardPolicy, ClampLimitsInfAndSaturatedSamples) {
  FaultyGraph g(core::Standard::kAdsl, FlakyBlock::Fault::kInf);
  GuardSet guards({.policy = GuardPolicy::kClamp,
                   .saturation_threshold = 2.0});
  g.chain.attach_guards(guards);
  cvec in;
  cvec out;
  for (std::size_t c = 0; c < kChunks; ++c) {
    g.source.pull(kChunk, in);
    g.chain.process(in, out);
    for (const cplx& v : out) {
      ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
    }
  }
  const NumericGuard* at_fault = guards.find("flaky[gain]");
  ASSERT_NE(at_fault, nullptr);
  EXPECT_EQ(at_fault->inf_samples(), kChunks / kEvery);
  EXPECT_GE(at_fault->repairs(), at_fault->inf_samples());
  EXPECT_EQ(guards.at(2).nonfinite_samples(), 0u);
}

TEST(GuardPolicy, ClampRequiresASaturationThreshold) {
  EXPECT_THROW(GuardSet({.policy = GuardPolicy::kClamp}), Error);
}

TEST(GuardPolicy, GuardSetSuffixesDuplicateNames) {
  GuardSet guards;
  guards.add("gain");
  guards.add("gain");
  guards.add("awgn");
  // Same convention as obs::ProbeSet: the first keeps the bare name,
  // the k-th duplicate is suffixed #k.
  EXPECT_NE(guards.find("gain"), nullptr);
  EXPECT_NE(guards.find("gain#2"), nullptr);
  EXPECT_NE(guards.find("awgn"), nullptr);
  EXPECT_EQ(guards.find("gain#3"), nullptr);
  EXPECT_EQ(guards.at(1).position(), 1u);
}

TEST(GuardPolicy, DetachedGuardLeavesStreamAlone) {
  FaultyGraph g(core::Standard::kWlan80211a, FlakyBlock::Fault::kNaN);
  {
    GuardSet guards({.policy = GuardPolicy::kThrow});
    g.chain.attach_guards(guards);
    g.chain.detach_guards();
  }  // the set may die once detached
  EXPECT_NO_THROW(g.run_hashed());
  EXPECT_GT(g.flaky->faults_injected(), 0u);
}

}  // namespace
}  // namespace ofdm::rf
