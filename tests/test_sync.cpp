// Synchronization tests: CP-correlation timing, STF plateau metric and
// CFO estimation on real Mother Model bursts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rx/sync.hpp"

namespace ofdm {
namespace {

cvec wlan_burst(std::uint64_t seed) {
  core::Transmitter tx(core::profile_wlan_80211a());
  Rng rng(seed);
  return tx.modulate(rng.bits(tx.recommended_payload_bits())).samples;
}

TEST(Sync, CpTimingFindsSymbolStart) {
  const cvec burst = wlan_burst(1);
  // Search around the first payload symbol (preamble = 320 samples).
  const std::size_t true_start = 320;
  const auto view =
      std::span<const cplx>(burst).subspan(true_start - 40, 200);
  const auto est = rx::cp_timing(view, 64, 16, 20e6);
  // CP correlation peaks when the window aligns with the symbol start.
  EXPECT_NEAR(static_cast<double>(est.offset), 40.0, 2.0);
  EXPECT_GT(est.metric, 0.9);
}

TEST(Sync, CpTimingCfoIsNearZeroWithoutOffset) {
  const cvec burst = wlan_burst(2);
  const auto view = std::span<const cplx>(burst).subspan(320, 160);
  const auto est = rx::cp_timing(view, 64, 16, 20e6);
  EXPECT_LT(std::abs(est.cfo_hz), 2e3);  // << subcarrier spacing
}

TEST(Sync, CfoEstimateRecoversInjectedOffset) {
  cvec burst = wlan_burst(3);
  const double cfo = 40e3;  // well below the +-156 kHz ambiguity limit
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const double a = kTwoPi * cfo * static_cast<double>(i) / 20e6;
    burst[i] *= cplx{std::cos(a), std::sin(a)};
  }
  // Autocorrelation over the LTF (period 64, two repeats at 192..320).
  // The estimate must recover magnitude AND sign.
  const double est = rx::estimate_cfo(burst, 192, 64, 64, 20e6);
  EXPECT_NEAR(est, cfo, 1e3);
}

TEST(Sync, StfMetricPlateausDuringShortTraining) {
  const cvec burst = wlan_burst(4);
  const rvec m = rx::stf_metric(burst);
  // During the STF (samples 0..160) the 16-periodic structure pushes the
  // metric to ~1.
  double stf_avg = 0.0;
  for (std::size_t i = 0; i < 100; ++i) stf_avg += m[i];
  stf_avg /= 100.0;
  EXPECT_GT(stf_avg, 0.9);
  // Deep in the payload it must be distinctly lower on average.
  double payload_avg = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 400; i < 700 && i < m.size(); ++i) {
    payload_avg += m[i];
    ++count;
  }
  payload_avg /= static_cast<double>(count);
  EXPECT_LT(payload_avg, 0.6);
}

TEST(Sync, RejectsShortInput) {
  cvec tiny(10);
  EXPECT_THROW(rx::cp_timing(tiny, 64, 16, 1.0), DimensionError);
  EXPECT_THROW(rx::estimate_cfo(tiny, 0, 16, 16, 1.0), DimensionError);
}

}  // namespace
}  // namespace ofdm
