// RT-level substrate tests: kernel semantics, component behaviour against
// the behavioural coding substrate, and the headline cross-check — the
// cycle-level 802.11a datapath is bit-exact against the behavioural
// Mother Model (the multi-domain Mother Model equivalence).
#include <gtest/gtest.h>

#include "coding/convolutional.hpp"
#include "coding/lfsr.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rtl/components.hpp"
#include "rtl/kernel.hpp"
#include "rtl/wlan_tx.hpp"

namespace ofdm {
namespace {

// --- kernel semantics --------------------------------------------------

TEST(RtlKernel, SignalWriteCommitsAtDeltaBoundary) {
  rtl::Simulator sim;
  rtl::Signal<int> s(sim, 0);
  int seen_inside = -1;
  rtl::Process* p = sim.make_process("writer", [&]() {
    s.write(42);
    seen_inside = s.read();  // must still see the old value
  });
  sim.schedule_at(1, p);
  sim.run();
  EXPECT_EQ(seen_inside, 0);
  EXPECT_EQ(s.read(), 42);
}

TEST(RtlKernel, SensitiveProcessWakesOnChangeOnly) {
  rtl::Simulator sim;
  rtl::Signal<int> s(sim, 0);
  int wakes = 0;
  rtl::Process* listener =
      sim.make_process("listener", [&]() { ++wakes; });
  s.sensitize(listener);

  rtl::Process* w1 = sim.make_process("w1", [&]() { s.write(7); });
  rtl::Process* w2 = sim.make_process("w2", [&]() { s.write(7); });  // same
  rtl::Process* w3 = sim.make_process("w3", [&]() { s.write(9); });
  sim.schedule_at(1, w1);
  sim.schedule_at(2, w2);
  sim.schedule_at(3, w3);
  sim.run();
  EXPECT_EQ(wakes, 2);  // w2 writes an identical value -> no wake
}

TEST(RtlKernel, ClockTogglesAtHalfPeriod) {
  rtl::Simulator sim;
  rtl::Clock clk(sim, 5);
  int edges = 0;
  rtl::Process* counter = sim.make_process("count", [&]() { ++edges; });
  clk.signal().sensitize(counter);
  sim.run(100);
  // 100 ticks / 5 per half period = 20 toggles.
  EXPECT_EQ(edges, 20);
}

TEST(RtlKernel, StatsCountActivity) {
  rtl::Simulator sim;
  rtl::Clock clk(sim, 1);
  sim.run(10);
  const auto& st = sim.stats();
  EXPECT_EQ(st.timed_events, 10u);
  EXPECT_GE(st.process_activations, 10u);
  EXPECT_EQ(st.signal_updates, 10u);
}

// --- components vs behavioural substrate --------------------------------

TEST(RtlComponents, ScramblerMatchesBehaviouralScrambler) {
  rtl::Simulator sim;
  rtl::Clock clk(sim, 5);
  rtl::Signal<bool> enable(sim, false);  // asserted with the first bit
  rtl::Signal<bool> bit_in(sim, false);
  rtl::RtlScrambler scr(sim, clk.signal(), enable, bit_in, 0x5D);

  Rng rng(11);
  const bitvec input = rng.bits(200);
  bitvec output;

  std::size_t idx = 0;
  rtl::Process* driver = sim.make_process("driver", [&]() {
    if (!clk.signal().read()) {  // drive on falling edge
      if (idx > 0) output.push_back(scr.bit_out().read() ? 1 : 0);
      if (idx < input.size()) {
        enable.write(true);
        bit_in.write(input[idx] != 0);
      } else {
        enable.write(false);
      }
      ++idx;
    }
  });
  clk.signal().sensitize(driver);
  sim.run(10 * 2 * (input.size() + 2));
  output.resize(input.size());

  coding::Scrambler ref = coding::make_wlan_scrambler(0x5D);
  EXPECT_EQ(output, ref.process(input));
}

TEST(RtlComponents, ConvEncoderMatchesBehaviouralEncoder) {
  rtl::Simulator sim;
  rtl::Clock clk(sim, 5);
  rtl::Signal<bool> enable(sim, true);
  rtl::Signal<bool> bit_in(sim, false);
  rtl::RtlConvEncoder enc(sim, clk.signal(), enable, bit_in);

  Rng rng(12);
  const bitvec input = rng.bits(100);
  bitvec output;

  std::size_t idx = 0;
  rtl::Process* driver = sim.make_process("driver", [&]() {
    if (!clk.signal().read()) {
      if (idx > 0) {
        output.push_back(enc.out_a().read() ? 1 : 0);
        output.push_back(enc.out_b().read() ? 1 : 0);
      }
      if (idx < input.size()) bit_in.write(input[idx] != 0);
      ++idx;
    }
  });
  clk.signal().sensitize(driver);
  sim.run(10 * 2 * (input.size() + 2));
  output.resize(2 * input.size());

  const coding::ConvEncoder ref(coding::k7_industry_code());
  EXPECT_EQ(output, ref.encode(input));
}

// --- the multi-domain equivalence check ---------------------------------

core::OfdmParams rtl_reference_params(mapping::Scheme scheme,
                                      std::size_t n_symbols) {
  core::OfdmParams p = core::profile_wlan_80211a(core::WlanRate::k6);
  p.scheme = scheme;
  p.fec.puncture = coding::puncture_none();
  p.frame.preamble = core::PreambleKind::kNone;
  p.frame.symbols_per_frame = n_symbols;
  p.window_ramp = 0;
  return p;
}

class RtlEquivalence : public ::testing::TestWithParam<mapping::Scheme> {};

TEST_P(RtlEquivalence, RtlDatapathIsBitExactAgainstMotherModel) {
  const mapping::Scheme scheme = GetParam();
  const std::size_t n_symbols = 4;

  core::Transmitter tx(rtl_reference_params(scheme, n_symbols));
  Rng rng(99);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());

  const auto behavioural = tx.modulate(payload);
  const auto rtl_run = rtl::run_wlan_tx(scheme, n_symbols, payload);

  ASSERT_EQ(rtl_run.samples.size(), behavioural.samples.size());
  EXPECT_LT(max_abs_error(rtl_run.samples, behavioural.samples), 1e-15)
      << "RT-level and behavioural Mother Model instances diverge";
}

INSTANTIATE_TEST_SUITE_P(Rate12Modes, RtlEquivalence,
                         ::testing::Values(mapping::Scheme::kBpsk,
                                           mapping::Scheme::kQpsk,
                                           mapping::Scheme::kQam16));

TEST(RtlWlanTx, KernelActivityScalesWithSymbols) {
  Rng rng(5);
  rtl::Simulator::Stats s2;
  rtl::Simulator::Stats s8;
  {
    rtl::WlanTxRun r = rtl::run_wlan_tx(
        mapping::Scheme::kBpsk, 2, rng.bits(2 * 24 - 6));
    s2 = r.stats;
  }
  {
    rtl::WlanTxRun r = rtl::run_wlan_tx(
        mapping::Scheme::kBpsk, 8, rng.bits(8 * 24 - 6));
    s8 = r.stats;
  }
  EXPECT_GT(s8.process_activations, 3 * s2.process_activations);
  EXPECT_GT(s8.delta_cycles, 3 * s2.delta_cycles);
}

}  // namespace
}  // namespace ofdm
