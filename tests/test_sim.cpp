// Campaign-engine tests: deck parsing (errors name their field), grid
// expansion, the CI early-stop rule, checkpoint/resume byte-identity of
// the exported curves, and thread-count invariance.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "sim/aggregator.hpp"
#include "sim/campaign.hpp"
#include "sim/checkpoint.hpp"
#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace {

using namespace ofdm;

// Small, fast deck used by the engine-level tests: 3 SNR points of
// 802.11a BPSK with a 256-bit payload finish in milliseconds.
const char* kSmokeDeck =
    "name=test_sim\n"
    "standard=wlan_80211a@6\n"
    "snr_db=4,8,12\n"
    "payload_bits=256\n"
    "trials.min=8\n"
    "trials.max=24\n"
    "trials.batch=8\n"
    "stop.rel_ci=0.25\n"
    "seed=7\n";

std::string error_message(const std::string& deck_text) {
  try {
    sim::parse_deck(deck_text);
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

// ---------------------------------------------------------------------------
// Deck parsing

TEST(SimDeck, ParsesFullDeck) {
  const auto d = sim::parse_deck(
      "name=full\n"
      "standard=wlan_80211a@24,adsl\n"
      "snr_db=0:2:6,20\n"
      "channel=awgn,multipath\n"
      "multipath.rms_delay=2.5\n"
      "multipath.taps=6\n"
      "trials.min=4\ntrials.max=64\ntrials.batch=4\n"
      "stop.min_errors=10\nstop.rel_ci=0.5\nstop.confidence=0.9\n"
      "rx.equalize=0\npayload_bits=128\nseed=42\n");
  EXPECT_EQ(d.name, "full");
  ASSERT_EQ(d.standards.size(), 2u);
  EXPECT_EQ(d.standards[0].token, "wlan_80211a@24");
  EXPECT_EQ(d.standards[1].token, "adsl");
  // 0:2:6 expands inclusively, then the trailing single value.
  ASSERT_EQ(d.snr_db.size(), 5u);
  EXPECT_DOUBLE_EQ(d.snr_db[3], 6.0);
  EXPECT_DOUBLE_EQ(d.snr_db[4], 20.0);
  ASSERT_EQ(d.channels.size(), 2u);
  EXPECT_EQ(d.channels[1].kind, sim::ChannelPreset::Kind::kMultipath);
  EXPECT_DOUBLE_EQ(d.channels[1].rms_delay_samples, 2.5);
  EXPECT_EQ(d.channels[1].n_taps, 6u);
  EXPECT_FALSE(d.rx_equalize);
  EXPECT_EQ(d.min_errors, 10u);
  EXPECT_DOUBLE_EQ(d.stop_rel_ci, 0.5);
  EXPECT_EQ(d.seed, 42u);
}

TEST(SimDeck, CommentsAndBlankLinesIgnored) {
  const auto d = sim::parse_deck(
      "# a comment\n"
      "\n"
      "standard=drm@B   # trailing comment\n"
      "snr_db=10\n");
  ASSERT_EQ(d.standards.size(), 1u);
  EXPECT_EQ(d.standards[0].token, "drm@B");
}

TEST(SimDeck, ErrorsNameTheField) {
  // Every malformed value must surface the offending field, params_io
  // style, so a user can fix the deck without reading the parser.
  EXPECT_NE(error_message("snr_db=10\n").find("standard"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\n").find("snr_db"),
            std::string::npos);
  EXPECT_NE(
      error_message("standard=wlan_80211a\nsnr_db=abc\n").find("snr_db"),
      std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "trials.min=x\n")
                .find("trials.min"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "stop.confidence=1.5\n")
                .find("stop.confidence"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "channel=rayleigh\n")
                .find("channel"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a@7\nsnr_db=10\n")
                .find("standard"),
            std::string::npos);
  // Unknown keys are rejected (typo protection), naming the key.
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "trails.min=8\n")
                .find("trails.min"),
            std::string::npos);
}

TEST(SimDeck, ParsesStandardChannelPresets) {
  const auto d = sim::parse_deck(
      "standard=wlan_80211a@6\n"
      "snr_db=10\n"
      "channel=awgn,ccir_poor,itu_veh_a,sui_3,rician_k10,cfo_drift\n"
      "channel.seed=909\n"
      "channel.doppler_scale=2.5\n");
  ASSERT_EQ(d.channels.size(), 6u);
  EXPECT_EQ(d.channels[0].kind, sim::ChannelPreset::Kind::kAwgn);
  for (std::size_t i = 1; i < d.channels.size(); ++i) {
    EXPECT_EQ(d.channels[i].kind, sim::ChannelPreset::Kind::kStandard);
    EXPECT_EQ(d.channels[i].channel_seed, 909u);
    EXPECT_DOUBLE_EQ(d.channels[i].doppler_scale, 2.5);
  }
  EXPECT_EQ(d.channels[1].token, "ccir_poor");
  EXPECT_EQ(d.channels[5].token, "cfo_drift");
}

TEST(SimDeck, ChannelFuzzRejectsMalformedValues) {
  // Unknown presets name the field and list the registry.
  const std::string unknown = error_message(
      "standard=wlan_80211a\nsnr_db=10\nchannel=itu_ped_c\n");
  EXPECT_NE(unknown.find("channel"), std::string::npos);
  EXPECT_NE(unknown.find("itu_ped_c"), std::string::npos);
  EXPECT_NE(unknown.find("ccir_good"), std::string::npos);
  // Near-miss spellings of real presets still fail loudly.
  for (const char* bad : {"ccir-poor", "CCIR_POOR", "sui_7", "sui3",
                          "rician_k2", "watterson", "itu_veh_c"}) {
    EXPECT_NE(error_message(std::string("standard=wlan_80211a\n"
                                        "snr_db=10\nchannel=") +
                            bad + "\n")
                  .find("channel"),
              std::string::npos)
        << bad;
  }
  // Malformed channel parameters name their field.
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "channel=ccir_poor\nchannel.seed=-3\n")
                .find("channel.seed"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "channel=ccir_poor\nchannel.doppler_scale=0\n")
                .find("channel.doppler_scale"),
            std::string::npos);
  EXPECT_NE(error_message("standard=wlan_80211a\nsnr_db=10\n"
                          "channel=ccir_poor\nchannel.doppler_scale=x\n")
                .find("channel.doppler_scale"),
            std::string::npos);
}

TEST(SimDeck, DigestSeesChannelPresetAndParams) {
  const auto base = sim::parse_deck(
      "standard=adsl\nsnr_db=10\nchannel=ccir_poor\n");
  const auto other_preset = sim::parse_deck(
      "standard=adsl\nsnr_db=10\nchannel=ccir_good\n");
  const auto other_seed = sim::parse_deck(
      "standard=adsl\nsnr_db=10\nchannel=ccir_poor\nchannel.seed=6\n");
  const auto other_scale = sim::parse_deck(
      "standard=adsl\nsnr_db=10\nchannel=ccir_poor\n"
      "channel.doppler_scale=3\n");
  EXPECT_NE(sim::deck_digest(base), sim::deck_digest(other_preset));
  EXPECT_NE(sim::deck_digest(base), sim::deck_digest(other_seed));
  EXPECT_NE(sim::deck_digest(base), sim::deck_digest(other_scale));
}

TEST(SimDeck, GridExpansionCountAndOrder) {
  const auto d = sim::parse_deck(
      "standard=wlan_80211a@6,adsl\n"
      "snr_db=0:2:14\n"  // 8 points
      "channel=awgn,multipath,twisted_pair\n");
  const auto grid = sim::expand_grid(d);
  ASSERT_EQ(grid.size(), 2u * 3u * 8u);
  // Standard-major, then channel, then SNR; index equals position.
  EXPECT_EQ(grid[0].standard_index, 0u);
  EXPECT_EQ(grid[0].channel_index, 0u);
  EXPECT_DOUBLE_EQ(grid[0].snr_db, 0.0);
  EXPECT_EQ(grid[7].channel_index, 0u);
  EXPECT_DOUBLE_EQ(grid[7].snr_db, 14.0);
  EXPECT_EQ(grid[8].channel_index, 1u);
  EXPECT_EQ(grid[24].standard_index, 1u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
  }
}

TEST(SimDeck, RxModeListParsesAndExpands) {
  const auto d = sim::parse_deck(
      "standard=wlan_80211a@6\n"
      "snr_db=0,4\n"
      "channel=awgn,multipath\n"
      "rx=coded,uncoded\n");
  ASSERT_EQ(d.rx_modes.size(), 2u);
  EXPECT_EQ(d.rx_modes[0].token, "coded");
  EXPECT_EQ(d.rx_modes[0].mode, rx::RxMode::kCoded);
  EXPECT_EQ(d.rx_modes[1].token, "uncoded");
  EXPECT_EQ(d.rx_modes[1].mode, rx::RxMode::kUncoded);

  // Grid order: standard-major, then channel, then rx, then SNR.
  const auto grid = sim::expand_grid(d);
  ASSERT_EQ(grid.size(), 1u * 2u * 2u * 2u);
  EXPECT_EQ(grid[0].rx_index, 0u);
  EXPECT_DOUBLE_EQ(grid[0].snr_db, 0.0);
  EXPECT_EQ(grid[1].rx_index, 0u);
  EXPECT_DOUBLE_EQ(grid[1].snr_db, 4.0);
  EXPECT_EQ(grid[2].rx_index, 1u);
  EXPECT_EQ(grid[3].rx_index, 1u);
  EXPECT_EQ(grid[4].channel_index, 1u);
  EXPECT_EQ(grid[4].rx_index, 0u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
  }
}

TEST(SimDeck, RxModeErrorsAndDefaults) {
  // A deck without the key keeps the single historical (coded) entry.
  const auto d = sim::parse_deck("standard=adsl\nsnr_db=10\n");
  ASSERT_EQ(d.rx_modes.size(), 1u);
  EXPECT_EQ(d.rx_modes[0].mode, rx::RxMode::kCoded);

  EXPECT_NE(error_message("standard=adsl\nsnr_db=10\nrx=sideways\n")
                .find("rx"),
            std::string::npos);
  EXPECT_NE(error_message("standard=adsl\nsnr_db=10\nrx=coded,coded\n")
                .find("rx"),
            std::string::npos);
}

TEST(SimDeck, DigestStableForDefaultRxAndSensitiveOtherwise) {
  // Legacy decks must keep their historical digests: an explicit
  // rx=coded is the default and must not move the digest (checkpoints
  // recorded before the rx dimension existed still resume).
  const auto legacy = sim::parse_deck("standard=adsl\nsnr_db=10\n");
  const auto explicit_coded =
      sim::parse_deck("standard=adsl\nsnr_db=10\nrx=coded\n");
  const auto both =
      sim::parse_deck("standard=adsl\nsnr_db=10\nrx=coded,uncoded\n");
  const auto uncoded =
      sim::parse_deck("standard=adsl\nsnr_db=10\nrx=uncoded\n");
  EXPECT_EQ(sim::deck_digest(legacy), sim::deck_digest(explicit_coded));
  EXPECT_NE(sim::deck_digest(legacy), sim::deck_digest(both));
  EXPECT_NE(sim::deck_digest(legacy), sim::deck_digest(uncoded));
  EXPECT_NE(sim::deck_digest(both), sim::deck_digest(uncoded));
}

TEST(SimDeck, FecSuffixOverlaysReferenceCode) {
  // "+fec" overlays the family's reference FEC on an uncoded profile.
  const auto adsl = sim::parse_standard_token("adsl+fec");
  EXPECT_EQ(adsl.token, "adsl+fec");
  EXPECT_TRUE(adsl.params.fec.rs_enabled);
  EXPECT_EQ(adsl.params.fec.rs_n, 255u);
  EXPECT_EQ(adsl.params.fec.rs_k, 239u);

  const auto drm = sim::parse_standard_token("drm@B+fec");
  EXPECT_TRUE(drm.params.fec.conv_enabled);

  // The ADSL2+ spelling keeps its own trailing '+'.
  const auto adsl2 = sim::parse_standard_token("adsl2++fec");
  EXPECT_EQ(adsl2.token, "adsl2++fec");
  EXPECT_TRUE(adsl2.params.fec.rs_enabled);

  // Already-coded standards are unchanged by the overlay.
  const auto dvbt = sim::parse_standard_token("dvbt+fec");
  const auto plain = sim::parse_standard_token("dvbt");
  EXPECT_EQ(dvbt.params.fec.rs_n, plain.params.fec.rs_n);
  EXPECT_EQ(dvbt.params.fec.conv_enabled,
            plain.params.fec.conv_enabled);
}

TEST(SimDeck, DigestIgnoresCommentsButNotParameters) {
  const auto a = sim::parse_deck("standard=adsl\nsnr_db=10\n");
  const auto b = sim::parse_deck("# different text\nstandard=adsl\n"
                                 "snr_db=10\n");
  const auto c = sim::parse_deck("standard=adsl\nsnr_db=10\nseed=2\n");
  EXPECT_EQ(sim::deck_digest(a), sim::deck_digest(b));
  EXPECT_NE(sim::deck_digest(a), sim::deck_digest(c));
}

// ---------------------------------------------------------------------------
// Early stopping

sim::ScenarioDeck stop_deck() {
  auto d = sim::parse_deck(
      "standard=wlan_80211a@6\nsnr_db=0\n"
      "trials.min=8\ntrials.max=1000\ntrials.batch=8\n"
      "stop.min_errors=20\nstop.rel_ci=0.25\n");
  return d;
}

TEST(SimEstimator, RoundScheduleIsMinThenBatches) {
  const auto d = stop_deck();
  sim::PointState s;
  EXPECT_EQ(sim::next_round_target(d, s), 8u);
  s.trials = 8;
  EXPECT_EQ(sim::next_round_target(d, s), 16u);
  s.trials = 996;
  EXPECT_EQ(sim::next_round_target(d, s), 1000u);  // clamped to cap
}

TEST(SimEstimator, CiStopTriggersAtConfiguredWidth) {
  const auto d = stop_deck();

  // Plenty of errors over plenty of bits: BER 0.05 with n = 100k gives
  // a Wilson 95% CI far narrower than 25% of the estimate -> CI stop.
  sim::PointState tight;
  tight.trials = 16;
  tight.bits = 100000;
  tight.errors = 5000;
  sim::evaluate_stop(d, tight);
  EXPECT_TRUE(tight.done);
  EXPECT_EQ(tight.reason, sim::StopReason::kCiWidth);

  // Same BER but only 400 bits: the interval is wider than 25% of the
  // estimate, so the point keeps sampling.
  sim::PointState wide;
  wide.trials = 16;
  wide.bits = 400;
  wide.errors = 20;
  sim::evaluate_stop(d, wide);
  EXPECT_FALSE(wide.done);

  // Below min_errors never CI-stops, however tight the interval looks.
  sim::PointState few;
  few.trials = 16;
  few.bits = 1000000;
  few.errors = 19;
  sim::evaluate_stop(d, few);
  EXPECT_FALSE(few.done);

  // A zero-error point runs to the trial cap.
  sim::PointState clean;
  clean.trials = 1000;
  clean.bits = 1000000;
  clean.errors = 0;
  sim::evaluate_stop(d, clean);
  EXPECT_TRUE(clean.done);
  EXPECT_EQ(clean.reason, sim::StopReason::kMaxTrials);
}

TEST(SimEstimator, EngineStopsEarlyWhenCiAllowsIt) {
  // At 0 dB uncoded BPSK the BER is high, so errors accumulate fast; a
  // loose 90% relative CI should stop well before the 200-trial cap.
  auto d = sim::parse_deck(
      "standard=wlan_80211a@6\nsnr_db=0\npayload_bits=256\n"
      "trials.min=8\ntrials.max=200\ntrials.batch=8\n"
      "stop.min_errors=10\nstop.rel_ci=0.9\nseed=3\n");
  const auto result = sim::Campaign(d).run();
  ASSERT_EQ(result.points.size(), 1u);
  const auto& p = result.points[0].state;
  EXPECT_TRUE(p.done);
  EXPECT_EQ(p.reason, sim::StopReason::kCiWidth);
  EXPECT_LT(p.trials, 200u);
  EXPECT_GE(p.trials, 8u);
}

// ---------------------------------------------------------------------------
// Determinism: thread invariance and checkpoint/resume

TEST(SimCampaign, CurvesAreThreadCountInvariant) {
  sim::Campaign c1{sim::parse_deck(kSmokeDeck)};
  sim::Campaign c4{sim::parse_deck(kSmokeDeck)};
  sim::RunOptions o1, o4;
  o1.threads = 1;
  o4.threads = 4;
  const auto r1 = c1.run(o1);
  const auto r4 = c4.run(o4);
  EXPECT_EQ(sim::curves_json(c1.deck(), r1),
            sim::curves_json(c4.deck(), r4));
  EXPECT_EQ(sim::curves_csv(c1.deck(), r1),
            sim::curves_csv(c4.deck(), r4));
}

TEST(SimCampaign, ResumeAfterCheckpointIsByteIdentical) {
  const std::string ckpt =
      ::testing::TempDir() + "/test_sim_ckpt.bin";
  std::remove(ckpt.c_str());

  // Reference: straight through, single thread.
  sim::Campaign ref{sim::parse_deck(kSmokeDeck)};
  const auto ref_result = ref.run();
  const std::string ref_json = sim::curves_json(ref.deck(), ref_result);

  // Interrupted: halt after two rounds (mid-campaign), then resume at a
  // different thread count from the checkpoint.
  sim::Campaign halted{sim::parse_deck(kSmokeDeck)};
  sim::RunOptions halt_opts;
  halt_opts.threads = 2;
  halt_opts.checkpoint_path = ckpt;
  halt_opts.halt_after_rounds = 2;
  const auto halted_result = halted.run(halt_opts);
  EXPECT_TRUE(halted_result.halted);

  sim::Campaign resumed{sim::parse_deck(kSmokeDeck)};
  sim::RunOptions resume_opts;
  resume_opts.threads = 3;
  resume_opts.checkpoint_path = ckpt;
  resume_opts.resume = true;
  const auto resumed_result = resumed.run(resume_opts);
  EXPECT_FALSE(resumed_result.halted);

  EXPECT_EQ(sim::curves_json(resumed.deck(), resumed_result), ref_json);
  std::remove(ckpt.c_str());
}

TEST(SimCampaign, StandardChannelCurvesAreThreadAndResumeInvariant) {
  // The per-trial channel realizations flow from the trial substream,
  // so curves over the channel-library presets must stay byte-identical
  // across thread counts and checkpoint cuts, like every other preset.
  const char* deck_text =
      "name=test_sim_channels\n"
      "standard=wlan_80211a@6\n"
      "snr_db=8,14\n"
      "channel=sui_3,rician_k5,cfo_drift\n"
      "payload_bits=256\n"
      "trials.min=4\ntrials.max=8\ntrials.batch=4\n"
      "seed=13\n";

  sim::Campaign c1{sim::parse_deck(deck_text)};
  sim::Campaign c4{sim::parse_deck(deck_text)};
  sim::RunOptions o1, o4;
  o1.threads = 1;
  o4.threads = 4;
  const auto r1 = c1.run(o1);
  const auto r4 = c4.run(o4);
  const std::string ref_json = sim::curves_json(c1.deck(), r1);
  EXPECT_EQ(ref_json, sim::curves_json(c4.deck(), r4));

  const std::string ckpt =
      ::testing::TempDir() + "/test_sim_channels_ckpt.bin";
  std::remove(ckpt.c_str());
  sim::Campaign halted{sim::parse_deck(deck_text)};
  sim::RunOptions halt_opts;
  halt_opts.threads = 2;
  halt_opts.checkpoint_path = ckpt;
  halt_opts.halt_after_rounds = 1;
  EXPECT_TRUE(halted.run(halt_opts).halted);

  sim::Campaign resumed{sim::parse_deck(deck_text)};
  sim::RunOptions resume_opts;
  resume_opts.threads = 3;
  resume_opts.checkpoint_path = ckpt;
  resume_opts.resume = true;
  const auto resumed_result = resumed.run(resume_opts);
  EXPECT_EQ(sim::curves_json(resumed.deck(), resumed_result), ref_json);
  std::remove(ckpt.c_str());
}

TEST(SimCheckpoint, RejectsDigestMismatch) {
  const auto a = sim::parse_deck(kSmokeDeck);
  auto b = a;
  b.seed = 99;  // campaign-relevant change -> different digest

  std::vector<sim::PointState> points(sim::expand_grid(a).size());
  points[0].trials = 8;
  points[0].bits = 2048;
  points[0].errors = 31;
  const auto bytes = sim::save_checkpoint(a, points);

  std::vector<sim::PointState> restored(points.size());
  ASSERT_NO_THROW(sim::load_checkpoint(bytes, a, restored));
  ASSERT_EQ(restored.size(), points.size());
  EXPECT_EQ(restored[0].trials, 8u);
  EXPECT_EQ(restored[0].errors, 31u);

  EXPECT_THROW(sim::load_checkpoint(bytes, b, restored), StateError);
}

TEST(SimAggregator, CsvHasHeaderAndOneRowPerPoint) {
  sim::Campaign c{sim::parse_deck(kSmokeDeck)};
  const auto result = c.run();
  const std::string csv = sim::curves_csv(c.deck(), result);
  EXPECT_EQ(csv.rfind("standard,channel,rx,snr_db,", 0), 0u);
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 1u + result.points.size());
}

}  // namespace
