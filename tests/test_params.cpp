// OfdmParams validation and tone-layout tests: the reconfiguration
// surface must reject inconsistent configurations with clear errors and
// derive tone bookkeeping correctly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/params.hpp"
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {
namespace {

OfdmParams minimal_params() {
  OfdmParams p;
  p.fft_size = 16;
  p.cp_len = 4;
  p.sample_rate = 1e6;
  p.tone_map = null_tone_map(16);
  fill_data_range(p.tone_map, -4, 4);
  return p;
}

TEST(ToneMap, LogicalIndexing) {
  auto map = null_tone_map(16);
  set_tone(map, -1, ToneType::kPilot);
  set_tone(map, 3, ToneType::kData);
  EXPECT_EQ(map[15], ToneType::kPilot);  // -1 wraps to N-1
  EXPECT_EQ(map[3], ToneType::kData);
  EXPECT_EQ(tone_at(map, -1), ToneType::kPilot);
  EXPECT_THROW(set_tone(map, 8, ToneType::kData), Error);   // out of range
  EXPECT_THROW(set_tone(map, -9, ToneType::kData), Error);
}

TEST(ToneLayout, LogicalFrequencyOrdering) {
  OfdmParams p = minimal_params();
  set_tone(p.tone_map, -2, ToneType::kPilot);
  const ToneLayout layout = make_tone_layout(p);
  // Data tones: -4,-3,-1,1,2,3,4 (DC skipped, -2 became a pilot).
  ASSERT_EQ(layout.data_bins.size(), 7u);
  EXPECT_EQ(layout.data_bins[0], 12u);  // logical -4 -> bin 12
  EXPECT_EQ(layout.data_bins[1], 13u);
  EXPECT_EQ(layout.data_bins[2], 15u);  // -1
  EXPECT_EQ(layout.data_bins[3], 1u);   // +1
  EXPECT_EQ(layout.pilot_bins, (std::vector<std::size_t>{14}));
}

TEST(ToneLayout, HermitianUsesOnlyPositiveHalf) {
  OfdmParams p = minimal_params();
  p.hermitian = true;
  p.tone_map = null_tone_map(16);
  for (long k = 1; k <= 5; ++k) set_tone(p.tone_map, k, ToneType::kData);
  const ToneLayout layout = make_tone_layout(p);
  EXPECT_EQ(layout.data_bins, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(Validate, AcceptsMinimalConfig) {
  EXPECT_NO_THROW(validate(minimal_params()));
}

TEST(Validate, RejectsToneMapSizeMismatch) {
  OfdmParams p = minimal_params();
  p.tone_map.resize(8);
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsNoDataTones) {
  OfdmParams p = minimal_params();
  p.tone_map = null_tone_map(16);
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsPilotValueCountMismatch) {
  OfdmParams p = minimal_params();
  set_tone(p.tone_map, 2, ToneType::kPilot);
  // pilots.base_values left empty -> mismatch.
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsWindowLongerThanCp) {
  OfdmParams p = minimal_params();
  p.window_ramp = 5;  // cp is 4
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsHermitianWithNegativeTones) {
  OfdmParams p = minimal_params();  // has tones at -4..-1
  p.hermitian = true;
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsDifferentialWithoutPhaseReference) {
  OfdmParams p = minimal_params();
  p.mapping = MappingKind::kDifferential;
  EXPECT_THROW(validate(p), ConfigError);
  p.frame.preamble = PreambleKind::kPhaseReference;
  EXPECT_NO_THROW(validate(p));
}

TEST(Validate, RejectsBitTableSizeMismatch) {
  OfdmParams p = minimal_params();
  p.mapping = MappingKind::kBitTable;
  p.bit_table = {4, 4};  // 8 data tones exist
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(Validate, RejectsBadBlockInterleaverRows) {
  OfdmParams p = minimal_params();
  p.scheme = mapping::Scheme::kQpsk;
  p.interleaver.kind = InterleaverKind::kBlock;
  p.interleaver.rows = 5;  // cbps = 16, not divisible by 5
  EXPECT_THROW(validate(p), ConfigError);
}

TEST(CodedBits, PerSymbolArithmetic) {
  OfdmParams p = minimal_params();  // 8 data tones
  p.scheme = mapping::Scheme::kQam16;
  EXPECT_EQ(coded_bits_per_symbol(p), 32u);
  p.mapping = MappingKind::kDifferential;
  p.diff_kind = mapping::DiffKind::kDqpsk;
  EXPECT_EQ(coded_bits_per_symbol(p), 16u);
  p.mapping = MappingKind::kBitTable;
  p.bit_table.assign(8, 7);
  EXPECT_EQ(coded_bits_per_symbol(p), 56u);
}

TEST(ParameterDistance, IdenticalConfigsAreZeroApart) {
  const OfdmParams a = profile_wlan_80211a();
  EXPECT_EQ(parameter_distance(a, a), 0u);
}

TEST(ParameterDistance, SiblingStandardsAreClose) {
  // 802.11g is 802.11a at another carrier: distance must be tiny
  // compared to the full parameter surface.
  const OfdmParams a = profile_wlan_80211a();
  const OfdmParams g = profile_wlan_80211g();
  const std::size_t d = parameter_distance(a, g);
  EXPECT_GE(d, 1u);
  EXPECT_LE(d, 3u);
  EXPECT_LT(d, parameter_count(a) / 5);
}

TEST(ParameterDistance, UnrelatedStandardsAreFar) {
  const OfdmParams a = profile_wlan_80211a();
  const OfdmParams d = profile_dab();
  EXPECT_GT(parameter_distance(a, d), parameter_distance(
      a, profile_wlan_80211g()));
}

TEST(Summarize, MentionsKeyNumbers) {
  const std::string s = summarize(profile_wlan_80211a());
  EXPECT_NE(s.find("N=64"), std::string::npos);
  EXPECT_NE(s.find("802.11a"), std::string::npos);
}

}  // namespace
}  // namespace ofdm::core
