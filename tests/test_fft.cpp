// FFT unit & property tests: both execution paths (radix-2 and Bluestein)
// against the O(N^2) reference DFT, round-trip identity, Parseval, and
// the shift utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace ofdm::dsp {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec x(n);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  return x;
}

// Sizes cover every symbol length used by the family, including the DRM
// non-power-of-two lengths that force the Bluestein path.
class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, ForwardMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n);
  const Fft fft(n);
  const cvec fast = fft.forward(x);
  const cvec ref = reference_dft(x, /*inverse=*/false);
  EXPECT_LT(max_abs_error(fast, ref), 1e-7 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizes, InverseMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 1);
  const Fft fft(n);
  const cvec fast = fft.inverse(x);
  const cvec ref = reference_dft(x, /*inverse=*/true);
  EXPECT_LT(max_abs_error(fast, ref), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 2);
  const Fft fft(n);
  const cvec back = fft.inverse(fft.forward(x));
  EXPECT_LT(max_abs_error(back, x), 1e-9);
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 3);
  const Fft fft(n);
  const cvec spec = fft.forward(x);
  double et = 0.0;
  double ef = 0.0;
  for (const cplx& v : x) et += std::norm(v);
  for (const cplx& v : spec) ef += std::norm(v);
  EXPECT_NEAR(ef / static_cast<double>(n), et, 1e-6 * et + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    FamilySymbolSizes, FftSizes,
    ::testing::Values<std::size_t>(1, 2, 4, 16, 64, 256, 512, 1024, 2048,
                                   8192,        // power-of-two members
                                   448, 704, 1152,  // DRM modes D, C, A
                                   3, 12, 100, 360));

TEST(Fft, PathSelection) {
  EXPECT_TRUE(Fft(64).is_radix2());
  EXPECT_TRUE(Fft(8192).is_radix2());
  EXPECT_FALSE(Fft(1152).is_radix2());
  EXPECT_FALSE(Fft(448).is_radix2());
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = kTwoPi * static_cast<double>(k * i) /
                     static_cast<double>(n);
    x[i] = {std::cos(a), std::sin(a)};
  }
  const cvec spec = Fft(n).forward(x);
  for (std::size_t bin = 0; bin < n; ++bin) {
    if (bin == k) {
      EXPECT_NEAR(std::abs(spec[bin]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_LT(std::abs(spec[bin]), 1e-9);
    }
  }
}

TEST(Fft, InPlaceEqualsOutOfPlace) {
  for (std::size_t n : {std::size_t{64}, std::size_t{448}}) {
    const cvec x = random_signal(n, 9);
    const Fft fft(n);
    const cvec out = fft.forward(x);
    cvec inplace = x;
    fft.forward(inplace, inplace);
    EXPECT_LT(max_abs_error(out, inplace), 1e-12);
  }
}

TEST(Fft, RejectsSizeMismatch) {
  Fft fft(64);
  cvec x(32);
  cvec y(64);
  EXPECT_THROW(fft.forward(x, y), DimensionError);
}

TEST(FftShift, EvenLength) {
  const cvec x = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const cvec s = fftshift(x);
  EXPECT_EQ(s[0].real(), 2.0);
  EXPECT_EQ(s[1].real(), 3.0);
  EXPECT_EQ(s[2].real(), 0.0);
  EXPECT_EQ(s[3].real(), 1.0);
}

TEST(FftShift, ShiftInverse) {
  const cvec x = random_signal(17, 10);  // odd length is the tricky case
  EXPECT_LT(max_abs_error(ifftshift(fftshift(x)), x), 0.0 + 1e-15);
  const cvec y = random_signal(16, 11);
  EXPECT_LT(max_abs_error(ifftshift(fftshift(y)), y), 1e-15);
}

}  // namespace
}  // namespace ofdm::dsp
