// FFT unit & property tests: every execution path (split-radix,
// legacy radix-2, Bluestein) against the O(N^2) reference DFT,
// round-trip identity, Parseval, the real-input / Hermitian-input
// half-size plan kinds, the process-wide plan cache (including a
// multi-threaded hammer), and the shift utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace ofdm::dsp {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec x(n);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  return x;
}

// Sizes cover every symbol length used by the family, including the DRM
// non-power-of-two lengths that force the Bluestein path.
class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, ForwardMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n);
  const Fft fft(n);
  const cvec fast = fft.forward(x);
  const cvec ref = reference_dft(x, /*inverse=*/false);
  EXPECT_LT(max_abs_error(fast, ref), 1e-7 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizes, InverseMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 1);
  const Fft fft(n);
  const cvec fast = fft.inverse(x);
  const cvec ref = reference_dft(x, /*inverse=*/true);
  EXPECT_LT(max_abs_error(fast, ref), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 2);
  const Fft fft(n);
  const cvec back = fft.inverse(fft.forward(x));
  EXPECT_LT(max_abs_error(back, x), 1e-9);
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, n + 3);
  const Fft fft(n);
  const cvec spec = fft.forward(x);
  double et = 0.0;
  double ef = 0.0;
  for (const cplx& v : x) et += std::norm(v);
  for (const cplx& v : spec) ef += std::norm(v);
  EXPECT_NEAR(ef / static_cast<double>(n), et, 1e-6 * et + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    FamilySymbolSizes, FftSizes,
    ::testing::Values<std::size_t>(1, 2, 4, 16, 64, 256, 512, 1024, 2048,
                                   8192,        // power-of-two members
                                   448, 704, 1152,  // DRM modes D, C, A
                                   3, 12, 100, 360,
                                   7, 31, 97, 509));  // primes (Bluestein)

TEST(Fft, PathSelection) {
  EXPECT_TRUE(Fft(64).is_radix2());
  EXPECT_TRUE(Fft(8192).is_radix2());
  EXPECT_FALSE(Fft(1152).is_radix2());
  EXPECT_FALSE(Fft(448).is_radix2());
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = kTwoPi * static_cast<double>(k * i) /
                     static_cast<double>(n);
    x[i] = {std::cos(a), std::sin(a)};
  }
  const cvec spec = Fft(n).forward(x);
  for (std::size_t bin = 0; bin < n; ++bin) {
    if (bin == k) {
      EXPECT_NEAR(std::abs(spec[bin]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_LT(std::abs(spec[bin]), 1e-9);
    }
  }
}

TEST(Fft, InPlaceEqualsOutOfPlace) {
  for (std::size_t n : {std::size_t{64}, std::size_t{448}}) {
    const cvec x = random_signal(n, 9);
    const Fft fft(n);
    const cvec out = fft.forward(x);
    cvec inplace = x;
    fft.forward(inplace, inplace);
    EXPECT_LT(max_abs_error(out, inplace), 1e-12);
  }
}

TEST(Fft, RejectsSizeMismatch) {
  Fft fft(64);
  cvec x(32);
  cvec y(64);
  EXPECT_THROW(fft.forward(x, y), DimensionError);
}

TEST(Fft, RejectsSizeZero) { EXPECT_THROW(Fft(0), ConfigError); }

// Restores the process engine choice on scope exit so engine-pinning
// tests cannot leak into later ones.
class EngineGuard {
 public:
  EngineGuard() : saved_(fft_engine()) {}
  ~EngineGuard() { fft_force_engine(saved_); }

 private:
  FftEngine saved_;
};

TEST(FftEngineSel, NamesRoundTrip) {
  EXPECT_STREQ(fft_engine_name(FftEngine::kSplitRadix), "splitradix");
  EXPECT_STREQ(fft_engine_name(FftEngine::kRadix2), "radix2");
}

TEST(FftEngineSel, ForceOverridesAndReturns) {
  EngineGuard guard;
  EXPECT_EQ(fft_force_engine(FftEngine::kRadix2), FftEngine::kRadix2);
  EXPECT_EQ(fft_engine(), FftEngine::kRadix2);
  EXPECT_EQ(fft_force_engine(FftEngine::kSplitRadix),
            FftEngine::kSplitRadix);
  EXPECT_EQ(fft_engine(), FftEngine::kSplitRadix);
}

// The two power-of-two engines implement the same transform: pit them
// against each other on random signals (forward, inverse, and through
// the Bluestein inner convolution, whose tables embed the engine).
TEST(FftEngineSel, EnginesAgreeOnRandomSignals) {
  EngineGuard guard;
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{512},
                        std::size_t{2048}, std::size_t{448},
                        std::size_t{97}}) {
    const cvec x = random_signal(n, 0xE5 + n);
    fft_force_engine(FftEngine::kSplitRadix);
    const Fft sr(n);
    fft_force_engine(FftEngine::kRadix2);
    const Fft r2(n);
    EXPECT_LT(max_abs_error(sr.forward(x), r2.forward(x)),
              1e-9 * static_cast<double>(n))
        << "forward size " << n;
    EXPECT_LT(max_abs_error(sr.inverse(x), r2.inverse(x)), 1e-11)
        << "inverse size " << n;
  }
}

// --------------------------------------------------------------------------
// Half-size plan kinds

TEST(FftRealInput, MatchesFullForwardOnRealSignals) {
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{256},
                        std::size_t{512}, std::size_t{2048}}) {
    Rng rng(n);
    cvec x(n);
    for (cplx& v : x) v = {rng.gaussian(), 0.0};
    const Fft fft(n);
    const cvec full = fft.forward(x);
    cvec half(n);
    fft.forward_real(x, half);
    EXPECT_LT(max_abs_error(half, full), 1e-9 * static_cast<double>(n))
        << "size " << n;
  }
}

TEST(FftRealInput, IgnoresImaginaryParts) {
  const std::size_t n = 64;
  Rng rng(7);
  cvec x(n);
  cvec junk(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = rng.gaussian();
    x[i] = {re, 0.0};
    junk[i] = {re, rng.gaussian()};  // same reals, garbage imag
  }
  const Fft fft(n);
  cvec a(n);
  cvec b(n);
  fft.forward_real(x, a);
  fft.forward_real(junk, b);
  EXPECT_LT(max_abs_error(a, b), 0.0 + 1e-15);
}

TEST(FftRealInput, OddSizeFallsBack) {
  const std::size_t n = 27;
  Rng rng(3);
  cvec x(n);
  for (cplx& v : x) v = {rng.gaussian(), 0.0};
  const Fft fft(n);
  cvec out(n);
  fft.forward_real(x, out);
  EXPECT_LT(max_abs_error(out, reference_dft(x)),
            1e-7 * static_cast<double>(n));
}

TEST(FftRealInput, InPlaceEqualsOutOfPlace) {
  const std::size_t n = 512;
  Rng rng(11);
  cvec x(n);
  for (cplx& v : x) v = {rng.gaussian(), 0.0};
  const Fft fft(n);
  cvec out(n);
  fft.forward_real(x, out);
  cvec inplace = x;
  fft.forward_real(inplace, inplace);
  EXPECT_LT(max_abs_error(out, inplace), 0.0 + 1e-15);
}

TEST(FftRealInput, RoundTripsThroughInverseHermitian) {
  for (std::size_t n : {std::size_t{64}, std::size_t{1024}}) {
    Rng rng(n + 5);
    cvec x(n);
    for (cplx& v : x) v = {rng.gaussian(), 0.0};
    const Fft fft(n);
    cvec spec(n);
    fft.forward_real(x, spec);
    cvec back(n);
    fft.inverse_hermitian(spec, back);
    EXPECT_LT(max_abs_error(back, x), 1e-9) << "size " << n;
    for (const cplx& v : back) EXPECT_EQ(v.imag(), 0.0);
  }
}

// --------------------------------------------------------------------------
// Plan-table cache

TEST(FftPlanCache, SharesTablesAcrossPlans) {
  fft_plan_cache_clear();
  const Fft a(512);
  const FftCacheStats after_first = fft_plan_cache_stats();
  const Fft b(512);
  const Fft c(512);
  const FftCacheStats after_three = fft_plan_cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_three.misses, 1u);
  EXPECT_GE(after_three.hits, after_first.hits + 2);
  EXPECT_EQ(after_three.entries, 1u);
}

TEST(FftPlanCache, BluesteinSharesInnerConvolutionTables) {
  fft_plan_cache_clear();
  // DRM mode A (1152 points) convolves at next_pow2(2*1152-1) = 4096:
  // a later direct 4096-point plan must reuse those inner pow2 tables.
  const Fft a(1152);
  const FftCacheStats s1 = fft_plan_cache_stats();
  EXPECT_EQ(s1.entries, 2u);  // bluestein(1152) + pow(4096)
  const Fft b(4096);
  const FftCacheStats s2 = fft_plan_cache_stats();
  EXPECT_EQ(s2.entries, 2u);  // pow(4096) shared, nothing new
  EXPECT_GE(s2.hits, s1.hits + 1);
}

TEST(FftPlanCache, ClearDoesNotInvalidateLivePlans) {
  fft_plan_cache_clear();
  const std::size_t n = 256;
  const cvec x = random_signal(n, 21);
  const Fft fft(n);
  const cvec before = fft.forward(x);
  fft_plan_cache_clear();
  const cvec after = fft.forward(x);  // tables alive via shared_ptr
  EXPECT_LT(max_abs_error(before, after), 0.0 + 1e-15);
  EXPECT_EQ(fft_plan_cache_stats().entries, 0u);
}

TEST(FftPlanCache, EnginesGetDistinctEntries) {
  EngineGuard guard;
  fft_plan_cache_clear();
  fft_force_engine(FftEngine::kSplitRadix);
  const Fft sr(128);
  fft_force_engine(FftEngine::kRadix2);
  const Fft r2(128);
  EXPECT_EQ(fft_plan_cache_stats().entries, 2u);
}

// The cache is the one piece of process-global mutable state in the
// engine: hammer it from concurrent workers the way LinkRunner's
// trial batches do (plan-per-thread, shared tables underneath), with
// a clear() thrown in mid-flight to exercise the shared-ownership
// lifetime. Run under TSan via scripts/tsan.sh.
TEST(FftPlanCache, ConcurrentAcquireAndExecute) {
  fft_plan_cache_clear();
  const std::size_t kThreads = 8;
  const std::size_t kRounds = 12;
  const std::size_t sizes[] = {64, 512, 1152, 256, 448};
  std::vector<cvec> inputs;
  std::vector<cvec> expected;
  for (std::size_t n : sizes) {
    inputs.push_back(random_signal(n, 0xCAFE + n));
    const Fft fft(n);
    expected.push_back(fft.forward(inputs.back()));
  }
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::size_t i = (t + r) % std::size(sizes);
        const Fft fft(sizes[i]);  // races on the cache by design
        const cvec got = fft.forward(inputs[i]);
        if (max_abs_error(got, expected[i]) > 1e-12) ++failures[t];
        if (t == 0 && r == kRounds / 2) fft_plan_cache_clear();
      }
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

TEST(FftShift, EvenLength) {
  const cvec x = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const cvec s = fftshift(x);
  EXPECT_EQ(s[0].real(), 2.0);
  EXPECT_EQ(s[1].real(), 3.0);
  EXPECT_EQ(s[2].real(), 0.0);
  EXPECT_EQ(s[3].real(), 1.0);
}

TEST(FftShift, ShiftInverse) {
  const cvec x = random_signal(17, 10);  // odd length is the tricky case
  EXPECT_LT(max_abs_error(ifftshift(fftshift(x)), x), 0.0 + 1e-15);
  const cvec y = random_signal(16, 11);
  EXPECT_LT(max_abs_error(ifftshift(fftshift(y)), y), 1e-15);
}

}  // namespace
}  // namespace ofdm::dsp
