// VHDL generator tests: structural checks on the emitted HDL-domain
// Mother Model instances and numeric checks on the ROM contents.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/interleaver.hpp"
#include "common/error.hpp"
#include "core/profiles.hpp"
#include "mapping/constellation.hpp"
#include "rtl/vhdl_gen.hpp"

namespace ofdm::rtl {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(VhdlGen, WlanBundleHasAllUnits) {
  const auto bundle = generate_vhdl(core::profile_wlan_80211a());
  ASSERT_EQ(bundle.files.size(), 5u);
  EXPECT_NE(bundle.find("ieee_802_11a_pkg.vhd"), nullptr);
  EXPECT_NE(bundle.find("ieee_802_11a_scrambler.vhd"), nullptr);
  EXPECT_NE(bundle.find("ieee_802_11a_conv_encoder.vhd"), nullptr);
  EXPECT_NE(bundle.find("ieee_802_11a_interleaver_rom.vhd"), nullptr);
  EXPECT_NE(bundle.find("ieee_802_11a_mapper_rom.vhd"), nullptr);
}

TEST(VhdlGen, PackageCarriesTheGeometry) {
  const auto bundle = generate_vhdl(core::profile_wlan_80211a());
  const auto* pkg = bundle.find("ieee_802_11a_pkg.vhd");
  ASSERT_NE(pkg, nullptr);
  EXPECT_TRUE(contains(pkg->contents, "FFT_SIZE      : natural := 64"));
  EXPECT_TRUE(contains(pkg->contents, "CP_LEN        : natural := 16"));
  EXPECT_TRUE(contains(pkg->contents, "DATA_TONES    : natural := 48"));
  EXPECT_TRUE(contains(pkg->contents, "SAMPLE_RATE   : natural := "
                                      "20000000"));
}

TEST(VhdlGen, ScramblerGenericsEncodeThePolynomial) {
  const auto bundle = generate_vhdl(core::profile_wlan_80211a());
  const auto* scr = bundle.find("ieee_802_11a_scrambler.vhd");
  ASSERT_NE(scr, nullptr);
  // x^7+x^4+1: taps (1<<6)|(1<<3) -> "1001000"; seed 0x5D -> "1011101".
  EXPECT_TRUE(contains(scr->contents, "TAPS   : std_logic_vector(6 "
                                      "downto 0) := \"1001000\""));
  EXPECT_TRUE(contains(scr->contents, "SEED   : std_logic_vector(6 "
                                      "downto 0) := \"1011101\""));
  EXPECT_TRUE(contains(scr->contents, "rising_edge(clk)"));
}

TEST(VhdlGen, ConvEncoderGeneratorsMatchOctal) {
  const auto bundle = generate_vhdl(core::profile_wlan_80211a());
  const auto* enc = bundle.find("ieee_802_11a_conv_encoder.vhd");
  ASSERT_NE(enc, nullptr);
  // 133 octal = 1011011, 171 octal = 1111001.
  EXPECT_TRUE(contains(enc->contents, "\"1011011\""));
  EXPECT_TRUE(contains(enc->contents, "\"1111001\""));
  EXPECT_TRUE(contains(enc->contents, "K  : natural := 7"));
}

TEST(VhdlGen, InterleaverRomMatchesTheLibraryPermutation) {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k6);
  const auto bundle = generate_vhdl(params);
  const auto* rom = bundle.find("ieee_802_11a_interleaver_rom.vhd");
  ASSERT_NE(rom, nullptr);
  // Spot-check: the first entries of the BPSK (N_CBPS=48) permutation
  // are 0, 3, 6, 9 (k -> 3*(k mod 16) + floor(k/16)).
  EXPECT_TRUE(contains(rom->contents, "constant ROM : rom_t := (\n"
                                      "    0, 3, 6, 9"));
}

TEST(VhdlGen, MapperRomQuantizesTheConstellation) {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k24);
  const auto bundle = generate_vhdl(params, 12);
  const auto* rom = bundle.find("ieee_802_11a_mapper_rom.vhd");
  ASSERT_NE(rom, nullptr);
  // 16-QAM corner level: -3/sqrt(10) at full-scale 2.0 over 12 bits.
  const long expect = to_fixed(-3.0 / std::sqrt(10.0), 12);
  EXPECT_TRUE(contains(rom->contents,
                       "to_signed(" + std::to_string(expect) + ", 12)"));
}

TEST(VhdlGen, ToFixedRoundTripsWithinHalfLsb) {
  for (double v : {-1.99, -0.5, -1.0 / 3.0, 0.0, 0.7071, 1.25}) {
    const long code = to_fixed(v, 12);
    const double back =
        static_cast<double>(code) / static_cast<double>(1 << 10);
    EXPECT_NEAR(back, v, 1.0 / (1 << 10));
  }
  // Clamps at the rails instead of wrapping.
  EXPECT_EQ(to_fixed(100.0, 12), (1l << 11) - 1);
  EXPECT_EQ(to_fixed(-100.0, 12), -(1l << 11));
}

TEST(VhdlGen, DifferentialStandardSkipsMapperRom) {
  core::OfdmParams params = core::profile_dab();
  const auto bundle = generate_vhdl(params);
  // DAB: scrambler + conv + interleaver, but no fixed-constellation ROM.
  EXPECT_EQ(bundle.find("dab_mapper_rom.vhd"), nullptr);
  EXPECT_NE(bundle.find("dab_scrambler.vhd"), nullptr);
  EXPECT_NE(bundle.find("dab_conv_encoder.vhd"), nullptr);
  EXPECT_NE(bundle.find("dab_interleaver_rom.vhd"), nullptr);
}

TEST(VhdlGen, DmtStandardEmitsPackageAndScramblerOnly) {
  const auto bundle = generate_vhdl(core::profile_adsl());
  EXPECT_NE(bundle.find("adsl_g_992_1_pkg.vhd"), nullptr);
  EXPECT_NE(bundle.find("adsl_g_992_1_scrambler.vhd"), nullptr);
  EXPECT_EQ(bundle.find("adsl_g_992_1_conv_encoder.vhd"), nullptr);
  const auto* pkg = bundle.find("adsl_g_992_1_pkg.vhd");
  ASSERT_NE(pkg, nullptr);
  EXPECT_TRUE(contains(pkg->contents, "HERMITIAN     : boolean := true"));
}

TEST(VhdlGen, EveryFamilyMemberGenerates) {
  for (core::Standard s : core::kStandardFamily) {
    const auto bundle = generate_vhdl(core::profile_for(s));
    EXPECT_GE(bundle.files.size(), 2u) << core::standard_name(s);
    for (const auto& f : bundle.files) {
      EXPECT_FALSE(f.contents.empty());
      EXPECT_TRUE(contains(f.contents, "library ieee;"));
    }
  }
}

}  // namespace
}  // namespace ofdm::rtl
