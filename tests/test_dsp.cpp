// DSP substrate tests: windows, FIR design/filtering, resampling and the
// Welch PSD estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/window.hpp"

namespace ofdm::dsp {
namespace {

TEST(Window, HannEndpointsAndPeak) {
  const rvec w = make_window(WindowType::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic form peaks at N/2
}

TEST(Window, RectangularIsAllOnes) {
  const rvec w = make_window(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_EQ(v, 1.0);
}

TEST(Window, PowerIsSumOfSquares) {
  const rvec w = make_window(WindowType::kHamming, 32);
  double acc = 0.0;
  for (double v : w) acc += v * v;
  EXPECT_NEAR(window_power(w), acc, 1e-12);
}

TEST(Window, RaisedCosineRampComplementSumsToOne) {
  const rvec r = raised_cosine_ramp(8);
  for (double v : r) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  // Overlap-add flatness: rising + falling edge = 1 at every position.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i] + (1.0 - r[i]), 1.0, 1e-15);
  }
  // Monotone rising.
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_GT(r[i], r[i - 1]);
}

TEST(Fir, LowpassHasUnityDcGain) {
  const rvec h = design_lowpass(0.2, 63);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Fir, LowpassAttenuatesStopband) {
  const rvec h = design_lowpass(0.1, 101);
  // Evaluate |H| at passband (0.02) and stopband (0.3) frequencies.
  auto mag = [&h](double f) {
    cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < h.size(); ++i) {
      const double a = -kTwoPi * f * static_cast<double>(i);
      acc += h[i] * cplx{std::cos(a), std::sin(a)};
    }
    return std::abs(acc);
  };
  EXPECT_NEAR(mag(0.02), 1.0, 0.01);
  EXPECT_LT(mag(0.3), 0.01);
}

TEST(Fir, StreamingEqualsOneShot) {
  Rng rng(21);
  cvec x(256);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  const rvec h = design_lowpass(0.25, 31);

  FirFilter one(h);
  const cvec whole = one.process(x);

  FirFilter chunked(h);
  cvec pieced;
  for (std::size_t off = 0; off < x.size(); off += 37) {
    const std::size_t n = std::min<std::size_t>(37, x.size() - off);
    const cvec part =
        chunked.process(std::span<const cplx>(x).subspan(off, n));
    pieced.insert(pieced.end(), part.begin(), part.end());
  }
  EXPECT_LT(max_abs_error(whole, pieced), 1e-12);
}

TEST(Fir, ImpulseResponseIsTaps) {
  const rvec h = {0.5, -0.25, 0.125};
  FirFilter f({0.5, -0.25, 0.125});
  cvec impulse(8, cplx{0.0, 0.0});
  impulse[0] = {1.0, 0.0};
  const cvec out = f.process(impulse);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(out[i].real(), h[i], 1e-15);
  }
  for (std::size_t i = h.size(); i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i]), 0.0, 1e-15);
  }
}

TEST(Fir, ConvolveLength) {
  const cvec x(10, cplx{1.0, 0.0});
  const rvec h(4, 0.25);
  EXPECT_EQ(convolve(x, h).size(), 13u);
}

TEST(Resample, InterpolatorPreservesToneAndRate) {
  const std::size_t ll = 4;
  Interpolator up(ll);
  // A slow complex tone; after 4x interpolation the tone frequency in
  // cycles/sample drops by 4 and amplitude is preserved.
  const double f = 0.05;
  cvec x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = kTwoPi * f * static_cast<double>(i);
    x[i] = {std::cos(a), std::sin(a)};
  }
  const cvec y = up.process(x);
  ASSERT_EQ(y.size(), x.size() * ll);
  // Steady-state amplitude ~1 (skip filter transient).
  double p = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 256; i < y.size(); ++i) {
    p += std::norm(y[i]);
    ++count;
  }
  EXPECT_NEAR(p / static_cast<double>(count), 1.0, 0.02);
}

TEST(Resample, DecimatorInvertsInterpolator) {
  const std::size_t ll = 4;
  Interpolator up(ll);
  Decimator down(ll);
  Rng rng(22);
  // Narrow-band test signal: the cascade's end-to-end group delay is
  // 63/4 = 15.75 baseband samples (fractional), so keep the content slow
  // enough that a 0.25-sample misalignment is negligible.
  cvec x(1024, cplx{0.0, 0.0});
  for (int tone = 0; tone < 5; ++tone) {
    const double f = rng.uniform(-0.02, 0.02);
    const cplx amp = rng.complex_gaussian(1.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double a = kTwoPi * f * static_cast<double>(i);
      x[i] += amp * cplx{std::cos(a), std::sin(a)};
    }
  }
  const cvec rt = down.process(up.process(x));
  ASSERT_EQ(rt.size(), x.size());
  // Compare in steady state at the nearest integer delay (true delay is
  // (64-1)/2 + (64-1)/2 = 63 RF samples = 15.75 baseband samples).
  const std::size_t delay = 16;
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 200; i + delay < x.size() - 200; ++i) {
    err += std::norm(rt[i + delay] - x[i]);
    ref += std::norm(x[i]);
  }
  EXPECT_LT(err / ref, 0.01);
}

TEST(Spectrum, ToneAppearsAtRightFrequency) {
  const double fs = 1000.0;
  const double f0 = 125.0;
  cvec x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = kTwoPi * f0 * static_cast<double>(i) / fs;
    x[i] = {std::cos(a), std::sin(a)};
  }
  WelchConfig cfg;
  cfg.segment = 256;
  cfg.sample_rate = fs;
  const Psd psd = welch_psd(x, cfg);
  // Peak bin frequency.
  std::size_t best = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[best]) best = i;
  }
  EXPECT_NEAR(psd.freq[best], f0, fs / 256.0);
}

TEST(Spectrum, TotalPowerMatchesSignalPower) {
  Rng rng(23);
  cvec x(8192);
  for (cplx& v : x) v = rng.complex_gaussian(2.0);
  WelchConfig cfg;
  cfg.segment = 512;
  const Psd psd = welch_psd(x, cfg);
  EXPECT_NEAR(psd.total_power(), mean_power(x), 0.15 * mean_power(x));
}

TEST(Spectrum, BandPowerSplitsTotal) {
  Rng rng(24);
  cvec x(4096);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  WelchConfig cfg;
  cfg.segment = 256;
  cfg.sample_rate = 1.0;
  const Psd psd = welch_psd(x, cfg);
  const double lo = psd.band_power(-0.5, 0.0);
  const double hi = psd.band_power(1e-9, 0.5);
  EXPECT_NEAR(lo + hi, psd.total_power(), 1e-9);
}

TEST(Spectrum, RejectsShortInput) {
  WelchConfig cfg;
  cfg.segment = 256;
  cvec x(100);
  EXPECT_THROW(welch_psd(x, cfg), DimensionError);
}

}  // namespace
}  // namespace ofdm::dsp
