// The dispatch layer's bit-reproducibility contract: every SIMD tier
// must produce byte-identical output to the scalar reference, from the
// raw kernel table all the way up to whole transmitter bursts for all
// ten family standards. Plus the FIR/TDL edge cases the vector widths
// make interesting: inputs shorter than the tap count, chunks not
// divisible by the vector width, and chunking invariance across odd
// splits.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/simd/dispatch.hpp"
#include "mapping/constellation.hpp"
#include "rf/channel.hpp"
#include "rf/fading.hpp"

namespace {

using namespace ofdm;

bool bit_equal(const cvec& a, const cvec& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

/// Run `body` under the requested tier, restoring the default after.
template <typename Body>
auto under_tier(simd::Tier tier, Body&& body) {
  simd::force_tier(tier);
  auto result = body();
  simd::force_tier(simd::best_supported_tier());
  return result;
}

cvec random_cvec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec v(n);
  for (cplx& x : v) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

rvec random_rvec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  rvec v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

const std::size_t kOddSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31,
                                 33, 64, 97};

class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    best_ = simd::best_supported_tier();
    if (best_ == simd::Tier::kScalar) {
      GTEST_SKIP() << "host has only the scalar tier";
    }
  }
  void TearDown() override { simd::force_tier(best_); }
  simd::Tier best_ = simd::Tier::kScalar;
};

TEST(SimdDispatch, ForceTierClampsAndReports) {
  const simd::Tier best = simd::best_supported_tier();
  EXPECT_EQ(simd::force_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  EXPECT_STREQ(simd::kernels().name, "scalar");
  EXPECT_EQ(simd::force_tier(best), best);
  EXPECT_EQ(simd::tier_name(simd::active_tier()),
            std::string(simd::kernels().name));
#if defined(__x86_64__) || defined(_M_X64)
  // NEON can never be supported on x86: the request must clamp down.
  const simd::Tier got = simd::force_tier(simd::Tier::kNeon);
  EXPECT_NE(got, simd::Tier::kNeon);
  simd::force_tier(best);
#endif
}

TEST_F(SimdTest, CvecOpsBitIdenticalAtOddSizes) {
  const simd::Kernels& ref = simd::scalar_kernels();
  simd::force_tier(best_);
  const simd::Kernels& vec = simd::kernels();
  ASSERT_STRNE(ref.name, vec.name);
  for (std::size_t n : kOddSizes) {
    const cvec a = random_cvec(n, 100 + n);
    const cvec b = random_cvec(n, 200 + n);
    cvec r(n), v(n);
    ref.cvec_add(a.data(), b.data(), r.data(), n);
    vec.cvec_add(a.data(), b.data(), v.data(), n);
    EXPECT_TRUE(bit_equal(r, v)) << vec.name << " cvec_add n=" << n;
    ref.cvec_mul(a.data(), b.data(), r.data(), n);
    vec.cvec_mul(a.data(), b.data(), v.data(), n);
    EXPECT_TRUE(bit_equal(r, v)) << vec.name << " cvec_mul n=" << n;
    ref.cvec_scale(a.data(), 0.7071, r.data(), n);
    vec.cvec_scale(a.data(), 0.7071, v.data(), n);
    EXPECT_TRUE(bit_equal(r, v)) << vec.name << " cvec_scale n=" << n;

    rvec ra = random_rvec(n, 300 + n);
    rvec rv = ra;
    const rvec rb = random_rvec(n, 400 + n);
    ref.rvec_add(ra.data(), rb.data(), n);
    vec.rvec_add(rv.data(), rb.data(), n);
    EXPECT_EQ(std::memcmp(ra.data(), rv.data(), n * sizeof(double)), 0)
        << vec.name << " rvec_add n=" << n;

    // Aliased form (the sanctioned in-place use).
    cvec ali_r = a, ali_v = a;
    ref.cvec_mul(ali_r.data(), b.data(), ali_r.data(), n);
    vec.cvec_mul(ali_v.data(), b.data(), ali_v.data(), n);
    EXPECT_TRUE(bit_equal(ali_r, ali_v))
        << vec.name << " aliased cvec_mul n=" << n;
  }
}

TEST_F(SimdTest, FirKernelsBitIdenticalAtOddSizes) {
  const simd::Kernels& ref = simd::scalar_kernels();
  simd::force_tier(best_);
  const simd::Kernels& vec = simd::kernels();
  const std::size_t tap_counts[] = {1, 2, 3, 4, 7, 8, 9, 33};
  for (std::size_t n_taps : tap_counts) {
    const rvec rtaps = random_rvec(n_taps, 500 + n_taps);
    const cvec ctaps = random_cvec(n_taps, 600 + n_taps);
    for (std::size_t n_out : kOddSizes) {
      const cvec x = random_cvec(n_out + n_taps - 1, 700 + n_out);
      cvec r(n_out), v(n_out);
      ref.fir_cr(x.data(), rtaps.data(), n_taps, r.data(), n_out);
      vec.fir_cr(x.data(), rtaps.data(), n_taps, v.data(), n_out);
      EXPECT_TRUE(bit_equal(r, v))
          << vec.name << " fir_cr taps=" << n_taps << " n=" << n_out;
      ref.fir_cc(x.data(), ctaps.data(), n_taps, r.data(), n_out);
      vec.fir_cc(x.data(), ctaps.data(), n_taps, v.data(), n_out);
      EXPECT_TRUE(bit_equal(r, v))
          << vec.name << " fir_cc taps=" << n_taps << " n=" << n_out;
    }
  }
}

TEST_F(SimdTest, DemapSoftBitIdenticalAtOddSizes) {
  const simd::Kernels& ref = simd::scalar_kernels();
  simd::force_tier(best_);
  const simd::Kernels& vec = simd::kernels();
  // Random point tables (not just Gray constellations): the contract
  // holds for any 2^n_bits point set.
  for (std::size_t n_bits : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}, std::size_t{6}}) {
    const std::size_t n_points = std::size_t{1} << n_bits;
    const cvec points = random_cvec(n_points, 900 + n_bits);
    for (std::size_t n : kOddSizes) {
      const cvec syms = random_cvec(n, 1000 + n);

      // Broadcast noise floor (nv_stride == 0).
      const double nv0 = 0.37;
      rvec r(n * n_bits), v(n * n_bits);
      ref.demap_soft(syms.data(), n, points.data(), n_points, n_bits,
                     &nv0, 0, r.data());
      vec.demap_soft(syms.data(), n, points.data(), n_points, n_bits,
                     &nv0, 0, v.data());
      EXPECT_EQ(std::memcmp(r.data(), v.data(),
                            r.size() * sizeof(double)),
                0)
          << vec.name << " demap_soft bits=" << n_bits << " n=" << n
          << " (broadcast nv)";

      // Per-symbol noise floors (nv_stride == 1), strictly positive.
      rvec nv = random_rvec(n, 1100 + n);
      for (double& x : nv) x = 0.05 + (x + 1.0);
      ref.demap_soft(syms.data(), n, points.data(), n_points, n_bits,
                     nv.data(), 1, r.data());
      vec.demap_soft(syms.data(), n, points.data(), n_points, n_bits,
                     nv.data(), 1, v.data());
      EXPECT_EQ(std::memcmp(r.data(), v.data(),
                            r.size() * sizeof(double)),
                0)
          << vec.name << " demap_soft bits=" << n_bits << " n=" << n
          << " (per-symbol nv)";
    }
  }
}

TEST_F(SimdTest, ConstellationSoftDemapBitIdenticalAcrossTiers) {
  for (const auto scheme :
       {mapping::Scheme::kBpsk, mapping::Scheme::kQpsk,
        mapping::Scheme::kQam16, mapping::Scheme::kQam64}) {
    const auto cons = mapping::Constellation::make(scheme);
    const cvec syms = random_cvec(97, 1200 + cons.bits());
    auto run = [&](simd::Tier tier) {
      return under_tier(tier, [&] {
        rvec out;
        cons.demap_soft_into(syms, 0.5, out);
        return out;
      });
    };
    const rvec scalar = run(simd::Tier::kScalar);
    const rvec simd_out = run(best_);
    ASSERT_EQ(scalar.size(), syms.size() * cons.bits());
    EXPECT_EQ(std::memcmp(scalar.data(), simd_out.data(),
                          scalar.size() * sizeof(double)),
              0)
        << mapping::scheme_name(scheme) << ": scalar vs "
        << simd::tier_name(best_) << " LLR digests differ";
  }
}

TEST_F(SimdTest, FftBitIdenticalAcrossTiers) {
  // Power-of-two sizes (incl. the half-size real-input / Hermitian
  // plan kinds) and Bluestein sizes (DRM's 1152/448 — pointwise
  // products go through cvec_mul), under both butterfly engines.
  const std::size_t sizes[] = {2, 4, 8, 64, 256, 512, 1024, 448, 1152};
  for (const auto engine :
       {dsp::FftEngine::kSplitRadix, dsp::FftEngine::kRadix2}) {
    const dsp::FftEngine saved = dsp::fft_engine();
    dsp::fft_force_engine(engine);
    for (std::size_t n : sizes) {
      const cvec in = random_cvec(n, 800 + n);

      auto run = [&](simd::Tier tier) {
        return under_tier(tier, [&] {
          dsp::Fft fft(n);
          cvec fwd(n), inv(n);
          fft.forward(in, fwd);
          fft.inverse(in, inv, 0.5);
          cvec herm, realf;
          if (n % 2 == 0) {
            // Hermitian spectrum: X[n-k] = conj(X[k]), real DC/Nyquist.
            cvec spec(n);
            spec[0] = {in[0].real(), 0.0};
            spec[n / 2] = {in[n / 2].real(), 0.0};
            for (std::size_t k = 1; k < n / 2; ++k) {
              spec[k] = in[k];
              spec[n - k] = std::conj(in[k]);
            }
            herm.resize(n);
            fft.inverse_hermitian(spec, herm, 2.0);
            realf.resize(n);
            fft.forward_real(herm, realf);
          }
          cvec all = fwd;
          all.insert(all.end(), inv.begin(), inv.end());
          all.insert(all.end(), herm.begin(), herm.end());
          all.insert(all.end(), realf.begin(), realf.end());
          return all;
        });
      };

      const cvec scalar = run(simd::Tier::kScalar);
      const cvec simd_out = run(best_);
      EXPECT_TRUE(bit_equal(scalar, simd_out))
          << "fft n=" << n << " engine="
          << dsp::fft_engine_name(engine);
    }
    dsp::fft_force_engine(saved);
  }
}

TEST_F(SimdTest, TenStandardBurstsBitIdenticalAcrossTiers) {
  for (const core::Standard standard : core::kStandardFamily) {
    auto run = [&](simd::Tier tier) {
      return under_tier(tier, [&] {
        core::Transmitter tx(core::profile_for(standard));
        Rng rng(42);
        const bitvec payload = rng.bits(
            std::min<std::size_t>(tx.recommended_payload_bits(), 4000));
        return tx.modulate(payload).samples;
      });
    };
    const cvec scalar = run(simd::Tier::kScalar);
    const cvec simd_out = run(best_);
    EXPECT_FALSE(scalar.empty());
    EXPECT_TRUE(bit_equal(scalar, simd_out))
        << core::standard_name(standard) << ": scalar vs "
        << simd::tier_name(best_) << " burst digests differ";
  }
}

TEST(SimdBatch, ModulateBatchMatchesPerCallForAllStandards) {
  for (const core::Standard standard : core::kStandardFamily) {
    core::Transmitter tx(core::profile_for(standard));
    Rng rng(7);
    const std::size_t bits =
        std::min<std::size_t>(tx.recommended_payload_bits(), 3000);
    std::vector<bitvec> payloads;
    for (int i = 0; i < 3; ++i) payloads.push_back(rng.bits(bits));

    std::vector<core::Transmitter::Burst> batch;
    tx.modulate_batch(payloads, batch);
    ASSERT_EQ(batch.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      const auto one = tx.modulate(payloads[i]);
      EXPECT_TRUE(bit_equal(one.samples, batch[i].samples))
          << core::standard_name(standard) << " burst " << i;
      EXPECT_EQ(one.data_symbols, batch[i].data_symbols);
      EXPECT_EQ(one.payload_bits, batch[i].payload_bits);
      EXPECT_EQ(one.coded_bits, batch[i].coded_bits);
    }
  }
}

TEST(SimdBatch, ModulateIntoReusesBufferCleanly) {
  core::Transmitter tx(
      core::profile_for(core::Standard::kWlan80211a));
  Rng rng(9);
  const bitvec p1 = rng.bits(1200);
  const bitvec p2 = rng.bits(900);  // shorter: stale tail must vanish

  core::Transmitter::Burst reused;
  tx.modulate_into(p1, reused);
  const auto fresh1 = tx.modulate(p1);
  EXPECT_TRUE(bit_equal(fresh1.samples, reused.samples));

  tx.modulate_into(p2, reused);
  const auto fresh2 = tx.modulate(p2);
  EXPECT_TRUE(bit_equal(fresh2.samples, reused.samples));
  EXPECT_EQ(fresh2.data_symbols, reused.data_symbols);
}

// --- FIR / TDL edge cases ----------------------------------------------

TEST(FirEdge, ChunksShorterThanTapCount) {
  const rvec taps = random_rvec(16, 1);
  const cvec input = random_cvec(40, 2);

  dsp::FirFilter one_shot(taps);
  const cvec expect = one_shot.process(input);

  // Feed 1..3-sample chunks (every chunk shorter than the 16 taps).
  dsp::FirFilter chunked(taps);
  cvec got;
  std::size_t pos = 0, step = 1;
  while (pos < input.size()) {
    const std::size_t n = std::min(step, input.size() - pos);
    const cvec out =
        chunked.process(std::span<const cplx>(input).subspan(pos, n));
    got.insert(got.end(), out.begin(), out.end());
    pos += n;
    step = step % 3 + 1;
  }
  EXPECT_TRUE(bit_equal(expect, got));
}

TEST(FirEdge, OddChunkSplitsAreInvariant) {
  const rvec taps = random_rvec(9, 3);
  const cvec input = random_cvec(1003, 4);  // prime-ish length

  dsp::FirFilter one_shot(taps);
  const cvec expect = one_shot.process(input);

  for (std::size_t chunk : {1u, 3u, 5u, 7u, 997u}) {
    dsp::FirFilter f(taps);
    cvec got;
    for (std::size_t pos = 0; pos < input.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, input.size() - pos);
      const cvec out =
          f.process(std::span<const cplx>(input).subspan(pos, n));
      got.insert(got.end(), out.begin(), out.end());
    }
    EXPECT_TRUE(bit_equal(expect, got)) << "chunk=" << chunk;
  }
}

TEST(FirEdge, MultipathChannelOddChunkInvariance) {
  const cvec taps = rf::exponential_pdp_taps(1.5, 6, 11);
  const cvec input = random_cvec(757, 5);

  rf::MultipathChannel one_shot(taps);
  cvec expect;
  one_shot.process(input, expect);

  for (std::size_t chunk : {1u, 2u, 3u, 13u, 251u}) {
    rf::MultipathChannel ch(taps);
    cvec got, out;
    for (std::size_t pos = 0; pos < input.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, input.size() - pos);
      ch.process(std::span<const cplx>(input).subspan(pos, n), out);
      got.insert(got.end(), out.begin(), out.end());
    }
    EXPECT_TRUE(bit_equal(expect, got)) << "chunk=" << chunk;
  }
}

TEST(FirEdge, FadingChannelOddChunkInvariance) {
  const std::vector<rf::FadingTap> taps = {{0, 0.6}, {3, 0.3}, {7, 0.1}};
  const cvec input = random_cvec(501, 6);

  rf::FadingChannel one_shot(taps, 80.0, 1e6, 77);
  cvec expect;
  one_shot.process(input, expect);

  for (std::size_t chunk : {1u, 4u, 9u, 100u}) {
    rf::FadingChannel ch(taps, 80.0, 1e6, 77);
    cvec got, out;
    for (std::size_t pos = 0; pos < input.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, input.size() - pos);
      ch.process(std::span<const cplx>(input).subspan(pos, n), out);
      got.insert(got.end(), out.begin(), out.end());
    }
    EXPECT_TRUE(bit_equal(expect, got)) << "chunk=" << chunk;
  }
}

TEST(FirEdge, SnapshotRoundTripAfterShortChunks) {
  // Serialization keeps the circular-delay-line format: a filter that
  // consumed a few short chunks must restore into a fresh filter and
  // continue bit-identically.
  const rvec taps = random_rvec(8, 7);
  const cvec input = random_cvec(64, 8);

  dsp::FirFilter f(taps);
  (void)f.process(std::span<const cplx>(input).first(5));
  (void)f.process(std::span<const cplx>(input).subspan(5, 3));

  StateWriter w;
  f.save_state(w);
  dsp::FirFilter g(taps);
  StateReader r(w.bytes());
  g.load_state(r);

  const cvec a = f.process(std::span<const cplx>(input).subspan(8));
  const cvec b = g.process(std::span<const cplx>(input).subspan(8));
  EXPECT_TRUE(bit_equal(a, b));
}

}  // namespace
