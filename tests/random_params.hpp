// Shared test helper: draw a random-but-valid OfdmParams from the full
// reconfiguration space (geometry, tone plan, mapping kind, FEC,
// interleaving, windowing, framing). Used by the property round-trip
// suite and the params_io serialization fuzz — one generator, so both
// suites explore the same space.
#pragma once

#include <algorithm>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::test {

inline core::OfdmParams random_params(Rng& rng) {
  using core::OfdmParams;
  OfdmParams p;
  p.standard = core::Standard::kWlan80211a;  // tag only
  p.variant = "randomized";

  const std::size_t fft_choices[] = {32, 64, 128, 256, 448, 512, 704};
  p.fft_size = fft_choices[rng.uniform_int(7)];
  p.cp_len = 1 + rng.uniform_int(p.fft_size / 4);
  p.sample_rate = 1e6 * (1.0 + static_cast<double>(rng.uniform_int(40)));
  p.window_ramp = rng.uniform_int(std::min<std::size_t>(p.cp_len, 8) + 1);

  p.hermitian = rng.uniform() < 0.25;

  // Tone plan: a contiguous band with a few pilots sprinkled in.
  p.tone_map = core::null_tone_map(p.fft_size);
  std::size_t n_pilots = 0;
  if (p.hermitian) {
    const long max_tone = static_cast<long>(p.fft_size / 2) - 1;
    const long hi =
        2 + static_cast<long>(rng.uniform_int(
                static_cast<std::uint64_t>(max_tone - 2)));
    for (long k = 1; k <= hi; ++k) {
      core::set_tone(p.tone_map, k, core::ToneType::kData);
    }
    if (hi >= 4 && rng.uniform() < 0.5) {
      core::set_tone(p.tone_map, hi / 2, core::ToneType::kPilot);
      n_pilots = 1;
    }
  } else {
    const long half_max = static_cast<long>(p.fft_size / 2) - 1;
    const long half =
        2 + static_cast<long>(rng.uniform_int(
                static_cast<std::uint64_t>(half_max - 2)));
    core::fill_data_range(p.tone_map, -half, half);
    if (rng.uniform() < 0.5) {
      core::set_tone(p.tone_map, half / 2, core::ToneType::kPilot);
      core::set_tone(p.tone_map, -half / 2, core::ToneType::kPilot);
      n_pilots = 2;
    }
  }
  p.pilots.base_values.assign(n_pilots, cplx{1.0, 0.0});
  if (n_pilots > 0 && rng.uniform() < 0.5) {
    p.pilots.polarity_prbs = true;
    p.pilots.prbs_degree = 7;
    p.pilots.prbs_taps = (1u << 6) | (1u << 3);
    p.pilots.prbs_seed = 0x7F;
  }

  // Mapping kind. Hermitian + differential is legal (HomePlug-style);
  // bit tables need one entry per data tone.
  const core::ToneLayout layout = core::make_tone_layout(p);
  const double mapping_draw = rng.uniform();
  if (mapping_draw < 0.5) {
    p.mapping = core::MappingKind::kFixed;
    const mapping::Scheme schemes[] = {
        mapping::Scheme::kBpsk, mapping::Scheme::kQpsk,
        mapping::Scheme::kQam16, mapping::Scheme::kQam64};
    p.scheme = schemes[rng.uniform_int(4)];
  } else if (mapping_draw < 0.75) {
    p.mapping = core::MappingKind::kDifferential;
    p.diff_kind = rng.bit() ? mapping::DiffKind::kDqpsk
                            : mapping::DiffKind::kPi4Dqpsk;
    p.frame.preamble = core::PreambleKind::kPhaseReference;
    p.frame.phase_ref_seed = rng.next_u64() | 1u;
  } else {
    p.mapping = core::MappingKind::kBitTable;
    p.bit_table.resize(layout.data_bins.size());
    for (auto& b : p.bit_table) {
      b = static_cast<std::uint8_t>(2 + rng.uniform_int(10));
    }
  }

  // Scrambler.
  if (rng.uniform() < 0.7) {
    p.scrambler.enabled = true;
    p.scrambler.degree = 7 + static_cast<unsigned>(rng.uniform_int(9));
    p.scrambler.taps = (std::uint64_t{1} << (p.scrambler.degree - 1)) |
                       (std::uint64_t{1} << (p.scrambler.degree / 2));
    p.scrambler.seed =
        (rng.next_u64() & ((std::uint64_t{1} << p.scrambler.degree) - 1)) |
        1u;
  }

  // FEC (inner conv; RS occasionally on top).
  if (rng.uniform() < 0.5) {
    p.fec.conv_enabled = true;
    p.fec.conv = coding::k7_industry_code();
    const double r = rng.uniform();
    p.fec.puncture = r < 0.33   ? coding::puncture_none()
                     : r < 0.66 ? coding::puncture_2_3()
                                : coding::puncture_3_4();
    if (rng.uniform() < 0.3) {
      p.fec.rs_enabled = true;
      p.fec.rs_n = 64;
      p.fec.rs_k = 48;
    }
  }

  // Interleaving that divides the coded bits per symbol.
  const std::size_t cbps = core::coded_bits_per_symbol(p);
  const double il = rng.uniform();
  if (il < 0.3) {
    for (std::size_t rows : {8, 4, 3, 2}) {
      if (cbps % rows == 0) {
        p.interleaver.kind = core::InterleaverKind::kBlock;
        p.interleaver.rows = rows;
        break;
      }
    }
  } else if (il < 0.5) {
    p.interleaver.kind = core::InterleaverKind::kCell;
    p.interleaver.seed = rng.next_u64() | 1u;
  }

  p.frame.symbols_per_frame = 2 + rng.uniform_int(6);
  if (rng.uniform() < 0.2) p.frame.null_samples = rng.uniform_int(200);
  return p;
}

}  // namespace ofdm::test
