// Corpus fuzz of the state decoders that accept external bytes: the
// rf::Netlist "OFDMSNAP" snapshot and the sim "OFDMCAMP" campaign
// checkpoint. Every single-bit flip of a valid blob, every truncation
// length, trailing garbage, and seeded multi-byte corruptions must
// either restore cleanly (a flip can land in a don't-care payload byte)
// or throw ofdm::StateError — never crash, never throw bad_alloc off a
// corrupt length field, never read past the buffer. The ASan CI job
// runs this binary to catch silent overreads the happy path would miss.
#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "rf/frontend.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"
#include "sim/checkpoint.hpp"
#include "sim/deck.hpp"

namespace ofdm {
namespace {

constexpr const char* kDeckText =
    "name=fuzz\n"
    "standard=wlan_80211a@12,dab@1\n"
    "snr_db=4,8\n"
    "channel=awgn\n"
    "trials.min=8\n"
    "trials.max=16\n"
    "seed=99\n";

rf::Netlist build_netlist() {
  rf::Netlist net;
  const auto tone = net.add_source<rf::ToneSource>(1.1e6, 20e6, 0.8);
  const auto shift = net.add_block<rf::FrequencyShift>(2e6, 20e6);
  const auto pa = net.add_block<rf::SoftClipPa>(0.75);
  const auto cap = net.add_block<rf::Capture>();
  net.connect(tone, shift);
  net.connect(shift, pa);
  net.connect(pa, cap);
  return net;
}

std::vector<std::uint8_t> make_snapshot() {
  rf::Netlist net = build_netlist();
  net.run(2048, 500);
  return net.snapshot();
}

std::vector<std::uint8_t> make_checkpoint(const sim::ScenarioDeck& deck) {
  std::vector<sim::PointState> states(sim::expand_grid(deck).size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i].trials = 8 + i;
    states[i].bits = 1000 * (i + 1);
    states[i].errors = 3 * i;
    states[i].evm_err2 = 0.25 * static_cast<double>(i);
    states[i].evm_ref2 = 1.0;
    states[i].done = (i % 2) == 0;
  }
  return sim::save_checkpoint(deck, states);
}

/// Feed `bytes` to a decoder and demand the robustness contract:
/// clean success or StateError, nothing else.
template <typename Fn>
void expect_contained(const std::vector<std::uint8_t>& bytes, Fn&& decode,
                      const char* label) {
  try {
    decode(bytes);
  } catch (const StateError&) {
    // the documented failure mode
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": unexpected exception type: " << e.what();
  }
}

void decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  rf::Netlist net = build_netlist();
  net.restore(bytes);
}

struct CheckpointDecoder {
  const sim::ScenarioDeck& deck;
  void operator()(const std::vector<std::uint8_t>& bytes) const {
    std::vector<sim::PointState> states(sim::expand_grid(deck).size());
    sim::load_checkpoint(bytes, deck, states);
    // inspect_checkpoint shares the frame walk but not the deck check;
    // fuzz it on the same bytes.
    (void)sim::inspect_checkpoint(bytes);
  }
};

template <typename Fn>
void fuzz_blob(const std::vector<std::uint8_t>& valid, Fn&& decode,
               const char* label) {
  ASSERT_FALSE(valid.empty());

  // Every single-bit flip (strided when the blob is large, so the suite
  // stays fast while every byte position is still covered).
  const std::size_t bit_stride = valid.size() > 8192 ? 7 : 1;
  for (std::size_t bit = 0; bit < valid.size() * 8; bit += bit_stride) {
    std::vector<std::uint8_t> mutated = valid;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    expect_contained(mutated, decode, label);
  }

  // Every truncation length, including the empty blob.
  const std::size_t trunc_stride = valid.size() > 8192 ? 13 : 1;
  for (std::size_t len = 0; len < valid.size(); len += trunc_stride) {
    expect_contained({valid.begin(), valid.begin() + len}, decode, label);
  }

  // Trailing garbage MUST be rejected (finish()/done() contract): a
  // "valid plus appended bytes" blob is how a torn write that
  // concatenated two checkpoints would look.
  for (const std::size_t extra : {1, 8, 4096}) {
    std::vector<std::uint8_t> padded = valid;
    padded.insert(padded.end(), extra, 0xEE);
    EXPECT_THROW(decode(padded), StateError)
        << label << ": " << extra << " trailing bytes accepted";
  }

  // Seeded multi-byte corruptions: random runs overwritten with random
  // bytes, random splices of the blob into itself.
  Rng rng(0xF0220DDu);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t off = rng.uniform_int(mutated.size());
    const std::size_t len =
        1 + rng.uniform_int(std::min<std::size_t>(64, mutated.size() - off));
    for (std::size_t i = 0; i < len; ++i) {
      mutated[off + i] = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    expect_contained(mutated, decode, label);
  }
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t cut = rng.uniform_int(mutated.size());
    const std::size_t paste = rng.uniform_int(mutated.size());
    mutated.insert(mutated.begin() + paste, valid.begin(),
                   valid.begin() + cut);
    expect_contained(mutated, decode, label);
  }
}

TEST(StateFuzz, NetlistSnapshotSurvivesCorpus) {
  fuzz_blob(make_snapshot(), decode_snapshot, "OFDMSNAP");
}

TEST(StateFuzz, CampaignCheckpointSurvivesCorpus) {
  const sim::ScenarioDeck deck = sim::parse_deck(kDeckText);
  fuzz_blob(make_checkpoint(deck), CheckpointDecoder{deck}, "OFDMCAMP");
}

TEST(StateFuzz, ValidBlobsStillDecodeAfterHardening) {
  // The guard rails must not reject the happy path.
  decode_snapshot(make_snapshot());
  const sim::ScenarioDeck deck = sim::parse_deck(kDeckText);
  std::vector<sim::PointState> states(sim::expand_grid(deck).size());
  sim::load_checkpoint(make_checkpoint(deck), deck, states);
  EXPECT_EQ(states.size(), sim::expand_grid(deck).size());
  EXPECT_EQ(states[1].trials, 9u);
  const auto info = sim::inspect_checkpoint(make_checkpoint(deck));
  EXPECT_EQ(info.deck_digest, sim::deck_digest(deck));
  EXPECT_EQ(info.points, states.size());
}

TEST(StateFuzz, GiantLengthFieldsFailBeforeAllocating) {
  // A corrupt length prefix must surface as StateError from the
  // count() validation, not as a multi-gigabyte resize / bad_alloc /
  // overflowed bounds check.
  for (const std::uint64_t evil :
       {~0ull, ~0ull / 2, ~0ull / 8, 1ull << 56, 1ull << 40}) {
    StateWriter w;
    w.u64(evil);
    w.u8(0xAA);  // a token byte the giant length claims to cover

    StateReader rs(w.bytes());
    EXPECT_THROW((void)rs.str(), StateError) << evil;

    StateReader rc(w.bytes());
    cvec cv;
    EXPECT_THROW(rc.vec_c(cv), StateError) << evil;

    StateReader rr(w.bytes());
    rvec rv;
    EXPECT_THROW(rr.vec_r(rv), StateError) << evil;
  }
}

TEST(StateFuzz, OverreadInsideFrameNamesTheFrame) {
  StateWriter w;
  w.begin_node("pa[0]");
  w.u64(7);
  w.end_node();

  StateReader r(w.bytes());
  r.enter_node("pa[0]");
  (void)r.u64();
  try {
    (void)r.u64();  // past the frame payload
    FAIL() << "frame overread not detected";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("pa[0]"), std::string::npos)
        << e.what();
  }
}

TEST(StateFuzz, FinishRejectsLooseEnds) {
  StateWriter w;
  w.u64(1);
  w.u64(2);
  StateReader r(w.bytes());
  (void)r.u64();
  EXPECT_THROW(r.finish("test blob"), StateError);  // trailing bytes
  (void)r.u64();
  r.finish("test blob");  // fully consumed: clean
}

}  // namespace
}  // namespace ofdm
