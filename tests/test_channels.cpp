// Statistical validation of the standard channel-model library
// (src/rf/channels): Rayleigh envelope statistics and Gaussian Doppler
// spectrum width of the Watterson fading process, Rician K-factor
// recovery, the published ITU-R M.1225 / SUI tap tables, oscillator
// drift frequency trajectories, registry metadata and seeded
// bit-reproducibility. Every test runs under a fixed seed and asserts
// deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "rf/channels/cfo.hpp"
#include "rf/channels/doppler.hpp"
#include "rf/channels/registry.hpp"
#include "rf/channels/rician.hpp"
#include "rf/channels/tdl.hpp"
#include "rf/channels/watterson.hpp"

namespace ofdm::rf::channels {
namespace {

// Streams a constant-1 input through a flat (single-path, zero-delay)
// channel block, so the output IS the gain trajectory.
cvec gain_trajectory(Block& block, std::size_t n) {
  const cvec ones(n, cplx{1.0, 0.0});
  return block.process(ones);
}

// ---------------------------------------------------------------------
// Rayleigh envelope statistics of the Gaussian-Doppler process
// ---------------------------------------------------------------------

TEST(RayleighEnvelope, MomentRatioMatchesRayleigh) {
  // Single Watterson path = one Gaussian-Doppler Rayleigh process.
  // For a Rayleigh envelope r: E[r^2] / E[r]^2 = 4 / pi.
  WattersonChannel ch({{0, 1.0}}, 200.0, 2000.0, 71, 64);
  const cvec g = gain_trajectory(ch, 120000);
  double sum_r = 0.0;
  double sum_r2 = 0.0;
  for (const cplx& v : g) {
    const double r = std::abs(v);
    sum_r += r;
    sum_r2 += r * r;
  }
  const double n = static_cast<double>(g.size());
  const double ratio = (sum_r2 / n) / ((sum_r / n) * (sum_r / n));
  EXPECT_NEAR(ratio, 4.0 / kPi, 0.06);
  // Unit average power: the per-path normalization contract the
  // campaign's SNR definition relies on.
  EXPECT_NEAR(sum_r2 / n, 1.0, 0.08);
}

TEST(RayleighEnvelope, KolmogorovSmirnovAgainstRayleighCdf) {
  WattersonChannel ch({{0, 1.0}}, 200.0, 2000.0, 72, 64);
  const cvec g = gain_trajectory(ch, 120000);
  // Subsample well past the decorrelation time (~1/sigma_rad ≈ 3
  // samples here) so the KS statistic sees near-independent draws.
  rvec r;
  for (std::size_t i = 0; i < g.size(); i += 16) r.push_back(std::abs(g[i]));
  double p = 0.0;
  for (double v : r) p += v * v;
  p /= static_cast<double>(r.size());
  std::sort(r.begin(), r.end());
  double d = 0.0;
  const double n = static_cast<double>(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double cdf = 1.0 - std::exp(-r[i] * r[i] / p);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(cdf - lo), std::abs(hi - cdf)));
  }
  // 64 sinusoids per branch: close to Gaussian quadratures but not
  // exact, so the bound is looser than the 5% critical value.
  EXPECT_LT(d, 0.06);
}

// ---------------------------------------------------------------------
// Gaussian Doppler spectrum width
// ---------------------------------------------------------------------

TEST(GaussianDoppler, AutocorrelationRecoversSpectrumWidth) {
  // Gaussian Doppler spectrum of std sigma (rad/sample) has complex-
  // gain autocorrelation rho(m) = exp(-sigma^2 m^2 / 2); invert at one
  // lag to estimate sigma and compare with the width the realization
  // actually carries.
  const double sigma = 0.05;
  Rng rng(73);
  GaussianDopplerProcess proc(1.0, sigma, 256, rng);
  const std::size_t n = 50000;
  cvec g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = proc.gain();
    proc.advance();
  }
  const std::size_t lag = 20;  // expected rho ≈ exp(-0.5) ≈ 0.61
  cplx num{0.0, 0.0};
  double den = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += g[i + lag] * std::conj(g[i]);
    den += std::norm(g[i]);
  }
  const double rho = std::abs(num) / den;
  ASSERT_GT(rho, 0.0);
  ASSERT_LT(rho, 1.0);
  const double sigma_hat =
      std::sqrt(-2.0 * std::log(rho)) / static_cast<double>(lag);
  EXPECT_NEAR(sigma_hat, proc.realized_sigma_rad(),
              0.15 * proc.realized_sigma_rad());
  EXPECT_NEAR(proc.realized_sigma_rad(), sigma, 0.2 * sigma);
}

TEST(GaussianDoppler, WattersonPresetsCarryNominalSpread) {
  // The realized sum-of-sinusoids width must track the ITU nominal
  // spread for every CCIR condition (finite-realization tolerance:
  // 32 sinusoids drawn per path).
  for (CcirCondition c :
       {CcirCondition::kGood, CcirCondition::kModerate,
        CcirCondition::kPoor, CcirCondition::kFlutter}) {
    const WattersonPreset& p = watterson_preset(c);
    auto ch = make_watterson(c, 48e3, 2020);
    ASSERT_EQ(ch->n_paths(), 2u) << p.name;
    EXPECT_EQ(ch->doppler_spread_hz(), p.doppler_spread_hz) << p.name;
    for (std::size_t path = 0; path < 2; ++path) {
      EXPECT_NEAR(ch->realized_spread_hz(path), p.doppler_spread_hz,
                  0.4 * p.doppler_spread_hz)
          << p.name << " path " << path;
    }
  }
}

// ---------------------------------------------------------------------
// Watterson structure and CCIR preset table
// ---------------------------------------------------------------------

TEST(Watterson, CcirPresetTableMatchesItuR_F1487) {
  const struct {
    CcirCondition c;
    const char* name;
    double delay_ms;
    double spread_hz;
  } expected[] = {
      {CcirCondition::kGood, "ccir_good", 0.5, 0.1},
      {CcirCondition::kModerate, "ccir_moderate", 1.0, 0.5},
      {CcirCondition::kPoor, "ccir_poor", 2.0, 1.0},
      {CcirCondition::kFlutter, "ccir_flutter", 0.5, 10.0},
  };
  for (const auto& e : expected) {
    const WattersonPreset& p = watterson_preset(e.c);
    EXPECT_STREQ(p.name, e.name);
    EXPECT_EQ(p.delay_ms, e.delay_ms);
    EXPECT_EQ(p.doppler_spread_hz, e.spread_hz);
  }
}

TEST(Watterson, TwoPathImpulseResponseHasPresetDelay) {
  // ccir_poor at 48 kS/s: paths at 0 and round(2 ms * 48 kHz) = 96
  // samples. An impulse must come out on exactly those two taps.
  auto ch = make_watterson(CcirCondition::kPoor, 48e3, 11);
  cvec x(200, cplx{0.0, 0.0});
  x[0] = cplx{1.0, 0.0};
  const cvec y = ch->process(x);
  EXPECT_GT(std::abs(y[0]), 0.0);
  EXPECT_GT(std::abs(y[96]), 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (i == 0 || i == 96) continue;
    EXPECT_EQ(std::abs(y[i]), 0.0) << "unexpected energy at " << i;
  }
}

// ---------------------------------------------------------------------
// Rician K-factor recovery
// ---------------------------------------------------------------------

TEST(Rician, MomentEstimatorRecoversKFactor) {
  // With a static LOS line (los_doppler = 0), K = |E[g]|^2 / Var[g].
  for (double k : {1.0, 5.0, 10.0}) {
    RicianChannel ch(k, 200.0, 2000.0, 81, 0.0, 64);
    const cvec g = gain_trajectory(ch, 120000);
    cplx mean{0.0, 0.0};
    for (const cplx& v : g) mean += v;
    mean /= static_cast<double>(g.size());
    double var = 0.0;
    for (const cplx& v : g) var += std::norm(v - mean);
    var /= static_cast<double>(g.size());
    const double k_hat = std::norm(mean) / var;
    EXPECT_NEAR(k_hat, k, 0.3 * k) << "K = " << k;
    // Total power normalized to 1 regardless of K.
    double pwr = 0.0;
    for (const cplx& v : g) pwr += std::norm(v);
    EXPECT_NEAR(pwr / static_cast<double>(g.size()), 1.0, 0.1);
  }
}

// ---------------------------------------------------------------------
// Tapped-delay-line profile tables (published values)
// ---------------------------------------------------------------------

TEST(TdlProfiles, ItuPedestrianAndVehicularTables) {
  const TdlProfile& ped_a = tdl_profile("itu_ped_a");
  const double ped_a_delays[] = {0.0, 0.11, 0.19, 0.41};
  const double ped_a_powers[] = {0.0, -9.7, -19.2, -22.8};
  ASSERT_EQ(ped_a.taps.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ped_a.taps[i].delay_us, ped_a_delays[i]);
    EXPECT_EQ(ped_a.taps[i].power_db, ped_a_powers[i]);
    EXPECT_EQ(ped_a.taps[i].k_factor, 0.0);
  }

  const TdlProfile& veh_a = tdl_profile("itu_veh_a");
  const double veh_a_delays[] = {0.0, 0.31, 0.71, 1.09, 1.73, 2.51};
  const double veh_a_powers[] = {0.0, -1.0, -9.0, -10.0, -15.0, -20.0};
  ASSERT_EQ(veh_a.taps.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(veh_a.taps[i].delay_us, veh_a_delays[i]);
    EXPECT_EQ(veh_a.taps[i].power_db, veh_a_powers[i]);
  }
  EXPECT_EQ(veh_a.doppler_hz, 185.0);

  const TdlProfile& veh_b = tdl_profile("itu_veh_b");
  ASSERT_EQ(veh_b.taps.size(), 6u);
  EXPECT_EQ(veh_b.taps[0].power_db, -2.5);
  EXPECT_EQ(veh_b.taps[1].power_db, 0.0);  // strongest tap delayed
  EXPECT_EQ(tdl_delay_spread_us(veh_b), 20.0);
}

TEST(TdlProfiles, SuiTablesAndRicianFirstTaps) {
  // SUI-1..3 have Rician first taps (K = 4, 2, 1); SUI-4..6 are pure
  // Rayleigh. Delay spreads grow from 0.9 us (SUI-1) to 20 us (SUI-6).
  const struct {
    const char* name;
    double k0;
    double spread_us;
  } expected[] = {
      {"sui_1", 4.0, 0.9}, {"sui_2", 2.0, 1.1}, {"sui_3", 1.0, 0.9},
      {"sui_4", 0.0, 4.0}, {"sui_5", 0.0, 10.0}, {"sui_6", 0.0, 20.0},
  };
  for (const auto& e : expected) {
    const TdlProfile& p = tdl_profile(e.name);
    ASSERT_EQ(p.taps.size(), 3u) << e.name;
    EXPECT_EQ(p.taps[0].k_factor, e.k0) << e.name;
    EXPECT_EQ(tdl_delay_spread_us(p), e.spread_us) << e.name;
  }
  const TdlProfile& sui_3 = tdl_profile("sui_3");
  EXPECT_EQ(sui_3.taps[1].delay_us, 0.4);
  EXPECT_EQ(sui_3.taps[1].power_db, -5.0);
  EXPECT_EQ(sui_3.taps[2].delay_us, 0.9);
  EXPECT_EQ(sui_3.taps[2].power_db, -10.0);
}

TEST(TdlProfiles, UnknownProfileThrowsNamingIt) {
  EXPECT_EQ(find_tdl_profile("itu_ped_c"), nullptr);
  try {
    tdl_profile("itu_ped_c");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("itu_ped_c"), std::string::npos);
  }
}

TEST(TdlRealization, UnitPowerAndSampleGridPlacement) {
  // itu_veh_a at 20 MS/s: delays bin to samples {0, 6, 14, 22, 35, 50}.
  const cvec taps = tdl_realization(tdl_profile("itu_veh_a"), 20e6, 5);
  ASSERT_EQ(taps.size(), 51u);
  const std::size_t bins[] = {0, 6, 14, 22, 35, 50};
  double total = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const bool expected_nonzero =
        std::find(std::begin(bins), std::end(bins), i) != std::end(bins);
    EXPECT_EQ(std::abs(taps[i]) > 0.0, expected_nonzero) << "bin " << i;
    total += std::norm(taps[i]);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TdlRealization, SeededAndReproducible) {
  const TdlProfile& p = tdl_profile("sui_3");
  const cvec a = tdl_realization(p, 8e6, 101);
  const cvec b = tdl_realization(p, 8e6, 101);
  const cvec c = tdl_realization(p, 8e6, 102);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------
// Oscillator drift
// ---------------------------------------------------------------------

TEST(OscillatorDriftBlock, InstantaneousFrequencyRampsLinearly) {
  const double fs = 1e6;
  const double cfo = 200.0;
  const double drift = 100.0;
  OscillatorDrift ch(cfo, drift, fs);
  const std::size_t n = 500001;  // 0.5 s
  const cvec y = gain_trajectory(ch, n);
  auto inst_freq = [&](std::size_t i) {
    return std::arg(y[i + 1] * std::conj(y[i])) * fs / kTwoPi;
  };
  EXPECT_NEAR(inst_freq(0), cfo, 1e-3);
  EXPECT_NEAR(inst_freq(n - 2),
              cfo + drift * static_cast<double>(n - 2) / fs, 1e-3);
  // Pure phase rotation: modulus must stay exactly 1.
  for (std::size_t i = 0; i < n; i += 50000) {
    EXPECT_NEAR(std::abs(y[i]), 1.0, 1e-12);
  }
}

// ---------------------------------------------------------------------
// Registry: metadata, construction, reproducibility
// ---------------------------------------------------------------------

TEST(Registry, ListsAllFamilies) {
  EXPECT_EQ(presets().size(), 19u);  // 4 CCIR + 10 TDL + 3 Rician + 2 CFO
  const PresetInfo* poor = find_preset("ccir_poor");
  ASSERT_NE(poor, nullptr);
  EXPECT_EQ(poor->family, "watterson");
  EXPECT_EQ(poor->paths, 2u);
  EXPECT_EQ(poor->delay_spread_us, 2000.0);
  EXPECT_EQ(poor->doppler_hz, 1.0);
  EXPECT_TRUE(poor->time_varying);

  const PresetInfo* sui = find_preset("sui_3");
  ASSERT_NE(sui, nullptr);
  EXPECT_EQ(sui->family, "tdl");
  EXPECT_EQ(sui->paths, 3u);
  EXPECT_FALSE(sui->time_varying);

  ASSERT_NE(find_preset("rician_k10"), nullptr);
  ASSERT_NE(find_preset("cfo_drift"), nullptr);
  EXPECT_EQ(find_preset("rayleigh"), nullptr);
  EXPECT_NE(preset_names().find("itu_veh_a"), std::string::npos);
}

TEST(Registry, EveryPresetConstructsAndRunsFinite) {
  MakeOptions opts;
  opts.sample_rate = 1e6;
  opts.seed = 404;
  for (const PresetInfo& info : presets()) {
    auto block = make_preset(info.name, opts);
    ASSERT_NE(block, nullptr) << info.name;
    Rng rng(9);
    cvec x(512);
    for (cplx& v : x) v = rng.complex_gaussian(1.0);
    const cvec y = block->process(x);
    ASSERT_EQ(y.size(), x.size()) << info.name;
    for (const cplx& v : y) {
      ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()))
          << info.name;
    }
  }
}

TEST(Registry, SeededBitReproducibility) {
  Rng rng(10);
  cvec x(1024);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  MakeOptions opts;
  opts.sample_rate = 20e6;
  opts.seed = 555;
  for (const char* name : {"ccir_poor", "itu_veh_a", "sui_3",
                           "rician_k5", "cfo_drift"}) {
    const cvec a = make_preset(name, opts)->process(x);
    const cvec b = make_preset(name, opts)->process(x);
    EXPECT_EQ(a, b) << name;
    MakeOptions other = opts;
    other.seed = 556;
    const cvec c = make_preset(name, other)->process(x);
    if (std::string(name).rfind("cfo", 0) == 0) {
      EXPECT_EQ(a, c) << name << " (cfo presets are deterministic)";
    } else {
      EXPECT_NE(a, c) << name;
    }
  }
}

TEST(Registry, UnknownPresetAndBadOptionsThrow) {
  try {
    make_preset("itu_ped_c", {});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("itu_ped_c"), std::string::npos);
    EXPECT_NE(msg.find("ccir_good"), std::string::npos);  // lists known
  }
  MakeOptions bad;
  bad.doppler_scale = 0.0;
  EXPECT_THROW(make_preset("ccir_poor", bad), ConfigError);
  MakeOptions bad_fs;
  bad_fs.sample_rate = 0.0;
  EXPECT_THROW(make_preset("ccir_poor", bad_fs), ConfigError);
}

TEST(Registry, DopplerScaleSpeedsUpFading) {
  // Same seed, 10x Doppler scale: the scaled channel must decorrelate
  // faster (smaller lag-k autocorrelation of the gain process).
  MakeOptions slow;
  slow.sample_rate = 48e3;
  slow.seed = 77;
  MakeOptions fast = slow;
  fast.doppler_scale = 10.0;
  auto corr_at = [](Block& ch, std::size_t lag) {
    const cvec ones(20000, cplx{1.0, 0.0});
    const cvec g = ch.process(ones);
    cplx num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i + lag < g.size(); ++i) {
      num += g[i + lag] * std::conj(g[i]);
      den += std::norm(g[i]);
    }
    return std::abs(num) / den;
  };
  auto a = make_preset("ccir_flutter", slow);
  auto b = make_preset("ccir_flutter", fast);
  const std::size_t lag = 200;
  EXPECT_GT(corr_at(*a, lag), corr_at(*b, lag) + 0.05);
}

}  // namespace
}  // namespace ofdm::rf::channels
