// Property suite: the Mother Model must round-trip *any* valid
// configuration, not just the ten named standards. Each seed draws a
// random parameter set from the full reconfiguration space (geometry,
// tone plan, mapping kind, FEC, interleaving, windowing, framing),
// validates it, and requires a lossless loopback — the generalization
// of experiment E6 from ten points to the whole design space.
//
// A second property hardens the observability layer: for *any* randomly
// assembled RF chain, the attached probe counters must be mutually
// consistent — what block k emits is exactly what block k+1 consumes,
// chunk after chunk, rate changers included.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/tone_map.hpp"
#include "core/transmitter.hpp"
#include "random_params.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/channels/registry.hpp"
#include "rf/fading.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"
#include "rx/receiver.hpp"

namespace ofdm {
namespace {

using core::OfdmParams;
using test::random_params;

class RandomConfig : public ::testing::TestWithParam<int> {};

TEST_P(RandomConfig, ValidatesAndRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const OfdmParams params = random_params(rng);
  ASSERT_NO_THROW(core::validate(params)) << core::summarize(params);

  core::Transmitter tx(params);
  rx::Receiver rx(params);

  // recommended == 0 is legal (an RS block can exceed the configured
  // frame); modulate() then stretches the frame to fit.
  const std::size_t n_bits = std::clamp<std::size_t>(
      tx.recommended_payload_bits(), 200, 2000);
  const bitvec payload = rng.bits(n_bits);
  const auto burst = tx.modulate(payload);

  const auto result = rx.demodulate(burst.samples, payload.size());
  ASSERT_EQ(result.payload.size(), payload.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    errors += payload[i] != result.payload[i];
  }
  EXPECT_EQ(errors, 0u) << core::summarize(params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfig, ::testing::Range(0, 40));

/// One random block drawn from the whole RF library, rate changers
/// included.
std::unique_ptr<rf::Block> random_block(Rng& rng) {
  switch (rng.uniform_int(13)) {
    case 0: return std::make_unique<rf::Gain>(rng.uniform(-10.0, 10.0));
    case 1: return std::make_unique<rf::IqImbalance>(rng.uniform(0.0, 1.0),
                                                     rng.uniform(0.0, 5.0));
    case 2:
      return std::make_unique<rf::DcOffset>(
          cplx{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05)});
    case 3: return std::make_unique<rf::PhaseNoise>(
          rng.uniform(1.0, 200.0), 20e6, rng.next_u64() | 1u);
    case 4: return std::make_unique<rf::RappPa>(
          rng.uniform(1.0, 4.0), rng.uniform(0.5, 2.0));
    case 5: return std::make_unique<rf::SoftClipPa>(rng.uniform(0.5, 2.0));
    case 6: return std::make_unique<rf::MultipathChannel>(
          rf::exponential_pdp_taps(rng.uniform(1.0, 4.0),
                                   1 + rng.uniform_int(12),
                                   rng.next_u64() | 1u));
    case 7: return std::make_unique<rf::AwgnChannel>(
          rng.uniform(0.0, 1e-2), rng.next_u64() | 1u);
    case 8: return std::make_unique<rf::FrequencyShift>(
          rng.uniform(-5e6, 5e6), 20e6);
    case 9: return std::make_unique<rf::PowerMeter>();
    case 10:  // interpolating rate changer
      return std::make_unique<rf::Dac>(
          static_cast<unsigned>(8 + rng.uniform_int(5)),
          1 + rng.uniform_int(4));
    case 11: {  // random preset from the channel-model library
      const auto& presets = rf::channels::presets();
      rf::channels::MakeOptions opts;
      opts.sample_rate = 20e6;
      opts.seed = rng.next_u64() | 1u;
      return rf::channels::make_preset(
          presets[rng.uniform_int(presets.size())].name, opts);
    }
    default:  // decimating rate changer
      return std::make_unique<rf::DecimatorBlock>(1 + rng.uniform_int(4));
  }
}

class RandomChain : public ::testing::TestWithParam<int> {};

TEST_P(RandomChain, ProbeCountersAreSelfConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  rf::ToneSource source(rng.uniform(0.2e6, 5e6), 20e6,
                        rng.uniform(0.2, 1.0));
  rf::Chain chain;
  const std::size_t n_blocks = 1 + rng.uniform_int(8);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    chain.add_ptr(random_block(rng));
  }

  obs::ProbeSet probes;
  chain.attach_probes(probes);
  source.set_probe(&probes.add(source.name()));
  ASSERT_EQ(probes.size(), n_blocks + 1);
  const obs::BlockProbe& src_probe = probes.at(n_blocks);

  const std::size_t chunks = 2 + rng.uniform_int(6);
  const std::size_t chunk = 256 + 256 * rng.uniform_int(8);
  const rf::RunStats stats = rf::run(source, chain, chunks * chunk, chunk);

  // Source -> first block: every pulled sample enters the chain.
  EXPECT_EQ(src_probe.samples_out(), chunks * chunk);
  EXPECT_EQ(src_probe.samples_out(), probes.at(0).samples_in());

  // Block k -> block k+1: conservation across every link, whatever the
  // mix of 1:1 blocks and rate changers in between.
  for (std::size_t k = 0; k + 1 < n_blocks; ++k) {
    EXPECT_EQ(probes.at(k).samples_out(), probes.at(k + 1).samples_in())
        << "link " << k << " -> " << k + 1 << " of " << n_blocks;
  }

  // Every block saw every chunk, and the driver's own accounting agrees
  // with the probes at both ends of the chain.
  for (std::size_t k = 0; k < n_blocks; ++k) {
    EXPECT_EQ(probes.at(k).invocations(), chunks) << "block " << k;
  }
  EXPECT_EQ(stats.samples_in, src_probe.samples_out());
  EXPECT_EQ(probes.at(n_blocks - 1).samples_out(), stats.samples_out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChain, ::testing::Range(0, 25));

}  // namespace
}  // namespace ofdm
