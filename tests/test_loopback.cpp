// Integration tests: transmit -> receive loopback for every member of the
// standard family. A behavioural model and its inverse must round-trip
// payload bits losslessly over an ideal channel — this is experiment E6's
// pass criterion and the backbone of the whole verification strategy.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "rx/receiver.hpp"

namespace ofdm {
namespace {

using core::OfdmParams;
using core::Standard;

class FamilyLoopback : public ::testing::TestWithParam<Standard> {};

TEST_P(FamilyLoopback, NoiselessRoundTripIsLossless) {
  const OfdmParams params = core::profile_for(GetParam());
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  const std::size_t n_bits =
      std::min<std::size_t>(tx.recommended_payload_bits(), 4096);
  ASSERT_GT(n_bits, 0u);
  const bitvec payload = rng.bits(n_bits);

  const auto burst = tx.modulate(payload);
  ASSERT_FALSE(burst.samples.empty());

  const auto result = rx.demodulate(burst.samples, payload.size());
  ASSERT_EQ(result.payload.size(), payload.size());
  EXPECT_EQ(result.rs_blocks_failed, 0u);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    errors += payload[i] != result.payload[i];
  }
  EXPECT_EQ(errors, 0u) << "standard: " << core::standard_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStandards, FamilyLoopback,
    ::testing::ValuesIn(core::kStandardFamily),
    [](const ::testing::TestParamInfo<Standard>& info) {
      std::string name = core::standard_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Loopback across every 802.11a data rate (all modulation/coding pairs).
class WlanRateLoopback : public ::testing::TestWithParam<core::WlanRate> {};

TEST_P(WlanRateLoopback, NoiselessRoundTripIsLossless) {
  const OfdmParams params = core::profile_wlan_80211a(GetParam());
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(42);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);
  const auto result = rx.demodulate(burst.samples, payload.size());
  ASSERT_EQ(result.payload.size(), payload.size());
  EXPECT_EQ(result.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllRates, WlanRateLoopback,
    ::testing::Values(core::WlanRate::k6, core::WlanRate::k9,
                      core::WlanRate::k12, core::WlanRate::k18,
                      core::WlanRate::k24, core::WlanRate::k36,
                      core::WlanRate::k48, core::WlanRate::k54));

// DRM robustness modes exercise the non-power-of-two FFT path end-to-end.
class DrmModeLoopback : public ::testing::TestWithParam<core::DrmMode> {};

TEST_P(DrmModeLoopback, NoiselessRoundTripIsLossless) {
  const OfdmParams params = core::profile_drm(GetParam());
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(7);
  const bitvec payload =
      rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(), 4000));
  const auto burst = tx.modulate(payload);
  const auto result = rx.demodulate(burst.samples, payload.size());
  EXPECT_EQ(result.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(AllModes, DrmModeLoopback,
                         ::testing::Values(core::DrmMode::kA,
                                           core::DrmMode::kB,
                                           core::DrmMode::kC,
                                           core::DrmMode::kD));

// DAB transmission modes exercise the differential path at four sizes.
class DabModeLoopback : public ::testing::TestWithParam<core::DabMode> {};

TEST_P(DabModeLoopback, NoiselessRoundTripIsLossless) {
  core::OfdmParams params = core::profile_dab(GetParam());
  params.frame.symbols_per_frame = 8;  // keep runtime modest
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(9);
  const bitvec payload =
      rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(), 4000));
  const auto burst = tx.modulate(payload);
  const auto result = rx.demodulate(burst.samples, payload.size());
  EXPECT_EQ(result.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(AllModes, DabModeLoopback,
                         ::testing::Values(core::DabMode::kI,
                                           core::DabMode::kII,
                                           core::DabMode::kIII,
                                           core::DabMode::kIV));

// A flat complex channel gain must be transparent once the receiver
// equalizes from the burst's own training section.
TEST(EqualizedLoopback, FlatChannelGainIsRemoved) {
  const OfdmParams params = core::profile_wlan_80211a(core::WlanRate::k24);
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(3);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  auto burst = tx.modulate(payload);

  const cplx gain{0.4, -0.7};
  for (cplx& v : burst.samples) v *= gain;

  rx.set_equalizer(rx.estimate_equalizer(burst.samples));
  const auto result = rx.demodulate(burst.samples, payload.size());
  EXPECT_EQ(result.payload, payload);
}

TEST(EqualizedLoopback, PhaseReferenceStandardSurvivesFlatGain) {
  core::OfdmParams params = core::profile_dab(core::DabMode::kII);
  params.frame.symbols_per_frame = 6;
  core::Transmitter tx(params);
  rx::Receiver rx(params);

  Rng rng(4);
  const bitvec payload =
      rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(), 2000));
  auto burst = tx.modulate(payload);
  // Differential mapping needs no equalizer at all for a flat channel.
  const cplx gain{-0.3, 0.9};
  for (cplx& v : burst.samples) v *= gain;

  const auto result = rx.demodulate(burst.samples, payload.size());
  EXPECT_EQ(result.payload, payload);
}

}  // namespace
}  // namespace ofdm

namespace ofdm {
namespace {

TEST(SoftDecoding, NoiselessLoopbackStaysLossless) {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k36);
  core::Transmitter tx(params);
  rx::Receiver rx(params);
  rx.enable_soft_decoding(true);
  Rng rng(55);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);
  EXPECT_EQ(rx.demodulate(burst.samples, payload.size()).payload,
            payload);
}

TEST(SoftDecoding, PuncturedRatesAlsoRoundTrip) {
  for (core::WlanRate rate :
       {core::WlanRate::k9, core::WlanRate::k48, core::WlanRate::k54}) {
    const auto params = core::profile_wlan_80211a(rate);
    core::Transmitter tx(params);
    rx::Receiver rx(params);
    rx.enable_soft_decoding(true);
    Rng rng(56);
    const bitvec payload = rng.bits(tx.recommended_payload_bits());
    const auto burst = tx.modulate(payload);
    EXPECT_EQ(rx.demodulate(burst.samples, payload.size()).payload,
              payload);
  }
}

TEST(SoftDecoding, SilentlyKeepsHardPathWhereNotApplicable) {
  // DMT has no convolutional code: enabling soft decoding must not
  // change behaviour.
  const auto params = core::profile_adsl();
  core::Transmitter tx(params);
  rx::Receiver rx(params);
  rx.enable_soft_decoding(true);
  Rng rng(57);
  const bitvec payload =
      rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(), 3000));
  const auto burst = tx.modulate(payload);
  EXPECT_EQ(rx.demodulate(burst.samples, payload.size()).payload,
            payload);
}

}  // namespace
}  // namespace ofdm
