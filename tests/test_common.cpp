// Unit tests for the common foundation: bit utilities, deterministic RNG,
// numeric helpers and error reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/types.hpp"

namespace ofdm {
namespace {

TEST(Bits, BytesToBitsMsbOrdering) {
  const bytevec bytes = {0x1F};  // 00011111
  EXPECT_EQ(to_string(bytes_to_bits_msb(bytes)), "00011111");
}

TEST(Bits, BytesToBitsLsbOrdering) {
  const bytevec bytes = {0x1F};
  EXPECT_EQ(to_string(bytes_to_bits_lsb(bytes)), "11111000");
}

TEST(Bits, PackUnpackRoundTripMsb) {
  Rng rng(1);
  const bytevec bytes = rng.bytes(64);
  EXPECT_EQ(bits_to_bytes_msb(bytes_to_bits_msb(bytes)), bytes);
}

TEST(Bits, PackUnpackRoundTripLsb) {
  Rng rng(2);
  const bytevec bytes = rng.bytes(64);
  EXPECT_EQ(bits_to_bytes_lsb(bytes_to_bits_lsb(bytes)), bytes);
}

TEST(Bits, PackRejectsPartialBytes) {
  const bitvec bits(13, 1);
  EXPECT_THROW(bits_to_bytes_msb(bits), DimensionError);
}

TEST(Bits, UintRoundTrip) {
  bitvec bits;
  append_uint(bits, 0x2B3, 12);
  EXPECT_EQ(bits.size(), 12u);
  EXPECT_EQ(bits_to_uint(bits, 0, 12), 0x2B3u);
}

TEST(Bits, FromStringSkipsSeparators) {
  EXPECT_EQ(bits_from_string("10 11 0x1"), (bitvec{1, 0, 1, 1, 0, 1}));
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance(bitvec{1, 0, 1, 0}, bitvec{1, 1, 1, 1}), 2u);
  EXPECT_THROW(hamming_distance(bitvec{1}, bitvec{1, 0}), DimensionError);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(5);
  double p = 0.0;
  const int n = 50000;
  const double var = 2.5;
  for (int i = 0; i < n; ++i) p += std::norm(rng.complex_gaussian(var));
  EXPECT_NEAR(p / n, var, 0.1);
}

TEST(Rng, SubstreamIsPureFunctionOfCounters) {
  // The campaign engine derives each Monte-Carlo trial's stream from
  // (campaign_seed, point, trial) alone — no shared ancestor stream, so
  // the draw sequence cannot depend on scheduling order or thread
  // count. Constructing the same substream twice, in any order and
  // interleaved with other substreams, must reproduce the same bits.
  const std::uint64_t seed = 42;
  std::vector<std::uint64_t> forward;
  for (std::size_t point = 0; point < 3; ++point) {
    for (std::size_t trial = 0; trial < 4; ++trial) {
      forward.push_back(Rng::substream(seed, point, trial).next_u64());
    }
  }
  std::vector<std::uint64_t> backward;
  for (std::size_t point = 3; point-- > 0;) {
    for (std::size_t trial = 4; trial-- > 0;) {
      backward.push_back(Rng::substream(seed, point, trial).next_u64());
    }
  }
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]);
  }
}

TEST(Rng, SubstreamsAreDistinct) {
  // Neighbouring counters (the common case: trial i and i+1, point p
  // and p+1, and the classic seed/trial swap collision) must land in
  // different streams.
  std::set<std::uint64_t> first_draws;
  const std::uint64_t seed = 7;
  for (std::size_t point = 0; point < 8; ++point) {
    for (std::size_t trial = 0; trial < 8; ++trial) {
      first_draws.insert(Rng::substream(seed, point, trial).next_u64());
    }
  }
  EXPECT_EQ(first_draws.size(), 64u);
  EXPECT_NE(Rng::substream(7, 1, 2).next_u64(),
            Rng::substream(7, 2, 1).next_u64());
  EXPECT_NE(Rng::substream(1, 7, 2).next_u64(),
            Rng::substream(2, 7, 1).next_u64());
  EXPECT_NE(Rng::substream(8, 0, 0).next_u64(),
            Rng::substream(7, 0, 0).next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
  EXPECT_THROW(rng.uniform_int(0), ConfigError);
}

TEST(MathUtil, DbConversionsInverse) {
  EXPECT_NEAR(from_db(to_db(3.7)), 3.7, 1e-12);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_EQ(to_db(0.0), -400.0);
}

TEST(MathUtil, MeanAndPeakPower) {
  const cvec x = {{3.0, 4.0}, {0.0, 0.0}};  // |3+4j|^2 = 25
  EXPECT_NEAR(mean_power(x), 12.5, 1e-12);
  EXPECT_NEAR(peak_power(x), 25.0, 1e-12);
  EXPECT_NEAR(rms(x), std::sqrt(12.5), 1e-12);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(96));
}

TEST(MathUtil, Sinc) {
  EXPECT_NEAR(sinc(0.0), 1.0, 1e-12);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtil, NormalizePower) {
  cvec x = {{2.0, 0.0}, {0.0, 2.0}};
  normalize_power(x, 1.0);
  EXPECT_NEAR(mean_power(x), 1.0, 1e-12);
}

TEST(Rng, GaussianFillMatchesRepeatedScalarDraws) {
  // Same seed, one stream drawn one-at-a-time, one in odd-sized batch
  // fills — every double must match bit-for-bit, including the handoff
  // of the cached Box-Muller second value across batch boundaries.
  Rng scalar(123), batch(123);
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 17u}) {
    rvec got(n);
    batch.gaussian_fill(got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar.gaussian(), got[i]) << "n=" << n << " i=" << i;
    }
  }
  // Both generators must also end in the same raw state.
  EXPECT_EQ(scalar.next_u64(), batch.next_u64());
}

TEST(Rng, GaussianFillWithPreconsumedCache) {
  // A lone gaussian() leaves the sin half cached; the next batch fill
  // must emit that cached value first.
  Rng scalar(99), batch(99);
  EXPECT_EQ(scalar.gaussian(), batch.gaussian());
  rvec got(6);
  batch.gaussian_fill(got);
  for (double v : got) EXPECT_EQ(scalar.gaussian(), v);
}

TEST(Rng, ComplexGaussianFillMatchesScalarDraws) {
  Rng scalar(55), batch(55);
  for (std::size_t n : {1u, 3u, 4u, 9u}) {
    cvec got(n);
    batch.complex_gaussian_fill(got, 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar.complex_gaussian(0.5), got[i])
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Rng, SaveLoadWithHalfConsumedBoxMullerCache) {
  Rng rng(2026);
  (void)rng.gaussian();  // cache now holds the unconsumed sin value

  StateWriter w;
  rng.save(w);
  Rng restored(1);  // wrong seed: load must fully overwrite
  StateReader r(w.bytes());
  restored.load(r);

  // Continue both streams through scalar draws AND a batch fill: the
  // restored cache must feed the first value either way.
  EXPECT_EQ(rng.gaussian(), restored.gaussian());
  rvec a(5), b(5);
  rng.gaussian_fill(a);
  restored.gaussian_fill(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_EQ(rng.next_u64(), restored.next_u64());
}

TEST(Error, RequireMacroCarriesMessage) {
  try {
    OFDM_REQUIRE(false, "descriptive message");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("descriptive message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ofdm
