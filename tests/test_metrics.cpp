// Metrics tests: EVM, PAPR/CCDF, BER counters, spectral mask checking,
// ACPR and occupied bandwidth.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "metrics/ber.hpp"
#include "metrics/evm.hpp"
#include "metrics/mask.hpp"
#include "metrics/papr.hpp"

namespace ofdm::metrics {
namespace {

TEST(Evm, ZeroForIdenticalSignals) {
  Rng rng(1);
  cvec x(100);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  const EvmResult r = evm(x, x);
  EXPECT_EQ(r.rms, 0.0);
  EXPECT_EQ(r.peak, 0.0);
}

TEST(Evm, KnownErrorMagnitude) {
  // Reference: unit symbols; received: offset by 0.1 in I.
  const cvec ref(50, cplx{1.0, 0.0});
  cvec rx = ref;
  for (cplx& v : rx) v += cplx{0.1, 0.0};
  const EvmResult r = evm(rx, ref);
  EXPECT_NEAR(r.rms, 0.1, 1e-12);
  EXPECT_NEAR(r.rms_db(), -20.0, 1e-9);
  EXPECT_NEAR(r.rms_percent(), 10.0, 1e-9);
}

TEST(Evm, BlindMatchesDataAidedForSmallNoise) {
  const auto c = mapping::Constellation::make(mapping::Scheme::kQam16);
  Rng rng(2);
  cvec ref;
  cvec rx;
  for (int i = 0; i < 500; ++i) {
    const cplx p = c.point(rng.uniform_int(16));
    ref.push_back(p);
    rx.push_back(p + rng.complex_gaussian(0.001));
  }
  const EvmResult aided = evm(rx, ref);
  const EvmResult blind = evm_blind(rx, c);
  EXPECT_NEAR(blind.rms, aided.rms, 1e-6);
}

TEST(Papr, ConstantEnvelopeIsZeroDb) {
  cvec x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = kTwoPi * static_cast<double>(i) / 32.0;
    x[i] = {std::cos(a), std::sin(a)};
  }
  EXPECT_NEAR(papr_db(x), 0.0, 1e-9);
}

TEST(Papr, ImpulseHasLargePapr) {
  cvec x(100, cplx{0.0, 0.0});
  x[10] = {1.0, 0.0};
  EXPECT_NEAR(papr_db(x), to_db(100.0), 1e-9);
}

TEST(Papr, CcdfIsMonotoneNonIncreasing) {
  Rng rng(3);
  cvec x(80 * 200);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  const rvec thresholds = {2.0, 4.0, 6.0, 8.0, 10.0};
  const PaprCcdf ccdf = papr_ccdf(x, 80, thresholds);
  for (std::size_t i = 1; i < ccdf.probability.size(); ++i) {
    EXPECT_LE(ccdf.probability[i], ccdf.probability[i - 1]);
  }
  EXPECT_GT(ccdf.probability.front(), 0.5);  // gaussian exceeds 2 dB often
  EXPECT_LT(ccdf.probability.back(), 0.5);
}

TEST(Ber, CountsExactly) {
  const bitvec a = {0, 1, 1, 0, 1};
  const bitvec b = {0, 1, 0, 0, 0};
  const BerResult r = ber(a, b);
  EXPECT_EQ(r.bits, 5u);
  EXPECT_EQ(r.errors, 2u);
  EXPECT_NEAR(r.rate(), 0.4, 1e-12);
}

TEST(Ber, CounterAccumulates) {
  BerCounter counter;
  counter.add(bitvec{0, 0}, bitvec{0, 1});
  counter.add(bitvec{1, 1, 1}, bitvec{1, 1, 1});
  EXPECT_EQ(counter.result().bits, 5u);
  EXPECT_EQ(counter.result().errors, 1u);
}

TEST(Ber, ZeroBitsIsFlaggedNotNan) {
  const BerResult empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.rate(), 0.0);  // NaN-free by construction
  EXPECT_EQ(empty.ci_lo, 0.0);
  EXPECT_EQ(empty.ci_hi, 1.0);

  BerCounter counter;
  const BerResult r = counter.result();
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.rate(), r.rate());  // not NaN
}

TEST(Ber, WilsonIntervalMatchesPublishedValues) {
  // Wilson score interval for k = 1, n = 10 at 95%: the textbook
  // worked example gives [0.0179, 0.4041] (e.g. Brown, Cai & DasGupta
  // 2001, "Interval Estimation for a Binomial Proportion").
  const BinomialCi ci = binomial_ci(10, 1, 0.95);
  EXPECT_NEAR(ci.lo, 0.0179, 5e-4);
  EXPECT_NEAR(ci.hi, 0.4041, 5e-4);

  // k = 5, n = 50 at 95%: Wilson gives approximately [0.0433, 0.2140].
  const BinomialCi ci2 = binomial_ci(50, 5, 0.95);
  EXPECT_NEAR(ci2.lo, 0.0433, 5e-4);
  EXPECT_NEAR(ci2.hi, 0.2140, 5e-4);
}

TEST(Ber, ZeroErrorUsesExactClopperPearsonBound) {
  // k = 0: Wilson would understate; the exact CP upper bound is
  // 1 - (alpha/2)^(1/n). For n = 50 at 95% that is 0.07112...
  const BinomialCi ci = binomial_ci(50, 0, 0.95);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_NEAR(ci.hi, 1.0 - std::pow(0.025, 1.0 / 50.0), 1e-12);
  EXPECT_NEAR(ci.hi, 0.0711, 5e-4);
  EXPECT_GT(ci.width(), 0.0);  // never a zero-width "certain" interval

  // Mirror case k = n by symmetry: lo = (alpha/2)^(1/n).
  const BinomialCi all = binomial_ci(50, 50, 0.95);
  EXPECT_NEAR(all.lo, std::pow(0.025, 1.0 / 50.0), 1e-12);
  EXPECT_EQ(all.hi, 1.0);

  // bits == 0 stays vacuous.
  const BinomialCi vac = binomial_ci(0, 0, 0.95);
  EXPECT_EQ(vac.lo, 0.0);
  EXPECT_EQ(vac.hi, 1.0);
}

TEST(Ber, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile_two_sided(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile_two_sided(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(normal_quantile_two_sided(0.6827), 1.0, 1e-3);
}

TEST(Ber, ResultCarriesConfidenceInterval) {
  BerCounter counter;
  counter.add_counts(10, 1);
  const BerResult r = counter.result();
  EXPECT_TRUE(r.valid());
  EXPECT_NEAR(r.ci_lo, 0.0179, 5e-4);
  EXPECT_NEAR(r.ci_hi, 0.4041, 5e-4);
  EXPECT_LE(r.ci_lo, r.rate());
  EXPECT_GE(r.ci_hi, r.rate());
}

TEST(Mask, LimitInterpolatesBetweenBreakpoints) {
  const SpectralMask mask = wlan_mask();
  EXPECT_EQ(mask.limit_at(0.0), 0.0);
  EXPECT_EQ(mask.limit_at(5e6), 0.0);
  EXPECT_NEAR(mask.limit_at(10e6), -10.0, 1e-9);  // halfway 9->11 MHz
  EXPECT_EQ(mask.limit_at(40e6), -40.0);          // clamped beyond 30 MHz
  EXPECT_EQ(mask.limit_at(-10e6), mask.limit_at(10e6));  // symmetric
}

TEST(Mask, CleanInBandSignalPasses) {
  // Synthetic PSD: flat in |f|<8 MHz, -50 dBr outside.
  dsp::Psd psd;
  const double fs = 80e6;
  const std::size_t n = 512;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = (static_cast<double>(i) - 256.0) * fs /
                     static_cast<double>(n);
    psd.freq.push_back(f);
    psd.power.push_back(std::abs(f) < 8e6 ? 1.0 : 1e-5);
  }
  const MaskReport report = check_mask(psd, wlan_mask(), 8e6);
  EXPECT_TRUE(report.pass);
  // The flat in-band top touches the 0 dBr limit exactly.
  EXPECT_GE(report.worst_margin_db, 0.0);
}

TEST(Mask, ShoulderViolationIsFlaggedAtTheRightOffset) {
  dsp::Psd psd;
  const double fs = 80e6;
  const std::size_t n = 512;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = (static_cast<double>(i) - 256.0) * fs /
                     static_cast<double>(n);
    psd.freq.push_back(f);
    double p = std::abs(f) < 8e6 ? 1.0 : 1e-5;
    if (f > 14e6 && f < 16e6) p = 0.1;  // -10 dBr where -24 dBr is allowed
    psd.power.push_back(p);
  }
  const MaskReport report = check_mask(psd, wlan_mask(), 8e6);
  EXPECT_FALSE(report.pass);
  EXPECT_LT(report.worst_margin_db, 0.0);
  EXPECT_GT(report.worst_offset_hz, 13e6);
  EXPECT_LT(report.worst_offset_hz, 17e6);
}

TEST(Mask, AcprOfBandlimitedSignal) {
  dsp::Psd psd;
  const double fs = 100e6;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = (static_cast<double>(i) - 500.0) * fs /
                     static_cast<double>(n);
    psd.freq.push_back(f);
    psd.power.push_back(std::abs(f) < 10e6 ? 1.0 : 0.001);
  }
  // Adjacent channel at 20 MHz offset: 1000x below main -> -30 dB.
  EXPECT_NEAR(acpr_db(psd, 20e6, 20e6), -30.0, 0.5);
}

TEST(Mask, OccupiedBandwidthOfFlatBand) {
  dsp::Psd psd;
  const double fs = 10e6;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = (static_cast<double>(i) - 500.0) * fs /
                     static_cast<double>(n);
    psd.freq.push_back(f);
    psd.power.push_back(std::abs(f) < 1e6 ? 1.0 : 0.0);
  }
  EXPECT_NEAR(occupied_bandwidth_hz(psd, 0.99), 2e6, 0.1e6);
}

}  // namespace
}  // namespace ofdm::metrics
