// Acquisition receiver tests: packet detection, timing, CFO recovery
// and full decoding of bursts at unknown offsets with realistic
// impairments — the end-to-end realism layer on top of the generic
// reference receiver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/preamble.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "rf/channel.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rx/wlan_rx.hpp"

namespace ofdm {
namespace {

struct Scenario {
  cvec stream;
  bitvec payload;
  std::size_t true_start;
  core::OfdmParams params;
};

Scenario make_scenario(core::WlanRate rate, std::size_t lead_in,
                       double cfo_hz, double snr_db,
                       std::uint64_t seed) {
  Scenario sc;
  sc.params = core::profile_wlan_80211a(rate);
  core::Transmitter tx(sc.params);
  Rng rng(seed);
  sc.payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(sc.payload);

  sc.true_start = lead_in;
  sc.stream.assign(lead_in, cplx{0.0, 0.0});
  sc.stream.insert(sc.stream.end(), burst.samples.begin(),
                   burst.samples.end());
  sc.stream.insert(sc.stream.end(), 200, cplx{0.0, 0.0});

  // Apply CFO.
  if (cfo_hz != 0.0) {
    for (std::size_t i = 0; i < sc.stream.size(); ++i) {
      const double a = kTwoPi * cfo_hz * static_cast<double>(i) / 20e6;
      sc.stream[i] *= cplx{std::cos(a), std::sin(a)};
    }
  }
  // Noise at the given SNR relative to unit burst power.
  if (snr_db < 200.0) {
    rf::AwgnChannel noise(rf::snr_to_noise_power(1.0, snr_db),
                          seed + 1);
    sc.stream = noise.process(sc.stream);
  }
  return sc;
}

TEST(WlanRx, DetectsAndDecodesCleanBurstAtOffset) {
  const Scenario sc =
      make_scenario(core::WlanRate::k24, 777, 0.0, 999.0, 1);
  rx::WlanPacketReceiver rx(sc.params);
  const auto result = rx.receive(sc.stream, sc.payload.size());
  ASSERT_TRUE(result.detected);
  EXPECT_NEAR(static_cast<double>(result.burst_start),
              static_cast<double>(sc.true_start), 3.0);
  EXPECT_EQ(metrics::ber(sc.payload, result.payload).errors, 0u);
}

TEST(WlanRx, NoDetectionOnNoiseOnly) {
  Rng rng(2);
  cvec noise(4000);
  for (cplx& v : noise) v = rng.complex_gaussian(1.0);
  rx::WlanPacketReceiver rx(core::profile_wlan_80211a());
  const auto result = rx.receive(noise, 100);
  EXPECT_FALSE(result.detected);
}

class WlanRxCfo : public ::testing::TestWithParam<double> {};

TEST_P(WlanRxCfo, RecoversCfoAndDecodes) {
  const double cfo = GetParam();
  const Scenario sc =
      make_scenario(core::WlanRate::k12, 300, cfo, 30.0, 3);
  rx::WlanPacketReceiver rx(sc.params);
  const auto result = rx.receive(sc.stream, sc.payload.size());
  ASSERT_TRUE(result.detected);
  EXPECT_NEAR(result.coarse_cfo_hz + result.fine_cfo_hz, cfo,
              3e3);  // within 1% of subcarrier spacing
  EXPECT_EQ(metrics::ber(sc.payload, result.payload).errors, 0u)
      << "cfo " << cfo;
}

// 802.11a requires +-20 ppm oscillators: +-100 kHz at 5 GHz; test to
// +-200 kHz (40 ppm, both signs).
INSTANTIATE_TEST_SUITE_P(Offsets, WlanRxCfo,
                         ::testing::Values(-200e3, -50e3, -5e3, 5e3,
                                           80e3, 200e3));

TEST(WlanRx, SurvivesMultipathAndNoise) {
  Scenario sc = make_scenario(core::WlanRate::k12, 500, 30e3, 25.0, 4);
  rf::MultipathChannel ch(cvec{cplx{0.9, 0.1}, cplx{0.0, 0.0},
                               cplx{0.25, -0.1}, cplx{0.1, 0.05}});
  sc.stream = ch.process(sc.stream);

  rx::WlanPacketReceiver rx(sc.params);
  const auto result = rx.receive(sc.stream, sc.payload.size());
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(metrics::ber(sc.payload, result.payload).errors, 0u);
}

TEST(WlanRx, PilotTrackingAbsorbsPhaseNoise) {
  Scenario sc =
      make_scenario(core::WlanRate::k12, 400, 0.0, 35.0, 5);
  rf::PhaseNoise pn(200.0, 20e6, 9);  // 200 Hz linewidth oscillator
  sc.stream = pn.process(sc.stream);

  rx::WlanPacketReceiver rx(sc.params);
  const auto result = rx.receive(sc.stream, sc.payload.size());
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(metrics::ber(sc.payload, result.payload).errors, 0u);
}

TEST(WlanRx, ChannelEstimateMatchesAppliedChannel) {
  Scenario sc =
      make_scenario(core::WlanRate::k12, 250, 0.0, 999.0, 6);
  const cplx gain{0.6, -0.5};
  for (cplx& v : sc.stream) v *= gain;

  rx::WlanPacketReceiver rx(sc.params);
  const auto result = rx.receive(sc.stream, sc.payload.size());
  ASSERT_TRUE(result.detected);
  // Estimated channel on used bins ~ the applied flat gain.
  const cvec known = core::wlan_ltf_bins();
  for (std::size_t bin = 0; bin < 64; ++bin) {
    if (std::abs(known[bin]) == 0.0) continue;
    EXPECT_NEAR(std::abs(result.channel[bin] - gain), 0.0, 0.05)
        << "bin " << bin;
  }
}

TEST(WlanRx, RejectsNonWlanProfile) {
  EXPECT_THROW(rx::WlanPacketReceiver(core::profile_dab()), Error);
}

}  // namespace
}  // namespace ofdm
