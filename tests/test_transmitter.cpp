// Mother Model (Transmitter) tests: burst structure, payload sizing,
// the reconfiguration API, and frame bookkeeping.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"

namespace ofdm::core {
namespace {

TEST(Transmitter, UnconfiguredThrows) {
  Transmitter tx;
  EXPECT_FALSE(tx.configured());
  EXPECT_THROW(tx.params(), ConfigError);
  EXPECT_THROW(tx.modulate(bitvec{1, 0, 1}), ConfigError);
}

TEST(Transmitter, BurstLengthMatchesStructure) {
  const OfdmParams p = profile_wlan_80211a();
  Transmitter tx(p);
  Rng rng(1);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);
  EXPECT_EQ(burst.preamble_samples, 320u);
  EXPECT_EQ(burst.data_symbols, p.frame.symbols_per_frame);
  // 320 preamble + symbols * 80, plus the trailing window ramp.
  EXPECT_EQ(burst.samples.size(),
            320 + burst.data_symbols * p.symbol_len() + p.window_ramp);
}

TEST(Transmitter, RecommendedPayloadFillsFrameExactly) {
  for (Standard s : kStandardFamily) {
    Transmitter tx(profile_for(s));
    const std::size_t n = tx.recommended_payload_bits();
    ASSERT_GT(n, 0u) << standard_name(s);
    EXPECT_EQ(tx.coded_length(n),
              tx.params().frame.symbols_per_frame * tx.bits_per_symbol())
        << standard_name(s);
    // One more bit must not fit.
    EXPECT_GT(tx.coded_length(n + 1),
              tx.params().frame.symbols_per_frame * tx.bits_per_symbol())
        << standard_name(s);
  }
}

TEST(Transmitter, WlanPayloadArithmetic) {
  // BPSK rate-1/2: 24 data bits/symbol, minus 6 tail bits.
  Transmitter tx(profile_wlan_80211a(WlanRate::k6));
  EXPECT_EQ(tx.bits_per_symbol(), 48u);
  EXPECT_EQ(tx.recommended_payload_bits(), 10 * 24 - 6);
}

TEST(Transmitter, OversizedPayloadStretchesTheFrame) {
  Transmitter tx(profile_wlan_80211a(WlanRate::k12));
  Rng rng(2);
  const std::size_t rec = tx.recommended_payload_bits();
  const auto burst = tx.modulate(rng.bits(3 * rec));
  EXPECT_GT(burst.data_symbols, tx.params().frame.symbols_per_frame);
  EXPECT_EQ(burst.coded_bits % tx.bits_per_symbol(), 0u);
}

TEST(Transmitter, EmptyPayloadStillProducesAFrame) {
  Transmitter tx(profile_wlan_80211a());
  const auto burst = tx.modulate({});
  EXPECT_EQ(burst.data_symbols, tx.params().frame.symbols_per_frame);
  EXPECT_GT(burst.samples.size(), 0u);
}

TEST(Transmitter, OutputPowerIsNormalized) {
  Rng rng(3);
  for (Standard s : {Standard::kWlan80211a, Standard::kDvbT,
                     Standard::kAdsl, Standard::kDab}) {
    Transmitter tx(profile_for(s));
    const auto burst = tx.modulate(
        rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(),
                                       4000)));
    // Null symbols dilute the average; measure after the null section.
    const auto body = std::span<const cplx>(burst.samples)
                          .subspan(burst.null_samples);
    EXPECT_NEAR(mean_power(body), 1.0, 0.2) << standard_name(s);
  }
}

TEST(Transmitter, ReconfigurationReusesTheInstance) {
  // The paper's core workflow: one Mother Model object, reconfigured
  // through the family.
  Transmitter tx;
  Rng rng(4);
  for (Standard s : kStandardFamily) {
    tx.configure(profile_for(s));
    EXPECT_EQ(tx.params().standard, s);
    const auto burst = tx.modulate(
        rng.bits(std::min<std::size_t>(tx.recommended_payload_bits(),
                                       1000)));
    EXPECT_GT(burst.samples.size(), 0u) << standard_name(s);
  }
}

TEST(Transmitter, FailedReconfigurationKeepsOldConfig) {
  Transmitter tx(profile_wlan_80211a());
  OfdmParams bad = profile_wlan_80211a();
  bad.tone_map.clear();  // invalid
  EXPECT_THROW(tx.configure(bad), ConfigError);
  EXPECT_EQ(tx.params().standard, Standard::kWlan80211a);
  // Still functional.
  Rng rng(5);
  EXPECT_NO_THROW(tx.modulate(rng.bits(100)));
}

TEST(Transmitter, IdenticalPayloadGivesIdenticalBurst) {
  Transmitter tx(profile_wlan_80211a());
  Rng rng(6);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto a = tx.modulate(payload);
  const auto b = tx.modulate(payload);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  EXPECT_LT(max_abs_error(a.samples, b.samples), 1e-15);
}

TEST(Transmitter, DabBurstStartsWithNullSymbol) {
  OfdmParams p = profile_dab(DabMode::kII);
  p.frame.symbols_per_frame = 4;
  Transmitter tx(p);
  Rng rng(7);
  const auto burst = tx.modulate(rng.bits(500));
  EXPECT_EQ(burst.null_samples, p.frame.null_samples);
  for (std::size_t i = 0; i < burst.null_samples; ++i) {
    EXPECT_EQ(std::abs(burst.samples[i]), 0.0);
  }
  EXPECT_EQ(burst.preamble_samples, p.symbol_len());  // phase reference
}

TEST(Transmitter, EncodePayloadMatchesCodedLength) {
  Rng rng(8);
  for (Standard s : {Standard::kWlan80211a, Standard::kDvbT,
                     Standard::kWman80216a}) {
    Transmitter tx(profile_for(s));
    for (std::size_t bits : {std::size_t{0}, std::size_t{1},
                             std::size_t{100}, std::size_t{1001}}) {
      const bitvec payload = rng.bits(bits);
      EXPECT_EQ(tx.encode_payload(payload).size(), tx.coded_length(bits))
          << standard_name(s) << " @ " << bits;
    }
  }
}

TEST(Transmitter, PreambleSamplesMatchBurstHead) {
  Transmitter tx(profile_wlan_80211a());
  Rng rng(9);
  const auto burst = tx.modulate(rng.bits(200));
  const cvec pre = tx.preamble_samples();
  ASSERT_EQ(pre.size(), burst.preamble_samples);
  for (std::size_t i = 0; i < pre.size(); ++i) {
    EXPECT_NEAR(std::abs(pre[i] - burst.samples[i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace ofdm::core
