// Differential mapper tests: round trips for all kinds, rotation
// invariance (the property DAB/HomePlug rely on), and the pi/4 grid
// structure.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mapping/differential.hpp"

namespace ofdm::mapping {
namespace {

class AllDiffKinds : public ::testing::TestWithParam<DiffKind> {};

TEST_P(AllDiffKinds, RoundTripOverManySymbols) {
  const std::size_t carriers = 48;
  DifferentialMapper tx(GetParam(), carriers);
  DifferentialMapper rx(GetParam(), carriers);
  Rng rng(91);
  for (int sym = 0; sym < 20; ++sym) {
    const bitvec bits = rng.bits(tx.bits_per_ofdm_symbol());
    const cvec mapped = tx.map_symbol(bits);
    EXPECT_EQ(rx.demap_symbol(mapped), bits) << "symbol " << sym;
  }
}

TEST_P(AllDiffKinds, FlatRotationIsTransparent) {
  // A static phase rotation (carrier phase offset) must not disturb a
  // differential link at all — the reason DAB needs no equalizer here.
  const std::size_t carriers = 16;
  DifferentialMapper tx(GetParam(), carriers);
  DifferentialMapper rx(GetParam(), carriers);
  const cplx rot{std::cos(1.234), std::sin(1.234)};

  // The receiver's first reference must also be the rotated one.
  cvec ref(carriers, cplx{1.0, 0.0});
  for (cplx& v : ref) v *= rot;
  rx.reset(ref);

  Rng rng(92);
  for (int sym = 0; sym < 10; ++sym) {
    const bitvec bits = rng.bits(tx.bits_per_ofdm_symbol());
    cvec mapped = tx.map_symbol(bits);
    for (cplx& v : mapped) v *= rot;
    EXPECT_EQ(rx.demap_symbol(mapped), bits);
  }
}

INSTANTIATE_TEST_SUITE_P(All, AllDiffKinds,
                         ::testing::Values(DiffKind::kDbpsk,
                                           DiffKind::kDqpsk,
                                           DiffKind::kPi4Dqpsk));

TEST(Differential, DbpskPhases) {
  DifferentialMapper m(DiffKind::kDbpsk, 1);
  const cvec s0 = m.map_symbol(bitvec{0});
  EXPECT_NEAR(s0[0].real(), 1.0, 1e-12);  // no phase change
  const cvec s1 = m.map_symbol(bitvec{1});
  EXPECT_NEAR(s1[0].real(), -1.0, 1e-12);  // pi flip
}

TEST(Differential, DqpskGrayIncrements) {
  DifferentialMapper m(DiffKind::kDqpsk, 1);
  // 01 -> +pi/2 from the (1,0) reference.
  const cvec s = m.map_symbol(bitvec{0, 1});
  EXPECT_NEAR(s[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(s[0].imag(), 1.0, 1e-12);
}

TEST(Differential, Pi4AlternatesBetweenGrids) {
  // pi/4-DQPSK: odd transmissions land on the 45-degree-rotated QPSK
  // grid, even ones back on the cardinal grid.
  DifferentialMapper m(DiffKind::kPi4Dqpsk, 1);
  Rng rng(93);
  for (int sym = 0; sym < 8; ++sym) {
    const cvec s = m.map_symbol(rng.bits(2));
    const double phase = std::arg(s[0]);
    const long n = std::lround(phase / (kPi / 4.0));
    EXPECT_NEAR(phase, static_cast<double>(n) * kPi / 4.0, 1e-9);
    const bool odd_grid = (std::abs(n) % 2) == 1;
    EXPECT_EQ(odd_grid, sym % 2 == 0) << "symbol " << sym;
  }
}

TEST(Differential, UnitModulusAlways) {
  DifferentialMapper m(DiffKind::kPi4Dqpsk, 4);
  Rng rng(94);
  for (int sym = 0; sym < 50; ++sym) {
    for (const cplx& v : m.map_symbol(rng.bits(8))) {
      EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    }
  }
}

TEST(Differential, ResetRestoresReference) {
  DifferentialMapper m(DiffKind::kDqpsk, 2);
  Rng rng(95);
  const bitvec bits = rng.bits(4);
  const cvec first = m.map_symbol(bits);
  m.reset();
  const cvec again = m.map_symbol(bits);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(std::abs(first[i] - again[i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace ofdm::mapping
