// Edge-case net for the streaming datapath: every block — and the
// Chain/Netlist drivers around them — must accept a zero-length input
// span and a single sample, and chunking a leading empty call must not
// disturb the stream (no state advances on nothing).
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "dsp/fir.hpp"
#include "dsp/resample.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/fading.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/papr_reduction.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

/// Every block the RF library exposes, fresh per call.
std::vector<std::unique_ptr<Block>> all_blocks() {
  std::vector<std::unique_ptr<Block>> blocks;
  blocks.push_back(std::make_unique<Gain>(-3.0));
  blocks.push_back(std::make_unique<IqImbalance>(0.4, 2.0));
  blocks.push_back(std::make_unique<DcOffset>(cplx{0.01, -0.02}));
  blocks.push_back(std::make_unique<PhaseNoise>(50.0, 20e6));
  blocks.push_back(std::make_unique<RappPa>(2.0, 1.0));
  blocks.push_back(std::make_unique<SalehPa>(2.0, 1.0, 1.0, 1.0));
  blocks.push_back(std::make_unique<SoftClipPa>(0.9));
  blocks.push_back(
      std::make_unique<MultipathChannel>(exponential_pdp_taps(2.0, 8, 1)));
  blocks.push_back(std::make_unique<AwgnChannel>(1e-4));
  blocks.push_back(std::make_unique<FadingChannel>(
      std::vector<FadingTap>{{0, 1.0}, {3, 0.3}}, 50.0, 1e6, 9));
  blocks.push_back(std::make_unique<ImpulseNoise>(0.01, 4.0, 1.0));
  blocks.push_back(std::make_unique<Dac>(10, 4));
  blocks.push_back(std::make_unique<FrequencyShift>(1e6, 20e6));
  blocks.push_back(std::make_unique<DecimatorBlock>(4));
  blocks.push_back(std::make_unique<ClipAndFilter>(6.0, 0.2, 1, 31));
  blocks.push_back(std::make_unique<PowerMeter>());
  blocks.push_back(std::make_unique<Capture>(1024));
  return blocks;
}

TEST(EmptyInput, EveryBlockAcceptsAnEmptySpan) {
  for (auto& block : all_blocks()) {
    cvec out{cplx{9.0, 9.0}};  // pre-filled: must come back empty
    ASSERT_NO_THROW(block->process({}, out)) << block->name();
    EXPECT_TRUE(out.empty()) << block->name();
  }
}

TEST(EmptyInput, EveryBlockAcceptsASingleSample) {
  for (auto& block : all_blocks()) {
    const cvec in{cplx{0.3, -0.4}};
    cvec out;
    ASSERT_NO_THROW(block->process(in, out)) << block->name();
    // 1:1 blocks produce one sample; rate changers may produce 0 or
    // factor-many, but never garbage sizes.
    EXPECT_LE(out.size(), 8u) << block->name();
  }
}

TEST(EmptyInput, EmptyCallDoesNotAdvanceStreamingState) {
  // For stateful blocks an interleaved empty chunk must be invisible:
  // process(x) == process({}) then process(x).
  const cvec in = {cplx{0.5, 0.1}, cplx{-0.2, 0.3}, cplx{0.7, -0.7},
                   cplx{0.0, 0.4}};
  auto plain = all_blocks();
  auto gapped = all_blocks();
  for (std::size_t b = 0; b < plain.size(); ++b) {
    cvec out_plain, out_gapped, empty_out;
    plain[b]->process(in, out_plain);
    gapped[b]->process({}, empty_out);
    gapped[b]->process(in, out_gapped);
    ASSERT_EQ(out_plain.size(), out_gapped.size()) << plain[b]->name();
    for (std::size_t i = 0; i < out_plain.size(); ++i) {
      EXPECT_EQ(out_plain[i], out_gapped[i])
          << plain[b]->name() << " sample " << i;
    }
  }
}

TEST(EmptyInput, RateChangersHandleEmptyAndSingleSamples) {
  dsp::Interpolator interp(4);
  dsp::Decimator dec(4);
  dsp::FirFilter fir(dsp::design_lowpass(0.2, 31));
  cvec out;

  interp.process({}, out);
  EXPECT_TRUE(out.empty());
  dec.process({}, out);
  EXPECT_TRUE(out.empty());
  cvec fir_out;
  fir.process({}, fir_out);
  EXPECT_TRUE(fir_out.empty());

  const cvec one{cplx{1.0, 0.0}};
  interp.process(one, out);
  EXPECT_EQ(out.size(), 4u);
  dec.reset();
  // Feeding one sample at a time: 4 singles produce exactly 1 output.
  std::size_t produced = 0;
  for (int i = 0; i < 4; ++i) {
    dec.process(one, out);
    produced += out.size();
  }
  EXPECT_EQ(produced, 1u);
}

TEST(EmptyInput, ChainPropagatesEmptyThroughRateChangers) {
  Chain chain;
  chain.add<Dac>(10, 4);
  chain.add<FrequencyShift>(2e6, 80e6);
  chain.add<DecimatorBlock>(4);
  cvec out;
  ASSERT_NO_THROW(chain.process({}, out));
  EXPECT_TRUE(out.empty());

  // And an empty chain passes the empty span through.
  Chain empty_chain;
  ASSERT_NO_THROW(empty_chain.process({}, out));
  EXPECT_TRUE(out.empty());
}

TEST(EmptyInput, RunWithZeroTotalIsANoOp) {
  ToneSource source(1e6, 20e6, 0.5);
  Chain chain;
  chain.add<Gain>(0.0);
  const RunStats stats = run(source, chain, 0);
  EXPECT_EQ(stats.samples_in, 0u);
  EXPECT_EQ(stats.samples_out, 0u);
}

TEST(EmptyInput, ZeroChunkIsRejectedNotAnInfiniteLoop) {
  ToneSource source(1e6, 20e6, 0.5);
  Chain chain;
  chain.add<Gain>(0.0);
  EXPECT_THROW(run(source, chain, 1024, 0), ConfigError);

  Netlist net;
  const auto src = net.add_source<ToneSource>(1e6, 20e6, 0.5);
  const auto g = net.add_block<Gain>(0.0);
  net.connect(src, g);
  EXPECT_THROW(net.run(1024, 0), ConfigError);
  EXPECT_NO_THROW(net.run(0, 0));  // nothing requested, nothing looped
}

TEST(EmptyInput, NetlistZeroTotalIsANoOp) {
  Netlist net;
  const auto src = net.add_source<ToneSource>(1e6, 20e6, 0.5);
  const auto g = net.add_block<Gain>(0.0);
  net.connect(src, g);
  const RunStats stats = net.run(0);
  EXPECT_EQ(stats.samples_in, 0u);
}

TEST(EmptyInput, ClipAndFilterEmptyBurstIsStable) {
  ClipAndFilter caf(6.0, 0.2, 2, 31);
  cvec out;
  ASSERT_NO_THROW(caf.process({}, out));
  EXPECT_TRUE(out.empty());
  // All-zero burst: average power 0 -> pass-through, not NaN.
  const cvec zeros(64, cplx{0.0, 0.0});
  caf.process(zeros, out);
  ASSERT_EQ(out.size(), zeros.size());
  for (const cplx& v : out) {
    EXPECT_EQ(v, (cplx{0.0, 0.0}));
  }
}

}  // namespace
}  // namespace ofdm::rf
