// Loopback suite for the ofdm_serverd stack: JSON/base64 wire
// primitives, then a real Server on 127.0.0.1 exercised through
// LineClient — the malformed-input, backpressure, deadline,
// disconnect, drain/recovery and cache paths the daemon's robustness
// story hangs on. Runs under TSan and ASan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/transmitter.hpp"
#include "net/client.hpp"
#include "net/json.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "sim/aggregator.hpp"
#include "sim/campaign.hpp"
#include "sim/deck.hpp"

namespace ofdm::net {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"op":"submit","n":3,"x":-1.5,"flag":true,"nil":null,)"
      R"("arr":[1,2,3],"s":"a\"b\\c\n\u00e9"})";
  const Json v = json_parse(text);
  EXPECT_EQ(v.str_or("op", ""), "submit");
  EXPECT_EQ(v.num_or("n", 0), 3.0);
  EXPECT_EQ(v.num_or("x", 0), -1.5);
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_TRUE(v.find("nil")->is_null());
  EXPECT_EQ(v.find("arr")->as_array().size(), 3u);
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\n\xc3\xa9");
  // dump() of a parsed value re-parses to the same structure
  const Json again = json_parse(v.dump());
  EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, IntegersDumpWithoutExponent) {
  Json v = Json::object();
  v.set("big", 9007199254740992.0).set("small", 17).set("frac", 0.5);
  const std::string text = v.dump();
  EXPECT_NE(text.find("\"small\":17"), std::string::npos) << text;
  EXPECT_NE(text.find("\"frac\":0.5"), std::string::npos) << text;
}

TEST(Json, MalformedInputsThrow) {
  const char* bad[] = {
      "",           "{",        "}",          "[1,]",      "{\"a\":}",
      "{'a':1}",    "{\"a\" 1}", "tru",        "01",        "1.",
      "\"\\q\"",    "\"\\u12\"", "\"\x01\"",   "{}extra",   "nullx",
      "[1 2]",      "\"unterminated", "-",     "+1",        "{\"a\":1,}",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)json_parse(text), NetError) << text;
  }
}

TEST(Json, DepthCapHolds) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)json_parse(deep), NetError);
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_NO_THROW((void)json_parse(ok));
}

// -------------------------------------------------------------- base64

TEST(Base64, RoundTripAndRejection) {
  Rng rng(42);
  for (const std::size_t n : {0, 1, 2, 3, 4, 31, 257}) {
    const bytevec data = rng.bytes(n);
    const std::string b64 = base64_encode(data);
    EXPECT_EQ(base64_decode(b64), data) << n;
  }
  for (const char* bad : {"A", "AB=", "A===", "AB*D", "====", "AA=A"}) {
    EXPECT_THROW((void)base64_decode(bad), NetError) << bad;
  }
}

TEST(Base64, IqPackRoundTrip) {
  cvec samples;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) samples.push_back(rng.complex_gaussian());
  const cvec back = unpack_iq_f32(pack_iq_f32(samples));
  ASSERT_EQ(back.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(back[i].real(), samples[i].real(), 1e-6);
    EXPECT_NEAR(back[i].imag(), samples[i].imag(), 1e-6);
  }
  EXPECT_THROW((void)unpack_iq_f32(base64_encode(bytevec(7))), NetError);
}

// ------------------------------------------------------------ loopback

/// A deck small enough to finish in well under a second.
constexpr const char* kQuickDeck =
    "name=net_quick\n"
    "standard=wlan_80211a@12\n"
    "snr_db=6\n"
    "channel=awgn\n"
    "payload_bits=256\n"
    "trials.min=8\n"
    "trials.max=8\n"
    "trials.batch=8\n"
    "seed=5\n";

/// kQuickDeck with a distinct seed => a distinct digest/job id.
std::string quick_deck_seed(int seed) {
  return "name=net_quick\nstandard=wlan_80211a@12\nsnr_db=6\n"
         "channel=awgn\npayload_bits=256\ntrials.min=8\n"
         "trials.max=8\ntrials.batch=8\nseed=" +
         std::to_string(seed) + "\n";
}

/// A deck that grinds long enough to still be running when the test
/// cancels / expires / kills it (but bounded, so an assertion failure
/// can't wedge the suite).
std::string slow_deck(int seed) {
  return "name=net_slow\nstandard=wlan_80211a@12\n"
         "snr_db=0,2,4,6\nchannel=awgn\n"
         "trials.min=256\ntrials.max=4096\ntrials.batch=64\n"
         "seed=" +
         std::to_string(seed) + "\n";
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("ofdm_net_") + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ServerConfig quick_config() {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.idle_timeout_s = 0.0;
  cfg.jobs.executors = 2;
  cfg.jobs.pool_threads = 2;
  return cfg;
}

LineClient connect_to(const Server& server) {
  LineClient c;
  c.connect("127.0.0.1", server.port());
  return c;
}

Json op(const char* name) {
  Json v = Json::object();
  v.set("op", name);
  return v;
}

std::string wait_terminal(LineClient& client, const std::string& id,
                          double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    Json req = op("status");
    req.set("id", id);
    const Json reply = client.request(req);
    if (!reply.bool_or("ok", false)) return reply.str_or("error", "?");
    const std::string state = reply.str_or("state", "");
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) return "timeout";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(NetServer, PingStatsAndUnknownOp) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  Json reply = client.request(op("ping"));
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(reply.str_or("server", ""), "ofdm_serverd");

  reply = client.request(op("stats"));
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_GE(reply.num_or("requests", 0), 1.0);

  reply = client.request(op("frobnicate"));
  EXPECT_FALSE(reply.bool_or("ok", true));
  EXPECT_EQ(reply.str_or("error", ""), kErrUnknownOp);

  server.stop(false);
}

TEST(NetServer, MalformedJsonAndErrorCapClose) {
  ServerConfig cfg = quick_config();
  cfg.max_protocol_errors = 3;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  client.send_text("this is not json\n");
  Json reply = client.recv_line();
  EXPECT_EQ(reply.str_or("error", ""), kErrBadJson);

  client.send_text("[1,2,3]\n");  // valid JSON, not a request object
  reply = client.recv_line();
  EXPECT_EQ(reply.str_or("error", ""), kErrBadRequest);

  client.send_text("{{{\n");  // third strike: server closes after reply
  reply = client.recv_line();
  EXPECT_EQ(reply.str_or("error", ""), kErrBadJson);
  EXPECT_THROW((void)client.recv_line(2.0), NetError);

  // a fresh connection still works — the cap is per connection
  LineClient again = connect_to(server);
  EXPECT_TRUE(again.request(op("ping")).bool_or("ok", false));
  EXPECT_GE(server.stats().protocol_errors.load(), 3u);
  server.stop(false);
}

TEST(NetServer, OversizedFrameRejectedConnectionSurvives) {
  ServerConfig cfg = quick_config();
  cfg.max_line_bytes = 512;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  client.send_text(std::string(2000, 'x') + "\n");
  const Json reply = client.recv_line();
  EXPECT_EQ(reply.str_or("error", ""), kErrOversizedFrame);

  // The oversized line's tail was discarded; the protocol resyncs.
  EXPECT_TRUE(client.request(op("ping")).bool_or("ok", false));
  server.stop(false);
}

TEST(NetServer, EndlessOversizedLineIsDiscardedNotBuffered) {
  ServerConfig cfg = quick_config();
  cfg.max_line_bytes = 512;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  // A "line" that never ends: the server must reject it once and then
  // drop every further chunk instead of buffering the endless tail.
  const std::string junk(4096, 'y');
  client.send_text(junk);
  const Json reply = client.recv_line();
  EXPECT_EQ(reply.str_or("error", ""), kErrOversizedFrame);
  const std::uint64_t errors_after = server.stats().protocol_errors.load();

  for (int i = 0; i < 256; ++i) client.send_text(junk);  // 1 MiB of tail
  client.send_text("\n");  // finally terminate the rejected line
  // The protocol resyncs, and the whole tail counted as ONE error.
  EXPECT_TRUE(client.request(op("ping")).bool_or("ok", false));
  EXPECT_EQ(server.stats().protocol_errors.load(), errors_after);
  server.stop(false);
}

TEST(NetServer, StalledReaderIsDroppedAfterSendTimeout) {
  ServerConfig cfg = quick_config();
  cfg.send_timeout_s = 0.3;
  cfg.max_bursts = 8192;
  cfg.max_waveform_samples = 1u << 26;
  Server server(cfg);
  server.start();
  {
    LineClient client = connect_to(server);
    // Handshake first so the session thread is provably live (and
    // counted) before we go silent — otherwise the wait below could
    // pass vacuously on connections_active == 0.
    ASSERT_TRUE(client.request(op("ping")).bool_or("ok", false));
    ASSERT_EQ(server.stats().connections_active.load(), 1u);
    Json req = op("waveform");
    req.set("standard", "wlan_80211a@12").set("bursts", 8192);
    client.send(req);
    // Read nothing: the stream must fill every buffer in between,
    // stall the server's send, and trip the write timeout.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (server.stats().connections_active.load() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_EQ(server.stats().connections_active.load(), 0u)
        << "stalled connection must be dropped, not waited on forever";
  }
  LineClient probe = connect_to(server);
  EXPECT_TRUE(probe.request(op("ping")).bool_or("ok", false));
  server.stop(false);
}

TEST(NetServer, StalledReaderCannotWedgeStop) {
  ServerConfig cfg = quick_config();  // default (long) send timeout
  cfg.max_bursts = 8192;
  cfg.max_waveform_samples = 1u << 26;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);
  Json req = op("waveform");
  req.set("standard", "wlan_80211a@12").set("bursts", 8192);
  client.send(req);
  // Let the stream stall against our unread socket, then stop: the
  // session thread must notice stopping_ inside its send loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const auto t0 = std::chrono::steady_clock::now();
  server.stop(false);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(took, 10.0) << "stop() must not wait on a wedged client";
}

TEST(NetServer, WaveformMatchesLocalTransmitter) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  Json req = op("waveform");
  req.set("standard", "wlan_80211a@12").set("bursts", 2).set("seed", 9)
      .set("chunk", 100);  // force multiple iq events per burst
  cvec streamed;
  const Json reply = client.waveform(req, streamed);
  ASSERT_TRUE(reply.bool_or("ok", false)) << reply.dump();
  EXPECT_EQ(reply.num_or("samples", 0), double(streamed.size()));

  // Reference: the same deterministic payload derivation, locally.
  core::Transmitter tx(sim::parse_standard_token("wlan_80211a@12").params);
  const std::size_t pb = tx.recommended_payload_bits();
  EXPECT_EQ(reply.num_or("payload_bits", 0), double(pb));
  cvec expect;
  for (std::uint64_t b = 0; b < 2; ++b) {
    Rng rng = Rng::substream(9, 0, b);
    const auto burst = tx.modulate(rng.bits(pb));
    expect.insert(expect.end(), burst.samples.begin(), burst.samples.end());
  }
  ASSERT_EQ(streamed.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(streamed[i].real(), expect[i].real(), 1e-5);
    EXPECT_NEAR(streamed[i].imag(), expect[i].imag(), 1e-5);
  }
  server.stop(false);
}

TEST(NetServer, WaveformValidation) {
  ServerConfig cfg = quick_config();
  cfg.max_waveform_samples = 2000;  // one wlan burst fits, four don't
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  Json req = op("waveform");
  req.set("standard", "no_such_standard");
  cvec sink;
  EXPECT_EQ(client.waveform(req, sink).str_or("error", ""), kErrBadDeck);

  req = op("waveform");  // neither standard nor params
  EXPECT_EQ(client.waveform(req, sink).str_or("error", ""), kErrBadRequest);

  req = op("waveform");
  req.set("standard", "wlan_80211a@12").set("bursts", 4);
  EXPECT_EQ(client.waveform(req, sink).str_or("error", ""),
            kErrOversizedFrame);
  EXPECT_TRUE(sink.empty()) << "no iq may be streamed before the size check";
  server.stop(false);
}

TEST(NetServer, HugeNumericFieldsAreRejectedNotCast) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);
  cvec sink;

  // Each of these would be UB if static_cast before the range check.
  for (const char* field : {"seed", "chunk", "bursts", "payload_bits"}) {
    Json req = op("waveform");
    req.set("standard", "wlan_80211a@12").set(field, 1e300);
    EXPECT_EQ(client.waveform(req, sink).str_or("error", ""), kErrBadRequest)
        << field;
  }
  Json req = op("submit");
  req.set("deck", kQuickDeck).set("deadline_s", 1e300);
  EXPECT_EQ(client.request(req).str_or("error", ""), kErrBadRequest);
  server.stop(false);
}

TEST(NetServer, SubmitRunsAndResultMatchesLocalCampaign) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  Json req = op("submit");
  req.set("deck", kQuickDeck);
  Json reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false)) << reply.dump();
  const std::string id = reply.str_or("id", "");
  ASSERT_EQ(id.size(), 16u);
  EXPECT_EQ(wait_terminal(client, id), "done");

  req = op("result");
  req.set("id", id);
  reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false)) << reply.dump();

  sim::Campaign reference(sim::parse_deck(kQuickDeck));
  sim::RunOptions opts;
  opts.threads = 2;
  const auto ref = reference.run(opts);
  EXPECT_EQ(reply.str_or("curves", ""),
            sim::curves_json(reference.deck(), ref));
  server.stop(false);
}

TEST(NetServer, SecondIdenticalDeckIsServedFromCacheWithoutTrials) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  Json req = op("submit");
  req.set("deck", kQuickDeck);
  Json reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false));
  const std::string id = reply.str_or("id", "");
  ASSERT_EQ(wait_terminal(client, id), "done");

  Json first_result = op("result");
  first_result.set("id", id);
  const std::string curves =
      client.request(first_result).str_or("curves", "");
  ASSERT_FALSE(curves.empty());

  // Probe counter: remember how much work the engine has done, then
  // resubmit the identical deck.
  const std::uint64_t trials_before = server.stats().trials_executed.load();
  const std::uint64_t hits_before = server.jobs().cache().hits();

  reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false)) << reply.dump();
  EXPECT_EQ(reply.str_or("state", ""), "done");
  EXPECT_TRUE(reply.bool_or("cached", false) ||
              reply.bool_or("attached", false));

  Json rreq = op("result");
  rreq.set("id", reply.str_or("id", ""));
  const Json rres = client.request(rreq);
  EXPECT_EQ(rres.str_or("curves", ""), curves);

  EXPECT_EQ(server.stats().trials_executed.load(), trials_before)
      << "cached submission must not spawn trials";
  EXPECT_GE(server.jobs().cache().hits(), hits_before);
  server.stop(false);
}

TEST(NetServer, ResultSurvivesTrackedJobEviction) {
  ServerConfig cfg = quick_config();
  cfg.jobs.max_tracked_jobs = 2;  // the next submit past 2 prunes
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  const auto submit_and_finish = [&](int seed) {
    Json req = op("submit");
    req.set("deck", quick_deck_seed(seed));
    const Json reply = client.request(req);
    EXPECT_TRUE(reply.bool_or("ok", false)) << reply.dump();
    const std::string id = reply.str_or("id", "");
    EXPECT_EQ(wait_terminal(client, id), "done");
    return id;
  };

  const std::string first = submit_and_finish(41);
  Json rreq = op("result");
  rreq.set("id", first);
  const std::string curves = client.request(rreq).str_or("curves", "");
  ASSERT_FALSE(curves.empty());

  // Two more unique decks push the map past max_tracked_jobs and
  // evict the first job's bookkeeping entry.
  submit_and_finish(42);
  submit_and_finish(43);

  // The curves are still in the result cache — a slow poller must get
  // its result back, not unknown_job.
  rreq = op("result");
  rreq.set("id", first);
  const Json reply = client.request(rreq);
  ASSERT_TRUE(reply.bool_or("ok", false)) << reply.dump();
  EXPECT_TRUE(reply.bool_or("cached", false));
  EXPECT_EQ(reply.str_or("curves", ""), curves);

  // A well-formed id that never ran still reports unknown_job.
  rreq = op("result");
  rreq.set("id", "0123456789abcdef");
  EXPECT_EQ(client.request(rreq).str_or("error", ""), kErrUnknownJob);
  server.stop(false);
}

TEST(NetServer, QueueFullBackpressureAndQuota) {
  ServerConfig cfg = quick_config();
  cfg.jobs.executors = 1;
  cfg.jobs.max_queued = 1;
  cfg.client_quota = 2;
  cfg.retry_after_s = 0.25;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  // #1 occupies the single executor, #2 the single queue slot.
  Json req = op("submit");
  req.set("deck", slow_deck(1));
  ASSERT_TRUE(client.request(req).bool_or("ok", false));
  req = op("submit");
  req.set("deck", slow_deck(2));
  ASSERT_TRUE(client.request(req).bool_or("ok", false));

  // #3 must bounce with queue_full + retry_after (quota is 2, so the
  // queue bound is what trips first).
  req = op("submit");
  req.set("deck", slow_deck(3));
  Json reply = client.request(req);
  EXPECT_FALSE(reply.bool_or("ok", true));
  EXPECT_EQ(reply.str_or("error", ""), kErrQueueFull);
  EXPECT_EQ(reply.num_or("retry_after_s", 0), 0.25);

  // A second client with quota 1 trips the quota check instead.
  ServerConfig cfg2 = quick_config();
  cfg2.jobs.executors = 1;
  cfg2.jobs.max_queued = 8;
  cfg2.client_quota = 1;
  Server server2(cfg2);
  server2.start();
  LineClient c2 = connect_to(server2);
  req = op("submit");
  req.set("deck", slow_deck(4));
  ASSERT_TRUE(c2.request(req).bool_or("ok", false));
  req = op("submit");
  req.set("deck", slow_deck(5));
  reply = c2.request(req);
  EXPECT_EQ(reply.str_or("error", ""), kErrQuotaExceeded);

  server.stop(false);
  server2.stop(false);
}

TEST(NetServer, CancelAndDeadlineExpiry) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  // Cooperative cancel of a running job.
  Json req = op("submit");
  req.set("deck", slow_deck(10));
  Json reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false));
  const std::string id = reply.str_or("id", "");
  Json creq = op("cancel");
  creq.set("id", id);
  EXPECT_TRUE(client.request(creq).bool_or("ok", false));
  EXPECT_EQ(wait_terminal(client, id), "cancelled");
  Json rreq = op("result");
  rreq.set("id", id);
  EXPECT_EQ(client.request(rreq).str_or("error", ""), kErrJobFailed);

  // Deadline expiry: a tight per-job deadline halts the campaign.
  req = op("submit");
  req.set("deck", slow_deck(11)).set("deadline_s", 0.05);
  reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(wait_terminal(client, reply.str_or("id", "")), "expired");
  EXPECT_GE(server.stats().jobs_expired.load(), 1u);

  // Unknown-job paths.
  Json sreq = op("status");
  sreq.set("id", "doesnotexist0000");
  EXPECT_EQ(client.request(sreq).str_or("error", ""), kErrUnknownJob);
  server.stop(false);
}

TEST(NetServer, MidJobDisconnectDoesNotKillTheJob) {
  TempDir dir("disc");
  ServerConfig cfg = quick_config();
  cfg.jobs.state_dir = dir.path.string();
  Server server(cfg);
  server.start();

  std::string id;
  {
    LineClient client = connect_to(server);
    Json req = op("submit");
    req.set("deck", kQuickDeck);
    const Json reply = client.request(req);
    ASSERT_TRUE(reply.bool_or("ok", false));
    id = reply.str_or("id", "");
    // Hard-close mid-job: shutdown both directions, then drop the fd.
    ::shutdown(client.fd(), SHUT_RDWR);
  }

  LineClient again = connect_to(server);
  EXPECT_EQ(wait_terminal(again, id), "done");
  server.stop(false);
}

TEST(NetServer, MidStreamDisconnectIsContained) {
  Server server(quick_config());
  server.start();
  for (int i = 0; i < 3; ++i) {
    LineClient client = connect_to(server);
    Json req = op("waveform");
    req.set("standard", "wlan_80211a@12").set("bursts", 8).set("chunk", 64);
    client.send(req);
    (void)client.recv_line();  // first iq event is in flight
    client.close();            // vanish mid-stream
  }
  // The server must still be fully responsive afterwards.
  LineClient probe = connect_to(server);
  EXPECT_TRUE(probe.request(op("ping")).bool_or("ok", false));
  server.stop(false);
}

TEST(NetServer, IdleConnectionsAreDisconnected) {
  ServerConfig cfg = quick_config();
  cfg.idle_timeout_s = 0.3;
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);
  ASSERT_TRUE(client.request(op("ping")).bool_or("ok", false));

  const Json bye = client.recv_line(5.0);  // no traffic: server says bye
  EXPECT_EQ(bye.str_or("ev", ""), "bye");
  EXPECT_EQ(bye.str_or("reason", ""), "idle_timeout");
  EXPECT_THROW((void)client.recv_line(2.0), NetError);
  EXPECT_GE(server.stats().idle_disconnects.load(), 1u);
  server.stop(false);
}

TEST(NetServer, DrainHandsRunningJobsToTheNextProcess) {
  TempDir dir("drain");
  ServerConfig cfg = quick_config();
  cfg.jobs.state_dir = dir.path.string();

  // Reference curves from an uninterrupted local run.
  sim::Campaign reference(sim::parse_deck(slow_deck(20)));
  sim::RunOptions opts;
  opts.threads = 2;
  const auto ref = reference.run(opts);
  const std::string want = sim::curves_json(reference.deck(), ref);

  std::string id;
  {
    Server first(cfg);
    first.start();
    LineClient client = connect_to(first);
    Json req = op("submit");
    req.set("deck", slow_deck(20));
    const Json reply = client.request(req);
    ASSERT_TRUE(reply.bool_or("ok", false));
    id = reply.str_or("id", "");
    // Let it make some progress, then drain: the running campaign
    // checkpoints and its files stay on disk.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    first.stop(true);
  }
  ASSERT_TRUE(std::filesystem::exists(dir.path / (id + ".deck")));

  Server second(cfg);
  second.start();
  EXPECT_GE(second.recovered_jobs(), 1u);
  LineClient client = connect_to(second);
  EXPECT_EQ(wait_terminal(client, id, 60.0), "done");

  Json rreq = op("result");
  rreq.set("id", id);
  const Json reply = client.request(rreq);
  EXPECT_TRUE(reply.bool_or("recovered", false) ||
              reply.bool_or("ok", false));
  EXPECT_EQ(reply.str_or("curves", ""), want)
      << "resumed curves must be byte-identical";
  second.stop(false);
}

TEST(NetServer, ExplicitCancelIsNotResurrectedByDrain) {
  TempDir dir("canceldrain");
  ServerConfig cfg = quick_config();
  cfg.jobs.state_dir = dir.path.string();
  Server server(cfg);
  server.start();
  LineClient client = connect_to(server);

  Json req = op("submit");
  req.set("deck", slow_deck(30));
  const Json reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false));
  const std::string id = reply.str_or("id", "");

  // Wait until the job is actually running, then cancel and drain
  // back-to-back: the explicit cancel must outrank the drain handoff.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    Json sreq = op("status");
    sreq.set("id", id);
    const std::string state = client.request(sreq).str_or("state", "");
    if (state == "running") break;
    ASSERT_EQ(state, "queued") << "job went terminal before the cancel";
    ASSERT_TRUE(std::chrono::steady_clock::now() < deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Json creq = op("cancel");
  creq.set("id", id);
  ASSERT_TRUE(client.request(creq).bool_or("ok", false));
  server.stop(true);  // drain — must not re-queue the cancelled job

  JobStatus st;
  ASSERT_TRUE(server.jobs().status(id, st));
  EXPECT_EQ(st.state, JobState::kCancelled);
  EXPECT_FALSE(std::filesystem::exists(dir.path / (id + ".deck")))
      << "a cancelled job's files must not revive in the next process";
}

TEST(NetServer, RecoveryIgnoresCorruptLeftovers) {
  TempDir dir("corrupt");
  // A deck file whose name doesn't match its digest, a garbage deck,
  // and a valid deck with a corrupt checkpoint.
  {
    std::ofstream(dir.path / "00000000deadbeef.deck") << kQuickDeck;
    std::ofstream(dir.path / "1111111111111111.deck") << "not = a deck\n";
    const auto id = [] {
      const auto deck = sim::parse_deck(kQuickDeck);
      char buf[17];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(sim::deck_digest(deck)));
      return std::string(buf);
    }();
    std::ofstream(dir.path / (id + ".deck")) << kQuickDeck;
    std::ofstream(dir.path / (id + ".ckpt")) << "torn checkpoint bytes";
  }
  ServerConfig cfg = quick_config();
  cfg.jobs.state_dir = dir.path.string();
  Server server(cfg);
  server.start();
  EXPECT_EQ(server.recovered_jobs(), 1u) << "only the valid deck revives";

  LineClient client = connect_to(server);
  Json req = op("submit");
  req.set("deck", kQuickDeck);
  const Json reply = client.request(req);
  ASSERT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(wait_terminal(client, reply.str_or("id", "")), "done");
  server.stop(false);
}

TEST(NetServer, ConcurrentClientsStayIsolated) {
  Server server(quick_config());
  server.start();

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&server, &failures, t] {
      try {
        LineClient client = connect_to(server);
        for (int i = 0; i < 5; ++i) {
          if (!client.request(op("ping")).bool_or("ok", false)) ++failures;
          Json w = op("waveform");
          w.set("standard", "wlan_80211a@12").set("seed", t * 100 + i);
          cvec samples;
          if (!client.waveform(w, samples).bool_or("ok", false)) ++failures;
          if (samples.empty()) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.stats().connections_total.load(), (std::uint64_t)kClients);
  server.stop(false);
}

TEST(NetServer, BadDeckAndShutdownOps) {
  Server server(quick_config());
  server.start();
  LineClient client = connect_to(server);

  Json req = op("submit");
  req.set("deck", "standard = nonsense\n");
  Json reply = client.request(req);
  EXPECT_EQ(reply.str_or("error", ""), kErrBadDeck);
  EXPECT_FALSE(reply.str_or("detail", "").empty());

  reply = client.request(op("shutdown"));
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_TRUE(server.shutdown_drain());
  server.stop(server.shutdown_drain());

  // Post-stop submits are refused, not crashed.
  const auto r = server.jobs().submit(kQuickDeck, 0.0, 0, 0);
  EXPECT_EQ(r.admission, JobManager::Admission::kShutdown);
}

}  // namespace
}  // namespace ofdm::net
