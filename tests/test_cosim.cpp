// Integration tests for the paper's headline use case: the Mother Model
// as a signal source inside the RF system simulator, with the digital
// receiver verifying the end-to-end analog/digital chain.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "metrics/ber.hpp"
#include "metrics/evm.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/frontend.hpp"
#include "rf/pa.hpp"
#include "rx/receiver.hpp"

namespace ofdm {
namespace {

// Locate `needle`'s start inside `haystack` by complex cross-correlation.
std::size_t find_delay(std::span<const cplx> haystack,
                       std::span<const cplx> needle,
                       std::size_t search_limit) {
  std::size_t best = 0;
  double best_mag = -1.0;
  const std::size_t probe = std::min<std::size_t>(needle.size(), 512);
  for (std::size_t d = 0; d + probe <= haystack.size() && d < search_limit;
       ++d) {
    cplx corr{0.0, 0.0};
    for (std::size_t i = 0; i < probe; ++i) {
      corr += haystack[d + i] * std::conj(needle[i]);
    }
    if (std::abs(corr) > best_mag) {
      best_mag = std::abs(corr);
      best = d;
    }
  }
  return best;
}

TEST(Cosim, BasebandImpairedChainStillDecodes) {
  // Mild PA compression + 30 dB SNR: the coded 802.11a link must be
  // error-free once equalized from its own preamble.
  const auto params = core::profile_wlan_80211a(core::WlanRate::k24);
  core::Transmitter tx(params);
  Rng rng(1);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rf::Chain chain;
  chain.add<rf::Gain>(-8.0);  // 8 dB input back-off
  chain.add<rf::RappPa>(2.0, 1.0);
  const double sig_power = from_db(-8.0);  // post-backoff signal power
  chain.add<rf::AwgnChannel>(rf::snr_to_noise_power(sig_power, 30.0), 42);
  const cvec rx_samples = chain.process(burst.samples);

  rx::Receiver rx(params);
  rx.set_equalizer(rx.estimate_equalizer(rx_samples));
  const auto result = rx.demodulate(rx_samples, payload.size());
  const auto b = metrics::ber(payload, result.payload);
  EXPECT_EQ(b.errors, 0u) << "BER " << b.rate();
}

TEST(Cosim, MultipathWithinCpIsEqualizedAway) {
  const auto params = core::profile_wlan_80211a(core::WlanRate::k12);
  core::Transmitter tx(params);
  Rng rng(2);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  // Three-tap channel, delay spread 4 samples << CP 16. Dominant first
  // tap keeps the LTF-based timing unambiguous.
  rf::MultipathChannel ch(cvec{cplx{1.0, 0.1}, cplx{0.0, 0.0},
                               cplx{0.25, -0.15}, cplx{0.1, 0.05}});
  const cvec rx_samples = ch.process(burst.samples);

  rx::Receiver rx(params);
  rx.set_equalizer(rx.estimate_equalizer(rx_samples));
  const auto result = rx.demodulate(rx_samples, payload.size());
  EXPECT_EQ(metrics::ber(payload, result.payload).errors, 0u);
}

TEST(Cosim, EvmDegradesMonotonicallyWithPaDrive) {
  // The RF designer's sweep: harder PA drive -> worse constellation.
  const auto params = core::profile_wlan_80211a(core::WlanRate::k36);
  core::Transmitter tx(params);
  Rng rng(3);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rx::Receiver rx(params);
  const auto clean_tones =
      rx.extract_data_tones(burst.samples, burst.data_symbols);

  rvec evms;
  for (double backoff_db : {12.0, 6.0, 2.0}) {
    rf::Chain chain;
    chain.add<rf::Gain>(-backoff_db);
    chain.add<rf::RappPa>(2.0, 1.0);
    chain.add<rf::Gain>(backoff_db);  // renormalize for the demod
    const cvec rx_samples = chain.process(burst.samples);

    rx::Receiver rx2(params);
    rx2.set_equalizer(rx2.estimate_equalizer(rx_samples));
    const auto tones =
        rx2.extract_data_tones(rx_samples, burst.data_symbols);

    cvec all_rx;
    cvec all_ref;
    for (std::size_t s = 0; s < tones.size(); ++s) {
      all_rx.insert(all_rx.end(), tones[s].begin(), tones[s].end());
      all_ref.insert(all_ref.end(), clean_tones[s].begin(),
                     clean_tones[s].end());
    }
    evms.push_back(metrics::evm(all_rx, all_ref).rms);
  }
  EXPECT_LT(evms[0], evms[1]);
  EXPECT_LT(evms[1], evms[2]);
  EXPECT_LT(evms[0], 0.01);  // 12 dB back-off: near-clean
  EXPECT_GT(evms[2], 0.02);  // 2 dB back-off: visible compression
}

TEST(Cosim, FullPassbandChainRoundTrip) {
  // The complete analog path: DAC (4x oversample) -> IQ modulator to a
  // 20 MHz carrier -> IQ demodulator -> decimator -> digital receiver.
  const auto params = core::profile_wlan_80211a(core::WlanRate::k12);
  core::Transmitter tx(params);
  Rng rng(4);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  const double fs_bb = params.sample_rate;
  const std::size_t os = 4;
  const double fs_rf = fs_bb * static_cast<double>(os);
  const double fc = 20e6;

  rf::Chain chain;
  chain.add<rf::Dac>(12, os);
  chain.add<rf::IqModulator>(rf::Oscillator(fc, fs_rf));
  chain.add<rf::IqDemodulator>(rf::Oscillator(fc, fs_rf), 0.14, 129);
  chain.add<rf::DecimatorBlock>(os);

  // Pad so the filter pipelines flush the tail of the burst through.
  cvec padded = burst.samples;
  padded.insert(padded.end(), 256, cplx{0.0, 0.0});
  const cvec rx_samples = chain.process(padded);

  // Align via cross-correlation against the clean burst, then let the
  // LTF equalizer absorb the residual fractional delay and ripple.
  const std::size_t d =
      find_delay(rx_samples, burst.samples, /*search_limit=*/200);
  ASSERT_LT(d + burst.samples.size(), rx_samples.size() + 64);
  const auto aligned = std::span<const cplx>(rx_samples)
                           .subspan(d, rx_samples.size() - d);

  rx::Receiver rx(params);
  rx.set_equalizer(rx.estimate_equalizer(aligned));
  const auto result = rx.demodulate(aligned, payload.size());
  EXPECT_EQ(metrics::ber(payload, result.payload).errors, 0u);
}

TEST(Cosim, SevereClippingBreaksTheLink) {
  // Sanity check in the other direction: the co-simulation must be able
  // to *show* a failure, or it is useless to the RF designer.
  const auto params = core::profile_wlan_80211a(core::WlanRate::k54);
  core::Transmitter tx(params);
  Rng rng(5);
  const bitvec payload = rng.bits(tx.recommended_payload_bits());
  const auto burst = tx.modulate(payload);

  rf::Chain chain;
  chain.add<rf::Gain>(10.0);  // drive hard into the limiter
  chain.add<rf::SoftClipPa>(0.5);
  const cvec rx_samples = chain.process(burst.samples);

  rx::Receiver rx(params);
  rx.set_equalizer(rx.estimate_equalizer(rx_samples));
  const auto result = rx.demodulate(rx_samples, payload.size());
  EXPECT_GT(metrics::ber(payload, result.payload).rate(), 0.01);
}

}  // namespace
}  // namespace ofdm
