// RF system simulator tests: block math (gain, PA curves, noise, mixers,
// impairments, channels), the Submodel source, and the chain driver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

cvec random_signal(std::size_t n, double power, std::uint64_t seed) {
  Rng rng(seed);
  cvec x(n);
  for (cplx& v : x) v = rng.complex_gaussian(power);
  return x;
}

TEST(Gain, ScalesPowerByDb) {
  Gain g(6.0);
  const cvec x = random_signal(1000, 1.0, 1);
  const cvec y = g.process(x);
  EXPECT_NEAR(mean_power(y) / mean_power(x), from_db(6.0), 1e-9);
}

TEST(RappPa, LinearAtSmallSignalSaturatesAtLarge) {
  RappPa pa(2.0, 1.0);
  EXPECT_NEAR(pa.am_am(0.01), 0.01, 1e-5);          // linear region
  EXPECT_NEAR(pa.am_am(100.0), 1.0, 0.01);          // saturated
  EXPECT_LT(pa.am_am(1.0), 1.0);                    // compression at v_sat
  // Monotone non-decreasing.
  double prev = 0.0;
  for (double r = 0.0; r < 5.0; r += 0.1) {
    EXPECT_GE(pa.am_am(r) + 1e-12, prev);
    prev = pa.am_am(r);
  }
}

TEST(RappPa, PreservesPhase) {
  RappPa pa(3.0, 1.0);
  const cplx in{0.6, 0.8};
  const cvec out = pa.process(cvec{in});
  EXPECT_NEAR(std::arg(out[0]), std::arg(in), 1e-12);
}

TEST(SalehPa, HasAmPmConversion) {
  SalehPa pa;
  // AM/AM peaks near r = 1/sqrt(beta_a) then compresses.
  EXPECT_GT(pa.am_am(0.5), 0.0);
  EXPECT_GT(pa.am_pm(1.0), 0.1);  // noticeable phase rotation
  const cplx in{1.0, 0.0};
  const cvec out = pa.process(cvec{in});
  EXPECT_GT(std::abs(std::arg(out[0])), 0.1);
}

TEST(SoftClipPa, ClipsExactlyAtLevel) {
  SoftClipPa pa(0.5);
  EXPECT_EQ(pa.am_am(0.3), 0.3);
  EXPECT_EQ(pa.am_am(0.7), 0.5);
}

TEST(Awgn, NoisePowerIsCalibrated) {
  AwgnChannel ch(0.25, 7);
  const cvec silence(200000, cplx{0.0, 0.0});
  const cvec out = ch.process(silence);
  EXPECT_NEAR(mean_power(out), 0.25, 0.01);
}

TEST(Awgn, SnrHelper) {
  EXPECT_NEAR(snr_to_noise_power(2.0, 10.0), 0.2, 1e-12);
}

TEST(Multipath, MatchesDirectConvolutionSteadyState) {
  const cvec taps = {cplx{0.8, 0.0}, cplx{0.0, 0.4}, cplx{-0.2, 0.1}};
  MultipathChannel ch(taps);
  const cvec x = random_signal(64, 1.0, 8);
  const cvec y = ch.process(x);
  for (std::size_t i = 2; i < x.size(); ++i) {
    cplx expect{0.0, 0.0};
    for (std::size_t t = 0; t < taps.size(); ++t) {
      expect += x[i - t] * taps[t];
    }
    EXPECT_NEAR(std::abs(y[i] - expect), 0.0, 1e-12);
  }
}

TEST(Multipath, ExponentialPdpIsUnitPower) {
  const cvec taps = exponential_pdp_taps(3.0, 12, 9);
  double p = 0.0;
  for (const cplx& t : taps) p += std::norm(t);
  EXPECT_NEAR(p, 1.0, 1e-12);
}

TEST(FrequencyShift, MovesAToneExactly) {
  ToneSource src(1000.0, 48000.0);
  FrequencyShift shift(500.0, 48000.0);
  const cvec x = src.pull(4800);
  const cvec y = shift.process(x);
  // y must be a 1.5 kHz tone: correlate against it.
  cplx corr{0.0, 0.0};
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double a = kTwoPi * 1500.0 * static_cast<double>(i) / 48000.0;
    corr += y[i] * std::conj(cplx{std::cos(a), std::sin(a)});
  }
  EXPECT_NEAR(std::abs(corr) / static_cast<double>(y.size()), 1.0, 1e-6);
}

TEST(IqImbalance, ImageRejectionMatchesFormula) {
  IqImbalance imb(1.0, 5.0);
  // A clean positive-frequency tone leaks into the negative frequency at
  // the predicted image rejection ratio.
  ToneSource src(1000.0, 48000.0);
  const cvec x = imb.process(src.pull(48000));
  cplx want{0.0, 0.0};
  cplx image{0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = kTwoPi * 1000.0 * static_cast<double>(i) / 48000.0;
    const cplx e{std::cos(a), std::sin(a)};
    want += x[i] * std::conj(e);
    image += x[i] * e;  // conj(e^{-j}) picks the -1 kHz component
  }
  const double irr = to_db(std::norm(want) / std::norm(image));
  EXPECT_NEAR(irr, imb.image_rejection_db(), 0.5);
}

TEST(DcOffset, AddsBias) {
  DcOffset dc(cplx{0.1, -0.2});
  const cvec out = dc.process(cvec(10, cplx{0.0, 0.0}));
  for (const cplx& v : out) {
    EXPECT_EQ(v, (cplx{0.1, -0.2}));
  }
}

TEST(PhaseNoise, PreservesMagnitudeAddsPhaseWalk) {
  PhaseNoise pn(1000.0, 1e6, 5);
  const cvec x(10000, cplx{1.0, 0.0});
  const cvec y = pn.process(x);
  double maxdev = 0.0;
  for (const cplx& v : y) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    maxdev = std::max(maxdev, std::abs(std::arg(v)));
  }
  EXPECT_GT(maxdev, 0.01);  // the phase actually wanders
}

TEST(Dac, QuantizationErrorBoundedByLsb) {
  Dac dac(8, 1, 2.0);
  const cvec x = random_signal(1000, 0.5, 10);
  const cvec y = dac.process(x);
  const double lsb = 2.0 / 128.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(y[i].real() - x[i].real()), lsb);
    EXPECT_LE(std::abs(y[i].imag() - x[i].imag()), lsb);
  }
}

TEST(Dac, OversamplingMultipliesRate) {
  Dac dac(0, 4);
  const cvec x = random_signal(100, 1.0, 11);
  EXPECT_EQ(dac.process(x).size(), 400u);
}

TEST(IqModDemod, RoundTripRecoversBaseband) {
  // Upconvert a band-limited baseband signal to fc and back.
  const double fs = 80e6;
  const double fc = 20e6;
  ToneSource tone(1e6, fs, 0.7);
  const cvec bb = tone.pull(8000);

  IqModulator mod(Oscillator(fc, fs));
  IqDemodulator demod(Oscillator(fc, fs), 0.12, 127);
  const cvec pass = mod.process(bb);
  for (const cplx& v : pass) EXPECT_EQ(v.imag(), 0.0);  // real passband
  const cvec back = demod.process(pass);

  // Compare in steady state with the 63-sample filter delay.
  const std::size_t d = 63;
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 500; i + d < bb.size(); ++i) {
    err += std::norm(back[i + d] - bb[i]);
    ref += std::norm(bb[i]);
  }
  EXPECT_LT(err / ref, 0.01);
}

TEST(Sinks, PowerMeterAveragesAndPeaks) {
  PowerMeter meter;
  meter.process(cvec{cplx{1.0, 0.0}, cplx{3.0, 0.0}});
  EXPECT_NEAR(meter.average_power(), 5.0, 1e-12);
  EXPECT_NEAR(meter.peak_power(), 9.0, 1e-12);
  EXPECT_NEAR(meter.papr_db(), to_db(9.0 / 5.0), 1e-9);
}

TEST(Sinks, CaptureRespectsLimit) {
  Capture cap(5);
  cap.process(random_signal(10, 1.0, 12));
  EXPECT_EQ(cap.samples().size(), 5u);
}

TEST(Submodel, PullsContinuousStream) {
  Submodel src(core::profile_wlan_80211a(), /*gap=*/100);
  const cvec a = src.pull(1000);
  const cvec b = src.pull(1000);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_GE(src.frames_generated(), 1u);
  // Chunked pulls equal one big pull from a fresh identical source.
  Submodel src2(core::profile_wlan_80211a(), 100);
  const cvec whole = src2.pull(2000);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(whole[i], a[i]);
    EXPECT_EQ(whole[1000 + i], b[i]);
  }
}

TEST(Submodel, ReconfigurationChangesTheStream) {
  Submodel src(core::profile_wlan_80211a());
  src.pull(100);
  src.configure(core::profile_dab(core::DabMode::kII));
  EXPECT_EQ(src.params().standard, core::Standard::kDab);
  // DAB bursts start with the null symbol: silence.
  const cvec head = src.pull(100);
  for (const cplx& v : head) EXPECT_EQ(std::abs(v), 0.0);
}

TEST(Submodel, ReconfigurationFlushesAllStreamingState) {
  // Mid-stream reconfiguration through three standards: after every
  // configure() the stream must be exactly what a freshly constructed
  // Submodel of that standard emits — no buffered tail from the old
  // standard, no advanced payload PRNG, no stale frame counter.
  Submodel src(core::profile_wlan_80211a(), 64, 17);
  src.pull(777);  // stop mid-frame so there is a tail to flush

  for (const auto& make : {+[] { return core::profile_adsl(); },
                           +[] { return core::profile_drm(); }}) {
    src.configure(make());
    EXPECT_EQ(src.frames_generated(), 0u);
    const cvec got = src.pull(1500);
    Submodel fresh(make(), 64, 17);
    const cvec want = fresh.pull(1500);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "sample " << i << " after switch to "
                                 << core::standard_name(
                                        src.params().standard);
    }
    src.pull(333);  // advance mid-frame again before the next switch
  }
}

TEST(Chain, ComposesBlocksInOrder) {
  Chain chain;
  chain.add<Gain>(6.0);
  chain.add<Gain>(-6.0);
  const cvec x = random_signal(256, 1.0, 13);
  const cvec y = chain.process(x);
  EXPECT_LT(max_abs_error(x, y), 1e-12);
}

TEST(Chain, RunReportsSampleCounts) {
  Submodel src(core::profile_wlan_80211a());
  Chain chain;
  chain.add<Gain>(0.0);
  auto& meter = chain.add<PowerMeter>();
  const RunStats stats = run(src, chain, 10000, 1024);
  EXPECT_EQ(stats.samples_in, 10000u);
  EXPECT_EQ(stats.samples_out, 10000u);
  EXPECT_EQ(meter.samples(), 10000u);
  EXPECT_GE(stats.elapsed_seconds, stats.source_seconds);
}

TEST(SpectrumSink, SeesOccupiedBand) {
  Submodel src(core::profile_wlan_80211a());
  Chain chain;
  dsp::WelchConfig cfg;
  cfg.segment = 256;
  cfg.sample_rate = 20e6;
  auto& analyzer = chain.add<SpectrumAnalyzer>(cfg);
  run(src, chain, 1 << 15, 4096);
  const dsp::Psd psd = analyzer.psd();
  // In-band (|f| < 8 MHz) power dominates; the unwindowed 802.11a
  // spectrum keeps sinc shoulders around -25 dBr, so integrated
  // out-of-band power sits near 3% of the total.
  const double inband = psd.band_power(-8e6, 8e6);
  const double outband = psd.total_power() - inband;
  EXPECT_GT(inband, 10.0 * outband);
}

}  // namespace
}  // namespace ofdm::rf
