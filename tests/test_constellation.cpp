// Constellation tests: the exact 802.11a-1999 17.3.5.7 mapping tables,
// unit average energy, Gray-neighbour property and demapping round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "mapping/constellation.hpp"

namespace ofdm::mapping {
namespace {

TEST(Constellation, BpskMappingMatchesStandard) {
  const Constellation c = Constellation::make(Scheme::kBpsk);
  EXPECT_NEAR(c.map(bitvec{0}).real(), -1.0, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1}).real(), 1.0, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1}).imag(), 0.0, 1e-12);
}

TEST(Constellation, QpskMappingMatchesStandard) {
  const Constellation c = Constellation::make(Scheme::kQpsk);
  const double a = 1.0 / std::sqrt(2.0);
  // 802.11a: first bit -> I, second -> Q; 0 -> -1, 1 -> +1.
  EXPECT_NEAR(c.map(bitvec{0, 0}).real(), -a, 1e-12);
  EXPECT_NEAR(c.map(bitvec{0, 0}).imag(), -a, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1, 0}).real(), a, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1, 0}).imag(), -a, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1, 1}).imag(), a, 1e-12);
}

TEST(Constellation, Qam16MappingMatchesStandard) {
  const Constellation c = Constellation::make(Scheme::kQam16);
  const double s = std::sqrt(10.0);
  // Table 17-9: b0b1 (I): 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
  EXPECT_NEAR(c.map(bitvec{0, 0, 0, 0}).real(), -3.0 / s, 1e-12);
  EXPECT_NEAR(c.map(bitvec{0, 1, 0, 0}).real(), -1.0 / s, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1, 1, 0, 0}).real(), 1.0 / s, 1e-12);
  EXPECT_NEAR(c.map(bitvec{1, 0, 0, 0}).real(), 3.0 / s, 1e-12);
  // Q bits b2b3 follow the same table.
  EXPECT_NEAR(c.map(bitvec{0, 0, 1, 0}).imag(), 3.0 / s, 1e-12);
}

TEST(Constellation, Qam64NormalizationIsSqrt42) {
  const Constellation c = Constellation::make(Scheme::kQam64);
  EXPECT_NEAR(c.norm_factor(), std::sqrt(42.0), 1e-12);
}

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, UnitAverageEnergy) {
  const Constellation c = Constellation::make(GetParam());
  double e = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) e += std::norm(c.point(i));
  EXPECT_NEAR(e / static_cast<double>(c.size()), 1.0, 1e-12);
}

TEST_P(AllSchemes, MapDemapRoundTripAllPatterns) {
  const Constellation c = Constellation::make(GetParam());
  for (std::size_t i = 0; i < c.size(); ++i) {
    bitvec bits;
    append_uint(bits, i, c.bits());
    const cplx sym = c.map(bits);
    bitvec back;
    c.demap(sym, back);
    EXPECT_EQ(back, bits) << "pattern " << i;
  }
}

TEST_P(AllSchemes, DemapToleratesHalfDecisionDistanceNoise) {
  const Constellation c = Constellation::make(GetParam());
  // Minimum axis spacing is 2/norm; noise below half of that in each
  // dimension cannot cross a decision boundary.
  const double margin = 0.9 / c.norm_factor();
  Rng rng(81);
  for (std::size_t i = 0; i < c.size(); ++i) {
    bitvec bits;
    append_uint(bits, i, c.bits());
    const cplx noisy = c.map(bits) + cplx{rng.uniform(-margin, margin),
                                          rng.uniform(-margin, margin)};
    bitvec back;
    c.demap(noisy, back);
    EXPECT_EQ(back, bits);
  }
}

TEST_P(AllSchemes, GrayNeighboursDifferInOneBit) {
  const Constellation c = Constellation::make(GetParam());
  const double step = 2.0 / c.norm_factor();
  // For every point, its +step neighbour on the I axis (if it exists)
  // must differ in exactly one bit.
  for (std::size_t i = 0; i < c.size(); ++i) {
    const cplx p = c.point(i);
    for (std::size_t j = 0; j < c.size(); ++j) {
      const cplx q = c.point(j);
      if (std::abs(q.real() - p.real() - step) < 1e-9 &&
          std::abs(q.imag() - p.imag()) < 1e-9) {
        bitvec bi;
        bitvec bj;
        append_uint(bi, i, c.bits());
        append_uint(bj, j, c.bits());
        EXPECT_EQ(hamming_distance(bi, bj), 1u)
            << "points " << i << " and " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, AllSchemes,
                         ::testing::Values(Scheme::kBpsk, Scheme::kQpsk,
                                           Scheme::kQam16, Scheme::kQam64,
                                           Scheme::kQam256));

TEST(Constellation, RectangularOddBitLoads) {
  // 3 bits: 2 on I (4 levels), 1 on Q (2 levels) -> 8 points, unit energy.
  const Constellation c = Constellation::make_rect(2, 1);
  EXPECT_EQ(c.bits(), 3u);
  EXPECT_EQ(c.size(), 8u);
  double e = 0.0;
  for (std::size_t i = 0; i < 8; ++i) e += std::norm(c.point(i));
  EXPECT_NEAR(e / 8.0, 1.0, 1e-12);
}

TEST(Constellation, MapAllChunksCorrectly) {
  const Constellation c = Constellation::make(Scheme::kQpsk);
  Rng rng(82);
  const bitvec bits = rng.bits(64);
  const cvec symbols = c.map_all(bits);
  ASSERT_EQ(symbols.size(), 32u);
  EXPECT_EQ(c.demap_all(symbols), bits);
}

TEST(Constellation, RejectsBadSizes) {
  const Constellation c = Constellation::make(Scheme::kQam16);
  EXPECT_THROW(c.map(bitvec{1, 0}), DimensionError);
  EXPECT_THROW(c.map_all(bitvec(6, 0)), DimensionError);
}

}  // namespace
}  // namespace ofdm::mapping

// --- soft demapping ---------------------------------------------------------

namespace ofdm::mapping {
namespace {

TEST(SoftDemap, SignsMatchHardDecisionsOnCleanSymbols) {
  for (Scheme s : {Scheme::kBpsk, Scheme::kQpsk, Scheme::kQam16,
                   Scheme::kQam64}) {
    const Constellation c = Constellation::make(s);
    for (std::size_t i = 0; i < c.size(); ++i) {
      rvec llr;
      c.demap_soft(c.point(i), 1.0, llr);
      ASSERT_EQ(llr.size(), c.bits());
      for (std::size_t b = 0; b < c.bits(); ++b) {
        const bool bit_one = (i >> (c.bits() - 1 - b)) & 1u;
        // llr > 0 means bit 0: sign must agree with the true bit.
        if (bit_one) {
          EXPECT_LT(llr[b], 0.0) << scheme_name(s) << " pt " << i;
        } else {
          EXPECT_GT(llr[b], 0.0) << scheme_name(s) << " pt " << i;
        }
      }
    }
  }
}

TEST(SoftDemap, MagnitudeGrowsWithDistanceFromBoundary) {
  // BPSK maps bit 0 -> -1 and bit 1 -> +1, so a positive received
  // value implies bit 1 (negative LLR under the llr>0 => bit-0
  // convention), with confidence growing away from the boundary.
  const Constellation c = Constellation::make(Scheme::kBpsk);
  rvec near_llr;
  rvec far_llr;
  c.demap_soft(cplx{0.1, 0.0}, 1.0, near_llr);
  c.demap_soft(cplx{1.0, 0.0}, 1.0, far_llr);
  EXPECT_LT(near_llr[0], 0.0);
  EXPECT_LT(far_llr[0], near_llr[0]);
  EXPECT_GT(std::abs(far_llr[0]), std::abs(near_llr[0]));
}

TEST(SoftDemap, NoiseVarianceScalesLlrs) {
  const Constellation c = Constellation::make(Scheme::kQam16);
  rvec a;
  rvec b;
  c.demap_soft(cplx{0.5, 0.4}, 1.0, a);
  c.demap_soft(cplx{0.5, 0.4}, 2.0, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], 2.0 * b[i], 1e-12);
  }
}

TEST(SoftDemap, RejectsNonPositiveNoise) {
  const Constellation c = Constellation::make(Scheme::kQpsk);
  rvec out;
  EXPECT_THROW(c.demap_soft(cplx{0, 0}, 0.0, out), Error);
}

}  // namespace
}  // namespace ofdm::mapping
