// Checkpoint/restore tests: the serialization primitives, per-block
// state round-trips, and whole-graph snapshot-resume bit-identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "core/profiles.hpp"
#include "obs/stream_hash.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/channels/cfo.hpp"
#include "rf/channels/rician.hpp"
#include "rf/channels/tdl.hpp"
#include "rf/channels/watterson.hpp"
#include "rf/fading.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm {
namespace {

TEST(StateSerial, PrimitivesRoundTrip) {
  StateWriter w;
  w.u8(0xAB);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-0.0);
  w.f64(3.14159);
  w.str("submodel[802.11a]");
  const cvec cv{{1.5, -2.5}, {0.0, 1e-300}};
  const rvec rv{0.25, -0.5, 4096.0};
  w.vec_c(cv);
  w.vec_r(rv);

  StateReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  // -0.0 must survive by bit pattern, not value comparison.
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "submodel[802.11a]");
  cvec cv2;
  rvec rv2;
  r.vec_c(cv2);
  r.vec_r(rv2);
  EXPECT_EQ(cv2, cv);
  EXPECT_EQ(rv2, rv);
  EXPECT_TRUE(r.done());
}

TEST(StateSerial, TruncatedBufferThrows) {
  StateWriter w;
  w.u64(42);
  w.str("hello");
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 3);
  StateReader r(bytes);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_THROW(r.str(), StateError);
}

TEST(StateSerial, NodeFramingCatchesNameMismatch) {
  StateWriter w;
  w.begin_node("awgn");
  w.f64(1.0);
  w.end_node();
  StateReader r(w.bytes());
  EXPECT_THROW(r.enter_node("fading"), StateError);
}

TEST(StateSerial, NodeFramingCatchesUnderconsumedFrame) {
  StateWriter w;
  w.begin_node("awgn");
  w.f64(1.0);
  w.f64(2.0);
  w.end_node();
  StateReader r(w.bytes());
  r.enter_node("awgn");
  r.f64();  // leave one value unread
  EXPECT_THROW(r.exit_node(), StateError);
}

TEST(StateSerial, RngResumesIdenticalStream) {
  Rng a(12345);
  // Advance through both generators, leaving a cached Box-Muller value
  // pending so the gaussian cache is part of the round trip.
  for (int i = 0; i < 7; ++i) a.gaussian();
  for (int i = 0; i < 3; ++i) a.uniform();
  StateWriter w;
  a.save(w);
  Rng b(999);  // deliberately different seed; load must overwrite all
  StateReader r(w.bytes());
  b.load(r);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.gaussian(), b.gaussian());
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

/// Save/load a single block mid-stream and require the continuation to
/// be bit-identical to the uninterrupted run.
template <typename MakeBlock>
void expect_block_resumes(MakeBlock make) {
  Rng rng(4242);
  cvec input(2048);
  for (cplx& v : input) v = rng.complex_gaussian(1.0);
  const std::span<const cplx> first(input.data(), 1024);
  const std::span<const cplx> second(input.data() + 1024, 1024);

  auto full = make();
  cvec out_a;
  cvec out_b;
  full->process(first, out_a);

  StateWriter w;
  full->save_state(w);
  auto resumed = make();
  StateReader r(w.bytes());
  resumed->load_state(r);
  EXPECT_TRUE(r.done());

  full->process(second, out_a);
  resumed->process(second, out_b);
  ASSERT_EQ(out_a.size(), out_b.size());
  EXPECT_EQ(obs::hash_samples(out_a), obs::hash_samples(out_b));
}

TEST(BlockState, StatefulBlocksResumeBitIdentically) {
  using std::make_unique;
  expect_block_resumes(
      [] { return make_unique<rf::AwgnChannel>(1e-2, 7); });
  expect_block_resumes([] {
    return make_unique<rf::MultipathChannel>(
        rf::exponential_pdp_taps(2.0, 6, 11));
  });
  expect_block_resumes([] {
    return make_unique<rf::FadingChannel>(
        std::vector<rf::FadingTap>{{0, 1.0}, {3, 0.5}}, 50.0, 1e6, 21);
  });
  expect_block_resumes(
      [] { return make_unique<rf::ImpulseNoise>(1e-3, 8.0, 4.0, 31); });
  expect_block_resumes(
      [] { return make_unique<rf::PhaseNoise>(100.0, 1e6, 41); });
  expect_block_resumes(
      [] { return make_unique<rf::FrequencyShift>(1.3e4, 1e6); });
  expect_block_resumes([] { return make_unique<rf::Dac>(10, 4); });
  expect_block_resumes([] {
    return make_unique<rf::IqModulator>(rf::Oscillator(1e5, 1e6, 0.0,
                                                       50.0, 51));
  });
  expect_block_resumes([] {
    return make_unique<rf::IqDemodulator>(
        rf::Oscillator(1e5, 1e6, 0.0, 0.0, 61), 0.2, 63);
  });
  expect_block_resumes([] { return make_unique<rf::DecimatorBlock>(4); });
}

TEST(BlockState, ChannelLibraryResumesBitIdentically) {
  using rf::channels::CcirCondition;
  // Watterson with a high spread so the gains move measurably within
  // the 2048-sample window (snapshot lands mid-fade, not on a plateau).
  expect_block_resumes([] {
    return rf::channels::make_watterson(CcirCondition::kFlutter, 48e3,
                                        91);
  });
  expect_block_resumes([] {
    return std::make_unique<rf::channels::RicianChannel>(10.0, 500.0,
                                                         1e6, 92);
  });
  expect_block_resumes([] {
    return rf::channels::make_tdl_channel(
        rf::channels::tdl_profile("sui_3"), 20e6, 93);
  });
  expect_block_resumes([] {
    return std::make_unique<rf::channels::OscillatorDrift>(200.0, 100.0,
                                                           1e6);
  });
}

TEST(BlockState, WattersonRejectsWrongPathCount) {
  auto two = rf::channels::make_watterson(
      rf::channels::CcirCondition::kPoor, 48e3, 5);
  StateWriter w;
  two->save_state(w);
  rf::channels::WattersonChannel one(
      {{0, 1.0}}, 1.0, 48e3, 5);
  StateReader r(w.bytes());
  EXPECT_THROW(one.load_state(r), StateError);
}

TEST(BlockState, MultipathRejectsWrongTapCount) {
  rf::MultipathChannel a(rf::exponential_pdp_taps(2.0, 6, 11));
  StateWriter w;
  a.save_state(w);
  rf::MultipathChannel b(rf::exponential_pdp_taps(2.0, 9, 11));
  StateReader r(w.bytes());
  EXPECT_THROW(b.load_state(r), StateError);
}

TEST(BlockState, SubmodelRejectsWrongStandard) {
  rf::Submodel a(core::profile_wlan_80211a(), 16, 5);
  cvec sink;
  a.pull(4096, sink);
  StateWriter w;
  a.save_state(w);
  rf::Submodel b(core::profile_dab(), 16, 5);
  StateReader r(w.bytes());
  EXPECT_THROW(b.load_state(r), StateError);
}

TEST(ChainState, MidStreamChainResumesBitIdentically) {
  auto build = [] {
    auto chain = std::make_unique<rf::Chain>();
    chain->add<rf::Gain>(-2.0);
    chain->add<rf::MultipathChannel>(rf::exponential_pdp_taps(1.5, 5, 3));
    chain->add<rf::PhaseNoise>(80.0, 1e6, 17);
    chain->add<rf::AwgnChannel>(1e-3, 23);
    return chain;
  };
  expect_block_resumes(build);
}

TEST(ChainState, LoadRejectsDifferentlyComposedChain) {
  rf::Chain a;
  a.add<rf::Gain>(-2.0);
  a.add<rf::AwgnChannel>(1e-3);
  StateWriter w;
  a.save_state(w);

  rf::Chain different_order;
  different_order.add<rf::AwgnChannel>(1e-3);
  different_order.add<rf::Gain>(-2.0);
  {
    StateReader r(w.bytes());
    EXPECT_THROW(different_order.load_state(r), StateError);
  }

  rf::Chain different_size;
  different_size.add<rf::Gain>(-2.0);
  {
    StateReader r(w.bytes());
    EXPECT_THROW(different_size.load_state(r), StateError);
  }
}

namespace {

/// A tone -> IF shift -> PA -> capture netlist used by the snapshot
/// tests; deterministic and stateful on every node.
rf::Netlist build_netlist(rf::Netlist::NodeId* capture_id) {
  rf::Netlist net;
  const auto tone = net.add_source<rf::ToneSource>(1.1e6, 20e6, 0.8);
  const auto shift = net.add_block<rf::FrequencyShift>(2e6, 20e6);
  const auto pa = net.add_block<rf::SoftClipPa>(0.75);
  const auto cap = net.add_block<rf::Capture>();
  net.connect(tone, shift);
  net.connect(shift, pa);
  net.connect(pa, cap);
  if (capture_id != nullptr) *capture_id = cap;
  return net;
}

}  // namespace

TEST(NetlistState, SnapshotResumeMatchesUninterruptedRun) {
  rf::Netlist::NodeId cap_a;
  rf::Netlist net = build_netlist(&cap_a);
  net.run(4096, 1000);  // chunk does not divide the total
  const std::vector<std::uint8_t> snap = net.snapshot();

  net.run(4096, 1000);
  const std::uint64_t uninterrupted =
      obs::hash_samples(net.node<rf::Capture>(cap_a).samples());

  rf::Netlist::NodeId cap_b;
  rf::Netlist resumed = build_netlist(&cap_b);
  resumed.restore(snap);
  resumed.run(4096, 1000);
  EXPECT_EQ(obs::hash_samples(resumed.node<rf::Capture>(cap_b).samples()),
            uninterrupted);
}

TEST(NetlistState, RestoreRejectsForeignBytes) {
  rf::Netlist net = build_netlist(nullptr);
  // Not a snapshot at all.
  const std::vector<std::uint8_t> garbage(64, 0x5A);
  EXPECT_THROW(net.restore(garbage), StateError);
  // A valid snapshot of a different graph.
  rf::Netlist other;
  other.add_source<rf::ToneSource>(1e6, 20e6, 0.5);
  const std::vector<std::uint8_t> foreign = other.snapshot();
  EXPECT_THROW(net.restore(foreign), StateError);
}

TEST(NetlistState, SubmodelGraphResumesAcrossFrameBoundary) {
  // The Submodel's buffered frame tail is the subtle part of its state:
  // interrupt mid-frame and the resumed graph must finish that frame
  // from the buffer, not regenerate it.
  auto build = [] {
    rf::Netlist net;
    const auto src =
        net.add_source<rf::Submodel>(core::profile_adsl(), 27, 9);
    const auto meter = net.add_block<rf::PowerMeter>();
    const auto cap = net.add_block<rf::Capture>();
    net.connect(src, meter);
    net.connect(meter, cap);
    return net;
  };
  rf::Netlist first = build();
  first.run(3000, 500);
  const std::vector<std::uint8_t> snap = first.snapshot();
  first.run(3000, 500);
  const std::uint64_t golden = obs::hash_samples(
      first.node<rf::Capture>(rf::Netlist::NodeId{2}).samples());

  rf::Netlist resumed = build();
  resumed.restore(snap);
  resumed.run(3000, 500);
  EXPECT_EQ(obs::hash_samples(
                resumed.node<rf::Capture>(rf::Netlist::NodeId{2}).samples()),
            golden);
}

}  // namespace
}  // namespace ofdm
