// Pipeline-parallel graph executor: bit-identity with the sequential
// drivers, queue-edge behaviour (maximal backpressure, thread clamp),
// fault propagation out of worker stages, snapshot/restore under the
// parallel executor, and the RunStats accounting the executor makes
// meaningful (leaf samples_out, block_seconds, per-stage busy/stall).
//
// The deep fan-in cases double as the ThreadSanitizer target
// (scripts/tsan.sh builds this suite with -fsanitize=thread).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/profiles.hpp"
#include "obs/probe.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/fault.hpp"
#include "rf/frontend.hpp"
#include "rf/guard.hpp"
#include "rf/impairments.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/sinks.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

// Chunk size chosen to cut through frame/gap/delay-line boundaries.
constexpr std::size_t kChunk = 997;
constexpr std::size_t kChunks = 8;
constexpr std::size_t kTotal = kChunk * kChunks;

/// A stateful reference graph: every block carries streaming state
/// across chunk boundaries, so any executor reordering would move bits.
struct ChainGraph {
  Submodel source;
  Chain chain;
  obs::ProbeSet probes{{.measure_signal = false, .hash_output = true}};

  ChainGraph()
      : source(core::profile_for(core::Standard::kHomePlug),
               /*gap_samples=*/31, /*payload_seed=*/7) {
    chain.add<Gain>(-3.0);
    chain.add<MultipathChannel>(exponential_pdp_taps(1.5, 4, 7));
    chain.add<FrequencyShift>(1e4, 1e6);
    chain.add<SoftClipPa>(0.9);
    chain.attach_probes(probes);
  }

  std::vector<std::uint64_t> hashes() const {
    std::vector<std::uint64_t> h;
    for (const obs::BlockProbe& p : probes) h.push_back(p.output_hash());
    return h;
  }
};

/// Fan-out + summing fan-in netlist, all paths stateful.
struct NetGraph {
  Netlist net;
  obs::ProbeSet probes{{.measure_signal = false, .hash_output = true}};
  Netlist::NodeId meter_a;
  Netlist::NodeId meter_b;

  NetGraph() {
    const auto tone_a = net.add_source<ToneSource>(1e6, 20e6, 0.5);
    const auto tone_b = net.add_source<ToneSource>(3e6, 20e6, 0.25);
    const auto mix = net.add_block<Gain>(0.0);
    net.connect(tone_a, mix);
    net.connect(tone_b, mix);  // summing fan-in
    const auto shift = net.add_block<FrequencyShift>(2e4, 20e6);
    net.connect(mix, shift);
    const auto pa = net.add_block<SoftClipPa>(0.8);
    net.connect(shift, pa);
    meter_a = net.add_block<PowerMeter>();
    net.connect(pa, meter_a);
    // Fan-out: the mixed stream also feeds a second branch, whose
    // fan-in with the PA output crosses stage boundaries.
    const auto echo = net.add_block<MultipathChannel>(
        exponential_pdp_taps(2.0, 6, 11));
    net.connect(mix, echo);
    const auto sum2 = net.add_block<Gain>(-1.0);
    net.connect(echo, sum2);
    net.connect(pa, sum2);  // fan-in across branches
    meter_b = net.add_block<PowerMeter>();
    net.connect(sum2, meter_b);
    net.attach_probes(probes);
  }

  std::vector<std::uint64_t> hashes() const {
    std::vector<std::uint64_t> h;
    for (const obs::BlockProbe& p : probes) h.push_back(p.output_hash());
    return h;
  }
};

TEST(Executor, ChainParallelMatchesSequentialBitExact) {
  ChainGraph seq;
  const RunStats s0 = run(seq.source, seq.chain, kTotal, kChunk);

  ChainGraph par;
  const RunStats s1 = run(par.source, par.chain, kTotal, kChunk,
                          {.threads = 4, .queue_depth = 4});

  EXPECT_EQ(seq.hashes(), par.hashes());
  EXPECT_EQ(s0.samples_in, s1.samples_in);
  EXPECT_EQ(s0.samples_out, s1.samples_out);
  EXPECT_EQ(s1.samples_out, kTotal);
  EXPECT_TRUE(s0.stages.empty());
  EXPECT_EQ(s1.stages.size(), 4u);
}

TEST(Executor, NetlistParallelMatchesSequential) {
  NetGraph seq;
  const RunStats s0 = seq.net.run(kTotal, kChunk);

  NetGraph par;
  const RunStats s1 = par.net.run(kTotal, kChunk,
                                  {.threads = 4, .queue_depth = 2});

  EXPECT_EQ(seq.hashes(), par.hashes());
  EXPECT_EQ(s0.samples_in, s1.samples_in);
  EXPECT_EQ(s0.samples_out, s1.samples_out);
  // Two leaves (the meters), each 1:1 with the source rate.
  EXPECT_EQ(s1.samples_out, 2 * kTotal);
}

TEST(Executor, QueueDepthOneIsMaximalBackpressureAndStillBitExact) {
  ChainGraph seq;
  run(seq.source, seq.chain, kTotal, kChunk);

  ChainGraph par;
  const RunStats stats = run(par.source, par.chain, kTotal, kChunk,
                             {.threads = 4, .queue_depth = 1});
  EXPECT_EQ(seq.hashes(), par.hashes());
  for (const obs::StageStats& st : stats.stages) {
    EXPECT_EQ(st.chunks, kChunks) << st.name;
  }
}

TEST(Executor, ThreadsClampToStageCount) {
  // Source + 2 blocks = 3 work items; 16 threads must clamp to 3
  // stages and still drain the whole run.
  ToneSource seq_src(1e6, 20e6, 0.5);
  Chain seq_chain;
  seq_chain.add<Gain>(-2.0);
  seq_chain.add<SoftClipPa>(0.9);
  obs::ProbeSet seq_probes({.measure_signal = false, .hash_output = true});
  seq_chain.attach_probes(seq_probes);
  run(seq_src, seq_chain, kTotal, kChunk);

  ToneSource src(1e6, 20e6, 0.5);
  Chain chain;
  chain.add<Gain>(-2.0);
  chain.add<SoftClipPa>(0.9);
  obs::ProbeSet probes({.measure_signal = false, .hash_output = true});
  chain.attach_probes(probes);
  const RunStats stats =
      run(src, chain, kTotal, kChunk, {.threads = 16, .queue_depth = 4});

  EXPECT_EQ(stats.stages.size(), 3u);
  for (std::size_t b = 0; b < probes.size(); ++b) {
    EXPECT_EQ(probes.at(b).output_hash(), seq_probes.at(b).output_hash());
  }
}

/// Interior-stage fault: a Throw-policy guard fires inside a worker;
/// the caller must see the original block name and sample offset, and
/// every worker must have joined by the time the exception lands.
TEST(Executor, MidStreamStreamErrorKeepsBlockNameAndOffset) {
  auto build = [](GuardSet& guards) {
    auto graph = std::make_unique<Chain>();
    graph->add<Gain>(-3.0);
    graph->add_ptr(std::make_unique<FlakyBlock>(
        std::make_unique<Gain>(0.0), /*every_n_chunks=*/3,
        FlakyBlock::Fault::kNaN));
    graph->add<SoftClipPa>(0.9);
    graph->add<PowerMeter>();
    graph->attach_guards(guards);
    return graph;
  };

  // Sequential oracle for the fault identity.
  std::string seq_block;
  std::uint64_t seq_offset = 0;
  {
    GuardSet guards({.policy = GuardPolicy::kThrow});
    auto chain = build(guards);
    ToneSource src(1e6, 20e6, 0.5);
    try {
      run(src, *chain, kTotal, kChunk);
      FAIL() << "sequential run should have faulted";
    } catch (const StreamError& e) {
      seq_block = e.block();
      seq_offset = e.sample_offset();
    }
  }
  ASSERT_NE(seq_block.find("flaky"), std::string::npos) << seq_block;

  GuardSet guards({.policy = GuardPolicy::kThrow});
  auto chain = build(guards);
  ToneSource src(1e6, 20e6, 0.5);
  try {
    run(src, *chain, kTotal, kChunk, {.threads = 4, .queue_depth = 2});
    FAIL() << "parallel run should have faulted";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.block(), seq_block);
    EXPECT_EQ(e.sample_offset(), seq_offset);
  }
  // Workers joined cleanly: the same graph keeps working sequentially
  // from where its state ended up.
  ToneSource src2(1e6, 20e6, 0.5);
  GuardSet relaxed({.policy = GuardPolicy::kZero});
  chain->detach_guards();
  chain->attach_guards(relaxed);
  const RunStats stats = run(src2, *chain, 4 * kChunk, kChunk);
  EXPECT_EQ(stats.samples_out, 4 * kChunk);
}

/// Quiesce: a parallel run must leave *exactly* the sequential state
/// behind — the snapshots have to be byte-identical — and resuming
/// under the parallel executor must continue the same bit stream.
TEST(Executor, SnapshotRestoreResumeBitIdenticalUnderParallelExecutor) {
  auto build = [] {
    struct Graph {
      Netlist net;
      Graph() {
        const auto src = net.add_source<Submodel>(
            core::profile_for(core::Standard::kWlan80211a),
            /*gap_samples=*/31, /*payload_seed=*/7);
        const auto gain = net.add_block<Gain>(-3.0);
        net.connect(src, gain);
        const auto mp = net.add_block<MultipathChannel>(
            exponential_pdp_taps(1.5, 4, 7));
        net.connect(gain, mp);
        const auto pa = net.add_block<SoftClipPa>(0.9);
        net.connect(mp, pa);
        const auto meter = net.add_block<PowerMeter>();
        net.connect(pa, meter);
      }
    };
    return std::make_unique<Graph>();
  };
  const RunOptions par{.threads = 4, .queue_depth = 2};
  const std::size_t half = kTotal / 2;

  auto seq = build();
  seq->net.run(half, kChunk);
  const std::vector<std::uint8_t> seq_snap = seq->net.snapshot();

  auto pipelined = build();
  pipelined->net.run(half, kChunk, par);
  EXPECT_EQ(pipelined->net.snapshot(), seq_snap)
      << "parallel executor did not quiesce to the sequential state";

  // Resume both from the *parallel* snapshot and finish the run, one
  // sequentially and one under the executor: same bits either way.
  auto finish = [&](const RunOptions& opts) {
    auto resumed = build();
    resumed->net.restore(seq_snap);
    obs::ProbeSet probes({.measure_signal = false, .hash_output = true});
    resumed->net.attach_probes(probes);
    resumed->net.run(kTotal - half, kChunk, opts);
    std::vector<std::uint64_t> h;
    for (const obs::BlockProbe& p : probes) h.push_back(p.output_hash());
    return h;
  };
  EXPECT_EQ(finish(RunOptions{}), finish(par));
}

/// Regression for the samples_out accounting bug: the old code summed
/// every node's buffer once after the loop, reporting only the final
/// chunk and counting interior nodes.
TEST(Executor, NetlistSamplesOutAccumulatesLeafOutputPerChunk) {
  Netlist net;
  const auto src = net.add_source<ToneSource>(1e6, 20e6, 0.5);
  const auto gain = net.add_block<Gain>(-3.0);
  net.connect(src, gain);
  const auto meter = net.add_block<PowerMeter>();
  net.connect(gain, meter);

  const std::size_t total = 4 * 1024;  // total > chunk
  const RunStats stats = net.run(total, 1024);
  // One leaf (the meter), 1:1 rate: all chunks accumulate, interior
  // nodes (gain) and the source do not count.
  EXPECT_EQ(stats.samples_out, total);
  EXPECT_EQ(stats.samples_in, total);
}

TEST(Executor, BlockSecondsAndStageStatsAreAttributed) {
  ChainGraph seq;
  const RunStats s0 = run(seq.source, seq.chain, kTotal, kChunk);
  EXPECT_GT(s0.block_seconds, 0.0);
  EXPECT_GT(s0.source_seconds, 0.0);

  ChainGraph par;
  const RunStats s1 = run(par.source, par.chain, kTotal, kChunk,
                          {.threads = 2, .queue_depth = 4});
  EXPECT_GT(s1.block_seconds, 0.0);
  ASSERT_EQ(s1.stages.size(), 2u);
  double busy = 0.0;
  for (const obs::StageStats& st : s1.stages) {
    EXPECT_EQ(st.chunks, kChunks);
    EXPECT_GT(st.blocks, 0u);
    busy += st.busy_seconds;
  }
  EXPECT_GT(busy, 0.0);

  // Netlist sequential path attributes block time too.
  NetGraph net;
  const RunStats s2 = net.net.run(kTotal, kChunk);
  EXPECT_GT(s2.block_seconds, 0.0);
}

TEST(Executor, ZeroTotalIsANoOp) {
  ChainGraph g;
  const RunStats stats =
      run(g.source, g.chain, 0, kChunk, {.threads = 4, .queue_depth = 2});
  EXPECT_EQ(stats.samples_in, 0u);
  EXPECT_EQ(stats.samples_out, 0u);
}

/// The ThreadSanitizer workhorse: a deep netlist with fan-out, summing
/// fan-in, guards *and* probes attached, driven under four stages with
/// a shallow queue so producers hit backpressure and consumers starve —
/// the full concurrent surface (SPSC queues, slot recycling,
/// pass-through forwarding, observed calls from worker threads).
TEST(Executor, TsanDeepNetlistFanInUnderFourStages) {
  NetGraph seq;
  GuardSet seq_guards({.policy = GuardPolicy::kZero});
  seq.net.attach_guards(seq_guards);
  seq.net.run(32 * kChunk, kChunk);

  NetGraph par;
  GuardSet guards({.policy = GuardPolicy::kZero});
  par.net.attach_guards(guards);
  const RunStats stats =
      par.net.run(32 * kChunk, kChunk, {.threads = 4, .queue_depth = 2});

  EXPECT_EQ(seq.hashes(), par.hashes());
  EXPECT_EQ(guards.total_faults(), 0u);
  ASSERT_EQ(stats.stages.size(), 4u);
  for (const obs::StageStats& st : stats.stages) {
    EXPECT_EQ(st.chunks, 32u);
  }
}

}  // namespace
}  // namespace ofdm::rf
