// Golden-trace regression suite: a bit-level net under the ten-standard
// family.
//
// For every family member a fixed-seed payload is modulated and the
// output stream is folded into a 64-bit rolling hash (obs::StreamHash).
// The hashes are checked against the table in golden_traces.inc, and the
// sequential (threads == 1) and threaded (threads == 4) pipelines must
// produce the *same* hash — the bit-exactness claim of the symbol
// pipeline, now enforced per standard on every test run.
//
// Intentional waveform changes: rerun this binary with --regen to
// rewrite tests/golden_traces.inc in the source tree, inspect the diff,
// and commit it alongside the change that moved the bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "core/profiles.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "obs/stream_hash.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/channels/registry.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/submodel.hpp"

namespace ofdm {
namespace {

struct GoldenEntry {
  const char* standard;
  std::uint64_t hash;        // single modulated burst (tx only)
  std::uint64_t graph_hash;  // burst streamed through the golden graph
};

constexpr GoldenEntry kGoldenTraces[] = {
#include "golden_traces.inc"
};

constexpr std::uint64_t kPayloadSeed = 0xB0D5;

/// The deterministic capture everything below agrees on: fixed payload
/// seed, payload clamped to [200, 4000] bits, one modulated burst.
cvec golden_burst(core::Standard standard, std::size_t threads) {
  core::OfdmParams params = core::profile_for(standard);
  params.threads = threads;
  core::Transmitter tx(params);
  Rng rng(kPayloadSeed);
  const bitvec payload = rng.bits(std::clamp<std::size_t>(
      tx.recommended_payload_bits(), 200, 4000));
  return tx.modulate(payload).samples;
}

/// The golden RF graph: a Submodel streaming into a small stateful chain
/// (gain, static multipath, digital IF shift, soft-clip PA). Every block
/// carries streaming state across chunk boundaries, which is exactly what
/// the snapshot-resume test must preserve bit-identically.
struct GoldenGraph {
  rf::Submodel source;
  rf::Chain chain;

  explicit GoldenGraph(core::Standard standard)
      : source(core::profile_for(standard), 31, kPayloadSeed) {
    chain.add<rf::Gain>(-3.0);
    chain.add<rf::MultipathChannel>(rf::exponential_pdp_taps(1.5, 4, 7));
    chain.add<rf::FrequencyShift>(1e4, 1e6);
    chain.add<rf::SoftClipPa>(0.9);
  }

  /// Stream `chunks` chunks of kGraphChunk samples, folding the chain
  /// output into `hash`.
  void run(std::size_t chunks, obs::StreamHash& hash) {
    cvec in;
    cvec out;
    for (std::size_t c = 0; c < chunks; ++c) {
      source.pull(kGraphChunk, in);
      chain.process(in, out);
      hash.update(out);
    }
  }

  /// Serialize source + chain as two named frames.
  std::vector<std::uint8_t> checkpoint() const {
    StateWriter w;
    w.begin_node(source.name());
    source.save_state(w);
    w.end_node();
    w.begin_node(chain.name());
    chain.save_state(w);
    w.end_node();
    return w.bytes();
  }

  void restore(std::span<const std::uint8_t> bytes) {
    StateReader r(bytes);
    r.enter_node(source.name());
    source.load_state(r);
    r.exit_node();
    r.enter_node(chain.name());
    chain.load_state(r);
    r.exit_node();
    ASSERT_TRUE(r.done());
  }

  // Deliberately not a divisor of any frame length: chunk boundaries cut
  // through frames, gaps, and filter delay lines.
  static constexpr std::size_t kGraphChunk = 997;
  static constexpr std::size_t kGraphChunks = 6;
};

std::uint64_t golden_graph_hash(core::Standard standard) {
  GoldenGraph g(standard);
  obs::StreamHash hash;
  g.run(GoldenGraph::kGraphChunks, hash);
  return hash.digest();
}

// ---------------------------------------------------------------------
// Standard x channel combos: pin representative members of the channel
// library (rf/channels) streamed behind a Submodel. The tx-hash column
// is unused for these rows (one channel block, no second waveform).
// ---------------------------------------------------------------------

struct ChannelCombo {
  const char* name;      ///< row key in golden_traces.inc
  core::Standard standard;
  const char* preset;    ///< registry token
};

constexpr ChannelCombo kChannelCombos[] = {
    {"IEEE 802.11a + itu_veh_a", core::Standard::kWlan80211a, "itu_veh_a"},
    {"IEEE 802.11a + sui_3", core::Standard::kWlan80211a, "sui_3"},
    {"DRM + ccir_poor", core::Standard::kDrm, "ccir_poor"},
};

constexpr std::uint64_t kChannelSeed = 0xC44A;

/// Submodel -> one channel-library block, mirroring GoldenGraph's
/// streaming/checkpoint discipline.
struct ChannelGraph {
  rf::Submodel source;
  rf::Chain chain;

  explicit ChannelGraph(const ChannelCombo& combo)
      : source(core::profile_for(combo.standard), 31, kPayloadSeed) {
    rf::channels::MakeOptions opts;
    opts.sample_rate = core::profile_for(combo.standard).sample_rate;
    opts.seed = kChannelSeed;
    chain.add_ptr(rf::channels::make_preset(combo.preset, opts));
  }

  /// Stream `total` samples in chunks of `chunk`, folding into `hash`.
  void run(std::size_t total, std::size_t chunk, obs::StreamHash& hash) {
    cvec in;
    cvec out;
    for (std::size_t off = 0; off < total;) {
      const std::size_t n = std::min(chunk, total - off);
      source.pull(n, in);
      chain.process(in, out);
      hash.update(out);
      off += n;
    }
  }

  std::vector<std::uint8_t> checkpoint() const {
    StateWriter w;
    w.begin_node(source.name());
    source.save_state(w);
    w.end_node();
    w.begin_node(chain.name());
    chain.save_state(w);
    w.end_node();
    return w.bytes();
  }

  void restore(std::span<const std::uint8_t> bytes) {
    StateReader r(bytes);
    r.enter_node(source.name());
    source.load_state(r);
    r.exit_node();
    r.enter_node(chain.name());
    chain.load_state(r);
    r.exit_node();
    ASSERT_TRUE(r.done());
  }

  static constexpr std::size_t kTotal =
      GoldenGraph::kGraphChunk * GoldenGraph::kGraphChunks;
};

std::uint64_t channel_graph_hash(const ChannelCombo& combo) {
  ChannelGraph g(combo);
  obs::StreamHash hash;
  g.run(ChannelGraph::kTotal, GoldenGraph::kGraphChunk, hash);
  return hash.digest();
}

// The checked-in digests are blessed under the split-radix FFT engine
// (the process default; see DESIGN.md §16). Under OFDM_FFT=radix2 the
// waveforms are still deterministic but differ at the bit level (the
// two engines order floating-point additions differently), so digest
// comparisons self-skip; invariance oracles (threaded == sequential,
// snapshot-resume, chunking) still run under either engine.
#define SKIP_UNLESS_GOLDEN_ENGINE()                                       \
  if (dsp::fft_engine() != dsp::FftEngine::kSplitRadix)                   \
  GTEST_SKIP() << "checked-in digests are blessed under the split-radix " \
                  "FFT engine; active engine is "                         \
               << dsp::fft_engine_name(dsp::fft_engine())

const GoldenEntry* find_golden(const std::string& name) {
  for (const GoldenEntry& e : kGoldenTraces) {
    if (name == e.standard) return &e;
  }
  return nullptr;
}

class GoldenTraces : public ::testing::TestWithParam<core::Standard> {};

TEST_P(GoldenTraces, SequentialMatchesCheckedInHash) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const std::string name = core::standard_name(GetParam());
  const GoldenEntry* golden = find_golden(name);
  ASSERT_NE(golden, nullptr)
      << name << " missing from golden_traces.inc -- rerun with --regen";
  const cvec samples = golden_burst(GetParam(), 1);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(obs::hash_samples(samples), golden->hash)
      << name << ": waveform changed at the bit level. If intentional, "
      << "regenerate with: test_golden_traces --regen";
}

TEST_P(GoldenTraces, ThreadedPipelineIsBitExact) {
  const cvec sequential = golden_burst(GetParam(), 1);
  const cvec threaded = golden_burst(GetParam(), 4);
  ASSERT_EQ(sequential.size(), threaded.size());
  EXPECT_EQ(obs::hash_samples(sequential), obs::hash_samples(threaded))
      << core::standard_name(GetParam());
}

TEST_P(GoldenTraces, GraphRunMatchesCheckedInHash) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const std::string name = core::standard_name(GetParam());
  const GoldenEntry* golden = find_golden(name);
  ASSERT_NE(golden, nullptr)
      << name << " missing from golden_traces.inc -- rerun with --regen";
  EXPECT_EQ(golden_graph_hash(GetParam()), golden->graph_hash)
      << name << ": RF-graph stream changed at the bit level. If "
      << "intentional, regenerate with: test_golden_traces --regen";
}

// The pipeline-parallel executor must reproduce the checked-in graph
// digest exactly: same blocks, same chunking, four stages with a
// shallow queue. The last block's probe hashes the graph output stream,
// which is precisely what golden_graph_hash() folds.
TEST_P(GoldenTraces, ParallelExecutorMatchesCheckedInGraphHash) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const std::string name = core::standard_name(GetParam());
  const GoldenEntry* golden = find_golden(name);
  ASSERT_NE(golden, nullptr)
      << name << " missing from golden_traces.inc -- rerun with --regen";

  GoldenGraph g(GetParam());
  obs::ProbeSet probes({.measure_signal = false, .hash_output = true});
  g.chain.attach_probes(probes);
  rf::run(g.source, g.chain,
          GoldenGraph::kGraphChunk * GoldenGraph::kGraphChunks,
          GoldenGraph::kGraphChunk, {.threads = 4, .queue_depth = 2});
  ASSERT_EQ(probes.size(), 4u);
  EXPECT_EQ(probes.at(3).output_hash(), golden->graph_hash)
      << name << ": pipeline-parallel stream diverged from the golden "
      << "sequential digest";
}

// The checkpoint/restore acceptance test: interrupt the golden graph at
// a chunk boundary, snapshot it, restore the snapshot into a *freshly
// built* graph, finish the run there — and require the concatenated
// stream to hash to the same golden digest as the uninterrupted run.
TEST_P(GoldenTraces, SnapshotResumeIsBitIdentical) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const std::string name = core::standard_name(GetParam());
  const GoldenEntry* golden = find_golden(name);
  ASSERT_NE(golden, nullptr)
      << name << " missing from golden_traces.inc -- rerun with --regen";

  obs::StreamHash hash;
  std::vector<std::uint8_t> snapshot;
  {
    GoldenGraph first(GetParam());
    first.run(3, hash);
    snapshot = first.checkpoint();
    // `first` is destroyed here: resume must work from bytes alone.
  }
  GoldenGraph resumed(GetParam());
  resumed.restore(snapshot);
  resumed.run(GoldenGraph::kGraphChunks - 3, hash);
  EXPECT_EQ(hash.digest(), golden->graph_hash)
      << name << ": snapshot-resume diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(Family, GoldenTraces,
                         ::testing::ValuesIn(core::kStandardFamily));

class GoldenChannelTraces
    : public ::testing::TestWithParam<ChannelCombo> {};

TEST_P(GoldenChannelTraces, GraphRunMatchesCheckedInHash) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const ChannelCombo& combo = GetParam();
  const GoldenEntry* golden = find_golden(combo.name);
  ASSERT_NE(golden, nullptr)
      << combo.name
      << " missing from golden_traces.inc -- rerun with --regen";
  EXPECT_EQ(channel_graph_hash(combo), golden->graph_hash)
      << combo.name << ": channel stream changed at the bit level. If "
      << "intentional, regenerate with: test_golden_traces --regen";
}

TEST_P(GoldenChannelTraces, OddChunkingIsBitIdentical) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const ChannelCombo& combo = GetParam();
  const GoldenEntry* golden = find_golden(combo.name);
  ASSERT_NE(golden, nullptr) << combo.name;
  ChannelGraph g(combo);
  obs::StreamHash hash;
  // 731 divides neither the total nor any frame length: chunk cuts
  // land mid-symbol, mid-fade and inside the TDL history window.
  g.run(ChannelGraph::kTotal, 731, hash);
  EXPECT_EQ(hash.digest(), golden->graph_hash)
      << combo.name << ": output depends on chunk boundaries";
}

TEST_P(GoldenChannelTraces, SnapshotMidFadeResumesBitIdentically) {
  SKIP_UNLESS_GOLDEN_ENGINE();
  const ChannelCombo& combo = GetParam();
  const GoldenEntry* golden = find_golden(combo.name);
  ASSERT_NE(golden, nullptr) << combo.name;
  obs::StreamHash hash;
  std::vector<std::uint8_t> snapshot;
  constexpr std::size_t kCut = 3 * GoldenGraph::kGraphChunk;
  {
    ChannelGraph first(combo);
    first.run(kCut, GoldenGraph::kGraphChunk, hash);
    snapshot = first.checkpoint();
  }
  ChannelGraph resumed(combo);
  resumed.restore(snapshot);
  resumed.run(ChannelGraph::kTotal - kCut, GoldenGraph::kGraphChunk,
              hash);
  EXPECT_EQ(hash.digest(), golden->graph_hash)
      << combo.name << ": snapshot-resume diverged mid-fade";
}

INSTANTIATE_TEST_SUITE_P(Combos, GoldenChannelTraces,
                         ::testing::ValuesIn(kChannelCombos));

// The same oracle at the RF-graph level: per-block output hashes from a
// probed chain fed by the Submodel must not depend on the transmitter's
// thread count.
TEST(GoldenTraces, ProbedChainHashesAreThreadInvariant) {
  std::uint64_t digests[2][3] = {};
  for (int pass = 0; pass < 2; ++pass) {
    core::OfdmParams params =
        core::profile_for(core::Standard::kHomePlug);
    params.threads = pass == 0 ? 1 : 4;
    rf::Submodel source(params, 32, 7);
    rf::Chain chain;
    chain.add<rf::Gain>(-3.0);
    chain.add<rf::DcOffset>(cplx{0.01, -0.01});
    chain.add<rf::SoftClipPa>(0.8);

    obs::ProbeSet probes({.measure_signal = false, .hash_output = true});
    chain.attach_probes(probes);
    rf::run(source, chain, 8192, 1024);
    ASSERT_EQ(probes.size(), 3u);
    for (std::size_t b = 0; b < 3; ++b) {
      digests[pass][b] = probes.at(b).output_hash();
    }
  }
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(digests[0][b], digests[1][b]) << "block " << b;
  }
}

}  // namespace

/// --regen: rewrite tests/golden_traces.inc in the source tree from the
/// current waveforms (sequential path).
int regenerate() {
  // Refuse to bless digests from a non-default engine: a table written
  // under OFDM_FFT=radix2 would fail for every ordinary run.
  if (dsp::fft_engine() != dsp::FftEngine::kSplitRadix) {
    std::fprintf(stderr,
                 "--regen refused: active FFT engine is %s, but golden "
                 "digests must be blessed under the default split-radix "
                 "engine (unset OFDM_FFT and rerun)\n",
                 dsp::fft_engine_name(dsp::fft_engine()));
    return 1;
  }
  const std::string path =
      std::string(OFDM_SOURCE_DIR) + "/tests/golden_traces.inc";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "// Golden output-stream hashes, one per family member:\n"
               "// {standard, tx burst hash, RF-graph stream hash}.\n"
               "// Generated by: test_golden_traces --regen -- do not "
               "edit by hand.\n");
  for (core::Standard s : core::kStandardFamily) {
    const cvec samples = golden_burst(s, 1);
    const std::uint64_t tx_hash = obs::hash_samples(samples);
    const std::uint64_t graph_hash = golden_graph_hash(s);
    std::fprintf(f, "{\"%s\", 0x%016" PRIx64 "ULL, 0x%016" PRIx64 "ULL},\n",
                 core::standard_name(s).c_str(), tx_hash, graph_hash);
    std::printf("%-20s %016" PRIx64 "  %016" PRIx64 "\n",
                core::standard_name(s).c_str(), tx_hash, graph_hash);
  }
  std::fprintf(f,
               "// Standard x channel-library combos (tx-hash column "
               "unused, pinned 0).\n");
  for (const ChannelCombo& combo : kChannelCombos) {
    const std::uint64_t graph_hash = channel_graph_hash(combo);
    std::fprintf(f,
                 "{\"%s\", 0x%016" PRIx64 "ULL, 0x%016" PRIx64 "ULL},\n",
                 combo.name, std::uint64_t{0}, graph_hash);
    std::printf("%-28s %016x  %016" PRIx64 "\n", combo.name, 0,
                graph_hash);
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace ofdm

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen") == 0) return ofdm::regenerate();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
