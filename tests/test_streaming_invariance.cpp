// Cross-cutting property: every stateful RF block must produce the same
// output whether a signal is processed in one call or in arbitrary
// chunks — the invariant the chunked simulation loop (rf::run,
// rf::Netlist) rests on. A block that hides state in per-call locals
// breaks here immediately.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "rf/block.hpp"
#include "rf/channel.hpp"
#include "rf/channels/cfo.hpp"
#include "rf/channels/rician.hpp"
#include "rf/channels/tdl.hpp"
#include "rf/channels/watterson.hpp"
#include "rf/fading.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"

namespace ofdm::rf {
namespace {

using BlockFactory = std::function<std::unique_ptr<Block>()>;

struct Case {
  const char* name;
  BlockFactory make;
};

std::vector<Case> stateful_blocks() {
  return {
      {"gain", [] { return std::make_unique<Gain>(3.0); }},
      {"rapp-pa", [] { return std::make_unique<RappPa>(2.0, 1.0); }},
      {"saleh-pa", [] { return std::make_unique<SalehPa>(); }},
      {"awgn", [] { return std::make_unique<AwgnChannel>(0.1, 42); }},
      {"multipath",
       [] {
         return std::make_unique<MultipathChannel>(
             cvec{cplx{0.8, 0.1}, cplx{0.2, -0.3}, cplx{0.05, 0.0}});
       }},
      {"fading",
       [] {
         return std::make_unique<FadingChannel>(
             std::vector<FadingTap>{{0, 0.8}, {3, 0.2}}, 200.0, 1e6, 9);
       }},
      {"impulse-noise",
       [] { return std::make_unique<ImpulseNoise>(1e-3, 10.0, 25.0, 7); }},
      {"freq-shift",
       [] { return std::make_unique<FrequencyShift>(1.7e3, 1e6); }},
      {"iq-imbalance",
       [] { return std::make_unique<IqImbalance>(0.5, 3.0); }},
      {"dc-offset",
       [] { return std::make_unique<DcOffset>(cplx{0.1, -0.05}); }},
      {"phase-noise",
       [] { return std::make_unique<PhaseNoise>(500.0, 1e6, 5); }},
      {"iq-modulator",
       [] { return std::make_unique<IqModulator>(Oscillator(2e5, 1e6)); }},
      {"dac-x2", [] { return std::make_unique<Dac>(10, 2); }},
      {"watterson",
       [] { return channels::make_watterson(channels::CcirCondition::kPoor,
                                            48e3, 21); }},
      {"rician",
       [] { return std::make_unique<channels::RicianChannel>(5.0, 300.0,
                                                             1e6, 22); }},
      {"tdl-itu-veh-a",
       [] {
         return channels::make_tdl_channel(
             channels::tdl_profile("itu_veh_a"), 20e6, 23);
       }},
      {"osc-drift",
       [] {
         return std::make_unique<channels::OscillatorDrift>(200.0, 100.0,
                                                            1e6);
       }},
  };
}

class ChunkingInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkingInvariance, ChunkedEqualsWhole) {
  const std::size_t chunk = GetParam();
  Rng rng(1000 + chunk);
  cvec x(3000);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);

  for (const Case& c : stateful_blocks()) {
    auto whole_block = c.make();
    const cvec whole = whole_block->process(x);

    auto chunked_block = c.make();
    cvec pieced;
    for (std::size_t off = 0; off < x.size(); off += chunk) {
      const std::size_t n = std::min(chunk, x.size() - off);
      const cvec part = chunked_block->process(
          std::span<const cplx>(x).subspan(off, n));
      pieced.insert(pieced.end(), part.begin(), part.end());
    }
    ASSERT_EQ(pieced.size(), whole.size()) << c.name;
    EXPECT_LT(max_abs_error(whole, pieced), 1e-12)
        << c.name << " with chunk " << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkingInvariance,
                         ::testing::Values<std::size_t>(1, 7, 64, 333,
                                                        1024, 3000));

TEST(ResetSemantics, ResetReproducesFirstRun) {
  Rng rng(2);
  cvec x(500);
  for (cplx& v : x) v = rng.complex_gaussian(1.0);
  for (const Case& c : stateful_blocks()) {
    auto block = c.make();
    const cvec first = block->process(x);
    block->reset();
    const cvec second = block->process(x);
    EXPECT_LT(max_abs_error(first, second), 1e-12) << c.name;
  }
}

}  // namespace
}  // namespace ofdm::rf
