// Profile tests: each family member's parameter set carries the
// geometry its standard specifies (the numbers in DESIGN.md §4).
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/profiles.hpp"

namespace ofdm::core {
namespace {

class EveryProfile : public ::testing::TestWithParam<Standard> {};

TEST_P(EveryProfile, Validates) {
  EXPECT_NO_THROW(validate(profile_for(GetParam())));
}

TEST_P(EveryProfile, StandardTagMatches) {
  EXPECT_EQ(profile_for(GetParam()).standard, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Family, EveryProfile,
                         ::testing::ValuesIn(kStandardFamily));

TEST(Profiles, Wlan80211aGeometry) {
  const OfdmParams p = profile_wlan_80211a();
  EXPECT_EQ(p.fft_size, 64u);
  EXPECT_EQ(p.cp_len, 16u);
  EXPECT_DOUBLE_EQ(p.sample_rate, 20e6);
  EXPECT_NEAR(p.subcarrier_spacing_hz(), 312.5e3, 1e-6);
  EXPECT_NEAR(p.symbol_duration_s(), 4e-6, 1e-12);  // 4 us OFDM symbol
  const ToneLayout layout = make_tone_layout(p);
  EXPECT_EQ(layout.data_bins.size(), 48u);
  EXPECT_EQ(layout.pilot_bins.size(), 4u);
}

TEST(Profiles, WlanRateTable) {
  // 17.3.2.2: rate -> modulation & coding.
  EXPECT_EQ(wlan_rate_scheme(WlanRate::k6), mapping::Scheme::kBpsk);
  EXPECT_EQ(wlan_rate_scheme(WlanRate::k24), mapping::Scheme::kQam16);
  EXPECT_EQ(wlan_rate_scheme(WlanRate::k54), mapping::Scheme::kQam64);
  EXPECT_EQ(wlan_rate_puncture(WlanRate::k6).kept_per_period(), 2u);
  EXPECT_EQ(wlan_rate_puncture(WlanRate::k48).kept_per_period(), 3u);
  EXPECT_EQ(wlan_rate_puncture(WlanRate::k54).kept_per_period(), 4u);
}

TEST(Profiles, GygIsAAtDifferentCarrier) {
  const OfdmParams a = profile_wlan_80211a();
  const OfdmParams g = profile_wlan_80211g();
  EXPECT_EQ(a.fft_size, g.fft_size);
  EXPECT_EQ(a.cp_len, g.cp_len);
  EXPECT_NE(a.nominal_rf_hz, g.nominal_rf_hz);
  EXPECT_LT(g.nominal_rf_hz, 3e9);   // 2.4 GHz band
  EXPECT_GT(a.nominal_rf_hz, 5e9);   // 5 GHz band
}

TEST(Profiles, AdslGeometry) {
  const OfdmParams p = profile_adsl();
  EXPECT_EQ(p.fft_size, 512u);
  EXPECT_TRUE(p.hermitian);
  EXPECT_NEAR(p.subcarrier_spacing_hz(), 4312.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.sample_rate, 2.208e6);
  EXPECT_EQ(p.mapping, MappingKind::kBitTable);
  const ToneLayout layout = make_tone_layout(p);
  EXPECT_EQ(layout.data_bins.size(), 222u);  // tones 33..255 minus pilot
  EXPECT_EQ(layout.pilot_bins.size(), 1u);
  EXPECT_EQ(layout.pilot_bins[0], 64u);
}

TEST(Profiles, AdslPlusPlusDoublesSpectrum) {
  const OfdmParams a = profile_adsl();
  const OfdmParams pp = profile_adsl_plus_plus();
  EXPECT_EQ(pp.fft_size, 2 * a.fft_size);
  EXPECT_DOUBLE_EQ(pp.sample_rate, 2 * a.sample_rate);
  EXPECT_NEAR(pp.subcarrier_spacing_hz(), a.subcarrier_spacing_hz(), 1e-9);
}

TEST(Profiles, VdslKeepsDmtSpacing) {
  const OfdmParams p = profile_vdsl();
  EXPECT_EQ(p.fft_size, 8192u);
  EXPECT_NEAR(p.subcarrier_spacing_hz(), 4312.5, 1e-9);
  EXPECT_TRUE(p.hermitian);
}

TEST(Profiles, DrmModesUseNonPow2FftSizes) {
  EXPECT_EQ(profile_drm(DrmMode::kA).fft_size, 1152u);
  EXPECT_EQ(profile_drm(DrmMode::kB).fft_size, 1024u);
  EXPECT_EQ(profile_drm(DrmMode::kC).fft_size, 704u);
  EXPECT_EQ(profile_drm(DrmMode::kD).fft_size, 448u);
  // Useful symbol durations at the 48 kHz master rate.
  EXPECT_NEAR(profile_drm(DrmMode::kA).fft_size /
                  profile_drm(DrmMode::kA).sample_rate,
              24e-3, 1e-9);
  EXPECT_NEAR(profile_drm(DrmMode::kD).fft_size /
                  profile_drm(DrmMode::kD).sample_rate,
              9.333e-3, 1e-5);
}

TEST(Profiles, DabModeGeometry) {
  const OfdmParams m1 = profile_dab(DabMode::kI);
  EXPECT_EQ(m1.fft_size, 2048u);
  EXPECT_EQ(m1.cp_len, 504u);
  EXPECT_EQ(make_tone_layout(m1).data_bins.size(), 1536u);
  EXPECT_NEAR(m1.subcarrier_spacing_hz(), 1000.0, 1e-9);
  EXPECT_GT(m1.frame.null_samples, 0u);
  EXPECT_EQ(m1.mapping, MappingKind::kDifferential);
  EXPECT_EQ(m1.diff_kind, mapping::DiffKind::kPi4Dqpsk);

  EXPECT_EQ(profile_dab(DabMode::kII).fft_size, 512u);
  EXPECT_EQ(make_tone_layout(profile_dab(DabMode::kII)).data_bins.size(),
            384u);
  EXPECT_EQ(profile_dab(DabMode::kIII).fft_size, 256u);
  EXPECT_EQ(profile_dab(DabMode::kIV).fft_size, 1024u);
}

TEST(Profiles, DvbtGeometry) {
  const OfdmParams p2k = profile_dvbt(DvbtMode::k2k);
  EXPECT_EQ(p2k.fft_size, 2048u);
  EXPECT_NEAR(p2k.sample_rate, 64e6 / 7.0, 1e-3);
  const ToneLayout l2k = make_tone_layout(p2k);
  EXPECT_EQ(l2k.data_bins.size() + l2k.pilot_bins.size(), 1705u);
  EXPECT_TRUE(p2k.fec.rs_enabled);
  EXPECT_EQ(p2k.fec.rs_n, 204u);
  EXPECT_TRUE(p2k.fec.conv_enabled);

  const OfdmParams p8k = profile_dvbt(DvbtMode::k8k);
  EXPECT_EQ(p8k.fft_size, 8192u);
  const ToneLayout l8k = make_tone_layout(p8k);
  EXPECT_EQ(l8k.data_bins.size() + l8k.pilot_bins.size(), 6817u);
}

TEST(Profiles, Wman80216aGeometry) {
  const OfdmParams p = profile_wman_80216a();
  EXPECT_EQ(p.fft_size, 256u);
  const ToneLayout layout = make_tone_layout(p);
  EXPECT_EQ(layout.data_bins.size(), 192u);
  EXPECT_EQ(layout.pilot_bins.size(), 8u);
  EXPECT_DOUBLE_EQ(p.sample_rate, 8e6);  // 7 MHz * 8/7 sampling factor
  EXPECT_TRUE(p.fec.rs_enabled);
}

TEST(Profiles, HomeplugGeometry) {
  const OfdmParams p = profile_homeplug();
  EXPECT_EQ(p.fft_size, 256u);
  EXPECT_TRUE(p.hermitian);
  EXPECT_EQ(make_tone_layout(p).data_bins.size(), 84u);
  EXPECT_EQ(p.mapping, MappingKind::kDifferential);
  EXPECT_GT(p.cp_len, 100u);  // long powerline guard interval
}

TEST(Profiles, FamilyHasTenDistinctMembers) {
  // The Abstract's claim: one Mother Model, ten standards.
  EXPECT_EQ(kStandardFamily.size(), 10u);
  for (Standard a : kStandardFamily) {
    for (Standard b : kStandardFamily) {
      if (a == b) continue;
      EXPECT_GT(parameter_distance(profile_for(a), profile_for(b)), 0u)
          << standard_name(a) << " vs " << standard_name(b);
    }
  }
}

}  // namespace
}  // namespace ofdm::core
