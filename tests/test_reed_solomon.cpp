// Reed-Solomon tests: GF(2^8) arithmetic, systematic encoding, error
// correction up to t, detection beyond t, and the DVB RS(204,188) code.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "coding/reed_solomon.hpp"
#include "common/rng.hpp"

namespace ofdm::coding {
namespace {

TEST(Gf256, FieldAxiomsSpotChecks) {
  Gf256 gf;
  // alpha^0 = 1, alpha^255 wraps to alpha^0.
  EXPECT_EQ(gf.alpha_pow(0), 1);
  EXPECT_EQ(gf.alpha_pow(255), 1);
  EXPECT_EQ(gf.alpha_pow(-1), gf.alpha_pow(254));
  // Multiplicative inverse.
  for (int v = 1; v < 256; v += 17) {
    const auto a = static_cast<std::uint8_t>(v);
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1) << "v=" << v;
  }
  // Distributivity sample.
  EXPECT_EQ(gf.mul(7, gf.add(13, 200)),
            gf.add(gf.mul(7, 13), gf.mul(7, 200)));
  EXPECT_THROW(gf.inv(0), Error);
}

TEST(Gf256, LogExpInverse) {
  Gf256 gf;
  for (int v = 1; v < 256; ++v) {
    const auto a = static_cast<std::uint8_t>(v);
    EXPECT_EQ(gf.alpha_pow(gf.log(a)), a);
  }
}

TEST(ReedSolomon, EncodeIsSystematic) {
  const ReedSolomon rs(15, 11);
  Rng rng(51);
  const bytevec msg = rng.bytes(11);
  const bytevec code = rs.encode(msg);
  ASSERT_EQ(code.size(), 15u);
  for (std::size_t i = 0; i < 11; ++i) EXPECT_EQ(code[i], msg[i]);
}

TEST(ReedSolomon, CleanWordDecodes) {
  const ReedSolomon rs(15, 11);
  Rng rng(52);
  const bytevec msg = rng.bytes(11);
  const auto result = rs.decode(rs.encode(msg));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.errors_corrected, 0u);
  EXPECT_EQ(result.message, msg);
}

class RsErrorCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsErrorCount, CorrectsUpToTErrors) {
  const ReedSolomon rs(204, 188);  // t = 8
  Rng rng(53 + GetParam());
  const bytevec msg = rng.bytes(188);
  bytevec word = rs.encode(msg);
  // GetParam() distinct byte errors at spread positions.
  for (std::size_t e = 0; e < GetParam(); ++e) {
    const std::size_t pos = (e * 23 + 5) % word.size();
    word[pos] ^= static_cast<std::uint8_t>(0x5A + e);
  }
  const auto result = rs.decode(word);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.errors_corrected, GetParam());
  EXPECT_EQ(result.message, msg);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, RsErrorCount,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ReedSolomon, NineErrorsAreNotMiscorrected) {
  const ReedSolomon rs(204, 188);
  Rng rng(60);
  const bytevec msg = rng.bytes(188);
  bytevec word = rs.encode(msg);
  for (std::size_t e = 0; e < 9; ++e) {
    word[(e * 19 + 3) % word.size()] ^= 0xFF;
  }
  const auto result = rs.decode(word);
  // Beyond capacity the decoder must either flag failure or, in the rare
  // decode-to-wrong-codeword case, be caught by the syndrome recheck.
  EXPECT_FALSE(result.success);
}

TEST(ReedSolomon, ParityOnlyErrorsAlsoCorrected) {
  const ReedSolomon rs(255, 239);
  Rng rng(61);
  const bytevec msg = rng.bytes(239);
  bytevec word = rs.encode(msg);
  word[250] ^= 0x11;  // inside the parity section
  word[254] ^= 0x22;
  const auto result = rs.decode(word);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.message, msg);
}

TEST(ReedSolomon, ShortenedCodeBehavesLikeMotherCode) {
  // RS(64,48) (802.16a) corrects t=8 errors too.
  const ReedSolomon rs(64, 48);
  Rng rng(62);
  const bytevec msg = rng.bytes(48);
  bytevec word = rs.encode(msg);
  for (std::size_t e = 0; e < 8; ++e) {
    word[(e * 7 + 1) % word.size()] ^= static_cast<std::uint8_t>(1 + e);
  }
  const auto result = rs.decode(word);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.message, msg);
}

TEST(ReedSolomon, FirstRootOneVariant) {
  // Codes defined with roots alpha^1..alpha^2t (common convention).
  const ReedSolomon rs(255, 223, /*first_root=*/1);
  Rng rng(63);
  const bytevec msg = rng.bytes(223);
  bytevec word = rs.encode(msg);
  for (std::size_t e = 0; e < 16; ++e) {
    word[(e * 13 + 2) % word.size()] ^= static_cast<std::uint8_t>(0x80 + e);
  }
  const auto result = rs.decode(word);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.message, msg);
}

TEST(ReedSolomon, RejectsBadGeometry) {
  EXPECT_THROW(ReedSolomon(300, 100), Error);
  EXPECT_THROW(ReedSolomon(100, 100), Error);
  EXPECT_THROW(ReedSolomon(100, 99), Error);  // odd parity count
}

TEST(ReedSolomon, MakeDvbRsGeometry) {
  const ReedSolomon rs = make_dvb_rs();
  EXPECT_EQ(rs.n(), 204u);
  EXPECT_EQ(rs.k(), 188u);
  EXPECT_EQ(rs.t(), 8u);
}

}  // namespace
}  // namespace ofdm::coding
