// Published-value checks for the coding layer: the K=7 (133,171)
// industry convolutional code against a hand-computed codeword and its
// known free distance, RS(255,239) at its guaranteed correction radius,
// and exact interleaver round-trip identity for every standard's
// deployed geometry.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "coding/convolutional.hpp"
#include "coding/interleaver.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/viterbi.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "core/profiles.hpp"
#include "core/standard.hpp"

namespace {

using namespace ofdm;

// ---------------------------------------------------------------------
// K=7 rate-1/2, generators 133/171 octal: the industry code every coded
// standard in the family inherits (802.11a 17.3.5.5, DVB-T, DAB, ...).

// Hand-computed terminated codeword for the message 1 0 1 1 0 0 0 1:
// window convention bit(K-1)=newest, outputs G0=133 then G1=171 per
// step, six flush zeros appended. Worked by evaluating
// parity(window & G) step by step.
const std::uint8_t kMessage[] = {1, 0, 1, 1, 0, 0, 0, 1};
const std::uint8_t kCodeword[] = {1, 1, 0, 1, 0, 0, 0, 1, 1, 0,
                                  1, 0, 0, 0, 0, 1, 0, 0, 0, 0,
                                  1, 1, 0, 0, 1, 0, 1, 1};

TEST(ConvK7Published, KnownCodeword) {
  const coding::ConvEncoder enc(coding::k7_industry_code());
  const bitvec coded = enc.encode_terminated(
      std::span<const std::uint8_t>(kMessage, std::size(kMessage)));
  ASSERT_EQ(coded.size(), std::size(kCodeword));
  for (std::size_t i = 0; i < coded.size(); ++i) {
    EXPECT_EQ(coded[i], kCodeword[i]) << "coded bit " << i;
  }
}

TEST(ConvK7Published, ViterbiRecoversHandDecodedVector) {
  const coding::ViterbiDecoder dec(coding::k7_industry_code());
  bitvec received(kCodeword, kCodeword + std::size(kCodeword));
  // dfree = 10: any error pattern of weight <= 4 is within the
  // guaranteed radius floor((dfree - 1) / 2).
  received[2] ^= 1;
  received[9] ^= 1;
  received[17] ^= 1;
  received[25] ^= 1;
  const bitvec out = dec.decode_terminated(received);
  ASSERT_EQ(out.size(), std::size(kMessage));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], kMessage[i]) << "message bit " << i;
  }
}

TEST(ConvK7Published, FreeDistanceIsTen) {
  // Exhaustive minimum codeword weight over all nonzero messages up to
  // 10 information bits (leading 1 fixed: the code is linear and
  // time-invariant, so every short error event is a shift of one of
  // these). The published dfree of the (133,171) code is 10.
  const coding::ConvEncoder enc(coding::k7_industry_code());
  std::size_t min_weight = SIZE_MAX;
  for (std::size_t len = 1; len <= 10; ++len) {
    const std::size_t variants = std::size_t{1} << (len - 1);
    for (std::size_t v = 0; v < variants; ++v) {
      bitvec msg;
      msg.reserve(len);
      msg.push_back(1);
      for (std::size_t b = 1; b < len; ++b) {
        msg.push_back(static_cast<std::uint8_t>((v >> (b - 1)) & 1u));
      }
      const bitvec coded = enc.encode_terminated(msg);
      const std::size_t weight = static_cast<std::size_t>(
          std::count(coded.begin(), coded.end(), std::uint8_t{1}));
      min_weight = std::min(min_weight, weight);
    }
  }
  EXPECT_EQ(min_weight, 10u);
}

// ---------------------------------------------------------------------
// RS(255,239): the G.992-family mother code, t = 8.

TEST(ReedSolomonPublished, Rs255_239CorrectsEightByteErrors) {
  const coding::ReedSolomon rs(255, 239);
  ASSERT_EQ(rs.t(), 8u);

  Rng rng = Rng::substream(4242, 0, 0);
  bytevec message(239);
  for (auto& b : message) {
    b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  }
  const bytevec codeword = rs.encode(message);
  ASSERT_EQ(codeword.size(), 255u);

  bytevec received = codeword;
  // Eight byte errors at spread positions, each a guaranteed change.
  const std::size_t pos[] = {0, 31, 64, 100, 150, 200, 238, 254};
  for (const std::size_t p : pos) received[p] ^= 0x5A;

  const auto r = rs.decode(received);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.errors_corrected, 8u);
  EXPECT_EQ(r.message, message);
}

TEST(ReedSolomonPublished, Rs255_239FailsBeyondRadius) {
  const coding::ReedSolomon rs(255, 239);
  Rng rng = Rng::substream(4243, 0, 0);
  bytevec message(239);
  for (auto& b : message) {
    b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  }
  bytevec received = rs.encode(message);
  // Nine errors exceed t = 8. A bounded-distance decoder either
  // reports failure or mis-corrects to a DIFFERENT codeword; the one
  // outcome the radius guarantee forbids is a successful decode of the
  // original message (it lies 9 > t away from the received word).
  for (std::size_t i = 0; i < 9; ++i) received[i * 20] ^= 0xA5;
  const auto r = rs.decode(received);
  EXPECT_FALSE(r.success && r.message == message);
}

// ---------------------------------------------------------------------
// Interleaver round-trip identity at every standard's deployed
// geometry, built exactly as the RX Mother Model builds them.

TEST(InterleaverPublished, RoundTripIdentityForEveryStandardGeometry) {
  std::size_t exercised = 0;
  for (const core::Standard s : core::kStandardFamily) {
    const core::OfdmParams p = core::profile_for(s);
    const std::string name = core::standard_name(s);
    const std::size_t cbps = core::coded_bits_per_symbol(p);

    std::optional<coding::PermutationInterleaver> il;
    std::size_t block = 0;
    switch (p.interleaver.kind) {
      case core::InterleaverKind::kNone:
        continue;
      case core::InterleaverKind::kWlan:
        il = coding::make_wlan_interleaver(
            cbps, mapping::bits_per_symbol(p.scheme));
        block = cbps;
        break;
      case core::InterleaverKind::kBlock:
        il = coding::make_block_interleaver(
            p.interleaver.rows, cbps / p.interleaver.rows);
        block = cbps;
        break;
      case core::InterleaverKind::kCell: {
        const auto layout = core::make_tone_layout(p);
        il = coding::make_random_interleaver(layout.data_bins.size(),
                                             p.interleaver.seed);
        block = layout.data_bins.size();
        break;
      }
    }
    ASSERT_TRUE(il.has_value()) << name;
    ASSERT_EQ(il->block_size(), block) << name;
    ++exercised;

    // The mapping must be a permutation of 0..N-1 ...
    std::vector<std::size_t> sorted = il->mapping();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], i) << name << ": not a permutation";
    }

    // ... and deinterleave must invert interleave exactly.
    Rng rng = Rng::substream(17, exercised, 0);
    const bitvec data = rng.bits(block);
    const bitvec round = il->deinterleave(
        std::span<const std::uint8_t>(il->interleave(
            std::span<const std::uint8_t>(data))));
    EXPECT_EQ(round, data) << name;
  }
  // WLAN a/g, DRM (cell), DAB, DVB-T, 802.16a, HomePlug interleave;
  // the DMT standards do not.
  EXPECT_EQ(exercised, 7u);
}

}  // namespace
