// The parallel symbol pipeline and the FFT fast paths it leans on.
//
// The tentpole guarantee is bit-exactness: a Transmitter configured with
// threads > 1 must produce *identical* samples to the single-threaded
// path for every family standard, because the pipeline runs the exact
// same assemble+IFFT code on private per-worker plans. The Hermitian
// inverse fast path and the in-place transforms are checked against the
// reference DFT the same way the seed FFT tests are.
#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "core/profiles.hpp"
#include "core/symbol_pipeline.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"

namespace ofdm::core {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1u);
  return bits;
}

TEST(SymbolPipeline, ThreadedModulateIsBitExactAcrossFamily) {
  for (Standard std_id : kStandardFamily) {
    OfdmParams p = profile_for(std_id);
    Transmitter tx1(p);
    const auto bits = random_bits(tx1.recommended_payload_bits(), 42);
    const Transmitter::Burst ref = tx1.modulate(bits);

    for (std::size_t threads : {2, 3}) {
      p.threads = threads;
      Transmitter txn(p);
      const Transmitter::Burst got = txn.modulate(bits);
      ASSERT_EQ(ref.samples.size(), got.samples.size())
          << standard_name(std_id) << " threads=" << threads;
      for (std::size_t i = 0; i < ref.samples.size(); ++i) {
        ASSERT_EQ(ref.samples[i], got.samples[i])
            << standard_name(std_id) << " threads=" << threads
            << " sample " << i;
      }
    }
  }
}

TEST(SymbolPipeline, RepeatedBurstsStayBitExact) {
  // The pool is reused across bursts; stale-batch bugs would show up on
  // the second and later transforms, not the first.
  OfdmParams p = profile_adsl();
  Transmitter tx1(p);
  p.threads = 4;
  Transmitter tx4(p);
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    const auto bits = random_bits(tx1.recommended_payload_bits(), seed);
    const auto a = tx1.modulate(bits);
    const auto b = tx4.modulate(bits);
    ASSERT_EQ(a.samples.size(), b.samples.size()) << "burst " << seed;
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      ASSERT_EQ(a.samples[i], b.samples[i])
          << "burst " << seed << " sample " << i;
    }
  }
}

TEST(SymbolPipeline, ThreadsKnobIsNotAModelParameter) {
  OfdmParams a = profile_adsl();
  OfdmParams b = a;
  b.threads = 8;
  EXPECT_EQ(parameter_count(a), parameter_count(b));
  EXPECT_EQ(parameter_distance(a, b), 0u);
  b.threads = 0;
  EXPECT_THROW(validate(b), ConfigError);
}

cvec random_hermitian_spectrum(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  cvec x(n, cplx{0.0, 0.0});
  for (std::size_t k = 1; k < n / 2; ++k) {
    x[k] = {dist(rng), dist(rng)};
    x[n - k] = std::conj(x[k]);
  }
  // DC and Nyquist must be real for a real output signal.
  x[0] = {dist(rng), 0.0};
  if (n % 2 == 0) x[n / 2] = {dist(rng), 0.0};
  return x;
}

TEST(HermitianIfft, MatchesReferenceDft) {
  // 512/1024/8192 are the ADSL/ADSL++/VDSL sizes; 36 exercises the
  // even-but-not-power-of-two path (half size 18 -> Bluestein).
  for (std::size_t n : {8u, 36u, 512u, 1024u}) {
    const cvec x = random_hermitian_spectrum(n, 7u + n);
    const cvec ref = dsp::reference_dft(x, /*inverse=*/true);
    cvec out(n);
    dsp::Fft fft(n);
    fft.inverse_hermitian(x, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i].real(), ref[i].real(), 1e-9 * n) << n << ":" << i;
      // The fast path produces exact zeros in the imaginary part.
      EXPECT_EQ(out[i].imag(), 0.0) << n << ":" << i;
      EXPECT_NEAR(ref[i].imag(), 0.0, 1e-9 * n) << n << ":" << i;
    }
  }
}

TEST(HermitianIfft, ScaleFactorRidesAlong) {
  const std::size_t n = 64;
  const cvec x = random_hermitian_spectrum(n, 3);
  dsp::Fft fft(n);
  cvec plain(n);
  cvec scaled(n);
  fft.inverse_hermitian(x, plain);
  fft.inverse_hermitian(x, scaled, 2.5);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(scaled[i].real(), 2.5 * plain[i].real(), 1e-12);
  }
}

TEST(Ifft, InPlaceEqualsOutOfPlace) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t n : {16u, 60u, 256u}) {
    cvec x(n);
    for (auto& v : x) v = {dist(rng), dist(rng)};
    dsp::Fft fft(n);
    cvec out(n);
    fft.inverse(x, out, 1.7);
    cvec inplace = x;
    fft.inverse(inplace, inplace, 1.7);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], inplace[i]) << n << ":" << i;
    }
  }
}

TEST(Ifft, HermitianInPlaceEqualsOutOfPlace) {
  for (std::size_t n : {64u, 512u}) {
    const cvec x = random_hermitian_spectrum(n, 5u + n);
    dsp::Fft fft(n);
    cvec out(n);
    fft.inverse_hermitian(x, out, 0.5);
    cvec inplace = x;
    fft.inverse_hermitian(inplace, inplace, 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], inplace[i]) << n << ":" << i;
    }
  }
}

TEST(Ifft, FusedScaleMatchesSeparateScaling) {
  // Folding the 1/N + tone scale into the last butterfly stage must be
  // bit-identical to scaling the unscaled output afterwards (the same
  // floating-point operations in the same order).
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t n : {64u, 1024u}) {
    cvec x(n);
    for (auto& v : x) v = {dist(rng), dist(rng)};
    dsp::Fft fft(n);
    cvec fused(n);
    fft.inverse(x, fused, 3.25);
    cvec plain(n);
    fft.inverse(x, plain);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fused[i], plain[i] * 3.25) << n << ":" << i;
    }
  }
}

TEST(SymbolPipeline, TransformMatchesModulator) {
  const OfdmParams p = profile_adsl();
  const ToneLayout layout = make_tone_layout(p);
  Modulator mod(p, layout);
  SymbolPipeline pipe(p, layout, mod.tone_scale(), 2);

  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<SymbolPipeline::Symbol> jobs(5);
  for (auto& job : jobs) {
    job.data.resize(layout.data_bins.size());
    for (auto& v : job.data) v = {dist(rng), dist(rng)};
    job.pilots.resize(layout.pilot_bins.size());
    for (auto& v : job.pilots) v = {dist(rng), dist(rng)};
  }
  pipe.transform(jobs);

  for (const auto& job : jobs) {
    cvec body;
    mod.transform(mod.assemble(job.data, job.pilots), body);
    ASSERT_EQ(body.size(), job.body.size());
    for (std::size_t i = 0; i < body.size(); ++i) {
      ASSERT_EQ(body[i], job.body[i]);
    }
  }
}

}  // namespace
}  // namespace ofdm::core
