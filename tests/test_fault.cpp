// Fault-injection block tests: the injected faults must be exactly as
// deterministic, countable, and chunking-invariant as the containment
// machinery they exercise assumes.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "obs/stream_hash.hpp"
#include "rf/fault.hpp"
#include "rf/netlist.hpp"
#include "rf/pa.hpp"
#include "rf/submodel.hpp"

namespace ofdm::rf {
namespace {

cvec gaussian_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec v(n);
  for (cplx& s : v) s = rng.complex_gaussian(1.0);
  return v;
}

TEST(FlakyBlock, InjectsTheConfiguredFaultDeterministically) {
  const cvec input = gaussian_input(256, 1);
  for (const auto fault : {FlakyBlock::Fault::kNaN, FlakyBlock::Fault::kInf,
                           FlakyBlock::Fault::kHuge}) {
    FlakyBlock flaky(std::make_unique<Gain>(0.0), 3, fault);
    EXPECT_EQ(flaky.name(), "flaky[gain]");
    cvec out;
    std::uint64_t first_offset = 0;
    for (int chunk = 0; chunk < 6; ++chunk) {
      flaky.process(input, out);
      ASSERT_EQ(out.size(), input.size());
      if (chunk == 2) first_offset = flaky.last_fault_offset();
    }
    EXPECT_EQ(flaky.faults_injected(), 2u);
    // The fault position is seeded, not random: a reset replays it.
    flaky.reset();
    for (int chunk = 0; chunk < 3; ++chunk) flaky.process(input, out);
    EXPECT_EQ(flaky.faults_injected(), 1u);
    EXPECT_EQ(flaky.last_fault_offset(), first_offset);
    // And the corrupted sample matches the configured kind.
    const std::size_t idx =
        static_cast<std::size_t>(first_offset % input.size());
    switch (fault) {
      case FlakyBlock::Fault::kNaN:
        EXPECT_TRUE(std::isnan(out[idx].real()));
        break;
      case FlakyBlock::Fault::kInf:
        EXPECT_TRUE(std::isinf(out[idx].real()));
        break;
      case FlakyBlock::Fault::kHuge:
        EXPECT_TRUE(std::isfinite(out[idx].real()));
        EXPECT_GT(std::abs(out[idx].real()), 1e29);
        break;
    }
  }
}

TEST(FlakyBlock, ZeroPeriodNeverFires) {
  const cvec input = gaussian_input(128, 2);
  FlakyBlock flaky(std::make_unique<Gain>(-3.0), 0);
  cvec out;
  for (int chunk = 0; chunk < 10; ++chunk) flaky.process(input, out);
  EXPECT_EQ(flaky.faults_injected(), 0u);
  // And the wrapper is transparent: output == inner block alone.
  Gain bare(-3.0);
  cvec expected;
  bare.process(input, expected);
  EXPECT_EQ(obs::hash_samples(out), obs::hash_samples(expected));
}

TEST(BurstNoise, BurstPositionsAreChunkingInvariant) {
  const cvec input = gaussian_input(3000, 3);
  BurstNoise one_shot(500, 20, 4.0);
  cvec full;
  one_shot.process(input, full);
  EXPECT_EQ(one_shot.bursts(), 6u);

  BurstNoise chunked(500, 20, 4.0);
  cvec out;
  cvec stitched;
  // Ragged chunk sizes: 7, 14, 21, ... — none divides the burst period.
  std::size_t pos = 0;
  std::size_t step = 7;
  while (pos < input.size()) {
    const std::size_t n = std::min(step, input.size() - pos);
    chunked.process(std::span<const cplx>(input.data() + pos, n), out);
    stitched.insert(stitched.end(), out.begin(), out.end());
    pos += n;
    step += 7;
  }
  EXPECT_EQ(chunked.bursts(), one_shot.bursts());
  EXPECT_EQ(obs::hash_samples(stitched), obs::hash_samples(full));
}

TEST(BurstNoise, OnlyBurstWindowsAreTouched) {
  const cvec input = gaussian_input(1000, 4);
  BurstNoise noise(250, 10, 9.0);
  cvec out;
  noise.process(input, out);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (i % 250 < 10) continue;  // inside a burst
    EXPECT_EQ(out[i], input[i]) << "sample " << i;
  }
}

TEST(SampleDropper, DropModeShortensTheStream) {
  const cvec input = gaussian_input(100, 5);
  SampleDropper dropper(10);
  cvec out;
  dropper.process(input, out);
  EXPECT_EQ(out.size(), 90u);
  EXPECT_EQ(dropper.dropped(), 10u);
  // Counting is positional across chunks: 5 more samples drop on the
  // next call of the same length.
  dropper.process(input, out);
  EXPECT_EQ(dropper.dropped(), 20u);
}

TEST(SampleDropper, ZeroFillPreservesRateAndSilencesDrops) {
  const cvec input = gaussian_input(100, 6);
  SampleDropper dropper(10, /*zero_fill=*/true);
  cvec out;
  dropper.process(input, out);
  ASSERT_EQ(out.size(), input.size());
  EXPECT_EQ(dropper.dropped(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if ((i + 1) % 10 == 0) {
      EXPECT_EQ(out[i], (cplx{0.0, 0.0}));
    } else {
      EXPECT_EQ(out[i], input[i]);
    }
  }
}

TEST(SampleDropper, FanInRejectsTheRateMismatch) {
  // A lossy branch summed with a healthy one must be rejected by the
  // netlist's fan-in length check, not silently misaligned.
  Netlist net;
  const auto src = net.add_source<ToneSource>(1e6, 20e6, 0.5);
  const auto lossy = net.add_block<SampleDropper>(16);
  const auto sum = net.add_block<Gain>(0.0);
  net.connect(src, lossy);
  net.connect(src, sum);
  net.connect(lossy, sum);
  EXPECT_THROW(net.run(4096), DimensionError);
}

TEST(StallingSource, StallsWithoutTouchingTheStream) {
  using namespace std::chrono;
  StallingSource stalling(std::make_unique<ToneSource>(1e6, 20e6, 0.7), 4,
                          microseconds(200));
  EXPECT_EQ(stalling.name(), "stalling[tone]");
  ToneSource bare(1e6, 20e6, 0.7);
  obs::StreamHash a;
  obs::StreamHash b;
  cvec out;
  const auto t0 = steady_clock::now();
  for (int pull = 0; pull < 8; ++pull) {
    stalling.pull(512, out);
    a.update(out);
    bare.pull(512, out);
    b.update(out);
  }
  const auto elapsed = steady_clock::now() - t0;
  EXPECT_EQ(stalling.stalls(), 2u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_GE(elapsed, microseconds(400));
}

TEST(FaultState, FaultBlocksResumeBitIdentically) {
  const cvec input = gaussian_input(512, 7);
  // Run half the stream, checkpoint, restore into a fresh instance, and
  // require the second half (including fault schedule) to match.
  BurstNoise full(300, 30, 2.0);
  BurstNoise head(300, 30, 2.0);
  cvec expected;
  cvec got;
  full.process(input, expected);
  full.process(input, expected);
  head.process(input, got);

  StateWriter w;
  head.save_state(w);
  BurstNoise resumed(300, 30, 2.0);
  StateReader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  resumed.process(input, got);
  EXPECT_EQ(obs::hash_samples(got), obs::hash_samples(expected));
  EXPECT_EQ(resumed.bursts(), full.bursts());
}

TEST(FaultState, FlakyBlockSnapshotsItsScheduleAndInner) {
  const cvec input = gaussian_input(256, 8);
  FlakyBlock a(std::make_unique<Gain>(-2.0), 3, FlakyBlock::Fault::kNaN);
  cvec out;
  a.process(input, out);
  a.process(input, out);

  StateWriter w;
  a.save_state(w);
  FlakyBlock b(std::make_unique<Gain>(-2.0), 3, FlakyBlock::Fault::kNaN);
  StateReader r(w.bytes());
  b.load_state(r);

  cvec out_a;
  cvec out_b;
  a.process(input, out_a);  // third chunk: both must fire identically
  b.process(input, out_b);
  EXPECT_EQ(a.faults_injected(), 1u);
  EXPECT_EQ(b.faults_injected(), 1u);
  EXPECT_EQ(a.last_fault_offset(), b.last_fault_offset());
}

}  // namespace
}  // namespace ofdm::rf
