// Scrambler/LFSR and CRC tests, anchored to published vectors:
//  * the 127-bit 802.11a scrambler sequence (IEEE 802.11a-1999 17.3.5.4)
//  * Rocksoft check values for CRC-32 / CRC-16
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "coding/crc.hpp"
#include "coding/lfsr.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace ofdm::coding {
namespace {

TEST(Lfsr, WlanScramblerSequenceAllOnesSeed) {
  // IEEE 802.11a-1999 figure 16: with an all-ones initial state the
  // generator repeats this 127-bit sequence.
  const std::string expected_start =
      "00001110 11110010 11001001 00000010 00100110 00101110";
  Lfsr lfsr(7, (1u << 6) | (1u << 3), 0x7F);
  const bitvec seq = lfsr.sequence(48);
  EXPECT_EQ(to_string(seq), to_string(bits_from_string(expected_start)));
}

TEST(Lfsr, WlanScramblerPeriodIs127) {
  Lfsr lfsr(7, (1u << 6) | (1u << 3), 0x7F);
  const bitvec first = lfsr.sequence(127);
  const bitvec second = lfsr.sequence(127);
  EXPECT_EQ(first, second);  // maximal-length sequence repeats
}

TEST(Lfsr, MaximalLengthVisitsAllStates) {
  // x^4 + x^3 + 1 is primitive: period 15.
  Lfsr lfsr(4, (1u << 3) | (1u << 2), 0x1);
  std::set<std::uint64_t> states;
  for (int i = 0; i < 15; ++i) {
    states.insert(lfsr.state());
    lfsr.step();
  }
  EXPECT_EQ(states.size(), 15u);
  EXPECT_EQ(lfsr.state(), 0x1u);  // back at the seed after one period
}

TEST(Lfsr, RejectsZeroSeed) {
  EXPECT_THROW(Lfsr(7, 1u << 6, 0), Error);
}

TEST(Scrambler, IsItsOwnInverse) {
  Rng rng(31);
  const bitvec data = rng.bits(500);
  Scrambler a = make_wlan_scrambler();
  Scrambler b = make_wlan_scrambler();
  EXPECT_EQ(b.process(a.process(data)), data);
}

TEST(Scrambler, ResetRestartsSequence) {
  Rng rng(32);
  const bitvec data = rng.bits(64);
  Scrambler s = make_wlan_scrambler(0x5D);
  const bitvec first = s.process(data);
  s.reset();
  EXPECT_EQ(s.process(data), first);
}

TEST(Scrambler, DvbAndHomeplugVariantsRoundTrip) {
  Rng rng(33);
  const bitvec data = rng.bits(300);
  {
    Scrambler a = make_dvb_scrambler();
    Scrambler b = make_dvb_scrambler();
    EXPECT_EQ(b.process(a.process(data)), data);
  }
  {
    Scrambler a = make_homeplug_scrambler();
    Scrambler b = make_homeplug_scrambler();
    EXPECT_EQ(b.process(a.process(data)), data);
  }
}

TEST(Scrambler, ActuallyRandomizes) {
  const bitvec zeros(200, 0);
  Scrambler s = make_wlan_scrambler();
  const bitvec out = s.process(zeros);
  std::size_t ones = 0;
  for (std::uint8_t b : out) ones += b;
  EXPECT_GT(ones, 60u);
  EXPECT_LT(ones, 140u);
}

TEST(Crc, Crc32CheckValue) {
  // Rocksoft "check": CRC-32 of ASCII "123456789" = 0xCBF43926.
  const bytevec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(make_crc32().compute(msg), 0xCBF43926ull);
}

TEST(Crc, Crc16GenibusCheckValue) {
  // CRC-16/GENIBUS (poly 0x1021, init 0xFFFF, xorout 0xFFFF, no reflect)
  // is the DAB FIB CRC; its check value is 0xD64E.
  const bytevec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(make_crc16_ccitt().compute(msg), 0xD64Eull);
}

TEST(Crc, Crc8CheckValue) {
  // CRC-8/DVB-S2 (poly 0xD5): check value 0xBC.
  const bytevec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(make_crc8().compute(msg), 0xBCull);
}

TEST(Crc, DetectsSingleBitErrors) {
  Rng rng(34);
  const bytevec msg = rng.bytes(32);
  const Crc crc = make_crc32();
  const std::uint64_t good = crc.compute(msg);
  for (std::size_t byte = 0; byte < msg.size(); byte += 5) {
    for (int bit = 0; bit < 8; bit += 3) {
      bytevec bad = msg;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc.compute(bad), good);
    }
  }
}

TEST(Crc, BitLevelMatchesByteLevel) {
  Rng rng(35);
  const bytevec msg = rng.bytes(16);
  const Crc crc = make_crc16_ccitt();
  EXPECT_EQ(crc.compute_bits(bytes_to_bits_msb(msg)), crc.compute(msg));
}

}  // namespace
}  // namespace ofdm::coding
