// Convolutional coding tests: generator correctness, puncturing geometry,
// and Viterbi decoding under clean, erased and corrupted conditions.
#include <gtest/gtest.h>

#include "coding/convolutional.hpp"
#include "coding/viterbi.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace ofdm::coding {
namespace {

TEST(ConvEncoder, ImpulseResponseMatchesGenerators) {
  // A single 1 followed by zeros reads the generator taps out directly.
  const ConvEncoder enc(k7_industry_code());
  bitvec input(7, 0);
  input[0] = 1;
  const bitvec out = enc.encode(input);
  // Stream A taps 133 octal = 1011011: outputs over 7 steps.
  const bitvec a_expect = bits_from_string("1011011");
  const bitvec b_expect = bits_from_string("1111001");  // 171 octal
  for (std::size_t t = 0; t < 7; ++t) {
    EXPECT_EQ(out[2 * t], a_expect[t]) << "A stream step " << t;
    EXPECT_EQ(out[2 * t + 1], b_expect[t]) << "B stream step " << t;
  }
}

TEST(ConvEncoder, RateOutputLengths) {
  const ConvEncoder enc(k7_industry_code());
  Rng rng(41);
  const bitvec msg = rng.bits(120);
  const bitvec coded = enc.encode_terminated(msg);
  EXPECT_EQ(coded.size(), (msg.size() + 6) * 2);

  EXPECT_EQ(puncture(coded, puncture_none()).size(), coded.size());
  EXPECT_EQ(puncture(coded, puncture_2_3()).size(), coded.size() * 3 / 4);
  EXPECT_EQ(puncture(coded, puncture_3_4()).size(), coded.size() * 2 / 3);
}

TEST(Puncture, DepunctureRestoresGeometryWithErasures) {
  Rng rng(42);
  const ConvEncoder enc(k7_industry_code());
  const bitvec msg = rng.bits(60);
  const bitvec coded = enc.encode_terminated(msg);
  const PuncturePattern pat = puncture_3_4();
  const bitvec punct = puncture(coded, pat);
  const bitvec rest = depuncture(punct, pat, coded.size());
  ASSERT_EQ(rest.size(), coded.size());
  std::size_t erasures = 0;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == kErasure) {
      ++erasures;
    } else {
      EXPECT_EQ(rest[i], coded[i]);
    }
  }
  EXPECT_EQ(erasures, coded.size() - punct.size());
}

class ViterbiRates : public ::testing::TestWithParam<int> {
 protected:
  PuncturePattern pattern() const {
    switch (GetParam()) {
      case 0: return puncture_none();
      case 1: return puncture_2_3();
      default: return puncture_3_4();
    }
  }
};

TEST_P(ViterbiRates, CleanDecodingIsExact) {
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(43);
  // Message sized for whole puncture periods.
  const bitvec msg = rng.bits(240 - 6);
  const PuncturePattern pat = pattern();
  const bitvec coded = puncture(enc.encode_terminated(msg), pat);
  const bitvec rest = depuncture(coded, pat, (msg.size() + 6) * 2);
  EXPECT_EQ(dec.decode_terminated(rest), msg);
}

TEST_P(ViterbiRates, CorrectsScatteredBitErrors) {
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(44);
  const bitvec msg = rng.bits(240 - 6);
  const PuncturePattern pat = pattern();
  bitvec coded = puncture(enc.encode_terminated(msg), pat);
  // Flip well-separated bits (spacing >> constraint length).
  for (std::size_t i = 20; i + 50 < coded.size(); i += 97) {
    coded[i] ^= 1u;
  }
  const bitvec rest = depuncture(coded, pat, (msg.size() + 6) * 2);
  EXPECT_EQ(dec.decode_terminated(rest), msg);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ViterbiRates, ::testing::Values(0, 1, 2));

TEST(Viterbi, UnterminatedDecodingWorks) {
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(45);
  const bitvec msg = rng.bits(100);
  const bitvec coded = enc.encode(msg);
  const bitvec decoded = dec.decode(coded);
  ASSERT_EQ(decoded.size(), msg.size());
  // The tail of an unterminated decode can be ambiguous; the body must
  // match exactly.
  for (std::size_t i = 0; i + 8 < msg.size(); ++i) {
    EXPECT_EQ(decoded[i], msg[i]) << "position " << i;
  }
}

TEST(Viterbi, BurstsBeyondCapacityFail) {
  // A long error burst must defeat the code (sanity: the decoder is not
  // an oracle). 40 consecutive flips >> free distance.
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(46);
  const bitvec msg = rng.bits(200);
  bitvec coded = enc.encode_terminated(msg);
  for (std::size_t i = 100; i < 140; ++i) coded[i] ^= 1u;
  EXPECT_NE(dec.decode_terminated(coded), msg);
}

TEST(Viterbi, ShorterConstraintLengthCode) {
  // K=3 (7,5) textbook code round-trips too (the decoder is generic).
  ConvCode code;
  code.constraint_length = 3;
  code.generators = {05, 07};
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(47);
  const bitvec msg = rng.bits(80);
  EXPECT_EQ(dec.decode_terminated(enc.encode_terminated(msg)), msg);
}

}  // namespace
}  // namespace ofdm::coding

// --- soft-decision decoding -----------------------------------------------

namespace ofdm::coding {
namespace {

rvec to_llr(const bitvec& bits, double confidence) {
  rvec llr(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    llr[i] = bits[i] ? -confidence : confidence;
  }
  return llr;
}

TEST(ViterbiSoft, CleanLlrsDecodeExactly) {
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(48);
  const bitvec msg = rng.bits(200);
  const rvec llr = to_llr(enc.encode_terminated(msg), 4.0);
  EXPECT_EQ(dec.decode_soft_terminated(llr), msg);
}

TEST(ViterbiSoft, ConfidenceWeightingBeatsHardDecisions) {
  // Construct a case hard decisions get wrong but soft gets right:
  // several flipped bits carry tiny confidence, the rest are strong.
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(49);
  const bitvec msg = rng.bits(120);
  const bitvec coded = enc.encode_terminated(msg);

  bitvec hard = coded;
  rvec llr = to_llr(coded, 4.0);
  // Flip a dense error burst (too much for hard decisions), but mark
  // every flipped position as low-confidence.
  for (std::size_t i = 60; i < 72; ++i) {
    hard[i] ^= 1u;
    llr[i] = hard[i] ? -0.05 : 0.05;
  }
  EXPECT_NE(dec.decode_terminated(hard), msg);      // hard fails
  EXPECT_EQ(dec.decode_soft_terminated(llr), msg);  // soft recovers
}

TEST(ViterbiSoft, DepunctureSoftInsertsZeroLlrs) {
  const ConvCode code = k7_industry_code();
  const ConvEncoder enc(code);
  const ViterbiDecoder dec(code);
  Rng rng(50);
  const bitvec msg = rng.bits(120);
  const PuncturePattern pat = puncture_3_4();
  const bitvec punct = puncture(enc.encode_terminated(msg), pat);
  const rvec llr =
      depuncture_soft(to_llr(punct, 2.0), pat, (msg.size() + 6) * 2);
  std::size_t zeros = 0;
  for (double l : llr) zeros += l == 0.0;
  EXPECT_EQ(zeros, (msg.size() + 6) * 2 - punct.size());
  EXPECT_EQ(dec.decode_soft_terminated(llr), msg);
}

}  // namespace
}  // namespace ofdm::coding
