#!/usr/bin/env bash
# Campaign-engine smoke test for CI: for each smoke deck, run it
# straight through, then again with a simulated mid-run kill
# (--halt-after-rounds, exit 3) followed by --resume at a different
# thread count, and require the two curve JSON/CSV outputs to be
# byte-identical. This exercises deck parsing, the work-stealing
# scheduler, checkpoint write/restore, and the determinism contract in
# one shot. The channel_sweep deck extends the same contract over the
# standard channel-model library (per-trial Watterson/TDL realizations).
#
# Usage: scripts/campaign_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/ofdm_campaign"
# Hard ceiling per CLI invocation: a hung scheduler or a resume that
# spins forever should fail the smoke, not stall the CI job.
TO="timeout 120"

if [[ ! -x "$CLI" ]]; then
    echo "error: $CLI not found -- build the repo first" >&2
    exit 1
fi

run_deck() {
    local deck="$1"
    local name
    name="$(basename "$deck" .deck)"
    local work="$BUILD_DIR/campaign_smoke/$name"

    rm -rf "$work"
    mkdir -p "$work"

    echo "== [$name] straight-through run (4 threads) =="
    $TO "$CLI" "$deck" --threads 4 --out "$work/ref" --quiet

    echo "== [$name] interrupted run: halt after 2 rounds (1 thread) =="
    local rc=0
    $TO "$CLI" "$deck" --threads 1 --out "$work/halted" \
        --checkpoint "$work/ckpt.bin" --halt-after-rounds 2 --quiet || rc=$?
    if [[ "$rc" -ne 3 ]]; then
        echo "error: expected exit 3 from --halt-after-rounds, got $rc" >&2
        exit 1
    fi
    if [[ ! -s "$work/ckpt.bin" ]]; then
        echo "error: no checkpoint written by the halted run" >&2
        exit 1
    fi

    echo "== [$name] resume at a different thread count (2 threads) =="
    $TO "$CLI" "$deck" --threads 2 --out "$work/resumed" \
        --checkpoint "$work/ckpt.bin" --resume --quiet

    for ext in json csv; do
        if ! cmp -s "$work/ref.$ext" "$work/resumed.$ext"; then
            echo "error: [$name] resumed .$ext curves differ from the" \
                 "straight-through run" >&2
            diff "$work/ref.$ext" "$work/resumed.$ext" >&2 || true
            exit 1
        fi
    done

    echo "[$name] OK: resume output byte-identical" \
         "($(wc -c < "$work/ref.json") bytes of curve JSON)"
}

run_deck decks/ci_smoke.deck
run_deck decks/channel_sweep.deck
# The coded deck extends the contract over the rx= grid dimension: the
# full FEC receiver (soft LLR + soft Viterbi on WLAN, RS on ADSL+fec)
# and the pre-FEC uncoded tap in one sweep.
run_deck decks/coded_smoke.deck

echo "campaign smoke OK"
