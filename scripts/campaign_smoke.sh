#!/usr/bin/env bash
# Campaign-engine smoke test for CI: run the 3-point smoke deck straight
# through, then again with a simulated mid-run kill (--halt-after-rounds,
# exit 3) followed by --resume at a different thread count, and require
# the two curve JSON/CSV outputs to be byte-identical. This exercises
# deck parsing, the work-stealing scheduler, checkpoint write/restore,
# and the determinism contract in one shot.
#
# Usage: scripts/campaign_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/ofdm_campaign"
DECK="decks/ci_smoke.deck"
WORK="$BUILD_DIR/campaign_smoke"

if [[ ! -x "$CLI" ]]; then
    echo "error: $CLI not found -- build the repo first" >&2
    exit 1
fi

rm -rf "$WORK"
mkdir -p "$WORK"

echo "== straight-through run (4 threads) =="
"$CLI" "$DECK" --threads 4 --out "$WORK/ref" --quiet

echo "== interrupted run: halt after 2 rounds (1 thread) =="
rc=0
"$CLI" "$DECK" --threads 1 --out "$WORK/halted" \
    --checkpoint "$WORK/ckpt.bin" --halt-after-rounds 2 --quiet || rc=$?
if [[ "$rc" -ne 3 ]]; then
    echo "error: expected exit 3 from --halt-after-rounds, got $rc" >&2
    exit 1
fi
if [[ ! -s "$WORK/ckpt.bin" ]]; then
    echo "error: no checkpoint written by the halted run" >&2
    exit 1
fi

echo "== resume at a different thread count (2 threads) =="
"$CLI" "$DECK" --threads 2 --out "$WORK/resumed" \
    --checkpoint "$WORK/ckpt.bin" --resume --quiet

for ext in json csv; do
    if ! cmp -s "$WORK/ref.$ext" "$WORK/resumed.$ext"; then
        echo "error: resumed .$ext curves differ from the" \
             "straight-through run" >&2
        diff "$WORK/ref.$ext" "$WORK/resumed.$ext" >&2 || true
        exit 1
    fi
done

echo "campaign smoke OK: resume output byte-identical" \
     "($(wc -c < "$WORK/ref.json") bytes of curve JSON)"
