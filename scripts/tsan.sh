#!/usr/bin/env bash
# Release + ThreadSanitizer run of the repo's concurrent code paths.
#
# Three worker pools exist: the SymbolPipeline (threaded transmitter),
# the pipeline-parallel graph executor (SPSC chunk queues + recycling
# slot pools, rf/executor/), and the campaign engine's work-stealing
# scheduler (sim/scheduler). This job builds their test suites in a
# separate build tree with -fsanitize=thread and runs them under ctest,
# so data races in the claim cursor / batch hand-off / completion wait
# (pipeline), queue indices / slot recycling / pass-through swaps /
# observed calls from worker stages (executor — test_executor drives a
# deep netlist with fan-in, guards and probes under 4 stages), and deque
# stealing / round reduction / checkpoint writes (test_sim runs
# campaigns at 1–4 threads) are caught even when the plain test suite
# passes. test_net adds the service daemon on top: thread-per-connection
# sessions, the executor pool behind the job queue, cooperative
# cancellation, drain/recovery hand-off, and concurrent multi-client
# loopback traffic all run under TSan here. test_fft hammers the
# process-wide FFT plan-table cache (mutex + shared_ptr hand-off, with
# a mid-flight clear()) from concurrent plan builders/executors.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-tsan"

cmake -B "${build}" -S "${repo}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "${build}" -j --target test_pipeline test_transmitter test_executor test_sim test_channels test_net test_fft
ctest --test-dir "${build}" \
  -R '^(test_pipeline|test_transmitter|test_executor|test_sim|test_channels|test_net|test_fft)$' \
  --output-on-failure "$@"
