#!/usr/bin/env bash
# Release + ThreadSanitizer run of the threaded symbol-pipeline tests.
#
# The SymbolPipeline worker pool is the only concurrent code in the
# repo; this job builds the pipeline and transmitter tests in a separate
# build tree with -fsanitize=thread and runs them under ctest, so data
# races in the pool (claim cursor, batch hand-off, completion wait)
# are caught even when the plain test suite passes.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-tsan"

cmake -B "${build}" -S "${repo}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "${build}" -j --target test_pipeline test_transmitter
ctest --test-dir "${build}" -R 'test_pipeline|test_transmitter' \
  --output-on-failure "$@"
