#!/usr/bin/env bash
# Release + Address/UndefinedBehaviorSanitizer run of the fault-
# containment tests.
#
# The fault-injection blocks deliberately drive the graph through its
# ugliest paths — NaN/Inf repair in place, mid-stream snapshot/restore
# into freshly built graphs, exceptions unwinding out of a running
# chain — exactly where lifetime and aliasing bugs hide. This job builds
# those tests in a separate tree with -fsanitize=address,undefined and
# runs them under ctest, so a use-after-free or UB in the containment
# machinery fails loudly even when the plain suite passes.
#
# test_state_fuzz runs the corpus fuzz of the OFDMSNAP / OFDMCAMP
# decoders here because overreads off corrupt length fields are exactly
# what ASan sees and the plain build may not. test_net adds the network
# layer: JSON parsing of malformed input, base64 decode, oversized-frame
# handling, and mid-stream disconnects all chew on external bytes.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-asan"

cmake -B "${build}" -S "${repo}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "${build}" -j \
  --target test_guard test_fault test_snapshot test_rf test_channels \
  test_state_fuzz test_net
ctest --test-dir "${build}" \
  -R '^(test_guard|test_fault|test_snapshot|test_rf|test_channels|test_state_fuzz|test_net)$' \
  --output-on-failure "$@"
