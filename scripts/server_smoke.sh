#!/usr/bin/env bash
# Service-daemon smoke test for CI: start ofdm_serverd, submit a
# campaign over the wire, kill -9 the daemon mid-run, restart it
# against the same state directory, and require (a) the job to be
# recovered and resumed from its OFDMCAMP checkpoint, (b) the fetched
# curves to be byte-identical to a direct ofdm_campaign run of the same
# deck, and (c) a resubmission of the same deck to be served from the
# result cache without executing a single new trial (asserted via the
# daemon's trials_executed counter). This exercises the whole
# fault-tolerant job lifecycle end to end: admission, persistence,
# hard-crash recovery, determinism across the resume cut, and the
# deck-digest cache.
#
# Usage: scripts/server_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/ofdm_serverd"
CLIENT="$BUILD_DIR/tools/ofdm_client"
CLI="$BUILD_DIR/tools/ofdm_campaign"
TO="timeout 60"

for exe in "$DAEMON" "$CLIENT" "$CLI"; do
    if [[ ! -x "$exe" ]]; then
        echo "error: $exe not found -- build the repo first" >&2
        exit 1
    fi
done

WORK="$BUILD_DIR/server_smoke"
rm -rf "$WORK"
mkdir -p "$WORK/state"

DAEMON_PID=""
cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# Big enough to still be running when the kill lands, small enough to
# finish in seconds; rel_ci effectively disabled so the trial count --
# and therefore the curves -- are exactly reproducible.
cat > "$WORK/smoke.deck" <<'EOF'
name=server_smoke
standard=wlan_80211a@12
snr_db=2:4:14
channel=awgn
payload_bits=256
trials.min=512
trials.max=4096
trials.batch=32
stop.rel_ci=1e-9
seed=41
EOF

json_field() {  # json_field '"key":' <<< reply  -> bare value
    grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

start_daemon() {
    rm -f "$WORK/port"
    "$DAEMON" --port-file "$WORK/port" --state-dir "$WORK/state" \
        --executors 1 --threads 2 --quiet &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$WORK/port" ]] && break
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "error: daemon exited during startup" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$WORK/port" ]]; then
        echo "error: daemon never wrote its port file" >&2
        exit 1
    fi
    PORT="$(cat "$WORK/port")"
}

echo "== start daemon, submit deck =="
start_daemon
REPLY="$($TO "$CLIENT" submit --port "$PORT" --deck "$WORK/smoke.deck")"
ID="$(grep -o '"id":"[0-9a-f]*"' <<< "$REPLY" | head -1 | cut -d'"' -f4)"
if [[ -z "$ID" ]]; then
    echo "error: submit returned no job id: $REPLY" >&2
    exit 1
fi
echo "   job id $ID"

echo "== wait for >=2 rounds of progress, then kill -9 the daemon =="
ROUNDS=0
for _ in $(seq 1 300); do
    ST="$($TO "$CLIENT" status --port "$PORT" --id "$ID")"
    ROUNDS="$(json_field rounds <<< "$ST")"
    STATE="$(grep -o '"state":"[a-z]*"' <<< "$ST" | cut -d'"' -f4)"
    if [[ "$STATE" == "done" ]]; then
        echo "error: job finished before the kill could land --" \
             "enlarge the smoke deck" >&2
        exit 1
    fi
    [[ "${ROUNDS:-0}" -ge 2 ]] && break
    sleep 0.05
done
if [[ "${ROUNDS:-0}" -lt 2 ]]; then
    echo "error: job made no progress (state $STATE)" >&2
    exit 1
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
if [[ ! -s "$WORK/state/$ID.deck" ]]; then
    echo "error: no persisted deck for $ID after the crash" >&2
    exit 1
fi
echo "   killed after $ROUNDS rounds; state dir holds" \
     "$(ls "$WORK/state" | tr '\n' ' ')"

echo "== restart against the same state dir: job must be recovered =="
start_daemon
RECOVERED="$($TO "$CLIENT" stats --port "$PORT" | json_field jobs_recovered)"
if [[ "${RECOVERED:-0}" -lt 1 ]]; then
    echo "error: restarted daemon recovered no jobs" >&2
    exit 1
fi

echo "== wait for completion, fetch curves =="
for _ in $(seq 1 1200); do
    ST="$($TO "$CLIENT" status --port "$PORT" --id "$ID")"
    STATE="$(grep -o '"state":"[a-z]*"' <<< "$ST" | cut -d'"' -f4)"
    [[ "$STATE" == "done" ]] && break
    if [[ "$STATE" != "queued" && "$STATE" != "running" ]]; then
        echo "error: recovered job ended '$STATE': $ST" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ "$STATE" != "done" ]]; then
    echo "error: recovered job never finished (state $STATE)" >&2
    exit 1
fi
$TO "$CLIENT" result --port "$PORT" --id "$ID" --out "$WORK/server" \
    > /dev/null

echo "== byte-compare against a direct ofdm_campaign run =="
timeout 300 "$CLI" "$WORK/smoke.deck" --threads 4 --out "$WORK/ref" --quiet
for ext in json csv; do
    if ! cmp -s "$WORK/ref.$ext" "$WORK/server.$ext"; then
        echo "error: server .$ext curves differ from the direct run" >&2
        diff "$WORK/ref.$ext" "$WORK/server.$ext" >&2 || true
        exit 1
    fi
done
echo "   curves byte-identical" \
     "($(wc -c < "$WORK/ref.json") bytes of curve JSON)"

echo "== cached resubmission must execute zero new trials =="
BEFORE="$($TO "$CLIENT" stats --port "$PORT" | json_field trials_executed)"
$TO "$CLIENT" submit --port "$PORT" --deck "$WORK/smoke.deck" --wait \
    --out "$WORK/cached" > /dev/null
AFTER="$($TO "$CLIENT" stats --port "$PORT" | json_field trials_executed)"
if [[ "$BEFORE" != "$AFTER" ]]; then
    echo "error: cached resubmission ran trials ($BEFORE -> $AFTER)" >&2
    exit 1
fi
if ! cmp -s "$WORK/ref.json" "$WORK/cached.json"; then
    echo "error: cached curves differ from the direct run" >&2
    exit 1
fi

echo "== graceful shutdown =="
$TO "$CLIENT" shutdown --port "$PORT" > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "error: daemon ignored the shutdown op" >&2
    exit 1
fi
DAEMON_PID=""

echo "server smoke OK: crash recovery byte-identical, cache serves" \
     "resubmissions without recompute"
