// A miniature event-driven RTL simulation kernel (signals, processes,
// delta cycles, clocks) — the mini-SystemC on which the RT-level baseline
// transmitter runs.
//
// The paper's premise is that IP blocks "described at RT-level cause an
// impractical increase to the simulation times". This kernel reproduces
// the *cost structure* of that claim faithfully: every clock edge is a
// timed event, every triggered process an activation, every register
// write a delta-cycle signal update. Experiment E2 counts exactly these.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ofdm::rtl {

/// Simulation timestamp (integer ticks; 1 tick = 1 ns by convention).
using SimTime = std::uint64_t;

class Simulator;

/// A process: a callback with a scheduling guard so each process runs at
/// most once per delta cycle.
class Process {
 public:
  explicit Process(std::string name, std::function<void()> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void run() {
    scheduled_ = false;
    fn_();
  }
  const std::string& name() const { return name_; }

 private:
  friend class Simulator;
  std::string name_;
  std::function<void()> fn_;
  bool scheduled_ = false;
};

/// Non-template signal core: update-phase hook.
class SignalBase {
 public:
  explicit SignalBase(Simulator& sim) : sim_(sim) {}
  virtual ~SignalBase() = default;

  /// Commit next -> current; notify sensitive processes on change.
  virtual void update() = 0;

  /// Register a process to wake on every value change.
  void sensitize(Process* p) { sensitive_.push_back(p); }

 protected:
  void notify_sensitive();
  void request_update();

  Simulator& sim_;
  bool update_pending_ = false;

 private:
  std::vector<Process*> sensitive_;
};

/// A typed signal with SystemC semantics: write() takes effect at the
/// next delta cycle; read() always sees the committed value.
template <typename T>
class Signal : public SignalBase {
 public:
  Signal(Simulator& sim, T init = T{})
      : SignalBase(sim), curr_(init), next_(init) {}

  const T& read() const { return curr_; }

  void write(const T& v) {
    next_ = v;
    request_update();
  }

  void update() override {
    update_pending_ = false;
    if (!(curr_ == next_)) {
      curr_ = next_;
      notify_sensitive();
    }
  }

 private:
  T curr_;
  T next_;
};

/// The event-driven simulation kernel.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Create a process owned by the kernel.
  Process* make_process(std::string name, std::function<void()> fn);

  /// Schedule a process at an absolute future time.
  void schedule_at(SimTime t, Process* p);

  /// Schedule a process for the next delta cycle of the current time.
  void schedule_delta(Process* p);

  /// Called by signals whose next-value differs (update phase entry).
  void request_update(SignalBase* s);

  /// Run until the event queue empties or `until` is reached.
  void run(SimTime until = UINT64_MAX);

  SimTime now() const { return now_; }

  /// Kernel activity counters (the E2 ablation data).
  struct Stats {
    std::uint64_t timed_events = 0;
    std::uint64_t delta_cycles = 0;
    std::uint64_t process_activations = 0;
    std::uint64_t signal_updates = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void run_delta_cycles();

  SimTime now_ = 0;
  std::multimap<SimTime, Process*> timed_;
  std::vector<Process*> runnable_;
  std::vector<SignalBase*> pending_updates_;
  std::vector<std::unique_ptr<Process>> processes_;
  Stats stats_;
};

/// Free-running clock: toggles a bool signal with the given half-period.
class Clock {
 public:
  Clock(Simulator& sim, SimTime half_period, const std::string& name = "clk");

  Signal<bool>& signal() { return sig_; }
  /// True on the rising edge (for processes sensitive to the signal).
  bool posedge() const { return sig_.read(); }

 private:
  Signal<bool> sig_;
  Process* toggler_;
  SimTime half_period_;
  Simulator& sim_;
};

}  // namespace ofdm::rtl
