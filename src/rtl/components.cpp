#include "rtl/components.hpp"

#include <bit>

namespace ofdm::rtl {

RtlScrambler::RtlScrambler(Simulator& sim, Signal<bool>& clk,
                           Signal<bool>& enable, Signal<bool>& bit_in,
                           std::uint8_t seed)
    : clk_(clk), enable_(enable), in_(bit_in), out_(sim, false),
      state_(static_cast<std::uint8_t>(seed & 0x7F)) {
  Process* p = sim.make_process("rtl_scrambler", [this]() {
    if (!clk_.read() || !enable_.read()) return;  // posedge + enable
    // Feedback = delay-7 XOR delay-4 cells (bits 6 and 3).
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
    out_.write((in_.read() ? 1 : 0) ^ fb);
    state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  });
  clk.sensitize(p);
}

RtlConvEncoder::RtlConvEncoder(Simulator& sim, Signal<bool>& clk,
                               Signal<bool>& enable, Signal<bool>& bit_in)
    : clk_(clk), enable_(enable), in_(bit_in), out_a_(sim, false),
      out_b_(sim, false) {
  Process* p = sim.make_process("rtl_conv", [this]() {
    if (!clk_.read() || !enable_.read()) return;
    window_ = (window_ >> 1) |
              (static_cast<std::uint32_t>(in_.read() ? 1u : 0u) << 6);
    out_a_.write((std::popcount(window_ & 0133u) & 1) != 0);
    out_b_.write((std::popcount(window_ & 0171u) & 1) != 0);
  });
  clk.sensitize(p);
}

}  // namespace ofdm::rtl
