// Small cycle-level RTL components. These mirror the bit-serial hardware
// structure of an 802.11a transmitter datapath: one bit (or one butterfly,
// or one sample) per clock edge.
#pragma once

#include <cstdint>

#include "rtl/kernel.hpp"

namespace ofdm::rtl {

/// Bit-serial 802.11a scrambler (x^7 + x^4 + 1). Registers one output
/// bit per rising clock edge while `enable` is high.
class RtlScrambler {
 public:
  RtlScrambler(Simulator& sim, Signal<bool>& clk, Signal<bool>& enable,
               Signal<bool>& bit_in, std::uint8_t seed);

  Signal<bool>& bit_out() { return out_; }
  std::uint8_t state() const { return state_; }

 private:
  Signal<bool>& clk_;
  Signal<bool>& enable_;
  Signal<bool>& in_;
  Signal<bool> out_;
  std::uint8_t state_;
};

/// Bit-serial K=7 (133,171) convolutional encoder: consumes one input
/// bit and registers both coded bits per rising clock edge.
class RtlConvEncoder {
 public:
  RtlConvEncoder(Simulator& sim, Signal<bool>& clk, Signal<bool>& enable,
                 Signal<bool>& bit_in);

  Signal<bool>& out_a() { return out_a_; }
  Signal<bool>& out_b() { return out_b_; }

 private:
  Signal<bool>& clk_;
  Signal<bool>& enable_;
  Signal<bool>& in_;
  Signal<bool> out_a_;
  Signal<bool> out_b_;
  std::uint32_t window_ = 0;
};

}  // namespace ofdm::rtl
