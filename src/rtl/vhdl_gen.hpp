// VHDL generation: the HDL-domain face of the Mother Model.
//
// The paper (§3): "To extend the design domain specific models of the
// OFDM standard family, Mother Models in SystemC and in VHDL have been
// programmed". Our event-kernel datapath plays the SystemC role; this
// generator plays the VHDL role — it emits a parameterized RTL bundle
// (package of constants, LFSR scrambler, convolutional encoder,
// interleaver ROM, constellation mapper ROM) for any configured family
// member. One Mother Model, emitted per-standard, in a third design
// domain.
//
// The emitted code targets synthesizable VHDL-93 structure; with no
// VHDL toolchain in this environment it is verified structurally (and
// its ROM contents numerically) by tests/test_vhdl_gen.cpp.
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"

namespace ofdm::rtl {

struct VhdlFile {
  std::string filename;
  std::string contents;
};

struct VhdlBundle {
  std::vector<VhdlFile> files;

  const VhdlFile* find(const std::string& filename) const;
};

/// Emit the RTL bundle for one configured standard. `fixed_bits` is the
/// signed fixed-point width used for constellation ROM entries.
VhdlBundle generate_vhdl(const core::OfdmParams& params,
                         unsigned fixed_bits = 12);

/// Quantize a constellation coordinate to the signed fixed-point code
/// used in the mapper ROM (full scale = 2.0, covering every normalized
/// constellation).
long to_fixed(double value, unsigned fixed_bits);

}  // namespace ofdm::rtl
