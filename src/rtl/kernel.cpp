#include "rtl/kernel.hpp"

namespace ofdm::rtl {

void SignalBase::notify_sensitive() {
  for (Process* p : sensitive_) sim_.schedule_delta(p);
}

void SignalBase::request_update() {
  if (!update_pending_) {
    update_pending_ = true;
    sim_.request_update(this);
  }
}

Process* Simulator::make_process(std::string name,
                                 std::function<void()> fn) {
  processes_.push_back(
      std::make_unique<Process>(std::move(name), std::move(fn)));
  return processes_.back().get();
}

void Simulator::schedule_at(SimTime t, Process* p) {
  OFDM_REQUIRE(t >= now_, "Simulator: cannot schedule in the past");
  timed_.emplace(t, p);
}

void Simulator::schedule_delta(Process* p) {
  if (!p->scheduled_) {
    p->scheduled_ = true;
    runnable_.push_back(p);
  }
}

void Simulator::request_update(SignalBase* s) { pending_updates_.push_back(s); }

void Simulator::run_delta_cycles() {
  while (!runnable_.empty() || !pending_updates_.empty()) {
    ++stats_.delta_cycles;
    // Evaluation phase.
    std::vector<Process*> batch;
    batch.swap(runnable_);
    for (Process* p : batch) {
      ++stats_.process_activations;
      p->run();
    }
    // Update phase: commit signal writes, waking sensitive processes
    // into the next delta cycle.
    std::vector<SignalBase*> updates;
    updates.swap(pending_updates_);
    stats_.signal_updates += updates.size();
    for (SignalBase* s : updates) s->update();
  }
}

void Simulator::run(SimTime until) {
  // Flush anything already runnable at the current time.
  run_delta_cycles();
  while (!timed_.empty()) {
    const auto it = timed_.begin();
    const SimTime t = it->first;
    if (t > until) break;
    now_ = t;
    // Pop every process scheduled for this instant.
    while (!timed_.empty() && timed_.begin()->first == now_) {
      ++stats_.timed_events;
      schedule_delta(timed_.begin()->second);
      timed_.erase(timed_.begin());
    }
    run_delta_cycles();
  }
}

Clock::Clock(Simulator& sim, SimTime half_period, const std::string& name)
    : sig_(sim, false), half_period_(half_period), sim_(sim) {
  OFDM_REQUIRE(half_period >= 1, "Clock: half period must be >= 1 tick");
  toggler_ = sim.make_process(name + ".toggle", [this]() {
    sig_.write(!sig_.read());
    sim_.schedule_at(sim_.now() + half_period_, toggler_);
  });
  sim.schedule_at(half_period, toggler_);
}

}  // namespace ofdm::rtl
