// Cycle-level 802.11a transmitter datapath on the event-driven kernel —
// the RT-level baseline of experiment E2.
//
// One rising clock edge performs exactly one hardware-step of work:
//   BITGEN      scramble 1 payload bit, convolve -> 2 coded bits
//   INTERLEAVE  write 1 coded bit through the interleaver address logic
//   FFTLOAD     map and load 1 subcarrier into the FFT RAM (bit-reversed)
//   FFT         execute 1 radix-2 butterfly (N/2 * log2 N per symbol)
//   OUTPUT      emit 1 sample (cyclic prefix then body)
//
// The arithmetic replicates the behavioural Mother Model operation for
// operation, so the output is bit-exact against core::Transmitter
// configured for the same mode with preamble and windowing disabled —
// the RTL/behavioural equivalence the paper's multi-domain Mother Model
// claim rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/params.hpp"
#include "rtl/kernel.hpp"

namespace ofdm::rtl {

class WlanTx {
 public:
  /// `scheme` must be a rate-1/2 mode (no puncturing logic in the
  /// datapath); `n_symbols` payload OFDM symbols are produced.
  WlanTx(Simulator& sim, Signal<bool>& clk, mapping::Scheme scheme,
         std::size_t n_symbols);

  /// Payload must be exactly payload_bits() long.
  void set_payload(bitvec payload);
  std::size_t payload_bits() const;

  Signal<bool>& sample_valid() { return sample_valid_; }
  Signal<cplx>& sample_out() { return sample_out_; }
  Signal<bool>& done() { return done_; }

  std::size_t expected_samples() const { return n_symbols_ * 80; }

 private:
  enum class Phase { kBitgen, kInterleave, kFftLoad, kFft, kOutput, kDone };

  void on_clock();
  void start_symbol();

  // --- configuration (synthesis-time constants) ---
  mapping::Scheme scheme_;
  std::size_t n_symbols_;
  std::size_t n_bpsc_;
  std::size_t cbps_;
  std::vector<std::size_t> interleave_map_;    // write permutation
  std::vector<std::size_t> bitrev_;            // FFT input ordering
  cvec twiddle_;                               // conjugated (IFFT) ROM
  std::vector<int> bin_role_;                  // 0 null, 1 data, 2 pilot
  std::vector<std::size_t> bin_data_index_;    // carrier -> mapped index
  std::vector<std::size_t> bin_pilot_index_;
  cvec pilot_base_;
  double scale_;
  mapping::Constellation mapper_rom_;

  // --- architectural state (registers / RAMs) ---
  Phase phase_ = Phase::kDone;
  std::size_t symbol_ = 0;
  std::size_t counter_ = 0;
  std::size_t fft_stage_ = 0;
  std::size_t fft_butterfly_ = 0;
  std::uint8_t scr_state_ = 0x5D;
  std::uint32_t conv_window_ = 0;
  std::uint16_t pilot_lfsr_ = 0x7F;
  double pilot_polarity_ = 1.0;
  std::size_t payload_pos_ = 0;
  bitvec payload_;
  bitvec coded_ram_;
  bitvec inter_ram_;
  cvec fft_ram_;

  // --- outputs ---
  Signal<bool> sample_valid_;
  Signal<cplx> sample_out_;
  Signal<bool> done_;

  Signal<bool>& clk_;
};

/// Convenience driver: build a kernel + clock + WlanTx, run to completion
/// and return the emitted samples together with the kernel statistics.
struct WlanTxRun {
  cvec samples;
  Simulator::Stats stats;
  SimTime finish_time = 0;
};

WlanTxRun run_wlan_tx(mapping::Scheme scheme, std::size_t n_symbols,
                      const bitvec& payload);

}  // namespace ofdm::rtl
