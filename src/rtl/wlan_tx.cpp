#include "rtl/wlan_tx.hpp"

#include <bit>
#include <cmath>

#include "coding/interleaver.hpp"
#include "core/profiles.hpp"
#include "core/tone_map.hpp"
#include "mapping/constellation.hpp"

namespace ofdm::rtl {

namespace {
constexpr std::size_t kN = 64;
constexpr std::size_t kCp = 16;
constexpr std::size_t kStages = 6;

std::vector<std::size_t> make_bitrev() {
  std::vector<std::size_t> rev(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < kStages; ++b) {
      r |= ((i >> b) & 1u) << (kStages - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}
}  // namespace

WlanTx::WlanTx(Simulator& sim, Signal<bool>& clk, mapping::Scheme scheme,
               std::size_t n_symbols)
    : scheme_(scheme),
      n_symbols_(n_symbols),
      n_bpsc_(mapping::bits_per_symbol(scheme)),
      cbps_(48 * n_bpsc_),
      bitrev_(make_bitrev()),
      mapper_rom_(mapping::Constellation::make(scheme)),
      sample_valid_(sim, false),
      sample_out_(sim, cplx{0.0, 0.0}),
      done_(sim, false),
      clk_(clk) {
  OFDM_REQUIRE(n_symbols >= 1, "WlanTx: need at least one symbol");

  interleave_map_ = coding::make_wlan_interleaver(cbps_, n_bpsc_).mapping();

  // Twiddle ROM, conjugated for the inverse transform (same values the
  // behavioural FFT uses).
  twiddle_.resize(kN / 2);
  for (std::size_t k = 0; k < kN / 2; ++k) {
    const double a = -kTwoPi * static_cast<double>(k) /
                     static_cast<double>(kN);
    twiddle_[k] = std::conj(cplx{std::cos(a), std::sin(a)});
  }

  // Carrier plan from the behavioural profile (ROM contents).
  const core::OfdmParams ref = core::profile_wlan_80211a();
  const core::ToneLayout layout = core::make_tone_layout(ref);
  bin_role_.assign(kN, 0);
  bin_data_index_.assign(kN, 0);
  bin_pilot_index_.assign(kN, 0);
  for (std::size_t i = 0; i < layout.data_bins.size(); ++i) {
    bin_role_[layout.data_bins[i]] = 1;
    bin_data_index_[layout.data_bins[i]] = i;
  }
  for (std::size_t i = 0; i < layout.pilot_bins.size(); ++i) {
    bin_role_[layout.pilot_bins[i]] = 2;
    bin_pilot_index_[layout.pilot_bins[i]] = i;
  }
  pilot_base_ = ref.pilots.base_values;
  scale_ = static_cast<double>(kN) / std::sqrt(52.0);

  coded_ram_.assign(cbps_, 0);
  inter_ram_.assign(cbps_, 0);
  fft_ram_.assign(kN, cplx{0.0, 0.0});

  Process* p = sim.make_process("wlan_tx", [this]() {
    if (clk_.read()) on_clock();
  });
  clk.sensitize(p);
}

std::size_t WlanTx::payload_bits() const {
  // Rate 1/2 with 6 tail bits: cbps/2 input bits per symbol.
  return n_symbols_ * (cbps_ / 2) - 6;
}

void WlanTx::set_payload(bitvec payload) {
  OFDM_REQUIRE(payload.size() == payload_bits(),
               "WlanTx: payload must be exactly payload_bits() long");
  payload_ = std::move(payload);
  payload_pos_ = 0;
  symbol_ = 0;
  scr_state_ = 0x5D;
  conv_window_ = 0;
  pilot_lfsr_ = 0x7F;
  done_.write(false);
  start_symbol();
}

void WlanTx::start_symbol() {
  phase_ = Phase::kBitgen;
  counter_ = 0;
  fft_stage_ = 0;
  fft_butterfly_ = 0;
  // Pilot polarity PRBS steps once per symbol (x^7+x^4+1, all-ones seed).
  const auto fb = static_cast<std::uint16_t>(
      ((pilot_lfsr_ >> 6) ^ (pilot_lfsr_ >> 3)) & 1u);
  pilot_polarity_ = fb ? -1.0 : 1.0;
  pilot_lfsr_ = static_cast<std::uint16_t>(((pilot_lfsr_ << 1) | fb) & 0x7F);
}

void WlanTx::on_clock() {
  bool emitted = false;
  switch (phase_) {
    case Phase::kBitgen: {
      // One input bit: scrambled payload, or an unscrambled zero tail.
      bool bit = false;
      if (payload_pos_ < payload_.size()) {
        const auto fb = static_cast<std::uint8_t>(
            ((scr_state_ >> 6) ^ (scr_state_ >> 3)) & 1u);
        bit = ((payload_[payload_pos_] ^ fb) & 1u) != 0;
        scr_state_ = static_cast<std::uint8_t>(
            ((scr_state_ << 1) | fb) & 0x7F);
        ++payload_pos_;
      }
      conv_window_ = (conv_window_ >> 1) |
                     (static_cast<std::uint32_t>(bit ? 1u : 0u) << 6);
      coded_ram_[2 * counter_] = static_cast<std::uint8_t>(
          std::popcount(conv_window_ & 0133u) & 1);
      coded_ram_[2 * counter_ + 1] = static_cast<std::uint8_t>(
          std::popcount(conv_window_ & 0171u) & 1);
      if (++counter_ == cbps_ / 2) {
        phase_ = Phase::kInterleave;
        counter_ = 0;
      }
      break;
    }
    case Phase::kInterleave: {
      inter_ram_[interleave_map_[counter_]] = coded_ram_[counter_];
      if (++counter_ == cbps_) {
        phase_ = Phase::kFftLoad;
        counter_ = 0;
      }
      break;
    }
    case Phase::kFftLoad: {
      const std::size_t bin = counter_;
      cplx value{0.0, 0.0};
      if (bin_role_[bin] == 1) {
        const std::size_t base = bin_data_index_[bin] * n_bpsc_;
        value = mapper_rom_.map(std::span<const std::uint8_t>(inter_ram_)
                                    .subspan(base, n_bpsc_));
      } else if (bin_role_[bin] == 2) {
        value = pilot_base_[bin_pilot_index_[bin]] * pilot_polarity_;
      }
      fft_ram_[bitrev_[bin]] = value;  // bit-reversed load
      if (++counter_ == kN) {
        phase_ = Phase::kFft;
        counter_ = 0;
      }
      break;
    }
    case Phase::kFft: {
      // One radix-2 DIT butterfly per clock, same traversal order and
      // arithmetic as the behavioural FFT.
      const std::size_t len = std::size_t{2} << fft_stage_;
      const std::size_t half = len / 2;
      const std::size_t step = kN / len;
      const std::size_t base = (fft_butterfly_ / half) * len;
      const std::size_t k = fft_butterfly_ % half;
      const cplx w = twiddle_[k * step];
      const cplx u = fft_ram_[base + k];
      const cplx t = fft_ram_[base + k + half] * w;
      fft_ram_[base + k] = u + t;
      fft_ram_[base + k + half] = u - t;
      if (++fft_butterfly_ == kN / 2) {
        fft_butterfly_ = 0;
        if (++fft_stage_ == kStages) {
          phase_ = Phase::kOutput;
          counter_ = 0;
        }
      }
      break;
    }
    case Phase::kOutput: {
      const std::size_t idx =
          counter_ < kCp ? kN - kCp + counter_ : counter_ - kCp;
      const cplx sample =
          (fft_ram_[idx] * (1.0 / static_cast<double>(kN))) * scale_;
      sample_out_.write(sample);
      sample_valid_.write(true);
      emitted = true;
      if (++counter_ == kCp + kN) {
        // valid is deasserted on the *next* edge (see below) so the last
        // sample stays observable for a full half-cycle.
        if (++symbol_ == n_symbols_) {
          phase_ = Phase::kDone;
          done_.write(true);
        } else {
          start_symbol();
        }
      }
      break;
    }
    case Phase::kDone:
      break;
  }
  if (!emitted) sample_valid_.write(false);
}

WlanTxRun run_wlan_tx(mapping::Scheme scheme, std::size_t n_symbols,
                      const bitvec& payload) {
  Simulator sim;
  Clock clock(sim, 5);  // 100 MHz system clock (10 ns period)
  WlanTx tx(sim, clock.signal(), scheme, n_symbols);
  tx.set_payload(payload);

  WlanTxRun result;
  result.samples.reserve(tx.expected_samples());
  // Monitor: latch one sample per rising edge while valid is high. The
  // output registers settle in the same delta as the datapath clock
  // process, so sample on the falling edge.
  Process* mon = sim.make_process("monitor", [&]() {
    if (!clock.signal().read() && tx.sample_valid().read()) {
      result.samples.push_back(tx.sample_out().read());
    }
  });
  clock.signal().sensitize(mon);

  // Run until the datapath raises done (the clock self-reschedules
  // forever, so an unconditional run() would never return).
  const SimTime hard_limit =
      static_cast<SimTime>(n_symbols) * 1000 * 10 + 100000;
  while (!tx.done().read() && sim.now() < hard_limit) {
    sim.run(sim.now() + 10000);
  }
  result.stats = sim.stats();
  result.finish_time = sim.now();
  return result;
}

}  // namespace ofdm::rtl
