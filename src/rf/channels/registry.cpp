#include "rf/channels/registry.hpp"

#include "common/error.hpp"
#include "rf/channels/cfo.hpp"
#include "rf/channels/rician.hpp"
#include "rf/channels/tdl.hpp"
#include "rf/channels/watterson.hpp"

namespace ofdm::rf::channels {

namespace {

struct RicianPreset {
  const char* name;
  double k;  // linear K factor
};

// Diffuse-component Doppler spread shared by the Rician K lines; wide
// enough to decorrelate within one trial at every supported standard's
// sample rate once doppler_scale is applied.
constexpr double kRicianSpreadHz = 50.0;

constexpr RicianPreset kRicianPresets[] = {
    {"rician_k1", 1.0},
    {"rician_k5", 5.0},
    {"rician_k10", 10.0},
};

struct CfoPreset {
  const char* name;
  const char* description;
  double cfo_hz;
  double drift_hz_per_s;
};

constexpr CfoPreset kCfoPresets[] = {
    {"cfo_static", "static 200 Hz carrier frequency offset", 200.0, 0.0},
    {"cfo_drift", "200 Hz carrier offset drifting at 100 Hz/s", 200.0,
     100.0},
};

std::vector<PresetInfo> build_presets() {
  std::vector<PresetInfo> out;
  const CcirCondition conditions[] = {
      CcirCondition::kGood, CcirCondition::kModerate,
      CcirCondition::kPoor, CcirCondition::kFlutter};
  for (CcirCondition c : conditions) {
    const WattersonPreset& p = watterson_preset(c);
    PresetInfo info;
    info.name = p.name;
    info.family = "watterson";
    info.description = std::string("CCIR 520 / ITU-R F.1487 '") +
                       (c == CcirCondition::kGood       ? "good"
                        : c == CcirCondition::kModerate ? "moderate"
                        : c == CcirCondition::kPoor     ? "poor"
                                                        : "flutter") +
                       "' HF condition (Watterson two-path)";
    info.doppler_hz = p.doppler_spread_hz;
    info.paths = 2;
    info.delay_spread_us = p.delay_ms * 1e3;
    info.time_varying = true;
    out.push_back(std::move(info));
  }
  for (const TdlProfile& p : tdl_profiles()) {
    PresetInfo info;
    info.name = p.name;
    info.family = "tdl";
    info.description = p.label + " tapped-delay-line profile";
    info.doppler_hz = p.doppler_hz;
    info.paths = p.taps.size();
    info.delay_spread_us = tdl_delay_spread_us(p);
    info.time_varying = false;  // static per-trial realization
    out.push_back(std::move(info));
  }
  for (const RicianPreset& p : kRicianPresets) {
    PresetInfo info;
    info.name = p.name;
    info.family = "rician";
    info.description = "flat Rician fading, K = " +
                       std::to_string(static_cast<int>(p.k)) +
                       " (linear)";
    info.doppler_hz = kRicianSpreadHz;
    info.paths = 1;
    info.delay_spread_us = 0.0;
    info.time_varying = true;
    out.push_back(std::move(info));
  }
  for (const CfoPreset& p : kCfoPresets) {
    PresetInfo info;
    info.name = p.name;
    info.family = "cfo";
    info.description = p.description;
    info.doppler_hz = 0.0;
    info.paths = 1;
    info.delay_spread_us = 0.0;
    info.time_varying = p.drift_hz_per_s != 0.0;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace

const std::vector<PresetInfo>& presets() {
  static const std::vector<PresetInfo> kPresets = build_presets();
  return kPresets;
}

const PresetInfo* find_preset(const std::string& name) {
  for (const PresetInfo& p : presets()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string preset_names() {
  std::string out;
  for (const PresetInfo& p : presets()) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

std::unique_ptr<Block> make_preset(const std::string& name,
                                   const MakeOptions& opts) {
  OFDM_REQUIRE(opts.sample_rate > 0.0,
               "channels::make_preset: sample_rate must be positive");
  OFDM_REQUIRE(opts.doppler_scale > 0.0,
               "channels::make_preset: doppler_scale must be positive");

  if (name == "ccir_good" || name == "ccir_moderate" ||
      name == "ccir_poor" || name == "ccir_flutter") {
    const CcirCondition c = name == "ccir_good" ? CcirCondition::kGood
                            : name == "ccir_moderate"
                                ? CcirCondition::kModerate
                            : name == "ccir_poor" ? CcirCondition::kPoor
                                                  : CcirCondition::kFlutter;
    return make_watterson(c, opts.sample_rate, opts.seed,
                          opts.doppler_scale);
  }
  if (const TdlProfile* p = find_tdl_profile(name)) {
    return make_tdl_channel(*p, opts.sample_rate, opts.seed);
  }
  for (const RicianPreset& p : kRicianPresets) {
    if (name == p.name) {
      return std::make_unique<RicianChannel>(
          p.k, kRicianSpreadHz * opts.doppler_scale, opts.sample_rate,
          opts.seed);
    }
  }
  for (const CfoPreset& p : kCfoPresets) {
    if (name == p.name) {
      return std::make_unique<OscillatorDrift>(p.cfo_hz, p.drift_hz_per_s,
                                               opts.sample_rate);
    }
  }
  throw ConfigError("channels::make_preset: unknown channel preset '" +
                    name + "' (known: " + preset_names() + ")");
}

}  // namespace ofdm::rf::channels
