#include "rf/channels/tdl.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace ofdm::rf::channels {

const std::vector<TdlProfile>& tdl_profiles() {
  // Delay/power values are the published tables: ITU-R M.1225 table 2
  // (channel A/B, outdoor-to-indoor pedestrian and vehicular test
  // environments) and the SUI models of IEEE 802.16.3c-01/29r4 (omni
  // antennas, 90% K-factor column for the Rician first taps). Doppler
  // is the nominal scenario value: ~3 km/h at 2 GHz for pedestrian,
  // ~100 km/h for vehicular, and the per-model maximum for SUI.
  static const std::vector<TdlProfile> kProfiles = {
      {"itu_ped_a",
       "ITU-R M.1225 Pedestrian A",
       {{0.0, 0.0, 0.0},
        {0.11, -9.7, 0.0},
        {0.19, -19.2, 0.0},
        {0.41, -22.8, 0.0}},
       5.0},
      {"itu_ped_b",
       "ITU-R M.1225 Pedestrian B",
       {{0.0, 0.0, 0.0},
        {0.2, -0.9, 0.0},
        {0.8, -4.9, 0.0},
        {1.2, -8.0, 0.0},
        {2.3, -7.8, 0.0},
        {3.7, -23.9, 0.0}},
       5.0},
      {"itu_veh_a",
       "ITU-R M.1225 Vehicular A",
       {{0.0, 0.0, 0.0},
        {0.31, -1.0, 0.0},
        {0.71, -9.0, 0.0},
        {1.09, -10.0, 0.0},
        {1.73, -15.0, 0.0},
        {2.51, -20.0, 0.0}},
       185.0},
      {"itu_veh_b",
       "ITU-R M.1225 Vehicular B",
       {{0.0, -2.5, 0.0},
        {0.3, 0.0, 0.0},
        {8.9, -12.8, 0.0},
        {12.9, -10.0, 0.0},
        {17.1, -25.2, 0.0},
        {20.0, -16.0, 0.0}},
       185.0},
      {"sui_1",
       "SUI-1 (flat terrain, light trees)",
       {{0.0, 0.0, 4.0}, {0.4, -15.0, 0.0}, {0.9, -20.0, 0.0}},
       0.5},
      {"sui_2",
       "SUI-2 (flat terrain, light trees)",
       {{0.0, 0.0, 2.0}, {0.4, -12.0, 0.0}, {1.1, -15.0, 0.0}},
       0.25},
      {"sui_3",
       "SUI-3 (hilly terrain, moderate trees)",
       {{0.0, 0.0, 1.0}, {0.4, -5.0, 0.0}, {0.9, -10.0, 0.0}},
       0.5},
      {"sui_4",
       "SUI-4 (hilly terrain, moderate trees)",
       {{0.0, 0.0, 0.0}, {1.5, -4.0, 0.0}, {4.0, -8.0, 0.0}},
       0.25},
      {"sui_5",
       "SUI-5 (hilly terrain, heavy trees)",
       {{0.0, 0.0, 0.0}, {4.0, -5.0, 0.0}, {10.0, -10.0, 0.0}},
       2.5},
      {"sui_6",
       "SUI-6 (hilly terrain, heavy trees)",
       {{0.0, 0.0, 0.0}, {14.0, -10.0, 0.0}, {20.0, -14.0, 0.0}},
       0.5},
  };
  return kProfiles;
}

const TdlProfile* find_tdl_profile(const std::string& name) {
  for (const TdlProfile& p : tdl_profiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const TdlProfile& tdl_profile(const std::string& name) {
  const TdlProfile* p = find_tdl_profile(name);
  OFDM_REQUIRE(p != nullptr,
               "tdl_profile: unknown profile '" + name + "'");
  return *p;
}

double tdl_delay_spread_us(const TdlProfile& profile) {
  double max_delay = 0.0;
  for (const TdlTap& t : profile.taps) {
    max_delay = std::max(max_delay, t.delay_us);
  }
  return max_delay;
}

cvec tdl_realization(const TdlProfile& profile, double sample_rate,
                     std::uint64_t seed) {
  OFDM_REQUIRE(sample_rate > 0.0,
               "tdl_realization: sample rate must be positive");
  OFDM_REQUIRE(!profile.taps.empty(),
               "tdl_realization: profile has no taps");
  std::size_t max_bin = 0;
  for (const TdlTap& t : profile.taps) {
    max_bin = std::max(max_bin, static_cast<std::size_t>(std::llround(
                                    t.delay_us * 1e-6 * sample_rate)));
  }
  cvec taps(max_bin + 1, cplx{0.0, 0.0});
  Rng rng(seed);
  for (const TdlTap& t : profile.taps) {
    const auto bin = static_cast<std::size_t>(
        std::llround(t.delay_us * 1e-6 * sample_rate));
    const double p = from_db(t.power_db);
    // Rician split of the tap power; K = 0 is the pure Rayleigh case.
    const double los = std::sqrt(p * t.k_factor / (t.k_factor + 1.0));
    const double theta = rng.uniform(0.0, kTwoPi);
    const cplx diffuse =
        rng.complex_gaussian(p / (t.k_factor + 1.0));
    taps[bin] += cplx{los * std::cos(theta), los * std::sin(theta)} +
                 diffuse;
  }
  double total = 0.0;
  for (const cplx& t : taps) total += std::norm(t);
  OFDM_REQUIRE(total > 0.0, "tdl_realization: degenerate realization");
  const double norm = 1.0 / std::sqrt(total);
  for (cplx& t : taps) t *= norm;
  return taps;
}

std::unique_ptr<MultipathChannel> make_tdl_channel(
    const TdlProfile& profile, double sample_rate, std::uint64_t seed) {
  return std::make_unique<MultipathChannel>(
      tdl_realization(profile, sample_rate, seed));
}

}  // namespace ofdm::rf::channels
