// Rician K-factor fading line: a fixed line-of-sight component plus a
// Gaussian-Doppler Rayleigh diffuse component, power-normalized so
// E[|g|^2] = 1 for any K. K -> 0 degenerates to flat Rayleigh fading,
// K -> inf to a static phase rotation.
#pragma once

#include "rf/block.hpp"
#include "rf/channels/doppler.hpp"

namespace ofdm::rf::channels {

class RicianChannel : public Block {
 public:
  /// `k_factor`: linear LOS/diffuse power ratio (K). `doppler_spread_hz`
  /// is the two-sided Gaussian Doppler spread of the diffuse part;
  /// `los_doppler_hz` optionally shifts the LOS line (0 keeps it
  /// static, which is what the moment-based K estimators assume).
  RicianChannel(double k_factor, double doppler_spread_hz,
                double sample_rate, std::uint64_t seed = 3030,
                double los_doppler_hz = 0.0,
                std::size_t n_sinusoids = 32);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "rician"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// Instantaneous channel gain at the current stream position.
  cplx current_gain() const;

  double k_factor() const { return k_; }

 private:
  void init_process();

  double k_;
  double los_amp_;        // sqrt(K / (K + 1))
  double diffuse_power_;  // 1 / (K + 1)
  double los_step_;       // rad/sample of the LOS line
  double doppler_spread_hz_;
  double sample_rate_;
  std::uint64_t seed_;
  std::size_t n_sinusoids_;
  double los_phase_ = 0.0;   // evolving LOS phase (incl. initial draw)
  double los_phase0_ = 0.0;  // seed-derived initial phase
  GaussianDopplerProcess fading_;
};

}  // namespace ofdm::rf::channels
