#include "rf/channels/watterson.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf::channels {

WattersonChannel::WattersonChannel(std::vector<WattersonPath> paths,
                                   double doppler_spread_hz,
                                   double sample_rate,
                                   std::uint64_t seed,
                                   std::size_t n_sinusoids)
    : seed_(seed),
      n_sinusoids_(n_sinusoids),
      doppler_spread_hz_(doppler_spread_hz),
      sample_rate_(sample_rate) {
  OFDM_REQUIRE(!paths.empty(), "WattersonChannel: need at least one path");
  OFDM_REQUIRE(doppler_spread_hz >= 0.0 && sample_rate > 0.0,
               "WattersonChannel: invalid Doppler spread/sample rate");
  for (const WattersonPath& p : paths) {
    Path path;
    path.path = p;
    paths_.push_back(std::move(path));
    max_delay_ = std::max(max_delay_, p.delay_samples);
  }
  delay_line_.assign(max_delay_ + 1, cplx{0.0, 0.0});
  init_processes();
}

void WattersonChannel::init_processes() {
  Rng rng(seed_);
  // The ITU "frequency spread" is two-sided: 2 sigma of the Gaussian
  // spectrum.
  const double sigma_rad =
      kTwoPi * (doppler_spread_hz_ / 2.0) / sample_rate_;
  for (Path& p : paths_) {
    p.fading = GaussianDopplerProcess(p.path.power, sigma_rad,
                                      n_sinusoids_, rng);
  }
}

cvec WattersonChannel::current_gains() const {
  cvec g;
  g.reserve(paths_.size());
  for (const Path& p : paths_) g.push_back(p.fading.gain());
  return g;
}

double WattersonChannel::realized_spread_hz(std::size_t path) const {
  const double sigma_rad = paths_.at(path).fading.realized_sigma_rad();
  return 2.0 * sigma_rad * sample_rate_ / kTwoPi;
}

void WattersonChannel::process(std::span<const cplx> in, cvec& out) {
  const std::size_t line = delay_line_.size();
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    head_ = (head_ + line - 1) % line;
    delay_line_[head_] = in[i];
    cplx acc{0.0, 0.0};
    for (const Path& p : paths_) {
      const std::size_t idx = (head_ + p.path.delay_samples) % line;
      acc += delay_line_[idx] * p.fading.gain();
    }
    out[i] = acc;
    for (Path& p : paths_) p.fading.advance();
  }
}

void WattersonChannel::reset() {
  std::fill(delay_line_.begin(), delay_line_.end(), cplx{0.0, 0.0});
  head_ = 0;
  init_processes();
}

void WattersonChannel::save_state(StateWriter& w) const {
  w.u64(paths_.size());
  for (const Path& p : paths_) p.fading.save(w);
  w.vec_c(delay_line_);
  w.u64(head_);
}

void WattersonChannel::load_state(StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != paths_.size()) {
    throw StateError("WattersonChannel::load_state: snapshot has " +
                     std::to_string(n) + " paths, channel has " +
                     std::to_string(paths_.size()));
  }
  for (Path& p : paths_) p.fading.load(r);
  cvec line;
  r.vec_c(line);
  if (line.size() != delay_line_.size()) {
    throw StateError(
        "WattersonChannel::load_state: delay-line length mismatch");
  }
  delay_line_ = std::move(line);
  head_ = r.u64();
}

const WattersonPreset& watterson_preset(CcirCondition c) {
  // ITU-R F.1487 table 1 / CCIR 520-2 reference conditions.
  static const WattersonPreset kPresets[] = {
      {"ccir_good", 0.5, 0.1},
      {"ccir_moderate", 1.0, 0.5},
      {"ccir_poor", 2.0, 1.0},
      {"ccir_flutter", 0.5, 10.0},
  };
  return kPresets[static_cast<std::size_t>(c)];
}

std::unique_ptr<WattersonChannel> make_watterson(CcirCondition c,
                                                 double sample_rate,
                                                 std::uint64_t seed,
                                                 double doppler_scale) {
  OFDM_REQUIRE(doppler_scale > 0.0,
               "make_watterson: doppler_scale must be positive");
  const WattersonPreset& p = watterson_preset(c);
  const auto delay = static_cast<std::size_t>(
      std::llround(p.delay_ms * 1e-3 * sample_rate));
  return std::make_unique<WattersonChannel>(
      std::vector<WattersonPath>{{0, 0.5}, {delay, 0.5}},
      p.doppler_spread_hz * doppler_scale, sample_rate, seed);
}

}  // namespace ofdm::rf::channels
