#include "rf/channels/cfo.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf::channels {

OscillatorDrift::OscillatorDrift(double cfo_hz, double drift_hz_per_s,
                                 double sample_rate)
    : cfo_hz_(cfo_hz),
      drift_hz_per_s_(drift_hz_per_s),
      step0_(kTwoPi * cfo_hz / sample_rate),
      dstep_(kTwoPi * drift_hz_per_s / (sample_rate * sample_rate)),
      step_(step0_) {
  OFDM_REQUIRE(sample_rate > 0.0,
               "OscillatorDrift: sample rate must be positive");
}

void OscillatorDrift::process(std::span<const cplx> in, cvec& out) {
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
  for (cplx& v : out) {
    v *= cplx{std::cos(phase_), std::sin(phase_)};
    phase_ += step_;
    step_ += dstep_;
    // Per-sample wrap keeps the phase bounded without disturbing
    // chunking invariance (the wrap decision depends only on sample
    // index, never on buffer boundaries).
    if (phase_ >= kTwoPi) phase_ -= kTwoPi;
    if (phase_ < 0.0) phase_ += kTwoPi;
  }
}

void OscillatorDrift::reset() {
  phase_ = 0.0;
  step_ = step0_;
}

void OscillatorDrift::save_state(StateWriter& w) const {
  w.f64(phase_);
  w.f64(step_);
}

void OscillatorDrift::load_state(StateReader& r) {
  phase_ = r.f64();
  step_ = r.f64();
}

}  // namespace ofdm::rf::channels
