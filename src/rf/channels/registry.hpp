// Named channel-preset registry: the single lookup point that maps a
// deck token like "ccir_poor", "itu_veh_a", "sui_3", "rician_k10" or
// "cfo_drift" to a constructed rf::Block, plus the metadata table the
// campaign tool prints for --list-channels. All presets are seeded and
// bit-reproducible: same (name, sample_rate, seed) -> same output.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rf/block.hpp"

namespace ofdm::rf::channels {

/// Descriptive metadata for one registered preset.
struct PresetInfo {
  std::string name;         ///< deck token
  std::string family;       ///< "watterson" | "tdl" | "rician" | "cfo"
  std::string description;  ///< citable one-liner
  double doppler_hz = 0.0;  ///< nominal Doppler spread / max Doppler
  std::size_t paths = 0;    ///< number of propagation paths/taps
  double delay_spread_us = 0.0;  ///< maximum excess delay
  bool time_varying = false;     ///< gains evolve during a trial
};

/// Construction knobs shared by every preset.
struct MakeOptions {
  double sample_rate = 1e6;
  std::uint64_t seed = 505;
  /// Scales the nominal Doppler of fading presets; lets slow HF
  /// channels be accelerated for short-burst standards. Must be > 0.
  /// Static presets (tdl realizations, cfo) ignore it.
  double doppler_scale = 1.0;
};

/// All registered presets, in listing order.
const std::vector<PresetInfo>& presets();

/// nullptr when `name` is not a registered preset.
const PresetInfo* find_preset(const std::string& name);

/// Comma-separated registered names (for error messages / --list).
std::string preset_names();

/// Construct the preset's channel block; throws ofdm::ConfigError for
/// unknown names or invalid options.
std::unique_ptr<Block> make_preset(const std::string& name,
                                   const MakeOptions& opts);

}  // namespace ofdm::rf::channels
