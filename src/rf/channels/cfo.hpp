// Oscillator impairment block: a deterministic carrier frequency offset
// with optional linear drift, modeling the reference-clock error between
// the transmitter and receiver front-ends. Unlike rf::FrequencyShift the
// instantaneous frequency is time-varying, f(t) = cfo + drift * t, which
// is the dominant residual after coarse CFO acquisition on cheap XOs.
#pragma once

#include "rf/block.hpp"

namespace ofdm::rf::channels {

class OscillatorDrift : public Block {
 public:
  /// `cfo_hz`: initial carrier offset; `drift_hz_per_s`: linear ramp of
  /// the offset (aging/temperature), may be negative.
  OscillatorDrift(double cfo_hz, double drift_hz_per_s,
                  double sample_rate);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "osc-drift"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  double cfo_hz() const { return cfo_hz_; }
  double drift_hz_per_s() const { return drift_hz_per_s_; }

 private:
  double cfo_hz_;
  double drift_hz_per_s_;
  double step0_;   // rad/sample at t = 0
  double dstep_;   // rad/sample^2 (drift term)
  double phase_ = 0.0;
  double step_;    // evolving rad/sample
};

}  // namespace ofdm::rf::channels
