#include "rf/channels/rician.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf::channels {

RicianChannel::RicianChannel(double k_factor, double doppler_spread_hz,
                             double sample_rate, std::uint64_t seed,
                             double los_doppler_hz,
                             std::size_t n_sinusoids)
    : k_(k_factor),
      los_amp_(std::sqrt(k_factor / (k_factor + 1.0))),
      diffuse_power_(1.0 / (k_factor + 1.0)),
      los_step_(kTwoPi * los_doppler_hz / sample_rate),
      doppler_spread_hz_(doppler_spread_hz),
      sample_rate_(sample_rate),
      seed_(seed),
      n_sinusoids_(n_sinusoids) {
  OFDM_REQUIRE(k_factor >= 0.0,
               "RicianChannel: K factor must be non-negative");
  OFDM_REQUIRE(doppler_spread_hz >= 0.0 && sample_rate > 0.0,
               "RicianChannel: invalid Doppler spread/sample rate");
  init_process();
}

void RicianChannel::init_process() {
  Rng rng(seed_);
  const double sigma_rad =
      kTwoPi * (doppler_spread_hz_ / 2.0) / sample_rate_;
  fading_ = GaussianDopplerProcess(diffuse_power_, sigma_rad,
                                   n_sinusoids_, rng);
  los_phase0_ = rng.uniform(0.0, kTwoPi);
  los_phase_ = los_phase0_;
}

cplx RicianChannel::current_gain() const {
  const cplx los{los_amp_ * std::cos(los_phase_),
                 los_amp_ * std::sin(los_phase_)};
  return los + fading_.gain();
}

void RicianChannel::process(std::span<const cplx> in, cvec& out) {
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
  for (cplx& v : out) {
    v *= current_gain();
    los_phase_ += los_step_;
    fading_.advance();
  }
}

void RicianChannel::reset() { init_process(); }

void RicianChannel::save_state(StateWriter& w) const {
  w.f64(los_phase_);
  fading_.save(w);
}

void RicianChannel::load_state(StateReader& r) {
  los_phase_ = r.f64();
  fading_.load(r);
}

}  // namespace ofdm::rf::channels
