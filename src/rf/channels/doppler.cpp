#include "rf/channels/doppler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::rf::channels {

GaussianDopplerProcess::GaussianDopplerProcess(double power,
                                               double sigma_rad,
                                               std::size_t n_sinusoids,
                                               Rng& rng) {
  OFDM_REQUIRE(power >= 0.0,
               "GaussianDopplerProcess: power must be non-negative");
  OFDM_REQUIRE(sigma_rad >= 0.0,
               "GaussianDopplerProcess: sigma must be non-negative");
  OFDM_REQUIRE(n_sinusoids >= 8,
               "GaussianDopplerProcess: need >= 8 sinusoids for a "
               "Rayleigh-ish envelope");
  freq_.resize(n_sinusoids);
  phase_.resize(n_sinusoids);
  phase_q_.resize(n_sinusoids);
  for (std::size_t n = 0; n < n_sinusoids; ++n) {
    freq_[n] = sigma_rad * rng.gaussian();
    (void)rng.uniform();  // reserved draw, see header
    phase_[n] = rng.uniform(0.0, kTwoPi);
    phase_q_[n] = rng.uniform(0.0, kTwoPi);
  }
  // I and Q each need variance power/2; a cos with amplitude a carries
  // a^2/2, so a = sqrt(power / n).
  amp_ = std::sqrt(power / static_cast<double>(n_sinusoids));
}

cplx GaussianDopplerProcess::gain() const {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t n = 0; n < freq_.size(); ++n) {
    re += std::cos(phase_[n]);
    im += std::cos(phase_q_[n]);
  }
  return {re * amp_, im * amp_};
}

void GaussianDopplerProcess::advance() {
  const simd::Kernels& k = simd::kernels();
  k.rvec_add(phase_.data(), freq_.data(), freq_.size());
  k.rvec_add(phase_q_.data(), freq_.data(), freq_.size());
}

double GaussianDopplerProcess::realized_sigma_rad() const {
  double sum2 = 0.0;
  for (double f : freq_) sum2 += f * f;
  return std::sqrt(sum2 / static_cast<double>(freq_.size()));
}

void GaussianDopplerProcess::save(StateWriter& w) const {
  w.vec_r(phase_);
  w.vec_r(phase_q_);
}

void GaussianDopplerProcess::load(StateReader& r) {
  rvec phase;
  rvec phase_q;
  r.vec_r(phase);
  r.vec_r(phase_q);
  if (phase.size() != freq_.size() || phase_q.size() != freq_.size()) {
    throw StateError(
        "GaussianDopplerProcess::load: sinusoid count mismatch");
  }
  phase_ = std::move(phase);
  phase_q_ = std::move(phase_q);
}

}  // namespace ofdm::rf::channels
