// Standard tapped-delay-line profiles: the ITU-R M.1225 pedestrian and
// vehicular test environments and the Stanford University Interim
// (SUI-1..6) models used for 802.16 BER evaluation (cf. Ferdousi et
// al., arXiv:1312.6936). A profile is the published table of
// {excess delay, relative power, Rician K}; a *realization* draws one
// complex gain per tap from a seed, bins the taps onto the simulation
// sample grid, and normalizes to unit average power — ready to drive
// the SIMD tapped-delay-line kernel through rf::MultipathChannel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rf/channel.hpp"

namespace ofdm::rf::channels {

/// One published tap of a standard profile.
struct TdlTap {
  double delay_us = 0.0;   ///< excess delay, microseconds
  double power_db = 0.0;   ///< average power relative to strongest tap
  double k_factor = 0.0;   ///< linear Rician K (0 = Rayleigh)
};

struct TdlProfile {
  std::string name;   ///< deck token ("itu_ped_a", "sui_3", ...)
  std::string label;  ///< citable name ("ITU-R M.1225 Pedestrian A")
  std::vector<TdlTap> taps;
  double doppler_hz = 0.0;  ///< nominal max Doppler of the scenario
};

/// The built-in profile table (ITU Ped A/B, Veh A/B, SUI-1..6).
const std::vector<TdlProfile>& tdl_profiles();

/// nullptr when `name` is not a known profile.
const TdlProfile* find_tdl_profile(const std::string& name);

/// Lookup that throws ofdm::ConfigError naming the profile.
const TdlProfile& tdl_profile(const std::string& name);

/// Maximum excess delay of the profile, microseconds.
double tdl_delay_spread_us(const TdlProfile& profile);

/// Draw one static realization: tap k gets
///   sqrt(p_k) * (sqrt(K/(K+1)) e^{j theta} + sqrt(1/(K+1)) CN(0,1)),
/// placed at round(delay * sample_rate); gains landing in the same
/// sample bin add. The whole response is then normalized to unit
/// power, so SNR stays defined against the transmitted signal power.
cvec tdl_realization(const TdlProfile& profile, double sample_rate,
                     std::uint64_t seed);

/// The realization wrapped in the SIMD-kernel-backed FIR block.
std::unique_ptr<MultipathChannel> make_tdl_channel(
    const TdlProfile& profile, double sample_rate, std::uint64_t seed);

}  // namespace ofdm::rf::channels
