// Watterson HF ionospheric channel: a small number of discrete
// propagation paths, each an independent Rayleigh process with a
// Gaussian Doppler spectrum (Watterson et al., "Experimental
// confirmation of an HF channel model", IEEE Trans. Comm. 1970), plus
// the CCIR 520 / ITU-R F.1487 two-path reference conditions
// Good / Moderate / Poor / Flutter used by every HF modem standard.
#pragma once

#include <memory>
#include <vector>

#include "rf/block.hpp"
#include "rf/channels/doppler.hpp"

namespace ofdm::rf::channels {

/// One Watterson path: a delay and an average power; the path gain is
/// a Gaussian-Doppler Rayleigh process of that power.
struct WattersonPath {
  std::size_t delay_samples = 0;
  double power = 1.0;  ///< average path power (linear)
};

class WattersonChannel : public Block {
 public:
  /// `doppler_spread_hz` is the ITU-R F.1487 two-sided frequency
  /// spread (2 sigma of the Gaussian spectrum).
  WattersonChannel(std::vector<WattersonPath> paths,
                   double doppler_spread_hz, double sample_rate,
                   std::uint64_t seed = 2020,
                   std::size_t n_sinusoids = 32);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "watterson"; }

  /// Checkpoint the sinusoid phases and the delay line; frequencies
  /// are derived from the seed at construction.
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// Instantaneous path gains at the current stream position.
  cvec current_gains() const;

  std::size_t n_paths() const { return paths_.size(); }
  double doppler_spread_hz() const { return doppler_spread_hz_; }

  /// Doppler width (Hz, as a spread = 2 sigma) the finite
  /// sum-of-sinusoids realization of `path` actually carries.
  double realized_spread_hz(std::size_t path) const;

 private:
  struct Path {
    WattersonPath path;
    GaussianDopplerProcess fading;
  };

  void init_processes();

  std::vector<Path> paths_;
  std::size_t max_delay_ = 0;
  cvec delay_line_;
  std::size_t head_ = 0;
  std::uint64_t seed_;
  std::size_t n_sinusoids_;
  double doppler_spread_hz_;
  double sample_rate_;
};

/// CCIR 520 / ITU-R F.1487 reference ionospheric conditions: two
/// equal-power Rayleigh paths separated by `delay_ms`, both with
/// Gaussian Doppler spread `doppler_spread_hz`.
enum class CcirCondition { kGood, kModerate, kPoor, kFlutter };

struct WattersonPreset {
  const char* name;          ///< deck token ("ccir_poor", ...)
  double delay_ms;           ///< differential path delay
  double doppler_spread_hz;  ///< two-sided frequency spread
};

const WattersonPreset& watterson_preset(CcirCondition c);

/// Build the two-path reference channel at `sample_rate`, total
/// average power normalized to 1 (0.5 per path).
std::unique_ptr<WattersonChannel> make_watterson(
    CcirCondition c, double sample_rate, std::uint64_t seed = 2020,
    double doppler_scale = 1.0);

}  // namespace ofdm::rf::channels
