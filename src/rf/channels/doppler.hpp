// Sum-of-sinusoids Rayleigh fading process with a Gaussian Doppler
// spectrum — the building block of the Watterson HF channel model and
// the diffuse part of the Rician lines in this library.
//
// I and Q branches are independent sums of `n_sinusoids` equal-
// amplitude sinusoids whose frequencies are drawn from N(0, sigma_rad):
// the density the frequencies are drawn from IS the resulting Doppler
// power spectrum, so the realized spectrum approximates the Gaussian
// shape of ITU-R F.1487 without any filtering state. Everything is
// derived from the Rng handed to the constructor, so a process is a
// pure function of its seed: reproducible, snapshot-able (only the
// phases evolve while streaming) and chunking-invariant by
// construction.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ofdm {
class StateWriter;
class StateReader;
}  // namespace ofdm

namespace ofdm::rf::channels {

class GaussianDopplerProcess {
 public:
  GaussianDopplerProcess() = default;

  /// `power` = E[|g|^2] of the process, `sigma_rad` the Gaussian
  /// Doppler standard deviation in rad/sample. Frequencies and initial
  /// phases are drawn from `rng` (4 draws per sinusoid, in order:
  /// frequency, unused spare, phase_i, phase_q — the spare keeps the
  /// draw count per sinusoid stable if the model grows a term).
  GaussianDopplerProcess(double power, double sigma_rad,
                         std::size_t n_sinusoids, Rng& rng);

  /// Complex gain at the current stream position.
  cplx gain() const;

  /// Advance one sample: every sinusoid phase steps by its frequency.
  void advance();

  /// Sample standard deviation (rad/sample) of the realized sinusoid
  /// frequencies — the Doppler width this finite realization actually
  /// carries (converges to sigma_rad as n_sinusoids grows).
  double realized_sigma_rad() const;

  /// Checkpoint only the evolving state (the phases); frequencies are
  /// re-derived from the seed at construction.
  void save(StateWriter& w) const;
  void load(StateReader& r);

 private:
  rvec freq_;     // rad/sample per sinusoid
  rvec phase_;    // I branch
  rvec phase_q_;  // Q branch
  double amp_ = 0.0;  // sqrt(power / n_sinusoids) per branch
};

}  // namespace ofdm::rf::channels
