// Transmission channel models: AWGN, tapped-delay-line multipath (radio)
// and a twisted-pair-like lowpass (the ADSL example's loop).
#pragma once

#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

/// Additive white Gaussian noise at a fixed noise power (total complex
/// variance). Use snr_to_noise_power() to derive it from a signal power.
class AwgnChannel : public Block {
 public:
  AwgnChannel(double noise_power, std::uint64_t seed = 303);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "awgn"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  double noise_power_;
  Rng rng_;
  std::uint64_t seed_;
  cvec noise_;  // per-chunk batch of draws; grows once
};

/// Noise power for a target SNR (dB) given the signal power.
double snr_to_noise_power(double signal_power, double snr_db);

/// Static multipath: a complex FIR whose taps are the channel impulse
/// response. Factories below build common profiles.
class MultipathChannel : public Block {
 public:
  explicit MultipathChannel(cvec taps);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "multipath"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  const cvec& taps() const { return taps_; }

 private:
  cvec taps_;
  cvec history_;  // last `taps` inputs, chronological (oldest first)
  cvec window_;   // scratch: [taps-1 history | chunk]; grows once
};

/// Exponentially decaying power-delay profile with Rayleigh taps,
/// normalized to unit average power. `rms_delay_samples` sets the decay;
/// `n_taps` the length.
cvec exponential_pdp_taps(double rms_delay_samples, std::size_t n_taps,
                          std::uint64_t seed);

/// A crude twisted-pair loop: single-pole lowpass with the given -3 dB
/// frequency plus a flat attenuation — enough frequency selectivity to
/// drive the ADSL bit-loading example.
cvec twisted_pair_taps(double cutoff_norm, double attenuation_db,
                       std::size_t n_taps = 41);

}  // namespace ofdm::rf
