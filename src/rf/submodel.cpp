#include "rf/submodel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf {

Submodel::Submodel(core::OfdmParams params, std::size_t gap_samples,
                   std::uint64_t payload_seed)
    : tx_(std::move(params)),
      gap_samples_(gap_samples),
      rng_(payload_seed),
      payload_seed_(payload_seed) {}

void Submodel::set_payload_generator(PayloadGenerator gen) {
  generator_ = std::move(gen);
}

void Submodel::configure(core::OfdmParams params) {
  tx_.configure(std::move(params));
  // Flush *all* streaming state, not just the buffered tail: the frame
  // counter restarts and the payload PRNG is reseeded, so the stream
  // from here on is exactly what a freshly built Submodel of the new
  // standard would emit.
  buffer_.clear();
  read_pos_ = 0;
  frames_ = 0;
  rng_ = Rng(payload_seed_);
}

void Submodel::refill() {
  const std::size_t n_bits = tx_.recommended_payload_bits();
  const bitvec payload =
      generator_ ? generator_(n_bits) : rng_.bits(n_bits);
  OFDM_REQUIRE(payload.size() == n_bits,
               "Submodel: payload generator returned wrong bit count");
  auto burst = tx_.modulate(payload);
  buffer_ = std::move(burst.samples);
  buffer_.insert(buffer_.end(), gap_samples_, cplx{0.0, 0.0});
  read_pos_ = 0;
  ++frames_;
}

void Submodel::pull(std::size_t n, cvec& out) {
  out.clear();
  out.reserve(n);
  while (out.size() < n) {
    if (read_pos_ >= buffer_.size()) refill();
    const std::size_t take =
        std::min(n - out.size(), buffer_.size() - read_pos_);
    out.insert(out.end(),
               buffer_.begin() + static_cast<std::ptrdiff_t>(read_pos_),
               buffer_.begin() +
                   static_cast<std::ptrdiff_t>(read_pos_ + take));
    read_pos_ += take;
  }
}

void Submodel::reset() {
  buffer_.clear();
  read_pos_ = 0;
  frames_ = 0;
  rng_ = Rng(payload_seed_);
}

std::string Submodel::name() const {
  return "submodel[" + core::standard_name(tx_.params().standard) + "]";
}

void Submodel::save_state(StateWriter& w) const {
  // Record the standard so a restore into a differently configured
  // Submodel fails loudly instead of resuming the wrong waveform.
  w.str(core::standard_name(tx_.params().standard));
  rng_.save(w);
  w.u64(frames_);
  w.u64(read_pos_);
  w.vec_c(buffer_);
}

void Submodel::load_state(StateReader& r) {
  const std::string standard = r.str();
  const std::string mine = core::standard_name(tx_.params().standard);
  if (standard != mine) {
    throw StateError("Submodel::load_state: snapshot was taken from '" +
                     standard + "' but this submodel is configured for '" +
                     mine + "'");
  }
  rng_.load(r);
  frames_ = r.u64();
  read_pos_ = r.u64();
  r.vec_c(buffer_);
}

ToneSource::ToneSource(double freq_hz, double sample_rate, double amplitude)
    : phase_step_(kTwoPi * freq_hz / sample_rate), amplitude_(amplitude) {
  OFDM_REQUIRE(sample_rate > 0.0, "ToneSource: sample rate must be > 0");
}

void ToneSource::pull(std::size_t n, cvec& out) {
  out.resize(n);
  for (cplx& v : out) {
    v = amplitude_ * cplx{std::cos(phase_), std::sin(phase_)};
    phase_ = std::fmod(phase_ + phase_step_, kTwoPi);
  }
}

void ToneSource::reset() { phase_ = 0.0; }

void ToneSource::save_state(StateWriter& w) const { w.f64(phase_); }

void ToneSource::load_state(StateReader& r) { phase_ = r.f64(); }

}  // namespace ofdm::rf
