#include "rf/block.hpp"

#include "obs/trace.hpp"
#include "rf/guard.hpp"

namespace ofdm::rf {

// Default shims: each overload funnels into the other, so a subclass
// only has to implement one (overriding neither recurses forever).

void Block::process(std::span<const cplx> in, cvec& out) {
  out = process(in);
}

cvec Block::process(std::span<const cplx> in) {
  cvec out;
  process(in, out);
  return out;
}

void Source::pull(std::size_t n, cvec& out) { out = pull(n); }

cvec Source::pull(std::size_t n) {
  cvec out;
  pull(n, out);
  return out;
}

void Block::process_observed(std::span<const cplx> in, cvec& out) {
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = tracer.enabled();
  if (probe_ == nullptr && !tracing) {
    process(in, out);
  } else {
    // The label is cached on first observed use (one allocation, outside
    // the steady state) so span names stay valid for the trace's
    // lifetime.
    if (tracing && trace_label_.empty()) trace_label_ = name();
    const std::uint64_t t0 = obs::Tracer::now_ns();
    process(in, out);
    const std::uint64_t dt = obs::Tracer::now_ns() - t0;
    if (probe_ != nullptr) probe_->record(in, out, dt);
    if (tracing) tracer.record(trace_label_.c_str(), t0, dt);
  }
  // The guard sweeps after the counters are folded in, so a Throw still
  // leaves the probes/trace describing the faulting call.
  if (guard_ != nullptr) guard_->scan(out);
}

void Source::pull_observed(std::size_t n, cvec& out) {
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = tracer.enabled();
  if (probe_ == nullptr && !tracing) {
    pull(n, out);
  } else {
    if (tracing && trace_label_.empty()) trace_label_ = name();
    const std::uint64_t t0 = obs::Tracer::now_ns();
    pull(n, out);
    const std::uint64_t dt = obs::Tracer::now_ns() - t0;
    if (probe_ != nullptr) probe_->record({}, out, dt);
    if (tracing) tracer.record(trace_label_.c_str(), t0, dt);
  }
  if (guard_ != nullptr) guard_->scan(out);
}

}  // namespace ofdm::rf
