#include "rf/block.hpp"

namespace ofdm::rf {

// Default shims: each overload funnels into the other, so a subclass
// only has to implement one (overriding neither recurses forever).

void Block::process(std::span<const cplx> in, cvec& out) {
  out = process(in);
}

cvec Block::process(std::span<const cplx> in) {
  cvec out;
  process(in, out);
  return out;
}

void Source::pull(std::size_t n, cvec& out) { out = pull(n); }

cvec Source::pull(std::size_t n) {
  cvec out;
  pull(n, out);
  return out;
}

}  // namespace ofdm::rf
