#include "rf/fault.hpp"

#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf {

FlakyBlock::FlakyBlock(std::unique_ptr<Block> inner,
                       std::size_t every_n_chunks, Fault fault,
                       std::uint64_t seed)
    : inner_(std::move(inner)),
      every_(every_n_chunks),
      fault_(fault),
      rng_(seed),
      seed_(seed) {
  OFDM_REQUIRE(inner_ != nullptr, "FlakyBlock: null inner block");
}

void FlakyBlock::process(std::span<const cplx> in, cvec& out) {
  inner_->process(in, out);
  ++chunks_;
  if (every_ > 0 && chunks_ % every_ == 0 && !out.empty()) {
    const std::size_t i = rng_.uniform_int(out.size());
    double bad = 0.0;
    switch (fault_) {
      case Fault::kNaN:
        bad = std::numeric_limits<double>::quiet_NaN();
        break;
      case Fault::kInf:
        bad = std::numeric_limits<double>::infinity();
        break;
      case Fault::kHuge:
        bad = 1e30;
        break;
    }
    out[i] = cplx{bad, out[i].imag()};
    last_offset_ = samples_out_ + i;
    ++faults_;
  }
  samples_out_ += out.size();
}

void FlakyBlock::reset() {
  inner_->reset();
  rng_ = Rng(seed_);
  chunks_ = 0;
  samples_out_ = 0;
  faults_ = 0;
  last_offset_ = 0;
}

std::string FlakyBlock::name() const {
  return "flaky[" + inner_->name() + "]";
}

void FlakyBlock::save_state(StateWriter& w) const {
  rng_.save(w);
  w.u64(chunks_);
  w.u64(samples_out_);
  w.u64(faults_);
  w.u64(last_offset_);
  w.begin_node(inner_->name());
  inner_->save_state(w);
  w.end_node();
}

void FlakyBlock::load_state(StateReader& r) {
  rng_.load(r);
  chunks_ = r.u64();
  samples_out_ = r.u64();
  faults_ = r.u64();
  last_offset_ = r.u64();
  r.enter_node(inner_->name());
  inner_->load_state(r);
  r.exit_node();
}

BurstNoise::BurstNoise(std::size_t period, std::size_t burst_len,
                       double power, std::uint64_t seed)
    : period_(period),
      burst_len_(burst_len),
      power_(power),
      rng_(seed),
      seed_(seed) {
  OFDM_REQUIRE(period > 0, "BurstNoise: period must be positive");
  OFDM_REQUIRE(burst_len <= period,
               "BurstNoise: burst cannot be longer than the period");
  OFDM_REQUIRE(power >= 0.0, "BurstNoise: power must be non-negative");
}

void BurstNoise::process(std::span<const cplx> in, cvec& out) {
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
  for (cplx& v : out) {
    const std::size_t phase = pos_ % period_;
    if (phase < burst_len_) {
      if (phase == 0) ++bursts_;
      v += rng_.complex_gaussian(power_);
    }
    ++pos_;
  }
}

void BurstNoise::reset() {
  rng_ = Rng(seed_);
  pos_ = 0;
  bursts_ = 0;
}

void BurstNoise::save_state(StateWriter& w) const {
  rng_.save(w);
  w.u64(pos_);
  w.u64(bursts_);
}

void BurstNoise::load_state(StateReader& r) {
  rng_.load(r);
  pos_ = r.u64();
  bursts_ = r.u64();
}

SampleDropper::SampleDropper(std::size_t drop_every, bool zero_fill)
    : drop_every_(drop_every), zero_fill_(zero_fill) {
  OFDM_REQUIRE(drop_every >= 2,
               "SampleDropper: drop_every must be >= 2 (1 would drop "
               "the whole stream)");
}

void SampleDropper::process(std::span<const cplx> in, cvec& out) {
  // The output may be shorter than the input, so build into a shrunken
  // vector rather than editing in place; `out` must not alias `in`.
  out.clear();
  out.reserve(in.size());
  for (const cplx& v : in) {
    ++pos_;
    if (pos_ % drop_every_ == 0) {
      ++dropped_;
      if (zero_fill_) out.push_back(cplx{0.0, 0.0});
      continue;
    }
    out.push_back(v);
  }
}

void SampleDropper::reset() {
  pos_ = 0;
  dropped_ = 0;
}

void SampleDropper::save_state(StateWriter& w) const {
  w.u64(pos_);
  w.u64(dropped_);
}

void SampleDropper::load_state(StateReader& r) {
  pos_ = r.u64();
  dropped_ = r.u64();
}

StallingSource::StallingSource(std::unique_ptr<Source> inner,
                               std::size_t every_n_pulls,
                               std::chrono::microseconds stall)
    : inner_(std::move(inner)), every_(every_n_pulls), stall_(stall) {
  OFDM_REQUIRE(inner_ != nullptr, "StallingSource: null inner source");
}

void StallingSource::pull(std::size_t n, cvec& out) {
  ++pulls_;
  if (every_ > 0 && pulls_ % every_ == 0) {
    ++stalls_;
    std::this_thread::sleep_for(stall_);
  }
  inner_->pull(n, out);
}

void StallingSource::reset() {
  inner_->reset();
  pulls_ = 0;
  stalls_ = 0;
}

std::string StallingSource::name() const {
  return "stalling[" + inner_->name() + "]";
}

void StallingSource::save_state(StateWriter& w) const {
  w.u64(pulls_);
  w.u64(stalls_);
  w.begin_node(inner_->name());
  inner_->save_state(w);
  w.end_node();
}

void StallingSource::load_state(StateReader& r) {
  pulls_ = r.u64();
  stalls_ = r.u64();
  r.enter_node(inner_->name());
  inner_->load_state(r);
  r.exit_node();
}

}  // namespace ofdm::rf
