// The Submodel wrapper — the paper's key integration artifact.
//
// "The model was wrapped into an APLAC® Submodel, and in the RF system
//  simulation it appears as a signal source block that can be used in
//  traditional RF system simulations."
//
// Submodel wraps a configured Mother Model (core::Transmitter) so it
// presents the rf::Source interface: the RF designer pulls baseband
// samples and the wrapper keeps generating frames of (pseudo-random or
// user-provided) payload, with a configurable inter-frame idle gap.
#pragma once

#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "core/transmitter.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

class Submodel : public Source {
 public:
  /// Wrap a transmitter configuration. `gap_samples` of silence separate
  /// consecutive frames; payload bits default to a seeded PRNG stream.
  explicit Submodel(core::OfdmParams params, std::size_t gap_samples = 0,
                    std::uint64_t payload_seed = 1);

  /// Replace the payload generator (e.g. with recorded traffic).
  using PayloadGenerator = std::function<bitvec(std::size_t n_bits)>;
  void set_payload_generator(PayloadGenerator gen);

  /// Reconfigure to a different standard *in place* — the Mother Model
  /// reconfiguration exposed at the RF-simulator level. All streaming
  /// state is flushed (buffered samples from the previous standard, the
  /// frame/gap position, the frame counter) and the payload PRNG is
  /// reseeded, so the stream continues exactly as a freshly constructed
  /// Submodel of the new standard would start.
  void configure(core::OfdmParams params);

  const core::OfdmParams& params() const { return tx_.params(); }
  core::Transmitter& transmitter() { return tx_; }

  /// Total frames generated so far.
  std::size_t frames_generated() const { return frames_; }

  using Source::pull;
  void pull(std::size_t n, cvec& out) override;
  void reset() override;
  std::string name() const override;

  /// Checkpoint/restore: captures the payload PRNG, the buffered frame
  /// tail and read position, and the frame counter. A custom payload
  /// generator's own state is NOT captured — with one attached, resume
  /// is bit-identical only if the generator is itself reproducible.
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  void refill();

  core::Transmitter tx_;
  std::size_t gap_samples_;
  Rng rng_;
  std::uint64_t payload_seed_;
  PayloadGenerator generator_;
  cvec buffer_;
  std::size_t read_pos_ = 0;
  std::size_t frames_ = 0;
};

/// A plain complex exponential source (test/calibration tone).
class ToneSource : public Source {
 public:
  ToneSource(double freq_hz, double sample_rate, double amplitude = 1.0);

  using Source::pull;
  void pull(std::size_t n, cvec& out) override;
  void reset() override;
  std::string name() const override { return "tone"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  double phase_step_;
  double amplitude_;
  double phase_ = 0.0;
};

}  // namespace ofdm::rf
