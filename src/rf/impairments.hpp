// Quadrature impairments: IQ gain/phase imbalance, DC offset (LO
// leakage) and a phase-noise block that rotates the signal by a free-
// running noisy LO.
#pragma once

#include "rf/block.hpp"
#include "rf/frontend.hpp"

namespace ofdm::rf {

/// IQ imbalance: out = μ x + ν conj(x) with
/// μ = (1 + g e^{jφ})/2, ν = (1 - g e^{jφ})/2 for gain ratio g and
/// phase error φ — the standard image-leakage model.
class IqImbalance : public Block {
 public:
  IqImbalance(double gain_error_db, double phase_error_deg);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  std::string name() const override { return "iq-imbalance"; }

  /// Image rejection ratio implied by the parameters, dB.
  double image_rejection_db() const;

 private:
  cplx mu_;
  cplx nu_;
};

/// Additive DC offset (carrier leakage at baseband).
class DcOffset : public Block {
 public:
  explicit DcOffset(cplx offset);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  std::string name() const override { return "dc-offset"; }

 private:
  cplx offset_;
};

/// Multiplicative phase noise: rotates the stream by a zero-frequency
/// oscillator carrying only the Wiener phase-noise process.
class PhaseNoise : public Block {
 public:
  PhaseNoise(double linewidth_hz, double sample_rate,
             std::uint64_t seed = 101);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "phase-noise"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  Oscillator lo_;
};

}  // namespace ofdm::rf
