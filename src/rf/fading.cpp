#include "rf/fading.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::rf {

FadingChannel::FadingChannel(std::vector<FadingTap> taps,
                             double doppler_hz, double sample_rate,
                             std::uint64_t seed, std::size_t n_sinusoids)
    : seed_(seed), n_sinusoids_(n_sinusoids),
      doppler_rad_(kTwoPi * doppler_hz / sample_rate) {
  OFDM_REQUIRE(!taps.empty(), "FadingChannel: need at least one tap");
  OFDM_REQUIRE(doppler_hz >= 0.0 && sample_rate > 0.0,
               "FadingChannel: invalid Doppler/sample rate");
  OFDM_REQUIRE(n_sinusoids >= 4,
               "FadingChannel: need >= 4 sinusoids for a Rayleigh-ish "
               "envelope");
  for (const FadingTap& t : taps) {
    TapState state;
    state.tap = t;
    taps_.push_back(std::move(state));
    max_delay_ = std::max(max_delay_, t.delay_samples);
  }
  delay_line_.assign(max_delay_ + 1, cplx{0.0, 0.0});
  init_states();
}

void FadingChannel::init_states() {
  Rng rng(seed_);
  for (TapState& t : taps_) {
    t.doppler_freq.resize(n_sinusoids_);
    t.phase.resize(n_sinusoids_);
    t.phase_q.resize(n_sinusoids_);
    for (std::size_t n = 0; n < n_sinusoids_; ++n) {
      // Jakes: arrival angles spread over the circle with random
      // offsets; Doppler shift = fd * cos(angle).
      const double alpha = (kTwoPi * (static_cast<double>(n) + 0.5)) /
                               static_cast<double>(n_sinusoids_) +
                           rng.uniform(-0.1, 0.1);
      t.doppler_freq[n] = doppler_rad_ * std::cos(alpha);
      t.phase[n] = rng.uniform(0.0, kTwoPi);
      t.phase_q[n] = rng.uniform(0.0, kTwoPi);
    }
  }
}

cplx FadingChannel::tap_gain(const TapState& t) const {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t n = 0; n < n_sinusoids_; ++n) {
    re += std::cos(t.phase[n]);
    im += std::cos(t.phase_q[n]);
  }
  const double norm =
      std::sqrt(t.tap.power / static_cast<double>(n_sinusoids_));
  return {re * norm, im * norm};
}

void FadingChannel::advance() {
  const simd::Kernels& k = simd::kernels();
  for (TapState& t : taps_) {
    k.rvec_add(t.phase.data(), t.doppler_freq.data(), n_sinusoids_);
    k.rvec_add(t.phase_q.data(), t.doppler_freq.data(), n_sinusoids_);
  }
}

cvec FadingChannel::current_gains() const {
  cvec g;
  g.reserve(taps_.size());
  for (const TapState& t : taps_) g.push_back(tap_gain(t));
  return g;
}

void FadingChannel::process(std::span<const cplx> in, cvec& out) {
  const std::size_t line = delay_line_.size();
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    head_ = (head_ + line - 1) % line;
    delay_line_[head_] = in[i];
    cplx acc{0.0, 0.0};
    for (const TapState& t : taps_) {
      const std::size_t idx = (head_ + t.tap.delay_samples) % line;
      acc += delay_line_[idx] * tap_gain(t);
    }
    out[i] = acc;
    advance();
  }
}

void FadingChannel::reset() {
  std::fill(delay_line_.begin(), delay_line_.end(), cplx{0.0, 0.0});
  head_ = 0;
  init_states();
}

void FadingChannel::save_state(StateWriter& w) const {
  w.u64(taps_.size());
  for (const TapState& t : taps_) {
    w.vec_r(t.phase);
    w.vec_r(t.phase_q);
  }
  w.vec_c(delay_line_);
  w.u64(head_);
}

void FadingChannel::load_state(StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != taps_.size()) {
    throw StateError("FadingChannel::load_state: snapshot has " +
                     std::to_string(n) + " taps, channel has " +
                     std::to_string(taps_.size()));
  }
  for (TapState& t : taps_) {
    rvec phase;
    rvec phase_q;
    r.vec_r(phase);
    r.vec_r(phase_q);
    if (phase.size() != n_sinusoids_ || phase_q.size() != n_sinusoids_) {
      throw StateError("FadingChannel::load_state: sinusoid count "
                       "mismatch");
    }
    t.phase = std::move(phase);
    t.phase_q = std::move(phase_q);
  }
  cvec line;
  r.vec_c(line);
  if (line.size() != delay_line_.size()) {
    throw StateError("FadingChannel::load_state: delay-line length "
                     "mismatch");
  }
  delay_line_ = std::move(line);
  head_ = r.u64();
}

ImpulseNoise::ImpulseNoise(double burst_rate, double mean_len,
                           double impulse_power, std::uint64_t seed)
    : burst_rate_(burst_rate),
      continue_prob_(mean_len > 1.0 ? 1.0 - 1.0 / mean_len : 0.0),
      impulse_power_(impulse_power),
      rng_(seed),
      seed_(seed) {
  OFDM_REQUIRE(burst_rate >= 0.0 && burst_rate <= 1.0,
               "ImpulseNoise: burst rate must be a probability");
  OFDM_REQUIRE(impulse_power >= 0.0,
               "ImpulseNoise: impulse power must be non-negative");
}

void ImpulseNoise::process(std::span<const cplx> in, cvec& out) {
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
  for (cplx& v : out) {
    if (remaining_ == 0 && rng_.uniform() < burst_rate_) {
      ++bursts_;
      remaining_ = 1;
      // Geometric burst length.
      while (rng_.uniform() < continue_prob_) ++remaining_;
    }
    if (remaining_ > 0) {
      v += rng_.complex_gaussian(impulse_power_);
      --remaining_;
    }
  }
}

void ImpulseNoise::reset() {
  rng_ = Rng(seed_);
  remaining_ = 0;
  bursts_ = 0;
}

void ImpulseNoise::save_state(StateWriter& w) const {
  rng_.save(w);
  w.u64(remaining_);
  w.u64(bursts_);
}

void ImpulseNoise::load_state(StateReader& r) {
  rng_.load(r);
  remaining_ = r.u64();
  bursts_ = r.u64();
}

}  // namespace ofdm::rf
