// NumericGuard — fault containment for the streaming RF graph.
//
// A single NaN escaping a misconfigured PA or channel block silently
// poisons every downstream measurement of a long co-simulation. The
// guard closes that hole: attached to a block (the same way a BlockProbe
// is), it sweeps every output chunk at the chunk boundary and applies a
// per-graph policy:
//
//   Report — count NaN/Inf/denormal/saturated samples, touch nothing.
//   Throw  — raise ofdm::StreamError at the first non-finite sample,
//            carrying the block name, its graph position, and the
//            absolute offset of the bad sample in the block's output
//            stream. The fault is pinned to the block that produced it,
//            not to whatever downstream sink finally chokes.
//   Zero   — graceful degradation: non-finite samples are replaced by
//            zero (and denormals flushed) so downstream blocks keep
//            seeing healthy numbers; every repair is counted.
//   Clamp  — as Zero, but ±Inf components are clamped to the saturation
//            threshold instead of zeroed, and finite samples beyond the
//            threshold are rescaled onto it (a numerical limiter).
//
// Cost model: detached, the observed call path gains one pointer test
// and nothing else. Attached, a clean chunk costs one allocation-free
// pass (obs::first_nonfinite — the same scan machinery the probes use);
// the repair/throw paths only run on actual faults. Saturation and
// denormal checks are opt-in because they cost a second pass.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>

#include "common/types.hpp"

namespace ofdm::rf {

enum class GuardPolicy { kReport, kThrow, kZero, kClamp };

struct GuardConfig {
  GuardPolicy policy = GuardPolicy::kReport;
  /// |sample| above which an output sample counts as saturated; 0
  /// disables the saturation check. Must be > 0 for Clamp.
  double saturation_threshold = 0.0;
  /// Also count (and under Zero/Clamp flush) denormal components.
  bool check_denormals = false;
};

/// Per-block guard state: the health counters plus the identity the
/// Throw policy reports. Addresses are stable for the lifetime of the
/// owning GuardSet.
class NumericGuard {
 public:
  NumericGuard(std::string name, std::size_t position,
               const GuardConfig* cfg)
      : name_(std::move(name)), position_(position), cfg_(cfg) {}

  /// Sweep one output chunk at a chunk boundary, applying the policy.
  /// May modify `out` (Zero/Clamp) or throw ofdm::StreamError (Throw).
  void scan(cvec& out);

  const std::string& name() const { return name_; }
  std::size_t position() const { return position_; }

  /// Absolute output-stream offset of the next sample this guard will
  /// see (== total samples swept so far).
  std::uint64_t samples_seen() const { return samples_seen_; }

  std::uint64_t nan_samples() const { return nan_; }
  std::uint64_t inf_samples() const { return inf_; }
  std::uint64_t nonfinite_samples() const { return nan_ + inf_; }
  std::uint64_t denormal_samples() const { return denormal_; }
  std::uint64_t saturated_samples() const { return saturated_; }
  /// Samples modified by the Zero/Clamp policies.
  std::uint64_t repairs() const { return repairs_; }
  /// Everything the guard has flagged, repaired or not.
  std::uint64_t faults() const {
    return nan_ + inf_ + denormal_ + saturated_;
  }

  void reset() {
    samples_seen_ = nan_ = inf_ = denormal_ = saturated_ = repairs_ = 0;
  }

 private:
  [[noreturn]] void raise(std::uint64_t offset) const;
  void slow_scan(cvec& out, std::size_t from, std::uint64_t base);

  std::string name_;
  std::size_t position_;
  const GuardConfig* cfg_;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t inf_ = 0;
  std::uint64_t denormal_ = 0;
  std::uint64_t saturated_ = 0;
  std::uint64_t repairs_ = 0;
};

/// Owns the guards for one protected graph, mirroring obs::ProbeSet: a
/// deque keeps guard addresses stable as blocks register, so rf::Block
/// holds a raw pointer. The set must outlive the guarded blocks (or the
/// blocks must detach first).
class GuardSet {
 public:
  explicit GuardSet(GuardConfig cfg = {});

  GuardSet(const GuardSet&) = delete;
  GuardSet& operator=(const GuardSet&) = delete;

  /// Register a guard under `name`; its position is the attach order.
  /// Duplicate names get a #k suffix, as probes do.
  NumericGuard& add(std::string name);

  const GuardConfig& config() const { return cfg_; }
  std::size_t size() const { return guards_.size(); }
  const NumericGuard& at(std::size_t i) const { return guards_.at(i); }
  NumericGuard& at(std::size_t i) { return guards_.at(i); }

  /// Guard by exact (possibly suffixed) name; nullptr when absent.
  const NumericGuard* find(const std::string& name) const;

  /// Zero every guard's counters (registrations stay).
  void reset();

  std::uint64_t total_faults() const;
  std::uint64_t total_repairs() const;

 private:
  GuardConfig cfg_;
  std::deque<NumericGuard> guards_;
};

}  // namespace ofdm::rf
