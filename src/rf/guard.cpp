#include "rf/guard.hpp"

#include <cfloat>
#include <cmath>

#include "common/error.hpp"
#include "obs/scan.hpp"

namespace ofdm::rf {

namespace {

bool is_denormal(double v) {
  return v != 0.0 && std::fabs(v) < DBL_MIN;
}

/// Clamp policy repair of one non-finite component: NaN carries no
/// usable information and becomes 0; ±Inf is a blown-up but directed
/// value and lands on the saturation rail.
double clamp_component(double v, double rail) {
  if (std::isnan(v)) return 0.0;
  if (std::isinf(v)) return v > 0.0 ? rail : -rail;
  return v;
}

}  // namespace

void NumericGuard::raise(std::uint64_t offset) const {
  throw StreamError(
      name_, position_, offset,
      "numeric guard: non-finite sample in output of block '" + name_ +
          "' (graph position " + std::to_string(position_) +
          ") at absolute sample offset " + std::to_string(offset));
}

void NumericGuard::scan(cvec& out) {
  const std::uint64_t base = samples_seen_;
  samples_seen_ += out.size();
  // Fast path: one clean pass (shared with the obs layer). Only a chunk
  // that actually contains a non-finite sample — or a config that asks
  // for the saturation/denormal sweeps — pays for the detailed loop.
  if (!cfg_->check_denormals && cfg_->saturation_threshold <= 0.0) {
    const std::size_t bad = obs::first_nonfinite(out);
    if (bad == SIZE_MAX) return;
    slow_scan(out, bad, base);
    return;
  }
  slow_scan(out, 0, base);
}

void NumericGuard::slow_scan(cvec& out, std::size_t from,
                             std::uint64_t base) {
  const GuardPolicy policy = cfg_->policy;
  const double sat = cfg_->saturation_threshold;
  const double sat2 = sat * sat;
  for (std::size_t i = from; i < out.size(); ++i) {
    cplx& s = out[i];
    double re = s.real();
    double im = s.imag();
    if (!std::isfinite(re) || !std::isfinite(im)) {
      if (std::isnan(re) || std::isnan(im)) {
        ++nan_;
      } else {
        ++inf_;
      }
      switch (policy) {
        case GuardPolicy::kThrow:
          raise(base + i);
        case GuardPolicy::kZero:
          s = cplx{0.0, 0.0};
          ++repairs_;
          break;
        case GuardPolicy::kClamp:
          s = cplx{clamp_component(re, sat), clamp_component(im, sat)};
          ++repairs_;
          break;
        case GuardPolicy::kReport:
          break;
      }
      continue;
    }
    if (cfg_->check_denormals &&
        (is_denormal(re) || is_denormal(im))) {
      ++denormal_;
      if (policy == GuardPolicy::kZero || policy == GuardPolicy::kClamp) {
        s = cplx{is_denormal(re) ? 0.0 : re, is_denormal(im) ? 0.0 : im};
        re = s.real();
        im = s.imag();
        ++repairs_;
      }
    }
    if (sat > 0.0) {
      const double p = re * re + im * im;
      if (p > sat2) {
        ++saturated_;
        if (policy == GuardPolicy::kClamp) {
          const double scale = sat / std::sqrt(p);
          s *= scale;
          ++repairs_;
        }
      }
    }
  }
}

GuardSet::GuardSet(GuardConfig cfg) : cfg_(cfg) {
  OFDM_REQUIRE(cfg.policy != GuardPolicy::kClamp ||
                   cfg.saturation_threshold > 0.0,
               "GuardSet: the Clamp policy needs a positive saturation "
               "threshold to clamp onto");
  OFDM_REQUIRE(cfg.saturation_threshold >= 0.0,
               "GuardSet: saturation threshold must be non-negative");
}

NumericGuard& GuardSet::add(std::string name) {
  std::size_t copies = 0;
  for (const NumericGuard& g : guards_) {
    if (g.name() == name ||
        g.name().compare(0, name.size() + 1, name + "#") == 0) {
      ++copies;
    }
  }
  if (copies > 0) name += "#" + std::to_string(copies + 1);
  guards_.emplace_back(std::move(name), guards_.size(), &cfg_);
  return guards_.back();
}

const NumericGuard* GuardSet::find(const std::string& name) const {
  for (const NumericGuard& g : guards_) {
    if (g.name() == name) return &g;
  }
  return nullptr;
}

void GuardSet::reset() {
  for (NumericGuard& g : guards_) g.reset();
}

std::uint64_t GuardSet::total_faults() const {
  std::uint64_t total = 0;
  for (const NumericGuard& g : guards_) total += g.faults();
  return total;
}

std::uint64_t GuardSet::total_repairs() const {
  std::uint64_t total = 0;
  for (const NumericGuard& g : guards_) total += g.repairs();
  return total;
}

}  // namespace ofdm::rf
