// Analog front-end blocks: DAC, IQ modulator/demodulator and the local
// oscillator. Together with the PA models these form the analog TX chain
// the paper's RF designer verifies against the digital Mother Model.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/resample.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

/// DAC model: mid-tread quantization to `bits` (0 = ideal) followed by
/// `oversample`x interpolation with an anti-imaging reconstruction filter.
class Dac : public Block {
 public:
  Dac(unsigned bits, std::size_t oversample, double full_scale = 4.0);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "dac"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t oversample() const { return oversample_; }

 private:
  double quantize(double v) const;

  unsigned bits_;
  std::size_t oversample_;
  double full_scale_;
  dsp::Interpolator interp_;
  cvec quant_;  // reusable quantized-sample buffer
};

/// Local oscillator: nominal frequency plus optional frequency offset
/// and Wiener phase noise of given linewidth (-3 dB Lorentzian width).
class Oscillator {
 public:
  Oscillator(double freq_hz, double sample_rate, double cfo_hz = 0.0,
             double linewidth_hz = 0.0, std::uint64_t noise_seed = 77);

  /// Next LO sample e^{j(2π f t + φ_n)}.
  cplx next();
  void reset();

  void save(StateWriter& w) const;
  void load(StateReader& r);

  double sample_rate() const { return sample_rate_; }

 private:
  double step_;
  double sample_rate_;
  double sigma_;  // per-sample phase-noise std dev
  double phase_ = 0.0;
  double noise_phase_ = 0.0;
  Rng rng_;
  std::uint64_t seed_;
};

/// IQ modulator: complex baseband -> real passband at the LO frequency
/// (the imaginary part of the output is zero).
class IqModulator : public Block {
 public:
  explicit IqModulator(Oscillator lo);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "iq-mod"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  Oscillator lo_;
};

/// IQ demodulator: real passband -> complex baseband, with an image-
/// rejection lowpass at `cutoff` (normalized, cycles/sample).
class IqDemodulator : public Block {
 public:
  IqDemodulator(Oscillator lo, double cutoff, std::size_t taps = 127);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "iq-demod"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// Filter group delay in samples (callers align against this).
  double group_delay() const { return filter_i_.group_delay(); }

 private:
  Oscillator lo_;
  dsp::FirFilter filter_i_;
  dsp::FirFilter filter_q_;
  cvec tmp_i_;  // reusable I-branch buffer
  cvec tmp_q_;  // reusable Q-branch buffer
};

/// Complex frequency shift (digital IF mixing in baseband simulations).
class FrequencyShift : public Block {
 public:
  FrequencyShift(double freq_hz, double sample_rate);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "freq-shift"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  double step_;
  double phase_ = 0.0;
};

/// Decimating lowpass (receiver anti-alias + rate restore).
class DecimatorBlock : public Block {
 public:
  explicit DecimatorBlock(std::size_t factor);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "decimator"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  dsp::Decimator dec_;
};

}  // namespace ofdm::rf
