// Execution options for the RF graph drivers (rf::run, Netlist::run).
//
// The default is the historical strictly sequential loop. threads > 1
// switches to the pipeline-parallel executor (rf/executor/executor.hpp):
// the topo order is partitioned into up to `threads` contiguous stages,
// each stage runs on its own thread, and stage boundaries are bounded
// single-producer/single-consumer chunk queues — `queue_depth` chunk
// slots per boundary, so a fast producer can run at most `queue_depth`
// chunks ahead of a slow consumer before backpressure stalls it.
//
// Output is bit-identical to the sequential loop regardless of threads
// or queue_depth: every block still consumes its stream in chunk order
// on exactly one thread.
#pragma once

#include <cstddef>

namespace ofdm::rf {

struct RunOptions {
  /// Total worker threads (the calling thread counts as one). 1 keeps
  /// the sequential driver; values above the stage count are clamped.
  std::size_t threads = 1;
  /// Chunk slots per stage boundary (>= 1). Depth 1 is fully
  /// synchronous hand-off (maximal backpressure); larger depths let
  /// stages ride out cost jitter.
  std::size_t queue_depth = 4;
};

}  // namespace ofdm::rf
