// Bounded lock-free single-producer/single-consumer ring queue.
//
// The pipeline executor's stage boundaries are strictly one producer
// stage and one consumer stage, so the classic two-index ring suffices:
// the producer owns `tail_`, the consumer owns `head_`, and each side
// publishes its index with a release store that the other side reads
// with an acquire load. No locks, no CAS loops, no allocation after
// construction — a push or pop is two atomic operations and one slot
// write/read.
//
// try_push/try_pop never block; the executor layers its own
// spin-then-yield wait (with stall-time accounting and a stop flag) on
// top, because how long to wait — and what counts as a stall — is a
// scheduling decision, not a queue property.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace ofdm::rf::exec {

template <typename T>
class SpscQueue {
 public:
  /// A queue that holds up to `capacity` elements (ring of capacity+1,
  /// one slot sacrificed to distinguish full from empty).
  explicit SpscQueue(std::size_t capacity) : ring_(capacity + 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side only. False when the queue is full.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;
    ring_[tail] = value;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side only. False when the queue is empty.
  bool try_pop(T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    value = ring_[head];
    head_.store(advance(head), std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return ring_.size() - 1; }

 private:
  std::size_t advance(std::size_t i) const {
    return i + 1 == ring_.size() ? 0 : i + 1;
  }

  std::vector<T> ring_;
  // The indices live on their own cache lines so the producer's tail
  // stores do not invalidate the consumer's head line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace ofdm::rf::exec
