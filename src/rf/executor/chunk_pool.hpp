// Recycling chunk-slot pool for one stage boundary.
//
// Every value that crosses a stage boundary travels inside a Slot: a
// fixed set of sample buffers (one per crossing edge) that ping-pongs
// between the producer and consumer stages through two SPSC rings —
// the executor's "filled" queue carries ready slots downstream, and the
// pool's free ring carries drained slots back upstream. The pool owns
// `depth` slots, so at most `depth` chunks are ever in flight across a
// boundary (that bound *is* the backpressure), and after each buffer has
// grown to its steady-state capacity the recycling loop never touches
// the heap again.
//
// Ownership protocol (single-owner at every instant):
//   producer: acquire() -> fill bufs -> hand to the filled queue
//   consumer: pop filled -> read/steal bufs -> release()
// acquire() is called only by the producer stage and release() only by
// the consumer stage, so the free ring is SPSC too.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "rf/executor/spsc_queue.hpp"

namespace ofdm::rf::exec {

/// One in-flight chunk crossing a stage boundary: buffer k holds the
/// output of the k-th crossing edge, in ascending topo-position order.
struct Slot {
  std::vector<cvec> bufs;
};

class ChunkPool {
 public:
  /// `depth` slots of `width` buffers each; every buffer reserves
  /// `reserve_samples` up front so a nominal chunk never reallocates.
  ChunkPool(std::size_t depth, std::size_t width,
            std::size_t reserve_samples)
      : slots_(depth), free_(depth) {
    for (Slot& slot : slots_) {
      slot.bufs.resize(width);
      for (cvec& buf : slot.bufs) buf.reserve(reserve_samples);
      // Pre-threading fill: the pool is built before any worker starts,
      // so this is the one place both queue roles run on one thread.
      free_.try_push(&slot);
    }
  }

  /// Producer side: take a free slot; nullptr when none is available
  /// (the consumer still owns all `depth` slots — backpressure).
  Slot* try_acquire() {
    Slot* slot = nullptr;
    free_.try_pop(slot);
    return slot;
  }

  /// Consumer side: hand a drained slot back. Never fails — the pool
  /// ring holds exactly as many slots as exist.
  void release(Slot* slot) { free_.try_push(slot); }

  std::size_t depth() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  SpscQueue<Slot*> free_;
};

}  // namespace ofdm::rf::exec
