// Pipeline-parallel executor for the RF block graph.
//
// rf::run and Netlist::run walk a topological order of blocks chunk by
// chunk; on a deep graph that serializes every block onto one core. The
// executor partitions that same topo order into contiguous *stages*,
// runs each stage on its own thread, and connects consecutive stages
// with bounded SPSC chunk queues (spsc_queue.hpp) whose slots come from
// a recycling pool (chunk_pool.hpp). Chunk c flows through stage 0,
// then stage 1, ... — so while stage 1 processes chunk c, stage 0 is
// already producing chunk c+1: classic software pipelining, with
// backpressure when a consumer falls behind (`queue_depth` slots per
// boundary, no more).
//
// Determinism: each block is owned by exactly one stage and sees its
// input stream in chunk order, so block state evolves exactly as in the
// sequential loop and the output is bit-identical for any thread count
// or queue depth (the golden-trace suite pins this for all ten
// standards). Probes, guards and the tracer ride along unchanged —
// process_observed() is called by the owning stage's thread only.
//
// Faults: an exception thrown inside any stage (e.g. a Throw-policy
// NumericGuard raising ofdm::StreamError) stops the pipeline, joins all
// workers, and is rethrown to the caller with the original block name /
// graph position / sample offset intact. When several stages fault, the
// earliest (chunk, stage) wins — the same fault the sequential loop
// would have surfaced first.
//
// Quiesce: run() returns only after every stage has drained and every
// worker has joined (on success and on fault alike), so the instant it
// returns all block state equals the sequential loop's state after the
// same samples — Netlist::snapshot()/restore() taken between runs stay
// bit-identical, which the snapshot suite enforces.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/block.hpp"
#include "rf/chain.hpp"
#include "rf/executor/run_options.hpp"

namespace ofdm::rf::exec {

/// One entry of the topological order handed to the executor: exactly
/// one of source/block is set; `inputs` are *positions* in that order
/// (not netlist node ids). `leaf` marks nodes with no consumers, whose
/// output counts toward RunStats::samples_out.
struct WorkItem {
  Source* source = nullptr;
  Block* block = nullptr;
  std::vector<std::size_t> inputs;
  bool leaf = false;
};

class PipelineExecutor {
 public:
  /// The items must be a valid topological order (every input position
  /// < the item's own position). Stage count = min(threads, items).
  PipelineExecutor(std::vector<WorkItem> items, const RunOptions& opts);

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Drive the graph for `total` samples in chunks of `chunk`,
  /// spawning stage_count()-1 workers (the calling thread runs the
  /// final stage). Blocks until the pipeline drains; rethrows the
  /// earliest worker fault after all threads have joined.
  RunStats run(std::size_t total, std::size_t chunk);

  std::size_t stage_count() const { return n_stages_; }

 private:
  struct Stage;

  std::vector<WorkItem> items_;
  std::size_t n_stages_;
  std::size_t queue_depth_;
};

}  // namespace ofdm::rf::exec
