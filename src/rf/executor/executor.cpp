#include "rf/executor/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "rf/executor/chunk_pool.hpp"
#include "rf/executor/spsc_queue.hpp"

namespace ofdm::rf::exec {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t ns_since(clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           t0)
          .count());
}

// Tracer span names must outlive any snapshot, so stage labels are
// static literals; graphs deeper than the table share the last one.
constexpr const char* kStageLabels[] = {
    "rf-stage0",  "rf-stage1",  "rf-stage2",  "rf-stage3",
    "rf-stage4",  "rf-stage5",  "rf-stage6",  "rf-stage7",
    "rf-stage8",  "rf-stage9",  "rf-stage10", "rf-stage11",
    "rf-stage12", "rf-stage13", "rf-stage14", "rf-stage15+"};

const char* stage_label(std::size_t s) {
  constexpr std::size_t n = sizeof(kStageLabels) / sizeof(kStageLabels[0]);
  return kStageLabels[std::min(s, n - 1)];
}

}  // namespace

/// Everything one stage thread owns. Every field is written only by the
/// stage's own thread while the pipeline runs; the driver reads the
/// counters after the join (thread::join gives the happens-before).
struct PipelineExecutor::Stage {
  std::size_t index = 0;
  std::size_t begin = 0;  // owned item positions [begin, end)
  std::size_t end = 0;

  // Boundary wiring (queues/pools owned by run(), shared with exactly
  // one neighbour each, in the SPSC roles the types require).
  SpscQueue<Slot*>* in_filled = nullptr;  // consumer side
  ChunkPool* in_pool = nullptr;           // release side
  SpscQueue<Slot*>* out_filled = nullptr;  // producer side
  ChunkPool* out_pool = nullptr;           // acquire side
  std::vector<std::size_t> in_positions;  // crossing positions entering
  // Per owned item: index into the out slot's buffers, or SIZE_MAX for
  // a stage-local destination.
  std::vector<std::size_t> dest_out;
  // Values produced before this stage and consumed after it: pairs of
  // (in-slot buffer index, out-slot buffer index) forwarded by an O(1)
  // buffer swap — capacities circulate among slots, never reallocate.
  std::vector<std::pair<std::size_t, std::size_t>> passthrough;

  // Reused storage, allocation-free once warm.
  std::vector<cvec> local;          // per owned item without a slot dest
  cvec fanin;                       // summing fan-in scratch
  std::vector<const cvec*> value;   // position -> this chunk's buffer

  // Counters (folded into RunStats after the join).
  std::uint64_t samples_in = 0;
  std::uint64_t samples_out = 0;
  std::uint64_t source_ns = 0;
  std::uint64_t block_ns = 0;
  std::uint64_t stall_ns = 0;
  std::uint64_t chunks_done = 0;
};

PipelineExecutor::PipelineExecutor(std::vector<WorkItem> items,
                                   const RunOptions& opts)
    : items_(std::move(items)) {
  OFDM_REQUIRE(!items_.empty(), "PipelineExecutor: empty graph");
  OFDM_REQUIRE(opts.threads >= 1, "RunOptions: threads must be >= 1");
  OFDM_REQUIRE(opts.queue_depth >= 1,
               "RunOptions: queue_depth must be >= 1");
  n_stages_ = std::min(opts.threads, items_.size());
  queue_depth_ = opts.queue_depth;
  for (std::size_t p = 0; p < items_.size(); ++p) {
    const WorkItem& item = items_[p];
    OFDM_REQUIRE((item.source != nullptr) != (item.block != nullptr),
                 "WorkItem: exactly one of source/block must be set");
    OFDM_REQUIRE(item.source == nullptr || item.inputs.empty(),
                 "WorkItem: a source cannot have inputs");
    for (std::size_t q : item.inputs) {
      OFDM_REQUIRE(q < p,
                   "PipelineExecutor: item inputs must precede the item "
                   "(not a topological order)");
    }
  }
}

RunStats PipelineExecutor::run(std::size_t total, std::size_t chunk) {
  OFDM_REQUIRE(chunk > 0 || total == 0,
               "PipelineExecutor: chunk size must be positive");
  RunStats stats;
  const auto t0 = clock::now();
  if (total == 0) {
    stats.elapsed_seconds = static_cast<double>(ns_since(t0)) * 1e-9;
    return stats;
  }
  const std::size_t chunks = (total + chunk - 1) / chunk;
  const std::size_t n_items = items_.size();
  const std::size_t n_stages = n_stages_;

  // ---- Plan: contiguous equal-count partition of the topo order.
  std::vector<std::size_t> stage_of(n_items);
  std::vector<Stage> stages(n_stages);
  for (std::size_t s = 0; s < n_stages; ++s) {
    stages[s].index = s;
    stages[s].begin = n_items * s / n_stages;
    stages[s].end = n_items * (s + 1) / n_stages;
    for (std::size_t p = stages[s].begin; p < stages[s].end; ++p) {
      stage_of[p] = s;
    }
  }
  // Last stage that consumes each position (its own stage when unused).
  std::vector<std::size_t> last_cons(n_items);
  for (std::size_t p = 0; p < n_items; ++p) last_cons[p] = stage_of[p];
  for (std::size_t p = 0; p < n_items; ++p) {
    for (std::size_t q : items_[p].inputs) {
      last_cons[q] = std::max(last_cons[q], stage_of[p]);
    }
  }
  // Boundary b sits between stage b and b+1; its crossing set is every
  // position produced at or before b and consumed after b (ascending).
  std::vector<std::vector<std::size_t>> crossing(
      n_stages > 0 ? n_stages - 1 : 0);
  for (std::size_t b = 0; b + 1 < n_stages; ++b) {
    for (std::size_t p = 0; p < n_items; ++p) {
      if (stage_of[p] <= b && b < last_cons[p]) crossing[b].push_back(p);
    }
  }
  std::vector<std::unique_ptr<SpscQueue<Slot*>>> filled;
  std::vector<std::unique_ptr<ChunkPool>> pools;
  for (std::size_t b = 0; b + 1 < n_stages; ++b) {
    filled.push_back(std::make_unique<SpscQueue<Slot*>>(queue_depth_));
    pools.push_back(std::make_unique<ChunkPool>(
        queue_depth_, crossing[b].size(), chunk));
  }
  for (std::size_t s = 0; s < n_stages; ++s) {
    Stage& st = stages[s];
    st.value.assign(n_items, nullptr);
    st.local.resize(st.end - st.begin);
    st.dest_out.assign(st.end - st.begin, SIZE_MAX);
    if (s > 0) {
      st.in_filled = filled[s - 1].get();
      st.in_pool = pools[s - 1].get();
      st.in_positions = crossing[s - 1];
    }
    if (s + 1 < n_stages) {
      st.out_filled = filled[s].get();
      st.out_pool = pools[s].get();
      for (std::size_t k = 0; k < crossing[s].size(); ++k) {
        const std::size_t p = crossing[s][k];
        if (stage_of[p] == s) {
          st.dest_out[p - st.begin] = k;
        } else {
          // Produced upstream, still needed downstream: forward it.
          const auto& in_set = crossing[s - 1];
          const std::size_t j = static_cast<std::size_t>(
              std::lower_bound(in_set.begin(), in_set.end(), p) -
              in_set.begin());
          st.passthrough.emplace_back(j, k);
        }
      }
    }
  }

  // ---- Fault slot: earliest (chunk, stage) wins, matching what the
  // sequential loop would have surfaced first.
  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t err_chunk = SIZE_MAX;
  std::size_t err_stage = SIZE_MAX;
  std::atomic<bool> stop{false};
  auto record_error = [&](std::size_t c, std::size_t s) {
    std::lock_guard lk(err_mutex);
    if (!error || c < err_chunk || (c == err_chunk && s < err_stage)) {
      error = std::current_exception();
      err_chunk = c;
      err_stage = s;
    }
    stop.store(true, std::memory_order_release);
  };

  // Spin-then-yield wait with stall accounting; false means the
  // pipeline is aborting.
  auto wait_for = [&stop](Stage& st, auto&& ready) -> bool {
    if (ready()) return true;
    const auto w0 = clock::now();
    bool ok = false;
    for (;;) {
      if (stop.load(std::memory_order_acquire)) break;
      if (ready()) {
        ok = true;
        break;
      }
      std::this_thread::yield();
    }
    st.stall_ns += ns_since(w0);
    return ok;
  };

  auto process_chunk = [&](Stage& st, std::size_t n, Slot* in,
                           Slot* out) {
    for (std::size_t k = 0; k < st.in_positions.size(); ++k) {
      st.value[st.in_positions[k]] = &in->bufs[k];
    }
    for (std::size_t p = st.begin; p < st.end; ++p) {
      WorkItem& item = items_[p];
      const std::size_t i = p - st.begin;
      cvec& dst = st.dest_out[i] == SIZE_MAX ? st.local[i]
                                             : out->bufs[st.dest_out[i]];
      if (item.source != nullptr) {
        const auto s0 = clock::now();
        item.source->pull_observed(n, dst);
        st.source_ns += ns_since(s0);
        st.samples_in += dst.size();
      } else {
        const auto b0 = clock::now();
        if (item.inputs.size() == 1) {
          item.block->process_observed(*st.value[item.inputs.front()],
                                       dst);
        } else {
          // Summing fan-in, same semantics as the sequential Netlist
          // loop (including the rate-contract check).
          const cvec& first = *st.value[item.inputs.front()];
          st.fanin.assign(first.begin(), first.end());
          for (std::size_t j = 1; j < item.inputs.size(); ++j) {
            const cvec& other = *st.value[item.inputs[j]];
            OFDM_REQUIRE_DIM(other.size() == st.fanin.size(),
                             "Netlist: fan-in length mismatch (rate "
                             "change on one branch?)");
            for (std::size_t x = 0; x < st.fanin.size(); ++x) {
              st.fanin[x] += other[x];
            }
          }
          item.block->process_observed(st.fanin, dst);
        }
        st.block_ns += ns_since(b0);
      }
      if (item.leaf) st.samples_out += dst.size();
      st.value[p] = &dst;
    }
    // Forward pass-through values after all local consumers have read
    // them; the swap hands the filled buffer downstream and keeps the
    // out slot's old capacity circulating.
    for (const auto& [j, k] : st.passthrough) {
      std::swap(in->bufs[j], out->bufs[k]);
    }
  };

  auto stage_main = [&](Stage& st) {
    for (std::size_t c = 0; c < chunks; ++c) {
      if (stop.load(std::memory_order_acquire)) return;
      Slot* in = nullptr;
      Slot* out = nullptr;
      if (st.in_filled != nullptr &&
          !wait_for(st, [&] { return st.in_filled->try_pop(in); })) {
        return;
      }
      if (st.out_pool != nullptr && !wait_for(st, [&] {
            out = st.out_pool->try_acquire();
            return out != nullptr;
          })) {
        return;
      }
      const std::size_t n = std::min(chunk, total - c * chunk);
      obs::ScopedSpan span(stage_label(st.index));
      try {
        process_chunk(st, n, in, out);
      } catch (...) {
        record_error(c, st.index);
        return;
      }
      // Filled-queue capacity equals the pool depth, so a push of an
      // acquired slot can never find the ring full.
      if (st.out_filled != nullptr) st.out_filled->try_push(out);
      if (st.in_pool != nullptr) st.in_pool->release(in);
      ++st.chunks_done;
    }
  };

  // ---- Run: one worker per stage except the last, which the calling
  // thread drives itself. The joins below are the quiesce barrier: when
  // run() returns, no thread holds any block or slot, and every block's
  // state equals the sequential loop's after the same samples.
  std::vector<std::thread> workers;
  workers.reserve(n_stages - 1);
  for (std::size_t s = 0; s + 1 < n_stages; ++s) {
    workers.emplace_back([&stage_main, &stages, s] {
      stage_main(stages[s]);
    });
  }
  stage_main(stages[n_stages - 1]);
  for (std::thread& w : workers) w.join();

  if (error) std::rethrow_exception(error);

  for (Stage& st : stages) {
    stats.samples_in += st.samples_in;
    stats.samples_out += st.samples_out;
    stats.source_seconds += static_cast<double>(st.source_ns) * 1e-9;
    stats.block_seconds += static_cast<double>(st.block_ns) * 1e-9;
    obs::StageStats row;
    row.name = "stage" + std::to_string(st.index);
    row.blocks = st.end - st.begin;
    row.chunks = st.chunks_done;
    row.busy_seconds =
        static_cast<double>(st.source_ns + st.block_ns) * 1e-9;
    row.stall_seconds = static_cast<double>(st.stall_ns) * 1e-9;
    stats.stages.push_back(std::move(row));
  }
  stats.elapsed_seconds = static_cast<double>(ns_since(t0)) * 1e-9;
  return stats;
}

}  // namespace ofdm::rf::exec
