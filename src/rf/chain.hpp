// Composition of RF blocks into a processing chain and a simple
// simulation driver — the "RF system simulation" loop of the paper.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "obs/report.hpp"
#include "rf/block.hpp"
#include "rf/executor/run_options.hpp"
#include "rf/guard.hpp"

namespace ofdm::rf {

/// An ordered chain of blocks; itself a Block. Intermediate results
/// ping-pong between `out` and one reusable scratch buffer, so a chain
/// of allocation-free blocks is itself allocation-free in steady state.
/// `in` must not overlap `out`.
class Chain : public Block {
 public:
  Chain() = default;

  /// Append a block, constructed in place. Returns a reference to it so
  /// callers can keep handles for inspection (e.g. sinks).
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto block = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *block;
    blocks_.push_back(std::move(block));
    return ref;
  }

  /// Append an already-constructed block (e.g. from a factory).
  Block& add_ptr(std::unique_ptr<Block> block);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "chain"; }

  /// Checkpoint/restore: saves every contained block's streaming state
  /// as a named frame, so restoring into a differently composed chain
  /// fails loudly (ofdm::StateError) instead of misreading bytes.
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t size() const { return blocks_.size(); }

  /// The i-th contained block (the pipeline executor partitions the
  /// chain through this; also handy for inspection).
  Block& at(std::size_t i) { return *blocks_.at(i); }
  const Block& at(std::size_t i) const { return *blocks_.at(i); }

  /// Register one probe per contained block (named after block->name(),
  /// duplicates suffixed #k) and attach them. The set must outlive the
  /// chain or detach_probes() must run first.
  void attach_probes(obs::ProbeSet& probes);

  /// Detach every contained block's probe.
  void detach_probes();

  /// Register one numerical-health guard per contained block and attach
  /// them; lifetime rules are as for attach_probes().
  void attach_guards(GuardSet& guards);

  /// Detach every contained block's guard.
  void detach_guards();

 private:
  std::vector<std::unique_ptr<Block>> blocks_;
  cvec scratch_;  // ping-pong partner of the caller's output buffer
};

/// Simulation statistics returned by run().
struct RunStats {
  std::size_t samples_in = 0;
  /// Samples leaving leaf blocks (no-consumer nodes), summed per chunk
  /// over the whole run.
  std::size_t samples_out = 0;
  double elapsed_seconds = 0.0;     ///< wall-clock simulation time
  double source_seconds = 0.0;      ///< time spent inside the source
  /// Cumulative time inside block processing (all threads summed), so
  /// an executor speedup shows up as elapsed_seconds shrinking while
  /// block_seconds stays put.
  double block_seconds = 0.0;
  /// Per-stage busy/stall attribution; empty for sequential runs.
  std::vector<obs::StageStats> stages;
};

/// Pull `total` samples from `source`, push them through `chain` in
/// chunks of `chunk` samples, reusing one input and one output buffer
/// for the whole run. The split of wall-clock time between the source
/// and the rest of the chain is what experiment E2 measures ("the
/// digital block had only negligible influence on the total simulation
/// time").
///
/// With opts.threads > 1 the source + chain are partitioned into
/// pipeline stages on worker threads connected by bounded SPSC chunk
/// queues (rf/executor/executor.hpp); the output stream is bit-identical
/// to the sequential default either way.
RunStats run(Source& source, Chain& chain, std::size_t total,
             std::size_t chunk = 4096, const RunOptions& opts = {});

}  // namespace ofdm::rf
