// Power amplifier behavioural models — the dominant analog nonlinearity
// in the co-simulation experiments. OFDM's high PAPR makes the PA
// operating point the RF designer's central question; experiment E4
// sweeps back-off through these models.
#pragma once

#include "rf/block.hpp"

namespace ofdm::rf {

/// Memoryless nonlinearity base: derived classes define the AM/AM and
/// AM/PM response; process() applies it sample by sample.
class Nonlinearity : public Block {
 public:
  /// Output amplitude for input amplitude r >= 0.
  virtual double am_am(double r) const = 0;
  /// Added phase (radians) for input amplitude r >= 0.
  virtual double am_pm(double /*r*/) const { return 0.0; }

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) final;
};

/// Rapp (solid-state PA) model: smooth saturation, no AM/PM.
/// v_out = g r / (1 + (g r / v_sat)^{2s})^{1/(2s)}.
class RappPa : public Nonlinearity {
 public:
  /// `smoothness` s (typ. 2..3), `v_sat` output saturation amplitude,
  /// `gain` small-signal amplitude gain.
  RappPa(double smoothness, double v_sat, double gain = 1.0);

  double am_am(double r) const override;
  std::string name() const override { return "pa-rapp"; }

  double v_sat() const { return v_sat_; }

 private:
  double smoothness_;
  double v_sat_;
  double gain_;
};

/// Saleh (TWT amplifier) model with AM/AM and AM/PM:
/// A(r) = α_a r / (1 + β_a r²),  Φ(r) = α_p r² / (1 + β_p r²).
class SalehPa : public Nonlinearity {
 public:
  SalehPa(double alpha_a = 2.1587, double beta_a = 1.1517,
          double alpha_p = 4.0033, double beta_p = 9.1040);

  double am_am(double r) const override;
  double am_pm(double r) const override;
  std::string name() const override { return "pa-saleh"; }

 private:
  double alpha_a_, beta_a_, alpha_p_, beta_p_;
};

/// Ideal soft limiter: linear to the clip level, flat above.
class SoftClipPa : public Nonlinearity {
 public:
  explicit SoftClipPa(double clip_level);

  double am_am(double r) const override;
  std::string name() const override { return "pa-clip"; }

 private:
  double clip_;
};

/// Linear gain/attenuation (sets the PA input back-off).
class Gain : public Block {
 public:
  explicit Gain(double gain_db);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  std::string name() const override { return "gain"; }

  double linear() const { return lin_; }

 private:
  double lin_;
};

}  // namespace ofdm::rf
