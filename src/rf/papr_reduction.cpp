#include "rf/papr_reduction.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::rf {

ClipAndFilter::ClipAndFilter(double target_papr_db, double cutoff,
                             std::size_t iterations, std::size_t taps)
    : target_ratio_(from_db(target_papr_db)), iterations_(iterations) {
  OFDM_REQUIRE(target_papr_db > 0.0,
               "ClipAndFilter: target PAPR must be positive dB");
  OFDM_REQUIRE(iterations >= 1, "ClipAndFilter: need >= 1 iteration");
  OFDM_REQUIRE(taps % 2 == 1,
               "ClipAndFilter: odd tap count required so the group "
               "delay is an integer and can be compensated");
  for (std::size_t i = 0; i < iterations; ++i) {
    filters_.emplace_back(dsp::design_lowpass(cutoff, taps));
  }
}

double ClipAndFilter::clip_level_for(double avg_power) const {
  return std::sqrt(avg_power * target_ratio_);
}

void ClipAndFilter::process(std::span<const cplx> in, cvec& out) {
  // Burst-at-a-time semantics: each call is treated as one complete
  // burst so the filters' group delay can be compensated exactly
  // (the output stays time-aligned with the input).
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
  if (out.empty()) return;  // mean_power of nothing is NaN, not a level
  const double avg = mean_power(out);
  if (avg <= 0.0) return;
  const double level = clip_level_for(avg);

  for (std::size_t it = 0; it < iterations_; ++it) {
    for (cplx& v : out) {
      const double mag = std::abs(v);
      if (mag > level) v *= level / mag;
    }
    dsp::FirFilter& f = filters_[it];
    f.reset();
    const auto delay =
        static_cast<std::size_t>(std::lround(f.group_delay()));
    padded_.assign(out.begin(), out.end());
    padded_.insert(padded_.end(), delay, cplx{0.0, 0.0});
    f.process(padded_, padded_);
    out.assign(padded_.begin() + static_cast<std::ptrdiff_t>(delay),
               padded_.end());
  }
}

void ClipAndFilter::reset() {
  for (auto& f : filters_) f.reset();
}

}  // namespace ofdm::rf
