#include "rf/netlist.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "rf/executor/executor.hpp"

namespace ofdm::rf {

Netlist::NodeId Netlist::add_source_ptr(std::unique_ptr<Source> src) {
  OFDM_REQUIRE(src != nullptr, "Netlist: null source");
  Node node;
  node.source = std::move(src);
  nodes_.push_back(std::move(node));
  return NodeId{nodes_.size() - 1};
}

Netlist::NodeId Netlist::add_block_ptr(std::unique_ptr<Block> block) {
  OFDM_REQUIRE(block != nullptr, "Netlist: null block");
  Node node;
  node.block = std::move(block);
  nodes_.push_back(std::move(node));
  return NodeId{nodes_.size() - 1};
}

void Netlist::connect(NodeId from, NodeId to) {
  OFDM_REQUIRE(from.index < nodes_.size() && to.index < nodes_.size(),
               "Netlist::connect: unknown node");
  OFDM_REQUIRE(!nodes_[to.index].is_source(),
               "Netlist::connect: cannot drive a source node");
  OFDM_REQUIRE(from.index != to.index,
               "Netlist::connect: self-loop");
  nodes_[to.index].inputs.push_back(from.index);
}

std::vector<std::size_t> Netlist::topo_order() const {
  // Kahn's algorithm over the explicit edge lists.
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  std::vector<std::vector<std::size_t>> out_edges(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    in_degree[i] = nodes_[i].inputs.size();
    for (std::size_t src : nodes_[i].inputs) {
      out_edges[src].push_back(i);
    }
    if (!nodes_[i].is_source()) {
      OFDM_REQUIRE(!nodes_[i].inputs.empty(),
                   "Netlist: block node has no inputs");
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::size_t n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (std::size_t next : out_edges[n]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  OFDM_REQUIRE(order.size() == nodes_.size(),
               "Netlist: the block graph contains a cycle");
  return order;
}

RunStats Netlist::run(std::size_t total, std::size_t chunk,
                      const RunOptions& opts) {
  using clock = std::chrono::steady_clock;
  OFDM_REQUIRE(chunk > 0 || total == 0,
               "Netlist::run: chunk size must be positive");
  const std::vector<std::size_t> order = topo_order();

  // Consumer counts: nodes nobody reads are the graph's leaves, whose
  // output is what samples_out accounts for.
  std::vector<std::size_t> consumers(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (std::size_t src : node.inputs) ++consumers[src];
  }

  if (opts.threads > 1 && nodes_.size() > 1 && total > 0) {
    // Pipeline-parallel path: hand the topo order to the executor with
    // node ids remapped to topo positions.
    std::vector<std::size_t> pos_of(nodes_.size());
    for (std::size_t i = 0; i < order.size(); ++i) pos_of[order[i]] = i;
    std::vector<exec::WorkItem> items(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      Node& node = nodes_[order[i]];
      if (node.is_source()) {
        items[i].source = node.source.get();
      } else {
        items[i].block = node.block.get();
        items[i].inputs.reserve(node.inputs.size());
        for (std::size_t src : node.inputs) {
          items[i].inputs.push_back(pos_of[src]);
        }
      }
      items[i].leaf = consumers[order[i]] == 0;
    }
    exec::PipelineExecutor executor(std::move(items), opts);
    return executor.run(total, chunk);
  }

  RunStats stats;
  const auto t0 = clock::now();
  // Per-node output buffers plus one fan-in summing scratch, all reused
  // across chunks so the steady-state loop never allocates.
  std::vector<cvec> values(nodes_.size());
  cvec fanin;
  std::size_t produced = 0;
  while (produced < total) {
    const std::size_t n = std::min(chunk, total - produced);
    for (std::size_t id : order) {
      Node& node = nodes_[id];
      if (node.is_source()) {
        const auto s0 = clock::now();
        node.source->pull_observed(n, values[id]);
        stats.source_seconds +=
            std::chrono::duration<double>(clock::now() - s0).count();
        stats.samples_in += values[id].size();
      } else if (node.inputs.size() == 1) {
        // Single input: feed the upstream buffer straight through
        // (distinct from values[id]; self-loops are rejected).
        const auto b0 = clock::now();
        node.block->process_observed(values[node.inputs.front()],
                                     values[id]);
        stats.block_seconds +=
            std::chrono::duration<double>(clock::now() - b0).count();
      } else {
        // Summing fan-in.
        const auto b0 = clock::now();
        const cvec& first = values[node.inputs.front()];
        fanin.assign(first.begin(), first.end());
        for (std::size_t j = 1; j < node.inputs.size(); ++j) {
          const cvec& other = values[node.inputs[j]];
          OFDM_REQUIRE_DIM(other.size() == fanin.size(),
                           "Netlist: fan-in length mismatch (rate change "
                           "on one branch?)");
          for (std::size_t k = 0; k < fanin.size(); ++k) {
            fanin[k] += other[k];
          }
        }
        node.block->process_observed(fanin, values[id]);
        stats.block_seconds +=
            std::chrono::duration<double>(clock::now() - b0).count();
      }
      // Count samples leaving leaf nodes (no consumers) every chunk.
      if (consumers[id] == 0) stats.samples_out += values[id].size();
    }
    produced += n;
  }
  stats.elapsed_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  return stats;
}

void Netlist::reset() {
  for (Node& node : nodes_) {
    if (node.source) node.source->reset();
    if (node.block) node.block->reset();
  }
}

void Netlist::attach_probes(obs::ProbeSet& probes) {
  for (Node& node : nodes_) {
    if (node.source) {
      node.source->set_probe(&probes.add(node.source->name()));
    } else {
      node.block->set_probe(&probes.add(node.block->name()));
    }
  }
}

void Netlist::detach_probes() {
  for (Node& node : nodes_) {
    if (node.source) node.source->set_probe(nullptr);
    if (node.block) node.block->set_probe(nullptr);
  }
}

void Netlist::attach_guards(GuardSet& guards) {
  for (Node& node : nodes_) {
    if (node.source) {
      node.source->set_guard(&guards.add(node.source->name()));
    } else {
      node.block->set_guard(&guards.add(node.block->name()));
    }
  }
}

void Netlist::detach_guards() {
  for (Node& node : nodes_) {
    if (node.source) node.source->set_guard(nullptr);
    if (node.block) node.block->set_guard(nullptr);
  }
}

namespace {
// "OFDMSNAP" as a little-endian u64, plus the format version.
constexpr std::uint64_t kSnapshotMagic = 0x50414E534D44464FULL;
constexpr std::uint64_t kSnapshotVersion = 1;
}  // namespace

void Netlist::snapshot(StateWriter& w) const {
  w.u64(kSnapshotMagic);
  w.u64(kSnapshotVersion);
  w.u64(nodes_.size());
  for (const Node& node : nodes_) {
    const std::string name =
        node.is_source() ? node.source->name() : node.block->name();
    w.begin_node(name);
    if (node.is_source()) {
      node.source->save_state(w);
    } else {
      node.block->save_state(w);
    }
    w.end_node();
  }
}

std::vector<std::uint8_t> Netlist::snapshot() const {
  StateWriter w;
  snapshot(w);
  return w.bytes();
}

void Netlist::restore(StateReader& r) {
  if (r.u64() != kSnapshotMagic) {
    throw StateError("Netlist::restore: not a netlist snapshot "
                     "(bad magic)");
  }
  const std::uint64_t version = r.u64();
  if (version != kSnapshotVersion) {
    throw StateError("Netlist::restore: unsupported snapshot version " +
                     std::to_string(version));
  }
  const std::uint64_t count = r.u64();
  if (count != nodes_.size()) {
    throw StateError("Netlist::restore: snapshot has " +
                     std::to_string(count) + " nodes, graph has " +
                     std::to_string(nodes_.size()));
  }
  for (Node& node : nodes_) {
    const std::string name =
        node.is_source() ? node.source->name() : node.block->name();
    r.enter_node(name);
    if (node.is_source()) {
      node.source->load_state(r);
    } else {
      node.block->load_state(r);
    }
    r.exit_node();
  }
}

void Netlist::restore(std::span<const std::uint8_t> bytes) {
  StateReader r(bytes);
  restore(r);
  if (!r.done()) {
    throw StateError("Netlist::restore: trailing bytes after the last "
                     "node -- snapshot from a different graph?");
  }
}

}  // namespace ofdm::rf
