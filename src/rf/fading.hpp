// Time-varying channels: Rayleigh fading with a Jakes Doppler spectrum
// (sum-of-sinusoids) and powerline-style impulsive noise. These extend
// the static channel models so mobile (DAB/DVB-T) and powerline
// (HomePlug) co-simulations see their characteristic impairments.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

/// One tap of a tapped-delay-line fading channel.
struct FadingTap {
  std::size_t delay_samples = 0;
  double power = 1.0;  ///< average tap power (linear)
};

/// Rayleigh fading via Jakes' sum-of-sinusoids: each tap is an
/// independent complex Gaussian process with the classic U-shaped
/// Doppler spectrum of maximum frequency `doppler_hz`.
class FadingChannel : public Block {
 public:
  FadingChannel(std::vector<FadingTap> taps, double doppler_hz,
                double sample_rate, std::uint64_t seed = 1234,
                std::size_t n_sinusoids = 16);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "fading"; }

  /// Checkpoint the oscillator phases and the delay line (Doppler
  /// frequencies are derived from the seed at construction, so they are
  /// not part of the streaming state).
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// Instantaneous tap gains at the current stream position.
  cvec current_gains() const;

 private:
  struct TapState {
    FadingTap tap;
    rvec doppler_freq;  // rad/sample per sinusoid
    rvec phase;         // current phase per sinusoid (I branch)
    rvec phase_q;       // quadrature branch
  };

  cplx tap_gain(const TapState& t) const;
  void advance();

  std::vector<TapState> taps_;
  std::size_t max_delay_ = 0;
  cvec delay_line_;
  std::size_t head_ = 0;
  std::uint64_t seed_;
  std::size_t n_sinusoids_;
  double doppler_rad_;  // 2*pi*fd/fs
  void init_states();
};

/// Powerline/impulsive noise: a Bernoulli process starts bursts of
/// geometrically distributed length during which strong white noise is
/// added (Middleton-class-A flavoured, two-state).
class ImpulseNoise : public Block {
 public:
  /// `burst_rate` = burst starts per sample (e.g. 1e-5), `mean_len` =
  /// mean burst length in samples, `impulse_power` = noise power while
  /// a burst is active.
  ImpulseNoise(double burst_rate, double mean_len, double impulse_power,
               std::uint64_t seed = 555);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "impulse-noise"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t bursts_seen() const { return bursts_; }

 private:
  double burst_rate_;
  double continue_prob_;
  double impulse_power_;
  Rng rng_;
  std::uint64_t seed_;
  std::size_t remaining_ = 0;
  std::size_t bursts_ = 0;
};

}  // namespace ofdm::rf
