#include "rf/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::rf {

Dac::Dac(unsigned bits, std::size_t oversample, double full_scale)
    : bits_(bits),
      oversample_(oversample),
      full_scale_(full_scale),
      interp_(oversample) {
  OFDM_REQUIRE(bits <= 24, "Dac: at most 24 bits");
  OFDM_REQUIRE(full_scale > 0.0, "Dac: full scale must be positive");
}

double Dac::quantize(double v) const {
  if (bits_ == 0) return v;
  const double clipped = std::clamp(v, -full_scale_, full_scale_);
  const double levels = static_cast<double>(1u << (bits_ - 1));
  const double lsb = full_scale_ / levels;
  return std::round(clipped / lsb) * lsb;
}

void Dac::process(std::span<const cplx> in, cvec& out) {
  quant_.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    quant_[i] = {quantize(in[i].real()), quantize(in[i].imag())};
  }
  interp_.process(quant_, out);
}

void Dac::reset() { interp_.reset(); }

void Dac::save_state(StateWriter& w) const { interp_.save_state(w); }

void Dac::load_state(StateReader& r) { interp_.load_state(r); }

Oscillator::Oscillator(double freq_hz, double sample_rate, double cfo_hz,
                       double linewidth_hz, std::uint64_t noise_seed)
    : step_(kTwoPi * (freq_hz + cfo_hz) / sample_rate),
      sample_rate_(sample_rate),
      rng_(noise_seed),
      seed_(noise_seed) {
  OFDM_REQUIRE(sample_rate > 0.0, "Oscillator: sample rate must be > 0");
  OFDM_REQUIRE(linewidth_hz >= 0.0,
               "Oscillator: linewidth must be non-negative");
  // Wiener phase noise: variance per sample = 2π * linewidth / fs.
  sigma_ = std::sqrt(kTwoPi * linewidth_hz / sample_rate);
}

cplx Oscillator::next() {
  const cplx lo{std::cos(phase_ + noise_phase_),
                std::sin(phase_ + noise_phase_)};
  phase_ = std::fmod(phase_ + step_, kTwoPi);
  if (sigma_ > 0.0) noise_phase_ += sigma_ * rng_.gaussian();
  return lo;
}

void Oscillator::reset() {
  phase_ = 0.0;
  noise_phase_ = 0.0;
  rng_ = Rng(seed_);
}

void Oscillator::save(StateWriter& w) const {
  w.f64(phase_);
  w.f64(noise_phase_);
  rng_.save(w);
}

void Oscillator::load(StateReader& r) {
  phase_ = r.f64();
  noise_phase_ = r.f64();
  rng_.load(r);
}

IqModulator::IqModulator(Oscillator lo) : lo_(lo) {}

void IqModulator::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const cplx lo = lo_.next();
    // Re{x * e^{jωt}} = I cos - Q sin, carried in the real part.
    out[i] = {in[i].real() * lo.real() - in[i].imag() * lo.imag(), 0.0};
  }
}

void IqModulator::reset() { lo_.reset(); }

void IqModulator::save_state(StateWriter& w) const { lo_.save(w); }

void IqModulator::load_state(StateReader& r) { lo_.load(r); }

IqDemodulator::IqDemodulator(Oscillator lo, double cutoff, std::size_t taps)
    : lo_(lo),
      filter_i_(dsp::design_lowpass(cutoff, taps)),
      filter_q_(dsp::design_lowpass(cutoff, taps)) {}

void IqDemodulator::process(std::span<const cplx> in, cvec& out) {
  const std::size_t n = in.size();
  tmp_i_.resize(n);
  tmp_q_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx lo = lo_.next();
    // 2 x(t) e^{-jωt}: the factor 2 restores baseband amplitude after
    // the lowpass removes the 2ω image.
    const double x = in[i].real();
    tmp_i_[i] = {2.0 * x * lo.real(), 0.0};
    tmp_q_[i] = {-2.0 * x * lo.imag(), 0.0};
  }
  // Lowpass I and Q (identical linear-phase filters keep them aligned).
  filter_i_.process(tmp_i_, tmp_i_);
  filter_q_.process(tmp_q_, tmp_q_);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = {tmp_i_[i].real(), tmp_q_[i].real()};
  }
}

void IqDemodulator::reset() {
  lo_.reset();
  filter_i_.reset();
  filter_q_.reset();
}

void IqDemodulator::save_state(StateWriter& w) const {
  lo_.save(w);
  filter_i_.save_state(w);
  filter_q_.save_state(w);
}

void IqDemodulator::load_state(StateReader& r) {
  lo_.load(r);
  filter_i_.load_state(r);
  filter_q_.load_state(r);
}

FrequencyShift::FrequencyShift(double freq_hz, double sample_rate)
    : step_(kTwoPi * freq_hz / sample_rate) {
  OFDM_REQUIRE(sample_rate > 0.0,
               "FrequencyShift: sample rate must be > 0");
}

void FrequencyShift::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] * cplx{std::cos(phase_), std::sin(phase_)};
    phase_ = std::fmod(phase_ + step_, kTwoPi);
  }
}

void FrequencyShift::reset() { phase_ = 0.0; }

void FrequencyShift::save_state(StateWriter& w) const { w.f64(phase_); }

void FrequencyShift::load_state(StateReader& r) { phase_ = r.f64(); }

DecimatorBlock::DecimatorBlock(std::size_t factor) : dec_(factor) {}

void DecimatorBlock::process(std::span<const cplx> in, cvec& out) {
  dec_.process(in, out);
}

void DecimatorBlock::reset() { dec_.reset(); }

void DecimatorBlock::save_state(StateWriter& w) const {
  dec_.save_state(w);
}

void DecimatorBlock::load_state(StateReader& r) { dec_.load_state(r); }

}  // namespace ofdm::rf
