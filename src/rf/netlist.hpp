// Netlist: a directed block graph with sources, fan-out and summing
// fan-in — the general form of the RF system simulator (Chain covers
// the linear case). Fan-in nodes sum their inputs, matching RF combiner
// semantics; fan-out broadcasts the same stream to every consumer.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rf/block.hpp"
#include "rf/chain.hpp"

namespace ofdm::rf {

class Netlist {
 public:
  /// Opaque node handle.
  struct NodeId {
    std::size_t index = SIZE_MAX;
  };

  /// Add a source node (no inputs allowed).
  template <typename T, typename... Args>
  NodeId add_source(Args&&... args) {
    return add_source_ptr(
        std::make_unique<T>(std::forward<Args>(args)...));
  }

  /// Add a processing node; returns its handle. Use node<T>() to read a
  /// sink back after a run.
  template <typename T, typename... Args>
  NodeId add_block(Args&&... args) {
    return add_block_ptr(std::make_unique<T>(std::forward<Args>(args)...));
  }

  NodeId add_source_ptr(std::unique_ptr<Source> src);
  NodeId add_block_ptr(std::unique_ptr<Block> block);

  /// Typed access to a node's block (e.g. reading a PowerMeter).
  template <typename T>
  T& node(NodeId id) {
    return dynamic_cast<T&>(*nodes_.at(id.index).block);
  }

  /// Wire an edge from -> to. `to` must be a block node.
  void connect(NodeId from, NodeId to);

  /// Drive every source for `total` samples in chunks, propagating
  /// through the graph in topological order. Throws on cycles, dangling
  /// block inputs, or mismatched fan-in lengths (e.g. summing across a
  /// rate changer). RunStats::samples_out accumulates what leaves leaf
  /// nodes (no consumers) per chunk.
  ///
  /// With opts.threads > 1 the topo order is partitioned into pipeline
  /// stages on worker threads connected by bounded SPSC chunk queues
  /// (rf/executor/executor.hpp); every stream is bit-identical to the
  /// sequential default, and run() returns only after the pipeline has
  /// drained and every worker joined, so snapshot()/restore() between
  /// runs stay bit-identical.
  RunStats run(std::size_t total, std::size_t chunk = 4096,
               const RunOptions& opts = {});

  /// Reset every node's streaming state.
  void reset();

  /// Register and attach one probe per node (sources included), in node
  /// insertion order. The set must outlive the netlist or
  /// detach_probes() must run first.
  void attach_probes(obs::ProbeSet& probes);

  /// Detach every node's probe.
  void detach_probes();

  /// Register and attach one numerical-health guard per node (sources
  /// included), in node insertion order; lifetime rules as for probes.
  void attach_guards(GuardSet& guards);

  /// Detach every node's guard.
  void detach_guards();

  /// Checkpoint: serialize every node's streaming state into a named,
  /// length-prefixed frame (plus a magic/version header), so a long run
  /// can be resumed bit-identically by restore().
  void snapshot(StateWriter& w) const;
  std::vector<std::uint8_t> snapshot() const;

  /// Restore a snapshot into this (identically built) graph; throws
  /// ofdm::StateError on a header/shape/name mismatch or truncation.
  void restore(StateReader& r);
  void restore(std::span<const std::uint8_t> bytes);

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::unique_ptr<Source> source;  // exactly one of source/block set
    std::unique_ptr<Block> block;
    std::vector<std::size_t> inputs;
    bool is_source() const { return source != nullptr; }
  };

  std::vector<std::size_t> topo_order() const;

  std::vector<Node> nodes_;
};

}  // namespace ofdm::rf
