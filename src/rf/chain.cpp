#include "rf/chain.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "rf/executor/executor.hpp"

namespace ofdm::rf {

void Chain::process(std::span<const cplx> in, cvec& out) {
  if (blocks_.empty()) {
    // Pass-through without the historical extra copy: the input lands
    // in the output buffer directly.
    out.assign(in.begin(), in.end());
    return;
  }
  // The first block consumes the caller's span directly; after that the
  // stream ping-pongs between `out` and `scratch_`. Parity is chosen so
  // the last block writes into `out`.
  cvec* bufs[2] = {&out, &scratch_};
  std::size_t cur = blocks_.size() % 2 == 1 ? 0 : 1;
  blocks_.front()->process_observed(in, *bufs[cur]);
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    blocks_[i]->process_observed(*bufs[cur], *bufs[cur ^ 1]);
    cur ^= 1;
  }
}

void Chain::reset() {
  for (auto& block : blocks_) block->reset();
}

Block& Chain::add_ptr(std::unique_ptr<Block> block) {
  OFDM_REQUIRE(block != nullptr, "Chain: null block");
  blocks_.push_back(std::move(block));
  return *blocks_.back();
}

void Chain::attach_probes(obs::ProbeSet& probes) {
  for (auto& block : blocks_) {
    block->set_probe(&probes.add(block->name()));
  }
}

void Chain::detach_probes() {
  for (auto& block : blocks_) block->set_probe(nullptr);
}

void Chain::attach_guards(GuardSet& guards) {
  for (auto& block : blocks_) {
    block->set_guard(&guards.add(block->name()));
  }
}

void Chain::detach_guards() {
  for (auto& block : blocks_) block->set_guard(nullptr);
}

void Chain::save_state(StateWriter& w) const {
  w.u64(blocks_.size());
  for (const auto& block : blocks_) {
    w.begin_node(block->name());
    block->save_state(w);
    w.end_node();
  }
}

void Chain::load_state(StateReader& r) {
  const std::uint64_t count = r.u64();
  if (count != blocks_.size()) {
    throw StateError("Chain: snapshot has " + std::to_string(count) +
                     " blocks, chain has " +
                     std::to_string(blocks_.size()));
  }
  for (auto& block : blocks_) {
    r.enter_node(block->name());
    block->load_state(r);
    r.exit_node();
  }
}

RunStats run(Source& source, Chain& chain, std::size_t total,
             std::size_t chunk, const RunOptions& opts) {
  using clock = std::chrono::steady_clock;
  OFDM_REQUIRE(chunk > 0 || total == 0,
               "rf::run: chunk size must be positive");
  if (opts.threads > 1 && chain.size() >= 1 && total > 0) {
    // Pipeline-parallel path: source + blocks as a linear topo order.
    std::vector<exec::WorkItem> items(chain.size() + 1);
    items.front().source = &source;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      items[i + 1].block = &chain.at(i);
      items[i + 1].inputs.push_back(i);
    }
    items.back().leaf = true;
    exec::PipelineExecutor executor(std::move(items), opts);
    return executor.run(total, chunk);
  }
  RunStats stats;
  const auto t0 = clock::now();
  cvec in;
  cvec out;
  std::size_t produced = 0;
  while (produced < total) {
    const std::size_t n = std::min(chunk, total - produced);
    const auto s0 = clock::now();
    source.pull_observed(n, in);
    const auto s1 = clock::now();
    stats.source_seconds += std::chrono::duration<double>(s1 - s0).count();
    chain.process(in, out);
    stats.block_seconds +=
        std::chrono::duration<double>(clock::now() - s1).count();
    stats.samples_in += in.size();
    stats.samples_out += out.size();
    produced += n;
  }
  stats.elapsed_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  return stats;
}

}  // namespace ofdm::rf
