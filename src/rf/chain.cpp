#include "rf/chain.hpp"

#include <chrono>

namespace ofdm::rf {

cvec Chain::process(std::span<const cplx> in) {
  cvec buf(in.begin(), in.end());
  for (auto& block : blocks_) {
    buf = block->process(buf);
  }
  return buf;
}

void Chain::reset() {
  for (auto& block : blocks_) block->reset();
}

RunStats run(Source& source, Chain& chain, std::size_t total,
             std::size_t chunk) {
  using clock = std::chrono::steady_clock;
  RunStats stats;
  const auto t0 = clock::now();
  std::size_t produced = 0;
  while (produced < total) {
    const std::size_t n = std::min(chunk, total - produced);
    const auto s0 = clock::now();
    const cvec in = source.pull(n);
    stats.source_seconds +=
        std::chrono::duration<double>(clock::now() - s0).count();
    const cvec out = chain.process(in);
    stats.samples_in += in.size();
    stats.samples_out += out.size();
    produced += n;
  }
  stats.elapsed_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  return stats;
}

}  // namespace ofdm::rf
