#include "rf/channel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/serial.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::rf {

AwgnChannel::AwgnChannel(double noise_power, std::uint64_t seed)
    : noise_power_(noise_power), rng_(seed), seed_(seed) {
  OFDM_REQUIRE(noise_power >= 0.0,
               "AwgnChannel: noise power must be non-negative");
}

void AwgnChannel::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  noise_.resize(in.size());
  rng_.complex_gaussian_fill(noise_, noise_power_);
  simd::kernels().cvec_add(in.data(), noise_.data(), out.data(),
                           in.size());
}

void AwgnChannel::reset() { rng_ = Rng(seed_); }

void AwgnChannel::save_state(StateWriter& w) const { rng_.save(w); }

void AwgnChannel::load_state(StateReader& r) { rng_.load(r); }

double snr_to_noise_power(double signal_power, double snr_db) {
  OFDM_REQUIRE(signal_power >= 0.0,
               "snr_to_noise_power: signal power must be non-negative");
  return signal_power / from_db(snr_db);
}

MultipathChannel::MultipathChannel(cvec taps) : taps_(std::move(taps)) {
  OFDM_REQUIRE(!taps_.empty(), "MultipathChannel: empty tap vector");
  history_.assign(taps_.size(), cplx{0.0, 0.0});
}

void MultipathChannel::process(std::span<const cplx> in, cvec& out) {
  const std::size_t n_taps = taps_.size();
  out.resize(in.size());
  if (in.empty()) return;
  // Same window layout as dsp::FirFilter: [taps-1 history | chunk],
  // handed to the complex-tap FIR kernel in one call.
  const std::size_t hist = n_taps - 1;
  window_.resize(hist + in.size());
  std::copy(history_.end() - static_cast<std::ptrdiff_t>(hist),
            history_.end(), window_.begin());
  std::copy(in.begin(), in.end(),
            window_.begin() + static_cast<std::ptrdiff_t>(hist));
  simd::kernels().fir_cc(window_.data(), taps_.data(), n_taps,
                         out.data(), in.size());
  if (in.size() >= n_taps) {
    std::copy(in.end() - static_cast<std::ptrdiff_t>(n_taps), in.end(),
              history_.begin());
  } else {
    std::move(history_.begin() + static_cast<std::ptrdiff_t>(in.size()),
              history_.end(), history_.begin());
    std::copy(in.begin(), in.end(),
              history_.end() - static_cast<std::ptrdiff_t>(in.size()));
  }
}

void MultipathChannel::reset() {
  history_.assign(taps_.size(), cplx{0.0, 0.0});
}

void MultipathChannel::save_state(StateWriter& w) const {
  // Kept in the historical circular-delay-line format (newest at
  // head_, canonically 0) so snapshots round-trip across versions.
  const std::size_t n_taps = taps_.size();
  cvec delay(n_taps);
  for (std::size_t k = 0; k < n_taps; ++k) {
    delay[k] = history_[n_taps - 1 - k];
  }
  w.vec_c(delay);
  w.u64(0);
}

void MultipathChannel::load_state(StateReader& r) {
  cvec delay;
  r.vec_c(delay);
  if (delay.size() != taps_.size()) {
    throw StateError("MultipathChannel::load_state: snapshot has " +
                     std::to_string(delay.size()) +
                     " delay-line entries, channel has " +
                     std::to_string(taps_.size()) + " taps");
  }
  const std::size_t head = r.u64();
  const std::size_t n_taps = taps_.size();
  for (std::size_t j = 0; j < n_taps; ++j) {
    history_[j] = delay[(head + n_taps - 1 - j) % n_taps];
  }
}

cvec exponential_pdp_taps(double rms_delay_samples, std::size_t n_taps,
                          std::uint64_t seed) {
  OFDM_REQUIRE(rms_delay_samples > 0.0 && n_taps >= 1,
               "exponential_pdp_taps: invalid profile");
  Rng rng(seed);
  cvec taps(n_taps);
  double total = 0.0;
  for (std::size_t k = 0; k < n_taps; ++k) {
    const double power =
        std::exp(-static_cast<double>(k) / rms_delay_samples);
    taps[k] = rng.complex_gaussian(power);
    total += std::norm(taps[k]);
  }
  const double norm = 1.0 / std::sqrt(total);
  for (cplx& t : taps) t *= norm;
  return taps;
}

cvec twisted_pair_taps(double cutoff_norm, double attenuation_db,
                       std::size_t n_taps) {
  const rvec lp = dsp::design_lowpass(cutoff_norm, n_taps);
  const double gain = std::sqrt(from_db(-attenuation_db));
  cvec taps(lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    taps[i] = {lp[i] * gain, 0.0};
  }
  return taps;
}

}  // namespace ofdm::rf
