#include "rf/channel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/serial.hpp"

namespace ofdm::rf {

AwgnChannel::AwgnChannel(double noise_power, std::uint64_t seed)
    : noise_power_(noise_power), rng_(seed), seed_(seed) {
  OFDM_REQUIRE(noise_power >= 0.0,
               "AwgnChannel: noise power must be non-negative");
}

void AwgnChannel::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] + rng_.complex_gaussian(noise_power_);
  }
}

void AwgnChannel::reset() { rng_ = Rng(seed_); }

void AwgnChannel::save_state(StateWriter& w) const { rng_.save(w); }

void AwgnChannel::load_state(StateReader& r) { rng_.load(r); }

double snr_to_noise_power(double signal_power, double snr_db) {
  OFDM_REQUIRE(signal_power >= 0.0,
               "snr_to_noise_power: signal power must be non-negative");
  return signal_power / from_db(snr_db);
}

MultipathChannel::MultipathChannel(cvec taps) : taps_(std::move(taps)) {
  OFDM_REQUIRE(!taps_.empty(), "MultipathChannel: empty tap vector");
  delay_.assign(taps_.size(), cplx{0.0, 0.0});
}

void MultipathChannel::process(std::span<const cplx> in, cvec& out) {
  const std::size_t n_taps = taps_.size();
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    head_ = (head_ + n_taps - 1) % n_taps;
    delay_[head_] = in[i];
    cplx acc{0.0, 0.0};
    std::size_t idx = head_;
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc += delay_[idx] * taps_[t];
      idx = (idx + 1) % n_taps;
    }
    out[i] = acc;
  }
}

void MultipathChannel::reset() {
  delay_.assign(taps_.size(), cplx{0.0, 0.0});
  head_ = 0;
}

void MultipathChannel::save_state(StateWriter& w) const {
  w.vec_c(delay_);
  w.u64(head_);
}

void MultipathChannel::load_state(StateReader& r) {
  cvec delay;
  r.vec_c(delay);
  if (delay.size() != taps_.size()) {
    throw StateError("MultipathChannel::load_state: snapshot has " +
                     std::to_string(delay.size()) +
                     " delay-line entries, channel has " +
                     std::to_string(taps_.size()) + " taps");
  }
  delay_ = std::move(delay);
  head_ = r.u64();
}

cvec exponential_pdp_taps(double rms_delay_samples, std::size_t n_taps,
                          std::uint64_t seed) {
  OFDM_REQUIRE(rms_delay_samples > 0.0 && n_taps >= 1,
               "exponential_pdp_taps: invalid profile");
  Rng rng(seed);
  cvec taps(n_taps);
  double total = 0.0;
  for (std::size_t k = 0; k < n_taps; ++k) {
    const double power =
        std::exp(-static_cast<double>(k) / rms_delay_samples);
    taps[k] = rng.complex_gaussian(power);
    total += std::norm(taps[k]);
  }
  const double norm = 1.0 / std::sqrt(total);
  for (cplx& t : taps) t *= norm;
  return taps;
}

cvec twisted_pair_taps(double cutoff_norm, double attenuation_db,
                       std::size_t n_taps) {
  const rvec lp = dsp::design_lowpass(cutoff_norm, n_taps);
  const double gain = std::sqrt(from_db(-attenuation_db));
  cvec taps(lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    taps[i] = {lp[i] * gain, 0.0};
  }
  return taps;
}

}  // namespace ofdm::rf
