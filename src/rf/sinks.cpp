#include "rf/sinks.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/serial.hpp"

namespace ofdm::rf {

void PowerMeter::process(std::span<const cplx> in, cvec& out) {
  for (const cplx& v : in) {
    const double p = std::norm(v);
    acc_ += p;
    peak_ = std::max(peak_, p);
  }
  count_ += in.size();
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void PowerMeter::reset() {
  acc_ = 0.0;
  peak_ = 0.0;
  count_ = 0;
}

double PowerMeter::average_power() const {
  return count_ > 0 ? acc_ / static_cast<double>(count_) : 0.0;
}

double PowerMeter::papr_db() const {
  const double avg = average_power();
  return avg > 0.0 ? to_db(peak_ / avg) : 0.0;
}

void PowerMeter::save_state(StateWriter& w) const {
  w.f64(acc_);
  w.f64(peak_);
  w.u64(count_);
}

void PowerMeter::load_state(StateReader& r) {
  acc_ = r.f64();
  peak_ = r.f64();
  count_ = r.u64();
}

Capture::Capture(std::size_t max_samples) : max_samples_(max_samples) {}

void Capture::process(std::span<const cplx> in, cvec& out) {
  const std::size_t room =
      max_samples_ > buffer_.size() ? max_samples_ - buffer_.size() : 0;
  const std::size_t take = std::min(room, in.size());
  buffer_.insert(buffer_.end(), in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(take));
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void Capture::reset() { buffer_.clear(); }

void Capture::save_state(StateWriter& w) const { w.vec_c(buffer_); }

void Capture::load_state(StateReader& r) { r.vec_c(buffer_); }

SpectrumAnalyzer::SpectrumAnalyzer(dsp::WelchConfig cfg,
                                   std::size_t max_samples)
    : cfg_(cfg), max_samples_(max_samples) {}

void SpectrumAnalyzer::process(std::span<const cplx> in, cvec& out) {
  const std::size_t room =
      max_samples_ > buffer_.size() ? max_samples_ - buffer_.size() : 0;
  const std::size_t take = std::min(room, in.size());
  buffer_.insert(buffer_.end(), in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(take));
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void SpectrumAnalyzer::reset() { buffer_.clear(); }

void SpectrumAnalyzer::save_state(StateWriter& w) const {
  w.vec_c(buffer_);
}

void SpectrumAnalyzer::load_state(StateReader& r) { r.vec_c(buffer_); }

dsp::Psd SpectrumAnalyzer::psd() const { return dsp::welch_psd(buffer_, cfg_); }

}  // namespace ofdm::rf
