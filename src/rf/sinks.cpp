#include "rf/sinks.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace ofdm::rf {

void PowerMeter::process(std::span<const cplx> in, cvec& out) {
  for (const cplx& v : in) {
    const double p = std::norm(v);
    acc_ += p;
    peak_ = std::max(peak_, p);
  }
  count_ += in.size();
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void PowerMeter::reset() {
  acc_ = 0.0;
  peak_ = 0.0;
  count_ = 0;
}

double PowerMeter::average_power() const {
  return count_ > 0 ? acc_ / static_cast<double>(count_) : 0.0;
}

double PowerMeter::papr_db() const {
  const double avg = average_power();
  return avg > 0.0 ? to_db(peak_ / avg) : 0.0;
}

Capture::Capture(std::size_t max_samples) : max_samples_(max_samples) {}

void Capture::process(std::span<const cplx> in, cvec& out) {
  const std::size_t room =
      max_samples_ > buffer_.size() ? max_samples_ - buffer_.size() : 0;
  const std::size_t take = std::min(room, in.size());
  buffer_.insert(buffer_.end(), in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(take));
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void Capture::reset() { buffer_.clear(); }

SpectrumAnalyzer::SpectrumAnalyzer(dsp::WelchConfig cfg,
                                   std::size_t max_samples)
    : cfg_(cfg), max_samples_(max_samples) {}

void SpectrumAnalyzer::process(std::span<const cplx> in, cvec& out) {
  const std::size_t room =
      max_samples_ > buffer_.size() ? max_samples_ - buffer_.size() : 0;
  const std::size_t take = std::min(room, in.size());
  buffer_.insert(buffer_.end(), in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(take));
  if (out.data() != in.data()) out.assign(in.begin(), in.end());
}

void SpectrumAnalyzer::reset() { buffer_.clear(); }

dsp::Psd SpectrumAnalyzer::psd() const { return dsp::welch_psd(buffer_, cfg_); }

}  // namespace ofdm::rf
