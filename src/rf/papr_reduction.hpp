// PAPR reduction by iterated clipping-and-filtering.
//
// OFDM's Gaussian-like envelope forces the PA back-off that experiment
// E4 sweeps; clipping the envelope and filtering away the resulting
// out-of-band regrowth trades a little EVM for several dB of PAPR —
// letting the PA run closer to saturation. This block sits between the
// Mother Model source and the PA in the TX chain.
#pragma once

#include "dsp/fir.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

class ClipAndFilter : public Block {
 public:
  /// `target_papr_db`: clip level relative to the running average
  /// power. `cutoff`: normalized lowpass cutoff (cycles/sample) chosen
  /// to match the signal's occupied bandwidth. `iterations`: repeated
  /// clip+filter rounds (regrowth shrinks per round).
  ClipAndFilter(double target_papr_db, double cutoff,
                std::size_t iterations = 2, std::size_t taps = 63);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "clip-filter"; }

  double clip_level_for(double avg_power) const;

 private:
  double target_ratio_;  // linear peak/average ratio
  std::size_t iterations_;
  std::vector<dsp::FirFilter> filters_;  // one per iteration
  cvec padded_;  // reusable group-delay-padded work buffer
};

}  // namespace ofdm::rf
