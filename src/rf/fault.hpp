// Fault-injection blocks: deterministic, seeded ways to break a graph
// on purpose, so guard policies, error paths, and recovery logic are
// exercised by real runs instead of trusted on faith.
//
//   FlakyBlock     — wraps any block and corrupts one output sample
//                    every N chunks (NaN, Inf, or a huge finite spike).
//   BurstNoise     — periodic high-power noise bursts at fixed stream
//                    positions (chunking-invariant).
//   SampleDropper  — deletes (or zero-fills) every Nth sample; the
//                    deleting mode breaks the 1:1 rate contract and
//                    drives the graph's fan-in containment checks.
//   StallingSource — wraps a source and stalls the wall clock every N
//                    pulls, emulating a co-simulation partner that
//                    stops answering promptly.
#pragma once

#include <chrono>
#include <memory>

#include "common/rng.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

/// Wraps any block; after every `every_n_chunks`-th process() call one
/// output sample (at a deterministically seeded position) is replaced
/// by the configured fault value. every_n_chunks == 0 never fires.
class FlakyBlock : public Block {
 public:
  enum class Fault { kNaN, kInf, kHuge };

  FlakyBlock(std::unique_ptr<Block> inner, std::size_t every_n_chunks,
             Fault fault = Fault::kNaN, std::uint64_t seed = 0xF417);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override;

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t faults_injected() const { return faults_; }
  /// Absolute output-stream offset of the most recent injected fault
  /// (meaningful once faults_injected() > 0) — what a Throw-policy
  /// guard must report back.
  std::uint64_t last_fault_offset() const { return last_offset_; }

  Block& inner() { return *inner_; }

 private:
  std::unique_ptr<Block> inner_;
  std::size_t every_;
  Fault fault_;
  Rng rng_;
  std::uint64_t seed_;
  std::size_t chunks_ = 0;
  std::uint64_t samples_out_ = 0;
  std::size_t faults_ = 0;
  std::uint64_t last_offset_ = 0;
};

/// Adds strong white noise for `burst_len` samples at the start of
/// every `period`-sample window. Burst positions depend only on the
/// stream position, so chunk boundaries do not move them.
class BurstNoise : public Block {
 public:
  BurstNoise(std::size_t period, std::size_t burst_len, double power,
             std::uint64_t seed = 0xB125);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "burst-noise"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t bursts() const { return bursts_; }

 private:
  std::size_t period_;
  std::size_t burst_len_;
  double power_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t pos_ = 0;
  std::size_t bursts_ = 0;
};

/// Deletes every `drop_every`-th sample. With zero_fill the dropped
/// sample is replaced by silence (rate preserved); without it the
/// output chunk is shorter than the input — the sample-loss fault that
/// summing fan-in must reject rather than silently misalign.
class SampleDropper : public Block {
 public:
  explicit SampleDropper(std::size_t drop_every, bool zero_fill = false);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "sample-dropper"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t drop_every_;
  bool zero_fill_;
  std::uint64_t pos_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Wraps a source; every `every_n_pulls`-th pull() blocks the calling
/// thread for `stall` before producing, emulating a slow or wedged
/// co-simulation partner. The sample stream itself is untouched.
class StallingSource : public Source {
 public:
  StallingSource(std::unique_ptr<Source> inner, std::size_t every_n_pulls,
                 std::chrono::microseconds stall);

  using Source::pull;
  void pull(std::size_t n, cvec& out) override;
  void reset() override;
  std::string name() const override;

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  std::size_t stalls() const { return stalls_; }

  Source& inner() { return *inner_; }

 private:
  std::unique_ptr<Source> inner_;
  std::size_t every_;
  std::chrono::microseconds stall_;
  std::size_t pulls_ = 0;
  std::size_t stalls_ = 0;
};

}  // namespace ofdm::rf
