// The RF system simulator's block abstraction.
//
// This module plays APLAC's role in the paper: a block-based RF system
// simulator into which the digital Mother Model is embedded as a signal
// source. Blocks stream chunks of complex baseband (or real passband,
// carried in the real part) samples; sources produce them on demand.
//
// Streaming is allocation-free in steady state: the buffered overloads
// write into caller-owned vectors that are reused chunk after chunk, so
// after warm-up no block on the hot path touches the heap.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/probe.hpp"

namespace ofdm {
class StateWriter;
class StateReader;
}  // namespace ofdm

namespace ofdm::rf {

class NumericGuard;

/// A signal-processing block. Implementations keep their own streaming
/// state so that chunked processing equals one-shot processing.
///
/// Exactly one of the two process() overloads must be overridden (each
/// default forwards to the other): the buffered form is the hot path,
/// the allocating form a convenience. Sample-wise 1:1 blocks accept `in`
/// aliasing `out`'s storage exactly (in.data() == out.data()); rate
/// changers and Chain require distinct buffers.
class Block {
 public:
  virtual ~Block() = default;

  /// Transform one chunk into `out`, resizing it to the output length.
  /// Most blocks are 1:1 in sample count; rate changers (DAC
  /// interpolation, decimation) are not.
  virtual void process(std::span<const cplx> in, cvec& out);

  /// Allocating convenience form (legacy API).
  virtual cvec process(std::span<const cplx> in);

  /// Clear streaming state.
  virtual void reset() {}

  /// Display name for simulation reports.
  virtual std::string name() const = 0;

  /// Checkpoint/restore: serialize the block's streaming state (RNG
  /// cursors, delay lines, phase accumulators) so a long run can
  /// snapshot and later resume bit-identically in a freshly built,
  /// identically configured graph. Stateless blocks inherit the no-op
  /// defaults; stateful overrides must read back exactly what they
  /// wrote, in the same order.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}

  /// Attach (nullptr detaches) an observability probe. The probe — and
  /// the obs::ProbeSet that owns it — must outlive the block, or be
  /// detached first. Chain/Netlist::attach_probes() wires whole graphs.
  void set_probe(obs::BlockProbe* probe) { probe_ = probe; }
  obs::BlockProbe* probe() const { return probe_; }

  /// Attach (nullptr detaches) a numerical-health guard; lifetime rules
  /// are as for probes (the owning GuardSet must outlive the block).
  /// Chain/Netlist::attach_guards() wires whole graphs.
  void set_guard(NumericGuard* guard) { guard_ = guard; }
  NumericGuard* guard() const { return guard_; }

  /// Instrumented entry point used by Chain/Netlist and other drivers:
  /// forwards to process(), and when a probe is attached or the global
  /// tracer is enabled, also times the call and updates the counters /
  /// emits a trace span. An attached guard then sweeps the output chunk
  /// (and may repair it or throw ofdm::StreamError, per its policy).
  /// With nothing attached, the extra cost is a few predictable
  /// branches — the datapath stays allocation-free either way.
  void process_observed(std::span<const cplx> in, cvec& out);

 private:
  obs::BlockProbe* probe_ = nullptr;
  NumericGuard* guard_ = nullptr;
  std::string trace_label_;  // cached name() for stable span naming
};

/// A signal source: produces samples on demand (the paper's "signal
/// source block" role, filled by the wrapped Mother Model). As with
/// Block, override exactly one pull() overload.
class Source {
 public:
  virtual ~Source() = default;

  /// Produce exactly n samples into `out` (resized).
  virtual void pull(std::size_t n, cvec& out);

  /// Allocating convenience form (legacy API).
  virtual cvec pull(std::size_t n);

  virtual void reset() {}
  virtual std::string name() const = 0;

  /// Checkpoint/restore; see Block::save_state.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}

  /// As Block::set_probe: samples_in stays 0 (a source consumes sample
  /// requests, not a stream).
  void set_probe(obs::BlockProbe* probe) { probe_ = probe; }
  obs::BlockProbe* probe() const { return probe_; }

  /// As Block::set_guard: the guard sweeps what the source produces.
  void set_guard(NumericGuard* guard) { guard_ = guard; }
  NumericGuard* guard() const { return guard_; }

  /// Instrumented pull; see Block::process_observed.
  void pull_observed(std::size_t n, cvec& out);

 private:
  obs::BlockProbe* probe_ = nullptr;
  NumericGuard* guard_ = nullptr;
  std::string trace_label_;
};

}  // namespace ofdm::rf
