// The RF system simulator's block abstraction.
//
// This module plays APLAC's role in the paper: a block-based RF system
// simulator into which the digital Mother Model is embedded as a signal
// source. Blocks stream chunks of complex baseband (or real passband,
// carried in the real part) samples; sources produce them on demand.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofdm::rf {

/// A signal-processing block. Implementations keep their own streaming
/// state so that chunked processing equals one-shot processing.
class Block {
 public:
  virtual ~Block() = default;

  /// Transform one chunk. Most blocks are 1:1 in sample count; rate
  /// changers (DAC interpolation, decimation) are not.
  virtual cvec process(std::span<const cplx> in) = 0;

  /// Clear streaming state.
  virtual void reset() {}

  /// Display name for simulation reports.
  virtual std::string name() const = 0;
};

/// A signal source: produces samples on demand (the paper's "signal
/// source block" role, filled by the wrapped Mother Model).
class Source {
 public:
  virtual ~Source() = default;

  /// Produce exactly n samples.
  virtual cvec pull(std::size_t n) = 0;

  virtual void reset() {}
  virtual std::string name() const = 0;
};

}  // namespace ofdm::rf
