#include "rf/pa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::rf {

void Nonlinearity::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double r = std::abs(in[i]);
    if (r < 1e-300) {
      out[i] = {0.0, 0.0};
      continue;
    }
    const double a = am_am(r);
    const double dphi = am_pm(r);
    const cplx unit = in[i] / r;
    out[i] = unit * a * cplx{std::cos(dphi), std::sin(dphi)};
  }
}

RappPa::RappPa(double smoothness, double v_sat, double gain)
    : smoothness_(smoothness), v_sat_(v_sat), gain_(gain) {
  OFDM_REQUIRE(smoothness > 0.0 && v_sat > 0.0 && gain > 0.0,
               "RappPa: parameters must be positive");
}

double RappPa::am_am(double r) const {
  const double x = gain_ * r;
  const double ratio = std::pow(x / v_sat_, 2.0 * smoothness_);
  return x / std::pow(1.0 + ratio, 1.0 / (2.0 * smoothness_));
}

SalehPa::SalehPa(double alpha_a, double beta_a, double alpha_p,
                 double beta_p)
    : alpha_a_(alpha_a), beta_a_(beta_a), alpha_p_(alpha_p),
      beta_p_(beta_p) {}

double SalehPa::am_am(double r) const {
  return alpha_a_ * r / (1.0 + beta_a_ * r * r);
}

double SalehPa::am_pm(double r) const {
  return alpha_p_ * r * r / (1.0 + beta_p_ * r * r);
}

SoftClipPa::SoftClipPa(double clip_level) : clip_(clip_level) {
  OFDM_REQUIRE(clip_level > 0.0, "SoftClipPa: clip level must be positive");
}

double SoftClipPa::am_am(double r) const {
  return r < clip_ ? r : clip_;
}

Gain::Gain(double gain_db) : lin_(std::sqrt(from_db(gain_db))) {}

void Gain::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * lin_;
}

}  // namespace ofdm::rf
