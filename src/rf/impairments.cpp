#include "rf/impairments.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace ofdm::rf {

IqImbalance::IqImbalance(double gain_error_db, double phase_error_deg) {
  const double g = std::sqrt(from_db(gain_error_db));
  const double phi = phase_error_deg * kPi / 180.0;
  const cplx ge{g * std::cos(phi), g * std::sin(phi)};
  mu_ = (1.0 + ge) / 2.0;
  nu_ = (1.0 - ge) / 2.0;
}

void IqImbalance::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = mu_ * in[i] + nu_ * std::conj(in[i]);
  }
}

double IqImbalance::image_rejection_db() const {
  return to_db(std::norm(mu_) / std::norm(nu_));
}

DcOffset::DcOffset(cplx offset) : offset_(offset) {}

void DcOffset::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] + offset_;
}

PhaseNoise::PhaseNoise(double linewidth_hz, double sample_rate,
                       std::uint64_t seed)
    : lo_(0.0, sample_rate, 0.0, linewidth_hz, seed) {}

void PhaseNoise::process(std::span<const cplx> in, cvec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * lo_.next();
}

void PhaseNoise::reset() { lo_.reset(); }

void PhaseNoise::save_state(StateWriter& w) const { lo_.save(w); }

void PhaseNoise::load_state(StateReader& r) { lo_.load(r); }

}  // namespace ofdm::rf
