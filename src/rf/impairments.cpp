#include "rf/impairments.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace ofdm::rf {

IqImbalance::IqImbalance(double gain_error_db, double phase_error_deg) {
  const double g = std::sqrt(from_db(gain_error_db));
  const double phi = phase_error_deg * kPi / 180.0;
  const cplx ge{g * std::cos(phi), g * std::sin(phi)};
  mu_ = (1.0 + ge) / 2.0;
  nu_ = (1.0 - ge) / 2.0;
}

cvec IqImbalance::process(std::span<const cplx> in) {
  cvec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = mu_ * in[i] + nu_ * std::conj(in[i]);
  }
  return out;
}

double IqImbalance::image_rejection_db() const {
  return to_db(std::norm(mu_) / std::norm(nu_));
}

DcOffset::DcOffset(cplx offset) : offset_(offset) {}

cvec DcOffset::process(std::span<const cplx> in) {
  cvec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] + offset_;
  return out;
}

PhaseNoise::PhaseNoise(double linewidth_hz, double sample_rate,
                       std::uint64_t seed)
    : lo_(0.0, sample_rate, 0.0, linewidth_hz, seed) {}

cvec PhaseNoise::process(std::span<const cplx> in) {
  cvec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * lo_.next();
  return out;
}

void PhaseNoise::reset() { lo_.reset(); }

}  // namespace ofdm::rf
