// Measurement sinks — pass-through blocks that record what flows past,
// mirroring an RF simulator's meters and analyzers.
#pragma once

#include "dsp/spectrum.hpp"
#include "rf/block.hpp"

namespace ofdm::rf {

/// Running power meter: average and peak power of everything seen.
class PowerMeter : public Block {
 public:
  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "power-meter"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  double average_power() const;
  double peak_power() const { return peak_; }
  double papr_db() const;
  std::size_t samples() const { return count_; }

 private:
  double acc_ = 0.0;
  double peak_ = 0.0;
  std::size_t count_ = 0;
};

/// Captures all samples that flow through (bounded by `max_samples`).
class Capture : public Block {
 public:
  explicit Capture(std::size_t max_samples = SIZE_MAX);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "capture"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  const cvec& samples() const { return buffer_; }

 private:
  std::size_t max_samples_;
  cvec buffer_;
};

/// Spectrum analyzer: accumulates samples and computes a Welch PSD on
/// demand.
class SpectrumAnalyzer : public Block {
 public:
  explicit SpectrumAnalyzer(dsp::WelchConfig cfg,
                            std::size_t max_samples = 1u << 22);

  using Block::process;
  void process(std::span<const cplx> in, cvec& out) override;
  void reset() override;
  std::string name() const override { return "spectrum-analyzer"; }

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// PSD of everything captured so far.
  dsp::Psd psd() const;
  std::size_t samples() const { return buffer_.size(); }

 private:
  dsp::WelchConfig cfg_;
  std::size_t max_samples_;
  cvec buffer_;
};

}  // namespace ofdm::rf
