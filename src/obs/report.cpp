#include "obs/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace ofdm::obs {

double Report::attributed_fraction() const {
  if (total_seconds <= 0.0) return 1.0;
  return attributed_seconds / total_seconds;
}

Report Report::from(const ProbeSet& probes, double total_seconds) {
  Report r;
  r.total_seconds = total_seconds;
  for (const BlockProbe& p : probes) {
    Row row;
    row.name = p.name();
    row.invocations = p.invocations();
    row.samples_in = p.samples_in();
    row.samples_out = p.samples_out();
    row.busy_seconds = p.busy_seconds();
    row.throughput_msps = p.throughput_msps();
    row.wall_fraction =
        total_seconds > 0.0 ? p.busy_seconds() / total_seconds : 0.0;
    row.peak_magnitude = p.peak_magnitude();
    row.clip_events = p.clip_events();
    row.output_hash = p.hashing() ? p.output_hash() : 0;
    // The probe's own scan/hash time is part of the instrumented run's
    // wall clock; attribute it (as observer cost) without folding it
    // into the block's busy time and throughput.
    r.attributed_seconds += row.busy_seconds + p.overhead_seconds();
    r.probe_seconds += p.overhead_seconds();
    r.rows.push_back(std::move(row));
  }
  return r;
}

Report Report::from(const ProbeSet& probes, double total_seconds,
                    std::vector<StageStats> stage_stats) {
  Report r = from(probes, total_seconds);
  r.stages = std::move(stage_stats);
  return r;
}

std::string Report::table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %10s %12s %12s %9s %7s %8s %6s\n",
                "block", "calls", "in", "out", "Msps", "wall%", "peak",
                "clips");
  out += line;
  for (const Row& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-22s %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                  " %9.2f %6.1f%% %8.3f %6" PRIu64 "\n",
                  r.name.c_str(), r.invocations, r.samples_in,
                  r.samples_out, r.throughput_msps,
                  100.0 * r.wall_fraction, r.peak_magnitude, r.clip_events);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "attributed %.1f%% of %.3f ms wall time to %zu blocks"
                " (probe overhead %.3f ms)\n",
                100.0 * attributed_fraction(), total_seconds * 1e3,
                rows.size(), probe_seconds * 1e3);
  out += line;
  if (!stages.empty()) {
    std::snprintf(line, sizeof(line), "%-10s %7s %10s %12s %12s %7s\n",
                  "stage", "items", "chunks", "busy_ms", "stall_ms",
                  "busy%");
    out += line;
    for (const StageStats& s : stages) {
      const double span = s.busy_seconds + s.stall_seconds;
      std::snprintf(line, sizeof(line),
                    "%-10s %7zu %10" PRIu64 " %12.3f %12.3f %6.1f%%\n",
                    s.name.c_str(), s.blocks, s.chunks,
                    s.busy_seconds * 1e3, s.stall_seconds * 1e3,
                    span > 0.0 ? 100.0 * s.busy_seconds / span : 0.0);
      out += line;
    }
  }
  return out;
}

std::string Report::to_json() const {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\n \"total_seconds\": %.9f,\n"
                " \"attributed_seconds\": %.9f,\n"
                " \"probe_seconds\": %.9f,\n"
                " \"attributed_fraction\": %.6f,\n \"blocks\": [",
                total_seconds, attributed_seconds, probe_seconds,
                attributed_fraction());
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n  {\"name\": \"%s\", \"invocations\": %" PRIu64
        ", \"samples_in\": %" PRIu64 ", \"samples_out\": %" PRIu64
        ", \"busy_seconds\": %.9f, \"throughput_msps\": %.4f"
        ", \"wall_fraction\": %.6f, \"peak_magnitude\": %.6f"
        ", \"clip_events\": %" PRIu64 ", \"output_hash\": \"%016" PRIx64
        "\"}",
        i == 0 ? "" : ",", r.name.c_str(), r.invocations, r.samples_in,
        r.samples_out, r.busy_seconds, r.throughput_msps, r.wall_fraction,
        r.peak_magnitude, r.clip_events, r.output_hash);
    out += buf;
  }
  out += "\n ]";
  if (!stages.empty()) {
    out += ",\n \"stages\": [";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const StageStats& s = stages[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n  {\"name\": \"%s\", \"blocks\": %zu"
                    ", \"chunks\": %" PRIu64
                    ", \"busy_seconds\": %.9f, \"stall_seconds\": %.9f}",
                    i == 0 ? "" : ",", s.name.c_str(), s.blocks, s.chunks,
                    s.busy_seconds, s.stall_seconds);
      out += buf;
    }
    out += "\n ]";
  }
  out += "\n}\n";
  return out;
}

}  // namespace ofdm::obs
