#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

namespace ofdm::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t Tracer::thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard lk(control_);
  ring_.assign(std::max<std::size_t>(capacity, 1), TraceEvent{});
  head_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() {
  std::lock_guard lk(control_);
  enabled_.store(false, std::memory_order_release);
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  if (!enabled()) return;
  const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& e = ring_[slot % ring_.size()];
  e.name = name;
  e.tid = thread_index();
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lk(control_);
  const std::uint64_t total = head_.load(std::memory_order_relaxed);
  const std::size_t cap = ring_.size();
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, cap));
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest surviving span first. When wrapped, that is slot head % cap.
  const std::uint64_t first = total > cap ? total - cap : 0;
  for (std::uint64_t i = first; i < total; ++i) {
    out.push_back(ring_[i % cap]);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard lk(control_);
  head_.store(0, std::memory_order_relaxed);
}

namespace {
// Minimal JSON string escaping for span names.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}
}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    if (!first) os << ",";
    first = false;
    // Chrome trace timestamps are microseconds; keep sub-us precision.
    os << "\n{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.start_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3 << "}";
  }
  os << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace ofdm::obs
