// Per-block instrumentation for the streaming RF datapath.
//
// A ProbeSet is attached to a Chain or Netlist (or to individual blocks)
// and from then on every observed process()/pull() call updates a
// BlockProbe: samples in/out, invocation count, cumulative busy time,
// peak |sample| and clip events on the output, and — in golden-trace
// capture mode — a rolling 64-bit hash of the output stream.
//
// Cost model: with no probe attached the observed call path is a single
// pointer test. With a probe attached, counter updates are plain member
// arithmetic and the optional signal scan is one pass over the output
// chunk; nothing here allocates, so an instrumented steady-state run
// stays allocation-free (test_zero_alloc covers this).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <span>
#include <string>

#include "common/types.hpp"
#include "obs/scan.hpp"
#include "obs/stream_hash.hpp"

namespace ofdm::obs {

/// What an attached probe measures beyond the free counters.
struct ProbeConfig {
  /// Scan output chunks for peak |sample| and clip events.
  bool measure_signal = true;
  /// Golden-trace capture: rolling hash of every output sample.
  bool hash_output = false;
  /// |sample| above which an output sample counts as a clip event.
  double clip_threshold = 1.0;
};

/// Counters for one observed block (or source). Addresses are stable for
/// the lifetime of the owning ProbeSet.
class BlockProbe {
 public:
  BlockProbe(std::string name, const ProbeConfig* cfg)
      : name_(std::move(name)), cfg_(cfg) {}

  /// Fold one observed call into the counters. `in` may be empty for
  /// sources (their input is a sample request, not a stream).
  void record(std::span<const cplx> in, std::span<const cplx> out,
              std::uint64_t busy_ns) {
    ++invocations_;
    samples_in_ += in.size();
    samples_out_ += out.size();
    busy_ns_ += busy_ns;
    if (!cfg_->measure_signal && !cfg_->hash_output) return;
    // The signal scan and hash are observer work, not block work: time
    // them separately so a Report can attribute the whole instrumented
    // wall clock without inflating any block's own throughput.
    using clock = std::chrono::steady_clock;
    const auto scan0 = clock::now();
    if (cfg_->measure_signal) {
      scan_peak_clip(out, cfg_->clip_threshold, peak_power_, clip_events_);
    }
    if (cfg_->hash_output) hash_.update(out);
    overhead_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             scan0)
            .count());
  }

  const std::string& name() const { return name_; }
  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t samples_in() const { return samples_in_; }
  std::uint64_t samples_out() const { return samples_out_; }
  std::uint64_t busy_ns() const { return busy_ns_; }
  double busy_seconds() const { return static_cast<double>(busy_ns_) * 1e-9; }
  /// Time spent inside the probe itself (signal scan + hashing).
  double overhead_seconds() const {
    return static_cast<double>(overhead_ns_) * 1e-9;
  }
  /// Peak |sample| over every output chunk seen.
  double peak_magnitude() const;
  std::uint64_t clip_events() const { return clip_events_; }
  /// Digest of the output stream (meaningful when hash_output is set).
  std::uint64_t output_hash() const { return hash_.digest(); }
  bool hashing() const { return cfg_->hash_output; }

  /// Mean output throughput attributed to this block, in Msamples/s of
  /// its own busy time (0 when it never ran).
  double throughput_msps() const;

  void reset() {
    invocations_ = samples_in_ = samples_out_ = busy_ns_ = 0;
    overhead_ns_ = 0;
    clip_events_ = 0;
    peak_power_ = 0.0;
    hash_.reset();
  }

 private:
  std::string name_;
  const ProbeConfig* cfg_;
  std::uint64_t invocations_ = 0;
  std::uint64_t samples_in_ = 0;
  std::uint64_t samples_out_ = 0;
  std::uint64_t busy_ns_ = 0;
  std::uint64_t overhead_ns_ = 0;
  std::uint64_t clip_events_ = 0;
  double peak_power_ = 0.0;  // peak |sample|^2; sqrt taken on read
  StreamHash hash_;
};

/// Owns the probes for one instrumented graph. A deque keeps probe
/// addresses stable as blocks register, so rf::Block can hold a raw
/// pointer; the set must outlive the blocks it instruments (or the
/// blocks must detach first).
class ProbeSet {
 public:
  explicit ProbeSet(ProbeConfig cfg = {}) : cfg_(cfg) {}

  ProbeSet(const ProbeSet&) = delete;
  ProbeSet& operator=(const ProbeSet&) = delete;

  /// Register a probe under `name`; duplicate names are disambiguated
  /// with a #k suffix so chains with repeated block types stay readable.
  BlockProbe& add(std::string name);

  const ProbeConfig& config() const { return cfg_; }
  std::size_t size() const { return probes_.size(); }
  const BlockProbe& at(std::size_t i) const { return probes_.at(i); }
  BlockProbe& at(std::size_t i) { return probes_.at(i); }

  /// Probe by exact (possibly suffixed) name; nullptr when absent.
  const BlockProbe* find(const std::string& name) const;

  auto begin() const { return probes_.begin(); }
  auto end() const { return probes_.end(); }

  /// Zero every probe's counters (the registrations stay).
  void reset();

  /// Sum of per-probe busy time, in seconds.
  double total_busy_seconds() const;

 private:
  ProbeConfig cfg_;
  std::deque<BlockProbe> probes_;
};

}  // namespace ofdm::obs
