// Shared single-pass chunk scans over complex baseband samples.
//
// The BlockProbe's peak/clip measurement and the rf::NumericGuard's
// numerical-health sweep are the same kind of loop: one allocation-free
// pass over an output chunk. This header holds the common primitives so
// both layers scan the same way and stay cheap enough for the hot path.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::obs {

/// Fold one chunk into a running peak |sample|^2 and clip counter:
/// samples with |s| > clip_threshold count as clip events.
inline void scan_peak_clip(std::span<const cplx> out, double clip_threshold,
                           double& peak_power, std::uint64_t& clip_events) {
  const double clip2 = clip_threshold * clip_threshold;
  for (const cplx& s : out) {
    const double re = s.real();
    const double im = s.imag();
    const double p = re * re + im * im;
    if (p > peak_power) peak_power = p;
    if (p > clip2) ++clip_events;
  }
}

/// True when both components are finite (no NaN, no Inf).
inline bool finite_sample(const cplx& s) {
  return std::isfinite(s.real()) && std::isfinite(s.imag());
}

/// Index of the first non-finite sample, or SIZE_MAX when the chunk is
/// numerically clean. This is the guard's fast path: a clean chunk costs
/// one branchy-but-predictable pass and nothing else.
inline std::size_t first_nonfinite(std::span<const cplx> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!finite_sample(out[i])) return i;
  }
  return SIZE_MAX;
}

}  // namespace ofdm::obs
