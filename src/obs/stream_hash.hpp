// 64-bit rolling stream hash over complex baseband samples — the cheap
// bit-exactness oracle behind the golden-trace regression suite.
//
// The mixer is the xxhash/murmur finalizer family: every incoming double
// is taken by bit pattern (so +0.0 and -0.0 hash differently, which is
// exactly the discrimination a bit-exactness oracle wants), avalanched,
// and folded into the running state together with a position counter so
// permuted streams do not collide. Updates are allocation-free and
// branch-free per sample; hashing a chunk is one pass over the data.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::obs {

class StreamHash {
 public:
  /// xxhash-style 64-bit avalanche mixer (splitmix64 finalizer).
  static constexpr std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  void update(double v) {
    const std::uint64_t k = std::bit_cast<std::uint64_t>(v);
    state_ = mix(state_ ^ mix(k + kGolden * ++count_));
  }

  void update(cplx v) {
    update(v.real());
    update(v.imag());
  }

  void update(std::span<const cplx> samples) {
    for (const cplx& s : samples) update(s);
  }

  /// Digest of everything fed so far (length-dependent; the empty stream
  /// has its own stable digest).
  std::uint64_t digest() const { return mix(state_ ^ count_); }

  /// Total doubles consumed (two per complex sample).
  std::uint64_t count() const { return count_; }

  void reset() {
    state_ = kSeed;
    count_ = 0;
  }

 private:
  static constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t state_ = kSeed;
  std::uint64_t count_ = 0;
};

/// One-shot convenience: digest of a sample run.
inline std::uint64_t hash_samples(std::span<const cplx> samples) {
  StreamHash h;
  h.update(samples);
  return h.digest();
}

}  // namespace ofdm::obs
