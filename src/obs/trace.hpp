// Scoped tracer with a fixed-capacity ring of span records.
//
// One process-wide Tracer instance collects {name, thread, start, dur}
// spans from anywhere in the datapath: Transmitter::modulate, every
// SymbolPipeline worker batch, and each observed Chain/Netlist block
// call. Recording is lock-free (one fetch_add into a preallocated ring)
// and allocation-free; when the ring wraps, the oldest spans are
// overwritten — a trace is a window onto the tail of a run, which is
// the steady state you want to look at anyway.
//
// Zero overhead when off: an emitting site performs one relaxed atomic
// load and skips both clock reads. Span names must be string literals
// or strings that outlive the snapshot (Block caches its label).
//
// Export is Chrome-trace JSON ("chrome://tracing" / Perfetto "X" phase
// events), so a capture drops straight into the standard viewers.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace ofdm::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< not owned; must outlive the snapshot
  std::uint32_t tid = 0;       ///< small dense thread index
  std::uint64_t start_ns = 0;  ///< steady-clock timestamp
  std::uint64_t dur_ns = 0;
};

class Tracer {
 public:
  /// The process-wide tracer every instrumented site reports to.
  static Tracer& instance();

  /// Start capturing with a ring of `capacity` spans. Allocates the ring
  /// up front; re-enabling clears previous events.
  void enable(std::size_t capacity = 1u << 16);

  /// Stop capturing. Already-recorded events remain snapshot-able.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one completed span. Safe from any thread while enabled.
  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Copy out the captured events, oldest first. If the ring wrapped,
  /// only the most recent `capacity` spans survive.
  std::vector<TraceEvent> snapshot() const;

  /// Spans recorded since enable() (including any overwritten ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Drop captured events, keeping the capture enabled/disabled state.
  void clear();

  /// Write the capture as Chrome trace JSON (an object with a
  /// "traceEvents" array of "ph":"X" duration events).
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: write_chrome_trace to a file; false on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

  /// Monotonic nanosecond timestamp (steady clock).
  static std::uint64_t now_ns();

  /// Dense id of the calling thread (0 = first thread that asked).
  static std::uint32_t thread_index();

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{0};  // total spans ever recorded
  std::vector<TraceEvent> ring_;
  mutable std::mutex control_;  // guards enable/disable/snapshot/clear
};

/// RAII span: times the enclosing scope and reports it on destruction.
/// When the tracer is disabled the constructor is one atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
    if (Tracer::instance().enabled()) start_ = Tracer::now_ns();
  }
  ~ScopedSpan() {
    if (start_ != 0) {
      Tracer::instance().record(name_, start_, Tracer::now_ns() - start_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ = 0;
};

}  // namespace ofdm::obs
