#include "obs/probe.hpp"

#include <cmath>

namespace ofdm::obs {

double BlockProbe::peak_magnitude() const { return std::sqrt(peak_power_); }

double BlockProbe::throughput_msps() const {
  if (busy_ns_ == 0) return 0.0;
  return static_cast<double>(samples_out_) * 1e3 /
         static_cast<double>(busy_ns_);
}

BlockProbe& ProbeSet::add(std::string name) {
  std::size_t copies = 0;
  for (const BlockProbe& p : probes_) {
    if (p.name() == name ||
        p.name().compare(0, name.size() + 1, name + "#") == 0) {
      ++copies;
    }
  }
  if (copies > 0) name += "#" + std::to_string(copies + 1);
  probes_.emplace_back(std::move(name), &cfg_);
  return probes_.back();
}

const BlockProbe* ProbeSet::find(const std::string& name) const {
  for (const BlockProbe& p : probes_) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

void ProbeSet::reset() {
  for (BlockProbe& p : probes_) p.reset();
}

double ProbeSet::total_busy_seconds() const {
  double s = 0.0;
  for (const BlockProbe& p : probes_) s += p.busy_seconds();
  return s;
}

}  // namespace ofdm::obs
