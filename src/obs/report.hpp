// Aggregated per-block run report: the human- and machine-readable view
// over a ProbeSet. Renders a table (stdout) or JSON (bench/regress.py
// consumes this to attribute a throughput regression to a block instead
// of a whole benchmark).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace ofdm::obs {

/// Wall-time attribution for one pipeline-executor stage: how long its
/// thread spent doing work (source pulls + block processing) versus
/// stalled on a stage-boundary queue (waiting for input, or for a free
/// slot when backpressure from a slower consumer bites).
struct StageStats {
  std::string name;            ///< "stage0", "stage1", ...
  std::size_t blocks = 0;      ///< work items (sources + blocks) owned
  std::uint64_t chunks = 0;    ///< chunks completed
  double busy_seconds = 0.0;   ///< source + block processing time
  double stall_seconds = 0.0;  ///< blocked on queue pop/acquire
};

struct Report {
  struct Row {
    std::string name;
    std::uint64_t invocations = 0;
    std::uint64_t samples_in = 0;
    std::uint64_t samples_out = 0;
    double busy_seconds = 0.0;
    double throughput_msps = 0.0;  ///< samples_out / busy time
    double wall_fraction = 0.0;    ///< busy / total run wall time
    double peak_magnitude = 0.0;
    std::uint64_t clip_events = 0;
    std::uint64_t output_hash = 0;  ///< 0 when hashing was off
  };

  std::vector<Row> rows;
  /// Per-stage busy/stall attribution when the run used the pipeline
  /// executor (RunStats::stages); empty for sequential runs.
  std::vector<StageStats> stages;
  double total_seconds = 0.0;       ///< wall time of the attributed run
  double attributed_seconds = 0.0;  ///< per-block busy + probe overhead
  double probe_seconds = 0.0;       ///< observer cost (scan + hashing)

  /// Fraction of the run's wall time attributed to named blocks
  /// (1.0 when total_seconds is unknown/zero).
  double attributed_fraction() const;

  /// Build a report from a probe set and the run's wall time (e.g.
  /// RunStats::elapsed_seconds). Rows keep registration order.
  static Report from(const ProbeSet& probes, double total_seconds);

  /// As above, also attaching the pipeline executor's per-stage
  /// busy/stall attribution (pass RunStats::stages).
  static Report from(const ProbeSet& probes, double total_seconds,
                     std::vector<StageStats> stage_stats);

  /// Fixed-width table, one row per block, with an attribution footer.
  std::string table() const;

  /// JSON object: {"total_seconds":..,"attributed_fraction":..,
  /// "blocks":[{...}]}. Hashes are emitted as hex strings.
  std::string to_json() const;
};

}  // namespace ofdm::obs
