#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 seeds the xoshiro state so that nearby seeds give unrelated
// streams.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::substream(std::uint64_t campaign_seed, std::uint64_t point_index,
                   std::uint64_t trial_index) {
  // Chain the splitmix64 finalizer over the counters: each stage fully
  // avalanches before the next counter is folded in, so neighbouring
  // (point, trial) pairs land on unrelated xoshiro states.
  std::uint64_t st = campaign_seed;
  std::uint64_t h = splitmix64(st);
  st = h ^ point_index;
  h = splitmix64(st);
  st = h ^ trial_index;
  h = splitmix64(st);
  return Rng(h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  OFDM_REQUIRE(n > 0, "uniform_int: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(kTwoPi * u2);
  have_cached_gaussian_ = true;
  return r * std::cos(kTwoPi * u2);
}

cplx Rng::complex_gaussian(double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  return {sigma * gaussian(), sigma * gaussian()};
}

void Rng::gaussian_fill(std::span<double> out) {
  std::size_t i = 0;
  if (i < out.size() && have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    out[i++] = cached_gaussian_;
  }
  // Whole Box-Muller pairs land directly in the buffer: the scalar
  // path's cos draw followed by its cached sin draw.
  while (i + 2 <= out.size()) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    out[i] = r * std::cos(kTwoPi * u2);
    out[i + 1] = r * std::sin(kTwoPi * u2);
    i += 2;
  }
  // Odd element: draw a full pair and leave the sin half cached,
  // exactly as gaussian() would.
  if (i < out.size()) out[i] = gaussian();
}

void Rng::complex_gaussian_fill(std::span<cplx> out, double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  gaussian_fill({reinterpret_cast<double*>(out.data()), out.size() * 2});
  simd::kernels().cvec_scale(out.data(), sigma, out.data(), out.size());
}

std::uint8_t Rng::bit() { return static_cast<std::uint8_t>(next_u64() & 1u); }

bitvec Rng::bits(std::size_t n) {
  bitvec out(n);
  for (auto& b : out) b = bit();
  return out;
}

bytevec Rng::bytes(std::size_t n) {
  bytevec out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64() & 0xFFu);
  return out;
}

void Rng::save(StateWriter& w) const {
  for (std::uint64_t word : s_) w.u64(word);
  w.u8(have_cached_gaussian_ ? 1 : 0);
  w.f64(cached_gaussian_);
}

void Rng::load(StateReader& r) {
  for (std::uint64_t& word : s_) word = r.u64();
  have_cached_gaussian_ = r.u8() != 0;
  cached_gaussian_ = r.f64();
}

}  // namespace ofdm
