#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ofdm {

double to_db(double linear_power) {
  if (linear_power <= 0.0) return -400.0;
  return 10.0 * std::log10(linear_power);
}

double from_db(double db) { return std::pow(10.0, db / 10.0); }

double mean_power(std::span<const cplx> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const cplx& v : x) acc += std::norm(v);
  return acc / static_cast<double>(x.size());
}

double rms(std::span<const cplx> x) { return std::sqrt(mean_power(x)); }

double peak_power(std::span<const cplx> x) {
  double peak = 0.0;
  for (const cplx& v : x) peak = std::max(peak, std::norm(v));
  return peak;
}

std::size_t next_pow2(std::size_t n) {
  OFDM_REQUIRE(n >= 1, "next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

void normalize_power(std::span<cplx> x, double target_power) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const double g = std::sqrt(target_power / p);
  for (cplx& v : x) v *= g;
}

double max_abs_error(std::span<const cplx> a, std::span<const cplx> b) {
  OFDM_REQUIRE_DIM(a.size() == b.size(),
                   "max_abs_error: spans must be equal length");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace ofdm
