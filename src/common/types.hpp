// Fundamental numeric types shared by every OFDM library module.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace ofdm {

/// Complex baseband sample. Double precision throughout: the Mother Model is
/// a behavioural reference, so numerical headroom beats raw speed.
using cplx = std::complex<double>;

/// A run of complex baseband samples.
using cvec = std::vector<cplx>;

/// A run of real samples (passband signals, filter taps, PSDs, ...).
using rvec = std::vector<double>;

/// An unpacked bit stream; each element is 0 or 1. Unpacked storage keeps
/// the scrambler/coder/interleaver pipeline trivially composable.
using bitvec = std::vector<std::uint8_t>;

/// A run of bytes (packed transport-stream style payloads).
using bytevec = std::vector<std::uint8_t>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace ofdm
