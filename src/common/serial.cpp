#include "common/serial.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace ofdm {

void StateWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void StateWriter::u64(std::uint64_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + sizeof v);
  std::memcpy(buf_.data() + at, &v, sizeof v);
}

void StateWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void StateWriter::vec_c(const cvec& v) {
  u64(v.size());
  for (const cplx& x : v) {
    f64(x.real());
    f64(x.imag());
  }
}

void StateWriter::vec_r(const rvec& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void StateWriter::begin_node(const std::string& name) {
  str(name);
  open_.push_back(buf_.size());
  u64(0);  // length placeholder, patched by end_node()
}

void StateWriter::end_node() {
  if (open_.empty()) {
    throw StateError("StateWriter::end_node without begin_node");
  }
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + sizeof(std::uint64_t));
  std::memcpy(buf_.data() + at, &len, sizeof len);
}

void StateReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw StateError("snapshot truncated: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_) +
                     " of " + std::to_string(buf_.size()));
  }
  if (!frames_.empty() && pos_ + n > frames_.back().end) {
    throw StateError("snapshot node '" + frames_.back().name +
                     "' overread: the restored graph expects more state "
                     "than the snapshot recorded");
  }
}

std::uint8_t StateReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint64_t StateReader::u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

double StateReader::f64() { return std::bit_cast<double>(u64()); }

std::string StateReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

void StateReader::vec_c(cvec& v) {
  const std::uint64_t n = u64();
  need(n * 2 * sizeof(double));
  v.resize(n);
  for (cplx& x : v) {
    const double re = f64();
    const double im = f64();
    x = {re, im};
  }
}

void StateReader::vec_r(rvec& v) {
  const std::uint64_t n = u64();
  need(n * sizeof(double));
  v.resize(n);
  for (double& x : v) x = f64();
}

void StateReader::enter_node(const std::string& expected) {
  const std::string name = str();
  if (name != expected) {
    throw StateError("snapshot node mismatch: graph expects '" + expected +
                     "' but snapshot recorded '" + name +
                     "' -- restore requires an identically built graph");
  }
  const std::uint64_t len = u64();
  need(len);
  frames_.push_back({name, pos_ + len});
}

void StateReader::exit_node() {
  if (frames_.empty()) {
    throw StateError("StateReader::exit_node without enter_node");
  }
  const Frame f = frames_.back();
  frames_.pop_back();
  if (pos_ != f.end) {
    throw StateError("snapshot node '" + f.name + "' size mismatch: " +
                     std::to_string(f.end - pos_) +
                     " unread bytes -- the restored block reads less "
                     "state than the snapshot recorded");
  }
}

}  // namespace ofdm
