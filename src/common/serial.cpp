#include "common/serial.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace ofdm {

void StateWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void StateWriter::u64(std::uint64_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + sizeof v);
  std::memcpy(buf_.data() + at, &v, sizeof v);
}

void StateWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void StateWriter::vec_c(const cvec& v) {
  u64(v.size());
  for (const cplx& x : v) {
    f64(x.real());
    f64(x.imag());
  }
}

void StateWriter::vec_r(const rvec& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void StateWriter::begin_node(const std::string& name) {
  str(name);
  open_.push_back(buf_.size());
  u64(0);  // length placeholder, patched by end_node()
}

void StateWriter::end_node() {
  if (open_.empty()) {
    throw StateError("StateWriter::end_node without begin_node");
  }
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + sizeof(std::uint64_t));
  std::memcpy(buf_.data() + at, &len, sizeof len);
}

// pos_ <= frames_.back().end <= buf_.size() is an invariant (every
// advance goes through need(), every frame end is validated on entry),
// so `limit - pos_` is the exact remaining byte count and the checks
// below cannot overflow no matter how corrupt an attacker-supplied
// length field is. `pos_ + n` would wrap for n near SIZE_MAX and let a
// truncated/bit-flipped snapshot read past the buffer.
void StateReader::need(std::size_t n) const {
  if (!frames_.empty() && n > frames_.back().end - pos_) {
    throw StateError("snapshot node '" + frames_.back().name +
                     "' overread: the restored graph expects more state "
                     "than the snapshot recorded");
  }
  if (n > buf_.size() - pos_) {
    throw StateError("snapshot truncated: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_) +
                     " of " + std::to_string(buf_.size()));
  }
}

std::uint64_t StateReader::count(std::size_t elem_size) {
  const std::uint64_t n = u64();
  const std::size_t limit =
      frames_.empty() ? buf_.size() : frames_.back().end;
  const std::size_t remaining = limit - pos_;
  if (n > remaining / elem_size) {
    throw StateError(
        "snapshot truncated: length field claims " + std::to_string(n) +
        " element(s) of " + std::to_string(elem_size) +
        " byte(s) at offset " + std::to_string(pos_) + " but only " +
        std::to_string(remaining) +
        (frames_.empty() ? " byte(s) remain"
                         : " byte(s) remain in node '" +
                               frames_.back().name + "'"));
  }
  return n;
}

std::uint8_t StateReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint64_t StateReader::u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

double StateReader::f64() { return std::bit_cast<double>(u64()); }

std::string StateReader::str() {
  const std::uint64_t n = count(1);
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

void StateReader::vec_c(cvec& v) {
  const std::uint64_t n = count(2 * sizeof(double));
  v.resize(n);
  for (cplx& x : v) {
    const double re = f64();
    const double im = f64();
    x = {re, im};
  }
}

void StateReader::vec_r(rvec& v) {
  const std::uint64_t n = count(sizeof(double));
  v.resize(n);
  for (double& x : v) x = f64();
}

void StateReader::enter_node(const std::string& expected) {
  const std::string name = str();
  if (name != expected) {
    throw StateError("snapshot node mismatch: graph expects '" + expected +
                     "' but snapshot recorded '" + name +
                     "' -- restore requires an identically built graph");
  }
  const std::uint64_t len = count(1);
  frames_.push_back({name, pos_ + static_cast<std::size_t>(len)});
}

void StateReader::exit_node() {
  if (frames_.empty()) {
    throw StateError("StateReader::exit_node without enter_node");
  }
  const Frame f = frames_.back();
  frames_.pop_back();
  if (pos_ != f.end) {
    throw StateError("snapshot node '" + f.name + "' size mismatch: " +
                     std::to_string(f.end - pos_) +
                     " unread bytes -- the restored block reads less "
                     "state than the snapshot recorded");
  }
}

void StateReader::finish(const std::string& what) const {
  if (!frames_.empty()) {
    throw StateError(what + ": frame '" + frames_.back().name +
                     "' left open after the last read");
  }
  if (pos_ != buf_.size()) {
    throw StateError(what + ": " + std::to_string(buf_.size() - pos_) +
                     " trailing byte(s) after the last frame");
  }
}

}  // namespace ofdm
