// Snapshot serialization primitives for checkpoint/restore.
//
// A StateWriter accumulates a flat byte buffer; a StateReader replays it.
// Values are fixed-width host-endian (snapshots are same-process /
// same-machine artifacts, not an interchange format). Composite graph
// state is framed into named, length-prefixed nodes so a restore into a
// mismatched graph fails with a message naming the offending node rather
// than silently misreading the stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofdm {

class StateWriter {
 public:
  void u8(std::uint8_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);
  void vec_c(const cvec& v);
  void vec_r(const rvec& v);

  /// Open a named, length-prefixed frame; every begin_node() must be
  /// matched by end_node(), which patches the frame length in place.
  void begin_node(const std::string& name);
  void end_node();

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;  // offsets of unpatched length fields
};

class StateReader {
 public:
  /// The buffer must outlive the reader.
  explicit StateReader(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t u8();
  std::uint64_t u64();
  double f64();
  std::string str();
  void vec_c(cvec& v);
  void vec_r(rvec& v);

  /// Read a u64 element count for `elem_size`-byte elements and validate
  /// it against the bytes actually remaining (in the current frame, if
  /// any) BEFORE any allocation happens — a corrupt length field fails
  /// with StateError instead of a multi-gigabyte resize or an overflowed
  /// bounds check.
  std::uint64_t count(std::size_t elem_size);

  /// Enter a frame written by begin_node(); throws ofdm::StateError when
  /// the recorded name differs from `expected` (graph mismatch).
  void enter_node(const std::string& expected);

  /// Leave the current frame; throws if it was not consumed exactly.
  void exit_node();

  /// True when every byte has been consumed (top level only).
  bool done() const { return pos_ == buf_.size(); }

  /// Assert the stream was consumed exactly: every frame closed and no
  /// trailing bytes. Throws StateError prefixed with `what` naming the
  /// offending frame / the trailing byte count. Every loader that
  /// accepts external bytes (campaign checkpoints, netlist snapshots)
  /// ends with this so appended garbage cannot ride along silently.
  void finish(const std::string& what) const;

 private:
  void need(std::size_t n) const;

  struct Frame {
    std::string name;
    std::size_t end;
  };

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace ofdm
