// Deterministic random number generation for reproducible simulations.
//
// Every stochastic element in the library (payload bits, AWGN, phase noise,
// Monte-Carlo sweeps) draws from ofdm::Rng so that a simulation seeded the
// same way produces bit-identical results across runs and platforms.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm {

class StateWriter;
class StateReader;

/// xoshiro256++ generator: small, fast, and fully reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Counter-based substream derivation for Monte-Carlo campaigns: the
  /// returned generator is a pure function of (campaign_seed,
  /// point_index, trial_index) — no shared ancestor stream is advanced —
  /// so any trial's stream can be constructed directly, in any order,
  /// from any thread, and a resumed sweep re-derives exactly the streams
  /// an uninterrupted one would have used. (SplitMix64 finalizer chained
  /// over the three counters.)
  static Rng substream(std::uint64_t campaign_seed,
                       std::uint64_t point_index,
                       std::uint64_t trial_index);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal draw (Box-Muller, cached second value).
  double gaussian();

  /// Zero-mean circular complex gaussian with total variance `variance`
  /// (i.e. variance/2 per real dimension).
  cplx complex_gaussian(double variance = 1.0);

  /// Batch fill producing the *identical* stream to out.size() repeated
  /// gaussian() calls — including consuming and refilling the Box-Muller
  /// cache — but amortizing the per-call overhead.
  void gaussian_fill(std::span<double> out);

  /// Batch equivalent of out.size() complex_gaussian(variance) calls,
  /// bit-identical to the one-at-a-time stream.
  void complex_gaussian_fill(std::span<cplx> out, double variance = 1.0);

  /// A fresh bit (0 or 1).
  std::uint8_t bit();

  /// `n` fresh bits.
  bitvec bits(std::size_t n);

  /// `n` fresh bytes.
  bytevec bytes(std::size_t n);

  /// Checkpoint/restore: serialize the full generator state (xoshiro
  /// words plus the Box-Muller cache) so a restored stream continues
  /// bit-identically.
  void save(StateWriter& w) const;
  void load(StateReader& r);

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ofdm
