#include "common/error.hpp"

#include <sstream>

namespace ofdm::detail {

namespace {
std::string format(const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << msg << " [failed: " << expr << " at " << file << ':' << line << ']';
  return os.str();
}
}  // namespace

void throw_config_error(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw ConfigError(format(expr, file, line, msg));
}

void throw_dimension_error(const char* expr, const char* file, int line,
                           const std::string& msg) {
  throw DimensionError(format(expr, file, line, msg));
}

}  // namespace ofdm::detail
