#include "common/bits.hpp"

#include "common/error.hpp"

namespace ofdm {

bitvec bytes_to_bits_msb(std::span<const std::uint8_t> bytes) {
  bitvec bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

bitvec bytes_to_bits_lsb(std::span<const std::uint8_t> bytes) {
  bitvec bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

bytevec bits_to_bytes_msb(std::span<const std::uint8_t> bits) {
  OFDM_REQUIRE_DIM(bits.size() % 8 == 0,
                   "bits_to_bytes_msb: bit count must be a multiple of 8");
  bytevec bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bytes[i / 8] = static_cast<std::uint8_t>(
        (bytes[i / 8] << 1) | (bits[i] & 1u));
  }
  return bytes;
}

bytevec bits_to_bytes_lsb(std::span<const std::uint8_t> bits) {
  OFDM_REQUIRE_DIM(bits.size() % 8 == 0,
                   "bits_to_bytes_lsb: bit count must be a multiple of 8");
  bytevec bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bytes[i / 8] |= static_cast<std::uint8_t>((bits[i] & 1u) << (i % 8));
  }
  return bytes;
}

std::uint64_t bits_to_uint(std::span<const std::uint8_t> bits,
                           std::size_t pos, std::size_t n) {
  OFDM_REQUIRE_DIM(n <= 64 && pos + n <= bits.size(),
                   "bits_to_uint: range out of bounds");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v = (v << 1) | (bits[pos + i] & 1u);
  }
  return v;
}

void append_uint(bitvec& out, std::uint64_t value, std::size_t n) {
  OFDM_REQUIRE_DIM(n <= 64, "append_uint: at most 64 bits");
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (n - 1 - i)) & 1u));
  }
}

std::string to_string(std::span<const std::uint8_t> bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::uint8_t b : bits) s.push_back(b ? '1' : '0');
  return s;
}

bitvec bits_from_string(const std::string& s) {
  bitvec bits;
  bits.reserve(s.size());
  for (char c : s) {
    if (c == '0') bits.push_back(0);
    if (c == '1') bits.push_back(1);
  }
  return bits;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  OFDM_REQUIRE_DIM(a.size() == b.size(),
                   "hamming_distance: spans must be equal length");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & 1u) != (b[i] & 1u)) ++d;
  }
  return d;
}

}  // namespace ofdm
