// Small numeric helpers shared across the DSP and RF modules.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace ofdm {

/// Linear power ratio -> decibels. Clamps at -400 dB for zero input.
double to_db(double linear_power);

/// Decibels -> linear power ratio.
double from_db(double db);

/// Average power (mean |x|^2) of a complex signal; 0 for empty input.
double mean_power(std::span<const cplx> x);

/// Root-mean-square magnitude of a complex signal.
double rms(std::span<const cplx> x);

/// Peak instantaneous power max |x|^2.
double peak_power(std::span<const cplx> x);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Normalized sinc: sin(pi x)/(pi x), sinc(0) = 1.
double sinc(double x);

/// Scale a signal in place so its average power becomes `target_power`.
/// A zero signal is left untouched.
void normalize_power(std::span<cplx> x, double target_power = 1.0);

/// Maximum absolute difference between two equal-length complex signals.
double max_abs_error(std::span<const cplx> a, std::span<const cplx> b);

}  // namespace ofdm
