// Bit-stream utilities: packing, unpacking, conversions between the unpacked
// bitvec representation used by the coding pipeline and packed bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/types.hpp"

namespace ofdm {

/// Unpack bytes into bits, MSB of each byte first (transport-stream order).
bitvec bytes_to_bits_msb(std::span<const std::uint8_t> bytes);

/// Unpack bytes into bits, LSB of each byte first (802.11 PSDU order).
bitvec bytes_to_bits_lsb(std::span<const std::uint8_t> bytes);

/// Pack bits (MSB first) into bytes. Bit count must be a multiple of 8.
bytevec bits_to_bytes_msb(std::span<const std::uint8_t> bits);

/// Pack bits (LSB first) into bytes. Bit count must be a multiple of 8.
bytevec bits_to_bytes_lsb(std::span<const std::uint8_t> bits);

/// Read an unsigned value from `n` bits starting at `pos`, MSB first.
std::uint64_t bits_to_uint(std::span<const std::uint8_t> bits,
                           std::size_t pos, std::size_t n);

/// Append `n` bits of `value` to `out`, MSB first.
void append_uint(bitvec& out, std::uint64_t value, std::size_t n);

/// Render a bit span as a '0'/'1' string (debugging, test vectors).
std::string to_string(std::span<const std::uint8_t> bits);

/// Parse a '0'/'1' string into bits; non-binary characters are skipped,
/// which lets test vectors contain spaces for readability.
bitvec bits_from_string(const std::string& s);

/// Count positions where two equal-length bit spans differ (Hamming).
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

}  // namespace ofdm
