// Error reporting for the OFDM library: all precondition violations and
// configuration errors surface as ofdm::Error exceptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ofdm {

/// Base exception for every error raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an OfdmParams set is internally inconsistent or an argument
/// violates a documented precondition.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when an input buffer has the wrong size/shape for an operation.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// Raised by fault containment when a numerically poisoned stream is
/// detected (or produced) inside a running graph. Carries enough context
/// to pin the fault: the offending block's name, its position in the
/// graph's attach order, and the absolute offset of the first bad sample
/// in that block's output stream.
class StreamError : public Error {
 public:
  StreamError(std::string block, std::size_t graph_position,
              std::uint64_t sample_offset, const std::string& what)
      : Error(what),
        block_(std::move(block)),
        graph_position_(graph_position),
        sample_offset_(sample_offset) {}

  const std::string& block() const { return block_; }
  std::size_t graph_position() const { return graph_position_; }
  std::uint64_t sample_offset() const { return sample_offset_; }

 private:
  std::string block_;
  std::size_t graph_position_;
  std::uint64_t sample_offset_;
};

/// Raised by checkpoint/restore when a snapshot is truncated, malformed,
/// or taken from a differently shaped graph.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_config_error(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_dimension_error(const char* expr, const char* file,
                                        int line, const std::string& msg);
}  // namespace detail

}  // namespace ofdm

/// Validate a configuration/argument precondition; throws ofdm::ConfigError.
#define OFDM_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ofdm::detail::throw_config_error(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Validate a buffer-shape precondition; throws ofdm::DimensionError.
#define OFDM_REQUIRE_DIM(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::ofdm::detail::throw_dimension_error(#expr, __FILE__, __LINE__, \
                                            (msg));                   \
    }                                                                 \
  } while (false)
