// Error reporting for the OFDM library: all precondition violations and
// configuration errors surface as ofdm::Error exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace ofdm {

/// Base exception for every error raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an OfdmParams set is internally inconsistent or an argument
/// violates a documented precondition.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when an input buffer has the wrong size/shape for an operation.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_config_error(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_dimension_error(const char* expr, const char* file,
                                        int line, const std::string& msg);
}  // namespace detail

}  // namespace ofdm

/// Validate a configuration/argument precondition; throws ofdm::ConfigError.
#define OFDM_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ofdm::detail::throw_config_error(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Validate a buffer-shape precondition; throws ofdm::DimensionError.
#define OFDM_REQUIRE_DIM(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::ofdm::detail::throw_dimension_error(#expr, __FILE__, __LINE__, \
                                            (msg));                   \
    }                                                                 \
  } while (false)
