// IEEE 802.11a / 802.11g (ERP-OFDM) profiles.
//
// Geometry and processing from IEEE 802.11a-1999 clause 17: 64-point FFT
// at 20 MS/s, 48 data + 4 pilot subcarriers, 16-sample (800 ns) guard
// interval, frame-synchronous scrambler x^7+x^4+1, K=7 (133,171)
// convolutional coding with rate-dependent puncturing, two-permutation
// bit interleaver, BPSK..64-QAM. 802.11g reuses the identical PHY in the
// 2.4 GHz band.
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

mapping::Scheme wlan_rate_scheme(WlanRate rate) {
  switch (rate) {
    case WlanRate::k6:
    case WlanRate::k9: return mapping::Scheme::kBpsk;
    case WlanRate::k12:
    case WlanRate::k18: return mapping::Scheme::kQpsk;
    case WlanRate::k24:
    case WlanRate::k36: return mapping::Scheme::kQam16;
    case WlanRate::k48:
    case WlanRate::k54: return mapping::Scheme::kQam64;
  }
  return mapping::Scheme::kBpsk;
}

coding::PuncturePattern wlan_rate_puncture(WlanRate rate) {
  switch (rate) {
    case WlanRate::k6:
    case WlanRate::k12:
    case WlanRate::k24: return coding::puncture_none();
    case WlanRate::k9:
    case WlanRate::k18:
    case WlanRate::k36:
    case WlanRate::k54: return coding::puncture_3_4();
    case WlanRate::k48: return coding::puncture_2_3();
  }
  return coding::puncture_none();
}

OfdmParams profile_wlan_80211a(WlanRate rate) {
  OfdmParams p;
  p.standard = Standard::kWlan80211a;
  p.variant = "20 MHz, 5 GHz band";
  p.sample_rate = 20e6;
  p.fft_size = 64;
  p.cp_len = 16;
  p.window_ramp = 1;  // ~100 ns transition, 17.3.2.4
  p.nominal_rf_hz = 5.18e9;

  p.tone_map = null_tone_map(64);
  fill_data_range(p.tone_map, -26, 26);
  for (long k : {-21, -7, 7, 21}) set_tone(p.tone_map, k, ToneType::kPilot);

  p.mapping = MappingKind::kFixed;
  p.scheme = wlan_rate_scheme(rate);

  // Pilots (-21,-7,7,21) carry (1,1,1,-1) times the p_n polarity PRBS
  // (the 127-bit scrambler sequence with an all-ones seed), 17.3.5.9.
  p.pilots.base_values = {cplx{1, 0}, cplx{1, 0}, cplx{1, 0}, cplx{-1, 0}};
  p.pilots.polarity_prbs = true;
  p.pilots.prbs_degree = 7;
  p.pilots.prbs_taps = (1u << 6) | (1u << 3);
  p.pilots.prbs_seed = 0x7F;

  p.scrambler.enabled = true;
  p.scrambler.degree = 7;
  p.scrambler.taps = (1u << 6) | (1u << 3);
  p.scrambler.seed = 0x5D;  // Annex G example initial state

  p.fec.conv_enabled = true;
  p.fec.conv = coding::k7_industry_code();
  p.fec.puncture = wlan_rate_puncture(rate);

  p.interleaver.kind = InterleaverKind::kWlan;

  p.frame.symbols_per_frame = 10;
  p.frame.preamble = PreambleKind::kWlan;
  return p;
}

OfdmParams profile_wlan_80211g(WlanRate rate) {
  OfdmParams p = profile_wlan_80211a(rate);
  p.standard = Standard::kWlan80211g;
  p.variant = "ERP-OFDM, 2.4 GHz band";
  p.nominal_rf_hz = 2.412e9;
  return p;
}

}  // namespace ofdm::core
