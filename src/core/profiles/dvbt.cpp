// DVB-T (ETSI EN 300 744) profiles, 2k and 8k modes.
//
// The full concatenated chain is active: energy-dispersal scrambler,
// outer RS(204,188), inner K=7 (133,171) convolutional code with rate-2/3
// puncturing, per-symbol bit interleaving, QPSK/16/64-QAM on 1705 (2k) or
// 6817 (8k) carriers at the 64/7 MHz elementary rate.
//
// Simplifications (DESIGN.md §4): the scattered-pilot raster is
// represented by boosted continual pilots on every 113th carrier, the
// outer Forney interleaver is exercised by the coding substrate tests but
// not inserted into the burst path (frame-sized bursts would only see its
// fill transient), and the TPS carriers are omitted.
#include <numeric>

#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

OfdmParams profile_dvbt(DvbtMode mode, mapping::Scheme scheme) {
  OfdmParams p;
  p.standard = Standard::kDvbT;
  p.sample_rate = 64e6 / 7.0;
  p.nominal_rf_hz = 722e6;  // UHF channel 52

  long kmax = 0;
  switch (mode) {
    case DvbtMode::k2k:
      p.variant = "2k mode";
      p.fft_size = 2048;
      kmax = 852;  // 1705 used carriers
      break;
    case DvbtMode::k8k:
      p.variant = "8k mode";
      p.fft_size = 8192;
      kmax = 3408;  // 6817 used carriers
      break;
  }
  p.cp_len = p.fft_size / 8;  // guard interval 1/8

  p.tone_map = null_tone_map(p.fft_size);
  fill_data_range(p.tone_map, -kmax, kmax, /*skip_dc=*/false);
  std::size_t pilot_count = 0;
  for (long k = -kmax; k <= kmax; k += 113) {
    set_tone(p.tone_map, k, ToneType::kPilot);
    ++pilot_count;
  }

  p.mapping = MappingKind::kFixed;
  p.scheme = scheme;

  // Continual pilots: BPSK at 4/3 boosted power (EN 300 744 4.5.3).
  p.pilots.base_values.assign(pilot_count, cplx{1.0, 0.0});
  p.pilots.polarity_prbs = true;
  p.pilots.prbs_degree = 11;
  p.pilots.prbs_taps = (1u << 10) | (1u << 1);  // x^11 + x^2 + 1
  p.pilots.prbs_seed = 0x7FF;
  p.pilots.boost = 4.0 / 3.0;

  // Energy dispersal x^15 + x^14 + 1, init 100101010000000.
  p.scrambler.enabled = true;
  p.scrambler.degree = 15;
  p.scrambler.taps = (std::uint64_t{1} << 14) | (std::uint64_t{1} << 13);
  p.scrambler.seed = 0b000000010101001;  // delay-1 cell in bit 0

  p.fec.rs_enabled = true;
  p.fec.rs_n = 204;
  p.fec.rs_k = 188;
  p.fec.conv_enabled = true;
  p.fec.conv = coding::k7_industry_code();
  p.fec.puncture = coding::puncture_2_3();

  // Inner bit interleaver: EN 300 744 interleaves in 126-bit blocks. Our
  // per-symbol block interleaver needs a row count dividing the coded
  // bits per symbol, so use the largest divisor of 126 that fits this
  // carrier/constellation combination.
  p.interleaver.kind = InterleaverKind::kBlock;
  const std::size_t data_tones =
      2 * static_cast<std::size_t>(kmax) + 1 - pilot_count;
  const std::size_t cbps = data_tones * mapping::bits_per_symbol(scheme);
  p.interleaver.rows = std::gcd(cbps, std::size_t{126});

  p.frame.symbols_per_frame = 4;  // keep the default burst tractable
  return p;
}

}  // namespace ofdm::core
