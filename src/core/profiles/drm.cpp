// Digital Radio Mondiale (ETSI ES 201 980) profiles.
//
// DRM is the family member that forces non-power-of-two FFT sizes: the
// robustness modes run a 48 kHz master rate with useful symbol durations
// 24 / 21.33 / 14.66 / 9.33 ms -> 1152 / 1024 / 704 / 448 samples. The
// Mother Model's Bluestein FFT path exists because of these modes.
//
// Simplifications (DESIGN.md §4): the multi-level coding (MSC/SDC/FAC
// channels) is collapsed to one 64-QAM stream with cell interleaving,
// and the scattered gain/frequency pilots are represented by a small set
// of boosted pilot tones plus the phase-reference symbol.
#include <cmath>

#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

OfdmParams profile_drm(DrmMode mode) {
  OfdmParams p;
  p.standard = Standard::kDrm;
  p.sample_rate = 48e3;
  p.nominal_rf_hz = 6.095e6;  // a 49 m shortwave broadcast channel

  long kmax = 0;
  switch (mode) {
    case DrmMode::kA:
      p.variant = "mode A (Tu 24 ms)";
      p.fft_size = 1152;
      p.cp_len = 128;  // Tg = Tu/9
      kmax = 114;      // ~10 kHz spectrum occupancy
      break;
    case DrmMode::kB:
      p.variant = "mode B (Tu 21.3 ms)";
      p.fft_size = 1024;
      p.cp_len = 256;  // Tg = Tu/4
      kmax = 103;
      break;
    case DrmMode::kC:
      p.variant = "mode C (Tu 14.7 ms)";
      p.fft_size = 704;
      p.cp_len = 256;
      kmax = 69;
      break;
    case DrmMode::kD:
      p.variant = "mode D (Tu 9.3 ms)";
      p.fft_size = 448;
      p.cp_len = 352;  // Tg = 11/14 Tu
      kmax = 44;
      break;
  }

  p.tone_map = null_tone_map(p.fft_size);
  fill_data_range(p.tone_map, -kmax, kmax);
  // Representative boosted gain pilots at the band edges and centre.
  for (long k : {-kmax, -kmax / 2, kmax / 2, kmax}) {
    set_tone(p.tone_map, k, ToneType::kPilot);
  }

  p.mapping = MappingKind::kFixed;
  p.scheme = mapping::Scheme::kQam64;

  const double a = 1.0 / std::sqrt(2.0);
  p.pilots.base_values = {cplx{a, a}, cplx{a, -a}, cplx{-a, a}, cplx{a, a}};
  p.pilots.boost = std::sqrt(2.0);  // gain references are power-boosted

  p.scrambler.enabled = true;  // ES 201 980 energy dispersal x^9+x^5+1
  p.scrambler.degree = 9;
  p.scrambler.taps = (1u << 8) | (1u << 4);
  p.scrambler.seed = 0x1FF;

  p.interleaver.kind = InterleaverKind::kCell;
  p.interleaver.seed = 0xD12Aull;

  p.frame.symbols_per_frame = 15;  // one 400 ms transmission frame
  p.frame.preamble = PreambleKind::kPhaseReference;
  p.frame.phase_ref_seed = 0x0DD5ull;
  return p;
}

}  // namespace ofdm::core
