// IEEE 802.16a WirelessMAN-OFDM (256-carrier) profile.
//
// Geometry from IEEE 802.16a-2003 8.3.5: 256-point FFT, 192 data + 8
// pilot subcarriers, 28+27 guard carriers, null DC; pilots at logical
// indices ±88, ±63, ±38, ±13. Sampling factor 8/7 over a 7 MHz channel
// gives exactly 8 MS/s. Scrambler x^15+x^14+1, RS + K=7 convolutional
// concatenated FEC (the mandatory rate-1/2 16-QAM burst profile here,
// with the RS(64,48) shortened code of that profile).
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

OfdmParams profile_wman_80216a() {
  OfdmParams p;
  p.standard = Standard::kWman80216a;
  p.variant = "WirelessMAN-OFDM, 7 MHz channel";
  p.sample_rate = 8e6;  // 7 MHz * 8/7
  p.fft_size = 256;
  p.cp_len = 32;  // G = 1/8
  p.nominal_rf_hz = 3.5e9;

  p.tone_map = null_tone_map(256);
  fill_data_range(p.tone_map, -100, 100);
  for (long k : {-88, -63, -38, -13, 13, 38, 63, 88}) {
    set_tone(p.tone_map, k, ToneType::kPilot);
  }

  p.mapping = MappingKind::kFixed;
  p.scheme = mapping::Scheme::kQam16;

  // Pilots are BPSK modulated by the 802.16 w_k PRBS (x^11 + x^9 + 1).
  p.pilots.base_values.assign(8, cplx{1.0, 0.0});
  p.pilots.polarity_prbs = true;
  p.pilots.prbs_degree = 11;
  p.pilots.prbs_taps = (1u << 10) | (1u << 8);
  p.pilots.prbs_seed = 0x7FF;

  p.scrambler.enabled = true;
  p.scrambler.degree = 15;
  p.scrambler.taps = (std::uint64_t{1} << 14) | (std::uint64_t{1} << 13);
  p.scrambler.seed = 0x4D4E;  // non-zero randomizer init

  p.fec.rs_enabled = true;  // shortened RS(64, 48), t = 8
  p.fec.rs_n = 64;
  p.fec.rs_k = 48;
  p.fec.conv_enabled = true;
  p.fec.conv = coding::k7_industry_code();
  p.fec.puncture = coding::puncture_2_3();

  p.interleaver.kind = InterleaverKind::kBlock;
  p.interleaver.rows = 16;  // 8.3.5.2.4 two-step interleaver, d = 16

  p.frame.symbols_per_frame = 12;
  p.frame.preamble = PreambleKind::kPhaseReference;
  p.frame.phase_ref_seed = 0x0216ull;
  return p;
}

}  // namespace ofdm::core
