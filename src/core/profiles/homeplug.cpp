// HomePlug 1.0 powerline profile.
//
// The powerline PHY transmits a *real* signal built from 84 carriers
// (logical tones 23..106 of a 256-point transform at 50 MS/s, i.e.
// 4.5..20.7 MHz) with differential QPSK in time on each carrier — the
// line conditions change too fast for coherent mapping. Its long
// 172-sample cyclic prefix absorbs powerline impulse responses.
//
// Simplification (DESIGN.md §4): HomePlug's ROBO mode and tone masking
// are not modelled; the data scrambler is the x^10+x^3+1 PRBS.
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

OfdmParams profile_homeplug() {
  OfdmParams p;
  p.standard = Standard::kHomePlug;
  p.variant = "1.0, 84 carriers";
  p.sample_rate = 50e6;
  p.fft_size = 256;
  p.cp_len = 172;
  p.hermitian = true;  // the powerline signal is real
  p.nominal_rf_hz = 0.0;  // baseband powerline coupling, no upconversion

  p.tone_map = null_tone_map(256);
  for (long k = 23; k <= 106; ++k) set_tone(p.tone_map, k, ToneType::kData);

  p.mapping = MappingKind::kDifferential;
  p.diff_kind = mapping::DiffKind::kDqpsk;

  p.scrambler.enabled = true;  // x^10 + x^3 + 1, all-ones init
  p.scrambler.degree = 10;
  p.scrambler.taps = (1u << 9) | (1u << 2);
  p.scrambler.seed = 0x3FF;

  p.fec.conv_enabled = true;  // K=7 rate-3/4 punctured (DA link mode)
  p.fec.conv = coding::k7_industry_code();
  p.fec.puncture = coding::puncture_3_4();

  p.interleaver.kind = InterleaverKind::kBlock;
  p.interleaver.rows = 8;  // 84 carriers * 2 bits = 168 = 8 * 21

  p.frame.symbols_per_frame = 20;
  p.frame.preamble = PreambleKind::kPhaseReference;
  p.frame.phase_ref_seed = 0x0BEEull;
  return p;
}

OfdmParams with_reference_fec(OfdmParams params) {
  if (params.fec.conv_enabled || params.fec.rs_enabled) return params;
  if (params.mapping == MappingKind::kBitTable) {
    // Byte-oriented DMT (ADSL/ADSL2+/VDSL): the G.992-family outer code.
    params.fec.rs_enabled = true;
    params.fec.rs_n = 255;
    params.fec.rs_k = 239;
  } else {
    // DRM and any other uncoded fixed/differential profile: the K=7
    // rate-1/2 mother code shared by the coded family members.
    params.fec.conv_enabled = true;
    params.fec.conv = coding::k7_industry_code();
    params.fec.puncture = coding::puncture_none();
  }
  return params;
}

OfdmParams profile_for(Standard standard) {
  switch (standard) {
    case Standard::kWlan80211a: return profile_wlan_80211a();
    case Standard::kWlan80211g: return profile_wlan_80211g();
    case Standard::kAdsl: return profile_adsl();
    case Standard::kDrm: return profile_drm();
    case Standard::kVdsl: return profile_vdsl();
    case Standard::kDab: return profile_dab();
    case Standard::kDvbT: return profile_dvbt();
    case Standard::kWman80216a: return profile_wman_80216a();
    case Standard::kHomePlug: return profile_homeplug();
    case Standard::kAdslPlusPlus: return profile_adsl_plus_plus();
  }
  return profile_wlan_80211a();
}

}  // namespace ofdm::core
