// DAB / Eureka-147 (ETSI EN 300 401) profiles.
//
// DAB is the differential member of the family: pi/4-shifted DQPSK in
// time on every carrier, a leading null symbol, and a phase-reference
// symbol that seeds the differential modulation. Transmission modes
// I..IV scale the same design across FFT sizes 2048/512/256/1024.
//
// Simplification (DESIGN.md §4): the phase reference symbol uses the
// Mother Model's seeded QPSK reference generator instead of the CAZAC
// tables of EN 300 401, and the time/frequency interleaving is folded
// into one per-symbol block interleaver.
#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

OfdmParams profile_dab(DabMode mode) {
  OfdmParams p;
  p.standard = Standard::kDab;
  p.sample_rate = 2.048e6;
  p.nominal_rf_hz = 227.36e6;  // VHF band III, channel 12C

  long half = 0;
  switch (mode) {
    case DabMode::kI:
      p.variant = "mode I";
      p.fft_size = 2048;
      p.cp_len = 504;
      p.frame.null_samples = 2656;
      p.frame.symbols_per_frame = 76;
      half = 768;
      break;
    case DabMode::kII:
      p.variant = "mode II";
      p.fft_size = 512;
      p.cp_len = 126;
      p.frame.null_samples = 664;
      p.frame.symbols_per_frame = 76;
      half = 192;
      break;
    case DabMode::kIII:
      p.variant = "mode III";
      p.fft_size = 256;
      p.cp_len = 63;
      p.frame.null_samples = 345;
      p.frame.symbols_per_frame = 153;
      half = 96;
      break;
    case DabMode::kIV:
      p.variant = "mode IV";
      p.fft_size = 1024;
      p.cp_len = 252;
      p.frame.null_samples = 1328;
      p.frame.symbols_per_frame = 76;
      half = 384;
      break;
  }

  p.tone_map = null_tone_map(p.fft_size);
  fill_data_range(p.tone_map, -half, half);  // DC skipped: K carriers

  p.mapping = MappingKind::kDifferential;
  p.diff_kind = mapping::DiffKind::kPi4Dqpsk;

  // EN 300 401 energy dispersal PRBS x^9 + x^5 + 1, all-ones init.
  p.scrambler.enabled = true;
  p.scrambler.degree = 9;
  p.scrambler.taps = (1u << 8) | (1u << 4);
  p.scrambler.seed = 0x1FF;

  p.fec.conv_enabled = true;  // EN 300 401 uses the same K=7 mother code
  p.fec.conv = coding::k7_industry_code();
  p.fec.puncture = coding::puncture_none();

  p.interleaver.kind = InterleaverKind::kBlock;
  p.interleaver.rows = 16;

  p.frame.preamble = PreambleKind::kPhaseReference;
  p.frame.phase_ref_seed = 0x0147ull;
  return p;
}

}  // namespace ofdm::core
