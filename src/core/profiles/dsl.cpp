// Wireline DMT profiles: ADSL (G.992.1), ADSL2+ ("ADSL++") and VDSL
// (G.993.1). All three are discrete multi-tone systems with 4.3125 kHz
// subcarrier spacing, Hermitian-symmetric (real) output, and per-tone
// QAM bit loading — in the Mother Model they differ only in FFT size,
// cyclic-extension length and the bit table.
//
// Simplifications (documented in DESIGN.md §4): no trellis coding, the
// downstream direction only, a flat default bit table (the bit-loading
// algorithm in mapping/bitloading.hpp produces channel-derived tables in
// the ADSL example), and an additive x^23+x^18+1 scrambler standing in
// for G.992.1's self-synchronizing scrambler.
#include <cmath>

#include "core/profiles.hpp"
#include "core/tone_map.hpp"

namespace ofdm::core {

namespace {

OfdmParams dmt_base(std::size_t fft_size, std::size_t cp_len,
                    long first_tone, long last_tone, long pilot_tone,
                    std::uint8_t default_load) {
  OfdmParams p;
  p.sample_rate = 4312.5 * static_cast<double>(fft_size);
  p.fft_size = fft_size;
  p.cp_len = cp_len;
  p.hermitian = true;

  p.tone_map = null_tone_map(fft_size);
  for (long k = first_tone; k <= last_tone; ++k) {
    if (k == pilot_tone) continue;
    set_tone(p.tone_map, k, ToneType::kData);
  }
  set_tone(p.tone_map, pilot_tone, ToneType::kPilot);

  p.mapping = MappingKind::kBitTable;
  const std::size_t data_tones =
      static_cast<std::size_t>(last_tone - first_tone);  // minus pilot
  p.bit_table.assign(data_tones, default_load);

  // G.992.1 pilot: a fixed {+,+} constellation point on the pilot tone.
  p.pilots.base_values = {cplx{1.0, 1.0} / std::sqrt(2.0)};

  p.scrambler.enabled = true;
  p.scrambler.degree = 23;
  p.scrambler.taps = (std::uint64_t{1} << 22) | (std::uint64_t{1} << 17);
  p.scrambler.seed = 0x3FFFFF;

  p.frame.symbols_per_frame = 68;  // one G.992.1 superframe of data syms
  return p;
}

}  // namespace

OfdmParams profile_adsl() {
  // Downstream: 512-point IFFT at 2.208 MS/s, 32-sample cyclic extension,
  // data tones 33..255 (full-duplex split), pilot on tone 64.
  OfdmParams p = dmt_base(512, 32, 33, 255, 64, 8);
  p.standard = Standard::kAdsl;
  p.variant = "G.992.1 downstream";
  return p;
}

OfdmParams profile_adsl_plus_plus() {
  // ADSL2+ doubles the downstream spectrum: 1024-point IFFT at
  // 4.416 MS/s, tones 33..511.
  OfdmParams p = dmt_base(1024, 64, 33, 511, 64, 8);
  p.standard = Standard::kAdslPlusPlus;
  p.variant = "G.992.5 downstream";
  return p;
}

OfdmParams profile_vdsl() {
  // VDSL 8192-point IFFT at 35.328 MS/s (G.993.1 with 4096 tones),
  // 640-sample cyclic extension; band up to ~8.8 MHz used here.
  OfdmParams p = dmt_base(8192, 640, 33, 2047, 64, 6);
  p.standard = Standard::kVdsl;
  p.variant = "G.993.1, 8.8 MHz band plan";
  p.frame.symbols_per_frame = 8;  // keep default bursts tractable
  return p;
}

}  // namespace ofdm::core
