// Frame preamble generation.
//
//  * 802.11a short + long training fields, bit-exact tone sequences from
//    IEEE 802.11a-1999 17.3.3, scaled to the Mother Model's unit-power
//    convention.
//  * A generic "phase reference" symbol: every used tone carries a known
//    QPSK value drawn from a seeded LFSR. DAB's phase reference symbol
//    and DRM's gain references are represented this way; it also seeds
//    the differential mapper.
#pragma once

#include <span>

#include "core/params.hpp"

namespace ofdm::core {

/// The 64 long-training tone values (bins in natural FFT order); used by
/// the receiver for channel estimation.
cvec wlan_ltf_bins();

/// The 64 short-training tone values (natural FFT order, includes the
/// sqrt(13/6) power normalization).
cvec wlan_stf_bins();

/// Full 802.11a preamble: 160 samples STF + 160 samples LTF at 20 MS/s,
/// scaled to match a unit-power data section. `p` supplies fft size / cp
/// (must be the 64/16 WLAN geometry).
cvec wlan_preamble(const OfdmParams& p);

/// Deterministic QPSK values for the data tones of a phase-reference
/// symbol (ascending logical order), derived from frame.phase_ref_seed.
cvec phase_reference_values(const OfdmParams& p, std::size_t count);

}  // namespace ofdm::core
