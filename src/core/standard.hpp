// The OFDM Standard Family covered by the Mother Model — exactly the ten
// standards the paper names in its introduction.
#pragma once

#include <array>
#include <string>

namespace ofdm::core {

enum class Standard {
  kWlan80211a,
  kWlan80211g,
  kAdsl,
  kDrm,
  kVdsl,
  kDab,
  kDvbT,
  kWman80216a,
  kHomePlug,
  kAdslPlusPlus,
};

inline constexpr std::array<Standard, 10> kStandardFamily = {
    Standard::kWlan80211a, Standard::kWlan80211g, Standard::kAdsl,
    Standard::kDrm,        Standard::kVdsl,       Standard::kDab,
    Standard::kDvbT,       Standard::kWman80216a, Standard::kHomePlug,
    Standard::kAdslPlusPlus,
};

std::string standard_name(Standard s);

}  // namespace ofdm::core
