#include "core/pilots.hpp"

#include "common/error.hpp"

namespace ofdm::core {

PilotGenerator::PilotGenerator(const PilotConfig& cfg,
                               std::size_t pilot_count)
    : cfg_(cfg), count_(pilot_count) {
  OFDM_REQUIRE(cfg_.base_values.size() == count_,
               "PilotGenerator: base value count mismatch");
  if (cfg_.polarity_prbs && count_ > 0) {
    prbs_.emplace(cfg_.prbs_degree, cfg_.prbs_taps, cfg_.prbs_seed);
  }
}

cvec PilotGenerator::next_symbol() {
  cvec out(cfg_.base_values);
  double polarity = 1.0;
  if (prbs_) {
    // 802.11a convention: PRBS output 1 flips the pilot signs.
    polarity = prbs_->step() ? -1.0 : 1.0;
  }
  for (cplx& v : out) v *= polarity * cfg_.boost;
  return out;
}

void PilotGenerator::reset() {
  if (prbs_) prbs_->reset(cfg_.prbs_seed);
}

}  // namespace ofdm::core
