#include "core/params_io.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"

namespace ofdm::core {

namespace {

char tone_code(ToneType t) {
  switch (t) {
    case ToneType::kNull: return 'n';
    case ToneType::kData: return 'd';
    case ToneType::kPilot: return 'p';
  }
  return 'n';
}

ToneType tone_from_code(char c) {
  switch (c) {
    case 'n': return ToneType::kNull;
    case 'd': return ToneType::kData;
    case 'p': return ToneType::kPilot;
    default:
      throw ConfigError(std::string("params_io: bad tone code '") + c +
                        "'");
  }
}

// Run-length encode the tone map: "n6,d26,p1,d14,..." in bin order.
std::string encode_tone_map(const std::vector<ToneType>& map) {
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < map.size()) {
    std::size_t run = 1;
    while (i + run < map.size() && map[i + run] == map[i]) ++run;
    if (!first) os << ',';
    os << tone_code(map[i]) << run;
    i += run;
    first = false;
  }
  return os.str();
}

std::vector<ToneType> decode_tone_map(const std::string& text) {
  std::vector<ToneType> map;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    OFDM_REQUIRE(item.size() >= 2, "params_io: malformed tone_map run");
    const ToneType t = tone_from_code(item[0]);
    const unsigned long run = std::stoul(item.substr(1));
    map.insert(map.end(), run, t);
  }
  return map;
}

std::string encode_bit_table(const mapping::BitTable& table) {
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < table.size()) {
    std::size_t run = 1;
    while (i + run < table.size() && table[i + run] == table[i]) ++run;
    if (!first) os << ',';
    os << static_cast<unsigned>(table[i]) << 'x' << run;
    i += run;
    first = false;
  }
  return os.str();
}

mapping::BitTable decode_bit_table(const std::string& text) {
  mapping::BitTable table;
  if (text.empty()) return table;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t x = item.find('x');
    OFDM_REQUIRE(x != std::string::npos,
                 "params_io: malformed bit_table run");
    const unsigned long load = std::stoul(item.substr(0, x));
    const unsigned long run = std::stoul(item.substr(x + 1));
    table.insert(table.end(), run, static_cast<std::uint8_t>(load));
  }
  return table;
}

std::string encode_cvec(const cvec& v) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i].real() << ':' << v[i].imag();
  }
  return os.str();
}

cvec decode_cvec(const std::string& text) {
  cvec v;
  if (text.empty()) return v;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t colon = item.find(':');
    OFDM_REQUIRE(colon != std::string::npos,
                 "params_io: malformed complex value");
    v.emplace_back(std::stod(item.substr(0, colon)),
                   std::stod(item.substr(colon + 1)));
  }
  return v;
}

std::string encode_puncture(const coding::PuncturePattern& p) {
  std::ostringstream os;
  for (std::size_t j = 0; j < p.keep.size(); ++j) {
    if (j) os << '/';
    for (std::uint8_t k : p.keep[j]) os << (k ? '1' : '0');
  }
  return os.str();
}

coding::PuncturePattern decode_puncture(const std::string& text) {
  coding::PuncturePattern p;
  std::istringstream is(text);
  std::string row;
  while (std::getline(is, row, '/')) {
    std::vector<std::uint8_t> keep;
    for (char c : row) {
      OFDM_REQUIRE(c == '0' || c == '1',
                   "params_io: puncture rows are 0/1 strings");
      keep.push_back(c == '1');
    }
    p.keep.push_back(std::move(keep));
  }
  return p;
}

std::string encode_generators(const std::vector<std::uint32_t>& gens) {
  std::ostringstream os;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (i) os << ',';
    os << '0' << std::oct << gens[i] << std::dec;  // octal convention
  }
  return os.str();
}

std::vector<std::uint32_t> decode_generators(const std::string& text) {
  std::vector<std::uint32_t> gens;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    gens.push_back(
        static_cast<std::uint32_t>(std::stoul(item, nullptr, 0)));
  }
  return gens;
}

}  // namespace

std::string to_text(const OfdmParams& p) {
  std::ostringstream os;
  os.precision(17);
  os << "# OFDM Mother Model parameter deck: "
     << standard_name(p.standard) << "\n";
  os << "standard=" << static_cast<int>(p.standard) << "\n";
  os << "variant=" << p.variant << "\n";
  os << "sample_rate=" << p.sample_rate << "\n";
  os << "fft_size=" << p.fft_size << "\n";
  os << "cp_len=" << p.cp_len << "\n";
  os << "window_ramp=" << p.window_ramp << "\n";
  os << "hermitian=" << (p.hermitian ? 1 : 0) << "\n";
  os << "tone_map=" << encode_tone_map(p.tone_map) << "\n";
  os << "mapping=" << static_cast<int>(p.mapping) << "\n";
  os << "scheme=" << static_cast<int>(p.scheme) << "\n";
  os << "diff_kind=" << static_cast<int>(p.diff_kind) << "\n";
  os << "bit_table=" << encode_bit_table(p.bit_table) << "\n";
  os << "scrambler.enabled=" << (p.scrambler.enabled ? 1 : 0) << "\n";
  os << "scrambler.degree=" << p.scrambler.degree << "\n";
  os << "scrambler.taps=0x" << std::hex << p.scrambler.taps << std::dec
     << "\n";
  os << "scrambler.seed=0x" << std::hex << p.scrambler.seed << std::dec
     << "\n";
  os << "fec.rs_enabled=" << (p.fec.rs_enabled ? 1 : 0) << "\n";
  os << "fec.rs_n=" << p.fec.rs_n << "\n";
  os << "fec.rs_k=" << p.fec.rs_k << "\n";
  os << "fec.conv_enabled=" << (p.fec.conv_enabled ? 1 : 0) << "\n";
  os << "fec.conv.k=" << p.fec.conv.constraint_length << "\n";
  os << "fec.conv.generators=" << encode_generators(p.fec.conv.generators)
     << "\n";
  os << "fec.puncture=" << encode_puncture(p.fec.puncture) << "\n";
  os << "interleaver.kind=" << static_cast<int>(p.interleaver.kind)
     << "\n";
  os << "interleaver.rows=" << p.interleaver.rows << "\n";
  os << "interleaver.seed=0x" << std::hex << p.interleaver.seed
     << std::dec << "\n";
  os << "pilots.base_values=" << encode_cvec(p.pilots.base_values)
     << "\n";
  os << "pilots.polarity_prbs=" << (p.pilots.polarity_prbs ? 1 : 0)
     << "\n";
  os << "pilots.prbs_degree=" << p.pilots.prbs_degree << "\n";
  os << "pilots.prbs_taps=0x" << std::hex << p.pilots.prbs_taps
     << std::dec << "\n";
  os << "pilots.prbs_seed=0x" << std::hex << p.pilots.prbs_seed
     << std::dec << "\n";
  os << "pilots.boost=" << p.pilots.boost << "\n";
  os << "frame.symbols_per_frame=" << p.frame.symbols_per_frame << "\n";
  os << "frame.preamble=" << static_cast<int>(p.frame.preamble) << "\n";
  os << "frame.null_samples=" << p.frame.null_samples << "\n";
  os << "frame.phase_ref_seed=0x" << std::hex << p.frame.phase_ref_seed
     << std::dec << "\n";
  os << "nominal_rf_hz=" << p.nominal_rf_hz << "\n";
  return os.str();
}

OfdmParams from_text(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim whitespace.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    const std::size_t eq = line.find('=');
    OFDM_REQUIRE(eq != std::string::npos,
                 "params_io: expected key=value, got: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }

  OfdmParams p;
  auto take = [&kv](const std::string& key) {
    const auto it = kv.find(key);
    OFDM_REQUIRE(it != kv.end(), "params_io: missing key " + key);
    const std::string v = it->second;
    kv.erase(it);
    return v;
  };
  auto to_u64 = [](const std::string& s) {
    return static_cast<std::uint64_t>(std::stoull(s, nullptr, 0));
  };

  p.standard = static_cast<Standard>(std::stoi(take("standard")));
  p.variant = take("variant");
  p.sample_rate = std::stod(take("sample_rate"));
  p.fft_size = to_u64(take("fft_size"));
  p.cp_len = to_u64(take("cp_len"));
  p.window_ramp = to_u64(take("window_ramp"));
  p.hermitian = to_u64(take("hermitian")) != 0;
  p.tone_map = decode_tone_map(take("tone_map"));
  p.mapping = static_cast<MappingKind>(std::stoi(take("mapping")));
  p.scheme = static_cast<mapping::Scheme>(std::stoi(take("scheme")));
  p.diff_kind =
      static_cast<mapping::DiffKind>(std::stoi(take("diff_kind")));
  p.bit_table = decode_bit_table(take("bit_table"));
  p.scrambler.enabled = to_u64(take("scrambler.enabled")) != 0;
  p.scrambler.degree =
      static_cast<unsigned>(to_u64(take("scrambler.degree")));
  p.scrambler.taps = to_u64(take("scrambler.taps"));
  p.scrambler.seed = to_u64(take("scrambler.seed"));
  p.fec.rs_enabled = to_u64(take("fec.rs_enabled")) != 0;
  p.fec.rs_n = to_u64(take("fec.rs_n"));
  p.fec.rs_k = to_u64(take("fec.rs_k"));
  p.fec.conv_enabled = to_u64(take("fec.conv_enabled")) != 0;
  p.fec.conv.constraint_length =
      static_cast<unsigned>(to_u64(take("fec.conv.k")));
  p.fec.conv.generators = decode_generators(take("fec.conv.generators"));
  p.fec.puncture = decode_puncture(take("fec.puncture"));
  p.interleaver.kind =
      static_cast<InterleaverKind>(std::stoi(take("interleaver.kind")));
  p.interleaver.rows = to_u64(take("interleaver.rows"));
  p.interleaver.seed = to_u64(take("interleaver.seed"));
  p.pilots.base_values = decode_cvec(take("pilots.base_values"));
  p.pilots.polarity_prbs = to_u64(take("pilots.polarity_prbs")) != 0;
  p.pilots.prbs_degree =
      static_cast<unsigned>(to_u64(take("pilots.prbs_degree")));
  p.pilots.prbs_taps = to_u64(take("pilots.prbs_taps"));
  p.pilots.prbs_seed = to_u64(take("pilots.prbs_seed"));
  p.pilots.boost = std::stod(take("pilots.boost"));
  p.frame.symbols_per_frame = to_u64(take("frame.symbols_per_frame"));
  p.frame.preamble =
      static_cast<PreambleKind>(std::stoi(take("frame.preamble")));
  p.frame.null_samples = to_u64(take("frame.null_samples"));
  p.frame.phase_ref_seed = to_u64(take("frame.phase_ref_seed"));
  p.nominal_rf_hz = std::stod(take("nominal_rf_hz"));

  OFDM_REQUIRE(kv.empty(),
               "params_io: unknown key " +
                   (kv.empty() ? std::string() : kv.begin()->first));
  validate(p);
  return p;
}

}  // namespace ofdm::core
