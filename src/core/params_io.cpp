#include "core/params_io.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"

namespace ofdm::core {

namespace {

// Numeric conversion wrappers: the std::sto* family reports problems as
// std::invalid_argument / std::out_of_range, which would leak out of
// from_text() as generic exceptions. A parameter deck is user input, so
// every malformed value must surface as a ConfigError naming the field.

std::uint64_t parse_u64(const std::string& field, const std::string& s) {
  try {
    OFDM_REQUIRE(s.find('-') == std::string::npos,
                 "params_io: " + field + " must be non-negative, got '" +
                     s + "'");
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos, 0);
    OFDM_REQUIRE(pos == s.size(), "params_io: trailing junk in " + field +
                                      ": '" + s + "'");
    return static_cast<std::uint64_t>(v);
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("params_io: bad integer for " + field + ": '" + s +
                      "'");
  }
}

int parse_int(const std::string& field, const std::string& s) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    OFDM_REQUIRE(pos == s.size(), "params_io: trailing junk in " + field +
                                      ": '" + s + "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("params_io: bad integer for " + field + ": '" + s +
                      "'");
  }
}

double parse_double(const std::string& field, const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    OFDM_REQUIRE(pos == s.size(), "params_io: trailing junk in " + field +
                                      ": '" + s + "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("params_io: bad number for " + field + ": '" + s +
                      "'");
  }
}

char tone_code(ToneType t) {
  switch (t) {
    case ToneType::kNull: return 'n';
    case ToneType::kData: return 'd';
    case ToneType::kPilot: return 'p';
  }
  return 'n';
}

ToneType tone_from_code(char c) {
  switch (c) {
    case 'n': return ToneType::kNull;
    case 'd': return ToneType::kData;
    case 'p': return ToneType::kPilot;
    default:
      throw ConfigError(std::string("params_io: bad tone code '") + c +
                        "'");
  }
}

// Run-length encode the tone map: "n6,d26,p1,d14,..." in bin order.
std::string encode_tone_map(const std::vector<ToneType>& map) {
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < map.size()) {
    std::size_t run = 1;
    while (i + run < map.size() && map[i + run] == map[i]) ++run;
    if (!first) os << ',';
    os << tone_code(map[i]) << run;
    i += run;
    first = false;
  }
  return os.str();
}

std::vector<ToneType> decode_tone_map(const std::string& text) {
  std::vector<ToneType> map;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    OFDM_REQUIRE(item.size() >= 2, "params_io: malformed tone_map run");
    const ToneType t = tone_from_code(item[0]);
    const std::uint64_t run = parse_u64("tone_map", item.substr(1));
    map.insert(map.end(), run, t);
  }
  return map;
}

std::string encode_bit_table(const mapping::BitTable& table) {
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < table.size()) {
    std::size_t run = 1;
    while (i + run < table.size() && table[i + run] == table[i]) ++run;
    if (!first) os << ',';
    os << static_cast<unsigned>(table[i]) << 'x' << run;
    i += run;
    first = false;
  }
  return os.str();
}

mapping::BitTable decode_bit_table(const std::string& text) {
  mapping::BitTable table;
  if (text.empty()) return table;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t x = item.find('x');
    OFDM_REQUIRE(x != std::string::npos,
                 "params_io: malformed bit_table run");
    const std::uint64_t load = parse_u64("bit_table", item.substr(0, x));
    const std::uint64_t run = parse_u64("bit_table", item.substr(x + 1));
    table.insert(table.end(), run, static_cast<std::uint8_t>(load));
  }
  return table;
}

std::string encode_cvec(const cvec& v) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i].real() << ':' << v[i].imag();
  }
  return os.str();
}

cvec decode_cvec(const std::string& text) {
  cvec v;
  if (text.empty()) return v;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t colon = item.find(':');
    OFDM_REQUIRE(colon != std::string::npos,
                 "params_io: malformed complex value");
    v.emplace_back(parse_double("pilots.base_values", item.substr(0, colon)),
                   parse_double("pilots.base_values", item.substr(colon + 1)));
  }
  return v;
}

std::string encode_puncture(const coding::PuncturePattern& p) {
  std::ostringstream os;
  for (std::size_t j = 0; j < p.keep.size(); ++j) {
    if (j) os << '/';
    for (std::uint8_t k : p.keep[j]) os << (k ? '1' : '0');
  }
  return os.str();
}

coding::PuncturePattern decode_puncture(const std::string& text) {
  coding::PuncturePattern p;
  std::istringstream is(text);
  std::string row;
  while (std::getline(is, row, '/')) {
    std::vector<std::uint8_t> keep;
    for (char c : row) {
      OFDM_REQUIRE(c == '0' || c == '1',
                   "params_io: puncture rows are 0/1 strings");
      keep.push_back(c == '1');
    }
    p.keep.push_back(std::move(keep));
  }
  return p;
}

std::string encode_generators(const std::vector<std::uint32_t>& gens) {
  std::ostringstream os;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (i) os << ',';
    os << '0' << std::oct << gens[i] << std::dec;  // octal convention
  }
  return os.str();
}

std::vector<std::uint32_t> decode_generators(const std::string& text) {
  std::vector<std::uint32_t> gens;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    gens.push_back(static_cast<std::uint32_t>(
        parse_u64("fec.conv.generators", item)));
  }
  return gens;
}

}  // namespace

std::string to_text(const OfdmParams& p) {
  std::ostringstream os;
  os.precision(17);
  os << "# OFDM Mother Model parameter deck: "
     << standard_name(p.standard) << "\n";
  os << "standard=" << static_cast<int>(p.standard) << "\n";
  os << "variant=" << p.variant << "\n";
  os << "sample_rate=" << p.sample_rate << "\n";
  os << "fft_size=" << p.fft_size << "\n";
  os << "cp_len=" << p.cp_len << "\n";
  os << "window_ramp=" << p.window_ramp << "\n";
  os << "hermitian=" << (p.hermitian ? 1 : 0) << "\n";
  os << "tone_map=" << encode_tone_map(p.tone_map) << "\n";
  os << "mapping=" << static_cast<int>(p.mapping) << "\n";
  os << "scheme=" << static_cast<int>(p.scheme) << "\n";
  os << "diff_kind=" << static_cast<int>(p.diff_kind) << "\n";
  os << "bit_table=" << encode_bit_table(p.bit_table) << "\n";
  os << "scrambler.enabled=" << (p.scrambler.enabled ? 1 : 0) << "\n";
  os << "scrambler.degree=" << p.scrambler.degree << "\n";
  os << "scrambler.taps=0x" << std::hex << p.scrambler.taps << std::dec
     << "\n";
  os << "scrambler.seed=0x" << std::hex << p.scrambler.seed << std::dec
     << "\n";
  os << "fec.rs_enabled=" << (p.fec.rs_enabled ? 1 : 0) << "\n";
  os << "fec.rs_n=" << p.fec.rs_n << "\n";
  os << "fec.rs_k=" << p.fec.rs_k << "\n";
  os << "fec.conv_enabled=" << (p.fec.conv_enabled ? 1 : 0) << "\n";
  os << "fec.conv.k=" << p.fec.conv.constraint_length << "\n";
  os << "fec.conv.generators=" << encode_generators(p.fec.conv.generators)
     << "\n";
  os << "fec.puncture=" << encode_puncture(p.fec.puncture) << "\n";
  os << "interleaver.kind=" << static_cast<int>(p.interleaver.kind)
     << "\n";
  os << "interleaver.rows=" << p.interleaver.rows << "\n";
  os << "interleaver.seed=0x" << std::hex << p.interleaver.seed
     << std::dec << "\n";
  os << "pilots.base_values=" << encode_cvec(p.pilots.base_values)
     << "\n";
  os << "pilots.polarity_prbs=" << (p.pilots.polarity_prbs ? 1 : 0)
     << "\n";
  os << "pilots.prbs_degree=" << p.pilots.prbs_degree << "\n";
  os << "pilots.prbs_taps=0x" << std::hex << p.pilots.prbs_taps
     << std::dec << "\n";
  os << "pilots.prbs_seed=0x" << std::hex << p.pilots.prbs_seed
     << std::dec << "\n";
  os << "pilots.boost=" << p.pilots.boost << "\n";
  os << "frame.symbols_per_frame=" << p.frame.symbols_per_frame << "\n";
  os << "frame.preamble=" << static_cast<int>(p.frame.preamble) << "\n";
  os << "frame.null_samples=" << p.frame.null_samples << "\n";
  os << "frame.phase_ref_seed=0x" << std::hex << p.frame.phase_ref_seed
     << std::dec << "\n";
  os << "nominal_rf_hz=" << p.nominal_rf_hz << "\n";
  return os.str();
}

OfdmParams from_text(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim whitespace.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    const std::size_t eq = line.find('=');
    OFDM_REQUIRE(eq != std::string::npos,
                 "params_io: expected key=value, got: " + line);
    OFDM_REQUIRE(eq > 0, "params_io: empty key in line: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }

  OfdmParams p;
  auto take = [&kv](const std::string& key) {
    const auto it = kv.find(key);
    OFDM_REQUIRE(it != kv.end(), "params_io: missing key " + key);
    const std::string v = it->second;
    kv.erase(it);
    return v;
  };
  auto take_u64 = [&](const std::string& key) {
    return parse_u64(key, take(key));
  };
  auto take_int = [&](const std::string& key) {
    return parse_int(key, take(key));
  };
  auto take_double = [&](const std::string& key) {
    return parse_double(key, take(key));
  };

  p.standard = static_cast<Standard>(take_int("standard"));
  p.variant = take("variant");
  p.sample_rate = take_double("sample_rate");
  p.fft_size = take_u64("fft_size");
  p.cp_len = take_u64("cp_len");
  p.window_ramp = take_u64("window_ramp");
  p.hermitian = take_u64("hermitian") != 0;
  p.tone_map = decode_tone_map(take("tone_map"));
  p.mapping = static_cast<MappingKind>(take_int("mapping"));
  p.scheme = static_cast<mapping::Scheme>(take_int("scheme"));
  p.diff_kind = static_cast<mapping::DiffKind>(take_int("diff_kind"));
  p.bit_table = decode_bit_table(take("bit_table"));
  p.scrambler.enabled = take_u64("scrambler.enabled") != 0;
  p.scrambler.degree =
      static_cast<unsigned>(take_u64("scrambler.degree"));
  p.scrambler.taps = take_u64("scrambler.taps");
  p.scrambler.seed = take_u64("scrambler.seed");
  p.fec.rs_enabled = take_u64("fec.rs_enabled") != 0;
  p.fec.rs_n = take_u64("fec.rs_n");
  p.fec.rs_k = take_u64("fec.rs_k");
  p.fec.conv_enabled = take_u64("fec.conv_enabled") != 0;
  p.fec.conv.constraint_length =
      static_cast<unsigned>(take_u64("fec.conv.k"));
  p.fec.conv.generators = decode_generators(take("fec.conv.generators"));
  p.fec.puncture = decode_puncture(take("fec.puncture"));
  p.interleaver.kind =
      static_cast<InterleaverKind>(take_int("interleaver.kind"));
  p.interleaver.rows = take_u64("interleaver.rows");
  p.interleaver.seed = take_u64("interleaver.seed");
  p.pilots.base_values = decode_cvec(take("pilots.base_values"));
  p.pilots.polarity_prbs = take_u64("pilots.polarity_prbs") != 0;
  p.pilots.prbs_degree =
      static_cast<unsigned>(take_u64("pilots.prbs_degree"));
  p.pilots.prbs_taps = take_u64("pilots.prbs_taps");
  p.pilots.prbs_seed = take_u64("pilots.prbs_seed");
  p.pilots.boost = take_double("pilots.boost");
  p.frame.symbols_per_frame = take_u64("frame.symbols_per_frame");
  p.frame.preamble =
      static_cast<PreambleKind>(take_int("frame.preamble"));
  p.frame.null_samples = take_u64("frame.null_samples");
  p.frame.phase_ref_seed = take_u64("frame.phase_ref_seed");
  p.nominal_rf_hz = take_double("nominal_rf_hz");

  OFDM_REQUIRE(kv.empty(),
               "params_io: unknown key " +
                   (kv.empty() ? std::string() : kv.begin()->first));
  validate(p);
  return p;
}

}  // namespace ofdm::core
