// The OFDM symbol modulator: frequency-domain assembly, IFFT, cyclic
// prefix and raised-cosine edge windowing with overlap-add.
//
// Output scaling is chosen so the time-domain signal has unit average
// power independent of the configuration — convenient for the RF chain,
// whose operating point is then set purely by its own gain blocks.
//
// The hot path is allocation-free in steady state: the IFFT body and the
// window tail live in reusable member buffers, the cyclic extension is
// written straight into the caller's output vector, and Hermitian (real
// output) configurations take the half-size IFFT fast path.
#pragma once

#include <span>

#include "core/params.hpp"
#include "dsp/fft.hpp"

namespace ofdm::core {

/// Build the full FFT-size frequency vector from data and pilot tone
/// values (ascending logical-frequency order each) into `freq`, resizing
/// it to p.fft_size. Applies Hermitian mirroring when the configuration
/// asks for a real output signal. Shared by Modulator::assemble and the
/// parallel SymbolPipeline so both produce bit-identical spectra.
void assemble_spectrum(const OfdmParams& p, const ToneLayout& layout,
                       std::span<const cplx> data_values,
                       std::span<const cplx> pilot_values, cvec& freq);

class Modulator {
 public:
  Modulator(const OfdmParams& params, const ToneLayout& layout);

  /// Scale factor applied to the raw (1/N-normalized) IFFT output.
  double tone_scale() const { return scale_; }

  /// Build the full FFT-size frequency vector from data and pilot tone
  /// values (ascending logical-frequency order each). Applies Hermitian
  /// mirroring when the configuration asks for a real output signal.
  cvec assemble(std::span<const cplx> data_values,
                std::span<const cplx> pilot_values) const;

  /// Modulate one assembled frequency vector, appending exactly
  /// cp_len + fft_size samples to `out`.
  void emit(std::span<const cplx> freq_bins, cvec& out);

  /// assemble() + emit() without materializing a fresh frequency vector:
  /// the spectrum is built in a reusable member buffer. Bit-identical to
  /// the two-step path; this is the batched transmit hot path.
  void modulate_symbol(std::span<const cplx> data_values,
                       std::span<const cplx> pilot_values, cvec& out);

  /// IFFT one assembled frequency vector into the scaled time-domain
  /// body (fft_size samples), without the cyclic extension. This is the
  /// per-symbol work the SymbolPipeline farms out to worker threads.
  void transform(std::span<const cplx> freq_bins, cvec& body) const;

  /// Append the cyclic extension + windowed body for an already
  /// transformed symbol (exactly what emit() does after its IFFT).
  /// Sequential: carries the overlap-add tail from symbol to symbol.
  void emit_body(std::span<const cplx> body, cvec& out);

  /// Append n zero samples (DAB null symbol), overlap-adding any pending
  /// window tail.
  void emit_silence(std::size_t n, cvec& out);

  /// Append raw samples untouched (externally generated preambles) and
  /// clear the window tail.
  void emit_raw(std::span<const cplx> samples, cvec& out);

  /// Append the trailing window ramp (end of burst).
  void flush(cvec& out);

  /// Drop windowing state (new burst).
  void reset();

 private:
  const OfdmParams& params_;
  const ToneLayout& layout_;
  dsp::Fft fft_;
  double scale_;
  rvec ramp_;   // raised-cosine up-ramp, window_ramp samples
  cvec tail_;   // pending overlap from the previous symbol
  cvec body_;   // reusable IFFT output buffer
  cvec freq_;   // reusable spectrum buffer (modulate_symbol)
};

}  // namespace ofdm::core
