// SymbolPipeline — parallel per-symbol IFFT for the Mother Model.
//
// Consecutive OFDM symbols are independent up to the overlap-add window
// tail: the frequency-domain assembly and the (dominant) IFFT of symbol
// k never read symbol k-1. The pipeline exploits that by farming
// assemble+IFFT+scale out to a small worker pool, while the strictly
// sequential parts — bit interleaving, (differential) mapping, the pilot
// PRBS and the overlap-add tail — stay on the calling thread.
//
// Determinism: every worker runs the exact same code (assemble_spectrum +
// Fft::inverse[_hermitian] with the same plan parameters) on a private
// plan, so the transformed bodies are bit-identical regardless of thread
// count or scheduling. threads == 1 configurations never construct a
// pipeline at all and keep the fully inline path.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/params.hpp"

namespace ofdm::core {

class SymbolPipeline {
 public:
  /// One OFDM symbol travelling through the pipeline: tone values in,
  /// scaled time-domain body out.
  struct Symbol {
    cvec data;    ///< data tone values, ascending logical frequency
    cvec pilots;  ///< pilot tone values
    cvec body;    ///< filled by transform(): fft_size scaled samples
  };

  /// `threads` >= 1 total workers (the calling thread counts as one, so
  /// threads - 1 std::jthread workers are spawned). The referenced
  /// params/layout must outlive the pipeline.
  SymbolPipeline(const OfdmParams& params, const ToneLayout& layout,
                 double tone_scale, std::size_t threads);
  ~SymbolPipeline();

  SymbolPipeline(const SymbolPipeline&) = delete;
  SymbolPipeline& operator=(const SymbolPipeline&) = delete;

  std::size_t threads() const { return workspaces_.size(); }

  /// Assemble + IFFT + scale every symbol of the batch in parallel;
  /// returns when all bodies are filled. The caller then feeds them in
  /// order through the sequential overlap-add tail.
  void transform(std::vector<Symbol>& symbols);

 private:
  struct Impl;
  struct Workspace;
  void work(std::vector<Symbol>& symbols, Workspace& ws);

  const OfdmParams& params_;
  const ToneLayout& layout_;
  double scale_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ofdm::core
