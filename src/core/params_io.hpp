// OfdmParams serialization: the paper's "set of parameters" as a
// portable text artifact.
//
// An APLAC user reconfigures the Mother Model by editing a parameter
// deck; this module provides exactly that workflow: save a
// configuration to a key=value text block, edit it, load it back. The
// format is line-oriented, order-insensitive, and round-trip exact
// (bit patterns for seeds/taps, full precision for rates).
#pragma once

#include <string>

#include "core/params.hpp"

namespace ofdm::core {

/// Render a parameter set as a key=value deck (one key per line,
/// '#' comments allowed when parsing). Vectors use compact run-length
/// or list encodings documented in the output itself.
std::string to_text(const OfdmParams& params);

/// Parse a deck produced by to_text() (or hand-written). Unknown keys
/// throw; the result is validate()d before being returned.
OfdmParams from_text(const std::string& text);

}  // namespace ofdm::core
