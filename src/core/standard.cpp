#include "core/standard.hpp"

namespace ofdm::core {

std::string standard_name(Standard s) {
  switch (s) {
    case Standard::kWlan80211a: return "IEEE 802.11a";
    case Standard::kWlan80211g: return "IEEE 802.11g";
    case Standard::kAdsl: return "ADSL (G.992.1)";
    case Standard::kDrm: return "DRM";
    case Standard::kVdsl: return "VDSL (G.993.1)";
    case Standard::kDab: return "DAB";
    case Standard::kDvbT: return "DVB-T";
    case Standard::kWman80216a: return "IEEE 802.16a";
    case Standard::kHomePlug: return "HomePlug 1.0";
    case Standard::kAdslPlusPlus: return "ADSL2+ (ADSL++)";
  }
  return "?";
}

}  // namespace ofdm::core
