// Helpers for constructing tone maps (the per-bin role table inside
// OfdmParams). Profiles compose these instead of writing out thousands of
// bins by hand.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"

namespace ofdm::core {

/// An all-null tone map of the given FFT size.
std::vector<ToneType> null_tone_map(std::size_t fft_size);

/// Set the tone at *logical* subcarrier index k (negative = below DC) in a
/// tone map of size fft_size. k must lie in [-fft_size/2, fft_size/2).
void set_tone(std::vector<ToneType>& map, long k, ToneType type);

/// Mark logical subcarriers lo..hi (inclusive, DC skipped when
/// `skip_dc`) as data tones.
void fill_data_range(std::vector<ToneType>& map, long lo, long hi,
                     bool skip_dc = true);

/// Read the role at logical index k.
ToneType tone_at(const std::vector<ToneType>& map, long k);

}  // namespace ofdm::core
