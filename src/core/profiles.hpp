// Standard profiles: factory functions producing the OfdmParams instance
// for each member of the ten-standard OFDM family. Each profile is a
// *derivation from the Mother Model* in the paper's sense — a set of
// parameter values, nothing more.
//
// Values come from the public standard texts (representative default mode
// per standard; deviations are documented inline and in DESIGN.md §4).
#pragma once

#include "core/params.hpp"

namespace ofdm::core {

/// IEEE 802.11a-1999 data rates (Mbit/s) selecting modulation + code rate.
enum class WlanRate { k6, k9, k12, k18, k24, k36, k48, k54 };

/// DRM (ETSI ES 201 980) robustness modes.
enum class DrmMode { kA, kB, kC, kD };

/// DAB (ETSI EN 300 401) transmission modes.
enum class DabMode { kI, kII, kIII, kIV };

/// DVB-T (ETSI EN 300 744) transmission modes.
enum class DvbtMode { k2k, k8k };

OfdmParams profile_wlan_80211a(WlanRate rate = WlanRate::k36);
OfdmParams profile_wlan_80211g(WlanRate rate = WlanRate::k36);
OfdmParams profile_adsl();
OfdmParams profile_adsl_plus_plus();
OfdmParams profile_vdsl();
OfdmParams profile_drm(DrmMode mode = DrmMode::kB);
OfdmParams profile_dab(DabMode mode = DabMode::kI);
OfdmParams profile_dvbt(DvbtMode mode = DvbtMode::k2k,
                        mapping::Scheme scheme = mapping::Scheme::kQam64);
OfdmParams profile_wman_80216a();
OfdmParams profile_homeplug();

/// The default profile for any family member (used by the family sweep).
OfdmParams profile_for(Standard standard);

/// Reference FEC overlay for standards whose default profile ships
/// uncoded (the DSL/DMT family and DRM), enabling coded-vs-uncoded
/// experiments without touching the golden-pinned defaults: the
/// byte-oriented DMT standards gain RS(255,239) (the G.992 family
/// code), everything else the K=7 rate-1/2 industry convolutional
/// code. Profiles that already carry FEC are returned unchanged. This
/// backs the deck grammar's `+fec` standard-token suffix.
OfdmParams with_reference_fec(OfdmParams params);

/// Coded bits per subcarrier and code rate for a WLAN rate.
mapping::Scheme wlan_rate_scheme(WlanRate rate);
coding::PuncturePattern wlan_rate_puncture(WlanRate rate);

}  // namespace ofdm::core
