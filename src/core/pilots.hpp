// Pilot tone value generation: per-symbol pilot vectors from the static
// base values, optional polarity PRBS and amplitude boost in PilotConfig.
#pragma once

#include <optional>

#include "coding/lfsr.hpp"
#include "core/params.hpp"

namespace ofdm::core {

class PilotGenerator {
 public:
  PilotGenerator(const PilotConfig& cfg, std::size_t pilot_count);

  /// Pilot values for the next OFDM symbol (advances the polarity PRBS).
  cvec next_symbol();

  /// Restart the polarity sequence (new frame).
  void reset();

 private:
  PilotConfig cfg_;
  std::size_t count_;
  std::optional<coding::Lfsr> prbs_;
};

}  // namespace ofdm::core
