#include "core/preamble.hpp"

#include <cmath>

#include "coding/lfsr.hpp"
#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace ofdm::core {

namespace {

// Place a logical-indexed (-26..26) value table into natural FFT bins.
cvec to_bins(std::span<const double> re, std::span<const double> im,
             std::size_t fft_size) {
  cvec bins(fft_size, cplx{0.0, 0.0});
  const long n = static_cast<long>(fft_size);
  const long half = static_cast<long>(re.size() / 2);  // 26 for WLAN
  for (long k = -half; k <= half; ++k) {
    const std::size_t idx = static_cast<std::size_t>(k + half);
    bins[static_cast<std::size_t>((k + n) % n)] = {re[idx], im[idx]};
  }
  return bins;
}

}  // namespace

cvec wlan_stf_bins() {
  // IEEE 802.11a-1999 eq. (17-6): S_{-26..26} = sqrt(13/6) * pattern of
  // (1+j)/-(1+j) on every fourth subcarrier.
  const double a = std::sqrt(13.0 / 6.0);
  double re[53] = {};
  double im[53] = {};
  // Logical indices with +(1+j): -24, -16, -4, 12, 16, 20, 24;
  // with -(1+j): -20, -12, -8, 4, 8.
  const long plus[] = {-24, -16, -4, 12, 16, 20, 24};
  const long minus[] = {-20, -12, -8, 4, 8};
  for (long k : plus) {
    re[k + 26] = a;
    im[k + 26] = a;
  }
  for (long k : minus) {
    re[k + 26] = -a;
    im[k + 26] = -a;
  }
  return to_bins(re, im, 64);
}

cvec wlan_ltf_bins() {
  // IEEE 802.11a-1999 eq. (17-8): L_{-26..26}.
  static const double kL[53] = {
      1,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1,
      1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  0,  1,
      -1, -1, 1,  1,  -1, 1,  -1, 1,  -1, -1, -1, -1, -1, 1,
      1,  -1, -1, 1,  -1, 1,  -1, 1,  1,  1,  1};
  double im[53] = {};
  return to_bins(std::span<const double>(kL, 53),
                 std::span<const double>(im, 53), 64);
}

cvec wlan_preamble(const OfdmParams& p) {
  OFDM_REQUIRE(p.fft_size == 64,
               "wlan_preamble: requires the 64-point WLAN geometry");
  // Cheap per-call plan: tables come from the process-wide plan cache.
  dsp::Fft fft(64);

  // Match the data-section scaling: 52 used tones -> scale 64/sqrt(52).
  // The STF's sqrt(13/6) factor then yields equal average power in the
  // short symbols (12 active tones * 52/12 boost).
  const double scale = 64.0 / std::sqrt(52.0);

  cvec stf_time = fft.inverse(wlan_stf_bins());
  cvec ltf_time = fft.inverse(wlan_ltf_bins());
  for (cplx& v : stf_time) v *= scale;
  for (cplx& v : ltf_time) v *= scale;

  cvec out;
  out.reserve(320);
  // t_SHORT: ten repetitions of the 16-sample short symbol.
  for (std::size_t rep = 0; rep < 10; ++rep) {
    for (std::size_t i = 0; i < 16; ++i) out.push_back(stf_time[i]);
  }
  // t_LONG: 32-sample guard (tail of the long symbol) + two full repeats.
  for (std::size_t i = 0; i < 32; ++i) out.push_back(ltf_time[32 + i]);
  for (std::size_t rep = 0; rep < 2; ++rep) {
    out.insert(out.end(), ltf_time.begin(), ltf_time.end());
  }
  return out;
}

cvec phase_reference_values(const OfdmParams& p, std::size_t count) {
  coding::Lfsr prbs(15, (std::uint64_t{1} << 14) | 1u,
                    p.frame.phase_ref_seed | 1u);
  cvec out(count);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (cplx& v : out) {
    const double re = prbs.step() ? inv_sqrt2 : -inv_sqrt2;
    const double im = prbs.step() ? inv_sqrt2 : -inv_sqrt2;
    v = {re, im};
  }
  return out;
}

}  // namespace ofdm::core
