// The Mother Model: a single behavioural OFDM transmitter that any member
// of the ten-standard family is an instance of.
//
// configure() is the paper's reconfiguration step — handing the model a
// different OfdmParams *is* the changeover from one standard to another.
// modulate() runs the complete digital baseband of the configured
// standard: scramble -> FEC -> interleave -> map -> pilot/frame assembly
// -> IFFT -> cyclic prefix -> windowing.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "core/modulator.hpp"
#include "core/params.hpp"
#include "core/pilots.hpp"
#include "mapping/bitloading.hpp"
#include "mapping/constellation.hpp"
#include "mapping/differential.hpp"

namespace ofdm::coding {
class PermutationInterleaver;
}

namespace ofdm::core {

class Transmitter {
 public:
  /// An unconfigured Mother Model; call configure() before use.
  Transmitter();
  ~Transmitter();
  Transmitter(Transmitter&&) noexcept;
  Transmitter& operator=(Transmitter&&) noexcept;

  explicit Transmitter(OfdmParams params);

  /// Reconfigure to a (possibly different) standard. Validates the
  /// parameter set and rebuilds all derived machinery; throws
  /// ofdm::ConfigError on inconsistent parameters, leaving the previous
  /// configuration intact.
  void configure(OfdmParams params);

  bool configured() const;
  const OfdmParams& params() const;
  const ToneLayout& layout() const;

  /// IFFT output scale (the receiver divides by this).
  double tone_scale() const;

  /// One modulated burst (frame) of baseband samples plus bookkeeping.
  struct Burst {
    cvec samples;
    std::size_t payload_bits = 0;
    std::size_t coded_bits = 0;       ///< after FEC and padding
    std::size_t data_symbols = 0;
    std::size_t null_samples = 0;     ///< leading silence
    std::size_t preamble_samples = 0; ///< training/phase-ref samples
    /// Sample index where payload symbol s begins.
    std::size_t symbol_start(std::size_t s, const OfdmParams& p) const {
      return null_samples + preamble_samples + s * p.symbol_len();
    }
  };

  /// Modulate a payload. The frame stretches to as many OFDM symbols as
  /// the coded payload needs (at least frame.symbols_per_frame).
  Burst modulate(std::span<const std::uint8_t> payload_bits);

  /// modulate() into a caller-owned Burst whose buffers are reused
  /// across calls (samples keep their capacity). Bit-identical output;
  /// this is the amortized path Monte-Carlo trial loops should use.
  void modulate_into(std::span<const std::uint8_t> payload_bits,
                     Burst& burst);

  /// Modulate a batch of payloads, reusing all internal scratch across
  /// the batch. `bursts` is resized to match; each entry's buffers are
  /// reused when already allocated.
  void modulate_batch(std::span<const bitvec> payloads,
                      std::vector<Burst>& bursts);

  /// Largest payload that fits frame.symbols_per_frame symbols exactly.
  std::size_t recommended_payload_bits() const;

  /// Coded-stream length (bits) the FEC chain produces for a payload,
  /// after padding to whole OFDM symbols.
  std::size_t coded_length(std::size_t payload_bits) const;

  /// Coded bits carried per OFDM symbol in this configuration.
  std::size_t bits_per_symbol() const;

  /// The bit pipeline alone (scramble + FEC + pad); exposed for tests
  /// and the RT-level cross-check.
  bitvec encode_payload(std::span<const std::uint8_t> payload_bits) const;

  /// Training samples this configuration prepends (empty if none).
  cvec preamble_samples() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace ofdm::core
