#include "core/params.hpp"

#include <bit>
#include <sstream>
#include <type_traits>

#include "common/error.hpp"

namespace ofdm::core {

ToneLayout make_tone_layout(const OfdmParams& p) {
  ToneLayout layout;
  const std::size_t n = p.fft_size;
  auto visit = [&](std::size_t bin) {
    switch (p.tone_map[bin]) {
      case ToneType::kData: layout.data_bins.push_back(bin); break;
      case ToneType::kPilot: layout.pilot_bins.push_back(bin); break;
      case ToneType::kNull: break;
    }
  };
  if (p.hermitian) {
    // Only the positive-frequency half carries independent content.
    for (std::size_t bin = 1; bin < n / 2; ++bin) visit(bin);
  } else {
    // Logical order: -N/2 ... -1, 0, 1 ... N/2-1 maps to bins
    // N/2 ... N-1, 0, 1 ... N/2-1.
    for (std::size_t k = 0; k < n; ++k) {
      visit((k + n / 2) % n);
    }
  }
  return layout;
}

void validate(const OfdmParams& p) {
  OFDM_REQUIRE(p.fft_size >= 2, "OfdmParams: fft_size must be >= 2");
  OFDM_REQUIRE(p.sample_rate > 0.0, "OfdmParams: sample_rate must be > 0");
  OFDM_REQUIRE(p.cp_len < 4 * p.fft_size,
               "OfdmParams: cyclic prefix implausibly long");
  OFDM_REQUIRE(p.tone_map.size() == p.fft_size,
               "OfdmParams: tone_map must have one entry per FFT bin");
  OFDM_REQUIRE(p.window_ramp <= p.cp_len,
               "OfdmParams: window ramp cannot exceed the cyclic prefix");
  OFDM_REQUIRE(p.frame.symbols_per_frame >= 1,
               "OfdmParams: need at least one symbol per frame");
  OFDM_REQUIRE(p.threads >= 1,
               "OfdmParams: threads must be >= 1 (the caller counts)");

  if (p.hermitian) {
    OFDM_REQUIRE(p.tone_map[0] == ToneType::kNull,
                 "OfdmParams: hermitian output requires a null DC bin");
    for (std::size_t bin = p.fft_size / 2; bin < p.fft_size; ++bin) {
      OFDM_REQUIRE(p.tone_map[bin] == ToneType::kNull,
                   "OfdmParams: hermitian output requires the negative-"
                   "frequency half of tone_map to be null (it is derived)");
    }
  }

  const ToneLayout layout = make_tone_layout(p);
  OFDM_REQUIRE(!layout.data_bins.empty(),
               "OfdmParams: configuration has no data tones");
  OFDM_REQUIRE(p.pilots.base_values.size() == layout.pilot_bins.size(),
               "OfdmParams: pilots.base_values must match the number of "
               "pilot tones in tone_map");
  if (p.pilots.polarity_prbs) {
    OFDM_REQUIRE(p.pilots.prbs_taps != 0 && p.pilots.prbs_seed != 0,
                 "OfdmParams: pilot polarity PRBS needs taps and seed");
  }

  switch (p.mapping) {
    case MappingKind::kFixed:
      break;
    case MappingKind::kDifferential:
      OFDM_REQUIRE(p.frame.preamble == PreambleKind::kPhaseReference,
                   "OfdmParams: differential mapping needs a phase "
                   "reference symbol to seed the mapper");
      break;
    case MappingKind::kBitTable:
      OFDM_REQUIRE(p.bit_table.size() == layout.data_bins.size(),
                   "OfdmParams: bit_table must have one entry per data "
                   "tone");
      OFDM_REQUIRE(mapping::table_bits(p.bit_table) > 0,
                   "OfdmParams: bit_table carries no bits");
      break;
  }

  if (p.scrambler.enabled) {
    OFDM_REQUIRE(p.scrambler.taps != 0 && p.scrambler.seed != 0,
                 "OfdmParams: enabled scrambler needs taps and seed");
  }
  if (p.fec.rs_enabled) {
    OFDM_REQUIRE(p.fec.rs_k < p.fec.rs_n && p.fec.rs_n <= 255,
                 "OfdmParams: Reed-Solomon needs k < n <= 255");
  }
  if (p.fec.conv_enabled) {
    OFDM_REQUIRE(!p.fec.puncture.keep.empty() &&
                     p.fec.puncture.keep.size() ==
                         p.fec.conv.generators.size(),
                 "OfdmParams: puncture pattern must match generator count");
  }
  if (p.interleaver.kind == InterleaverKind::kWlan) {
    OFDM_REQUIRE(p.mapping == MappingKind::kFixed,
                 "OfdmParams: the WLAN interleaver assumes fixed mapping");
    OFDM_REQUIRE(coded_bits_per_symbol(p) % 16 == 0,
                 "OfdmParams: WLAN interleaver needs N_CBPS divisible by "
                 "16");
  }
  if (p.interleaver.kind == InterleaverKind::kBlock) {
    OFDM_REQUIRE(p.interleaver.rows >= 1 &&
                     coded_bits_per_symbol(p) % p.interleaver.rows == 0,
                 "OfdmParams: block interleaver rows must divide the "
                 "coded bits per symbol");
  }
}

std::size_t coded_bits_per_symbol(const OfdmParams& p) {
  const ToneLayout layout = make_tone_layout(p);
  switch (p.mapping) {
    case MappingKind::kFixed:
      return layout.data_bins.size() * mapping::bits_per_symbol(p.scheme);
    case MappingKind::kDifferential:
      return layout.data_bins.size() *
             mapping::diff_bits_per_symbol(p.diff_kind);
    case MappingKind::kBitTable:
      return mapping::table_bits(p.bit_table);
  }
  return 0;
}

namespace {

// Flatten a parameter set to named scalar fields. Structured sub-objects
// that profiles generate from a handful of knobs (tone map, bit table,
// pilot values) are folded to one digest field each, so "parameter
// distance" counts design decisions, not FFT bins.
std::vector<std::pair<std::string, std::string>> fields(const OfdmParams& p) {
  std::vector<std::pair<std::string, std::string>> f;
  auto add = [&f](const std::string& name, const auto& v) {
    std::ostringstream os;
    os << v;
    f.emplace_back(name, os.str());
  };
  auto digest = [](const auto& container) {
    std::size_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t x) {
      for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xFFu;
        h *= 0x100000001b3ull;
      }
    };
    for (const auto& v : container) {
      using T = std::decay_t<decltype(v)>;
      if constexpr (std::is_enum_v<T>) {
        mix(static_cast<std::uint64_t>(v));
      } else if constexpr (std::is_integral_v<T>) {
        mix(static_cast<std::uint64_t>(v));
      } else if constexpr (std::is_same_v<T, cplx>) {
        mix(std::bit_cast<std::uint64_t>(v.real()));
        mix(std::bit_cast<std::uint64_t>(v.imag()));
      }
    }
    return h;
  };

  add("standard", static_cast<int>(p.standard));
  add("sample_rate", p.sample_rate);
  add("fft_size", p.fft_size);
  add("cp_len", p.cp_len);
  add("window_ramp", p.window_ramp);
  add("hermitian", p.hermitian);
  add("tone_map", digest(p.tone_map));
  add("mapping", static_cast<int>(p.mapping));
  add("scheme", static_cast<int>(p.scheme));
  add("diff_kind", static_cast<int>(p.diff_kind));
  add("bit_table", digest(p.bit_table));
  add("scrambler.enabled", p.scrambler.enabled);
  add("scrambler.degree", p.scrambler.degree);
  add("scrambler.taps", p.scrambler.taps);
  add("scrambler.seed", p.scrambler.seed);
  add("fec.rs_enabled", p.fec.rs_enabled);
  add("fec.rs_n", p.fec.rs_n);
  add("fec.rs_k", p.fec.rs_k);
  add("fec.conv_enabled", p.fec.conv_enabled);
  add("fec.conv.K", p.fec.conv.constraint_length);
  add("fec.conv.gen", digest(p.fec.conv.generators));
  {
    std::size_t h = 0;
    for (const auto& stream : p.fec.puncture.keep) h ^= digest(stream) * 31;
    add("fec.puncture", h);
  }
  add("interleaver.kind", static_cast<int>(p.interleaver.kind));
  add("interleaver.rows", p.interleaver.rows);
  add("interleaver.seed", p.interleaver.seed);
  add("pilots.base", digest(p.pilots.base_values));
  add("pilots.polarity_prbs", p.pilots.polarity_prbs);
  add("pilots.prbs_degree", p.pilots.prbs_degree);
  add("pilots.prbs_taps", p.pilots.prbs_taps);
  add("pilots.prbs_seed", p.pilots.prbs_seed);
  add("pilots.boost", p.pilots.boost);
  add("frame.symbols", p.frame.symbols_per_frame);
  add("frame.preamble", static_cast<int>(p.frame.preamble));
  add("frame.null_samples", p.frame.null_samples);
  add("frame.phase_ref_seed", p.frame.phase_ref_seed);
  add("nominal_rf_hz", p.nominal_rf_hz);
  return f;
}

}  // namespace

std::size_t parameter_count(const OfdmParams& p) { return fields(p).size(); }

std::size_t parameter_distance(const OfdmParams& a, const OfdmParams& b) {
  const auto fa = fields(a);
  const auto fb = fields(b);
  std::size_t d = 0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (fa[i].second != fb[i].second) ++d;
  }
  return d;
}

std::string summarize(const OfdmParams& p) {
  const ToneLayout layout = make_tone_layout(p);
  std::ostringstream os;
  os << standard_name(p.standard);
  if (!p.variant.empty()) os << " (" << p.variant << ")";
  os << ": N=" << p.fft_size << ", CP=" << p.cp_len
     << ", data tones=" << layout.data_bins.size()
     << ", pilots=" << layout.pilot_bins.size()
     << ", df=" << p.subcarrier_spacing_hz() / 1e3 << " kHz"
     << ", fs=" << p.sample_rate / 1e6 << " MHz";
  return os.str();
}

}  // namespace ofdm::core
