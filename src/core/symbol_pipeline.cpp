#include "core/symbol_pipeline.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "core/modulator.hpp"
#include "dsp/fft.hpp"
#include "obs/trace.hpp"

namespace ofdm::core {

// Per-worker state: Fft plans keep mutable scratch, so every worker owns
// a private plan (and spectrum buffer) — identical plan parameters keep
// the results bit-identical across workers.
struct SymbolPipeline::Workspace {
  dsp::Fft fft;
  cvec freq;
  explicit Workspace(std::size_t n) : fft(n) {}
};

struct SymbolPipeline::Impl {
  std::mutex m;
  std::condition_variable cv;       // workers: a batch was posted
  std::condition_variable done_cv;  // transform(): batch drained
  std::vector<Symbol>* batch = nullptr;  // guarded by m
  std::uint64_t generation = 0;          // guarded by m
  std::size_t active = 0;  // workers currently inside work(); guarded by m
  bool stopping = false;                 // guarded by m
  std::exception_ptr error;              // first failure; guarded by m
  std::size_t error_index = 0;           // symbol of first failure; ditto
  std::atomic<std::size_t> next{0};       // work-stealing item cursor
  std::atomic<std::size_t> remaining{0};  // items not yet completed
  std::vector<std::jthread> threads;
};

SymbolPipeline::SymbolPipeline(const OfdmParams& params,
                               const ToneLayout& layout, double tone_scale,
                               std::size_t threads)
    : params_(params),
      layout_(layout),
      scale_(tone_scale),
      impl_(std::make_unique<Impl>()) {
  OFDM_REQUIRE(threads >= 1, "SymbolPipeline: need at least one thread");
  workspaces_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workspaces_.push_back(std::make_unique<Workspace>(params_.fft_size));
  }
  for (std::size_t w = 1; w < threads; ++w) {
    impl_->threads.emplace_back([this, w] {
      Impl& s = *impl_;
      std::uint64_t seen = 0;
      for (;;) {
        std::vector<Symbol>* batch = nullptr;
        {
          std::unique_lock lk(s.m);
          s.cv.wait(lk, [&] {
            return s.stopping ||
                   (s.generation != seen && s.batch != nullptr);
          });
          if (s.stopping) return;
          seen = s.generation;
          batch = s.batch;
          ++s.active;
        }
        work(*batch, *workspaces_[w]);
        {
          std::lock_guard lk(s.m);
          --s.active;
          s.done_cv.notify_all();
        }
      }
    });
  }
}

SymbolPipeline::~SymbolPipeline() {
  {
    std::lock_guard lk(impl_->m);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  // std::jthread joins on destruction.
}

void SymbolPipeline::work(std::vector<Symbol>& symbols, Workspace& ws) {
  // One span per worker per batch: the fan-out/joint structure of the
  // pipeline shows up directly in the Chrome trace.
  obs::ScopedSpan span("SymbolPipeline::work");
  Impl& s = *impl_;
  const std::size_t count = symbols.size();
  for (;;) {
    const std::size_t i = s.next.fetch_add(1);
    if (i >= count) return;
    try {
      Symbol& sym = symbols[i];
      assemble_spectrum(params_, layout_, sym.data, sym.pilots, ws.freq);
      sym.body.resize(params_.fft_size);
      if (params_.hermitian) {
        ws.fft.inverse_hermitian(ws.freq, sym.body, scale_);
      } else {
        ws.fft.inverse(ws.freq, sym.body, scale_);
      }
    } catch (...) {
      std::lock_guard lk(s.m);
      if (!s.error) {
        s.error = std::current_exception();
        s.error_index = i;
      }
    }
    if (s.remaining.fetch_sub(1) == 1) {
      std::lock_guard lk(s.m);
      s.done_cv.notify_all();
    }
  }
}

void SymbolPipeline::transform(std::vector<Symbol>& symbols) {
  if (symbols.empty()) return;
  Impl& s = *impl_;
  {
    std::lock_guard lk(s.m);
    s.batch = &symbols;
    s.next.store(0);
    s.remaining.store(symbols.size());
    s.error = nullptr;
    ++s.generation;
  }
  s.cv.notify_all();
  // The calling thread is a full member of the pool.
  work(symbols, *workspaces_[0]);
  {
    std::unique_lock lk(s.m);
    // Wait for completion AND for every worker to have left work() —
    // only then is it safe to hand the batch back (or post a new one).
    s.done_cv.wait(lk, [&] {
      return s.remaining.load() == 0 && s.active == 0;
    });
    s.batch = nullptr;
    if (s.error) {
      std::exception_ptr e = s.error;
      const std::size_t index = s.error_index;
      s.error = nullptr;
      // Rethrow with the failing symbol's index attached — a worker
      // exception loses its position in the batch otherwise.
      try {
        std::rethrow_exception(e);
      } catch (const std::exception& ex) {
        throw StreamError("symbol-pipeline", index, 0,
                          std::string("symbol transform failed: ") +
                              ex.what());
      }
    }
  }
}

}  // namespace ofdm::core
