#include "core/transmitter.hpp"

#include <algorithm>

#include "coding/interleaver.hpp"
#include "coding/lfsr.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/viterbi.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/preamble.hpp"
#include "core/symbol_pipeline.hpp"
#include "obs/trace.hpp"

namespace ofdm::core {

struct Transmitter::State {
  OfdmParams params;
  ToneLayout layout;
  std::optional<Modulator> modulator;
  std::optional<SymbolPipeline> pipeline;  ///< only when params.threads > 1
  std::optional<mapping::Constellation> constellation;
  std::optional<mapping::DmtMapper> dmt;
  std::optional<mapping::DifferentialMapper> diff;
  std::optional<coding::PermutationInterleaver> bit_interleaver;
  std::optional<coding::PermutationInterleaver> cell_interleaver;
  std::optional<coding::ConvEncoder> conv;
  std::optional<coding::ReedSolomon> rs;
  std::optional<PilotGenerator> pilots;
  std::size_t cbps = 0;

  // Scratch for the batched transmit path; grows once, reused across
  // bursts.
  cvec mapped_all;    ///< whole-stream block map (fast path)
  cvec data_scratch;  ///< per-symbol tone values
};

Transmitter::Transmitter() = default;
Transmitter::~Transmitter() = default;
Transmitter::Transmitter(Transmitter&&) noexcept = default;
Transmitter& Transmitter::operator=(Transmitter&&) noexcept = default;

Transmitter::Transmitter(OfdmParams params) { configure(std::move(params)); }

void Transmitter::configure(OfdmParams params) {
  validate(params);
  auto s = std::make_unique<State>();
  s->params = std::move(params);
  const OfdmParams& p = s->params;
  s->layout = make_tone_layout(p);
  s->modulator.emplace(s->params, s->layout);
  s->cbps = coded_bits_per_symbol(p);

  switch (p.mapping) {
    case MappingKind::kFixed:
      s->constellation = mapping::Constellation::make(p.scheme);
      break;
    case MappingKind::kDifferential:
      s->diff.emplace(p.diff_kind, s->layout.data_bins.size());
      break;
    case MappingKind::kBitTable:
      s->dmt.emplace(p.bit_table);
      break;
  }

  switch (p.interleaver.kind) {
    case InterleaverKind::kNone:
      break;
    case InterleaverKind::kWlan:
      s->bit_interleaver = coding::make_wlan_interleaver(
          s->cbps, mapping::bits_per_symbol(p.scheme));
      break;
    case InterleaverKind::kBlock:
      s->bit_interleaver = coding::make_block_interleaver(
          p.interleaver.rows, s->cbps / p.interleaver.rows);
      break;
    case InterleaverKind::kCell:
      s->cell_interleaver = coding::make_random_interleaver(
          s->layout.data_bins.size(), p.interleaver.seed);
      break;
  }

  if (p.fec.conv_enabled) s->conv.emplace(p.fec.conv);
  if (p.fec.rs_enabled) s->rs.emplace(p.fec.rs_n, p.fec.rs_k);
  s->pilots.emplace(p.pilots, s->layout.pilot_bins.size());
  if (p.threads > 1) {
    s->pipeline.emplace(s->params, s->layout,
                        s->modulator->tone_scale(), p.threads);
  }

  state_ = std::move(s);  // commit only after everything succeeded
}

bool Transmitter::configured() const { return state_ != nullptr; }

namespace {
const char* kUnconfigured = "Transmitter: configure() first";
}

const OfdmParams& Transmitter::params() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  return state_->params;
}

const ToneLayout& Transmitter::layout() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  return state_->layout;
}

double Transmitter::tone_scale() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  return state_->modulator->tone_scale();
}

std::size_t Transmitter::bits_per_symbol() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  return state_->cbps;
}

std::size_t Transmitter::coded_length(std::size_t payload_bits) const {
  OFDM_REQUIRE(state_, kUnconfigured);
  const OfdmParams& p = state_->params;
  std::size_t bits = payload_bits;
  if (p.fec.rs_enabled) {
    const std::size_t bytes = (bits + 7) / 8;
    const std::size_t blocks = (bytes + p.fec.rs_k - 1) / p.fec.rs_k;
    bits = std::max<std::size_t>(blocks, 1) * p.fec.rs_n * 8;
  }
  if (p.fec.conv_enabled) {
    const std::size_t steps = bits + p.fec.conv.constraint_length - 1;
    const auto& pat = state_->params.fec.puncture;
    const std::size_t period = pat.period();
    const std::size_t kept = pat.kept_per_period();
    std::size_t coded = (steps / period) * kept;
    for (std::size_t r = 0; r < steps % period; ++r) {
      for (const auto& stream : pat.keep) coded += stream[r];
    }
    bits = coded;
  }
  // Pad to whole symbols, at least the configured frame length.
  const std::size_t min_syms = state_->params.frame.symbols_per_frame;
  const std::size_t syms =
      std::max(min_syms, (bits + state_->cbps - 1) / state_->cbps);
  return syms * state_->cbps;
}

std::size_t Transmitter::recommended_payload_bits() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  const std::size_t capacity =
      state_->params.frame.symbols_per_frame * state_->cbps;
  // coded_length() is monotone in the payload size; find the largest
  // payload that still fits the configured frame.
  std::size_t lo = 0;
  std::size_t hi = capacity;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (coded_length(mid) <= capacity) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

bitvec Transmitter::encode_payload(
    std::span<const std::uint8_t> payload_bits) const {
  OFDM_REQUIRE(state_, kUnconfigured);
  const OfdmParams& p = state_->params;
  bitvec bits(payload_bits.begin(), payload_bits.end());

  if (p.scrambler.enabled) {
    coding::Scrambler scr(p.scrambler.degree, p.scrambler.taps,
                          p.scrambler.seed);
    bits = scr.process(bits);
  }

  // Filler PRBS: frame padding (RS block fill and whole-symbol fill)
  // carries pseudo-random bits, not zeros — a run of zero bits would map
  // to constellation corner points and skew the transmit power, whereas
  // the real standards keep padding energy-dispersed. The receiver
  // truncates the padding away, so the exact sequence only needs to be
  // deterministic.
  coding::Lfsr filler(15, (std::uint64_t{1} << 14) | 1u, 0x2A2A);

  if (state_->rs) {
    while (bits.size() % 8 != 0) bits.push_back(filler.step());
    bytevec bytes = bits_to_bytes_msb(bits);
    const std::size_t k = state_->rs->k();
    const std::size_t blocks =
        std::max<std::size_t>((bytes.size() + k - 1) / k, 1);
    while (bytes.size() < blocks * k) {
      std::uint8_t b = 0;
      for (int i = 0; i < 8; ++i) {
        b = static_cast<std::uint8_t>((b << 1) | filler.step());
      }
      bytes.push_back(b);
    }
    bytevec coded_bytes;
    coded_bytes.reserve(bytes.size() / k * state_->rs->n());
    for (std::size_t off = 0; off < bytes.size(); off += k) {
      const bytevec block = state_->rs->encode(
          std::span<const std::uint8_t>(bytes).subspan(off, k));
      coded_bytes.insert(coded_bytes.end(), block.begin(), block.end());
    }
    bits = bytes_to_bits_msb(coded_bytes);
  }

  if (state_->conv) {
    bits = coding::puncture(state_->conv->encode_terminated(bits),
                            p.fec.puncture);
  }

  const std::size_t target = coded_length(payload_bits.size());
  OFDM_REQUIRE(bits.size() <= target,
               "Transmitter: internal coded-length mismatch");
  while (bits.size() < target) bits.push_back(filler.step());
  return bits;
}

cvec Transmitter::preamble_samples() const {
  OFDM_REQUIRE(state_, kUnconfigured);
  const OfdmParams& p = state_->params;
  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      return {};
    case PreambleKind::kWlan:
      return wlan_preamble(p);
    case PreambleKind::kPhaseReference: {
      const cvec data =
          phase_reference_values(p, state_->layout.data_bins.size());
      const cvec pil(p.pilots.base_values);
      Modulator mod(p, state_->layout);
      cvec out;
      mod.emit(mod.assemble(data, pil), out);
      return out;
    }
  }
  return {};
}

Transmitter::Burst Transmitter::modulate(
    std::span<const std::uint8_t> payload_bits) {
  Burst burst;
  modulate_into(payload_bits, burst);
  return burst;
}

void Transmitter::modulate_batch(std::span<const bitvec> payloads,
                                 std::vector<Burst>& bursts) {
  bursts.resize(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    modulate_into(payloads[i], bursts[i]);
  }
}

void Transmitter::modulate_into(std::span<const std::uint8_t> payload_bits,
                                Burst& burst) {
  OFDM_REQUIRE(state_, kUnconfigured);
  obs::ScopedSpan span("Transmitter::modulate");
  State& s = *state_;
  const OfdmParams& p = s.params;

  burst.samples.clear();  // keeps capacity for burst reuse
  burst.payload_bits = payload_bits.size();
  burst.null_samples = 0;
  burst.preamble_samples = 0;

  const bitvec coded = encode_payload(payload_bits);
  burst.coded_bits = coded.size();
  burst.data_symbols = coded.size() / s.cbps;

  s.modulator->reset();
  s.pilots->reset();

  cvec& out = burst.samples;
  out.reserve(p.frame.null_samples +
              (burst.data_symbols + 2) * p.symbol_len());

  // 1. Null symbol (DAB-style leading silence).
  if (p.frame.null_samples > 0) {
    s.modulator->emit_silence(p.frame.null_samples, out);
    burst.null_samples = p.frame.null_samples;
  }

  // 2. Preamble / phase reference.
  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      break;
    case PreambleKind::kWlan: {
      const cvec pre = wlan_preamble(p);
      s.modulator->emit_raw(pre, out);
      burst.preamble_samples = pre.size();
      break;
    }
    case PreambleKind::kPhaseReference: {
      const cvec ref_data =
          phase_reference_values(p, s.layout.data_bins.size());
      const cvec ref_pilots(p.pilots.base_values);
      const std::size_t before = out.size();
      s.modulator->emit(s.modulator->assemble(ref_data, ref_pilots), out);
      burst.preamble_samples = out.size() - before;
      if (s.diff) s.diff->reset(ref_data);
      break;
    }
  }

  // 3. Payload symbols. Bits -> tone values is inherently sequential
  // (differential mapping and the pilot PRBS carry state from symbol to
  // symbol); the assemble+IFFT step is not, and goes through the
  // SymbolPipeline when threads > 1 — bit-exact with the inline path.
  //
  // Fixed-constellation configurations with no interleaving have no
  // per-symbol bit machinery at all, so the whole coded stream is
  // block-mapped in one kernel sweep and each symbol just takes a view
  // of its slice — the same values map_all would produce per symbol.
  const std::size_t n_data = s.layout.data_bins.size();
  const bool block_map = p.mapping == MappingKind::kFixed &&
                         !s.bit_interleaver && !s.cell_interleaver;
  if (block_map) s.constellation->map_into(coded, s.mapped_all);

  auto map_symbol_into = [&](std::size_t sym, cvec& dst) {
    const auto sym_bits = std::span<const std::uint8_t>(coded).subspan(
        sym * s.cbps, s.cbps);

    // Per-symbol bit interleaving.
    bitvec permuted;
    std::span<const std::uint8_t> mapped_bits = sym_bits;
    if (s.bit_interleaver) {
      permuted = s.bit_interleaver->interleave(sym_bits);
      mapped_bits = permuted;
    }

    // Bits -> tone values.
    switch (p.mapping) {
      case MappingKind::kFixed:
        s.constellation->map_into(mapped_bits, dst);
        break;
      case MappingKind::kDifferential:
        dst = s.diff->map_symbol(mapped_bits);
        break;
      case MappingKind::kBitTable:
        dst = s.dmt->map_symbol(mapped_bits);
        break;
    }

    // Cell interleaving permutes mapped values across the data tones.
    if (s.cell_interleaver) {
      dst = s.cell_interleaver->interleave(std::span<const cplx>(dst));
    }
  };

  if (s.pipeline && burst.data_symbols > 1) {
    std::vector<SymbolPipeline::Symbol> jobs(burst.data_symbols);
    for (std::size_t sym = 0; sym < burst.data_symbols; ++sym) {
      if (block_map) {
        jobs[sym].data.assign(
            s.mapped_all.begin() +
                static_cast<std::ptrdiff_t>(sym * n_data),
            s.mapped_all.begin() +
                static_cast<std::ptrdiff_t>((sym + 1) * n_data));
      } else {
        map_symbol_into(sym, jobs[sym].data);
      }
      jobs[sym].pilots = s.pilots->next_symbol();
    }
    s.pipeline->transform(jobs);
    for (std::size_t sym = 0; sym < burst.data_symbols; ++sym) {
      s.modulator->emit_body(jobs[sym].body, out);
    }
  } else {
    for (std::size_t sym = 0; sym < burst.data_symbols; ++sym) {
      std::span<const cplx> data_values;
      if (block_map) {
        data_values = std::span<const cplx>(s.mapped_all)
                          .subspan(sym * n_data, n_data);
      } else {
        map_symbol_into(sym, s.data_scratch);
        data_values = s.data_scratch;
      }
      const cvec pilot_values = s.pilots->next_symbol();
      s.modulator->modulate_symbol(data_values, pilot_values, out);
    }
  }

  s.modulator->flush(out);
}

}  // namespace ofdm::core
