#include "core/tone_map.hpp"

#include "common/error.hpp"

namespace ofdm::core {

namespace {
std::size_t logical_to_bin(const std::vector<ToneType>& map, long k) {
  const long n = static_cast<long>(map.size());
  OFDM_REQUIRE(k >= -n / 2 && k < n / 2,
               "tone index outside [-N/2, N/2)");
  return static_cast<std::size_t>((k + n) % n);
}
}  // namespace

std::vector<ToneType> null_tone_map(std::size_t fft_size) {
  return std::vector<ToneType>(fft_size, ToneType::kNull);
}

void set_tone(std::vector<ToneType>& map, long k, ToneType type) {
  map[logical_to_bin(map, k)] = type;
}

void fill_data_range(std::vector<ToneType>& map, long lo, long hi,
                     bool skip_dc) {
  for (long k = lo; k <= hi; ++k) {
    if (skip_dc && k == 0) continue;
    set_tone(map, k, ToneType::kData);
  }
}

ToneType tone_at(const std::vector<ToneType>& map, long k) {
  return map[logical_to_bin(map, k)];
}

}  // namespace ofdm::core
