// OfdmParams — the Mother Model's reconfiguration parameter set.
//
// This struct is the paper's central idea made concrete: *one* behavioural
// transmitter model whose changeover from standard to standard "is achieved
// simply by changing the parameters of one Mother Model". Everything a
// family member needs — symbol geometry, tone roles, mapping, coding,
// scrambling, interleaving, framing — is plain data here; the Transmitter
// interprets it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "coding/convolutional.hpp"
#include "common/types.hpp"
#include "core/standard.hpp"
#include "mapping/bitloading.hpp"
#include "mapping/constellation.hpp"
#include "mapping/differential.hpp"

namespace ofdm::core {

/// Role of one FFT bin within the OFDM symbol.
enum class ToneType : std::uint8_t {
  kNull,   ///< guard band / virtual carrier / DC null
  kData,   ///< carries payload constellation points
  kPilot,  ///< carries a known reference value
};

/// How payload bits become complex tone values.
enum class MappingKind {
  kFixed,         ///< one constellation for all data tones
  kDifferential,  ///< phase-differential in time per carrier (DAB, HomePlug)
  kBitTable,      ///< per-tone bit loading (DMT: ADSL/ADSL2+/VDSL)
};

/// Additive scrambler configuration (see coding/lfsr.hpp conventions).
struct ScramblerConfig {
  bool enabled = false;
  unsigned degree = 7;
  std::uint64_t taps = 0;
  std::uint64_t seed = 1;
};

/// Forward error correction chain: optional outer Reed-Solomon followed by
/// an optional inner convolutional code with puncturing.
struct FecConfig {
  bool rs_enabled = false;
  std::size_t rs_n = 204;
  std::size_t rs_k = 188;
  bool conv_enabled = false;
  coding::ConvCode conv = coding::k7_industry_code();
  coding::PuncturePattern puncture = coding::puncture_none();
};

/// Per-OFDM-symbol interleaving of the coded bit stream.
enum class InterleaverKind {
  kNone,
  kWlan,    ///< 802.11a two-permutation interleaver over N_CBPS
  kBlock,   ///< rows x cols block interleaver over one symbol's bits
  kCell,    ///< seeded pseudo-random permutation of mapped QAM cells
};

struct InterleaverConfig {
  InterleaverKind kind = InterleaverKind::kNone;
  std::size_t rows = 1;        ///< kBlock only
  std::uint64_t seed = 1;      ///< kCell only
};

/// Known-reference (pilot) tone behaviour. Pilots take a fixed base value
/// per pilot tone, multiplied by a per-symbol polarity PRBS when enabled
/// (the 802.11a p_n sequence, DVB's pilot modulation, ...).
struct PilotConfig {
  /// Base value per pilot tone, in ascending logical-frequency order.
  cvec base_values;
  bool polarity_prbs = false;
  unsigned prbs_degree = 7;
  std::uint64_t prbs_taps = 0;
  std::uint64_t prbs_seed = 0x7F;
  double boost = 1.0;  ///< amplitude boost (DVB pilots use 4/3)
};

/// Frame-level structure around the payload symbols.
enum class PreambleKind {
  kNone,
  kWlan,            ///< 802.11a short + long training fields
  kPhaseReference,  ///< one known reference symbol (DAB/DRM style); also
                    ///< seeds the differential mapper
};

struct FrameConfig {
  std::size_t symbols_per_frame = 1;   ///< payload symbols per frame
  PreambleKind preamble = PreambleKind::kNone;
  std::size_t null_samples = 0;        ///< leading silence (DAB null symbol)
  std::uint64_t phase_ref_seed = 1;    ///< kPhaseReference generator seed
};

/// The complete reconfiguration state of the Mother Model.
struct OfdmParams {
  Standard standard = Standard::kWlan80211a;
  std::string variant;          ///< human-readable mode tag ("mode B", ...)

  // --- symbol geometry -------------------------------------------------
  double sample_rate = 20e6;    ///< complex baseband samples/s
  std::size_t fft_size = 64;
  std::size_t cp_len = 16;
  std::size_t window_ramp = 0;  ///< raised-cosine edge overlap samples
  bool hermitian = false;       ///< real (DMT/powerline) output via
                                ///< conjugate-symmetric spectrum

  /// Role of every FFT bin, natural order (index 0 = DC). When
  /// `hermitian` is set, only bins 1 .. fft_size/2 - 1 may be non-null;
  /// the negative-frequency half is derived.
  std::vector<ToneType> tone_map;

  // --- bits -> tones ---------------------------------------------------
  MappingKind mapping = MappingKind::kFixed;
  mapping::Scheme scheme = mapping::Scheme::kBpsk;    ///< kFixed
  mapping::DiffKind diff_kind = mapping::DiffKind::kDqpsk;  ///< kDifferential
  mapping::BitTable bit_table;  ///< kBitTable: one entry per *data* tone,
                                ///< ascending logical frequency

  // --- bit-stream processing -------------------------------------------
  ScramblerConfig scrambler;
  FecConfig fec;
  InterleaverConfig interleaver;
  PilotConfig pilots;
  FrameConfig frame;

  /// Nominal RF centre frequency (Hz) — carried as metadata for the RF
  /// simulator; the baseband model itself is centre-frequency agnostic.
  double nominal_rf_hz = 0.0;

  // --- execution knobs ---------------------------------------------------
  /// Worker threads for the per-symbol modulate pipeline (>= 1). This is
  /// an execution knob, not part of the model surface: it never changes
  /// the output (threads > 1 is bit-exact with threads == 1), so it is
  /// excluded from parameter_count()/parameter_distance() and from the
  /// serialized parameter files.
  std::size_t threads = 1;

  // --- derived conveniences ---------------------------------------------
  double subcarrier_spacing_hz() const {
    return sample_rate / static_cast<double>(fft_size);
  }
  std::size_t symbol_len() const { return fft_size + cp_len; }
  double symbol_duration_s() const {
    return static_cast<double>(symbol_len()) / sample_rate;
  }
};

/// Tone bookkeeping derived from a tone map: which bins are data/pilot,
/// in ascending logical-frequency order (bin index into the FFT vector).
struct ToneLayout {
  std::vector<std::size_t> data_bins;
  std::vector<std::size_t> pilot_bins;
  std::size_t used_tones() const {
    return data_bins.size() + pilot_bins.size();
  }
};

/// Build the layout, walking logical frequencies from most negative to
/// most positive (or 1..N/2-1 for hermitian configurations).
ToneLayout make_tone_layout(const OfdmParams& p);

/// Validate a parameter set; throws ofdm::ConfigError with a description
/// of the first inconsistency found.
void validate(const OfdmParams& p);

/// Coded bits carried by one OFDM symbol under these parameters.
std::size_t coded_bits_per_symbol(const OfdmParams& p);

/// Number of scalar configuration parameters in an OfdmParams (the
/// "model surface" used by the derivation-effort experiment E3).
std::size_t parameter_count(const OfdmParams& p);

/// Number of scalar parameters that differ between two configurations —
/// the paper's "changeover by changing the parameters" measured.
std::size_t parameter_distance(const OfdmParams& a, const OfdmParams& b);

/// One-line human-readable summary (used by examples and benches).
std::string summarize(const OfdmParams& p);

}  // namespace ofdm::core
