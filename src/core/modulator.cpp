#include "core/modulator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dsp/window.hpp"

namespace ofdm::core {

Modulator::Modulator(const OfdmParams& params, const ToneLayout& layout)
    : params_(params),
      layout_(layout),
      fft_(params.fft_size),
      ramp_(params.window_ramp > 0
                ? dsp::raised_cosine_ramp(params.window_ramp)
                : rvec{}) {
  // Unit average output power: the 1/N-scaled IFFT of a spectrum with
  // n_used unit-power tones has average power n_used/N^2.
  std::size_t used = layout_.used_tones();
  if (params_.hermitian) used *= 2;  // mirrored half carries equal power
  OFDM_REQUIRE(used > 0, "Modulator: no used tones");
  scale_ = static_cast<double>(params_.fft_size) /
           std::sqrt(static_cast<double>(used));
}

cvec Modulator::assemble(std::span<const cplx> data_values,
                         std::span<const cplx> pilot_values) const {
  OFDM_REQUIRE_DIM(data_values.size() == layout_.data_bins.size(),
                   "Modulator::assemble: data value count mismatch");
  OFDM_REQUIRE_DIM(pilot_values.size() == layout_.pilot_bins.size(),
                   "Modulator::assemble: pilot value count mismatch");
  cvec freq(params_.fft_size, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < data_values.size(); ++i) {
    freq[layout_.data_bins[i]] = data_values[i];
  }
  for (std::size_t i = 0; i < pilot_values.size(); ++i) {
    freq[layout_.pilot_bins[i]] = pilot_values[i];
  }
  if (params_.hermitian) {
    const std::size_t n = params_.fft_size;
    for (std::size_t k = 1; k < n / 2; ++k) {
      freq[n - k] = std::conj(freq[k]);
    }
  }
  return freq;
}

void Modulator::emit(std::span<const cplx> freq_bins, cvec& out) {
  const std::size_t n = params_.fft_size;
  const std::size_t cp = params_.cp_len;
  const std::size_t ramp = params_.window_ramp;
  OFDM_REQUIRE_DIM(freq_bins.size() == n,
                   "Modulator::emit: frequency vector size mismatch");

  cvec body = fft_.inverse(freq_bins);
  for (cplx& v : body) v *= scale_;

  // Extended symbol: cyclic prefix + body + cyclic suffix (ramp).
  cvec ext;
  ext.reserve(cp + n + ramp);
  for (std::size_t i = 0; i < cp; ++i) ext.push_back(body[n - cp + i]);
  ext.insert(ext.end(), body.begin(), body.end());
  for (std::size_t i = 0; i < ramp; ++i) ext.push_back(body[i]);

  if (ramp > 0) {
    for (std::size_t i = 0; i < ramp; ++i) {
      ext[i] *= ramp_[i];                        // rising edge
      ext[cp + n + i] *= 1.0 - ramp_[i];         // falling edge (suffix)
    }
    // Overlap-add the previous symbol's suffix into our rising edge.
    for (std::size_t i = 0; i < tail_.size(); ++i) ext[i] += tail_[i];
    tail_.assign(ext.begin() + static_cast<std::ptrdiff_t>(cp + n),
                 ext.end());
    ext.resize(cp + n);
  }
  out.insert(out.end(), ext.begin(), ext.end());
}

void Modulator::emit_silence(std::size_t n, cvec& out) {
  const std::size_t start = out.size();
  out.insert(out.end(), n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < tail_.size() && i < n; ++i) {
    out[start + i] += tail_[i];
  }
  tail_.clear();
}

void Modulator::emit_raw(std::span<const cplx> samples, cvec& out) {
  const std::size_t start = out.size();
  out.insert(out.end(), samples.begin(), samples.end());
  for (std::size_t i = 0; i < tail_.size() && i < samples.size(); ++i) {
    out[start + i] += tail_[i];
  }
  tail_.clear();
}

void Modulator::flush(cvec& out) {
  out.insert(out.end(), tail_.begin(), tail_.end());
  tail_.clear();
}

void Modulator::reset() { tail_.clear(); }

}  // namespace ofdm::core
