#include "core/modulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/window.hpp"

namespace ofdm::core {

void assemble_spectrum(const OfdmParams& p, const ToneLayout& layout,
                       std::span<const cplx> data_values,
                       std::span<const cplx> pilot_values, cvec& freq) {
  OFDM_REQUIRE_DIM(data_values.size() == layout.data_bins.size(),
                   "Modulator::assemble: data value count mismatch");
  OFDM_REQUIRE_DIM(pilot_values.size() == layout.pilot_bins.size(),
                   "Modulator::assemble: pilot value count mismatch");
  freq.assign(p.fft_size, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < data_values.size(); ++i) {
    freq[layout.data_bins[i]] = data_values[i];
  }
  for (std::size_t i = 0; i < pilot_values.size(); ++i) {
    freq[layout.pilot_bins[i]] = pilot_values[i];
  }
  if (p.hermitian) {
    const std::size_t n = p.fft_size;
    for (std::size_t k = 1; k < n / 2; ++k) {
      freq[n - k] = std::conj(freq[k]);
    }
  }
}

Modulator::Modulator(const OfdmParams& params, const ToneLayout& layout)
    : params_(params),
      layout_(layout),
      fft_(params.fft_size),
      ramp_(params.window_ramp > 0
                ? dsp::raised_cosine_ramp(params.window_ramp)
                : rvec{}) {
  // Unit average output power: the 1/N-scaled IFFT of a spectrum with
  // n_used unit-power tones has average power n_used/N^2.
  std::size_t used = layout_.used_tones();
  if (params_.hermitian) used *= 2;  // mirrored half carries equal power
  OFDM_REQUIRE(used > 0, "Modulator: no used tones");
  scale_ = static_cast<double>(params_.fft_size) /
           std::sqrt(static_cast<double>(used));
  body_.resize(params_.fft_size);
}

cvec Modulator::assemble(std::span<const cplx> data_values,
                         std::span<const cplx> pilot_values) const {
  cvec freq;
  assemble_spectrum(params_, layout_, data_values, pilot_values, freq);
  return freq;
}

void Modulator::transform(std::span<const cplx> freq_bins,
                          cvec& body) const {
  OFDM_REQUIRE_DIM(freq_bins.size() == params_.fft_size,
                   "Modulator::emit: frequency vector size mismatch");
  body.resize(params_.fft_size);
  // The tone scale rides along inside the IFFT's own output pass; the
  // Hermitian (real-output) configurations take the half-size fast path.
  if (params_.hermitian) {
    fft_.inverse_hermitian(freq_bins, body, scale_);
  } else {
    fft_.inverse(freq_bins, body, scale_);
  }
}

void Modulator::emit(std::span<const cplx> freq_bins, cvec& out) {
  transform(freq_bins, body_);
  emit_body(body_, out);
}

void Modulator::modulate_symbol(std::span<const cplx> data_values,
                                std::span<const cplx> pilot_values,
                                cvec& out) {
  assemble_spectrum(params_, layout_, data_values, pilot_values, freq_);
  emit(freq_, out);
}

void Modulator::emit_body(std::span<const cplx> body, cvec& out) {
  const std::size_t n = params_.fft_size;
  const std::size_t cp = params_.cp_len;
  const std::size_t ramp = params_.window_ramp;
  OFDM_REQUIRE_DIM(body.size() == n,
                   "Modulator::emit_body: body size mismatch");

  // Extended symbol, written straight into the output vector: cyclic
  // prefix + body. The cyclic suffix (ramp) never materializes in `out`;
  // it goes directly into the overlap-add tail below.
  const std::size_t start = out.size();
  out.insert(out.end(), body.end() - static_cast<std::ptrdiff_t>(cp),
             body.end());
  out.insert(out.end(), body.begin(), body.end());

  if (ramp > 0) {
    cplx* ext = out.data() + start;
    for (std::size_t i = 0; i < ramp; ++i) {
      ext[i] *= ramp_[i];                        // rising edge
    }
    // Overlap-add the previous symbol's suffix into our rising edge.
    for (std::size_t i = 0; i < tail_.size(); ++i) ext[i] += tail_[i];
    // Our own windowed suffix becomes the next symbol's tail.
    tail_.resize(ramp);
    for (std::size_t i = 0; i < ramp; ++i) {
      tail_[i] = body[i] * (1.0 - ramp_[i]);     // falling edge (suffix)
    }
  }
}

void Modulator::emit_silence(std::size_t n, cvec& out) {
  const std::size_t start = out.size();
  out.insert(out.end(), n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < tail_.size() && i < n; ++i) {
    out[start + i] += tail_[i];
  }
  tail_.clear();
}

void Modulator::emit_raw(std::span<const cplx> samples, cvec& out) {
  const std::size_t start = out.size();
  out.insert(out.end(), samples.begin(), samples.end());
  for (std::size_t i = 0; i < tail_.size() && i < samples.size(); ++i) {
    out[start + i] += tail_[i];
  }
  tail_.clear();
}

void Modulator::flush(cvec& out) {
  out.insert(out.end(), tail_.begin(), tail_.end());
  tail_.clear();
}

void Modulator::reset() { tail_.clear(); }

}  // namespace ofdm::core
