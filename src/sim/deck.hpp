// Scenario decks: the declarative input of the Monte-Carlo campaign
// engine.
//
// A deck is a key=value text block in the spirit of core/params_io —
// line-oriented, '#' comments, order-insensitive, every malformed value
// surfacing as a ConfigError that names the field. Where a parameter
// deck describes ONE transmitter configuration, a scenario deck
// describes a GRID: standards x SNR points x channel presets, plus
// receiver options, Monte-Carlo trial policy and the campaign seed.
// expand_grid() turns the deck into the flat, deterministically ordered
// job matrix the campaign scheduler runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "rx/mother/rx_mode.hpp"

namespace ofdm::sim {

/// One channel/impairment preset from the deck's `channel=` list.
struct ChannelPreset {
  enum class Kind { kAwgn, kMultipath, kTwistedPair, kStandard };
  Kind kind = Kind::kAwgn;
  std::string token;  ///< deck spelling ("awgn", "ccir_poor", ...)

  // multipath: exponential power-delay profile (channel.hpp), static
  // per campaign so every SNR point sees the same realization.
  double rms_delay_samples = 3.0;
  std::size_t n_taps = 8;
  std::uint64_t taps_seed = 77;

  // twisted_pair: single-pole loop model.
  double cutoff_norm = 0.2;
  double attenuation_db = 6.0;

  // kStandard: a named preset from rf/channels/registry.hpp
  // (ccir_*, itu_*, sui_*, rician_k*, cfo_*). `channel_seed` is xor'd
  // into each trial's substream draw so realizations are ergodic
  // across trials yet fully reproducible from the campaign seed.
  std::uint64_t channel_seed = 505;
  double doppler_scale = 1.0;
};

/// One transmitter configuration from the deck's `standard=` list.
struct StandardSpec {
  std::string token;  ///< e.g. "wlan_80211a@24" or "adsl+fec"
  core::OfdmParams params;
};

/// One receiver mode from the deck's `rx=` list. A deck without the key
/// gets the single historical entry (coded), so legacy grids, point
/// indices and RNG substreams stay bit-identical.
struct RxSpec {
  std::string token = "coded";
  rx::RxMode mode = rx::RxMode::kCoded;
};

/// A parsed scenario deck. Defaults match parse_deck()'s documentation;
/// `standard` and `snr_db` are the only required keys.
struct ScenarioDeck {
  std::string name = "campaign";
  std::vector<StandardSpec> standards;
  std::vector<double> snr_db;
  std::vector<ChannelPreset> channels;
  std::vector<RxSpec> rx_modes{RxSpec{}};

  // Optional analog front end ahead of the channel.
  bool pa_enabled = false;
  double pa_backoff_db = 8.0;
  double pa_smoothness = 2.0;
  double phase_noise_hz = 0.0;  ///< 0 = off

  // Receiver options (rx::Receiver).
  bool rx_equalize = true;
  bool rx_pilot_tracking = false;
  bool rx_soft = false;

  // Monte-Carlo trial policy and early stopping.
  std::size_t min_trials = 8;
  std::size_t max_trials = 256;
  std::size_t batch_trials = 8;  ///< trials per early-stop round
  std::size_t min_errors = 20;   ///< no CI stop below this error count
  double stop_rel_ci = 0.25;     ///< stop when CI width <= this * BER
  double confidence = 0.95;

  bool measure_evm = true;
  std::size_t payload_bits = 0;  ///< 0 = recommended per standard
  std::uint64_t seed = 1;
};

/// Parse a deck from text. Unknown keys, missing required keys and
/// malformed values throw ofdm::ConfigError naming the field.
ScenarioDeck parse_deck(const std::string& text);

/// Resolve one `standard=` token ("wlan_80211a@24", "drm@B", ...) to
/// its transmitter parameters; throws ofdm::ConfigError on unknown
/// tokens/variants. Exposed for callers outside deck parsing (the
/// waveform service accepts the same tokens as a deck shorthand).
StandardSpec parse_standard_token(const std::string& token);

/// One grid point of the expanded job matrix. `index` is the point's
/// position in the deterministic expansion order (standard-major, then
/// channel, then rx mode, then SNR) and the counter fed to
/// Rng::substream.
struct PointSpec {
  std::size_t index = 0;
  std::size_t standard_index = 0;
  std::size_t channel_index = 0;
  std::size_t rx_index = 0;
  double snr_db = 0.0;
};

/// Expand the deck into its job matrix: for each standard, for each
/// channel preset, for each rx mode, for each SNR value, in deck order.
/// A deck without an `rx=` key has exactly one rx mode, so legacy decks
/// expand to their historical indices.
std::vector<PointSpec> expand_grid(const ScenarioDeck& deck);

/// Stable 64-bit digest over every campaign-relevant deck field (not
/// the raw text, so comments and key order don't matter). A checkpoint
/// records it; resuming under a different deck fails loudly instead of
/// merging incompatible counters.
std::uint64_t deck_digest(const ScenarioDeck& deck);

}  // namespace ofdm::sim
