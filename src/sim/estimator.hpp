// Per-point Monte-Carlo estimator: accumulated BER/EVM counters plus
// the confidence-interval early-stop rule.
//
// Trials are reduced into a PointState strictly in trial-index order
// (the campaign's determinism contract), and the stop rule is evaluated
// only at round boundaries — so the decision sequence, and therefore
// every estimate, is identical for any thread count and any
// checkpoint/resume cut.
#pragma once

#include <cstddef>
#include <string>

#include "sim/deck.hpp"

namespace ofdm::sim {

/// Why a point stopped sampling.
enum class StopReason : std::uint8_t {
  kNone = 0,       ///< still running
  kCiWidth = 1,    ///< BER CI narrower than stop_rel_ci * BER
  kMaxTrials = 2,  ///< trial cap hit
};

std::string stop_reason_name(StopReason r);

/// One trial's contribution (pure function of (seed, point, trial)).
struct TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  double evm_err2 = 0.0;  ///< sum |rx - ref|^2 over data tones
  double evm_ref2 = 0.0;  ///< sum |ref|^2 over data tones
  double seconds = 0.0;   ///< wall time (reporting only, never in curves)
};

/// Accumulated state of one grid point. Everything except `seconds` is
/// deterministic; `seconds` is excluded from checkpoints' curve data
/// role (it rides along for the wall-time table only).
struct PointState {
  std::size_t trials = 0;
  std::size_t bits = 0;
  std::size_t errors = 0;
  double evm_err2 = 0.0;
  double evm_ref2 = 0.0;
  double seconds = 0.0;
  bool done = false;
  StopReason reason = StopReason::kNone;

  void accumulate(const TrialResult& t);

  /// BER point estimate; check bits > 0 (an all-empty point is flagged
  /// invalid downstream, not exported as BER 0).
  double ber() const;
  /// RMS EVM (linear) from the accumulated tone energies.
  double evm_rms() const;
};

/// Number of trials the next round should reach for a point in `state`:
/// min_trials first, then + batch_trials, clamped to max_trials.
/// Depends only on (deck, state.trials) — the round schedule is the
/// same for a fresh run and a resumed one.
std::size_t next_round_target(const ScenarioDeck& deck,
                              const PointState& state);

/// Evaluate the early-stop rule at a round boundary; sets state.done /
/// state.reason when the point is finished. Stop conditions:
///  - CI: at least min_trials run AND at least min_errors observed AND
///    the confidence interval's width <= stop_rel_ci * BER estimate.
///    (A zero-error point never CI-stops: its relative width is
///    unbounded, so it runs to the cap and exports its CP upper bound.)
///  - cap: max_trials reached.
void evaluate_stop(const ScenarioDeck& deck, PointState& state);

}  // namespace ofdm::sim
