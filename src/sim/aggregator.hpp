// Campaign result export: BER/EVM-vs-SNR curves as JSON and CSV, plus
// an obs::Report-style per-point wall-time table.
//
// curves_json()/curves_csv() are DETERMINISTIC: they render only the
// campaign's counter state (never wall times), with fixed formatting,
// so the identical deck run with any thread count — or killed and
// resumed from a checkpoint — produces byte-identical files. The CI
// smoke test and the resume tests diff these bytes directly.
#pragma once

#include <string>

#include "sim/campaign.hpp"

namespace ofdm::sim {

/// Curves grouped by (standard, channel), points in SNR (grid) order:
/// {"campaign":..,"seed":..,"confidence":..,"curves":[{"standard":..,
/// "channel":..,"points":[{"snr_db":..,"trials":..,"bits":..,
/// "errors":..,"ber":..,"ci_lo":..,"ci_hi":..,"evm_rms":..,
/// "valid":..,"stop":..}]}]}
std::string curves_json(const ScenarioDeck& deck,
                        const CampaignResult& result);

/// Flat CSV, one row per grid point, same fields as the JSON.
std::string curves_csv(const ScenarioDeck& deck,
                       const CampaignResult& result);

/// Human-readable per-point wall-time attribution (NOT deterministic —
/// contains measured seconds; report-only, never diffed).
std::string timing_table(const CampaignResult& result);

}  // namespace ofdm::sim
