#include "sim/checkpoint.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::sim {

namespace {
constexpr std::uint64_t kVersion = 1;
}

void save_checkpoint(StateWriter& w, const ScenarioDeck& deck,
                     const std::vector<PointState>& points) {
  w.begin_node("OFDMCAMP");
  w.u64(kVersion);
  w.u64(deck_digest(deck));
  w.u64(points.size());
  for (const PointState& p : points) {
    w.begin_node("point");
    w.u64(p.trials);
    w.u64(p.bits);
    w.u64(p.errors);
    w.f64(p.evm_err2);
    w.f64(p.evm_ref2);
    w.f64(p.seconds);
    w.u8(p.done ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(p.reason));
    w.end_node();
  }
  w.end_node();
}

std::vector<std::uint8_t> save_checkpoint(
    const ScenarioDeck& deck, const std::vector<PointState>& points) {
  StateWriter w;
  save_checkpoint(w, deck, points);
  return w.bytes();
}

void load_checkpoint(std::span<const std::uint8_t> bytes,
                     const ScenarioDeck& deck,
                     std::vector<PointState>& points) {
  StateReader r(bytes);
  r.enter_node("OFDMCAMP");
  const std::uint64_t version = r.u64();
  if (version != kVersion) {
    throw StateError("campaign checkpoint: unsupported version " +
                     std::to_string(version));
  }
  const std::uint64_t digest = r.u64();
  if (digest != deck_digest(deck)) {
    throw StateError(
        "campaign checkpoint: deck mismatch — the checkpoint was taken "
        "under a different scenario deck");
  }
  const std::uint64_t n = r.u64();
  if (n != points.size()) {
    throw StateError("campaign checkpoint: grid has " +
                     std::to_string(points.size()) +
                     " points, checkpoint has " + std::to_string(n));
  }
  for (PointState& p : points) {
    r.enter_node("point");
    p.trials = r.u64();
    p.bits = r.u64();
    p.errors = r.u64();
    p.evm_err2 = r.f64();
    p.evm_ref2 = r.f64();
    p.seconds = r.f64();
    p.done = r.u8() != 0;
    p.reason = static_cast<StopReason>(r.u8());
    r.exit_node();
  }
  r.exit_node();
  r.finish("campaign checkpoint 'OFDMCAMP'");
}

CheckpointInfo inspect_checkpoint(std::span<const std::uint8_t> bytes) {
  StateReader r(bytes);
  r.enter_node("OFDMCAMP");
  CheckpointInfo info;
  info.version = r.u64();
  if (info.version != kVersion) {
    throw StateError("campaign checkpoint: unsupported version " +
                     std::to_string(info.version));
  }
  info.deck_digest = r.u64();
  const std::uint64_t n = r.count(1);
  for (std::uint64_t i = 0; i < n; ++i) {
    r.enter_node("point");
    info.trials += r.u64();
    r.u64();  // bits
    r.u64();  // errors
    r.f64();  // evm_err2
    r.f64();  // evm_ref2
    r.f64();  // seconds
    if (r.u8() != 0) ++info.points_done;
    r.u8();  // reason
    r.exit_node();
  }
  info.points = n;
  r.exit_node();
  r.finish("campaign checkpoint 'OFDMCAMP'");
  return info;
}

void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw StateError("campaign checkpoint: cannot open " + tmp +
                     " for writing");
  }
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw StateError("campaign checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StateError("campaign checkpoint: cannot rename " + tmp +
                     " to " + path);
  }
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw StateError("campaign checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  unsigned char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    throw StateError("campaign checkpoint: read error on " + path);
  }
  return bytes;
}

}  // namespace ofdm::sim
