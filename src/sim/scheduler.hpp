// Work-stealing task pool for the campaign engine.
//
// The RF graph executor (rf/executor) pins one *stage* per thread
// because block state forces stream order; a campaign's unit of work is
// the opposite — thousands of independent trial batches — so here each
// worker owns a deque (LIFO for its own work, FIFO for thieves) and
// idle workers steal from the others. Determinism never depends on the
// schedule: tasks are pure functions of their indices and the campaign
// reduces their results in index order.
//
// Tasks may submit further tasks (a finished round schedules the next
// one). wait_idle() returns once every submitted task has completed;
// the first exception a task throws is captured and rethrown there.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ofdm::sim {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (clamped to >= 1).
  explicit WorkStealingPool(std::size_t threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a task: onto the calling worker's own deque when called
  /// from inside the pool, round-robin across workers otherwise.
  void submit(Task task);

  /// Block until every submitted task (including ones submitted by
  /// running tasks) has finished. Rethrows the first task exception.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Worker {
    std::mutex m;
    std::deque<Task> q;
  };

  bool try_get(std::size_t self, Task& out);
  void run_task(Task& task);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex cv_m_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t signal_ = 0;  // guarded by cv_m_; bumps on submit

  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> next_victim_{0};
  std::atomic<bool> stop_{false};

  std::mutex error_m_;
  std::exception_ptr first_error_;
};

}  // namespace ofdm::sim
