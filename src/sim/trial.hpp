// The link a campaign measures, one grid point at a time: Mother-Model
// TX -> RF chain (optional PA / phase noise, channel preset, AWGN at
// the point's SNR) -> reference receiver -> BER/EVM counters.
//
// A LinkRunner is built per (point, worker task); run_trial() is a pure
// function of (campaign_seed, point_index, trial_index) — payload bits
// and every stochastic block seed derive from Rng::substream — so the
// same trial computed by any worker, in any order, after any resume,
// contributes identical counts.
#pragma once

#include "core/transmitter.hpp"
#include "rx/receiver.hpp"
#include "sim/cancel.hpp"
#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace ofdm::sim {

class LinkRunner {
 public:
  LinkRunner(const ScenarioDeck& deck, const PointSpec& point);
  ~LinkRunner();
  LinkRunner(LinkRunner&&) noexcept;
  LinkRunner& operator=(LinkRunner&&) noexcept;

  /// Run one Monte-Carlo trial; TrialResult::seconds is filled with the
  /// trial's wall time.
  TrialResult run_trial(std::size_t trial_index);

  /// Run `results.size()` consecutive trials starting at `first_trial`,
  /// reusing the runner's burst and chunk buffers across the batch.
  /// results[i] is bit-identical to run_trial(first_trial + i). When
  /// `cancel` is non-null it is polled between trials; on a stop
  /// request the batch returns early and only the first `return value`
  /// entries of `results` are valid (the caller discards the batch).
  std::size_t run_trials(std::size_t first_trial,
                         std::span<TrialResult> results,
                         const CancelToken* cancel = nullptr);

  /// Payload bits per trial after resolving the deck's payload_bits=0
  /// ("recommended") default for this point's standard.
  std::size_t payload_bits() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace ofdm::sim
