#include "sim/scheduler.hpp"

namespace ofdm::sim {

namespace {
// Identity of the worker thread currently inside a pool, so submit()
// can prefer the local deque. (index + 1; 0 = not a pool thread.)
thread_local const WorkStealingPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;
}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lk(cv_m_);
    stop_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::submit(Task task) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  std::size_t slot;
  if (tls_pool == this) {
    slot = tls_index - 1;  // local deque: depth-first, cache-warm
  } else {
    slot = next_victim_.fetch_add(1, std::memory_order_relaxed) %
           workers_.size();
  }
  {
    std::lock_guard<std::mutex> lk(workers_[slot]->m);
    workers_[slot]->q.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(cv_m_);
    ++signal_;
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::try_get(std::size_t self, Task& out) {
  {
    // Own deque, newest first.
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.m);
    if (!w.q.empty()) {
      out = std::move(w.q.back());
      w.q.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the others.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& v = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lk(v.m);
    if (!v.q.empty()) {
      out = std::move(v.q.front());
      v.q.pop_front();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::run_task(Task& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lk(error_m_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(cv_m_);
    idle_cv_.notify_all();
  }
}

void WorkStealingPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self + 1;
  Task task;
  while (true) {
    if (try_get(self, task)) {
      run_task(task);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(cv_m_);
    const std::uint64_t seen = signal_;
    lk.unlock();
    // One more scan after recording the signal generation: a submit
    // between the failed scan and the wait bumps `signal_` and the
    // wait predicate falls through.
    if (try_get(self, task)) {
      run_task(task);
      task = nullptr;
      continue;
    }
    lk.lock();
    if (stop_.load(std::memory_order_relaxed)) return;
    work_cv_.wait(lk, [this, seen] {
      return stop_.load(std::memory_order_relaxed) || signal_ != seen;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void WorkStealingPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lk(cv_m_);
    idle_cv_.wait(lk, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(error_m_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace ofdm::sim
