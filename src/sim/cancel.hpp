// Cooperative cancellation and deadlines for long-running campaign
// work.
//
// A CancelToken is shared between a controller thread (a daemon session
// handler, a CLI signal handler) and the campaign workers. Workers
// never block on it — they poll stop_requested() at their natural
// boundaries (between trials inside LinkRunner::run_trials, at round
// completion in the campaign driver) and drain. Because an interrupted
// round is discarded wholesale and the checkpoint only ever advances at
// round boundaries, cancellation can land at ANY instant without
// touching the determinism contract: the resumed campaign recomputes
// the abandoned round bit-for-bit.
//
// cancel() is a lock-free atomic store, so it is safe to call from a
// POSIX signal handler (the ofdm_campaign SIGINT/SIGTERM path).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ofdm::sim {

class CancelToken {
 public:
  /// Request a cooperative stop. Safe from any thread and from
  /// async-signal context. Irreversible for the lifetime of the token.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arm (or re-arm) an absolute deadline; past it, stop_requested()
  /// turns true. Call before handing the token to a run.
  void set_deadline(std::chrono::steady_clock::time_point t) noexcept {
    deadline_ns_.store(t.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Convenience: deadline `seconds` from now; <= 0 disarms.
  void set_deadline_after(double seconds) noexcept {
    if (seconds <= 0.0) {
      deadline_ns_.store(0, std::memory_order_release);
      return;
    }
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
    if (d == 0) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  bool stop_requested() const noexcept {
    return cancelled() || deadline_expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock ticks since epoch; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace ofdm::sim
