// Campaign checkpoint/restore over common/serial StateWriter frames.
//
// A checkpoint is the campaign's per-point counters at a round
// boundary, plus the deck digest and grid shape, framed as
// "OFDMCAMP" / per-point nodes (magic + version first, like
// Netlist::snapshot's "OFDMSNAP"). Because trial streams are
// counter-derived, restoring these counters and continuing the round
// schedule reproduces the uninterrupted campaign bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace ofdm {
class StateWriter;
}  // namespace ofdm

namespace ofdm::sim {

/// Serialize the campaign state (deck digest + every point's counters).
void save_checkpoint(StateWriter& w, const ScenarioDeck& deck,
                     const std::vector<PointState>& points);
std::vector<std::uint8_t> save_checkpoint(
    const ScenarioDeck& deck, const std::vector<PointState>& points);

/// Restore into `points` (resized to the recorded grid). Throws
/// ofdm::StateError when the bytes are malformed, carry trailing
/// garbage, come from a different deck (digest mismatch), or from a
/// different grid shape.
void load_checkpoint(std::span<const std::uint8_t> bytes,
                     const ScenarioDeck& deck,
                     std::vector<PointState>& points);

/// Summary of a checkpoint WITHOUT the deck it belongs to — the
/// daemon's resume scan uses this to pair *.ckpt files found after a
/// crash with their persisted decks (and to refuse a checkpoint whose
/// digest does not match) before committing to a full resume.
struct CheckpointInfo {
  std::uint64_t version = 0;
  std::uint64_t deck_digest = 0;
  std::size_t points = 0;       ///< grid size recorded
  std::size_t points_done = 0;  ///< points already finished
  std::size_t trials = 0;       ///< trials accumulated across the grid
};

/// Parse just enough of a checkpoint to describe it. Throws
/// ofdm::StateError on malformed/truncated bytes or trailing garbage
/// (same validation as load_checkpoint, minus the deck comparison).
CheckpointInfo inspect_checkpoint(std::span<const std::uint8_t> bytes);

/// Write checkpoint bytes to `path` atomically (temp file + rename), so
/// a kill mid-write can never leave a torn checkpoint behind.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> bytes);

/// Read a checkpoint file; throws ofdm::StateError when unreadable.
std::vector<std::uint8_t> read_checkpoint_file(const std::string& path);

}  // namespace ofdm::sim
