// Campaign checkpoint/restore over common/serial StateWriter frames.
//
// A checkpoint is the campaign's per-point counters at a round
// boundary, plus the deck digest and grid shape, framed as
// "OFDMCAMP" / per-point nodes (magic + version first, like
// Netlist::snapshot's "OFDMSNAP"). Because trial streams are
// counter-derived, restoring these counters and continuing the round
// schedule reproduces the uninterrupted campaign bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace ofdm {
class StateWriter;
}  // namespace ofdm

namespace ofdm::sim {

/// Serialize the campaign state (deck digest + every point's counters).
void save_checkpoint(StateWriter& w, const ScenarioDeck& deck,
                     const std::vector<PointState>& points);
std::vector<std::uint8_t> save_checkpoint(
    const ScenarioDeck& deck, const std::vector<PointState>& points);

/// Restore into `points` (resized to the recorded grid). Throws
/// ofdm::StateError when the bytes are malformed, from a different
/// deck (digest mismatch), or from a different grid shape.
void load_checkpoint(std::span<const std::uint8_t> bytes,
                     const ScenarioDeck& deck,
                     std::vector<PointState>& points);

/// Write checkpoint bytes to `path` atomically (temp file + rename), so
/// a kill mid-write can never leave a torn checkpoint behind.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> bytes);

/// Read a checkpoint file; throws ofdm::StateError when unreadable.
std::vector<std::uint8_t> read_checkpoint_file(const std::string& path);

}  // namespace ofdm::sim
